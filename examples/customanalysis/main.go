// Customanalysis: writing a new analysis against LagAlyzer's core API.
//
// The paper: "Developers who want to write their own analysis can
// implement it using the straightforward API provided by the core."
// This example implements two analyses the paper does not ship:
//
//  1. a paint-depth profile — how deeply nested do rendering calls
//     get, and how does lag grow with nesting depth (the GanttProject
//     pathology of Figure 2, quantified); and
//
//  2. a lag histogram by trigger — what does the episode-duration
//     distribution look like for input vs output episodes.
//
//     go run ./examples/customanalysis
package main

import (
	"fmt"
	"log"
	"strings"

	"lagalyzer"
)

func main() {
	profile, err := lagalyzer.ProfileByName("GanttProject")
	if err != nil {
		log.Fatal(err)
	}
	session, err := lagalyzer.Simulate(lagalyzer.SimConfig{Profile: profile, Seed: 21, SessionSeconds: 180})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d traced episodes\n\n", session.App, len(session.Episodes))

	// --- Analysis 1: paint nesting depth vs lag ---------------------
	// For every episode, find the deepest chain of nested paint
	// intervals, then bucket episodes by that depth.
	type bucket struct {
		episodes int
		totalLag lagalyzer.Dur
		long     int
	}
	buckets := map[int]*bucket{}
	maxDepth := 0
	for _, e := range session.Episodes {
		depth := maxPaintDepth(e.Root)
		b := buckets[depth]
		if b == nil {
			b = &bucket{}
			buckets[depth] = b
		}
		b.episodes++
		b.totalLag += e.Dur()
		if e.Perceptible(lagalyzer.PerceptibleThreshold) {
			b.long++
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	fmt.Println("paint nesting depth vs lag:")
	fmt.Printf("  %5s %9s %10s %13s\n", "depth", "episodes", "avg lag", "perceptible")
	for d := 0; d <= maxDepth; d++ {
		b := buckets[d]
		if b == nil {
			continue
		}
		avg := lagalyzer.Dur(int64(b.totalLag) / int64(b.episodes))
		fmt.Printf("  %5d %9d %10v %12.1f%%\n", d, b.episodes, avg, float64(b.long)/float64(b.episodes)*100)
	}

	// --- Analysis 2: lag histogram by trigger -----------------------
	edges := []float64{3, 10, 30, 100, 300, 1000, 1e12} // ms
	hist := map[lagalyzer.Trigger][]int{}
	for _, e := range session.Episodes {
		tr := lagalyzer.TriggerOf(e)
		if hist[tr] == nil {
			hist[tr] = make([]int, len(edges))
		}
		ms := e.Dur().Ms()
		for i, hi := range edges {
			if ms < hi {
				hist[tr][i]++
				break
			}
		}
	}
	fmt.Println("\nlag histogram by trigger (episode counts):")
	fmt.Printf("  %-12s", "trigger")
	labels := []string{"<10ms", "<30ms", "<100ms", "<300ms", "<1s", ">=1s"}
	for _, l := range labels {
		fmt.Printf(" %8s", l)
	}
	fmt.Println()
	for _, tr := range []lagalyzer.Trigger{lagalyzer.TriggerInput, lagalyzer.TriggerOutput, lagalyzer.TriggerAsync, lagalyzer.TriggerUnspecified} {
		counts := hist[tr]
		if counts == nil {
			continue
		}
		fmt.Printf("  %-12s", tr)
		for i := 1; i < len(edges); i++ {
			fmt.Printf(" %8d", counts[i])
		}
		fmt.Println()
	}

	// --- Bonus: which component classes appear in the deepest
	// episodes' paint chains? ---------------------------------------
	deepest := session.Episodes[0]
	for _, e := range session.Episodes {
		if maxPaintDepth(e.Root) > maxPaintDepth(deepest.Root) {
			deepest = e
		}
	}
	var chain []string
	cur := deepest.Root
	for cur != nil {
		if cur.Kind == lagalyzer.KindPaint {
			chain = append(chain, shortName(cur.Class))
		}
		cur = deepestPaintChild(cur)
	}
	fmt.Printf("\ndeepest paint chain (episode #%d, %v):\n  %s\n",
		deepest.Index, deepest.Dur(), strings.Join(chain, " -> "))
}

// maxPaintDepth returns the length of the longest chain of nested
// paint intervals in the tree.
func maxPaintDepth(iv *lagalyzer.Interval) int {
	best := 0
	for _, c := range iv.Children {
		d := maxPaintDepth(c)
		if c.Kind == lagalyzer.KindPaint {
			d++
		}
		if d > best {
			best = d
		}
	}
	return best
}

// deepestPaintChild returns the child whose subtree has the deepest
// paint chain, or nil for leaves.
func deepestPaintChild(iv *lagalyzer.Interval) *lagalyzer.Interval {
	var best *lagalyzer.Interval
	bestDepth := -1
	for _, c := range iv.Children {
		if d := maxPaintDepth(c); d > bestDepth {
			best, bestDepth = c, d
		}
	}
	return best
}

func shortName(class string) string {
	if i := strings.LastIndexByte(class, '.'); i >= 0 {
		return class[i+1:]
	}
	return class
}
