// Backgroundload: the FindBugs scenario of the paper (§IV-C, §IV-E) —
// a background thread loads a large project for ~3 minutes, competing
// with the GUI thread for the CPU and posting periodic progress-bar
// updates to the event queue.
//
// LagAlyzer surfaces this two ways:
//
//   - the concurrency analysis (Figure 7) reports more than one
//     runnable thread on average during episodes, and
//
//   - the trigger analysis (Figure 5) attributes a large share of
//     perceptible episodes to asynchronous events.
//
//     go run ./examples/backgroundload
package main

import (
	"fmt"
	"log"
	"strings"

	"lagalyzer"
)

func main() {
	profile, err := lagalyzer.ProfileByName("FindBugs")
	if err != nil {
		log.Fatal(err)
	}
	session, err := lagalyzer.Simulate(lagalyzer.SimConfig{Profile: profile, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	sessions := []*lagalyzer.Session{session}

	fmt.Printf("%s: %v session, %d traced episodes, %d perceptible\n",
		session.App, session.E2E(), len(session.Episodes),
		len(session.PerceptibleEpisodes(lagalyzer.PerceptibleThreshold)))

	// Concurrency: while the loader runs, it is runnable alongside
	// the GUI thread.
	all, _ := lagalyzer.Concurrency(sessions, lagalyzer.PerceptibleThreshold, false)
	long, _ := lagalyzer.Concurrency(sessions, lagalyzer.PerceptibleThreshold, true)
	fmt.Printf("avg runnable threads: %.2f (all episodes), %.2f (perceptible)\n", all, long)

	// Async share of perceptible episodes (the progress-bar updates).
	trig := lagalyzer.Triggers(sessions, lagalyzer.PerceptibleThreshold, true)
	fmt.Printf("perceptible triggers: async %.0f%%, input %.0f%%, output %.0f%%\n\n",
		trig.Frac(lagalyzer.TriggerAsync)*100, trig.Frac(lagalyzer.TriggerInput)*100,
		trig.Frac(lagalyzer.TriggerOutput)*100)

	// Find the progress-update pattern in the browser and show its
	// lag statistics — the paper notes GCs regularly land inside
	// these episodes.
	set := lagalyzer.Classify(sessions, lagalyzer.PatternOptions{})
	b := lagalyzer.NewBrowser(set, 0)
	b.SetPerceptibleOnly(true)
	for i, p := range b.Patterns() {
		if !strings.Contains(p.Canon, "ProgressUpdateEvent") {
			continue
		}
		if err := b.Select(i); err != nil {
			log.Fatal(err)
		}
		withGC := 0
		for _, ref := range p.Episodes {
			if ref.Episode.Root.HasKind(lagalyzer.KindGC) {
				withGC++
			}
		}
		fmt.Printf("progress-update pattern %s: %d episodes (%d with a GC inside), min %v avg %v max %v\n",
			p.ID(), p.Count(), withGC, p.MinLag(), p.AvgLag(), p.MaxLag())
		if txt, ok := b.SketchText(); ok {
			fmt.Println("\nfirst episode of the pattern:")
			fmt.Print(txt)
		}
		break
	}

	// Loader visibility in the samples: what is thread 2 doing at the
	// 60-second mark?
	ticks := session.TicksIn(lagalyzer.Time(60*1e9), lagalyzer.Time(61*1e9))
	if len(ticks) > 0 {
		if ts, ok := ticks[0].Thread(2); ok {
			fmt.Printf("\nloader thread at t=60s: %s\n  %s\n", ts.State,
				strings.ReplaceAll(ts.StackString(), "\n", "\n  "))
		}
	}
}
