// Animation: build a custom application profile from scratch — a
// timer-driven 3D viewer in the style of the paper's Jmol findings —
// and show how LagAlyzer attributes its lag.
//
// The interesting mechanics reproduced here (paper §IV-C):
//
//   - a Swing-style timer posts a repaint every 40 ms; rendering takes
//     longer, so the event dispatch thread saturates and the frame
//     rate drops;
//
//   - the repaint manager enqueues the paint through the event queue,
//     so the episodes arrive as an "async" interval *containing* a
//     "paint" interval — which the trigger classification folds back
//     into output episodes;
//
//   - the result: nearly all perceptible episodes are output.
//
//     go run ./examples/animation
package main

import (
	"fmt"
	"log"

	"lagalyzer"
)

func main() {
	// A renderer whose frame time is bimodal: simple orientations
	// render in ~30 ms, complex surface views in ~120 ms.
	frameDur := lagalyzer.ClampedDist{
		D: lagalyzer.NewMixture(
			[]float64{0.6, 0.4},
			[]lagalyzer.Dist{
				lagalyzer.LogNormalDist{Median: 30, Sigma: 0.5},
				lagalyzer.LogNormalDist{Median: 120, Sigma: 0.4},
			}),
		Lo: 4, Hi: 5000,
	}
	profile := &lagalyzer.Profile{
		Name:           "MoleculeViewer",
		Version:        "0.1",
		Classes:        900,
		Description:    "custom timer-driven 3D viewer",
		AppPackage:     "com.example.molecule",
		SessionSeconds: 90,
		ThinkTimeMs:    lagalyzer.ExpDist{MeanV: 2000},
		ShortPerSecond: 40,
		LibraryFrac:    0.4,
		UserBehaviors: []*lagalyzer.Behavior{{
			Name: "rotate", Weight: 1,
			DurMs: lagalyzer.LogNormalDist{Median: 25, Sigma: 0.6},
			Nodes: []lagalyzer.Node{{
				Kind: lagalyzer.KindListener, Class: "com.example.molecule.MouseControl", Method: "mouseDragged",
				Weight: 0.3,
				Children: []lagalyzer.Node{{
					Kind: lagalyzer.KindPaint, Class: "com.example.molecule.Canvas3D", Method: "paint", Weight: 0.6,
				}},
			}},
		}},
		Timers: []*lagalyzer.Timer{{
			Behavior: &lagalyzer.Behavior{
				Name:  "animation-frame",
				DurMs: frameDur,
				Nodes: []lagalyzer.Node{{
					// The repaint manager's indirection: async wrapping paint.
					Kind: lagalyzer.KindAsync, Class: "javax.swing.Timer$DoPostEvent", Method: "dispatch",
					Weight: 0.05,
					Children: []lagalyzer.Node{{
						Kind: lagalyzer.KindPaint, Class: "com.example.molecule.Canvas3D", Method: "paint",
						Weight: 0.75,
						Children: []lagalyzer.Node{{
							Kind: lagalyzer.KindNative, Class: "sun.awt.image.BufImgSurfaceData", Method: "setRGB",
							Weight: 0.2, Prob: 0.6,
						}},
					}},
				}},
			},
			PeriodMs:   lagalyzer.ConstDist{V: 40},
			ActiveFrom: 5, ActiveTo: 80,
		}},
		Heap: lagalyzer.HeapConfig{
			CapacityMB:    24,
			AllocMBPerSec: 35,
			MinorPauseMs:  lagalyzer.UniformDist{Lo: 8, Hi: 22},
			RampMs:        lagalyzer.UniformDist{Lo: 0.2, Hi: 2},
			PostDelayMs:   lagalyzer.UniformDist{Lo: 0.5, Hi: 5},
		},
	}

	session, err := lagalyzer.Simulate(lagalyzer.SimConfig{Profile: profile, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	sessions := []*lagalyzer.Session{session}
	long := session.PerceptibleEpisodes(lagalyzer.PerceptibleThreshold)
	fmt.Printf("%s: %d traced episodes, %d perceptible (the animation cannot hold 25 fps)\n",
		session.App, len(session.Episodes), len(long))

	// Frame rate during the animation window: episodes per second.
	inWindow := 0
	for _, e := range session.Episodes {
		if sec := e.Start().Seconds(); sec >= 5 && sec < 80 {
			inWindow++
		}
	}
	fmt.Printf("achieved frame rate: %.1f fps (timer asks for 25 fps)\n", float64(inWindow)/75)

	trig := lagalyzer.Triggers(sessions, lagalyzer.PerceptibleThreshold, true)
	fmt.Printf("perceptible episode triggers: output %.0f%%, input %.0f%%, async %.0f%%\n",
		trig.Frac(lagalyzer.TriggerOutput)*100, trig.Frac(lagalyzer.TriggerInput)*100,
		trig.Frac(lagalyzer.TriggerAsync)*100)

	// Show the repaint-manager reclassification on one episode.
	for _, e := range long {
		first := e.Root.FindKind(lagalyzer.KindAsync)
		if first != nil && first.HasKind(lagalyzer.KindPaint) {
			fmt.Printf("\nepisode #%d arrives as async(paint) but is classified as %q:\n",
				e.Index, lagalyzer.TriggerOf(e))
			fmt.Print(lagalyzer.SketchText(session, e))
			break
		}
	}
}
