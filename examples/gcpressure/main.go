// Gcpressure: the Arabeske and ArgoUML findings of the paper (§IV-C,
// §IV-D) — garbage collection as a cause of perceptible lag.
//
// Arabeske explicitly calls System.gc() during interactive episodes:
// the resulting episodes are structurally empty (their only content is
// a long major collection), classify as "unspecified" in the trigger
// analysis, and put GC at ~60 % of the application's perceptible lag.
// ArgoUML never calls System.gc() but allocates so fast that minor
// collections pepper all of its episodes.
//
//	go run ./examples/gcpressure
package main

import (
	"fmt"
	"log"

	"lagalyzer"
)

func main() {
	for _, name := range []string{"Arabeske", "ArgoUML"} {
		profile, err := lagalyzer.ProfileByName(name)
		if err != nil {
			log.Fatal(err)
		}
		session, err := lagalyzer.Simulate(lagalyzer.SimConfig{Profile: profile, Seed: 8})
		if err != nil {
			log.Fatal(err)
		}
		sessions := []*lagalyzer.Session{session}

		locAll := lagalyzer.Location(sessions, lagalyzer.PerceptibleThreshold, false)
		locLong := lagalyzer.Location(sessions, lagalyzer.PerceptibleThreshold, true)
		fmt.Printf("%s: %d collections; GC is %.0f%% of all episode time, %.0f%% of perceptible lag\n",
			name, len(session.GCs), locAll.GC*100, locLong.GC*100)

		majors := 0
		for _, gc := range session.GCs {
			if gc.Major {
				majors++
			}
		}
		fmt.Printf("  %d major / %d minor collections\n", majors, len(session.GCs)-majors)

		if name == "Arabeske" {
			// Find a System.gc() episode: perceptible, unstructured,
			// holding one big GC interval.
			trig := lagalyzer.Triggers(sessions, lagalyzer.PerceptibleThreshold, true)
			fmt.Printf("  perceptible episodes with unspecified trigger: %.0f%%\n",
				trig.Frac(lagalyzer.TriggerUnspecified)*100)
			for _, e := range session.PerceptibleEpisodes(lagalyzer.PerceptibleThreshold) {
				if lagalyzer.TriggerOf(e) == lagalyzer.TriggerUnspecified && e.Root.HasKind(lagalyzer.KindGC) {
					gc := e.Root.FindKind(lagalyzer.KindGC)
					fmt.Printf("  example: episode #%d lasts %v, of which the explicit collection takes %v:\n",
						e.Index, e.Dur(), gc.Dur())
					fmt.Print(indent(lagalyzer.SketchText(session, e)))
					break
				}
			}
		} else {
			// ArgoUML: collections spread through ordinary episodes.
			withGC := 0
			for _, e := range session.Episodes {
				if e.Root.HasKind(lagalyzer.KindGC) {
					withGC++
				}
			}
			fmt.Printf("  %d of %d traced episodes contain a collection\n", withGC, len(session.Episodes))
		}
		fmt.Println()
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
