// Quickstart: simulate one interactive session, mine its episode
// patterns, characterize the perceptible lag, and render an episode
// sketch — the complete LagAlyzer pipeline in ~60 lines of API calls.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"lagalyzer"
)

func main() {
	// 1. Get a workload. Real LagAlyzer consumes LiLa traces of real
	// applications; this reproduction ships simulated equivalents of
	// the paper's 14 study applications.
	profile, err := lagalyzer.ProfileByName("CrosswordSage")
	if err != nil {
		log.Fatal(err)
	}
	session, err := lagalyzer.Simulate(lagalyzer.SimConfig{
		Profile:        profile,
		Seed:           2026,
		SessionSeconds: 120,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: %s, %v end-to-end, %d traced episodes (+%d below the %v filter)\n",
		session.App, session.E2E(), len(session.Episodes), session.ShortCount, session.FilterThreshold)

	// 2. How often would a user notice? Episodes at or above 100 ms
	// are perceptible.
	long := session.PerceptibleEpisodes(lagalyzer.PerceptibleThreshold)
	fmt.Printf("perceptible episodes: %d\n\n", len(long))

	// 3. Mine patterns: equivalence classes on interval-tree
	// structure, ignoring timing and incidental GCs.
	set := lagalyzer.Classify([]*lagalyzer.Session{session}, lagalyzer.PatternOptions{})
	fmt.Printf("patterns: %d (covering %d episodes)\n", len(set.Patterns), set.Covered())
	for i, p := range set.Patterns {
		if i == 5 {
			break
		}
		fmt.Printf("  %-14s ×%-4d min %-8v avg %-8v max %-8v  %s\n",
			p.ID(), p.Count(), p.MinLag(), p.AvgLag(), p.MaxLag(), p.Occurrence(lagalyzer.PerceptibleThreshold))
	}

	// 4. Characterize: what triggered the episodes, and where did the
	// time go?
	trig := lagalyzer.Triggers([]*lagalyzer.Session{session}, lagalyzer.PerceptibleThreshold, false)
	fmt.Printf("\ntriggers: input %.0f%%, output %.0f%%, async %.0f%%, unspecified %.0f%%\n",
		trig.Frac(lagalyzer.TriggerInput)*100, trig.Frac(lagalyzer.TriggerOutput)*100,
		trig.Frac(lagalyzer.TriggerAsync)*100, trig.Frac(lagalyzer.TriggerUnspecified)*100)
	loc := lagalyzer.Location([]*lagalyzer.Session{session}, lagalyzer.PerceptibleThreshold, false)
	fmt.Printf("location: %.0f%% library / %.0f%% application code; %.1f%% GC, %.1f%% native\n",
		loc.Library*100, loc.App*100, loc.GC*100, loc.Native*100)

	// 5. Visualize the worst episode as an episode sketch (SVG with
	// hover tooltips; open it in any browser).
	worst := session.Episodes[0]
	for _, e := range session.Episodes {
		if e.Dur() > worst.Dur() {
			worst = e
		}
	}
	svg := lagalyzer.SketchSVG(session, worst)
	if err := os.WriteFile("quickstart_sketch.svg", []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst episode: #%d at %v (%v) — sketch written to quickstart_sketch.svg\n",
		worst.Index, worst.Start(), worst.Dur())
	fmt.Println()
	fmt.Print(lagalyzer.SketchText(session, worst))
}
