// Package report runs the paper's characterization study on simulated
// sessions and renders its tables and figures: Table III's overview
// statistics and Figures 3-8, in both plain text and SVG. It also
// carries the paper's published numbers so every experiment can be
// reported as paper-vs-measured.
package report

// PaperRow is one application's row of the paper's Table III.
type PaperRow struct {
	App        string
	E2E        float64 // seconds
	InEpsPct   float64
	Short      float64 // "< 3ms"
	Traced     float64 // "≥ 3ms"
	Long       float64 // "≥ 100ms"
	LongPerMin float64
	Dist       float64
	CoveredEps float64
	OneEpPct   float64
	Descs      float64
	Depth      float64
}

// PaperTable3 is Table III of the paper, one row per application plus
// the mean, exactly as published.
var PaperTable3 = []PaperRow{
	{"Arabeske", 461, 25, 323605, 6278, 177, 95, 427, 5456, 62, 7, 5},
	{"ArgoUML", 630, 35, 196247, 9066, 265, 75, 1292, 8011, 66, 10, 5},
	{"CrosswordSage", 367, 8, 109547, 1173, 36, 80, 119, 1068, 46, 5, 4},
	{"Euclide", 614, 35, 109572, 9676, 96, 26, 202, 9053, 35, 5, 4},
	{"FindBugs", 599, 21, 39254, 6336, 120, 56, 245, 6128, 44, 6, 4},
	{"FreeMind", 524, 11, 325135, 3462, 26, 30, 246, 3326, 55, 7, 5},
	{"GanttProject", 523, 47, 126940, 2564, 706, 168, 803, 2373, 70, 18, 12},
	{"JEdit", 502, 9, 117615, 2271, 24, 33, 150, 1610, 50, 5, 4},
	{"JFreeChart", 250, 26, 77720, 1658, 175, 164, 114, 1581, 44, 6, 5},
	{"JHotDraw", 421, 41, 246836, 5980, 338, 114, 454, 5675, 70, 8, 5},
	{"Jmol", 449, 46, 110929, 3197, 604, 180, 187, 3062, 52, 7, 5},
	{"Laoe", 460, 47, 1241198, 3174, 61, 18, 226, 3007, 58, 8, 5},
	{"NetBeans", 398, 27, 305177, 3120, 149, 82, 642, 2911, 66, 10, 5},
	{"SwingSet", 384, 20, 219569, 4310, 70, 57, 444, 4152, 59, 9, 6},
	{"Mean", 470, 28, 253525, 4447, 203, 84, 396, 4101, 56, 8, 5},
}

// PaperRowFor returns the published row for an application.
func PaperRowFor(app string) (PaperRow, bool) {
	for _, r := range PaperTable3 {
		if r.App == app {
			return r, true
		}
	}
	return PaperRow{}, false
}

// PaperFindings are the per-experiment quantitative claims of Section
// IV beyond Table III, used for the paper-vs-measured report of
// EXPERIMENTS.md. Values are fractions unless noted.
var PaperFindings = map[string]float64{
	// Figure 3: the Pareto shape — ~80 % of episodes covered by 20 %
	// of patterns.
	"fig3.episodes_in_top20pct_patterns": 0.80,

	// Figure 4 (study-wide averages).
	"fig4.consistent_patterns": 0.96, // always or never
	"fig4.ever_perceptible":    0.22, // once, sometimes, or always
	"fig4.gantt_always":        0.57,
	"fig4.freemind_never":      0.92,

	// Figure 5, perceptible panel (study-wide averages).
	"fig5.long.input":  0.40,
	"fig5.long.output": 0.47,
	"fig5.long.async":  0.07,
	// Per-application standouts.
	"fig5.arabeske.unspecified": 0.57,
	"fig5.jmol.output":          0.98,
	"fig5.argouml.input":        0.78,
	"fig5.findbugs.async":       0.42,

	// Figure 6, perceptible panel (study-wide averages).
	"fig6.long.library": 0.52,
	"fig6.long.app":     0.48,
	"fig6.long.gc":      0.11,
	"fig6.long.native":  0.05,
	// Per-application standouts.
	"fig6.arabeske.gc":       0.60,
	"fig6.argouml.gc":        0.26,
	"fig6.argouml.all.gc":    0.16,
	"fig6.jfreechart.native": 0.24,
	"fig6.euclide.library":   0.73,
	"fig6.jhotdraw.app":      0.96,

	// Figure 7: average runnable threads over all episodes.
	"fig7.all.runnable_threads": 1.2,

	// Figure 8 standouts, perceptible panel.
	"fig8.jedit.waiting":    0.25, // "over 25 %"
	"fig8.freemind.blocked": 0.12,
	"fig8.euclide.sleeping": 0.60, // "over 60 %"
}
