package report

import (
	"fmt"
	"strings"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/apps"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/stats"
)

// FormatTable2 renders the application catalog (the paper's Table II).
func FormatTable2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-10s %8s  %s\n", "Application", "Version", "Classes", "Description")
	for _, p := range apps.Catalog() {
		fmt.Fprintf(&b, "%-14s %-10s %8d  %s\n", p.Name, p.Version, p.Classes, p.Description)
	}
	return b.String()
}

// FormatTable3 renders the measured overview statistics in the layout
// of the paper's Table III.
func FormatTable3(rows []analysis.Overview) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s | %6s %6s | %8s %6s %7s %8s | %5s %6s %7s %5s %5s\n",
		"Benchmarks", "E2E[s]", "InEps%", "<3ms", ">=3ms", ">=100ms", "Long/min",
		"Dist", "#Eps", "One-Ep%", "Descs", "Depth")
	fmt.Fprintln(&b, strings.Repeat("-", 118))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s | %6.0f %6.0f | %8.0f %6.0f %7.0f %8.0f | %5.0f %6.0f %7.0f %5.0f %5.0f\n",
			r.App, r.E2ESeconds, r.InEpsFrac*100, r.Short, r.Traced, r.Perceptible, r.LongPerMin,
			r.Dist, r.CoveredEps, r.OneEpFrac*100, r.Descs, r.Depth)
	}
	return b.String()
}

// FormatTable3Comparison renders measured rows side by side with the
// paper's published Table III.
func FormatTable3Comparison(rows []analysis.Overview) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-6s | %6s %6s | %8s %6s %7s %8s | %5s %7s %5s %5s\n",
		"Benchmarks", "", "E2E[s]", "InEps%", "<3ms", ">=3ms", ">=100ms", "Long/min",
		"Dist", "One-Ep%", "Descs", "Depth")
	fmt.Fprintln(&b, strings.Repeat("-", 112))
	for _, r := range rows {
		paper, ok := PaperRowFor(r.App)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-14s %-6s | %6.0f %6.0f | %8.0f %6.0f %7.0f %8.0f | %5.0f %7.0f %5.0f %5.0f\n",
			r.App, "paper", paper.E2E, paper.InEpsPct, paper.Short, paper.Traced, paper.Long,
			paper.LongPerMin, paper.Dist, paper.OneEpPct, paper.Descs, paper.Depth)
		fmt.Fprintf(&b, "%-14s %-6s | %6.0f %6.0f | %8.0f %6.0f %7.0f %8.0f | %5.0f %7.0f %5.0f %5.0f\n",
			"", "ours", r.E2ESeconds, r.InEpsFrac*100, r.Short, r.Traced, r.Perceptible,
			r.LongPerMin, r.Dist, r.OneEpFrac*100, r.Descs, r.Depth)
	}
	return b.String()
}

// FormatFigure3 renders the cumulative distribution of episodes into
// patterns as a per-application table of curve samples.
func FormatFigure3(res *StudyResult) string {
	var b strings.Builder
	xs := []float64{0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 1.00}
	fmt.Fprintf(&b, "%-14s", "Benchmarks")
	for _, x := range xs {
		fmt.Fprintf(&b, " %5.0f%%", x*100)
	}
	fmt.Fprintln(&b, "   (episodes covered by top x% of patterns)")
	for _, a := range res.Apps {
		fmt.Fprintf(&b, "%-14s", a.Suite.App)
		for _, x := range xs {
			fmt.Fprintf(&b, " %5.1f%%", stats.ShareAt(a.CDF, x)*100)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFigure4 renders the occurrence classification bars.
func FormatFigure4(res *StudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %10s %6s %7s   (%% of patterns)\n", "Benchmarks", "Always", "Sometimes", "Once", "Never")
	order := []patterns.Occurrence{patterns.OccAlways, patterns.OccSometimes, patterns.OccOnce, patterns.OccNever}
	for _, a := range res.Apps {
		fr := a.OccurrenceFracs()
		fmt.Fprintf(&b, "%-14s", a.Suite.App)
		for _, occ := range order {
			fmt.Fprintf(&b, " %7.1f%%", fr[occ]*100)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFigure5 renders both trigger panels.
func FormatFigure5(res *StudyResult) string {
	var b strings.Builder
	render := func(title string, pick func(*AppResult) analysis.TriggerShares) {
		fmt.Fprintf(&b, "%s\n%-14s %7s %7s %7s %12s\n", title, "Benchmarks", "Input", "Output", "Async", "Unspecified")
		for _, a := range res.Apps {
			ts := pick(a)
			fmt.Fprintf(&b, "%-14s %6.1f%% %6.1f%% %6.1f%% %11.1f%%\n", a.Suite.App,
				ts.Frac(analysis.TriggerInput)*100, ts.Frac(analysis.TriggerOutput)*100,
				ts.Frac(analysis.TriggerAsync)*100, ts.Frac(analysis.TriggerUnspecified)*100)
		}
	}
	render("Triggers, all episodes:", func(a *AppResult) analysis.TriggerShares { return a.TriggerAll })
	fmt.Fprintln(&b)
	render("Triggers, episodes >= 100ms:", func(a *AppResult) analysis.TriggerShares { return a.TriggerLong })
	return b.String()
}

// FormatFigure6 renders both location panels.
func FormatFigure6(res *StudyResult) string {
	var b strings.Builder
	render := func(title string, pick func(*AppResult) analysis.LocationShares) {
		fmt.Fprintf(&b, "%s\n%-14s %9s %7s | %6s %7s\n", title, "Benchmarks", "RTLib", "App", "GC", "Native")
		for _, a := range res.Apps {
			loc := pick(a)
			fmt.Fprintf(&b, "%-14s %8.1f%% %6.1f%% | %5.1f%% %6.1f%%\n", a.Suite.App,
				loc.Library*100, loc.App*100, loc.GC*100, loc.Native*100)
		}
	}
	render("Location, all episodes:", func(a *AppResult) analysis.LocationShares { return a.LocationAll })
	fmt.Fprintln(&b)
	render("Location, episodes >= 100ms:", func(a *AppResult) analysis.LocationShares { return a.LocationLong })
	return b.String()
}

// FormatFigure7 renders both concurrency panels.
func FormatFigure7(res *StudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %14s   (avg runnable threads)\n", "Benchmarks", "All episodes", ">=100ms")
	for _, a := range res.Apps {
		fmt.Fprintf(&b, "%-14s %12.2f %14.2f\n", a.Suite.App, a.ConcurrencyAll, a.ConcurrencyLong)
	}
	return b.String()
}

// FormatFigure8 renders both cause panels.
func FormatFigure8(res *StudyResult) string {
	var b strings.Builder
	render := func(title string, pick func(*AppResult) analysis.CauseShares) {
		fmt.Fprintf(&b, "%s\n%-14s %8s %8s %9s %9s\n", title, "Benchmarks", "Blocked", "Wait", "Sleeping", "Runnable")
		for _, a := range res.Apps {
			c := pick(a)
			fmt.Fprintf(&b, "%-14s %7.1f%% %7.1f%% %8.1f%% %8.1f%%\n", a.Suite.App,
				c.Blocked*100, c.Waiting*100, c.Sleeping*100, c.Runnable*100)
		}
	}
	render("Causes, all episodes:", func(a *AppResult) analysis.CauseShares { return a.CausesAll })
	fmt.Fprintln(&b)
	render("Causes, episodes >= 100ms:", func(a *AppResult) analysis.CauseShares { return a.CausesLong })
	return b.String()
}

// FormatAll renders the complete study output (every table and
// figure), the payload of cmd/lagreport.
func FormatAll(res *StudyResult) string {
	var b strings.Builder
	sections := []struct{ title, body string }{
		{"Table II: applications", FormatTable2()},
		{"Table III: overall statistics", FormatTable3(res.Rows)},
		{"Figure 3: cumulative distribution of episodes into patterns", FormatFigure3(res)},
		{"Figure 4: long-latency episodes in patterns", FormatFigure4(res)},
		{"Figure 5: triggers of (perceptible) episodes", FormatFigure5(res)},
		{"Figure 6: location where time was spent", FormatFigure6(res)},
		{"Figure 7: concurrency in episodes", FormatFigure7(res)},
		{"Figure 8: synchronization and sleep during episodes", FormatFigure8(res)},
	}
	if res.Health.Degraded() {
		sections = append(sections, struct{ title, body string }{
			"Health: inputs lost or degraded", FormatHealth(res.Health)})
	}
	for i, s := range sections {
		if i > 0 {
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "== %s ==\n%s", s.title, s.body)
	}
	return b.String()
}
