package report

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestParallelLoadByteIdentical is the loader half of the
// determinism guarantee: over a faultinject-damaged corpus in salvage
// mode, the parallel trace-directory loader must produce byte-identical
// text and HTML reports — and an identical health ledger — to the
// sequential loader, for any worker count. Results are merged in
// sorted path order, so completion order must never leak into output.
func TestParallelLoadByteIdentical(t *testing.T) {
	dir := damagedCorpus(t)

	render := func(jobs int) (text, html, health string) {
		t.Helper()
		suites, lh, err := LoadTraceDirOptions(dir, LoadOptions{Salvage: true, Jobs: jobs})
		if err != nil {
			t.Fatalf("salvage load with jobs=%d: %v", jobs, err)
		}
		hj, err := json.Marshal(lh)
		if err != nil {
			t.Fatal(err)
		}
		res := AnalyzeSuites(suites, 0)
		res.Health.Merge(lh)
		return FormatAll(res), FormatHTML(res), string(hj)
	}

	wantText, wantHTML, wantHealth := render(1)
	if !strings.Contains(wantText, "Health") {
		t.Fatalf("sequential report over damaged corpus has no health section:\n%s", wantText)
	}
	for _, jobs := range []int{0, 2, 7} {
		text, html, health := render(jobs)
		if text != wantText {
			t.Errorf("jobs=%d text report differs from sequential", jobs)
		}
		if html != wantHTML {
			t.Errorf("jobs=%d HTML report differs from sequential", jobs)
		}
		if health != wantHealth {
			t.Errorf("jobs=%d health ledger differs from sequential:\nseq: %s\npar: %s", jobs, wantHealth, health)
		}
	}
}

// TestParallelStrictPathOrderError: under Strict, the parallel loader
// must surface the same error a sequential fail-fast scan reports —
// the first failing file in sorted path order — not whichever worker
// happened to fail first.
func TestParallelStrictPathOrderError(t *testing.T) {
	dir := damagedCorpus(t)

	_, _, seqErr := LoadTraceDirOptions(dir, LoadOptions{Strict: true, Jobs: 1})
	if seqErr == nil {
		t.Fatal("strict sequential load over damaged corpus succeeded")
	}
	for _, jobs := range []int{0, 2, 7} {
		_, _, parErr := LoadTraceDirOptions(dir, LoadOptions{Strict: true, Jobs: jobs})
		if parErr == nil {
			t.Fatalf("strict load with jobs=%d succeeded", jobs)
		}
		if parErr.Error() != seqErr.Error() {
			t.Errorf("jobs=%d strict error = %q, want sequential's %q", jobs, parErr, seqErr)
		}
	}
}
