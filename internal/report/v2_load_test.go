package report

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
)

// crossFormatCorpus writes the same simulated study three times — v1
// text, v1 binary, and v2 — with identical file names, and returns the
// three directory paths.
func crossFormatCorpus(t *testing.T) (textDir, binDir, v2Dir string) {
	t.Helper()
	root := t.TempDir()
	dirs := map[lila.Format]string{
		lila.FormatText:   filepath.Join(root, "text"),
		lila.FormatBinary: filepath.Join(root, "binary"),
		lila.FormatV2:     filepath.Join(root, "v2"),
	}
	for _, d := range dirs {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, app := range []string{"CrosswordSage", "GanttProject"} {
		p, err := apps.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 2; id++ {
			s, err := sim.Run(sim.Config{Profile: p, SessionID: id, Seed: 17, SessionSeconds: 10})
			if err != nil {
				t.Fatal(err)
			}
			name := filepath.Base(p.Name) + "_" + string(rune('0'+id)) + ".lila"
			for f, d := range dirs {
				var buf bytes.Buffer
				if err := lila.WriteSession(&buf, f, s); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(d, name), buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return dirs[lila.FormatText], dirs[lila.FormatBinary], dirs[lila.FormatV2]
}

// TestCrossFormatByteIdenticalStudy pins the format-independence
// guarantee end to end: the same study stored as v1 text, v1 binary,
// and v2 must render byte-identical text and HTML reports.
func TestCrossFormatByteIdenticalStudy(t *testing.T) {
	textDir, binDir, v2Dir := crossFormatCorpus(t)

	render := func(dir string) (string, string) {
		t.Helper()
		suites, _, err := LoadTraceDirOptions(dir, LoadOptions{Jobs: 1})
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		res := AnalyzeSuites(suites, 0)
		return FormatAll(res), FormatHTML(res)
	}
	wantText, wantHTML := render(textDir)
	for _, dir := range []string{binDir, v2Dir} {
		gotText, gotHTML := render(dir)
		if gotText != wantText {
			t.Errorf("%s text report differs from text-format baseline", filepath.Base(dir))
		}
		if gotHTML != wantHTML {
			t.Errorf("%s HTML report differs from text-format baseline", filepath.Base(dir))
		}
	}
}

// TestV2GUIOnlySelectiveLoad loads a v2 study twice — everything, and
// GUI-thread-only via the block index — and checks the episode-level
// results agree: episodes are built from GUI-thread dispatch intervals
// alone, so skipping worker blocks must not change them.
func TestV2GUIOnlySelectiveLoad(t *testing.T) {
	_, _, v2Dir := crossFormatCorpus(t)

	full, _, err := LoadTraceDirOptions(v2Dir, LoadOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	gui, _, err := LoadTraceDirOptions(v2Dir, LoadOptions{Jobs: 1, GUIOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(gui) != len(full) {
		t.Fatalf("GUI-only load found %d suites, full load %d", len(gui), len(full))
	}
	for i := range full {
		fs, gs := full[i], gui[i]
		if fs.App != gs.App || len(fs.Sessions) != len(gs.Sessions) {
			t.Fatalf("suite %d mismatch: %s/%d vs %s/%d",
				i, fs.App, len(fs.Sessions), gs.App, len(gs.Sessions))
		}
		for j := range fs.Sessions {
			f, g := fs.Sessions[j], gs.Sessions[j]
			if len(f.Episodes) != len(g.Episodes) {
				t.Errorf("%s/%d: GUI-only load built %d episodes, full %d",
					f.App, f.ID, len(g.Episodes), len(f.Episodes))
				continue
			}
			for k := range f.Episodes {
				fe, ge := f.Episodes[k], g.Episodes[k]
				if fe.Root.Start != ge.Root.Start || fe.Root.End != ge.Root.End {
					t.Errorf("%s/%d episode %d: [%v,%v] vs [%v,%v]",
						f.App, f.ID, k, ge.Root.Start, ge.Root.End, fe.Root.Start, fe.Root.End)
				}
			}
		}
	}
}

// TestV2BlockLossItemizedInStudyHealth corrupts one block of one v2
// trace and checks the study's health ledger itemizes exactly that
// block's records against exactly that file — per-block loss, not a
// resync scan, not a dead file.
func TestV2BlockLossItemizedInStudyHealth(t *testing.T) {
	dir := t.TempDir()
	p, err := apps.ByName("CrosswordSage")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.Run(sim.Config{Profile: p, SessionID: 0, Seed: 23, SessionSeconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	recs := lila.Flatten(s)
	var buf bytes.Buffer
	w, err := lila.NewV2WriterOptions(&buf, lila.HeaderOf(s), lila.V2WriterOptions{BlockRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	v, err := lila.ParseV2(data, lila.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := v.Blocks()
	if len(blocks) < 4 {
		t.Fatalf("corpus too small: %d blocks", len(blocks))
	}
	target := blocks[len(blocks)/2]
	data[target.Offset+target.Length-1] ^= 0xff

	goodPath := filepath.Join(dir, "a_good.lila")
	badPath := filepath.Join(dir, "b_damaged.lila")
	var good bytes.Buffer
	if err := lila.WriteSession(&good, lila.FormatV2, s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goodPath, good.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	suites, health, err := LoadTraceDirOptions(dir, LoadOptions{Salvage: true, Jobs: 1})
	if err != nil {
		t.Fatalf("salvage load: %v", err)
	}
	if n := len(suites[0].Sessions); n != 2 {
		t.Fatalf("loaded %d sessions, want both (one salvaged)", n)
	}
	var fh *FileHealth
	for i := range health.Files {
		if health.Files[i].Path == badPath {
			fh = &health.Files[i]
		}
	}
	if fh == nil {
		t.Fatalf("damaged file not in health ledger: %+v", health.Files)
	}
	if fh.Salvage == nil {
		t.Fatal("damaged file has no salvage report")
	}
	if fh.Salvage.RecordsDropped != target.Records {
		t.Errorf("dropped %d records, want exactly the corrupt block's %d",
			fh.Salvage.RecordsDropped, target.Records)
	}
	if fh.Salvage.BytesSkipped != target.Length {
		t.Errorf("skipped %d bytes, want the block's %d", fh.Salvage.BytesSkipped, target.Length)
	}
	if goodFileListed := func() bool {
		for _, f := range health.Files {
			if f.Path == goodPath {
				return true
			}
		}
		return false
	}(); goodFileListed {
		t.Error("intact file appears in the damage ledger")
	}
}

// TestV2SelectWindowLoad drives the Select plumbing: a time-window
// load must produce sessions whose episodes all overlap the window.
func TestV2SelectWindowLoad(t *testing.T) {
	_, _, v2Dir := crossFormatCorpus(t)
	full, _, err := LoadTraceDirOptions(v2Dir, LoadOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var minT, maxT trace.Time = 2e9, 6e9
	windowed, _, err := LoadTraceDirOptions(v2Dir, LoadOptions{
		Jobs:   1,
		Select: &lila.RecordFilter{MinTime: minT, MaxTime: maxT},
	})
	if err != nil {
		t.Fatal(err)
	}
	fullEps, winEps := 0, 0
	for _, suite := range full {
		for _, s := range suite.Sessions {
			fullEps += len(s.Episodes)
		}
	}
	for _, suite := range windowed {
		for _, s := range suite.Sessions {
			winEps += len(s.Episodes)
			for _, e := range s.Episodes {
				if e.Root.Start < minT || e.Root.Start > maxT {
					t.Errorf("%s/%d: episode starting at %v escaped window [%v,%v]",
						s.App, s.ID, e.Root.Start, minT, maxT)
				}
			}
		}
	}
	if winEps == 0 || winEps >= fullEps {
		t.Errorf("windowed load built %d episodes vs %d full; window did not select", winEps, fullEps)
	}
}
