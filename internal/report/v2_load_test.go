package report

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
)

// crossFormatCorpus writes the same simulated study four times — v1
// text, v1 binary, v2, and flate-compressed v2 — with identical file
// names, and returns the four directory paths.
func crossFormatCorpus(t *testing.T) (textDir, binDir, v2Dir, v2cDir string) {
	t.Helper()
	root := t.TempDir()
	encodings := []struct {
		opts lila.WriteOptions
		dir  string
	}{
		{lila.WriteOptions{Format: lila.FormatText}, filepath.Join(root, "text")},
		{lila.WriteOptions{Format: lila.FormatBinary}, filepath.Join(root, "binary")},
		{lila.WriteOptions{Format: lila.FormatV2}, filepath.Join(root, "v2")},
		{lila.WriteOptions{Format: lila.FormatV2, Compression: lila.CompressionFlate}, filepath.Join(root, "v2flate")},
	}
	for _, e := range encodings {
		if err := os.MkdirAll(e.dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, app := range []string{"CrosswordSage", "GanttProject"} {
		p, err := apps.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 2; id++ {
			// 40-second sessions: long enough that record blocks (which
			// compress) dominate the string/stack tables (which do not),
			// giving the compression-ratio check a realistic corpus.
			s, err := sim.Run(sim.Config{Profile: p, SessionID: id, Seed: 17, SessionSeconds: 40})
			if err != nil {
				t.Fatal(err)
			}
			name := filepath.Base(p.Name) + "_" + string(rune('0'+id)) + ".lila"
			for _, e := range encodings {
				var buf bytes.Buffer
				if err := lila.WriteSessionOptions(&buf, e.opts, s); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(e.dir, name), buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return encodings[0].dir, encodings[1].dir, encodings[2].dir, encodings[3].dir
}

// dirSize sums the corpus bytes under dir.
func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		n += info.Size()
	}
	return n
}

// TestCrossFormatByteIdenticalStudy pins the format-independence
// guarantee end to end: the same study stored as v1 text, v1 binary,
// v2, and compressed v2 must render byte-identical text and HTML
// reports — and the compressed corpus must be at least 2x smaller than
// the raw v2 one while doing so. The compressed directory additionally
// loads with intra-file block workers, which must change nothing.
func TestCrossFormatByteIdenticalStudy(t *testing.T) {
	textDir, binDir, v2Dir, v2cDir := crossFormatCorpus(t)

	render := func(dir string, o LoadOptions) (string, string) {
		t.Helper()
		suites, _, err := LoadTraceDirOptions(dir, o)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		res := AnalyzeSuites(suites, 0)
		return FormatAll(res), FormatHTML(res)
	}
	wantText, wantHTML := render(textDir, LoadOptions{Jobs: 1})
	for _, tc := range []struct {
		dir  string
		opts LoadOptions
	}{
		{binDir, LoadOptions{Jobs: 1}},
		{v2Dir, LoadOptions{Jobs: 1}},
		{v2cDir, LoadOptions{Jobs: 1}},
		{v2cDir, LoadOptions{Jobs: 1, BlockJobs: 4}},
	} {
		gotText, gotHTML := render(tc.dir, tc.opts)
		if gotText != wantText {
			t.Errorf("%s (block jobs %d) text report differs from text-format baseline",
				filepath.Base(tc.dir), tc.opts.BlockJobs)
		}
		if gotHTML != wantHTML {
			t.Errorf("%s (block jobs %d) HTML report differs from text-format baseline",
				filepath.Base(tc.dir), tc.opts.BlockJobs)
		}
	}

	raw, compressed := dirSize(t, v2Dir), dirSize(t, v2cDir)
	if compressed*2 > raw {
		t.Errorf("compressed corpus %d bytes, raw v2 %d: ratio %.2fx < 2x",
			compressed, raw, float64(raw)/float64(compressed))
	}
}

// TestV2GUIOnlySelectiveLoad loads a v2 study twice — everything, and
// GUI-thread-only via the block index — and checks the episode-level
// results agree: episodes are built from GUI-thread dispatch intervals
// alone, so skipping worker blocks must not change them.
func TestV2GUIOnlySelectiveLoad(t *testing.T) {
	_, _, v2Dir, _ := crossFormatCorpus(t)

	full, _, err := LoadTraceDirOptions(v2Dir, LoadOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	gui, _, err := LoadTraceDirOptions(v2Dir, LoadOptions{Jobs: 1, GUIOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(gui) != len(full) {
		t.Fatalf("GUI-only load found %d suites, full load %d", len(gui), len(full))
	}
	for i := range full {
		fs, gs := full[i], gui[i]
		if fs.App != gs.App || len(fs.Sessions) != len(gs.Sessions) {
			t.Fatalf("suite %d mismatch: %s/%d vs %s/%d",
				i, fs.App, len(fs.Sessions), gs.App, len(gs.Sessions))
		}
		for j := range fs.Sessions {
			f, g := fs.Sessions[j], gs.Sessions[j]
			if len(f.Episodes) != len(g.Episodes) {
				t.Errorf("%s/%d: GUI-only load built %d episodes, full %d",
					f.App, f.ID, len(g.Episodes), len(f.Episodes))
				continue
			}
			for k := range f.Episodes {
				fe, ge := f.Episodes[k], g.Episodes[k]
				if fe.Root.Start != ge.Root.Start || fe.Root.End != ge.Root.End {
					t.Errorf("%s/%d episode %d: [%v,%v] vs [%v,%v]",
						f.App, f.ID, k, ge.Root.Start, ge.Root.End, fe.Root.Start, fe.Root.End)
				}
			}
		}
	}
}

// TestV2BlockLossItemizedInStudyHealth corrupts one block of one v2
// trace and checks the study's health ledger itemizes exactly that
// block's records against exactly that file — per-block loss, not a
// resync scan, not a dead file.
func TestV2BlockLossItemizedInStudyHealth(t *testing.T) {
	for _, comp := range []lila.Compression{lila.CompressionNone, lila.CompressionFlate} {
		t.Run(comp.String(), func(t *testing.T) { testV2BlockLossItemized(t, comp) })
	}
}

func testV2BlockLossItemized(t *testing.T, comp lila.Compression) {
	dir := t.TempDir()
	p, err := apps.ByName("CrosswordSage")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.Run(sim.Config{Profile: p, SessionID: 0, Seed: 23, SessionSeconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	recs := lila.Flatten(s)
	var buf bytes.Buffer
	w, err := lila.NewV2WriterOptions(&buf, lila.HeaderOf(s), lila.V2WriterOptions{BlockRecords: 64, Compression: comp})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	v, err := lila.ParseV2(data, lila.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := v.Blocks()
	if len(blocks) < 4 {
		t.Fatalf("corpus too small: %d blocks", len(blocks))
	}
	target := blocks[len(blocks)/2]
	if comp == lila.CompressionFlate && !target.Compressed() {
		t.Fatal("target block did not compress; corpus too small for the test")
	}
	data[target.Offset+target.Length-1] ^= 0xff

	goodPath := filepath.Join(dir, "a_good.lila")
	badPath := filepath.Join(dir, "b_damaged.lila")
	var good bytes.Buffer
	if err := lila.WriteSession(&good, lila.FormatV2, s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goodPath, good.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	suites, health, err := LoadTraceDirOptions(dir, LoadOptions{Salvage: true, Jobs: 1})
	if err != nil {
		t.Fatalf("salvage load: %v", err)
	}
	if n := len(suites[0].Sessions); n != 2 {
		t.Fatalf("loaded %d sessions, want both (one salvaged)", n)
	}
	var fh *FileHealth
	for i := range health.Files {
		if health.Files[i].Path == badPath {
			fh = &health.Files[i]
		}
	}
	if fh == nil {
		t.Fatalf("damaged file not in health ledger: %+v", health.Files)
	}
	if fh.Salvage == nil {
		t.Fatal("damaged file has no salvage report")
	}
	if fh.Salvage.RecordsDropped != target.Records {
		t.Errorf("dropped %d records, want exactly the corrupt block's %d",
			fh.Salvage.RecordsDropped, target.Records)
	}
	if fh.Salvage.BytesSkipped != target.Length {
		t.Errorf("skipped %d bytes, want the block's %d", fh.Salvage.BytesSkipped, target.Length)
	}
	if goodFileListed := func() bool {
		for _, f := range health.Files {
			if f.Path == goodPath {
				return true
			}
		}
		return false
	}(); goodFileListed {
		t.Error("intact file appears in the damage ledger")
	}
}

// TestV2SelectWindowLoad drives the Select plumbing: a time-window
// load must produce sessions whose episodes all overlap the window.
func TestV2SelectWindowLoad(t *testing.T) {
	_, _, v2Dir, _ := crossFormatCorpus(t)
	full, _, err := LoadTraceDirOptions(v2Dir, LoadOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var minT, maxT trace.Time = 2e9, 6e9
	windowed, _, err := LoadTraceDirOptions(v2Dir, LoadOptions{
		Jobs:   1,
		Select: &lila.RecordFilter{MinTime: minT, MaxTime: maxT},
	})
	if err != nil {
		t.Fatal(err)
	}
	fullEps, winEps := 0, 0
	for _, suite := range full {
		for _, s := range suite.Sessions {
			fullEps += len(s.Episodes)
		}
	}
	for _, suite := range windowed {
		for _, s := range suite.Sessions {
			winEps += len(s.Episodes)
			for _, e := range s.Episodes {
				if e.Root.Start < minT || e.Root.Start > maxT {
					t.Errorf("%s/%d: episode starting at %v escaped window [%v,%v]",
						s.App, s.ID, e.Root.Start, minT, maxT)
				}
			}
		}
	}
	if winEps == 0 || winEps >= fullEps {
		t.Errorf("windowed load built %d episodes vs %d full; window did not select", winEps, fullEps)
	}
}
