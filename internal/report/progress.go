package report

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progress reports study completion to a writer (lagreport points it
// at stderr): one line per finished unit of work — a simulated session
// or an analyzed application — with percent done, elapsed time, and an
// ETA extrapolated from the mean unit cost so far. A nil *progress is
// inert, so the silent path costs nothing.
type progress struct {
	w     io.Writer
	total int

	mu    sync.Mutex
	done  int
	start time.Time
}

// newProgress returns a tracker for total units writing to w, or nil
// when w is nil (progress disabled).
func newProgress(w io.Writer, total int) *progress {
	if w == nil {
		return nil
	}
	return &progress{w: w, total: total, start: time.Now()}
}

// skip advances the counter by n units without printing one line per
// unit — used when a checkpoint resume satisfies a whole app's
// simulation at once — then prints a single line for the batch.
func (p *progress) skip(n int, label string) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	p.done += n - 1
	p.mu.Unlock()
	p.step(label)
}

// step records one completed unit and prints the updated state.
func (p *progress) step(label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	elapsed := time.Since(p.start)
	line := fmt.Sprintf("report: %3d/%d (%3.0f%%) %-32s elapsed %8s",
		p.done, p.total, 100*float64(p.done)/float64(p.total), label,
		elapsed.Round(10*time.Millisecond))
	if p.done < p.total {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		line += fmt.Sprintf("  eta %8s", eta.Round(10*time.Millisecond))
	}
	fmt.Fprintln(p.w, line)
}
