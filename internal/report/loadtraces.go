package report

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
)

// mTraceBytes counts the raw trace bytes decoded by LoadTraceDir
// (one atomic add per file, not per record).
var mTraceBytes = obs.NewCounter("report_trace_bytes_total",
	"trace file bytes decoded by the trace-directory loader")

// LoadTraceDir reads every LiLa trace under dir (recursively; both
// encodings, sniffed), groups the sessions into suites by application
// name, and returns the suites ordered by name. It is the on-disk
// counterpart of the simulator path: `lagreport -traces dir`
// characterizes recorded traces exactly like simulated ones.
func LoadTraceDir(dir string) ([]*trace.Suite, error) {
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("report: scanning %s: %w", dir, err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("report: no trace files under %s", dir)
	}

	byApp := make(map[string]*trace.Suite)
	var order []string
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		cr := obs.NewCountingReader(f, nil)
		s, err := treebuild.ReadSession(cr)
		f.Close()
		mTraceBytes.Add(cr.Bytes())
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", path, err)
		}
		suite := byApp[s.App]
		if suite == nil {
			suite = &trace.Suite{App: s.App}
			byApp[s.App] = suite
			order = append(order, s.App)
		}
		suite.Sessions = append(suite.Sessions, s)
	}
	sort.Strings(order)
	suites := make([]*trace.Suite, 0, len(order))
	for _, app := range order {
		suites = append(suites, byApp[app])
	}
	return suites, nil
}

// AnalyzeSuites runs the full per-application characterization over
// already-loaded suites — the entry point for trace-directory studies.
func AnalyzeSuites(suites []*trace.Suite, threshold trace.Dur) *StudyResult {
	return AnalyzeSuitesContext(context.Background(), suites, threshold, nil)
}

// AnalyzeSuitesContext is AnalyzeSuites with observability: phase
// spans from a context-carried obs.Trace and per-app progress lines
// with an ETA on progressW (nil = silent).
func AnalyzeSuitesContext(ctx context.Context, suites []*trace.Suite, threshold trace.Dur, progressW io.Writer) *StudyResult {
	ctx, endStudy := obs.PhaseSpan(ctx, "study")
	defer endStudy()

	if threshold == 0 {
		threshold = trace.DefaultPerceptibleThreshold
	}
	pr := newProgress(progressW, len(suites))
	res := &StudyResult{Config: StudyConfig{Threshold: threshold}}
	for _, suite := range suites {
		actx, endApp := obs.Span(ctx, "app:"+suite.App)
		a := analyzeSuite(actx, suite, threshold, 0)
		endApp()
		mSessions.Add(int64(len(suite.Sessions)))
		pr.step("analyze " + suite.App)
		res.Apps = append(res.Apps, a)
		res.Rows = append(res.Rows, a.Overview)
	}
	mApps.Add(int64(len(suites)))
	if len(res.Rows) > 0 {
		res.Rows = append(res.Rows, analysis.MeanOverview(res.Rows))
	}
	return res
}
