package report

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
)

// LoadTraceDir reads every LiLa trace under dir (recursively; both
// encodings, sniffed), groups the sessions into suites by application
// name, and returns the suites ordered by name. It is the on-disk
// counterpart of the simulator path: `lagreport -traces dir`
// characterizes recorded traces exactly like simulated ones.
func LoadTraceDir(dir string) ([]*trace.Suite, error) {
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("report: scanning %s: %w", dir, err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("report: no trace files under %s", dir)
	}

	byApp := make(map[string]*trace.Suite)
	var order []string
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		s, err := treebuild.ReadSession(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", path, err)
		}
		suite := byApp[s.App]
		if suite == nil {
			suite = &trace.Suite{App: s.App}
			byApp[s.App] = suite
			order = append(order, s.App)
		}
		suite.Sessions = append(suite.Sessions, s)
	}
	sort.Strings(order)
	suites := make([]*trace.Suite, 0, len(order))
	for _, app := range order {
		suites = append(suites, byApp[app])
	}
	return suites, nil
}

// AnalyzeSuites runs the full per-application characterization over
// already-loaded suites — the entry point for trace-directory studies.
func AnalyzeSuites(suites []*trace.Suite, threshold trace.Dur) *StudyResult {
	if threshold == 0 {
		threshold = trace.DefaultPerceptibleThreshold
	}
	res := &StudyResult{Config: StudyConfig{Threshold: threshold}}
	for _, suite := range suites {
		a := AnalyzeSuite(suite, threshold)
		res.Apps = append(res.Apps, a)
		res.Rows = append(res.Rows, a.Overview)
	}
	if len(res.Rows) > 0 {
		res.Rows = append(res.Rows, analysis.MeanOverview(res.Rows))
	}
	return res
}
