package report

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/stream"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
)

// mTraceBytes counts the raw trace bytes decoded by LoadTraceDir
// (one atomic add per file, not per record).
var mTraceBytes = obs.NewCounter("report_trace_bytes_total",
	"trace file bytes decoded by the trace-directory loader")

// LoadOptions configure the trace-directory loader.
type LoadOptions struct {
	// Salvage enables damage-tolerant ingest end to end: salvage-mode
	// decoding (resynchronize past wire damage), lenient session
	// rebuild (skip inconsistent records, synthesize a missing end),
	// and the streaming-analyzer fallback for over-budget sessions.
	Salvage bool
	// Strict restores the historical fail-fast contract: the first
	// file (in sorted path order) that fails to load aborts the whole
	// scan with its error.
	Strict bool
	// Limits are the resource guards; zero fields take defaults.
	Limits lila.Limits
	// Select restricts decode to the records matching the filter (nil
	// loads everything). Selection is format-independent: v1 readers
	// filter record by record, while v2 traces additionally skip whole
	// blocks via their footer index without ever decoding them.
	Select *lila.RecordFilter
	// GUIOnly restricts each session to its GUI thread, resolved per
	// file from the trace header — the episode-building hot path. It
	// overrides Select.Threads; Select's time window still applies.
	GUIOnly bool
	// Jobs bounds how many trace files are decoded concurrently:
	// 0 means one worker per GOMAXPROCS, 1 restores the sequential
	// loader. The worker count never changes the result — files are
	// merged in sorted path order whatever order they finish in — and
	// under Strict the error surfaced is always the path-order-first
	// failure, exactly as a sequential scan would report.
	Jobs int
	// BlockJobs bounds how many blocks decode concurrently *within*
	// one v2 file. 0 derives a per-file share of Jobs (a single-file
	// load gets all of Jobs; with as many files as workers it stays 1,
	// since the file pool already saturates the cores); 1 keeps
	// intra-file decode sequential. Like Jobs, it never changes the
	// result: the v2 block merge is byte-identical at any worker count.
	BlockJobs int
	// Paths, when non-empty, names the exact files to load (already
	// sorted) instead of walking the directory — the hook distributed
	// trace shards use to load their slice of a corpus. Paths outside
	// dir are allowed; dir is then only used in error messages.
	Paths []string
}

func (o LoadOptions) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// blockJobs resolves the intra-file decode width for a load of files
// trace files: the explicit BlockJobs if set, else each file's share
// of the worker budget left over by the cross-file pool.
func (o LoadOptions) blockJobs(files int) int {
	if o.BlockJobs > 0 {
		return o.BlockJobs
	}
	if j := o.jobs(); files > 0 && files < j {
		return j / files
	}
	return 1
}

// LoadTraceDir reads every LiLa trace under dir (recursively; both
// encodings, sniffed), groups the sessions into suites by application
// name, and returns the suites ordered by name. It is the on-disk
// counterpart of the simulator path: `lagreport -traces dir`
// characterizes recorded traces exactly like simulated ones.
//
// A file that fails to load is skipped (use LoadTraceDirOptions to see
// the per-file health, or Strict to fail fast); the scan errors only
// when no session loads at all.
func LoadTraceDir(dir string) ([]*trace.Suite, error) {
	suites, _, err := LoadTraceDirOptions(dir, LoadOptions{})
	return suites, err
}

// LoadTraceDirOptions is LoadTraceDir with explicit options and a
// health ledger. The returned health is non-nil whenever the scan ran,
// including alongside a no-sessions error; its Files list (ordered by
// path, damaged files only) feeds the study's Health section.
func LoadTraceDirOptions(dir string, o LoadOptions) ([]*trace.Suite, *StudyHealth, error) {
	return LoadTraceDirContext(context.Background(), dir, o)
}

// LoadTraceDirContext is LoadTraceDirOptions with cancellation and
// observability: files are decoded by a pool of o.Jobs workers (a
// context-carried obs.Trace collects a "load" phase span with per-file
// child spans attributed to pool workers), and a canceled context
// aborts the scan with the context's error. Decode results are merged
// in sorted path order regardless of completion order, so suites,
// session order, and the health ledger are byte-identical whatever the
// worker count.
func LoadTraceDirContext(ctx context.Context, dir string, o LoadOptions) ([]*trace.Suite, *StudyHealth, error) {
	ctx, endLoad := obs.PhaseSpan(ctx, "load")
	defer endLoad()

	paths := o.Paths
	if len(paths) == 0 {
		var err error
		if paths, err = ListTraceFiles(dir); err != nil {
			return nil, nil, err
		}
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("report: no trace files under %s", dir)
	}
	o.BlockJobs = o.blockJobs(len(paths))

	type loadedFile struct {
		s  *trace.Session
		fh FileHealth
	}
	results := make([]loadedFile, len(paths))
	if jobs := o.jobs(); jobs <= 1 || len(paths) == 1 {
		// Sequential scan: under Strict the first failure aborts
		// before any later file is even opened.
		for i, path := range paths {
			if cerr := ctx.Err(); cerr != nil {
				return nil, nil, cerr
			}
			s, fh := loadOne(path, o)
			if fh.Error != "" && o.Strict {
				return nil, nil, fmt.Errorf("report: %s: %s", path, fh.Error)
			}
			results[i] = loadedFile{s, fh}
		}
	} else {
		runPool(jobs, len(paths), func(worker, i int) {
			if ctx.Err() != nil {
				return
			}
			_, end := obs.Span(obs.WithWorker(ctx, worker), "file")
			s, fh := loadOne(paths[i], o)
			end()
			results[i] = loadedFile{s, fh}
		})
		if cerr := ctx.Err(); cerr != nil {
			// Some slots were skipped after cancellation; a partial
			// merge would misattribute the loss, so surface the
			// cancellation itself.
			return nil, nil, cerr
		}
	}

	health := &StudyHealth{}
	byApp := make(map[string]*trace.Suite)
	var order []string
	for i := range results {
		s, fh := results[i].s, results[i].fh
		if fh.Error != "" && o.Strict {
			// Path-order-first failure: identical to what the
			// sequential scan reports, whichever file failed first in
			// wall-clock terms.
			return nil, nil, fmt.Errorf("report: %s: %s", paths[i], fh.Error)
		}
		if fh.Damaged() {
			health.Files = append(health.Files, fh)
		}
		if s == nil {
			// Fatal file error or streaming-degraded session: either
			// way the study loses one session.
			health.SessionsSkipped++
			mSessionsSkipped.Add(1)
			continue
		}
		suite := byApp[s.App]
		if suite == nil {
			suite = &trace.Suite{App: s.App}
			byApp[s.App] = suite
			order = append(order, s.App)
		}
		suite.Sessions = append(suite.Sessions, s)
	}
	if len(order) == 0 {
		return nil, health, fmt.Errorf("report: no loadable trace sessions under %s (%d files failed)",
			dir, len(health.Files))
	}
	sort.Strings(order)
	suites := make([]*trace.Suite, 0, len(order))
	for _, app := range order {
		suites = append(suites, byApp[app])
	}
	return suites, health, nil
}

// ListTraceFiles returns every file under dir (recursively), sorted by
// path — the canonical corpus order the loader merges in. Shard
// planners use it to carve a corpus into contiguous path ranges whose
// concatenation in shard order reproduces the single-node scan.
func ListTraceFiles(dir string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("report: scanning %s: %w", dir, err)
	}
	sort.Strings(paths)
	return paths, nil
}

// filterFor resolves the effective record selection for one file,
// given its header. Nil means "load everything".
func (o LoadOptions) filterFor(h lila.Header) *lila.RecordFilter {
	if !o.GUIOnly && o.Select.All() {
		return nil
	}
	f := &lila.RecordFilter{}
	if o.Select != nil {
		*f = *o.Select
	}
	if o.GUIOnly {
		f.Threads = []trace.ThreadID{h.GUIThread}
	}
	return f
}

// loadOne ingests one trace file. A nil session with an empty
// fh.Error means the session was degraded to streaming aggregates.
func loadOne(path string, o LoadOptions) (*trace.Session, FileHealth) {
	fh := FileHealth{Path: path}
	f, err := os.Open(path)
	if err != nil {
		fh.Error = err.Error()
		return nil, fh
	}
	defer f.Close()
	if isV2File(f) {
		return loadOneV2(f, path, o)
	}
	cr := obs.NewCountingReader(f, nil)
	ro := lila.ReaderOptions{Salvage: o.Salvage, Limits: o.Limits}
	bo := treebuild.Options{Lenient: o.Salvage, Limits: o.Limits}
	lr, err := lila.NewReaderOptions(cr, ro)
	if err != nil {
		mTraceBytes.Add(cr.Bytes())
		fh.Error = err.Error()
		return nil, fh
	}
	if filt := o.filterFor(lr.Header()); filt != nil {
		lr = lila.NewFilteredReader(lr, filt)
	}
	s, diag, err := treebuild.BuildOptions(lr, bo)
	mTraceBytes.Add(cr.Bytes())
	if rep := lila.SalvageOf(lr); rep.Damaged() {
		fh.Salvage = rep
	}
	if diag.Degraded() {
		fh.Diagnostics = diag
	}
	if err == nil {
		fh.App = s.App
		return s, fh
	}
	if errors.Is(err, treebuild.ErrSessionTooLarge) && !o.Strict {
		// The session tree would blow the memory budget; fall back to
		// the single-pass streaming analyzer, which needs O(stack
		// depth) memory, and keep its aggregate counts in the health.
		if st, ok := streamFallback(path, o); ok {
			fh.App = st.App
			fh.DegradedToStream = true
			fh.StreamEpisodes = st.Episodes
			fh.StreamRecords = st.Records
			return nil, fh
		}
	}
	fh.Error = err.Error()
	return nil, fh
}

// isV2File sniffs f for the v2 magic, rewinding either way.
func isV2File(f *os.File) bool {
	var magic [5]byte
	_, err := f.ReadAt(magic[:], 0)
	return err == nil && string(magic[:4]) == "LILA" && magic[4] == lila.V2FormatVersion
}

// loadOneV2 is the v2 fast path: the file is mapped (mmap where the
// platform has it), the footer index parsed, and only the blocks the
// effective filter selects are decoded — no per-record interning or
// stack canonicalization, since v2 carries its tables up front.
func loadOneV2(f *os.File, path string, o LoadOptions) (*trace.Session, FileHealth) {
	fh := FileHealth{Path: path}
	v, err := lila.OpenV2File(f, o.Limits)
	if err != nil {
		fh.Error = err.Error()
		return nil, fh
	}
	defer v.Close()
	mTraceBytes.Add(v.Size())
	recs, rep, err := v.RecordsJobs(o.filterFor(v.Header()), o.Salvage, max(1, o.BlockJobs))
	if rep.Damaged() {
		fh.Salvage = rep
	}
	if err != nil {
		fh.Error = err.Error()
		return nil, fh
	}
	bo := treebuild.Options{Lenient: o.Salvage, Limits: o.Limits}
	s, diag, err := treebuild.BuildRecordsOptions(v.Header(), recs, bo)
	if diag.Degraded() {
		fh.Diagnostics = diag
	}
	if err == nil {
		fh.App = s.App
		return s, fh
	}
	if errors.Is(err, treebuild.ErrSessionTooLarge) && !o.Strict {
		if st, ok := streamFallback(path, o); ok {
			fh.App = st.App
			fh.DegradedToStream = true
			fh.StreamEpisodes = st.Episodes
			fh.StreamRecords = st.Records
			return nil, fh
		}
	}
	fh.Error = err.Error()
	return nil, fh
}

// streamFallback re-reads path through the streaming analyzer.
func streamFallback(path string, o LoadOptions) (*stream.Stats, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	lr, err := lila.NewReaderOptions(f, lila.ReaderOptions{Salvage: o.Salvage, Limits: o.Limits})
	if err != nil {
		return nil, false
	}
	st, _, err := stream.AnalyzeLenient(lr, 0)
	if err != nil {
		return nil, false
	}
	return st, true
}

// AnalyzeSuites runs the full per-application characterization over
// already-loaded suites — the entry point for trace-directory studies.
func AnalyzeSuites(suites []*trace.Suite, threshold trace.Dur) *StudyResult {
	return AnalyzeSuitesContext(context.Background(), suites, threshold, nil)
}

// AnalyzeSuitesContext is AnalyzeSuites with observability: phase
// spans from a context-carried obs.Trace and per-app progress lines
// with an ETA on progressW (nil = silent). An app whose analysis
// fails (a contained engine panic) is dropped into the result's
// Health instead of taking the study down.
func AnalyzeSuitesContext(ctx context.Context, suites []*trace.Suite, threshold trace.Dur, progressW io.Writer) *StudyResult {
	ctx, endStudy := obs.PhaseSpan(ctx, "study")
	defer endStudy()

	if threshold == 0 {
		threshold = trace.DefaultPerceptibleThreshold
	}
	pr := newProgress(progressW, len(suites))
	res := &StudyResult{Config: StudyConfig{Threshold: threshold}, Health: &StudyHealth{}}
	for _, suite := range suites {
		// Cancellation (signal, job deadline): record every remaining
		// app as canceled so the partial health ledger is complete.
		if cerr := ctx.Err(); cerr != nil {
			res.Health.Apps = append(res.Health.Apps,
				AppHealth{App: suite.App, Error: cerr.Error(), Reason: LossCanceled})
			continue
		}
		actx, endApp := obs.Span(ctx, "app:"+suite.App)
		a, err := analyzeSuite(actx, suite, threshold, 0)
		endApp()
		mSessions.Add(int64(len(suite.Sessions)))
		pr.step("analyze " + suite.App)
		if err != nil {
			res.Health.Apps = append(res.Health.Apps,
				AppHealth{App: suite.App, Error: err.Error(), Reason: lossReason(ctx, StudyConfig{}, err)})
			continue
		}
		res.Apps = append(res.Apps, a)
		res.Rows = append(res.Rows, a.Overview)
	}
	mApps.Add(int64(len(suites)))
	if len(res.Rows) > 0 {
		res.Rows = append(res.Rows, analysis.MeanOverview(res.Rows))
	}
	return res
}
