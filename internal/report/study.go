package report

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/apps"
	"lagalyzer/internal/engine"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// StudyConfig configures a characterization run.
type StudyConfig struct {
	// Apps are the profiles to study; nil means the full 14-app
	// catalog.
	Apps []*sim.Profile
	// SessionsPerApp is the number of sessions simulated per
	// application; 0 means the paper's four.
	SessionsPerApp int
	// Seed is the base random seed (0 is a valid seed).
	Seed uint64
	// Threshold is the perceptibility threshold; 0 means 100 ms.
	Threshold trace.Dur
	// SessionSeconds overrides every profile's session length when
	// > 0 (used to scale the study down in tests).
	SessionSeconds float64
	// Sequential runs every worker pool (apps, sessions, and the
	// analysis engine) at size 1. The results are identical either
	// way — the engine's sharded classification merges
	// deterministically — so this only trades wall-clock for a quiet
	// machine.
	Sequential bool
}

func (c StudyConfig) apps() []*sim.Profile {
	if c.Apps != nil {
		return c.Apps
	}
	return apps.Catalog()
}

func (c StudyConfig) sessions() int {
	if c.SessionsPerApp > 0 {
		return c.SessionsPerApp
	}
	return 4
}

func (c StudyConfig) threshold() trace.Dur {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return trace.DefaultPerceptibleThreshold
}

func (c StudyConfig) workers() int {
	if c.Sequential {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// runPool runs fn(0..n-1) on a bounded pool of workers goroutines
// (inline when workers ≤ 1), returning once all calls finish. Work is
// handed out by an atomic counter, so the pool stays busy even when
// item costs are skewed.
func runPool(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// AppResult bundles everything the study computes for one application.
type AppResult struct {
	// Profile is the simulated application; nil when the suite was
	// loaded from trace files instead of simulated.
	Profile *sim.Profile
	Suite   *trace.Suite

	// Overview is the application's Table III row.
	Overview analysis.Overview

	// Pooled classifies all the application's sessions together (the
	// figures aggregate per application; Table III's pattern columns
	// are per-session averages inside Overview).
	Pooled *patterns.Set

	// Occurrence counts patterns per occurrence class (Figure 4).
	Occurrence map[patterns.Occurrence]int

	// CDF is the cumulative episodes-into-patterns curve (Figure 3).
	CDF []stats.CDFPoint

	// TriggerAll and TriggerLong are Figure 5's two panels.
	TriggerAll, TriggerLong analysis.TriggerShares

	// LocationAll and LocationLong are Figure 6's two panels.
	LocationAll, LocationLong analysis.LocationShares

	// ConcurrencyAll and ConcurrencyLong are Figure 7's two panels.
	ConcurrencyAll, ConcurrencyLong float64

	// CausesAll and CausesLong are Figure 8's two panels.
	CausesAll, CausesLong analysis.CauseShares
}

// StudyResult is a full characterization run.
type StudyResult struct {
	Config StudyConfig
	Apps   []*AppResult
	// Rows are the Table III rows in catalog order, with the Mean row
	// appended.
	Rows []analysis.Overview
}

// AppByName returns one application's results.
func (r *StudyResult) AppByName(name string) (*AppResult, bool) {
	for _, a := range r.Apps {
		if a.Suite.App == name {
			return a, true
		}
	}
	return nil, false
}

// TotalEpisodes sums traced episodes over all sessions (the paper
// reports ~250'000 for the full study).
func (r *StudyResult) TotalEpisodes() int {
	n := 0
	for _, a := range r.Apps {
		for _, s := range a.Suite.Sessions {
			n += len(s.Episodes)
		}
	}
	return n
}

// RunStudy simulates and analyzes the full study. The per-app fan-out
// is bounded by a GOMAXPROCS-sized pool (one worker when Sequential);
// results land in catalog order regardless of completion order, and
// the engine's deterministic merge makes every row byte-identical to
// a sequential run.
func RunStudy(cfg StudyConfig) (*StudyResult, error) {
	profiles := cfg.apps()
	results := make([]*AppResult, len(profiles))
	errs := make([]error, len(profiles))

	runPool(cfg.workers(), len(profiles), func(i int) {
		results[i], errs[i] = runApp(cfg, profiles[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("report: app %s: %w", profiles[i].Name, err)
		}
	}

	res := &StudyResult{Config: cfg, Apps: results}
	for _, a := range results {
		res.Rows = append(res.Rows, a.Overview)
	}
	res.Rows = append(res.Rows, analysis.MeanOverview(res.Rows))
	return res, nil
}

func runApp(cfg StudyConfig, p *sim.Profile) (*AppResult, error) {
	n := cfg.sessions()
	sessions := make([]*trace.Session, n)
	errs := make([]error, n)
	runPool(cfg.workers(), n, func(i int) {
		sessions[i], errs[i] = sim.Run(sim.Config{
			Profile:        p,
			SessionID:      i,
			Seed:           cfg.Seed,
			SessionSeconds: cfg.SessionSeconds,
		})
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	suite := &trace.Suite{App: p.Name, Sessions: sessions}
	a := analyzeSuite(suite, cfg.threshold(), cfg.workers())
	a.Profile = p
	return a, nil
}

// AnalyzeSuite computes the full per-application result for an
// existing suite of sessions (simulated or loaded from trace files).
// It runs the fused engine: one traversal per episode instead of nine
// separate analysis passes over the suite.
func AnalyzeSuite(suite *trace.Suite, threshold trace.Dur) *AppResult {
	return analyzeSuite(suite, threshold, 0)
}

func analyzeSuite(suite *trace.Suite, threshold trace.Dur, workers int) *AppResult {
	r := engine.Analyze(suite, threshold, engine.Options{Workers: workers})
	return &AppResult{
		Suite:      suite,
		Overview:   r.Overview,
		Pooled:     r.Pooled,
		Occurrence: r.Pooled.OccurrenceCounts(),
		CDF:        r.Pooled.CDF(),

		TriggerAll:      r.TriggerAll,
		TriggerLong:     r.TriggerLong,
		LocationAll:     r.LocationAll,
		LocationLong:    r.LocationLong,
		CausesAll:       r.CausesAll,
		CausesLong:      r.CausesLong,
		ConcurrencyAll:  r.ConcurrencyAll,
		ConcurrencyLong: r.ConcurrencyLong,
	}
}

// OccurrenceFracs converts pattern occurrence counts into the
// fractions plotted in Figure 4, in the figure's stacking order
// (always, sometimes, once, never).
func (a *AppResult) OccurrenceFracs() map[patterns.Occurrence]float64 {
	total := 0
	for _, n := range a.Occurrence {
		total += n
	}
	fr := make(map[patterns.Occurrence]float64, len(a.Occurrence))
	if total == 0 {
		return fr
	}
	for occ, n := range a.Occurrence {
		fr[occ] = float64(n) / float64(total)
	}
	return fr
}

// sortedApps returns results ordered by profile name (stable for
// rendering regardless of run order).
func sortedApps(as []*AppResult) []*AppResult {
	out := make([]*AppResult, len(as))
	copy(out, as)
	sort.Slice(out, func(i, j int) bool { return out[i].Suite.App < out[j].Suite.App })
	return out
}
