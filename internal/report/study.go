package report

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/apps"
	"lagalyzer/internal/checkpoint"
	"lagalyzer/internal/engine"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// Study metrics. Counters are flushed in whole-run amounts; the
// pool-wait histogram observes once per pool task (a session or an
// app — never per episode).
var (
	mApps = obs.NewCounter("report_apps_total",
		"applications characterized")
	mSessions = obs.NewCounter("report_sessions_total",
		"sessions simulated or loaded")
	mPoolWait = obs.NewHistogram("report_pool_task_wait",
		"delay from pool start to task pickup", nil)
	// mPanicsRecovered shares its name with the engine's counter, so
	// both layers' contained panics land in one time series.
	mPanicsRecovered = obs.NewCounter("engine_panics_recovered_total",
		"worker panics contained and converted to attributed errors")
)

// StudyConfig configures a characterization run.
type StudyConfig struct {
	// Apps are the profiles to study; nil means the full 14-app
	// catalog.
	Apps []*sim.Profile
	// SessionsPerApp is the number of sessions simulated per
	// application; 0 means the paper's four.
	SessionsPerApp int
	// Seed is the base random seed (0 is a valid seed).
	Seed uint64
	// Threshold is the perceptibility threshold; 0 means 100 ms.
	Threshold trace.Dur
	// SessionSeconds overrides every profile's session length when
	// > 0 (used to scale the study down in tests).
	SessionSeconds float64
	// Sequential runs every worker pool (apps, sessions, and the
	// analysis engine) at size 1. The results are identical either
	// way — the engine's sharded classification merges
	// deterministically — so this only trades wall-clock for a quiet
	// machine.
	Sequential bool
	// Progress, when non-nil, receives per-session and per-app
	// progress lines with an ETA (lagreport points it at stderr).
	// Progress output never influences results.
	Progress io.Writer
	// AppTimeout, when > 0, bounds each application's simulate+analyze
	// phase; an app that exceeds it fails with context.DeadlineExceeded
	// and is recorded in the study health with the LossTimedOut reason.
	AppTimeout time.Duration

	// SuiteSource, when non-nil, replaces local simulation as the
	// producer of each app's session suite — the distributed
	// coordinator's hook: it fetches the suite from a worker shard (or
	// re-runs it locally as a fallback). Analysis, merge order,
	// checkpointing, and health accounting are untouched, which is what
	// makes a distributed study byte-identical to a single-node run. An
	// error from SuiteSource is handled exactly like a simulation
	// failure: classified by lossReason (errors exposing a
	// LossReason() string method set the health Reason directly) and
	// recorded in the study health. Like Sequential and Progress, it is
	// an execution-shape knob excluded from Hash(), so distributed and
	// single-node runs share checkpoint stores.
	SuiteSource func(ctx context.Context, p *sim.Profile) (*trace.Suite, error)

	// CheckpointDir, when non-empty, makes the study crash-safe: each
	// app's completed session suite is persisted to a content-addressed
	// store rooted there (lagreport uses <out>/.checkpoint), and a
	// restart with an identical configuration (same Hash) loads
	// checkpointed apps instead of re-running them. Because the engine's
	// analysis is a deterministic function of the sessions, a resumed
	// study's output is byte-identical to an uninterrupted run.
	CheckpointDir string
	// Checkpoint supplies a pre-opened store (tests use it to inject
	// fault-wrapped readers); it takes precedence over CheckpointDir.
	Checkpoint *checkpoint.Store
}

// Hash fingerprints every configuration field that influences the
// checkpointed payload: the app list, session count, seed, threshold,
// and session length. Execution-shape knobs (Sequential, Progress,
// AppTimeout, the checkpoint fields themselves) are deliberately
// excluded — they cannot change the simulated sessions, so a resume
// across e.g. a worker-count change still hits.
func (c StudyConfig) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "lagalyzer-study-v1\n")
	fmt.Fprintf(h, "sessions=%d seed=%d threshold=%d seconds=%g\n",
		c.sessions(), c.Seed, int64(c.threshold()), c.SessionSeconds)
	for _, p := range c.apps() {
		fmt.Fprintf(h, "app=%s\n", p.Name)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func (c StudyConfig) apps() []*sim.Profile {
	if c.Apps != nil {
		return c.Apps
	}
	return apps.Catalog()
}

func (c StudyConfig) sessions() int {
	if c.SessionsPerApp > 0 {
		return c.SessionsPerApp
	}
	return 4
}

func (c StudyConfig) threshold() trace.Dur {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return trace.DefaultPerceptibleThreshold
}

func (c StudyConfig) workers() int {
	if c.Sequential {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// runPool runs fn(worker, 0..n-1) on a bounded pool of workers
// goroutines (inline when workers ≤ 1), returning once all calls
// finish. Work is handed out by an atomic counter, so the pool stays
// busy even when item costs are skewed. Each task pickup observes its
// queue wait (delay since the pool started) into the pool-wait
// histogram.
func runPool(workers, n int, fn func(worker, i int)) {
	start := time.Now()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			mPoolWait.Observe(time.Since(start))
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mPoolWait.Observe(time.Since(start))
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// AppResult bundles everything the study computes for one application.
type AppResult struct {
	// Profile is the simulated application; nil when the suite was
	// loaded from trace files instead of simulated.
	Profile *sim.Profile
	Suite   *trace.Suite

	// Overview is the application's Table III row.
	Overview analysis.Overview

	// Pooled classifies all the application's sessions together (the
	// figures aggregate per application; Table III's pattern columns
	// are per-session averages inside Overview).
	Pooled *patterns.Set

	// Occurrence counts patterns per occurrence class (Figure 4).
	Occurrence map[patterns.Occurrence]int

	// CDF is the cumulative episodes-into-patterns curve (Figure 3).
	CDF []stats.CDFPoint

	// TriggerAll and TriggerLong are Figure 5's two panels.
	TriggerAll, TriggerLong analysis.TriggerShares

	// LocationAll and LocationLong are Figure 6's two panels.
	LocationAll, LocationLong analysis.LocationShares

	// ConcurrencyAll and ConcurrencyLong are Figure 7's two panels.
	ConcurrencyAll, ConcurrencyLong float64

	// CausesAll and CausesLong are Figure 8's two panels.
	CausesAll, CausesLong analysis.CauseShares
}

// StudyResult is a full characterization run.
type StudyResult struct {
	Config StudyConfig
	Apps   []*AppResult
	// Rows are the Table III rows in catalog order, with the Mean row
	// appended.
	Rows []analysis.Overview
	// Health records everything the study survived: skipped files,
	// salvaged records, degraded sessions, failed apps. Nil or empty
	// means a fully clean run.
	Health *StudyHealth
}

// Partial reports whether the study lost a whole unit of work (the
// exit-code-3 condition for the CLIs).
func (r *StudyResult) Partial() bool { return r.Health.Partial() }

// AppByName returns one application's results.
func (r *StudyResult) AppByName(name string) (*AppResult, bool) {
	for _, a := range r.Apps {
		if a.Suite.App == name {
			return a, true
		}
	}
	return nil, false
}

// TotalEpisodes sums traced episodes over all sessions (the paper
// reports ~250'000 for the full study).
func (r *StudyResult) TotalEpisodes() int {
	n := 0
	for _, a := range r.Apps {
		for _, s := range a.Suite.Sessions {
			n += len(s.Episodes)
		}
	}
	return n
}

// RunStudy simulates and analyzes the full study. The per-app fan-out
// is bounded by a GOMAXPROCS-sized pool (one worker when Sequential);
// results land in catalog order regardless of completion order, and
// the engine's deterministic merge makes every row byte-identical to
// a sequential run.
func RunStudy(cfg StudyConfig) (*StudyResult, error) {
	return RunStudyContext(context.Background(), cfg)
}

// RunStudyContext is RunStudy with observability and crash safety: a
// context carrying an obs.Trace collects a "study" phase span with
// per-app, simulate, and engine child spans (attributed to pool
// workers), cfg.Progress receives per-unit progress lines with an ETA,
// and cfg.CheckpointDir persists completed apps for resume. None of
// these affect results — rows remain byte-identical to an untraced
// sequential run from scratch.
//
// On cancellation (signal, deadline) with at least one completed app,
// RunStudyContext returns BOTH a partial result and the context's
// error: the result carries the survivors plus a health ledger marking
// the abandoned apps LossCanceled, so callers can flush partial output
// before exiting with the partial-success code.
func RunStudyContext(ctx context.Context, cfg StudyConfig) (*StudyResult, error) {
	ctx, endStudy := obs.PhaseSpan(ctx, "study")
	defer endStudy()

	profiles := cfg.apps()
	results := make([]*AppResult, len(profiles))
	errs := make([]error, len(profiles))

	// Crash safety: open (or create) the checkpoint store bound to this
	// configuration's hash. A store that cannot be opened degrades the
	// run to non-checkpointed — a broken disk never blocks analysis.
	store := cfg.Checkpoint
	if store == nil && cfg.CheckpointDir != "" {
		if st, err := checkpoint.Open(cfg.CheckpointDir, cfg.Hash()); err == nil {
			store = st
		}
	}

	// One progress unit per simulated session plus one per app
	// analysis.
	pr := newProgress(cfg.Progress, len(profiles)*(cfg.sessions()+1))

	runPool(cfg.workers(), len(profiles), func(w, i int) {
		defer func() {
			if r := recover(); r != nil {
				mPanicsRecovered.Add(1)
				errs[i] = fmt.Errorf("panic: %v", r)
			}
		}()
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		wctx := obs.WithWorker(ctx, w)
		if cfg.AppTimeout > 0 {
			var cancel context.CancelFunc
			wctx, cancel = context.WithTimeout(wctx, cfg.AppTimeout)
			defer cancel()
		}
		if store != nil {
			if suite, ok := store.Load(profiles[i].Name); ok {
				// Resume: the expensive simulation is skipped; the
				// deterministic engine re-derives the identical analysis.
				if a, err := analyzeSuite(wctx, suite, cfg.threshold(), cfg.workers()); err == nil {
					a.Profile = profiles[i]
					pr.skip(cfg.sessions(), "resume "+profiles[i].Name)
					pr.step("analyze " + profiles[i].Name)
					results[i] = a
					return
				}
				// Analysis of the checkpointed suite failed (cancellation
				// or contained panic): fall through to a fresh run, which
				// will classify the error normally.
			}
		}
		results[i], errs[i] = runApp(wctx, cfg, profiles[i], pr)
		if store != nil && errs[i] == nil && results[i] != nil {
			// Best-effort: a failed save costs only resumability.
			_ = store.Save(results[i].Suite)
		}
	})
	mApps.Add(int64(len(profiles)))

	// Graceful degradation: a failed app is recorded in the health and
	// the study continues with the survivors; only a study that loses
	// every app is a total failure.
	res := &StudyResult{Config: cfg, Health: &StudyHealth{}}
	for i, err := range errs {
		if err != nil {
			res.Health.Apps = append(res.Health.Apps, AppHealth{
				App:    profiles[i].Name,
				Error:  err.Error(),
				Reason: lossReason(ctx, cfg, err),
			})
			continue
		}
		res.Apps = append(res.Apps, results[i])
		res.Rows = append(res.Rows, results[i].Overview)
	}
	cancelErr := ctx.Err()
	if len(res.Apps) == 0 {
		if cancelErr != nil {
			return nil, cancelErr
		}
		return nil, fmt.Errorf("report: all %d apps failed (first: %s: %s)",
			len(profiles), res.Health.Apps[0].App, res.Health.Apps[0].Error)
	}
	res.Rows = append(res.Rows, analysis.MeanOverview(res.Rows))
	if cancelErr != nil {
		return res, cancelErr
	}
	return res, nil
}

// lossReason classifies an app failure for the health ledger: a
// deadline hit while the study's own context was still live is the
// per-app timeout firing; any cancellation-shaped error under a dead
// study context means the whole run was being torn down.
func lossReason(ctx context.Context, cfg StudyConfig, err error) string {
	var lr interface{ LossReason() string }
	switch {
	case errors.As(err, &lr):
		// The producer already classified the loss (e.g. a distributed
		// shard exhausted every recovery path → LossShard).
		return lr.LossReason()
	case errors.Is(err, context.DeadlineExceeded) && cfg.AppTimeout > 0 && ctx.Err() == nil:
		return LossTimedOut
	case errors.Is(err, context.Canceled) || ctx.Err() != nil:
		return LossCanceled
	}
	return ""
}

func runApp(ctx context.Context, cfg StudyConfig, p *sim.Profile, pr *progress) (*AppResult, error) {
	ctx, endApp := obs.Span(ctx, "app:"+p.Name)
	defer endApp()

	if cfg.SuiteSource != nil {
		// Distributed path: the suite comes from a shard instead of the
		// local simulator. Everything downstream — analysis, checkpoint
		// save, health — is the single-node code.
		suite, err := cfg.SuiteSource(ctx, p)
		if err != nil {
			return nil, err
		}
		pr.skip(cfg.sessions(), "shard "+p.Name)
		a, err := analyzeSuite(ctx, suite, cfg.threshold(), cfg.workers())
		if err != nil {
			return nil, err
		}
		a.Profile = p
		pr.step("analyze " + p.Name)
		return a, nil
	}

	n := cfg.sessions()
	sessions := make([]*trace.Session, n)
	errs := make([]error, n)
	runPool(cfg.workers(), n, func(w, i int) {
		defer func() {
			if r := recover(); r != nil {
				mPanicsRecovered.Add(1)
				errs[i] = fmt.Errorf("panic in session %d: %v", i, r)
			}
		}()
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		_, endSim := obs.Span(obs.WithWorker(ctx, w), "simulate")
		sessions[i], errs[i] = sim.Run(sim.Config{
			Profile:        p,
			SessionID:      i,
			Seed:           cfg.Seed,
			SessionSeconds: cfg.SessionSeconds,
		})
		endSim()
		pr.step(fmt.Sprintf("sim %s/%d", p.Name, i))
	})
	mSessions.Add(int64(n))
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	suite := &trace.Suite{App: p.Name, Sessions: sessions}
	a, err := analyzeSuite(ctx, suite, cfg.threshold(), cfg.workers())
	if err != nil {
		return nil, err
	}
	a.Profile = p
	pr.step("analyze " + p.Name)
	return a, nil
}

// AnalyzeSuite computes the full per-application result for an
// existing suite of sessions (simulated or loaded from trace files).
// It runs the fused engine: one traversal per episode instead of nine
// separate analysis passes over the suite. Like the engine's
// error-free entry point, a contained worker panic resurfaces as a
// panic here; use AnalyzeSuitesContext for graceful degradation.
func AnalyzeSuite(suite *trace.Suite, threshold trace.Dur) *AppResult {
	a, err := analyzeSuite(context.Background(), suite, threshold, 0)
	if err != nil {
		panic(err)
	}
	return a
}

// AnalyzeSuiteContext is AnalyzeSuite under a context that may carry
// an obs.Trace for phase spans.
func AnalyzeSuiteContext(ctx context.Context, suite *trace.Suite, threshold trace.Dur) *AppResult {
	a, err := analyzeSuite(ctx, suite, threshold, 0)
	if err != nil {
		panic(err)
	}
	return a
}

func analyzeSuite(ctx context.Context, suite *trace.Suite, threshold trace.Dur, workers int) (*AppResult, error) {
	r, err := engine.AnalyzeContextErr(ctx, suite, threshold, engine.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	return &AppResult{
		Suite:      suite,
		Overview:   r.Overview,
		Pooled:     r.Pooled,
		Occurrence: r.Pooled.OccurrenceCounts(),
		CDF:        r.Pooled.CDF(),

		TriggerAll:      r.TriggerAll,
		TriggerLong:     r.TriggerLong,
		LocationAll:     r.LocationAll,
		LocationLong:    r.LocationLong,
		CausesAll:       r.CausesAll,
		CausesLong:      r.CausesLong,
		ConcurrencyAll:  r.ConcurrencyAll,
		ConcurrencyLong: r.ConcurrencyLong,
	}, nil
}

// OccurrenceFracs converts pattern occurrence counts into the
// fractions plotted in Figure 4, in the figure's stacking order
// (always, sometimes, once, never).
func (a *AppResult) OccurrenceFracs() map[patterns.Occurrence]float64 {
	total := 0
	for _, n := range a.Occurrence {
		total += n
	}
	fr := make(map[patterns.Occurrence]float64, len(a.Occurrence))
	if total == 0 {
		return fr
	}
	for occ, n := range a.Occurrence {
		fr[occ] = float64(n) / float64(total)
	}
	return fr
}

// sortedApps returns results ordered by profile name (stable for
// rendering regardless of run order).
func sortedApps(as []*AppResult) []*AppResult {
	out := make([]*AppResult, len(as))
	copy(out, as)
	sort.Slice(out, func(i, j int) bool { return out[i].Suite.App < out[j].Suite.App })
	return out
}
