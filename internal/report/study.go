package report

import (
	"fmt"
	"sort"
	"sync"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/apps"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// StudyConfig configures a characterization run.
type StudyConfig struct {
	// Apps are the profiles to study; nil means the full 14-app
	// catalog.
	Apps []*sim.Profile
	// SessionsPerApp is the number of sessions simulated per
	// application; 0 means the paper's four.
	SessionsPerApp int
	// Seed is the base random seed (0 is a valid seed).
	Seed uint64
	// Threshold is the perceptibility threshold; 0 means 100 ms.
	Threshold trace.Dur
	// SessionSeconds overrides every profile's session length when
	// > 0 (used to scale the study down in tests).
	SessionSeconds float64
	// Sequential disables per-application parallelism.
	Sequential bool
}

func (c StudyConfig) apps() []*sim.Profile {
	if c.Apps != nil {
		return c.Apps
	}
	return apps.Catalog()
}

func (c StudyConfig) sessions() int {
	if c.SessionsPerApp > 0 {
		return c.SessionsPerApp
	}
	return 4
}

func (c StudyConfig) threshold() trace.Dur {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return trace.DefaultPerceptibleThreshold
}

// AppResult bundles everything the study computes for one application.
type AppResult struct {
	// Profile is the simulated application; nil when the suite was
	// loaded from trace files instead of simulated.
	Profile *sim.Profile
	Suite   *trace.Suite

	// Overview is the application's Table III row.
	Overview analysis.Overview

	// Pooled classifies all the application's sessions together (the
	// figures aggregate per application; Table III's pattern columns
	// are per-session averages inside Overview).
	Pooled *patterns.Set

	// Occurrence counts patterns per occurrence class (Figure 4).
	Occurrence map[patterns.Occurrence]int

	// CDF is the cumulative episodes-into-patterns curve (Figure 3).
	CDF []stats.CDFPoint

	// TriggerAll and TriggerLong are Figure 5's two panels.
	TriggerAll, TriggerLong analysis.TriggerShares

	// LocationAll and LocationLong are Figure 6's two panels.
	LocationAll, LocationLong analysis.LocationShares

	// ConcurrencyAll and ConcurrencyLong are Figure 7's two panels.
	ConcurrencyAll, ConcurrencyLong float64

	// CausesAll and CausesLong are Figure 8's two panels.
	CausesAll, CausesLong analysis.CauseShares
}

// StudyResult is a full characterization run.
type StudyResult struct {
	Config StudyConfig
	Apps   []*AppResult
	// Rows are the Table III rows in catalog order, with the Mean row
	// appended.
	Rows []analysis.Overview
}

// AppByName returns one application's results.
func (r *StudyResult) AppByName(name string) (*AppResult, bool) {
	for _, a := range r.Apps {
		if a.Suite.App == name {
			return a, true
		}
	}
	return nil, false
}

// TotalEpisodes sums traced episodes over all sessions (the paper
// reports ~250'000 for the full study).
func (r *StudyResult) TotalEpisodes() int {
	n := 0
	for _, a := range r.Apps {
		for _, s := range a.Suite.Sessions {
			n += len(s.Episodes)
		}
	}
	return n
}

// RunStudy simulates and analyzes the full study.
func RunStudy(cfg StudyConfig) (*StudyResult, error) {
	profiles := cfg.apps()
	results := make([]*AppResult, len(profiles))
	errs := make([]error, len(profiles))

	run := func(i int) {
		results[i], errs[i] = runApp(cfg, profiles[i])
	}
	if cfg.Sequential {
		for i := range profiles {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		for i := range profiles {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("report: app %s: %w", profiles[i].Name, err)
		}
	}

	res := &StudyResult{Config: cfg, Apps: results}
	for _, a := range results {
		res.Rows = append(res.Rows, a.Overview)
	}
	res.Rows = append(res.Rows, analysis.MeanOverview(res.Rows))
	return res, nil
}

func runApp(cfg StudyConfig, p *sim.Profile) (*AppResult, error) {
	suite := &trace.Suite{App: p.Name}
	for i := 0; i < cfg.sessions(); i++ {
		s, err := sim.Run(sim.Config{
			Profile:        p,
			SessionID:      i,
			Seed:           cfg.Seed,
			SessionSeconds: cfg.SessionSeconds,
		})
		if err != nil {
			return nil, err
		}
		suite.Sessions = append(suite.Sessions, s)
	}
	a := AnalyzeSuite(suite, cfg.threshold())
	a.Profile = p
	return a, nil
}

// AnalyzeSuite computes the full per-application result for an
// existing suite of sessions (simulated or loaded from trace files).
func AnalyzeSuite(suite *trace.Suite, threshold trace.Dur) *AppResult {
	sessions := suite.Sessions
	pooled := patterns.Classify(sessions, patterns.Options{Threshold: threshold})
	a := &AppResult{
		Suite:      suite,
		Overview:   analysis.OverviewOf(suite, threshold),
		Pooled:     pooled,
		Occurrence: pooled.OccurrenceCounts(),
		CDF:        pooled.CDF(),

		TriggerAll:   analysis.TriggerAnalysis(sessions, threshold, false, analysis.TriggerOptions{}),
		TriggerLong:  analysis.TriggerAnalysis(sessions, threshold, true, analysis.TriggerOptions{}),
		LocationAll:  analysis.LocationAnalysis(sessions, threshold, false, nil),
		LocationLong: analysis.LocationAnalysis(sessions, threshold, true, nil),
		CausesAll:    analysis.CauseAnalysis(sessions, threshold, false),
		CausesLong:   analysis.CauseAnalysis(sessions, threshold, true),
	}
	a.ConcurrencyAll, _ = analysis.Concurrency(sessions, threshold, false)
	a.ConcurrencyLong, _ = analysis.Concurrency(sessions, threshold, true)
	return a
}

// OccurrenceFracs converts pattern occurrence counts into the
// fractions plotted in Figure 4, in the figure's stacking order
// (always, sometimes, once, never).
func (a *AppResult) OccurrenceFracs() map[patterns.Occurrence]float64 {
	total := 0
	for _, n := range a.Occurrence {
		total += n
	}
	fr := make(map[patterns.Occurrence]float64, len(a.Occurrence))
	if total == 0 {
		return fr
	}
	for occ, n := range a.Occurrence {
		fr[occ] = float64(n) / float64(total)
	}
	return fr
}

// sortedApps returns results ordered by profile name (stable for
// rendering regardless of run order).
func sortedApps(as []*AppResult) []*AppResult {
	out := make([]*AppResult, len(as))
	copy(out, as)
	sort.Slice(out, func(i, j int) bool { return out[i].Suite.App < out[j].Suite.App })
	return out
}
