package report

import (
	"fmt"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/viz"
)

// Figure1Episode builds the episode of the paper's Figure 1: a
// 1705 ms dispatch entirely attributable to a JFrame.paint cascade
// (JRootPane → JLayeredPane → JToolBar, 1533/1347 ms), with an 843 ms
// native DrawLine call whose middle holds a 466 ms major collection,
// and a sampling gap covering almost the whole native call (the
// JVMTI GC bracket only spans the stopped-world phase; the GUI thread
// was still parked at the safepoint afterwards).
func Figure1Episode() (*trace.Session, *trace.Episode) {
	ms := func(v float64) trace.Time { return trace.Time(trace.Ms(v)) }
	root := trace.NewInterval(trace.KindDispatch, "", "", 0, trace.Ms(1705))
	jf := root.AddChild(trace.NewInterval(trace.KindPaint, "javax.swing.JFrame", "paint", 0, trace.Ms(1705)))
	rp := jf.AddChild(trace.NewInterval(trace.KindPaint, "javax.swing.JRootPane", "paint", ms(4), trace.Ms(1698)))
	lp := rp.AddChild(trace.NewInterval(trace.KindPaint, "javax.swing.JLayeredPane", "paint", ms(85), trace.Ms(1533)))
	tb := lp.AddChild(trace.NewInterval(trace.KindPaint, "javax.swing.JToolBar", "paint", ms(170), trace.Ms(1347)))
	nat := tb.AddChild(trace.NewInterval(trace.KindNative, "sun.java2d.loops.DrawLine", "DrawLine", ms(590), trace.Ms(843)))
	nat.AddChild(trace.NewGC(ms(780), trace.Ms(466), true))

	e := &trace.Episode{Index: 0, Thread: 1, Root: root}
	s := &trace.Session{
		App: "Figure1", GUIThread: 1, Start: 0, End: ms(1800),
		Threads:         []trace.ThreadInfo{{ID: 1, Name: "AWT-EventQueue-0"}},
		Episodes:        []*trace.Episode{e},
		GCs:             []*trace.Interval{trace.NewGC(ms(780), trace.Ms(466), true)},
		FilterThreshold: trace.DefaultFilterThreshold,
		SamplePeriod:    10 * trace.Millisecond,
	}
	paintStack := func(leafClass, leafMethod string, native bool) []trace.Frame {
		return []trace.Frame{
			{Class: leafClass, Method: leafMethod, Native: native},
			{Class: "javax.swing.JToolBar", Method: "paint"},
			{Class: "javax.swing.JLayeredPane", Method: "paint"},
			{Class: "javax.swing.JRootPane", Method: "paint"},
			{Class: "javax.swing.JFrame", Method: "paint"},
			{Class: "java.awt.EventDispatchThread", Method: "run"},
		}
	}
	for t := ms(5); t < s.End; t = t.Add(trace.Ms(10)) {
		// Sampling stops for almost the entire native call: the
		// sampler (a mutator) is stopped from shortly after the
		// native call begins until well after the GC bracket ends.
		if t >= ms(615) && t < ms(1400) {
			continue
		}
		stack := paintStack("sun.java2d.SunGraphics2D", "drawLine", false)
		if nat.Contains(t) {
			stack = paintStack("sun.java2d.loops.DrawLine", "DrawLine", true)
		}
		s.Ticks = append(s.Ticks, trace.SampleTick{Time: t, Threads: []trace.ThreadSample{{
			Thread: 1, State: trace.StateRunnable, Stack: stack,
		}}})
	}
	return s, e
}

// Figure1SVG renders the Figure 1 episode sketch.
func Figure1SVG() string {
	s, e := Figure1Episode()
	return viz.Sketch(s, e, viz.SketchOptions{Title: "Figure 1 — episode sketch: paint cascade with native DrawLine holding a major GC"})
}

// Figure2Episode simulates a GanttProject session and returns its
// structurally richest episode — the deeply nested recursive paint of
// the paper's Figure 2 — along with the session it came from.
func Figure2Episode(p *sim.Profile, seed uint64) (*trace.Session, *trace.Episode, error) {
	s, err := sim.Run(sim.Config{Profile: p, Seed: seed, SessionSeconds: 60})
	if err != nil {
		return nil, nil, err
	}
	var best *trace.Episode
	bestScore := -1
	for _, e := range s.Episodes {
		score := e.Root.Descendants() * e.Root.Depth()
		if score > bestScore {
			best, bestScore = e, score
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("report: simulated session has no episodes")
	}
	return s, best, nil
}

// triggerRows converts per-app trigger shares into chart rows.
func triggerRows(res *StudyResult, long bool) []viz.BarRow {
	rows := make([]viz.BarRow, 0, len(res.Apps))
	for _, a := range res.Apps {
		ts := a.TriggerAll
		if long {
			ts = a.TriggerLong
		}
		rows = append(rows, viz.BarRow{Label: a.Suite.App, Values: []float64{
			ts.Frac(analysis.TriggerInput), ts.Frac(analysis.TriggerOutput),
			ts.Frac(analysis.TriggerAsync), ts.Frac(analysis.TriggerUnspecified),
		}})
	}
	return rows
}

// Figures renders every figure of the evaluation as named SVG
// documents (file name → content).
func Figures(res *StudyResult) map[string]string {
	out := make(map[string]string)

	out["figure1_sketch.svg"] = Figure1SVG()

	// Figure 2: the deepest episode the study's GanttProject sessions
	// produced.
	if gantt, ok := res.AppByName("GanttProject"); ok {
		var bestS *trace.Session
		var bestE *trace.Episode
		bestScore := -1
		for _, s := range gantt.Suite.Sessions {
			for _, e := range s.Episodes {
				if score := e.Root.Descendants() * e.Root.Depth(); score > bestScore {
					bestS, bestE, bestScore = s, e, score
				}
			}
		}
		if bestE != nil {
			out["figure2_ganttproject_sketch.svg"] = viz.Sketch(bestS, bestE, viz.SketchOptions{
				Title: fmt.Sprintf("Figure 2 — GanttProject episode sketch: deep paint nesting (%d descendants, depth %d)",
					bestE.Root.Descendants(), bestE.Root.Depth()),
			})
		}
	}

	series := make([]viz.CDFSeries, 0, len(res.Apps))
	for _, a := range res.Apps {
		series = append(series, viz.CDFSeries{Label: a.Suite.App, Points: a.CDF})
	}
	out["figure3_pattern_cdf.svg"] = viz.RenderCDF(viz.CDFChart{
		Title:  "Figure 3 — cumulative distribution of episodes into patterns",
		XLabel: "Patterns [%]",
		YLabel: "Cumulative Episodes Count [%]",
		Series: series,
	})

	occRows := make([]viz.BarRow, 0, len(res.Apps))
	occOrder := []patterns.Occurrence{patterns.OccAlways, patterns.OccSometimes, patterns.OccOnce, patterns.OccNever}
	for _, a := range res.Apps {
		fr := a.OccurrenceFracs()
		vals := make([]float64, len(occOrder))
		for i, occ := range occOrder {
			vals[i] = fr[occ]
		}
		occRows = append(occRows, viz.BarRow{Label: a.Suite.App, Values: vals})
	}
	out["figure4_occurrence.svg"] = viz.RenderStackedBars(viz.StackedBars{
		Title:      "Figure 4 — long-latency episodes in patterns",
		XLabel:     "Patterns [%]",
		Categories: []string{"Always", "Sometimes", "Once", "Never"},
		Colors:     []string{"#d65f5f", "#ee854a", "#d5bb67", "#6acc65"},
		Rows:       occRows,
	})

	trigCats := []string{"Input", "Output", "Asynchronous", "Unspecified"}
	trigColors := []string{"#4878cf", "#6acc65", "#956cb4", "#9e9e9e"}
	out["figure5_triggers_all.svg"] = viz.RenderStackedBars(viz.StackedBars{
		Title: "Figure 5 (upper) — triggers, all episodes", XLabel: "Episodes [%]",
		Categories: trigCats, Colors: trigColors, Rows: triggerRows(res, false),
	})
	out["figure5_triggers_long.svg"] = viz.RenderStackedBars(viz.StackedBars{
		Title: "Figure 5 (lower) — triggers, episodes ≥ 100 ms", XLabel: "Episodes >100ms [%]",
		Categories: trigCats, Colors: trigColors, Rows: triggerRows(res, true),
	})

	locRows := func(long bool) (lib, gcn []viz.BarRow) {
		for _, a := range res.Apps {
			loc := a.LocationAll
			if long {
				loc = a.LocationLong
			}
			lib = append(lib, viz.BarRow{Label: a.Suite.App, Values: []float64{loc.Library, loc.App}})
			gcn = append(gcn, viz.BarRow{Label: a.Suite.App, Values: []float64{loc.GC, loc.Native}})
		}
		return
	}
	libAll, gcnAll := locRows(false)
	libLong, gcnLong := locRows(true)
	out["figure6_location_all.svg"] = viz.RenderStackedBars(viz.StackedBars{
		Title: "Figure 6 (upper, samples) — RT library vs application, all episodes", XLabel: "Episodes - Time [%]",
		Categories: []string{"RT Library", "Application"}, Colors: []string{"#82c6e2", "#1b4f72"}, Rows: libAll,
	}) + viz.RenderStackedBars(viz.StackedBars{
		Title: "Figure 6 (upper, intervals) — GC and native time, all episodes", XLabel: "Episodes - Time [%]",
		Categories: []string{"GC", "Native"}, Colors: []string{"#d65f5f", "#ee854a"}, Rows: gcnAll, XMax: 0.7,
	})
	out["figure6_location_long.svg"] = viz.RenderStackedBars(viz.StackedBars{
		Title: "Figure 6 (lower, samples) — RT library vs application, episodes ≥ 100 ms", XLabel: "Episodes >100ms - Time [%]",
		Categories: []string{"RT Library", "Application"}, Colors: []string{"#82c6e2", "#1b4f72"}, Rows: libLong,
	}) + viz.RenderStackedBars(viz.StackedBars{
		Title: "Figure 6 (lower, intervals) — GC and native time, episodes ≥ 100 ms", XLabel: "Episodes >100ms - Time [%]",
		Categories: []string{"GC", "Native"}, Colors: []string{"#d65f5f", "#ee854a"}, Rows: gcnLong, XMax: 0.7,
	})

	concRows := func(long bool) []viz.BarRow {
		rows := make([]viz.BarRow, 0, len(res.Apps))
		for _, a := range res.Apps {
			v := a.ConcurrencyAll
			if long {
				v = a.ConcurrencyLong
			}
			rows = append(rows, viz.BarRow{Label: a.Suite.App, Values: []float64{v}})
		}
		return rows
	}
	out["figure7_concurrency_all.svg"] = viz.RenderBars(viz.Bars{
		Title: "Figure 7 (upper) — avg runnable threads, all episodes", XLabel: "Episodes",
		Rows: concRows(false), XMax: 2, Marker: 1,
	})
	out["figure7_concurrency_long.svg"] = viz.RenderBars(viz.Bars{
		Title: "Figure 7 (lower) — avg runnable threads, episodes ≥ 100 ms", XLabel: "Episodes >100ms",
		Rows: concRows(true), XMax: 2, Marker: 1,
	})

	causeRows := func(long bool) []viz.BarRow {
		rows := make([]viz.BarRow, 0, len(res.Apps))
		for _, a := range res.Apps {
			c := a.CausesAll
			if long {
				c = a.CausesLong
			}
			rows = append(rows, viz.BarRow{Label: a.Suite.App, Values: []float64{c.Blocked, c.Waiting, c.Sleeping}})
		}
		return rows
	}
	causeCats := []string{"Blocked", "Wait", "Sleeping"}
	causeColors := []string{"#c62828", "#ef6c00", "#1565c0"}
	out["figure8_causes_all.svg"] = viz.RenderStackedBars(viz.StackedBars{
		Title: "Figure 8 (upper) — blocked/wait/sleep, all episodes (runnable omitted)", XLabel: "Episodes - Time [%]",
		Categories: causeCats, Colors: causeColors, Rows: causeRows(false), XMax: 0.6,
	})
	out["figure8_causes_long.svg"] = viz.RenderStackedBars(viz.StackedBars{
		Title: "Figure 8 (lower) — blocked/wait/sleep, episodes ≥ 100 ms (runnable omitted)", XLabel: "Episodes >100ms - Time [%]",
		Categories: causeCats, Colors: causeColors, Rows: causeRows(true), XMax: 0.6,
	})

	return out
}
