package report

import (
	"fmt"
	"html"
	"sort"
	"strings"
)

// FormatHTML renders the complete study as one self-contained HTML
// page: every figure's SVG inline (hover tooltips intact), the tables
// in preformatted blocks, and the paper-vs-measured findings. The
// output needs nothing but a browser — the reproduction's stand-in for
// the paper's MATLAB chart pipeline plus GUI.
func FormatHTML(res *StudyResult) string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>LagAlyzer — characterization study</title>
<style>
  body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto; max-width: 1100px; color: #222; }
  h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em; border-bottom: 1px solid #ccc; }
  pre { background: #f6f6f6; padding: 0.8em; overflow-x: auto; font-size: 12px; line-height: 1.35; }
  figure { margin: 1em 0; } figcaption { font-size: 0.9em; color: #555; }
  table { border-collapse: collapse; font-size: 13px; }
  td, th { border: 1px solid #ccc; padding: 3px 8px; text-align: right; }
  td:first-child, th:first-child, td:nth-child(2), th:nth-child(2) { text-align: left; }
</style>
</head>
<body>
<h1>LagAlyzer — reproduction of the ISPASS 2010 characterization study</h1>
`)
	fmt.Fprintf(&b, "<p>%d applications × %d sessions (simulated; see DESIGN.md), %d traced episodes, perceptibility threshold %v.</p>\n",
		len(res.Apps), res.Config.sessions(), res.TotalEpisodes(), res.Config.threshold())

	section := func(title string, body func()) {
		fmt.Fprintf(&b, "<h2>%s</h2>\n", html.EscapeString(title))
		body()
	}
	pre := func(s string) {
		fmt.Fprintf(&b, "<pre>%s</pre>\n", html.EscapeString(s))
	}

	section("Table II — applications", func() { pre(FormatTable2()) })
	section("Table III — overall statistics (paper vs measured)", func() {
		pre(FormatTable3Comparison(res.Rows))
	})

	figs := Figures(res)
	names := make([]string, 0, len(figs))
	for name := range figs {
		names = append(names, name)
	}
	sort.Strings(names)
	section("Figures", func() {
		for _, name := range names {
			fmt.Fprintf(&b, "<figure>%s<figcaption>%s</figcaption></figure>\n", figs[name], html.EscapeString(name))
		}
	})

	if res.Health.Degraded() {
		section("Health — inputs lost or degraded", func() { pre(FormatHealth(res.Health)) })
	}

	section("Section IV findings — paper vs measured", func() {
		b.WriteString("<table><tr><th>Experiment</th><th>Claim</th><th>Paper</th><th>Measured</th><th>Ratio</th></tr>\n")
		for _, f := range Findings(res) {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%.2f</td><td>%.2f</td><td>%.2f</td></tr>\n",
				html.EscapeString(f.ID), html.EscapeString(f.What), f.Paper, f.Measured, f.Ratio())
		}
		b.WriteString("</table>\n")
	})

	b.WriteString("</body>\n</html>\n")
	return b.String()
}
