package report

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/faultinject"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
)

func resumeTestConfig(dir string) StudyConfig {
	return StudyConfig{
		Apps:           []*sim.Profile{apps.CrosswordSage(), apps.GanttProject()},
		SessionsPerApp: 2,
		Seed:           42,
		SessionSeconds: 20,
		Sequential:     true,
		CheckpointDir:  dir,
	}
}

// TestCheckpointResumeByteIdentical is the core crash-safety
// guarantee at the library level: a study resumed from checkpoints
// renders byte-identical text and HTML reports to the run that wrote
// them, while skipping the simulation work (observed via the
// checkpoint_hits_total counter).
func TestCheckpointResumeByteIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	hits := obs.NewCounter("checkpoint_hits_total", "")

	first, err := RunStudy(resumeTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	before := hits.Value()
	second, err := RunStudy(resumeTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := hits.Value() - before; got != 2 {
		t.Errorf("checkpoint_hits_total delta = %d, want 2 (one per app)", got)
	}

	if a, b := FormatAll(first), FormatAll(second); a != b {
		t.Errorf("text report differs after resume:\n--- fresh ---\n%s\n--- resumed ---\n%s", a, b)
	}
	if a, b := FormatHTML(first), FormatHTML(second); a != b {
		t.Error("HTML report differs after resume")
	}
}

// TestCheckpointResumeParallelMatchesSequential: resuming with a
// parallel pool from checkpoints written by a sequential run must not
// perturb results (the engine's determinism extends through the store).
func TestCheckpointResumeParallelMatchesSequential(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	first, err := RunStudy(resumeTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeTestConfig(dir)
	cfg.Sequential = false
	second, err := RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := FormatAll(first), FormatAll(second); a != b {
		t.Error("parallel resume differs from sequential original")
	}
}

// TestCheckpointCorruptEntryReruns: damaging one checkpointed payload
// turns that app into a miss — it is re-simulated, and the final
// output is still identical. A broken checkpoint can cost time, never
// correctness.
func TestCheckpointCorruptEntryReruns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	first, err := RunStudy(resumeTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}

	appsDir := filepath.Join(dir, "apps")
	entries, err := os.ReadDir(appsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("want 2 checkpoint payloads, got %d", len(entries))
	}
	path := filepath.Join(appsDir, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, faultinject.FlipBits(data, 9, 16, 0, 0), 0o644); err != nil {
		t.Fatal(err)
	}

	second, err := RunStudy(resumeTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := FormatAll(first), FormatAll(second); a != b {
		t.Error("report differs after re-running a corrupted checkpoint entry")
	}
}

// sleepyWriter is a progress sink that blocks on lines mentioning a
// chosen app — a deterministic way to make exactly one app exceed its
// AppTimeout without wall-clock races: progress lines are emitted
// between sessions, before the next session's context check.
type sleepyWriter struct {
	mu    sync.Mutex
	match string
	delay time.Duration
	out   strings.Builder
}

func (w *sleepyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if strings.Contains(string(p), w.match) {
		time.Sleep(w.delay)
	}
	return w.out.Write(p)
}

// TestAppTimeoutRecordsTimedOutReason: an app exceeding
// StudyConfig.AppTimeout must land in the health ledger with the
// distinct LossTimedOut reason (not a generic context error), while
// the rest of the study completes normally.
func TestAppTimeoutRecordsTimedOutReason(t *testing.T) {
	slow := &sleepyWriter{match: "sim GanttProject", delay: time.Second}
	res, err := RunStudy(StudyConfig{
		Apps:           []*sim.Profile{apps.CrosswordSage(), apps.GanttProject()},
		SessionsPerApp: 2,
		Seed:           1,
		SessionSeconds: 20,
		Sequential:     true,
		Progress:       slow,
		AppTimeout:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 1 || res.Apps[0].Suite.App != "CrosswordSage" {
		t.Fatalf("surviving apps = %d, want only CrosswordSage", len(res.Apps))
	}
	if len(res.Health.Apps) != 1 {
		t.Fatalf("health apps = %+v, want exactly one", res.Health.Apps)
	}
	ah := res.Health.Apps[0]
	if ah.App != "GanttProject" || ah.Reason != LossTimedOut {
		t.Errorf("health = %+v, want GanttProject with reason %q", ah, LossTimedOut)
	}
	if !res.Partial() {
		t.Error("Partial() = false after losing an app to timeout")
	}
	if health := FormatHealth(res.Health); !strings.Contains(health, "[timed_out]") {
		t.Errorf("FormatHealth missing [timed_out] marker:\n%s", health)
	}
}

// cancelOnWriter cancels a context when a progress line matching a
// substring appears — used to cancel the study deterministically after
// the first app completes.
type cancelOnWriter struct {
	mu     sync.Mutex
	match  string
	cancel context.CancelFunc
}

func (w *cancelOnWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if strings.Contains(string(p), w.match) {
		w.cancel()
	}
	return len(p), nil
}

// TestCancelReturnsPartialResult: cancellation mid-study (the signal
// path) must return both the partial result — survivors plus a health
// ledger marking abandoned apps LossCanceled — and the context error,
// so the CLIs can flush partial output before exiting with code 3.
func TestCancelReturnsPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := RunStudyContext(ctx, StudyConfig{
		Apps:           []*sim.Profile{apps.CrosswordSage(), apps.GanttProject()},
		SessionsPerApp: 2,
		Seed:           1,
		SessionSeconds: 20,
		Sequential:     true,
		Progress:       &cancelOnWriter{match: "analyze CrosswordSage", cancel: cancel},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result alongside the cancellation error")
	}
	if len(res.Apps) != 1 || res.Apps[0].Suite.App != "CrosswordSage" {
		t.Fatalf("partial result apps = %d, want only CrosswordSage", len(res.Apps))
	}
	var canceled []string
	for _, ah := range res.Health.Apps {
		if ah.Reason == LossCanceled {
			canceled = append(canceled, ah.App)
		}
	}
	if len(canceled) != 1 || canceled[0] != "GanttProject" {
		t.Errorf("canceled apps = %v, want [GanttProject] (health %+v)", canceled, res.Health.Apps)
	}
	// The partial result still carries the mean row for its survivors.
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want survivor + mean", len(res.Rows))
	}
}

// TestAnalyzeSuitesContextCancelMarksRemaining: the trace-directory
// analysis path records apps skipped by cancellation in the health
// ledger instead of silently dropping them.
func TestAnalyzeSuitesContextCancelMarksRemaining(t *testing.T) {
	p := apps.CrosswordSage()
	s, err := sim.Run(sim.Config{Profile: p, SessionID: 0, Seed: 3, SessionSeconds: 20})
	if err != nil {
		t.Fatal(err)
	}
	suites := []*trace.Suite{{App: p.Name, Sessions: []*trace.Session{s}}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := AnalyzeSuitesContext(ctx, suites, 0, nil)
	if len(res.Apps) != 0 {
		t.Fatalf("apps analyzed under a canceled context: %d", len(res.Apps))
	}
	if len(res.Health.Apps) != 1 || res.Health.Apps[0].Reason != LossCanceled {
		t.Errorf("health = %+v, want one %q entry", res.Health.Apps, LossCanceled)
	}
}
