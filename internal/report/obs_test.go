package report

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/obs/selftrace"
	"lagalyzer/internal/sim"
)

// TestRunStudyInstrumentedIdentical: tracing plus progress reporting
// enabled, sequential vs parallel, must still produce identical rows —
// the acceptance guard that observability never perturbs results.
func TestRunStudyInstrumentedIdentical(t *testing.T) {
	run := func(sequential bool, tr *obs.Trace, progress *strings.Builder) *StudyResult {
		cfg := StudyConfig{
			Apps:           []*sim.Profile{apps.CrosswordSage(), apps.GanttProject()},
			SessionsPerApp: 2,
			Seed:           99,
			SessionSeconds: 30,
			Sequential:     sequential,
		}
		if progress != nil {
			cfg.Progress = progress
		}
		res, err := RunStudyContext(obs.WithTrace(context.Background(), tr), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(true, nil, nil)
	var progress strings.Builder
	traced := run(false, obs.NewTrace(), &progress)

	if len(plain.Rows) != len(traced.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(plain.Rows), len(traced.Rows))
	}
	for i := range plain.Rows {
		if plain.Rows[i] != traced.Rows[i] {
			t.Errorf("row %d differs under instrumentation:\nplain  %+v\ntraced %+v",
				i, plain.Rows[i], traced.Rows[i])
		}
	}

	// Progress: one line per session plus one per app, each with an
	// elapsed stamp; all but the final line carry an ETA.
	lines := strings.Split(strings.TrimRight(progress.String(), "\n"), "\n")
	wantLines := 2 * (2 + 1) // 2 apps × (2 sessions + 1 analysis)
	if len(lines) != wantLines {
		t.Fatalf("progress lines = %d, want %d:\n%s", len(lines), wantLines, progress.String())
	}
	for i, line := range lines {
		if !strings.Contains(line, "elapsed") {
			t.Errorf("progress line %d missing elapsed: %q", i, line)
		}
		if i < len(lines)-1 && !strings.Contains(line, "eta") {
			t.Errorf("progress line %d missing eta: %q", i, line)
		}
	}
	if !strings.Contains(progress.String(), "analyze CrosswordSage") {
		t.Errorf("progress missing analyze step:\n%s", progress.String())
	}
}

// TestSelfProfileDoesNotPerturb: running the study with self-profiling
// on (a trace on the context, then encoding the spans as a LiLa v2
// self-trace) must leave the formatted analysis output byte-identical
// to a plain run, and the self-trace encoding itself must be
// deterministic for one recorded trace.
func TestSelfProfileDoesNotPerturb(t *testing.T) {
	run := func(tr *obs.Trace) *StudyResult {
		ctx := context.Background()
		if tr != nil {
			ctx = obs.WithTrace(ctx, tr)
		}
		res, err := RunStudyContext(ctx, StudyConfig{
			Apps:           []*sim.Profile{apps.CrosswordSage(), apps.GanttProject()},
			SessionsPerApp: 2,
			Seed:           99,
			SessionSeconds: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(nil)
	tr := obs.NewTrace()
	profiled := run(tr)

	if a, b := FormatAll(plain), FormatAll(profiled); a != b {
		t.Error("formatted study output differs with self-profiling on")
	}

	enc1, err := selftrace.Encode(tr, selftrace.Options{App: "lagreport"})
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := selftrace.Encode(tr, selftrace.Options{App: "lagreport"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Error("self-trace encoding is not deterministic for one trace")
	}

	// The formatted output must also be unaffected by *when* the
	// encoding happens — Encode only reads the finished spans.
	if a, b := FormatAll(profiled), FormatAll(plain); a != b {
		t.Error("encoding the self-trace perturbed the study result")
	}
}

// TestStudySpans checks the study trace shape: a study phase span,
// one app span per application, simulate spans per session, and the
// engine spans nested beneath each app.
func TestStudySpans(t *testing.T) {
	tr := obs.NewTrace()
	_, err := RunStudyContext(obs.WithTrace(context.Background(), tr), StudyConfig{
		Apps:           []*sim.Profile{apps.CrosswordSage()},
		SessionsPerApp: 2,
		Seed:           5,
		SessionSeconds: 20,
		Sequential:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range tr.Summary() {
		counts[r.Path] += r.Count
	}
	want := map[string]int{
		"study":                                   1,
		"study/app:CrosswordSage":                 1,
		"study/app:CrosswordSage/simulate":        2,
		"study/app:CrosswordSage/engine":          1,
		"study/app:CrosswordSage/engine/classify": 1,
		"study/app:CrosswordSage/engine/merge":    1,
	}
	for path, n := range want {
		if counts[path] != n {
			t.Errorf("span %q count = %d, want %d (all: %v)", path, counts[path], n, counts)
		}
	}
}
