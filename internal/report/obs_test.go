package report

import (
	"context"
	"strings"
	"testing"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/sim"
)

// TestRunStudyInstrumentedIdentical: tracing plus progress reporting
// enabled, sequential vs parallel, must still produce identical rows —
// the acceptance guard that observability never perturbs results.
func TestRunStudyInstrumentedIdentical(t *testing.T) {
	run := func(sequential bool, tr *obs.Trace, progress *strings.Builder) *StudyResult {
		cfg := StudyConfig{
			Apps:           []*sim.Profile{apps.CrosswordSage(), apps.GanttProject()},
			SessionsPerApp: 2,
			Seed:           99,
			SessionSeconds: 30,
			Sequential:     sequential,
		}
		if progress != nil {
			cfg.Progress = progress
		}
		res, err := RunStudyContext(obs.WithTrace(context.Background(), tr), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(true, nil, nil)
	var progress strings.Builder
	traced := run(false, obs.NewTrace(), &progress)

	if len(plain.Rows) != len(traced.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(plain.Rows), len(traced.Rows))
	}
	for i := range plain.Rows {
		if plain.Rows[i] != traced.Rows[i] {
			t.Errorf("row %d differs under instrumentation:\nplain  %+v\ntraced %+v",
				i, plain.Rows[i], traced.Rows[i])
		}
	}

	// Progress: one line per session plus one per app, each with an
	// elapsed stamp; all but the final line carry an ETA.
	lines := strings.Split(strings.TrimRight(progress.String(), "\n"), "\n")
	wantLines := 2 * (2 + 1) // 2 apps × (2 sessions + 1 analysis)
	if len(lines) != wantLines {
		t.Fatalf("progress lines = %d, want %d:\n%s", len(lines), wantLines, progress.String())
	}
	for i, line := range lines {
		if !strings.Contains(line, "elapsed") {
			t.Errorf("progress line %d missing elapsed: %q", i, line)
		}
		if i < len(lines)-1 && !strings.Contains(line, "eta") {
			t.Errorf("progress line %d missing eta: %q", i, line)
		}
	}
	if !strings.Contains(progress.String(), "analyze CrosswordSage") {
		t.Errorf("progress missing analyze step:\n%s", progress.String())
	}
}

// TestStudySpans checks the study trace shape: a study phase span,
// one app span per application, simulate spans per session, and the
// engine spans nested beneath each app.
func TestStudySpans(t *testing.T) {
	tr := obs.NewTrace()
	_, err := RunStudyContext(obs.WithTrace(context.Background(), tr), StudyConfig{
		Apps:           []*sim.Profile{apps.CrosswordSage()},
		SessionsPerApp: 2,
		Seed:           5,
		SessionSeconds: 20,
		Sequential:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range tr.Summary() {
		counts[r.Path] += r.Count
	}
	want := map[string]int{
		"study":                                   1,
		"study/app:CrosswordSage":                 1,
		"study/app:CrosswordSage/simulate":        2,
		"study/app:CrosswordSage/engine":          1,
		"study/app:CrosswordSage/engine/classify": 1,
		"study/app:CrosswordSage/engine/merge":    1,
	}
	for path, n := range want {
		if counts[path] != n {
			t.Errorf("span %q count = %d, want %d (all: %v)", path, counts[path], n, counts)
		}
	}
}
