package report

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/apps"
	"lagalyzer/internal/faultinject"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
)

// damagedCorpus writes a small trace directory with one intact, one
// truncated, and one bit-flipped file and returns its path.
func damagedCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, app string, id int, format lila.Format, corrupt func([]byte) []byte) {
		t.Helper()
		p, err := apps.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.Run(sim.Config{Profile: p, SessionID: id, Seed: 11, SessionSeconds: 10})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := lila.WriteSession(&b, format, s); err != nil {
			t.Fatal(err)
		}
		data := []byte(b.String())
		if corrupt != nil {
			data = corrupt(data)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a_intact.lila", "JEdit", 0, lila.FormatBinary, nil)
	write("b_trunc.lila", "CrosswordSage", 0, lila.FormatBinary, func(b []byte) []byte {
		return faultinject.TruncateFrac(b, 0.6)
	})
	write("c_flip.lila", "CrosswordSage", 1, lila.FormatText, func(b []byte) []byte {
		return faultinject.FlipBits(b, 3, 8, 256, len(b))
	})
	return dir
}

// TestLoadTraceDirDamagedDefaults: the default loader skips files it
// cannot ingest strictly, records them in the health ledger, and keeps
// the study going on the survivors; Strict restores fail-fast.
func TestLoadTraceDirDamagedDefaults(t *testing.T) {
	dir := damagedCorpus(t)

	suites, health, err := LoadTraceDirOptions(dir, LoadOptions{})
	if err != nil {
		t.Fatalf("default load over damaged dir: %v", err)
	}
	if health.SessionsSkipped == 0 || len(health.Files) == 0 {
		t.Errorf("health = %+v, want skipped sessions recorded", health)
	}
	if !health.Partial() {
		t.Error("whole-session loss not reported as partial")
	}
	found := false
	for _, s := range suites {
		if s.App == "JEdit" {
			found = true
		}
	}
	if !found {
		t.Errorf("intact JEdit session lost; suites = %v", suites)
	}

	if _, _, err := LoadTraceDirOptions(dir, LoadOptions{Strict: true}); err == nil {
		t.Error("Strict load over damaged dir succeeded")
	}
}

// TestSalvagedStudyDeterministicAcrossWorkers is the byte-identical
// sequential-vs-parallel guarantee extended over a salvaged corpus:
// the rendered study — Health section included — must not depend on
// the engine worker count, because every health field is a
// deterministic function of the input bytes.
func TestSalvagedStudyDeterministicAcrossWorkers(t *testing.T) {
	dir := damagedCorpus(t)

	study := func(workers int) string {
		suites, health, err := LoadTraceDirOptions(dir, LoadOptions{Salvage: true})
		if err != nil {
			t.Fatalf("salvage load: %v", err)
		}
		res := &StudyResult{
			Config: StudyConfig{Threshold: trace.DefaultPerceptibleThreshold},
			Health: &StudyHealth{},
		}
		for _, suite := range suites {
			a, err := analyzeSuite(context.Background(), suite, trace.DefaultPerceptibleThreshold, workers)
			if err != nil {
				res.Health.Apps = append(res.Health.Apps, AppHealth{App: suite.App, Error: err.Error()})
				continue
			}
			res.Apps = append(res.Apps, a)
			res.Rows = append(res.Rows, a.Overview)
		}
		if len(res.Rows) > 0 {
			res.Rows = append(res.Rows, analysis.MeanOverview(res.Rows))
		}
		res.Health.Merge(health)
		return FormatAll(res)
	}

	seq := study(1)
	if !strings.Contains(seq, "Health: inputs lost or degraded") {
		t.Fatalf("salvaged study has no Health section:\n%s", seq)
	}
	if !strings.Contains(seq, "salvage:") {
		t.Errorf("Health section reports no salvage:\n%s", seq)
	}
	for _, workers := range []int{2, 8} {
		if par := study(workers); par != seq {
			t.Errorf("study with %d workers differs from sequential:\nseq:\n%s\npar:\n%s", workers, seq, par)
		}
	}
}
