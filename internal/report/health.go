// Study health: the graceful-degradation ledger. A damaged trace
// file, an over-budget session, or a failed app no longer aborts a
// study; it is recorded here, rendered in the report's Health section,
// and serialized into runmeta.json. Every field is a deterministic
// function of the inputs, so health participates in the byte-identical
// sequential-vs-parallel guarantee.
package report

import (
	"fmt"
	"strings"

	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/treebuild"
)

var mSessionsSkipped = obs.NewCounter("report_sessions_skipped_total",
	"sessions dropped from a study because their trace could not be ingested")

// FileHealth is the ingest outcome of one trace file.
type FileHealth struct {
	Path string `json:"path"`
	App  string `json:"app,omitempty"`
	// Error is set when the file contributed no session at all.
	Error string `json:"error,omitempty"`
	// Salvage accounts for wire-level damage worked around by the
	// salvage decoder (nil outside salvage mode or when absent).
	Salvage *lila.SalvageReport `json:"salvage,omitempty"`
	// Diagnostics accounts for records the lenient session builder had
	// to drop.
	Diagnostics *treebuild.Diagnostics `json:"diagnostics,omitempty"`
	// DegradedToStream marks a session that exceeded the memory budget
	// and was analyzed by the single-pass streaming analyzer instead of
	// a full session rebuild; only its aggregate counts survive.
	DegradedToStream bool `json:"degraded_to_stream,omitempty"`
	// StreamEpisodes and StreamRecords summarize the streaming fallback
	// (deterministic counts only — no wall-clock figures).
	StreamEpisodes int `json:"stream_episodes,omitempty"`
	StreamRecords  int `json:"stream_records,omitempty"`
}

// Damaged reports whether the file's ingest lost anything.
func (f *FileHealth) Damaged() bool {
	return f.Error != "" || f.DegradedToStream ||
		f.Salvage.Damaged() || f.Diagnostics.Degraded()
}

// Loss reasons distinguish why an app failed in the health ledger.
// Generic failures (panic, ingest error) leave Reason empty; the
// constants mark the two execution-control causes, which callers like
// the serve retry classifier and the report's Health section treat
// differently from data-dependent failures.
const (
	// LossTimedOut marks an app that exceeded StudyConfig.AppTimeout
	// while the study as a whole kept running.
	LossTimedOut = "timed_out"
	// LossCanceled marks an app abandoned because the whole study's
	// context was canceled (signal, shutdown, parent deadline).
	LossCanceled = "canceled"
	// LossShard marks an app a distributed study could not recover: its
	// shard exhausted every remote attempt and the local re-run was
	// unavailable or failed too. Set via errors implementing
	// LossReason() (internal/dist.ShardLostError).
	LossShard = "shard_lost"
)

// AppHealth is the analysis outcome of one failed application.
type AppHealth struct {
	App   string `json:"app"`
	Error string `json:"error"`
	// Reason is one of the Loss* constants, or empty for generic
	// failures.
	Reason string `json:"reason,omitempty"`
}

// StudyHealth aggregates everything a study survived.
type StudyHealth struct {
	// Files lists per-file ingest damage, ordered by path. Clean files
	// are omitted.
	Files []FileHealth `json:"files,omitempty"`
	// Apps lists applications whose analysis failed entirely, ordered
	// by name.
	Apps []AppHealth `json:"apps,omitempty"`
	// SessionsSkipped counts sessions that contributed nothing (fatal
	// file errors plus streaming-degraded sessions).
	SessionsSkipped int `json:"sessions_skipped,omitempty"`
}

// Degraded reports whether anything at all was lost or worked around.
func (h *StudyHealth) Degraded() bool {
	return h != nil && (len(h.Files) > 0 || len(h.Apps) > 0 || h.SessionsSkipped > 0)
}

// Partial reports whether a whole unit of work (a session or an app)
// was lost — the condition for the partial-success exit code 3, as
// opposed to record-level salvage inside surviving sessions.
func (h *StudyHealth) Partial() bool {
	if h == nil {
		return false
	}
	if len(h.Apps) > 0 || h.SessionsSkipped > 0 {
		return true
	}
	for i := range h.Files {
		if h.Files[i].Error != "" || h.Files[i].DegradedToStream {
			return true
		}
	}
	return false
}

// Merge folds o into h (used when loader and study health combine,
// e.g. lagreport joining LoadTraceDirOptions health with the
// analysis's own).
func (h *StudyHealth) Merge(o *StudyHealth) {
	if o == nil {
		return
	}
	h.Files = append(h.Files, o.Files...)
	h.Apps = append(h.Apps, o.Apps...)
	h.SessionsSkipped += o.SessionsSkipped
}

// FormatHealth renders the Health section of the text report. Output
// is deterministic: files ordered by path, apps by name.
func FormatHealth(h *StudyHealth) string {
	var b strings.Builder
	if !h.Degraded() {
		fmt.Fprintf(&b, "all inputs ingested cleanly\n")
		return b.String()
	}
	if h.SessionsSkipped > 0 {
		fmt.Fprintf(&b, "sessions skipped: %d\n", h.SessionsSkipped)
	}
	for i := range h.Files {
		f := &h.Files[i]
		fmt.Fprintf(&b, "file %s", f.Path)
		if f.App != "" {
			fmt.Fprintf(&b, " (app %s)", f.App)
		}
		fmt.Fprintf(&b, ":\n")
		switch {
		case f.Error != "":
			fmt.Fprintf(&b, "  skipped: %s\n", f.Error)
		case f.DegradedToStream:
			fmt.Fprintf(&b, "  degraded to streaming aggregates: %d episodes from %d records\n",
				f.StreamEpisodes, f.StreamRecords)
		}
		if f.Salvage.Damaged() {
			fmt.Fprintf(&b, "  salvage: %s\n", f.Salvage)
		}
		if f.Diagnostics.Degraded() {
			d := f.Diagnostics
			fmt.Fprintf(&b, "  rebuild: skipped %d records, dropped %d open intervals, %d episodes",
				d.SkippedRecords, d.DroppedOpenIntervals, d.DroppedEpisodes)
			if d.SynthesizedEnd {
				fmt.Fprintf(&b, ", synthesized end")
			}
			fmt.Fprintf(&b, "\n")
			if d.FirstSkipError != "" {
				fmt.Fprintf(&b, "  first rebuild error: %s\n", d.FirstSkipError)
			}
		}
	}
	for _, a := range h.Apps {
		if a.Reason != "" {
			fmt.Fprintf(&b, "app %s failed [%s]: %s\n", a.App, a.Reason, a.Error)
		} else {
			fmt.Fprintf(&b, "app %s failed: %s\n", a.App, a.Error)
		}
	}
	return b.String()
}
