package report

import (
	"fmt"
	"strings"

	"lagalyzer/internal/patterns"
	"lagalyzer/internal/stats"
)

// Finding is one paper-vs-measured comparison line of the experiments
// report.
type Finding struct {
	ID       string  // key into PaperFindings (or a Table III cell id)
	What     string  // human description
	Paper    float64 // published value
	Measured float64
}

// Ratio returns measured/paper (0 when the paper value is 0).
func (f Finding) Ratio() float64 {
	if f.Paper == 0 {
		return 0
	}
	return f.Measured / f.Paper
}

// Findings extracts every quantitative claim of Section IV from a
// study result, paired with the paper's published value.
func Findings(res *StudyResult) []Finding {
	var fs []Finding
	add := func(id, what string, measured float64) {
		fs = append(fs, Finding{ID: id, What: what, Paper: PaperFindings[id], Measured: measured})
	}

	// Figure 3: episodes covered by the top 20 % of patterns,
	// averaged over applications.
	var top20 float64
	for _, a := range res.Apps {
		top20 += stats.ShareAt(a.CDF, 0.20) / float64(len(res.Apps))
	}
	add("fig3.episodes_in_top20pct_patterns", "episodes covered by top 20% of patterns (mean)", top20)

	// Figure 4 aggregates.
	var consistent, ever float64
	for _, a := range res.Apps {
		fr := a.OccurrenceFracs()
		consistent += (fr[patterns.OccAlways] + fr[patterns.OccNever]) / float64(len(res.Apps))
		ever += (fr[patterns.OccAlways] + fr[patterns.OccSometimes] + fr[patterns.OccOnce]) / float64(len(res.Apps))
	}
	add("fig4.consistent_patterns", "patterns consistently fast or slow (always+never, mean)", consistent)
	add("fig4.ever_perceptible", "patterns ever perceptible (once+sometimes+always, mean)", ever)
	if a, ok := res.AppByName("GanttProject"); ok {
		add("fig4.gantt_always", "GanttProject patterns always slow", a.OccurrenceFracs()[patterns.OccAlways])
	}
	if a, ok := res.AppByName("FreeMind"); ok {
		add("fig4.freemind_never", "FreeMind patterns never slow", a.OccurrenceFracs()[patterns.OccNever])
	}

	// Figure 5 perceptible-panel aggregates and standouts.
	n := float64(len(res.Apps))
	var inF, outF, asyF float64
	for _, a := range res.Apps {
		inF += a.TriggerLong.Frac(0) / n
		outF += a.TriggerLong.Frac(1) / n
		asyF += a.TriggerLong.Frac(2) / n
	}
	add("fig5.long.input", "perceptible episodes triggered by input (mean)", inF)
	add("fig5.long.output", "perceptible episodes triggered by output (mean)", outF)
	add("fig5.long.async", "perceptible episodes triggered asynchronously (mean)", asyF)
	if a, ok := res.AppByName("Arabeske"); ok {
		add("fig5.arabeske.unspecified", "Arabeske perceptible episodes unspecified", a.TriggerLong.Frac(3))
	}
	if a, ok := res.AppByName("Jmol"); ok {
		add("fig5.jmol.output", "Jmol perceptible episodes output", a.TriggerLong.Frac(1))
	}
	if a, ok := res.AppByName("ArgoUML"); ok {
		add("fig5.argouml.input", "ArgoUML perceptible episodes input", a.TriggerLong.Frac(0))
	}
	if a, ok := res.AppByName("FindBugs"); ok {
		add("fig5.findbugs.async", "FindBugs perceptible episodes async", a.TriggerLong.Frac(2))
	}

	// Figure 6 aggregates and standouts.
	var lib, app, gc, nat float64
	for _, a := range res.Apps {
		lib += a.LocationLong.Library / n
		app += a.LocationLong.App / n
		gc += a.LocationLong.GC / n
		nat += a.LocationLong.Native / n
	}
	add("fig6.long.library", "perceptible lag in runtime libraries (mean)", lib)
	add("fig6.long.app", "perceptible lag in application code (mean)", app)
	add("fig6.long.gc", "perceptible lag in GC (mean)", gc)
	add("fig6.long.native", "perceptible lag in native calls (mean)", nat)
	if a, ok := res.AppByName("Arabeske"); ok {
		add("fig6.arabeske.gc", "Arabeske perceptible lag in GC", a.LocationLong.GC)
	}
	if a, ok := res.AppByName("ArgoUML"); ok {
		add("fig6.argouml.gc", "ArgoUML perceptible lag in GC", a.LocationLong.GC)
		add("fig6.argouml.all.gc", "ArgoUML all-episode time in GC", a.LocationAll.GC)
	}
	if a, ok := res.AppByName("JFreeChart"); ok {
		add("fig6.jfreechart.native", "JFreeChart perceptible lag in native code", a.LocationLong.Native)
	}
	if a, ok := res.AppByName("Euclide"); ok {
		add("fig6.euclide.library", "Euclide perceptible lag in runtime library", a.LocationLong.Library)
	}
	if a, ok := res.AppByName("JHotDraw"); ok {
		add("fig6.jhotdraw.app", "JHotDraw perceptible lag in application code", a.LocationLong.App)
	}

	// Figure 7 aggregate.
	var conc float64
	for _, a := range res.Apps {
		conc += a.ConcurrencyAll / n
	}
	add("fig7.all.runnable_threads", "avg runnable threads over all episodes", conc)

	// Figure 8 standouts.
	if a, ok := res.AppByName("JEdit"); ok {
		add("fig8.jedit.waiting", "JEdit perceptible lag waiting", a.CausesLong.Waiting)
	}
	if a, ok := res.AppByName("FreeMind"); ok {
		add("fig8.freemind.blocked", "FreeMind perceptible lag blocked", a.CausesLong.Blocked)
	}
	if a, ok := res.AppByName("Euclide"); ok {
		add("fig8.euclide.sleeping", "Euclide perceptible lag sleeping", a.CausesLong.Sleeping)
	}
	return fs
}

// FormatFindings renders the findings as a markdown table.
func FormatFindings(fs []Finding) string {
	var b strings.Builder
	b.WriteString("| Experiment | Claim | Paper | Measured | Ratio |\n")
	b.WriteString("|---|---|---:|---:|---:|\n")
	for _, f := range fs {
		fmt.Fprintf(&b, "| %s | %s | %.2f | %.2f | %.2f |\n", f.ID, f.What, f.Paper, f.Measured, f.Ratio())
	}
	return b.String()
}

// FormatExperimentsMarkdown renders the complete EXPERIMENTS.md body:
// study configuration, Table III paper-vs-measured, and the Section IV
// findings.
func FormatExperimentsMarkdown(res *StudyResult) string {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	fmt.Fprintf(&b, "Study configuration: %d applications × %d sessions, seed %d, threshold %v.\n",
		len(res.Apps), res.Config.sessions(), res.Config.Seed, res.Config.threshold())
	fmt.Fprintf(&b, "Total traced episodes: %d (the paper reports ~250'000 for 7.5 h of sessions).\n\n",
		res.TotalEpisodes())
	b.WriteString("All workloads are simulated (see DESIGN.md): absolute numbers are\n")
	b.WriteString("calibrated, so the comparison below validates *shape* — orderings,\n")
	b.WriteString("dominant categories, and standout applications — not measurement\n")
	b.WriteString("of the original binaries.\n\n")
	b.WriteString("## Table III — overall statistics (paper row above, measured row below)\n\n")
	b.WriteString("```\n")
	b.WriteString(FormatTable3Comparison(res.Rows))
	b.WriteString("```\n\n")
	b.WriteString("## Section IV findings (Figures 3–8)\n\n")
	b.WriteString(FormatFindings(Findings(res)))
	b.WriteString("\n## Figures\n\n")
	b.WriteString("Regenerate every figure and table with `go run ./cmd/lagreport -out <dir>`;\n")
	b.WriteString("per-figure benchmarks live in `bench_test.go` (`go test -bench=. -benchmem`).\n")
	return b.String()
}
