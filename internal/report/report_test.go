package report

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// fullStudy runs the study once (one session per app to keep tests
// fast) and caches it for all tests in the package.
var fullStudy = sync.OnceValues(func() (*StudyResult, error) {
	return RunStudy(StudyConfig{Seed: 2026, SessionsPerApp: 1})
})

func study(t *testing.T) *StudyResult {
	t.Helper()
	res, err := fullStudy()
	if err != nil {
		t.Fatalf("RunStudy: %v", err)
	}
	return res
}

func TestStudyCoversAllApplications(t *testing.T) {
	res := study(t)
	if len(res.Apps) != 14 {
		t.Fatalf("%d apps, want 14", len(res.Apps))
	}
	names := apps.Names()
	for _, name := range names {
		if _, ok := res.AppByName(name); !ok {
			t.Errorf("missing app %s", name)
		}
	}
	if _, ok := res.AppByName("NoSuchApp"); ok {
		t.Error("AppByName invented an app")
	}
	if len(res.Rows) != 15 || res.Rows[14].App != "Mean" {
		t.Errorf("rows should be 14 apps + Mean, got %d (%q last)", len(res.Rows), res.Rows[len(res.Rows)-1].App)
	}
}

// TestTable3Shape checks every application's overview against the
// paper's Table III within generous bands: the substrate is a
// simulator, so we validate calibration, not measurement.
func TestTable3Shape(t *testing.T) {
	res := study(t)
	for _, row := range res.Rows[:14] {
		paper, ok := PaperRowFor(row.App)
		if !ok {
			t.Fatalf("no paper row for %s", row.App)
		}
		within := func(metric string, got, want, relTol float64) {
			t.Helper()
			if want == 0 {
				return
			}
			if math.Abs(got-want) > relTol*want {
				t.Errorf("%s: %s = %.1f, paper %.1f (tol ±%.0f%%)", row.App, metric, got, want, relTol*100)
			}
		}
		within("E2E", row.E2ESeconds, paper.E2E, 0.15)
		within("InEps%", row.InEpsFrac*100, paper.InEpsPct, 0.35)
		within("<3ms", row.Short, paper.Short, 0.20)
		within(">=3ms", row.Traced, paper.Traced, 0.30)
		within(">=100ms", row.Perceptible, paper.Long, 0.55)
		within("Long/min", row.LongPerMin, paper.LongPerMin, 0.55)
		within("Dist", row.Dist, paper.Dist, 0.75)
	}
}

// TestOrderingInvariants checks the qualitative statements Table III
// supports: which application is worst/best per metric.
func TestOrderingInvariants(t *testing.T) {
	res := study(t)
	rows := map[string]int{}
	for i, r := range res.Rows[:14] {
		rows[r.App] = i
	}
	get := func(app string) struct{ lpm, short, descs, depth float64 } {
		r := res.Rows[rows[app]]
		return struct{ lpm, short, descs, depth float64 }{r.LongPerMin, r.Short, r.Descs, r.Depth}
	}
	// Jmol has the worst perceptible performance (Long/min).
	jmol := get("Jmol").lpm
	for app := range rows {
		if app != "Jmol" && app != "GanttProject" && get(app).lpm > jmol {
			t.Errorf("%s Long/min (%.0f) exceeds Jmol's (%.0f)", app, get(app).lpm, jmol)
		}
	}
	// Laoe produces by far the most sub-filter episodes.
	laoe := get("Laoe").short
	for app := range rows {
		if app != "Laoe" && get(app).short > laoe/2 {
			t.Errorf("%s short count (%.0f) too close to Laoe's (%.0f)", app, get(app).short, laoe)
		}
	}
	// GanttProject has the deepest, richest trees.
	gantt := get("GanttProject")
	for app := range rows {
		if app == "GanttProject" {
			continue
		}
		if get(app).descs >= gantt.descs || get(app).depth >= gantt.depth {
			t.Errorf("%s structure (descs %.1f depth %.1f) not below GanttProject (%.1f, %.1f)",
				app, get(app).descs, get(app).depth, gantt.descs, gantt.depth)
		}
	}
}

// TestSectionIVFindings checks the per-application standouts of the
// characterization (Figures 5-8) hold qualitatively.
func TestSectionIVFindings(t *testing.T) {
	res := study(t)
	fs := Findings(res)
	byID := map[string]Finding{}
	for _, f := range fs {
		byID[f.ID] = f
	}
	atLeast := func(id string, min float64) {
		t.Helper()
		f, ok := byID[id]
		if !ok {
			t.Fatalf("missing finding %s", id)
		}
		if f.Measured < min {
			t.Errorf("%s = %.2f, want >= %.2f (paper %.2f)", id, f.Measured, min, f.Paper)
		}
	}
	atMost := func(id string, max float64) {
		t.Helper()
		if f := byID[id]; f.Measured > max {
			t.Errorf("%s = %.2f, want <= %.2f (paper %.2f)", id, f.Measured, max, f.Paper)
		}
	}

	atLeast("fig3.episodes_in_top20pct_patterns", 0.60) // Pareto shape
	atLeast("fig4.freemind_never", 0.70)
	atLeast("fig4.gantt_always", 0.35)
	atLeast("fig5.arabeske.unspecified", 0.40)
	atLeast("fig5.jmol.output", 0.80)
	atLeast("fig5.argouml.input", 0.60)
	atLeast("fig5.findbugs.async", 0.25)
	atLeast("fig6.arabeske.gc", 0.40)
	atLeast("fig6.argouml.gc", 0.18)
	atMost("fig6.argouml.gc", 0.40)
	atLeast("fig6.jfreechart.native", 0.15)
	atLeast("fig6.euclide.library", 0.60)
	atLeast("fig6.jhotdraw.app", 0.90)
	atLeast("fig8.jedit.waiting", 0.15)
	atLeast("fig8.freemind.blocked", 0.06)
	atLeast("fig8.euclide.sleeping", 0.45)

	// Concurrency: above 1 only for the three background-thread apps.
	for _, a := range res.Apps {
		above := a.ConcurrencyAll > 1.05
		wantAbove := a.Suite.App == "Arabeske" || a.Suite.App == "FindBugs" || a.Suite.App == "NetBeans"
		if above != wantAbove {
			t.Errorf("%s concurrency %.2f: above-1 = %v, want %v", a.Suite.App, a.ConcurrencyAll, above, wantAbove)
		}
	}
	// The perceptible-panel GUI thread is runnable most of the time
	// everywhere (the paper zooms Figure 8 to 60% for a reason).
	for _, a := range res.Apps {
		if a.CausesAll.Runnable < 0.80 {
			t.Errorf("%s all-episode runnable share %.2f unexpectedly low", a.Suite.App, a.CausesAll.Runnable)
		}
	}
}

func TestStudyScale(t *testing.T) {
	res := study(t)
	// One session per app ≈ a quarter of the paper's ~250k episodes.
	if n := res.TotalEpisodes(); n < 40000 || n > 100000 {
		t.Errorf("total episodes = %d, want ~62k for 1 session/app", n)
	}
}

func TestFiguresRendered(t *testing.T) {
	res := study(t)
	figs := Figures(res)
	want := []string{
		"figure1_sketch.svg", "figure2_ganttproject_sketch.svg", "figure3_pattern_cdf.svg",
		"figure4_occurrence.svg", "figure5_triggers_all.svg", "figure5_triggers_long.svg",
		"figure6_location_all.svg", "figure6_location_long.svg",
		"figure7_concurrency_all.svg", "figure7_concurrency_long.svg",
		"figure8_causes_all.svg", "figure8_causes_long.svg",
	}
	for _, name := range want {
		svg, ok := figs[name]
		if !ok {
			t.Errorf("missing figure %s", name)
			continue
		}
		if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Errorf("%s is not an SVG document", name)
		}
	}
}

func TestFigure1SketchReproducesThePaper(t *testing.T) {
	s, e := Figure1Episode()
	if err := s.Validate(); err != nil {
		t.Fatalf("figure 1 session invalid: %v", err)
	}
	if e.Dur() != trace.Ms(1705) {
		t.Errorf("episode duration %v, want 1705ms", e.Dur())
	}
	gc := e.Root.FindKind(trace.KindGC)
	if gc == nil || gc.Dur() != trace.Ms(466) {
		t.Fatalf("GC interval wrong: %v", gc)
	}
	nat := e.Root.FindKind(trace.KindNative)
	if nat == nil || nat.Dur() != trace.Ms(843) {
		t.Fatalf("native interval wrong: %v", nat)
	}
	// The sampling gap must be wider than the GC interval itself.
	if n := len(s.TicksIn(gc.Start, gc.End)); n != 0 {
		t.Errorf("%d samples during GC", n)
	}
	if n := len(s.TicksIn(nat.Start, nat.End)); n > 5 {
		t.Errorf("sampling gap should cover almost the whole native call; %d ticks inside", n)
	}
	svg := Figure1SVG()
	for _, want := range []string{"JToolBar", "DrawLine", "Figure 1"} {
		if !strings.Contains(svg, want) {
			t.Errorf("figure 1 SVG missing %q", want)
		}
	}
}

func TestFigure2DeepNesting(t *testing.T) {
	s, e, err := Figure2Episode(apps.GanttProject(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if e.Root.Depth() < 9 {
		t.Errorf("figure 2 episode depth = %d, want >= 9 (deep paint nesting)", e.Root.Depth())
	}
	if e.Root.Descendants() < 12 {
		t.Errorf("figure 2 episode descendants = %d, want >= 12", e.Root.Descendants())
	}
	if s.App != "GanttProject" {
		t.Errorf("session app = %q", s.App)
	}
}

func TestTextRenderings(t *testing.T) {
	res := study(t)
	all := FormatAll(res)
	for _, want := range []string{
		"Table II", "Table III", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "GanttProject", "Jmol",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("FormatAll missing %q", want)
		}
	}
	md := FormatExperimentsMarkdown(res)
	for _, want := range []string{"# EXPERIMENTS", "fig5.jmol.output", "| Experiment |", "Table III"} {
		if !strings.Contains(md, want) {
			t.Errorf("experiments markdown missing %q", want)
		}
	}
	if !strings.Contains(FormatTable2(), "45367") {
		t.Error("Table II missing the NetBeans class count")
	}
}

func TestAnalyzeSuiteOnLoadedSessions(t *testing.T) {
	// AnalyzeSuite must work for suites not produced by RunStudy
	// (e.g. loaded from trace files): build a tiny synthetic suite.
	root := trace.NewInterval(trace.KindDispatch, "", "", 0, trace.Ms(150))
	root.AddChild(trace.NewInterval(trace.KindListener, "a.B", "on", 0, trace.Ms(100)))
	s := &trace.Session{
		App: "Loaded", GUIThread: 1, Start: 0, End: trace.Time(10 * trace.Second),
		Episodes: []*trace.Episode{{Index: 0, Thread: 1, Root: root}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	a := AnalyzeSuite(&trace.Suite{App: "Loaded", Sessions: []*trace.Session{s}}, 0)
	if a.Profile != nil {
		t.Error("loaded suite should have no profile")
	}
	if a.Overview.Traced != 1 || a.Overview.Perceptible != 1 {
		t.Errorf("overview: %+v", a.Overview)
	}
	if a.TriggerLong.Total != 1 {
		t.Errorf("trigger total = %d", a.TriggerLong.Total)
	}
}

func TestRunStudyDeterminism(t *testing.T) {
	run := func() *StudyResult {
		res, err := RunStudy(StudyConfig{
			Apps:           []*sim.Profile{apps.CrosswordSage()},
			SessionsPerApp: 2,
			Seed:           99,
			SessionSeconds: 30,
			Sequential:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalEpisodes() != b.TotalEpisodes() {
		t.Errorf("episode counts differ: %d vs %d", a.TotalEpisodes(), b.TotalEpisodes())
	}
	if FormatTable3(a.Rows) != FormatTable3(b.Rows) {
		t.Error("identical configs produced different Table III rows")
	}
	if len(a.Apps[0].Pooled.Patterns) != len(b.Apps[0].Pooled.Patterns) {
		t.Error("pattern sets differ between identical runs")
	}
}

func TestPaperDataComplete(t *testing.T) {
	if len(PaperTable3) != 15 {
		t.Fatalf("PaperTable3 has %d rows, want 14 + Mean", len(PaperTable3))
	}
	for _, name := range apps.Names() {
		if _, ok := PaperRowFor(name); !ok {
			t.Errorf("PaperTable3 missing %s", name)
		}
	}
	if _, ok := PaperRowFor("Mean"); !ok {
		t.Error("PaperTable3 missing the Mean row")
	}
	for _, key := range []string{
		"fig3.episodes_in_top20pct_patterns", "fig5.jmol.output", "fig6.euclide.library",
		"fig7.all.runnable_threads", "fig8.euclide.sleeping",
	} {
		if _, ok := PaperFindings[key]; !ok {
			t.Errorf("PaperFindings missing %s", key)
		}
	}
}

func TestCDFSharesAreParetoLike(t *testing.T) {
	res := study(t)
	for _, a := range res.Apps {
		at20 := stats.ShareAt(a.CDF, 0.2)
		at100 := stats.ShareAt(a.CDF, 1.0)
		if math.Abs(at100-1) > 1e-9 {
			t.Errorf("%s: CDF does not reach 1 (%.3f)", a.Suite.App, at100)
		}
		if at20 < 0.2 {
			t.Errorf("%s: top 20%% of patterns cover only %.1f%% of episodes", a.Suite.App, at20*100)
		}
	}
}

func TestFormatHTML(t *testing.T) {
	res := study(t)
	page := FormatHTML(res)
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>", "<svg", "Table III",
		"figure3_pattern_cdf.svg", "fig5.jmol.output", "GanttProject",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	// All 12 figures embedded.
	if got := strings.Count(page, "<figure>"); got != 12 {
		t.Errorf("%d figures embedded, want 12", got)
	}
}

func TestLoadTraceDirAndAnalyzeSuites(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, app string, id int, format lila.Format) {
		p, err := apps.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.Run(sim.Config{Profile: p, SessionID: id, Seed: 3, SessionSeconds: 10})
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := lila.WriteSession(f, format, s); err != nil {
			t.Fatal(err)
		}
	}
	write("cs0.lila", "CrosswordSage", 0, lila.FormatBinary)
	write("cs1.lila", "CrosswordSage", 1, lila.FormatText)
	write("je0.lila", "JEdit", 0, lila.FormatBinary)

	suites, err := LoadTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 2 {
		t.Fatalf("suites = %d, want 2", len(suites))
	}
	if suites[0].App != "CrosswordSage" || len(suites[0].Sessions) != 2 {
		t.Errorf("suite 0 = %s with %d sessions", suites[0].App, len(suites[0].Sessions))
	}
	if suites[1].App != "JEdit" || len(suites[1].Sessions) != 1 {
		t.Errorf("suite 1 = %s with %d sessions", suites[1].App, len(suites[1].Sessions))
	}

	res := AnalyzeSuites(suites, 0)
	if len(res.Apps) != 2 || len(res.Rows) != 3 {
		t.Fatalf("analyzed %d apps, %d rows", len(res.Apps), len(res.Rows))
	}
	if res.Rows[2].App != "Mean" {
		t.Errorf("last row = %q", res.Rows[2].App)
	}
	if res.Rows[0].Traced == 0 {
		t.Error("empty overview from loaded traces")
	}
	// The text renderers must work on loaded studies too.
	if !strings.Contains(FormatTable3(res.Rows), "CrosswordSage") {
		t.Error("Table III missing loaded app")
	}

	if _, err := LoadTraceDir(filepath.Join(dir, "nonexistent")); err == nil {
		t.Error("missing directory accepted")
	}
	empty := t.TempDir()
	if _, err := LoadTraceDir(empty); err == nil {
		t.Error("empty directory accepted")
	}
	// A non-trace file fails cleanly.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "junk.txt"), []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTraceDir(bad); err == nil {
		t.Error("junk file accepted")
	}
}

// TestRunStudySequentialParallelIdentical is the engine's determinism
// guarantee surfaced at the study level: with a fixed seed, the
// parallel run must reproduce the sequential run exactly — same Table
// III rows, same pattern ordering, same pattern IDs — because the
// engine's chunk layout and merge order never depend on the worker
// count.
func TestRunStudySequentialParallelIdentical(t *testing.T) {
	run := func(sequential bool) *StudyResult {
		res, err := RunStudy(StudyConfig{
			Apps:           []*sim.Profile{apps.CrosswordSage(), apps.GanttProject()},
			SessionsPerApp: 2,
			Seed:           99,
			SessionSeconds: 30,
			Sequential:     sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(true), run(false)

	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		if seq.Rows[i] != par.Rows[i] {
			t.Errorf("row %d differs:\nseq %+v\npar %+v", i, seq.Rows[i], par.Rows[i])
		}
	}
	for i, sa := range seq.Apps {
		pa := par.Apps[i]
		if sa.Suite.App != pa.Suite.App {
			t.Fatalf("app order differs at %d: %s vs %s", i, sa.Suite.App, pa.Suite.App)
		}
		if len(sa.Pooled.Patterns) != len(pa.Pooled.Patterns) {
			t.Fatalf("%s: pattern counts differ: %d vs %d",
				sa.Suite.App, len(sa.Pooled.Patterns), len(pa.Pooled.Patterns))
		}
		for j, sp := range sa.Pooled.Patterns {
			pp := pa.Pooled.Patterns[j]
			if sp.Canon != pp.Canon || sp.ID() != pp.ID() || sp.Count() != pp.Count() {
				t.Fatalf("%s pattern %d differs: %s %q (n=%d) vs %s %q (n=%d)",
					sa.Suite.App, j, sp.ID(), sp.Canon, sp.Count(), pp.ID(), pp.Canon, pp.Count())
			}
		}
		if sa.TriggerAll != pa.TriggerAll || sa.CausesAll != pa.CausesAll ||
			sa.LocationAll != pa.LocationAll || sa.ConcurrencyAll != pa.ConcurrencyAll {
			t.Errorf("%s: figure analyses differ between sequential and parallel", sa.Suite.App)
		}
	}
}
