// Package patterns implements LagAlyzer's episode classification
// (Sections II-C to II-E of the paper): episodes are grouped into
// equivalence classes ("patterns") according to the structure of their
// interval trees — the interval kinds and their symbolic information —
// while excluding both timing and GC intervals from the comparison.
//
// Excluding timing lets a pattern mix perceptible and imperceptible
// episodes, which is exactly what makes the always/sometimes/once/never
// occurrence classification (Figure 4) informative. Excluding GC nodes
// keeps episodes that differ only by an incidental collection in the
// same class, so a developer can ask whether a class always or rarely
// suffers GCs.
//
// Episodes whose dispatch interval has no non-GC children carry no
// structure to classify and are excluded from pattern mining (they
// remain visible to the trigger analysis as "unspecified" episodes).
package patterns

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// Options control the classification.
type Options struct {
	// IncludeGC also fingerprints GC intervals. The paper excludes
	// them; including them is an ablation that splits classes which
	// differ only by incidental collections.
	IncludeGC bool
	// KindOnly drops symbolic information (class and method names)
	// from fingerprints, comparing trees by interval kind alone. An
	// ablation: it collapses distinct behaviours into one pattern.
	KindOnly bool
	// Threshold is the perceptibility threshold used by the
	// occurrence classification; 0 means
	// trace.DefaultPerceptibleThreshold.
	Threshold trace.Dur
}

func (o Options) threshold() trace.Dur {
	if o.Threshold == 0 {
		return trace.DefaultPerceptibleThreshold
	}
	return o.Threshold
}

// EpisodeRef ties an episode to the session it came from, so analyses
// spanning multiple sessions (the study integrates four per
// application) can locate samples and context.
type EpisodeRef struct {
	Session *trace.Session
	Episode *trace.Episode
}

// Occurrence classifies how often a pattern's episodes were
// perceptible (Section IV-B, Figure 4).
type Occurrence int

const (
	// OccNever means none of the pattern's episodes were perceptible.
	OccNever Occurrence = iota
	// OccOnce means exactly one of several episodes was perceptible —
	// often the first, pointing at initialization activity.
	OccOnce
	// OccSometimes means some but not all episodes were perceptible:
	// a potentially non-deterministic phenomenon.
	OccSometimes
	// OccAlways means every episode was perceptible — a deterministic
	// problem. A singleton pattern whose only episode was perceptible
	// is classified as always.
	OccAlways

	numOccurrences = iota
)

var occNames = [numOccurrences]string{
	OccNever:     "never",
	OccOnce:      "once",
	OccSometimes: "sometimes",
	OccAlways:    "always",
}

// String returns the lowercase occurrence name used in Figure 4.
func (o Occurrence) String() string {
	if int(o) >= numOccurrences {
		return fmt.Sprintf("occurrence(%d)", int(o))
	}
	return occNames[o]
}

// Occurrences returns all occurrence classes in severity order
// (never, once, sometimes, always).
func Occurrences() []Occurrence {
	os := make([]Occurrence, numOccurrences)
	for i := range os {
		os[i] = Occurrence(i)
	}
	return os
}

// Pattern is one equivalence class of structurally identical episodes.
type Pattern struct {
	// Canon is the canonical text form of the class's tree structure,
	// e.g. "dispatch(listener[app.B.on](paint[x.P.paint]))". Patterns
	// are equal iff their canonical forms are equal.
	Canon string
	// Hash is a 64-bit FNV-1a hash of Canon, for cheap map keys and
	// stable display identifiers.
	Hash uint64
	// Episodes lists the member episodes in encounter order (session
	// order within a session, sessions in input order).
	Episodes []EpisodeRef
	// Descendants and Depth describe the fingerprinted structure
	// (excluding whatever Options excluded): the number of
	// descendants of the dispatch interval and the height of the
	// tree. Table III reports their averages over patterns.
	Descendants int
	Depth       int

	lag stats.Summary // durations in milliseconds
}

// Count returns the number of member episodes.
func (p *Pattern) Count() int { return len(p.Episodes) }

// MinLag, AvgLag, MaxLag, and TotalLag are the lag statistics the
// pattern browser shows per pattern.
func (p *Pattern) MinLag() trace.Dur   { return trace.Ms(p.lag.Min) }
func (p *Pattern) AvgLag() trace.Dur   { return trace.Ms(p.lag.Mean()) }
func (p *Pattern) MaxLag() trace.Dur   { return trace.Ms(p.lag.Max) }
func (p *Pattern) TotalLag() trace.Dur { return trace.Ms(p.lag.Total) }

// PerceptibleCount returns how many member episodes meet the
// threshold.
func (p *Pattern) PerceptibleCount(threshold trace.Dur) int {
	n := 0
	for _, ref := range p.Episodes {
		if ref.Episode.Perceptible(threshold) {
			n++
		}
	}
	return n
}

// Occurrence classifies the pattern per Section IV-B: never (no
// perceptible episode), always (all perceptible, including perceptible
// singletons), once (exactly one of several), sometimes (the rest).
func (p *Pattern) Occurrence(threshold trace.Dur) Occurrence {
	k, n := p.PerceptibleCount(threshold), p.Count()
	switch {
	case k == 0:
		return OccNever
	case k == n:
		return OccAlways
	case k == 1:
		return OccOnce
	default:
		return OccSometimes
	}
}

// GCCount returns how many member episodes contain at least one GC
// interval. Because fingerprints exclude GC nodes, a pattern mixes
// episodes with and without collections; this is the measure behind
// the paper's §II-D guidance — "a developer can determine whether a
// given equivalence class always or rarely contains GC intervals. If
// it always contains GC intervals, then the developer may want to
// investigate the cause of the GC."
func (p *Pattern) GCCount() int {
	n := 0
	for _, ref := range p.Episodes {
		if ref.Episode.Root.HasKind(trace.KindGC) {
			n++
		}
	}
	return n
}

// GCFrac returns GCCount as a fraction of the pattern's episodes.
func (p *Pattern) GCFrac() float64 {
	if len(p.Episodes) == 0 {
		return 0
	}
	return float64(p.GCCount()) / float64(len(p.Episodes))
}

// Singleton reports whether the pattern has exactly one episode.
// Table III's "One-Ep" column is the fraction of singleton patterns.
func (p *Pattern) Singleton() bool { return len(p.Episodes) == 1 }

// First returns the pattern's first episode (the browser shows its
// sketch when the pattern is selected).
func (p *Pattern) First() EpisodeRef { return p.Episodes[0] }

// ID returns a short stable identifier derived from the hash, used in
// browser displays and file names.
func (p *Pattern) ID() string { return fmt.Sprintf("p%012x", p.Hash&0xffffffffffff) }

// Set is the result of classifying a group of sessions.
type Set struct {
	// Patterns holds the equivalence classes, ordered by descending
	// episode count, ties broken by canonical form (deterministic).
	Patterns []*Pattern
	// Unstructured lists the episodes excluded from classification
	// because their dispatch interval has no non-GC children.
	Unstructured []EpisodeRef
	// Options echoes the classification options used.
	Options Options

	byCanon map[string]*Pattern
}

// Fingerprint returns the canonical structural form of an episode's
// tree under the given options. Two episodes belong to the same
// pattern iff their fingerprints are equal.
func Fingerprint(e *trace.Episode, opt Options) string {
	var b strings.Builder
	writeCanon(&b, e.Root, opt)
	return b.String()
}

func writeCanon(b *strings.Builder, iv *trace.Interval, opt Options) {
	b.WriteString(iv.Kind.String())
	if !opt.KindOnly && (iv.Class != "" || iv.Method != "") {
		b.WriteByte('[')
		b.WriteString(iv.Class)
		b.WriteByte('.')
		b.WriteString(iv.Method)
		b.WriteByte(']')
	}
	wrote := false
	for _, c := range iv.Children {
		if c.Kind == trace.KindGC && !opt.IncludeGC {
			continue
		}
		if !wrote {
			b.WriteByte('(')
			wrote = true
		} else {
			b.WriteByte(',')
		}
		writeCanon(b, c, opt)
	}
	if wrote {
		b.WriteByte(')')
	}
}

// structureOf computes descendant count and depth of the fingerprinted
// structure (honoring GC exclusion).
func structureOf(iv *trace.Interval, opt Options) (descs, depth int) {
	maxChild := 0
	for _, c := range iv.Children {
		if c.Kind == trace.KindGC && !opt.IncludeGC {
			continue
		}
		d, dep := structureOf(c, opt)
		descs += 1 + d
		if dep > maxChild {
			maxChild = dep
		}
	}
	return descs, maxChild + 1
}

// Classify groups the episodes of the given sessions into patterns.
func Classify(sessions []*trace.Session, opt Options) *Set {
	set := &Set{Options: opt, byCanon: make(map[string]*Pattern)}
	for _, s := range sessions {
		for _, e := range s.Episodes {
			ref := EpisodeRef{Session: s, Episode: e}
			if !structured(e, opt) {
				set.Unstructured = append(set.Unstructured, ref)
				continue
			}
			canon := Fingerprint(e, opt)
			p := set.byCanon[canon]
			if p == nil {
				h := fnv.New64a()
				h.Write([]byte(canon))
				p = &Pattern{Canon: canon, Hash: h.Sum64()}
				// Depth is the height of the fingerprinted tree
				// including the dispatch root (a bare dispatch
				// would have depth 1, but bare dispatches are
				// unstructured and never get here).
				p.Descendants, p.Depth = structureOf(e.Root, opt)
				set.byCanon[canon] = p
				set.Patterns = append(set.Patterns, p)
			}
			p.Episodes = append(p.Episodes, ref)
			p.lag.Add(e.Dur().Ms())
		}
	}
	sort.SliceStable(set.Patterns, func(i, j int) bool {
		a, b := set.Patterns[i], set.Patterns[j]
		if len(a.Episodes) != len(b.Episodes) {
			return len(a.Episodes) > len(b.Episodes)
		}
		return a.Canon < b.Canon
	})
	return set
}

// structured reports whether the episode participates in
// classification under opt: it must have at least one child that the
// fingerprint would retain.
func structured(e *trace.Episode, opt Options) bool {
	if opt.IncludeGC {
		return len(e.Root.Children) > 0
	}
	return e.Structured()
}

// Lookup returns the pattern an episode belongs to within this set, if
// the episode was classified.
func (s *Set) Lookup(e *trace.Episode) (*Pattern, bool) {
	p, ok := s.byCanon[Fingerprint(e, s.Options)]
	return p, ok
}

// Covered returns the total number of episodes covered by patterns
// (Table III's "#Eps").
func (s *Set) Covered() int {
	n := 0
	for _, p := range s.Patterns {
		n += len(p.Episodes)
	}
	return n
}

// SingletonFrac returns the fraction of patterns with exactly one
// episode (Table III's "One-Ep").
func (s *Set) SingletonFrac() float64 {
	if len(s.Patterns) == 0 {
		return 0
	}
	n := 0
	for _, p := range s.Patterns {
		if p.Singleton() {
			n++
		}
	}
	return float64(n) / float64(len(s.Patterns))
}

// OccurrenceCounts tallies patterns per occurrence class at the set's
// threshold (the per-application bars of Figure 4).
func (s *Set) OccurrenceCounts() map[Occurrence]int {
	counts := make(map[Occurrence]int, numOccurrences)
	th := s.Options.threshold()
	for _, p := range s.Patterns {
		counts[p.Occurrence(th)]++
	}
	return counts
}

// CDF returns the cumulative distribution of episodes into patterns
// (Figure 3): x is the fraction of patterns (largest first), y the
// fraction of covered episodes they hold.
func (s *Set) CDF() []stats.CDFPoint {
	weights := make([]float64, len(s.Patterns))
	for i, p := range s.Patterns {
		weights[i] = float64(len(p.Episodes))
	}
	return stats.CumulativeShare(weights)
}

// MeanDescendants and MeanDepth average the structural metrics over
// patterns (Table III's "Descs" and "Depth" columns).
func (s *Set) MeanDescendants() float64 {
	if len(s.Patterns) == 0 {
		return 0
	}
	t := 0
	for _, p := range s.Patterns {
		t += p.Descendants
	}
	return float64(t) / float64(len(s.Patterns))
}

// MeanDepth averages pattern tree depth; see MeanDescendants.
func (s *Set) MeanDepth() float64 {
	if len(s.Patterns) == 0 {
		return 0
	}
	t := 0
	for _, p := range s.Patterns {
		t += p.Depth
	}
	return float64(t) / float64(len(s.Patterns))
}

// Perceptible returns the patterns that have at least one perceptible
// episode — the browser's "elide never-perceptible patterns" filter.
func (s *Set) Perceptible() []*Pattern {
	th := s.Options.threshold()
	var out []*Pattern
	for _, p := range s.Patterns {
		if p.PerceptibleCount(th) > 0 {
			out = append(out, p)
		}
	}
	return out
}
