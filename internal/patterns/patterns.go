// Package patterns implements LagAlyzer's episode classification
// (Sections II-C to II-E of the paper): episodes are grouped into
// equivalence classes ("patterns") according to the structure of their
// interval trees — the interval kinds and their symbolic information —
// while excluding both timing and GC intervals from the comparison.
//
// Excluding timing lets a pattern mix perceptible and imperceptible
// episodes, which is exactly what makes the always/sometimes/once/never
// occurrence classification (Figure 4) informative. Excluding GC nodes
// keeps episodes that differ only by an incidental collection in the
// same class, so a developer can ask whether a class always or rarely
// suffers GCs.
//
// Episodes whose dispatch interval has no non-GC children carry no
// structure to classify and are excluded from pattern mining (they
// remain visible to the trigger analysis as "unspecified" episodes).
package patterns

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"lagalyzer/internal/obs"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// Classification metrics, flushed once per Finish — never touched on
// the per-episode hot path.
var (
	mPatternsUnique = obs.NewCounter("patterns_unique_total",
		"distinct patterns produced by classification")
	mEpisodesDeduped = obs.NewCounter("patterns_episodes_deduped_total",
		"episodes that matched an already-known pattern")
	mUnstructured = obs.NewCounter("patterns_unstructured_total",
		"episodes excluded from classification (no retained structure)")
)

// Options control the classification.
type Options struct {
	// IncludeGC also fingerprints GC intervals. The paper excludes
	// them; including them is an ablation that splits classes which
	// differ only by incidental collections.
	IncludeGC bool
	// KindOnly drops symbolic information (class and method names)
	// from fingerprints, comparing trees by interval kind alone. An
	// ablation: it collapses distinct behaviours into one pattern.
	KindOnly bool
	// Threshold is the perceptibility threshold used by the
	// occurrence classification; 0 means
	// trace.DefaultPerceptibleThreshold.
	Threshold trace.Dur
}

func (o Options) threshold() trace.Dur {
	if o.Threshold == 0 {
		return trace.DefaultPerceptibleThreshold
	}
	return o.Threshold
}

// EpisodeRef ties an episode to the session it came from, so analyses
// spanning multiple sessions (the study integrates four per
// application) can locate samples and context.
type EpisodeRef struct {
	Session *trace.Session
	Episode *trace.Episode
}

// Occurrence classifies how often a pattern's episodes were
// perceptible (Section IV-B, Figure 4).
type Occurrence int

const (
	// OccNever means none of the pattern's episodes were perceptible.
	OccNever Occurrence = iota
	// OccOnce means exactly one of several episodes was perceptible —
	// often the first, pointing at initialization activity.
	OccOnce
	// OccSometimes means some but not all episodes were perceptible:
	// a potentially non-deterministic phenomenon.
	OccSometimes
	// OccAlways means every episode was perceptible — a deterministic
	// problem. A singleton pattern whose only episode was perceptible
	// is classified as always.
	OccAlways

	numOccurrences = iota
)

var occNames = [numOccurrences]string{
	OccNever:     "never",
	OccOnce:      "once",
	OccSometimes: "sometimes",
	OccAlways:    "always",
}

// String returns the lowercase occurrence name used in Figure 4.
func (o Occurrence) String() string {
	if int(o) >= numOccurrences {
		return fmt.Sprintf("occurrence(%d)", int(o))
	}
	return occNames[o]
}

// Occurrences returns all occurrence classes in severity order
// (never, once, sometimes, always).
func Occurrences() []Occurrence {
	os := make([]Occurrence, numOccurrences)
	for i := range os {
		os[i] = Occurrence(i)
	}
	return os
}

// Pattern is one equivalence class of structurally identical episodes.
type Pattern struct {
	// Canon is the canonical text form of the class's tree structure,
	// e.g. "dispatch(listener[app.B.on](paint[x.P.paint]))". Patterns
	// are equal iff their canonical forms are equal.
	Canon string
	// Hash is a 64-bit FNV-1a hash of Canon, for cheap map keys and
	// stable display identifiers.
	Hash uint64
	// Episodes lists the member episodes in encounter order (session
	// order within a session, sessions in input order).
	Episodes []EpisodeRef
	// Descendants and Depth describe the fingerprinted structure
	// (excluding whatever Options excluded): the number of
	// descendants of the dispatch interval and the height of the
	// tree. Table III reports their averages over patterns.
	Descendants int
	Depth       int

	lag stats.Summary // durations in milliseconds
}

// Count returns the number of member episodes.
func (p *Pattern) Count() int { return len(p.Episodes) }

// MinLag, AvgLag, MaxLag, and TotalLag are the lag statistics the
// pattern browser shows per pattern.
func (p *Pattern) MinLag() trace.Dur   { return trace.Ms(p.lag.Min) }
func (p *Pattern) AvgLag() trace.Dur   { return trace.Ms(p.lag.Mean()) }
func (p *Pattern) MaxLag() trace.Dur   { return trace.Ms(p.lag.Max) }
func (p *Pattern) TotalLag() trace.Dur { return trace.Ms(p.lag.Total) }

// PerceptibleCount returns how many member episodes meet the
// threshold.
func (p *Pattern) PerceptibleCount(threshold trace.Dur) int {
	n := 0
	for _, ref := range p.Episodes {
		if ref.Episode.Perceptible(threshold) {
			n++
		}
	}
	return n
}

// Occurrence classifies the pattern per Section IV-B: never (no
// perceptible episode), always (all perceptible, including perceptible
// singletons), once (exactly one of several), sometimes (the rest).
func (p *Pattern) Occurrence(threshold trace.Dur) Occurrence {
	k, n := p.PerceptibleCount(threshold), p.Count()
	switch {
	case k == 0:
		return OccNever
	case k == n:
		return OccAlways
	case k == 1:
		return OccOnce
	default:
		return OccSometimes
	}
}

// GCCount returns how many member episodes contain at least one GC
// interval. Because fingerprints exclude GC nodes, a pattern mixes
// episodes with and without collections; this is the measure behind
// the paper's §II-D guidance — "a developer can determine whether a
// given equivalence class always or rarely contains GC intervals. If
// it always contains GC intervals, then the developer may want to
// investigate the cause of the GC."
func (p *Pattern) GCCount() int {
	n := 0
	for _, ref := range p.Episodes {
		if ref.Episode.Root.HasKind(trace.KindGC) {
			n++
		}
	}
	return n
}

// GCFrac returns GCCount as a fraction of the pattern's episodes.
func (p *Pattern) GCFrac() float64 {
	if len(p.Episodes) == 0 {
		return 0
	}
	return float64(p.GCCount()) / float64(len(p.Episodes))
}

// Singleton reports whether the pattern has exactly one episode.
// Table III's "One-Ep" column is the fraction of singleton patterns.
func (p *Pattern) Singleton() bool { return len(p.Episodes) == 1 }

// First returns the pattern's first episode (the browser shows its
// sketch when the pattern is selected).
func (p *Pattern) First() EpisodeRef { return p.Episodes[0] }

// ID returns a short stable identifier derived from the hash, used in
// browser displays and file names.
func (p *Pattern) ID() string { return fmt.Sprintf("p%012x", p.Hash&0xffffffffffff) }

// Set is the result of classifying a group of sessions.
type Set struct {
	// Patterns holds the equivalence classes, ordered by descending
	// episode count, ties broken by canonical form (deterministic).
	Patterns []*Pattern
	// Unstructured lists the episodes excluded from classification
	// because their dispatch interval has no non-GC children.
	Unstructured []EpisodeRef
	// Options echoes the classification options used.
	Options Options

	byCanon map[string]*Pattern
}

// FNV-1a 64-bit parameters. Pattern.Hash is the FNV-1a hash of the
// canonical form, computed incrementally while the canon bytes are
// emitted (no per-episode hasher or string allocation).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Fingerprinter computes canonical forms without per-episode
// allocations: the canon bytes land in an internal buffer that is
// reused across calls, and the FNV-1a hash plus the structural metrics
// (descendants, depth) are computed during the same single tree walk.
// A Fingerprinter is not safe for concurrent use; each worker owns one.
type Fingerprinter struct {
	opt  Options
	buf  []byte
	hash uint64
}

// NewFingerprinter returns a Fingerprinter for the given options.
func NewFingerprinter(opt Options) *Fingerprinter {
	return &Fingerprinter{opt: opt}
}

// Print is the result of fingerprinting one episode. Canon aliases the
// Fingerprinter's internal buffer and is only valid until the next
// Fingerprint call; Builder.Add copies it when (and only when) the
// pattern is new.
type Print struct {
	Canon       []byte
	Hash        uint64
	Descendants int
	Depth       int
}

// Fingerprint computes the episode's canonical form, hash, and
// structural metrics in one walk. ok is false for unstructured
// episodes (no retained child below the dispatch interval), which are
// excluded from classification.
func (f *Fingerprinter) Fingerprint(e *trace.Episode) (pr Print, ok bool) {
	if !Classifiable(e, f.opt) {
		return Print{}, false
	}
	f.buf = f.buf[:0]
	f.hash = fnvOffset64
	descs, depth := f.walk(e.Root)
	return Print{Canon: f.buf, Hash: f.hash, Descendants: descs, Depth: depth}, true
}

func (f *Fingerprinter) emitString(s string) {
	f.buf = append(f.buf, s...)
	h := f.hash
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	f.hash = h
}

func (f *Fingerprinter) emitByte(b byte) {
	f.buf = append(f.buf, b)
	f.hash = (f.hash ^ uint64(b)) * fnvPrime64
}

// walk emits iv's canonical form and returns the retained descendant
// count and tree height (1 for a retained leaf). Depth includes the
// dispatch root: a bare dispatch would have depth 1, but bare
// dispatches are unstructured and never get here.
func (f *Fingerprinter) walk(iv *trace.Interval) (descs, depth int) {
	f.emitString(iv.Kind.String())
	if !f.opt.KindOnly && (iv.Class != "" || iv.Method != "") {
		f.emitByte('[')
		f.emitString(iv.Class)
		f.emitByte('.')
		f.emitString(iv.Method)
		f.emitByte(']')
	}
	wrote := false
	maxChild := 0
	for _, c := range iv.Children {
		if c.Kind == trace.KindGC && !f.opt.IncludeGC {
			continue
		}
		if !wrote {
			f.emitByte('(')
			wrote = true
		} else {
			f.emitByte(',')
		}
		d, dep := f.walk(c)
		descs += 1 + d
		if dep > maxChild {
			maxChild = dep
		}
	}
	if wrote {
		f.emitByte(')')
	}
	return descs, maxChild + 1
}

// Fingerprint returns the canonical structural form of an episode's
// tree under the given options. Two episodes belong to the same
// pattern iff their fingerprints are equal. Unlike Fingerprinter, it
// materializes a fresh string and does not require structure.
func Fingerprint(e *trace.Episode, opt Options) string {
	f := Fingerprinter{opt: opt, hash: fnvOffset64}
	f.walk(e.Root)
	return string(f.buf)
}

// Builder accumulates episodes with precomputed fingerprints into
// patterns. It is the shared backend of Classify and of the fused
// analysis engine (internal/engine): lookups are hash-first (canonical
// strings are compared only to confirm a hash hit, and materialized
// only once per new pattern), and builders can be merged in a
// deterministic order to combine shards of a parallel run.
type Builder struct {
	opt          Options
	patterns     []*Pattern
	byHash       map[uint64]*Pattern
	collisions   map[string]*Pattern // only populated on 64-bit hash collisions
	unstructured []EpisodeRef
}

// NewBuilder returns an empty Builder for the given options.
func NewBuilder(opt Options) *Builder {
	return &Builder{opt: opt, byHash: make(map[uint64]*Pattern)}
}

// Add folds one structured episode into the builder. pr.Canon may
// alias a reusable buffer; it is copied only when the pattern is new.
func (b *Builder) Add(ref EpisodeRef, pr Print) {
	p := b.findBytes(pr.Hash, pr.Canon)
	if p == nil {
		p = &Pattern{
			Canon:       string(pr.Canon),
			Hash:        pr.Hash,
			Descendants: pr.Descendants,
			Depth:       pr.Depth,
		}
		b.insert(p)
	}
	p.Episodes = append(p.Episodes, ref)
	p.lag.Add(ref.Episode.Dur().Ms())
}

// AddUnstructured records an episode excluded from classification.
func (b *Builder) AddUnstructured(ref EpisodeRef) {
	b.unstructured = append(b.unstructured, ref)
}

// findBytes looks a pattern up by hash, confirming the hit (and
// resolving 64-bit collisions) by canon comparison. The string(canon)
// conversions below are comparison/index expressions the compiler
// performs without allocating.
func (b *Builder) findBytes(hash uint64, canon []byte) *Pattern {
	p, ok := b.byHash[hash]
	if !ok {
		return nil
	}
	if string(canon) == p.Canon {
		return p
	}
	if b.collisions != nil {
		if p, ok := b.collisions[string(canon)]; ok {
			return p
		}
	}
	return nil
}

func (b *Builder) findString(hash uint64, canon string) *Pattern {
	p, ok := b.byHash[hash]
	if !ok {
		return nil
	}
	if canon == p.Canon {
		return p
	}
	if b.collisions != nil {
		if p, ok := b.collisions[canon]; ok {
			return p
		}
	}
	return nil
}

func (b *Builder) insert(p *Pattern) {
	if _, taken := b.byHash[p.Hash]; taken {
		if b.collisions == nil {
			b.collisions = make(map[string]*Pattern)
		}
		b.collisions[p.Canon] = p
	} else {
		b.byHash[p.Hash] = p
	}
	b.patterns = append(b.patterns, p)
}

// Merge folds another builder's patterns and unstructured episodes
// into the receiver, preserving o's encounter order. Merging shard
// builders in a fixed (chunk) order makes parallel classification
// byte-identical to sequential classification.
func (b *Builder) Merge(o *Builder) {
	for _, q := range o.patterns {
		p := b.findString(q.Hash, q.Canon)
		if p == nil {
			b.insert(q)
			continue
		}
		p.Episodes = append(p.Episodes, q.Episodes...)
		p.lag.Merge(q.lag)
	}
	b.unstructured = append(b.unstructured, o.unstructured...)
}

// Finish sorts the patterns (descending episode count, ties broken by
// canonical form) and returns the Set. The builder must not be used
// afterwards.
func (b *Builder) Finish() *Set {
	set := &Set{
		Options:      b.opt,
		Patterns:     b.patterns,
		Unstructured: b.unstructured,
		byCanon:      make(map[string]*Pattern, len(b.patterns)),
	}
	sort.SliceStable(set.Patterns, func(i, j int) bool {
		a, b := set.Patterns[i], set.Patterns[j]
		if len(a.Episodes) != len(b.Episodes) {
			return len(a.Episodes) > len(b.Episodes)
		}
		return a.Canon < b.Canon
	})
	covered := 0
	for _, p := range set.Patterns {
		set.byCanon[p.Canon] = p
		covered += len(p.Episodes)
	}
	mPatternsUnique.Add(int64(len(set.Patterns)))
	mEpisodesDeduped.Add(int64(covered - len(set.Patterns)))
	mUnstructured.Add(int64(len(set.Unstructured)))
	return set
}

// classifyChunkSize is the number of episodes per classification
// shard. It is a constant (never derived from the worker count or
// GOMAXPROCS) so that the chunk layout — and therefore the merge order
// and every floating-point lag accumulation — is identical no matter
// how many workers execute the chunks.
const classifyChunkSize = 512

// Classify groups the episodes of the given sessions into patterns.
// Episodes are fingerprinted in one tree walk each (hash computed
// inline, canonical string materialized only once per new pattern) and
// sharded across a worker pool bounded by GOMAXPROCS; shards are
// merged in a fixed order, so the result is byte-identical to a
// sequential run.
func Classify(sessions []*trace.Session, opt Options) *Set {
	n := 0
	for _, s := range sessions {
		n += len(s.Episodes)
	}
	items := make([]EpisodeRef, 0, n)
	for _, s := range sessions {
		for _, e := range s.Episodes {
			items = append(items, EpisodeRef{Session: s, Episode: e})
		}
	}

	chunks := (len(items) + classifyChunkSize - 1) / classifyChunkSize
	if chunks <= 1 {
		b := NewBuilder(opt)
		classifyChunk(items, NewFingerprinter(opt), b)
		return b.Finish()
	}

	builders := make([]*Builder, chunks)
	workers := min(runtime.GOMAXPROCS(0), chunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := NewFingerprinter(opt)
			for {
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				lo := i * classifyChunkSize
				hi := min(lo+classifyChunkSize, len(items))
				b := NewBuilder(opt)
				classifyChunk(items[lo:hi], f, b)
				builders[i] = b
			}
		}()
	}
	wg.Wait()

	root := builders[0]
	for _, b := range builders[1:] {
		root.Merge(b)
	}
	return root.Finish()
}

func classifyChunk(items []EpisodeRef, f *Fingerprinter, b *Builder) {
	for _, ref := range items {
		pr, ok := f.Fingerprint(ref.Episode)
		if !ok {
			b.AddUnstructured(ref)
			continue
		}
		b.Add(ref, pr)
	}
}

// Classifiable reports whether the episode participates in
// classification under opt: it must have at least one child that the
// fingerprint would retain. Exported so the fused analysis engine can
// apply the same exclusion rule without re-deriving it.
func Classifiable(e *trace.Episode, opt Options) bool {
	if opt.IncludeGC {
		return len(e.Root.Children) > 0
	}
	return e.Structured()
}

// Lookup returns the pattern an episode belongs to within this set, if
// the episode was classified.
func (s *Set) Lookup(e *trace.Episode) (*Pattern, bool) {
	p, ok := s.byCanon[Fingerprint(e, s.Options)]
	return p, ok
}

// Covered returns the total number of episodes covered by patterns
// (Table III's "#Eps").
func (s *Set) Covered() int {
	n := 0
	for _, p := range s.Patterns {
		n += len(p.Episodes)
	}
	return n
}

// SingletonFrac returns the fraction of patterns with exactly one
// episode (Table III's "One-Ep").
func (s *Set) SingletonFrac() float64 {
	if len(s.Patterns) == 0 {
		return 0
	}
	n := 0
	for _, p := range s.Patterns {
		if p.Singleton() {
			n++
		}
	}
	return float64(n) / float64(len(s.Patterns))
}

// OccurrenceCounts tallies patterns per occurrence class at the set's
// threshold (the per-application bars of Figure 4).
func (s *Set) OccurrenceCounts() map[Occurrence]int {
	counts := make(map[Occurrence]int, numOccurrences)
	th := s.Options.threshold()
	for _, p := range s.Patterns {
		counts[p.Occurrence(th)]++
	}
	return counts
}

// CDF returns the cumulative distribution of episodes into patterns
// (Figure 3): x is the fraction of patterns (largest first), y the
// fraction of covered episodes they hold.
func (s *Set) CDF() []stats.CDFPoint {
	weights := make([]float64, len(s.Patterns))
	for i, p := range s.Patterns {
		weights[i] = float64(len(p.Episodes))
	}
	return stats.CumulativeShare(weights)
}

// MeanDescendants and MeanDepth average the structural metrics over
// patterns (Table III's "Descs" and "Depth" columns).
func (s *Set) MeanDescendants() float64 {
	if len(s.Patterns) == 0 {
		return 0
	}
	t := 0
	for _, p := range s.Patterns {
		t += p.Descendants
	}
	return float64(t) / float64(len(s.Patterns))
}

// MeanDepth averages pattern tree depth; see MeanDescendants.
func (s *Set) MeanDepth() float64 {
	if len(s.Patterns) == 0 {
		return 0
	}
	t := 0
	for _, p := range s.Patterns {
		t += p.Depth
	}
	return float64(t) / float64(len(s.Patterns))
}

// Perceptible returns the patterns that have at least one perceptible
// episode — the browser's "elide never-perceptible patterns" filter.
func (s *Set) Perceptible() []*Pattern {
	th := s.Options.threshold()
	var out []*Pattern
	for _, p := range s.Patterns {
		if p.PerceptibleCount(th) > 0 {
			out = append(out, p)
		}
	}
	return out
}
