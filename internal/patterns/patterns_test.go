package patterns

import (
	"strings"
	"testing"

	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

func ms(v float64) trace.Time { return trace.Time(trace.Ms(v)) }

// ep builds a dispatch episode with the given start, duration, and
// children.
func ep(start trace.Time, dur trace.Dur, children ...*trace.Interval) *trace.Episode {
	root := trace.NewInterval(trace.KindDispatch, "", "", start, dur)
	for _, c := range children {
		root.AddChild(c)
	}
	return &trace.Episode{Thread: 1, Root: root}
}

// sessionWith wraps episodes into a session (indices fixed up).
func sessionWith(eps ...*trace.Episode) *trace.Session {
	s := &trace.Session{App: "t", GUIThread: 1, Start: 0, End: ms(1e6), FilterThreshold: trace.DefaultFilterThreshold}
	var end trace.Time
	for i, e := range eps {
		e.Index = i
		if e.End() > end {
			end = e.End()
		}
	}
	s.Episodes = eps
	s.End = end.Add(trace.Second)
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func TestFingerprintShapes(t *testing.T) {
	e := ep(0, trace.Ms(100),
		trace.NewInterval(trace.KindListener, "app.B", "on", 0, trace.Ms(60),
			trace.NewInterval(trace.KindPaint, "x.P", "paint", ms(10), trace.Ms(20))),
		trace.NewInterval(trace.KindPaint, "x.Q", "paint", ms(70), trace.Ms(20)))

	got := Fingerprint(e, Options{})
	want := "dispatch(listener[app.B.on](paint[x.P.paint]),paint[x.Q.paint])"
	if got != want {
		t.Errorf("Fingerprint = %q, want %q", got, want)
	}

	kindOnly := Fingerprint(e, Options{KindOnly: true})
	if kindOnly != "dispatch(listener(paint),paint)" {
		t.Errorf("kind-only fingerprint = %q", kindOnly)
	}
}

func TestFingerprintExcludesTiming(t *testing.T) {
	fast := ep(0, trace.Ms(10),
		trace.NewInterval(trace.KindListener, "a.B", "on", 0, trace.Ms(5)))
	slow := ep(ms(1000), trace.Ms(900),
		trace.NewInterval(trace.KindListener, "a.B", "on", ms(1000), trace.Ms(900)))
	if Fingerprint(fast, Options{}) != Fingerprint(slow, Options{}) {
		t.Error("episodes differing only in timing must share a fingerprint")
	}
}

func TestFingerprintExcludesGCByDefault(t *testing.T) {
	withGC := ep(0, trace.Ms(100),
		trace.NewInterval(trace.KindListener, "a.B", "on", 0, trace.Ms(50),
			trace.NewGC(ms(10), trace.Ms(20), false)))
	withoutGC := ep(ms(1000), trace.Ms(100),
		trace.NewInterval(trace.KindListener, "a.B", "on", ms(1000), trace.Ms(50)))

	if Fingerprint(withGC, Options{}) != Fingerprint(withoutGC, Options{}) {
		t.Error("GC intervals must not affect default fingerprints")
	}
	if Fingerprint(withGC, Options{IncludeGC: true}) == Fingerprint(withoutGC, Options{IncludeGC: true}) {
		t.Error("IncludeGC ablation must distinguish the trees")
	}
	if !strings.Contains(Fingerprint(withGC, Options{IncludeGC: true}), "gc") {
		t.Error("IncludeGC fingerprint should mention gc")
	}
}

func TestClassifyGroupsAndSorts(t *testing.T) {
	listener := func(start trace.Time, dur trace.Dur) *trace.Interval {
		return trace.NewInterval(trace.KindListener, "a.B", "on", start, dur)
	}
	paint := func(start trace.Time, dur trace.Dur) *trace.Interval {
		return trace.NewInterval(trace.KindPaint, "x.P", "paint", start, dur)
	}
	s := sessionWith(
		ep(ms(0), trace.Ms(10), listener(ms(0), trace.Ms(5))),
		ep(ms(100), trace.Ms(20), listener(ms(100), trace.Ms(5))),
		ep(ms(200), trace.Ms(30), listener(ms(200), trace.Ms(5))),
		ep(ms(300), trace.Ms(40), paint(ms(300), trace.Ms(5))),
		ep(ms(400), trace.Ms(50)), // unstructured
	)
	set := Classify([]*trace.Session{s}, Options{})
	if len(set.Patterns) != 2 {
		t.Fatalf("patterns = %d, want 2", len(set.Patterns))
	}
	// Largest pattern first.
	if set.Patterns[0].Count() != 3 || set.Patterns[1].Count() != 1 {
		t.Errorf("pattern sizes = %d,%d; want 3,1", set.Patterns[0].Count(), set.Patterns[1].Count())
	}
	if len(set.Unstructured) != 1 {
		t.Errorf("unstructured = %d, want 1", len(set.Unstructured))
	}
	if set.Covered() != 4 {
		t.Errorf("Covered = %d, want 4", set.Covered())
	}
	if got := set.SingletonFrac(); got != 0.5 {
		t.Errorf("SingletonFrac = %v, want 0.5", got)
	}

	p := set.Patterns[0]
	if p.MinLag() != trace.Ms(10) || p.MaxLag() != trace.Ms(30) || p.AvgLag() != trace.Ms(20) || p.TotalLag() != trace.Ms(60) {
		t.Errorf("lag stats: min=%v avg=%v max=%v total=%v", p.MinLag(), p.AvgLag(), p.MaxLag(), p.TotalLag())
	}
	if p.Descendants != 1 || p.Depth != 2 {
		t.Errorf("structure: descs=%d depth=%d, want 1,2", p.Descendants, p.Depth)
	}

	// Lookup maps an equivalent episode back to its pattern.
	probe := ep(ms(999), trace.Ms(1), listener(ms(999), trace.Ms(1)))
	found, ok := set.Lookup(probe)
	if !ok || found != p {
		t.Error("Lookup failed to find the listener pattern")
	}
}

func TestGCOnlyEpisodeIsUnstructured(t *testing.T) {
	s := sessionWith(
		ep(ms(0), trace.Ms(500), trace.NewGC(ms(10), trace.Ms(400), true)),
	)
	set := Classify([]*trace.Session{s}, Options{})
	if len(set.Patterns) != 0 || len(set.Unstructured) != 1 {
		t.Errorf("GC-only episode should be unstructured: %d patterns, %d unstructured",
			len(set.Patterns), len(set.Unstructured))
	}
	// Under the IncludeGC ablation it becomes classifiable.
	set = Classify([]*trace.Session{s}, Options{IncludeGC: true})
	if len(set.Patterns) != 1 || len(set.Unstructured) != 0 {
		t.Errorf("IncludeGC should classify the GC-only episode")
	}
}

func TestOccurrenceClassification(t *testing.T) {
	mk := func(durs ...float64) *Pattern {
		p := &Pattern{}
		var start trace.Time
		for _, d := range durs {
			e := ep(start, trace.Ms(d), trace.NewInterval(trace.KindListener, "a.B", "on", start, trace.Ms(d/2)))
			p.Episodes = append(p.Episodes, EpisodeRef{Episode: e})
			start = start.Add(trace.Ms(d) + trace.Second)
		}
		return p
	}
	th := trace.DefaultPerceptibleThreshold
	cases := []struct {
		name string
		p    *Pattern
		want Occurrence
	}{
		{"all fast", mk(10, 20, 30), OccNever},
		{"all slow", mk(200, 300), OccAlways},
		{"perceptible singleton", mk(150), OccAlways},
		{"fast singleton", mk(50), OccNever},
		{"one of many", mk(500, 10, 10), OccOnce},
		{"some", mk(500, 400, 10), OccSometimes},
		{"exactly at threshold", mk(100), OccAlways},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Occurrence(th); got != tc.want {
				t.Errorf("Occurrence = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestOccurrenceCounts(t *testing.T) {
	listener := func(start trace.Time, dur trace.Dur, cls string) *trace.Interval {
		return trace.NewInterval(trace.KindListener, cls, "on", start, dur)
	}
	// Pattern A: two slow episodes (always). Pattern B: one fast
	// (never). Pattern C: slow then fast (once).
	s := sessionWith(
		ep(ms(0), trace.Ms(200), listener(ms(0), trace.Ms(100), "a.A")),
		ep(ms(1000), trace.Ms(300), listener(ms(1000), trace.Ms(100), "a.A")),
		ep(ms(2000), trace.Ms(10), listener(ms(2000), trace.Ms(5), "b.B")),
		ep(ms(3000), trace.Ms(400), listener(ms(3000), trace.Ms(100), "c.C")),
		ep(ms(4000), trace.Ms(10), listener(ms(4000), trace.Ms(5), "c.C")),
	)
	set := Classify([]*trace.Session{s}, Options{})
	counts := set.OccurrenceCounts()
	if counts[OccAlways] != 1 || counts[OccNever] != 1 || counts[OccOnce] != 1 || counts[OccSometimes] != 0 {
		t.Errorf("counts = %v", counts)
	}
	perceptible := set.Perceptible()
	if len(perceptible) != 2 {
		t.Errorf("Perceptible = %d patterns, want 2", len(perceptible))
	}
}

func TestCDFEndpointsAndMonotonicity(t *testing.T) {
	listener := func(start trace.Time, dur trace.Dur, cls string) *trace.Interval {
		return trace.NewInterval(trace.KindListener, cls, "on", start, dur)
	}
	var eps []*trace.Episode
	var start trace.Time
	add := func(cls string, n int) {
		for i := 0; i < n; i++ {
			eps = append(eps, ep(start, trace.Ms(10), listener(start, trace.Ms(5), cls)))
			start = start.Add(trace.Second)
		}
	}
	add("a.A", 8)
	add("b.B", 1)
	add("c.C", 1)
	set := Classify([]*trace.Session{sessionWith(eps...)}, Options{})
	curve := set.CDF()
	if curve[0].X != 0 || curve[0].Y != 0 {
		t.Errorf("curve starts at %+v", curve[0])
	}
	last := curve[len(curve)-1]
	if last.X != 1 || last.Y != 1 {
		t.Errorf("curve ends at %+v", last)
	}
	// One third of the patterns (the big one) covers 80% of episodes.
	if got := curve[1].Y; got != 0.8 {
		t.Errorf("first pattern covers %v, want 0.8", got)
	}
}

func TestMeanStructureMetrics(t *testing.T) {
	deep := ep(ms(0), trace.Ms(50),
		trace.NewInterval(trace.KindPaint, "a.A", "paint", ms(0), trace.Ms(40),
			trace.NewInterval(trace.KindPaint, "b.B", "paint", ms(1), trace.Ms(30),
				trace.NewInterval(trace.KindPaint, "c.C", "paint", ms(2), trace.Ms(20)))))
	flat := ep(ms(1000), trace.Ms(50),
		trace.NewInterval(trace.KindListener, "l.L", "on", ms(1000), trace.Ms(40)))
	set := Classify([]*trace.Session{sessionWith(deep, flat)}, Options{})
	if got := set.MeanDescendants(); got != 2 { // (3+1)/2
		t.Errorf("MeanDescendants = %v, want 2", got)
	}
	if got := set.MeanDepth(); got != 3 { // (4+2)/2
		t.Errorf("MeanDepth = %v, want 3", got)
	}
}

func TestEmptySet(t *testing.T) {
	set := Classify(nil, Options{})
	if set.SingletonFrac() != 0 || set.MeanDepth() != 0 || set.MeanDescendants() != 0 || set.Covered() != 0 {
		t.Error("empty set metrics should be zero")
	}
	if len(set.CDF()) != 1 {
		t.Error("empty CDF should be the origin point")
	}
}

func TestPatternIDStable(t *testing.T) {
	e := ep(0, trace.Ms(10), trace.NewInterval(trace.KindListener, "a.B", "on", 0, trace.Ms(5)))
	s1 := Classify([]*trace.Session{sessionWith(e)}, Options{})
	e2 := ep(0, trace.Ms(10), trace.NewInterval(trace.KindListener, "a.B", "on", 0, trace.Ms(5)))
	s2 := Classify([]*trace.Session{sessionWith(e2)}, Options{})
	if s1.Patterns[0].ID() != s2.Patterns[0].ID() {
		t.Error("identical structures must have identical IDs")
	}
	if !strings.HasPrefix(s1.Patterns[0].ID(), "p") {
		t.Errorf("ID format: %q", s1.Patterns[0].ID())
	}
}

func TestOccurrenceStringAndList(t *testing.T) {
	if OccAlways.String() != "always" || OccNever.String() != "never" ||
		OccOnce.String() != "once" || OccSometimes.String() != "sometimes" {
		t.Error("occurrence names wrong")
	}
	if Occurrence(9).String() != "occurrence(9)" {
		t.Error("out-of-range occurrence name")
	}
	if len(Occurrences()) != 4 {
		t.Error("Occurrences should list 4 classes")
	}
}

func TestMultiSessionClassification(t *testing.T) {
	// The same structure in two different sessions lands in one
	// pattern — LagAlyzer "integrates multiple traces in its
	// analysis".
	mk := func() *trace.Session {
		return sessionWith(ep(0, trace.Ms(10),
			trace.NewInterval(trace.KindListener, "a.B", "on", 0, trace.Ms(5))))
	}
	a, b := mk(), mk()
	set := Classify([]*trace.Session{a, b}, Options{})
	if len(set.Patterns) != 1 || set.Patterns[0].Count() != 2 {
		t.Fatalf("cross-session grouping failed: %d patterns", len(set.Patterns))
	}
	refs := set.Patterns[0].Episodes
	if refs[0].Session != a || refs[1].Session != b {
		t.Error("episode refs lost their sessions")
	}
	if set.Patterns[0].First().Session != a {
		t.Error("First should be the earliest-encountered episode")
	}
}

// TestPerceptibleCountMonotoneInThreshold: raising the threshold never
// increases a pattern's perceptible count, and the occurrence class
// can only move "down" the severity order (always → sometimes/once →
// never), never gain perceptible members.
func TestPerceptibleCountMonotoneInThreshold(t *testing.T) {
	listener := func(start trace.Time, dur trace.Dur) *trace.Interval {
		return trace.NewInterval(trace.KindListener, "a.B", "on", start, dur)
	}
	var eps []*trace.Episode
	var start trace.Time
	for _, d := range []float64{20, 90, 110, 150, 250, 600} {
		eps = append(eps, ep(start, trace.Ms(d), listener(start, trace.Ms(d/2))))
		start = start.Add(trace.Ms(d) + trace.Second)
	}
	set := Classify([]*trace.Session{sessionWith(eps...)}, Options{})
	p := set.Patterns[0]
	prev := p.Count() + 1
	for _, thMs := range []float64{50, 100, 150, 200, 300, 1000} {
		th := trace.Ms(thMs)
		k := p.PerceptibleCount(th)
		if k > prev {
			t.Fatalf("perceptible count increased from %d to %d at %v", prev, k, th)
		}
		prev = k
		// Occurrence consistency with the count.
		switch p.Occurrence(th) {
		case OccAlways:
			if k != p.Count() {
				t.Fatalf("always with %d of %d perceptible", k, p.Count())
			}
		case OccNever:
			if k != 0 {
				t.Fatalf("never with %d perceptible", k)
			}
		case OccOnce:
			if k != 1 {
				t.Fatalf("once with %d perceptible", k)
			}
		case OccSometimes:
			if k <= 1 || k >= p.Count() {
				t.Fatalf("sometimes with %d of %d perceptible", k, p.Count())
			}
		}
	}
}

// TestFingerprintDeterminesPattern: any two episodes land in the same
// pattern iff their fingerprints match, across random structures.
func TestFingerprintDeterminesPattern(t *testing.T) {
	r := stats.NewRand(5, 6)
	classes := []string{"a.A", "b.B", "c.C"}
	var eps []*trace.Episode
	var start trace.Time
	for i := 0; i < 60; i++ {
		dur := trace.Ms(10 + float64(r.IntN(100)))
		root := trace.NewInterval(trace.KindDispatch, "", "", start, dur)
		cursor := start
		for j := 0; j < 1+r.IntN(3); j++ {
			cd := dur / trace.Dur(6)
			child := trace.NewInterval(trace.KindListener, classes[r.IntN(len(classes))], "on", cursor, cd)
			if r.IntN(2) == 0 {
				child.AddChild(trace.NewInterval(trace.KindPaint, classes[r.IntN(len(classes))], "paint", cursor, cd/2))
			}
			root.AddChild(child)
			cursor = child.End
		}
		eps = append(eps, &trace.Episode{Index: i, Thread: 1, Root: root})
		start = start.Add(dur + trace.Second)
	}
	set := Classify([]*trace.Session{sessionWith(eps...)}, Options{})

	covered := 0
	for _, p := range set.Patterns {
		covered += p.Count()
		for _, ref := range p.Episodes {
			if got := Fingerprint(ref.Episode, Options{}); got != p.Canon {
				t.Fatalf("episode fingerprint %q in pattern %q", got, p.Canon)
			}
		}
	}
	if covered != len(eps) {
		t.Fatalf("covered %d of %d episodes", covered, len(eps))
	}
	// Cross-check: distinct patterns have distinct canons.
	seen := map[string]bool{}
	for _, p := range set.Patterns {
		if seen[p.Canon] {
			t.Fatalf("duplicate pattern canon %q", p.Canon)
		}
		seen[p.Canon] = true
	}
}

func TestPatternGCCoOccurrence(t *testing.T) {
	listener := func(start trace.Time, dur trace.Dur) *trace.Interval {
		return trace.NewInterval(trace.KindListener, "a.B", "on", start, dur)
	}
	// Three structurally identical episodes; two contain a GC.
	withGC := func(start trace.Time) *trace.Episode {
		l := listener(start, trace.Ms(50))
		l.AddChild(trace.NewGC(start.Add(trace.Ms(5)), trace.Ms(20), false))
		return ep(start, trace.Ms(80), l)
	}
	s := sessionWith(
		withGC(ms(0)),
		ep(ms(1000), trace.Ms(80), listener(ms(1000), trace.Ms(50))),
		withGC(ms(2000)),
	)
	set := Classify([]*trace.Session{s}, Options{})
	if len(set.Patterns) != 1 {
		t.Fatalf("GC exclusion should merge the episodes: %d patterns", len(set.Patterns))
	}
	p := set.Patterns[0]
	if p.GCCount() != 2 {
		t.Errorf("GCCount = %d, want 2", p.GCCount())
	}
	if got := p.GCFrac(); got < 0.66 || got > 0.67 {
		t.Errorf("GCFrac = %v, want 2/3", got)
	}
	if (&Pattern{}).GCFrac() != 0 {
		t.Error("empty pattern GCFrac should be 0")
	}
}

// TestPatternHashPinned pins the FNV-1a hash (and the derived ID)
// of known canonical forms to literal values, so the inline
// incremental hashing can never silently drift from the historical
// fnv.New64a-based IDs users may have bookmarked.
func TestPatternHashPinned(t *testing.T) {
	cases := []struct {
		eps   []*trace.Episode
		opt   Options
		canon string
		hash  uint64
		id    string
	}{
		{
			eps: []*trace.Episode{ep(0, trace.Ms(100),
				trace.NewInterval(trace.KindListener, "app.B", "on", 0, trace.Ms(60),
					trace.NewInterval(trace.KindPaint, "x.P", "paint", ms(10), trace.Ms(20))),
				trace.NewInterval(trace.KindPaint, "x.Q", "paint", ms(70), trace.Ms(20)))},
			canon: "dispatch(listener[app.B.on](paint[x.P.paint]),paint[x.Q.paint])",
			hash:  9778156887012911536,
			id:    "pfde1c071a9b0",
		},
		{
			eps: []*trace.Episode{ep(0, trace.Ms(100),
				trace.NewInterval(trace.KindListener, "a.B", "on", 0, trace.Ms(50)))},
			canon: "dispatch(listener[a.B.on])",
			hash:  14046487528503647246,
			id:    "p25fc566a1c0e",
		},
		{
			eps: []*trace.Episode{ep(0, trace.Ms(100),
				trace.NewInterval(trace.KindListener, "app.B", "on", 0, trace.Ms(60),
					trace.NewInterval(trace.KindPaint, "x.P", "paint", ms(10), trace.Ms(20))),
				trace.NewInterval(trace.KindPaint, "x.Q", "paint", ms(70), trace.Ms(20)))},
			opt:   Options{KindOnly: true},
			canon: "dispatch(listener(paint),paint)",
			hash:  187986442237767471,
			id:    "pdcac582bef2f",
		},
	}
	for _, tc := range cases {
		set := Classify([]*trace.Session{sessionWith(tc.eps...)}, tc.opt)
		if len(set.Patterns) != 1 {
			t.Fatalf("want 1 pattern, got %d", len(set.Patterns))
		}
		p := set.Patterns[0]
		if p.Canon != tc.canon {
			t.Errorf("Canon = %q, want %q", p.Canon, tc.canon)
		}
		if p.Hash != tc.hash {
			t.Errorf("Hash(%q) = %d, want %d", tc.canon, p.Hash, tc.hash)
		}
		if p.ID() != tc.id {
			t.Errorf("ID(%q) = %q, want %q", tc.canon, p.ID(), tc.id)
		}
	}
}

// TestClassifyChunkedMatchesReference drives Classify over enough
// episodes to span several chunks (so the sharded build-and-merge
// path runs) and checks the result against an independent grouping by
// Fingerprint: same patterns, same deterministic ordering, episodes
// in global encounter order.
func TestClassifyChunkedMatchesReference(t *testing.T) {
	shapes := []func(start trace.Time) *trace.Episode{
		func(start trace.Time) *trace.Episode {
			return ep(start, trace.Ms(50),
				trace.NewInterval(trace.KindListener, "a.B", "on", start, trace.Ms(30)))
		},
		func(start trace.Time) *trace.Episode {
			return ep(start, trace.Ms(120),
				trace.NewInterval(trace.KindPaint, "x.P", "paint", start, trace.Ms(90)))
		},
		func(start trace.Time) *trace.Episode {
			return ep(start, trace.Ms(80),
				trace.NewInterval(trace.KindListener, "a.B", "on", start, trace.Ms(40),
					trace.NewInterval(trace.KindPaint, "x.P", "paint", start.Add(trace.Ms(5)), trace.Ms(20))))
		},
		func(start trace.Time) *trace.Episode { // unstructured
			return ep(start, trace.Ms(10))
		},
	}
	const n = 3*classifyChunkSize + 100
	eps := make([]*trace.Episode, 0, n)
	start := trace.Time(0)
	for i := 0; i < n; i++ {
		e := shapes[(i*7)%len(shapes)](start)
		eps = append(eps, e)
		start = e.End().Add(trace.Second)
	}
	s := sessionWith(eps...)
	set := Classify([]*trace.Session{s}, Options{})

	// Independent reference grouping.
	type group struct {
		canon string
		eps   []*trace.Episode
	}
	byCanon := map[string]*group{}
	var order []*group
	unstructured := 0
	for _, e := range eps {
		if !Classifiable(e, Options{}) {
			unstructured++
			continue
		}
		c := Fingerprint(e, Options{})
		g, ok := byCanon[c]
		if !ok {
			g = &group{canon: c}
			byCanon[c] = g
			order = append(order, g)
		}
		g.eps = append(g.eps, e)
	}

	if len(set.Patterns) != len(order) {
		t.Fatalf("patterns = %d, want %d", len(set.Patterns), len(order))
	}
	if len(set.Unstructured) != unstructured {
		t.Fatalf("unstructured = %d, want %d", len(set.Unstructured), unstructured)
	}
	for i, p := range set.Patterns {
		g := byCanon[p.Canon]
		if g == nil {
			t.Fatalf("pattern %q not in reference", p.Canon)
		}
		if len(p.Episodes) != len(g.eps) {
			t.Fatalf("pattern %q count = %d, want %d", p.Canon, len(p.Episodes), len(g.eps))
		}
		for j, ref := range p.Episodes {
			if ref.Episode != g.eps[j] {
				t.Fatalf("pattern %q episode %d out of encounter order", p.Canon, j)
			}
		}
		if i > 0 {
			prev := set.Patterns[i-1]
			if len(p.Episodes) > len(prev.Episodes) ||
				(len(p.Episodes) == len(prev.Episodes) && p.Canon < prev.Canon) {
				t.Fatalf("patterns not sorted at %d: %q after %q", i, p.Canon, prev.Canon)
			}
		}
	}
}
