package ingest

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzIngestStream throws arbitrary bytes at the full HTTP ingest
// path. The contract under fuzz: the handler never panics, always
// answers, and leaves the server clean — no leaked session registry
// entries, no stuck memory charges. The tight budgets below push many
// inputs through the degrade/evict paths as well as the salvage
// decoders.
//
// Note for interactive runs: the seed bodies are ~100 KiB encoded
// sessions, so every coverage-expanding input costs the engine its
// full minimization budget and the execs/sec readout sits at 0 while
// it shrinks. Pass -fuzzminimizetime=2s (as make chaos does) to keep
// throughput visible.
func FuzzIngestStream(f *testing.F) {
	srv, err := New(Config{
		WindowDur:     DefaultWindowDur,
		SessionBudget: 64 << 10,
		MemoryBudget:  1 << 20,
		IdleTimeout:   time.Minute,
	})
	if err != nil {
		f.Fatal(err)
	}
	mux := mountIngest(srv)

	valid := encodeSession(f, "Jmol", 7, 5)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	damaged := append([]byte(nil), valid...)
	for i := 17; i < len(damaged); i += 97 {
		damaged[i] ^= 0x45
	}
	f.Add(damaged)
	f.Add([]byte("#"))
	f.Add([]byte("LILA\x05\x00\xff\xfe garbage"))
	f.Add(bytes.Repeat([]byte("x"), 4096))

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/ingest/fuzz/s", bytes.NewReader(data))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code == 0 {
			t.Fatal("no response written")
		}
		if n := srv.Sessions(); n != 0 {
			t.Fatalf("leaked %d live sessions", n)
		}
		if m := srv.MemInUse(); m != 0 {
			t.Fatalf("leaked %d bytes of memory charge", m)
		}
	})
}
