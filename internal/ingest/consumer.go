package ingest

import (
	"errors"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/engine"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/stream"
	"lagalyzer/internal/trace"
)

// ConsumerConfig tunes one session's incremental consumer.
type ConsumerConfig struct {
	// WindowDur is the aggregation window in session-relative trace
	// time; 0 means DefaultWindowDur.
	WindowDur trace.Dur
	// Threshold is the perceptibility threshold; 0 means the paper's
	// 100 ms.
	Threshold trace.Dur
	// MaxEpisodeNodes bounds one episode's retained interval tree;
	// an episode exceeding it degrades to stats-only. 0 means 1<<16.
	MaxEpisodeNodes int
	// StatsOnly disables tree building (and with it pattern tallies)
	// from the start.
	StatsOnly bool
}

// DefaultWindowDur is the aggregation window when none is configured:
// short enough that a live session becomes queryable within seconds
// of trace time, long enough that window state stays small.
const DefaultWindowDur = 10 * trace.Second

// flushEntry is one finalized (app, window) contribution, ready to
// journal and fold into the server tables.
type flushEntry struct {
	Window int64
	Agg    *Aggregate
}

// Consumer feeds one session's record stream through the streaming
// analyzer and an incremental episode-tree builder, folding each
// finished episode into per-window aggregates. A window is emitted as
// soon as it can no longer change: every later record is past it and
// no open episode started inside it. Not safe for concurrent use —
// one consumer lives on one session's receive goroutine.
type Consumer struct {
	an        *stream.Analyzer
	app       string
	windowDur trace.Dur
	threshold trace.Dur
	fp        *patterns.Fingerprinter

	local        map[int64]*Aggregate
	flushedBelow int64 // windows < this have been emitted
	patternBytes int64 // retained canon bytes, for memory estimates
	treeless     int
	degraded     bool

	// Lenient-skip guards, mirroring treebuild's: the batch reference
	// drops out-of-order and after-end records, so the streaming side
	// must reject the same ones for golden equivalence to hold.
	last  trace.Time
	ended bool
}

// NewConsumer builds a consumer for one session stream. app is the
// aggregation key (normally the stream header's App).
func NewConsumer(app string, h lila.Header, cfg ConsumerConfig) *Consumer {
	if cfg.WindowDur <= 0 {
		cfg.WindowDur = DefaultWindowDur
	}
	threshold := cfg.Threshold
	if threshold == 0 {
		threshold = trace.DefaultPerceptibleThreshold
	}
	c := &Consumer{
		an:        stream.NewAnalyzer(h, threshold),
		app:       app,
		windowDur: cfg.WindowDur,
		threshold: threshold,
		fp:        patterns.NewFingerprinter(patterns.Options{Threshold: threshold}),
		local:     make(map[int64]*Aggregate),
	}
	if cfg.StatsOnly {
		c.degraded = true
	} else {
		c.an.BuildTrees(cfg.MaxEpisodeNodes)
	}
	c.an.Observe(c.onEpisode)
	return c
}

func (c *Consumer) onEpisode(er *stream.EpisodeResult) {
	ec := epContribution{
		dur:      er.Dur(),
		trigger:  er.Trigger,
		gc:       er.KindTime[trace.KindGC],
		native:   er.KindTime[trace.KindNative],
		causes:   er.Causes,
		samples:  er.Samples,
		app:      er.AppSamples,
		lib:      er.LibSamples,
		runnable: er.Runnable,
		ticks:    er.Ticks,
		treeless: er.Root == nil,
	}
	if er.Root != nil {
		ep := trace.Episode{Thread: er.Thread, Root: er.Root}
		pr, ok := c.fp.Fingerprint(&ep)
		ec.structured = ok
		ec.canon, ec.hash = pr.Canon, pr.Hash
		ec.treeless = false
	} else {
		c.treeless++
	}
	w := int64(er.Start) / int64(c.windowDur)
	agg := c.local[w]
	if agg == nil {
		agg = &Aggregate{}
		c.local[w] = agg
	}
	before := agg.Patterns[string(ec.canon)] == nil
	agg.addEpisode(&ec, c.threshold)
	if ec.structured && before {
		c.patternBytes += int64(len(ec.canon)) + 96
	}
}

// Add consumes one record leniently-ready: a non-nil error means the
// record was rejected (out of time order, after the end record, or
// inconsistent — return without call, unbalanced GC); the caller
// counts it as skipped. The rejection rules mirror treebuild's
// lenient builder so that a salvaged stream produces the same record
// sequence on both the streamed and the batch side.
func (c *Consumer) Add(rec *lila.Record) error {
	if c.ended {
		return errAfterEnd
	}
	if rec.Type != lila.RecThread {
		if rec.Time < c.last {
			return errOutOfOrder
		}
		c.last = rec.Time
	}
	if err := c.an.Add(rec); err != nil {
		return err
	}
	if rec.Type == lila.RecEnd {
		c.ended = true
	}
	return nil
}

var (
	errOutOfOrder = errors.New("ingest: record out of time order")
	errAfterEnd   = errors.New("ingest: record after end record")
)

// Degrade enters stats-only mode: open and future episode trees are
// dropped, aggregate statistics keep flowing.
func (c *Consumer) Degrade() {
	if !c.degraded {
		c.degraded = true
		c.an.DropTrees()
	}
}

// Degraded reports whether stats-only mode is active.
func (c *Consumer) Degraded() bool { return c.degraded }

// EstimateBytes approximates the consumer's retained memory: open
// episode trees, window aggregates, and pattern canon strings.
func (c *Consumer) EstimateBytes() int64 {
	const (
		base      = 16 << 10
		perNode   = 160
		perWindow = 1 << 10
	)
	return base +
		int64(c.an.TreeNodes())*perNode +
		int64(len(c.local))*perWindow +
		c.patternBytes
}

// CompletedWindows drains every window that can no longer change:
// strictly before the current record time's window and before the
// window of the earliest still-open episode. Returned aggregates are
// owned by the caller.
func (c *Consumer) CompletedWindows() []flushEntry {
	if len(c.local) == 0 {
		return nil
	}
	flushable := int64(c.an.Now()) / int64(c.windowDur)
	if minStart, open := c.an.MinOpenStart(); open {
		if w := int64(minStart) / int64(c.windowDur); w < flushable {
			flushable = w
		}
	}
	if flushable <= c.flushedBelow {
		return nil
	}
	var out []flushEntry
	for w, agg := range c.local {
		if w < flushable {
			out = append(out, flushEntry{Window: w, Agg: agg})
			delete(c.local, w)
		}
	}
	c.flushedBelow = flushable
	return out
}

// Finish closes the stream: the pending tick is flushed, every
// remaining window is drained (open episodes never finished, so they
// contribute nothing — salvage-what-arrived), and the session's app
// tally is computed from the analyzer's final statistics.
func (c *Consumer) Finish() (entries []flushEntry, app AppTally, st *stream.Stats) {
	st = c.an.Stats()
	if !c.ended {
		// Truncated stream — no end record arrived. Close the session
		// at the last seen time stamp, exactly as treebuild's lenient
		// builder synthesizes the end for the batch pipeline.
		if now := c.an.Now(); trace.Dur(now) > st.E2E {
			st.E2E = trace.Dur(now)
		}
	}
	for w, agg := range c.local {
		entries = append(entries, flushEntry{Window: w, Agg: agg})
		delete(c.local, w)
	}
	app = AppTally{Sessions: 1, Short: st.ShortCount, E2E: st.E2E}
	return entries, app, st
}

// App returns the aggregation key.
func (c *Consumer) App() string { return c.app }

// Treeless returns the episodes that lost their tree to degradation.
func (c *Consumer) Treeless() int { return c.treeless }

// FoldSessions is the batch reference: it folds fully-materialized
// sessions (from LoadTraceDir + treebuild) into the same Tables shape
// the streaming consumer produces, using the engine's fused
// per-episode walk and the batch EpisodeTicks scan. The golden
// equivalence test pins streamed == FoldSessions over identical
// (salvaged) records; both sides share Aggregate.addEpisode, so any
// divergence is in per-episode math, not folding.
func FoldSessions(t *Tables, app string, sessions []*trace.Session, windowDur, threshold trace.Dur) {
	if windowDur <= 0 {
		windowDur = DefaultWindowDur
	}
	if threshold == 0 {
		threshold = trace.DefaultPerceptibleThreshold
	}
	ea := engine.NewEpisodeAnalyzer(engine.Options{
		Patterns: patterns.Options{Threshold: threshold},
	})
	isLibrary := analysis.DefaultLibraryClassifier
	for _, s := range sessions {
		for _, e := range s.Episodes {
			info := ea.Analyze(e)
			ec := epContribution{
				dur:        e.Dur(),
				trigger:    info.Trigger,
				gc:         info.GC,
				native:     info.Native,
				structured: info.Structured,
				canon:      info.Print.Canon,
				hash:       info.Print.Hash,
			}
			ticks := s.EpisodeTicks(e)
			for ti := range ticks {
				tick := &ticks[ti]
				run, idx := tick.ScanThread(e.Thread)
				ec.runnable += run
				ec.ticks++
				if idx < 0 {
					continue
				}
				ts := &tick.Threads[idx]
				ec.causes[ts.State]++
				ec.samples++
				if len(ts.Stack) > 0 && !ts.Stack[0].Native {
					if isLibrary(ts.Stack[0]) {
						ec.lib++
					} else {
						ec.app++
					}
				}
			}
			w := int64(e.Start()) / int64(windowDur)
			t.window(WindowKey{App: app, Window: w}).addEpisode(&ec, threshold)
		}
		t.app(app).merge(&AppTally{Sessions: 1, Short: s.ShortCount, E2E: s.E2E()})
	}
}
