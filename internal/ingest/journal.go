package ingest

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"lagalyzer/internal/obs"
)

// The journal makes window aggregates crash-safe: every completed
// window (and every finished session's app tally) is appended to a
// write-ahead log before it is folded into the server's in-memory
// tables, so the tables are at all times exactly "snapshot + current
// journal segment". A lagd killed mid-ingest replays that sum on
// restart and resumes without double-counting — an entry is appended
// once and folded once, and anything a crashed session had not yet
// flushed died with its in-memory state on both sides.
//
// On-disk layout (JournalDir):
//
//	manifest.json          {"snapshot","sha256","gen"} — written
//	                       atomically (payload before manifest, the
//	                       checkpoint discipline)
//	snap-<sha>.gob         gob(Tables) at the last graceful shutdown
//	journal-<gen>.wal      framed entries appended since the snapshot
//
// Each frame is [u32 length][u32 crc32(payload)][gob payload]. A torn
// tail (partial frame or checksum mismatch, the normal result of
// SIGKILL mid-write) is truncated on open; everything before it is
// intact because appends are fsynced.

// journalEntry is one WAL record: a completed window's aggregate or a
// finished session's app tally (exactly one of Agg/App is set).
type journalEntry struct {
	Key     WindowKey
	Agg     *Aggregate
	AppName string
	App     *AppTally
}

type manifest struct {
	Snapshot string `json:"snapshot"`
	SHA256   string `json:"sha256"`
	Gen      uint64 `json:"gen"`
}

// Journal is the append side of the WAL. Safe for concurrent use.
type Journal struct {
	dir string

	mu  sync.Mutex
	f   *os.File
	gen uint64
	buf bytes.Buffer
}

const (
	manifestName  = "manifest.json"
	frameHeader   = 8
	maxFrameBytes = 64 << 20 // sanity bound on replay
)

func journalName(gen uint64) string { return fmt.Sprintf("journal-%d.wal", gen) }

// OpenJournal recovers the durable state under dir (creating it if
// needed) and returns the journal ready for appends plus the
// recovered tables: the last snapshot with the current WAL segment
// replayed on top. A torn WAL tail is truncated; a corrupt or missing
// snapshot is an error (the manifest names it, so losing it is real
// data loss, not a fresh start).
func OpenJournal(dir string) (*Journal, *Tables, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	tables := NewTables()
	var gen uint64

	mf, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		var m manifest
		if err := json.Unmarshal(mf, &m); err != nil {
			return nil, nil, fmt.Errorf("ingest journal: bad manifest: %w", err)
		}
		gen = m.Gen
		if m.Snapshot != "" {
			data, err := os.ReadFile(filepath.Join(dir, m.Snapshot))
			if err != nil {
				return nil, nil, fmt.Errorf("ingest journal: snapshot: %w", err)
			}
			if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != m.SHA256 {
				return nil, nil, fmt.Errorf("ingest journal: snapshot %s checksum mismatch", m.Snapshot)
			}
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(tables); err != nil {
				return nil, nil, fmt.Errorf("ingest journal: snapshot decode: %w", err)
			}
		}
	case os.IsNotExist(err):
		// Fresh directory: gen 0, empty tables.
	default:
		return nil, nil, err
	}

	walPath := filepath.Join(dir, journalName(gen))
	if err := replayWAL(walPath, tables); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{dir: dir, f: f, gen: gen}, tables, nil
}

// replayWAL folds every intact frame of path into tables and
// truncates the file at the first torn or corrupt frame. A missing
// file is fine (zero entries).
func replayWAL(path string, tables *Tables) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()

	var good int64
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			break // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxFrameBytes {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt frame; everything after is suspect
		}
		var e journalEntry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			break
		}
		foldEntry(tables, &e)
		good += frameHeader + int64(n)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() != good {
		if err := f.Truncate(good); err != nil {
			return fmt.Errorf("ingest journal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func foldEntry(t *Tables, e *journalEntry) {
	if e.Agg != nil {
		t.window(e.Key).Merge(e.Agg)
	}
	if e.App != nil {
		t.app(e.AppName).merge(e.App)
	}
}

// Append durably writes one entry (framed, checksummed, fsynced).
// Callers fold the entry into the in-memory tables only after Append
// returns nil — the order that makes replay exact.
func (j *Journal) Append(e *journalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("ingest journal: closed")
	}
	j.buf.Reset()
	j.buf.Write(make([]byte, frameHeader))
	if err := gob.NewEncoder(&j.buf).Encode(e); err != nil {
		return err
	}
	frame := j.buf.Bytes()
	payload := frame[frameHeader:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	return j.f.Sync()
}

// Rotate snapshots tables and starts a fresh WAL generation: payload
// first (snap-<sha>.gob, atomic), then the manifest pointing at it,
// then the old segment is deleted. Called at graceful shutdown once
// every session has flushed; a crash anywhere in the sequence leaves
// either the old (snapshot, WAL) pair or the new one fully intact.
func (j *Journal) Rotate(tables *Tables) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tables); err != nil {
		return err
	}
	sum := sha256.Sum256(buf.Bytes())
	sha := hex.EncodeToString(sum[:])
	snapName := "snap-" + sha[:16] + ".gob"
	if err := obs.WriteFileAtomic(filepath.Join(j.dir, snapName), buf.Bytes(), 0o644); err != nil {
		return err
	}
	oldGen := j.gen
	m := manifest{Snapshot: snapName, SHA256: sha, Gen: oldGen + 1}
	mb, err := json.Marshal(&m)
	if err != nil {
		return err
	}
	if err := obs.WriteFileAtomic(filepath.Join(j.dir, manifestName), mb, 0o644); err != nil {
		return err
	}
	// The manifest now points at gen+1; switch appends over.
	if j.f != nil {
		j.f.Close()
	}
	j.gen = oldGen + 1
	f, err := os.OpenFile(filepath.Join(j.dir, journalName(j.gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.f = nil
		return err
	}
	j.f = f
	// Best-effort cleanup of superseded files.
	os.Remove(filepath.Join(j.dir, journalName(oldGen)))
	if old, err := filepath.Glob(filepath.Join(j.dir, "snap-*.gob")); err == nil {
		for _, p := range old {
			if filepath.Base(p) != snapName {
				os.Remove(p)
			}
		}
	}
	return nil
}

// Close releases the WAL file handle. Append after Close errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
