package ingest

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"time"

	"lagalyzer/internal/lila"
	"lagalyzer/internal/report"
	"lagalyzer/internal/trace"
)

// Config tunes the ingest server. Zero fields take the documented
// defaults, so Config{} is a working hostile-input configuration.
type Config struct {
	// WindowDur is the aggregation window (default DefaultWindowDur).
	WindowDur trace.Dur
	// Threshold is the perceptibility threshold (default 100 ms).
	Threshold trace.Dur
	// Limits are the per-record decode guards applied to every stream;
	// zero fields take lila defaults.
	Limits lila.Limits
	// MemoryBudget bounds the summed memory estimates of all live
	// sessions (default 256 MiB). Admission beyond it sheds with 429;
	// a live session pushing past it degrades, then is evicted.
	MemoryBudget int64
	// SessionBudget bounds one session's estimate (default 32 MiB).
	// Crossing it degrades the session to stats-only; still crossing
	// it evicts.
	SessionBudget int64
	// MaxSessions caps concurrent sessions (default 1024).
	MaxSessions int
	// MaxEpisodeNodes bounds one episode's retained interval tree
	// (default 1<<16 nodes); beyond it the episode loses its tree.
	MaxEpisodeNodes int
	// IdleTimeout evicts sessions that have delivered no bytes for
	// this long (default 60s).
	IdleTimeout time.Duration
	// ReadTimeout is the per-chunk read deadline: every arriving byte
	// extends it, a stalled client trips it (default 30s).
	ReadTimeout time.Duration
	// JournalDir, when non-empty, makes completed-window aggregates
	// crash-safe: they are WAL-appended before folding, and a new
	// server over the same dir resumes without double-counting.
	JournalDir string
	// Logger receives session lifecycle logs; nil disables.
	Logger *slog.Logger
}

func (c Config) windowDur() trace.Dur {
	if c.WindowDur > 0 {
		return c.WindowDur
	}
	return DefaultWindowDur
}

func (c Config) threshold() trace.Dur {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return trace.DefaultPerceptibleThreshold
}

func (c Config) memoryBudget() int64 {
	if c.MemoryBudget > 0 {
		return c.MemoryBudget
	}
	return 256 << 20
}

func (c Config) sessionBudget() int64 {
	if c.SessionBudget > 0 {
		return c.SessionBudget
	}
	return 32 << 20
}

func (c Config) maxSessions() int {
	if c.MaxSessions > 0 {
		return c.MaxSessions
	}
	return 1024
}

func (c Config) idleTimeout() time.Duration {
	if c.IdleTimeout > 0 {
		return c.IdleTimeout
	}
	return 60 * time.Second
}

func (c Config) readTimeout() time.Duration {
	if c.ReadTimeout > 0 {
		return c.ReadTimeout
	}
	return 30 * time.Second
}

// Admission and eviction errors.
var (
	// ErrShed: the session cap or memory budget is exhausted; the
	// client should back off (429 + Retry-After).
	ErrShed = errors.New("ingest: load shed, retry later")
	// ErrDraining: the server is going away (503).
	ErrDraining = errors.New("ingest: draining, not accepting sessions")
	// ErrDuplicate: a live session already holds this key (409).
	ErrDuplicate = errors.New("ingest: duplicate live session")
)

// Eviction reasons.
const (
	evictIdle     = "idle"
	evictBudget   = "budget"
	evictDeadline = "deadline"
	evictDrain    = "drain"
)

// session is one live stream's registry entry. The receive goroutine
// owns the consumer; everything here is the cross-goroutine view.
type session struct {
	key     string // app/session URL identity
	started time.Time

	mu       sync.Mutex
	app      string // aggregation key once the header arrived
	records  int64
	bytes    int64
	est      int64 // last memory estimate charged to the server
	degraded bool
	evict    string // eviction reason, set once
	lastByte time.Time
	// poke forces the connection's read deadline into the past so a
	// blocked read unblocks promptly on evict/drain; best-effort (nil
	// or erroring on transports without deadlines, e.g. httptest).
	poke func(time.Time) error
}

func (ss *session) markEvict(reason string) {
	ss.mu.Lock()
	if ss.evict == "" {
		ss.evict = reason
	}
	poke := ss.poke
	ss.mu.Unlock()
	if poke != nil {
		poke(time.Now().Add(-time.Second))
	}
}

func (ss *session) evictReason() string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.evict
}

func (ss *session) touch(n int) {
	ss.mu.Lock()
	ss.bytes += int64(n)
	ss.lastByte = time.Now()
	ss.mu.Unlock()
}

// Server is the live ingestion service: a registry of concurrent
// sessions, the committed aggregate tables, and the WAL that makes
// them crash-safe.
type Server struct {
	cfg     Config
	logger  *slog.Logger
	journal *Journal // nil without JournalDir

	mu       sync.Mutex
	tables   *Tables // committed: exactly snapshot + WAL when journaling
	sessions map[string]*session
	memInUse int64
	draining bool
	closed   bool
	// health keeps the most recent finished-session outcomes, folded
	// into a report.StudyHealth view on demand. Bounded ring.
	health     []report.FileHealth
	healthDrop int
	shed       int64

	stopReaper chan struct{}
	reaperDone chan struct{}
}

const healthRingCap = 64

// New builds the server, recovering journaled state when
// cfg.JournalDir is set, and starts the idle reaper.
func New(cfg Config) (*Server, error) {
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	s := &Server{
		cfg:        cfg,
		logger:     cfg.Logger,
		tables:     NewTables(),
		sessions:   make(map[string]*session),
		stopReaper: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	if cfg.JournalDir != "" {
		j, recovered, err := OpenJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.journal = j
		s.tables = recovered
	}
	go s.reaper()
	return s, nil
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// reaper periodically evicts sessions that have gone idle — the
// defense against clients that park a connection without ever
// stalling long enough inside a single read to trip the deadline on
// transports where deadlines are unsupported.
func (s *Server) reaper() {
	defer close(s.reaperDone)
	interval := s.cfg.idleTimeout() / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval > 15*time.Second {
		interval = 15 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopReaper:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-s.cfg.idleTimeout())
		s.mu.Lock()
		var idle []*session
		for _, ss := range s.sessions {
			ss.mu.Lock()
			stale := ss.lastByte.Before(cutoff)
			ss.mu.Unlock()
			if stale {
				idle = append(idle, ss)
			}
		}
		s.mu.Unlock()
		for _, ss := range idle {
			ss.markEvict(evictIdle)
		}
	}
}

// admit registers a new session or refuses it. The key is the URL
// identity app/session; a finished session frees its key for reuse.
func (s *Server) admit(key, app string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return nil, ErrDraining
	}
	if len(s.sessions) >= s.cfg.maxSessions() || s.memInUse >= s.cfg.memoryBudget() {
		s.shed++
		mShed.Inc()
		return nil, ErrShed
	}
	if _, ok := s.sessions[key]; ok {
		return nil, ErrDuplicate
	}
	now := time.Now()
	ss := &session{key: key, app: app, started: now, lastByte: now}
	s.sessions[key] = ss
	mSessionsTotal.Inc()
	mSessionsActive.Set(int64(len(s.sessions)))
	return ss, nil
}

// release unregisters a session and returns its memory charge.
func (s *Server) release(ss *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sessions[ss.key] == ss {
		delete(s.sessions, ss.key)
	}
	ss.mu.Lock()
	s.memInUse -= ss.est
	ss.est = 0
	ss.mu.Unlock()
	mSessionsActive.Set(int64(len(s.sessions)))
}

// charge updates the session's memory estimate against the global
// pool and reports whether the session and global budgets still hold.
func (s *Server) charge(ss *session, est int64) (sessionOver, globalOver bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss.mu.Lock()
	s.memInUse += est - ss.est
	ss.est = est
	ss.mu.Unlock()
	return est > s.cfg.sessionBudget(), s.memInUse > s.cfg.memoryBudget()
}

// commit durably records one session's flushed entries and folds them
// into the committed tables: WAL append first (fsynced), fold second,
// so the tables are always reproducible as snapshot + WAL on restart.
func (s *Server) commit(app string, entries []flushEntry, at *AppTally) error {
	for _, fe := range entries {
		e := journalEntry{Key: WindowKey{App: app, Window: fe.Window}, Agg: fe.Agg}
		if s.journal != nil {
			if err := s.journal.Append(&e); err != nil {
				return err
			}
		}
		s.mu.Lock()
		foldEntry(s.tables, &e)
		s.mu.Unlock()
		mWindows.Inc()
	}
	if at != nil {
		e := journalEntry{AppName: app, App: at}
		if s.journal != nil {
			if err := s.journal.Append(&e); err != nil {
				return err
			}
		}
		s.mu.Lock()
		foldEntry(s.tables, &e)
		s.mu.Unlock()
	}
	return nil
}

// recordHealth appends one finished session's outcome to the bounded
// health ring.
func (s *Server) recordHealth(fh report.FileHealth) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.health) >= healthRingCap {
		drop := len(s.health) - healthRingCap + 1
		s.health = append(s.health[:0], s.health[drop:]...)
		s.healthDrop += drop
	}
	s.health = append(s.health, fh)
}

// Health folds the retained session outcomes into a StudyHealth view.
func (s *Server) Health() *report.StudyHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := &report.StudyHealth{}
	for _, fh := range s.health {
		h.Files = append(h.Files, fh)
	}
	return h
}

// Tables returns a deep copy of the committed aggregate state.
func (s *Server) Tables() *Tables {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tables.Clone()
}

// Sessions returns the number of live sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// MemInUse returns the summed memory estimates of live sessions.
func (s *Server) MemInUse() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memInUse
}

// Draining reports whether drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Ready reports whether the server would admit a session right now;
// when it would not, reasons says why (readyz's 503 body).
func (s *Server) Ready() (ok bool, reasons []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		reasons = append(reasons, "draining")
	}
	if len(s.sessions) >= s.cfg.maxSessions() {
		reasons = append(reasons, "session-cap")
	}
	if s.memInUse >= s.cfg.memoryBudget() {
		reasons = append(reasons, "ingest-memory-budget")
	}
	return len(reasons) == 0, reasons
}

// BeginDrain stops admitting sessions and asks every live session to
// flush what it has and close (eviction reason "drain"; the HTTP
// response carries the partial summary with drained=true). Safe to
// call more than once.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	live := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		live = append(live, ss)
	}
	s.mu.Unlock()
	for _, ss := range live {
		ss.markEvict(evictDrain)
	}
	s.logger.Info("ingest drain", "sessions", len(live))
}

// Shutdown drains, waits for live sessions to finish flushing (until
// ctx expires), rotates the journal into a fresh snapshot, and stops
// the reaper. The returned count is sessions still live at timeout.
func (s *Server) Shutdown(ctx context.Context) (int, error) {
	s.BeginDrain()
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
wait:
	for {
		if s.Sessions() == 0 {
			break
		}
		select {
		case <-ctx.Done():
			break wait
		case <-t.C:
		}
	}
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	left := len(s.sessions)
	tables := s.tables.Clone()
	s.mu.Unlock()
	if !alreadyClosed {
		close(s.stopReaper)
	}
	<-s.reaperDone
	var err error
	if s.journal != nil && !alreadyClosed {
		if rerr := s.journal.Rotate(tables); rerr != nil {
			err = rerr
		}
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return left, err
}
