package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
)

// TestShedSessionCap: with a one-session cap, a second concurrent
// stream must shed with 429 + Retry-After while the first is live,
// and be admitted once the first finishes.
func TestShedSessionCap(t *testing.T) {
	srv, hs := newIngestFixture(t, Config{MaxSessions: 1, IdleTimeout: time.Minute})

	// Hold a session open with a body that never ends until we say so.
	pr, pw := io.Pipe()
	done := make(chan *http.Response, 1)
	go func() {
		resp, err := hs.Client().Post(hs.URL+"/ingest/Jmol/held", "application/octet-stream", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- resp
	}()
	pw.Write(encodeSession(t, "Jmol", 1, 5)[:64]) // header arrives, stream stays open
	waitFor(t, func() bool { return srv.Sessions() == 1 })

	d := delivery{app: "Jmol", session: "second", body: encodeSession(t, "Jmol", 2, 5)}
	resp, _, err := postDelivery(t, hs.Client(), hs.URL, d)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second session got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if ok, reasons := srv.Ready(); ok || len(reasons) == 0 || reasons[0] != "session-cap" {
		t.Errorf("Ready() = %v %v, want session-cap refusal", ok, reasons)
	}

	pw.Close() // client finishes; salvage-what-arrived
	<-done
	waitFor(t, func() bool { return srv.Sessions() == 0 })

	if resp, _, err := postDelivery(t, hs.Client(), hs.URL, d); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post after release: %v (%v)", err, resp)
	}
}

// TestDuplicateSessionConflict: the same app/session key cannot be
// live twice (409), but the key frees on finish.
func TestDuplicateSessionConflict(t *testing.T) {
	srv, hs := newIngestFixture(t, Config{IdleTimeout: time.Minute})

	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := hs.Client().Post(hs.URL+"/ingest/Jmol/dup", "application/octet-stream", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	pw.Write([]byte("#"))
	waitFor(t, func() bool { return srv.Sessions() == 1 })

	resp, _, err := postDelivery(t, hs.Client(), hs.URL,
		delivery{app: "Jmol", session: "dup", body: []byte("#\n")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate key got %d, want 409", resp.StatusCode)
	}
	pw.Close()
	<-done
}

// TestPutUploadAccepted: curl -T and most streaming uploaders send
// PUT, not POST; the route accepts both identically.
func TestPutUploadAccepted(t *testing.T) {
	srv, hs := newIngestFixture(t, Config{IdleTimeout: time.Minute})
	body := encodeSession(t, "Jmol", 9, 10)

	req, err := http.NewRequest(http.MethodPut, hs.URL+"/ingest/Jmol/put-1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT upload got %d, want 200", resp.StatusCode)
	}
	var sum sessionSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Records == 0 || sum.Error != "" {
		t.Fatalf("PUT upload summary %+v, want parsed records and no error", sum)
	}
	if n := srv.Sessions(); n != 0 {
		t.Fatalf("%d sessions live after PUT finished, want 0", n)
	}
}

// TestDrainRefusesAndFlushes: BeginDrain turns new sessions away with
// 503, evicts live ones with a drained=true partial summary, and the
// partial data they had flushed stays committed.
func TestDrainRefusesAndFlushes(t *testing.T) {
	srv, hs := newIngestFixture(t, Config{WindowDur: goldenWindow, IdleTimeout: time.Minute})

	pr, pw := io.Pipe()
	sums := make(chan sessionSummary, 1)
	go func() {
		resp, err := hs.Client().Post(hs.URL+"/ingest/Jmol/drainee", "application/octet-stream", pr)
		if err != nil {
			sums <- sessionSummary{}
			return
		}
		defer resp.Body.Close()
		var sum sessionSummary
		json.NewDecoder(resp.Body).Decode(&sum)
		sums <- sum
	}()
	body := encodeSession(t, "Jmol", 21, 30)
	pw.Write(body[:len(body)/2])
	// Wait until the handler has actually parsed records, not merely
	// admitted the session: the client's pipe write returns when the
	// transport consumed the bytes, which says nothing about how far
	// the handler's decoder got. Draining before the header parse is
	// legal (nothing arrived worth committing) but not this test.
	waitFor(t, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		for _, ss := range srv.sessions {
			ss.mu.Lock()
			records := ss.records
			ss.mu.Unlock()
			return records > 0
		}
		return false
	})

	srv.BeginDrain()

	// New sessions are refused while draining.
	resp, _, err := postDelivery(t, hs.Client(), hs.URL,
		delivery{app: "Jmol", session: "late", body: body})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post while draining got %d, want 503", resp.StatusCode)
	}

	// The live session is evicted with reason drain; its summary says
	// drained, and whatever it salvaged was committed.
	sum := <-sums
	if !sum.Drained {
		t.Errorf("drained session summary: %+v, want drained=true", sum)
	}
	pw.Close()
	waitFor(t, func() bool { return srv.Sessions() == 0 })
	if tb := srv.Tables(); tb.Apps["Jmol"] == nil || tb.Apps["Jmol"].Sessions != 1 {
		t.Errorf("drained session's partial data not committed: %+v", tb.Apps)
	}
}

// TestBudgetDegradeThenEvict: a session blowing through the per-session
// budget first degrades to stats-only (aggregates keep flowing, trees
// stop), and a budget small enough to stay exceeded evicts it with 429.
func TestBudgetDegradeThenEvict(t *testing.T) {
	// The consumer's base estimate alone (16 KiB) exceeds this budget,
	// so the first police pass degrades and the second evicts.
	srv, hs := newIngestFixture(t, Config{
		WindowDur:     goldenWindow,
		SessionBudget: 8 << 10,
		IdleTimeout:   time.Minute,
	})
	d := delivery{app: "Jmol", session: "hog", body: encodeSession(t, "Jmol", 41, 60)}
	resp, sum, err := postDelivery(t, hs.Client(), hs.URL, d)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget session got %d, want 429 (summary %+v)", resp.StatusCode, sum)
	}
	if sum.Evicted != evictBudget {
		t.Errorf("evicted = %q, want %q", sum.Evicted, evictBudget)
	}
	if !sum.Degraded {
		t.Error("session was evicted for budget without degrading first")
	}
	if sum.Records == 0 {
		t.Error("no records consumed before eviction")
	}
	waitFor(t, func() bool { return srv.Sessions() == 0 })
	if srv.MemInUse() != 0 {
		t.Errorf("memory charge leaked: %d", srv.MemInUse())
	}
	// What was flushed before eviction is committed data.
	if tb := srv.Tables(); tb.Apps["Jmol"] == nil {
		t.Error("evicted session contributed nothing")
	}
}

// TestStatsOnlyDegradationKeepsAggregates: a consumer degraded to
// stats-only mid-stream still produces windowed tallies identical to
// the batch reference in everything except pattern classification —
// post-degradation episodes count as Treeless instead of entering the
// pattern map, but durations, triggers, causes, histograms, and tick
// attributions keep flowing untouched.
func TestStatsOnlyDegradationKeepsAggregates(t *testing.T) {
	body := encodeSession(t, "Jmol", 51, 25)
	r, err := newSalvageReader(body)
	if err != nil {
		t.Fatal(err)
	}
	cons := NewConsumer("Jmol", r.Header(), ConsumerConfig{WindowDur: goldenWindow})
	got := NewTables()
	for n := 0; ; n++ {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		cons.Add(rec)
		if n == 500 {
			cons.Degrade()
		}
		for _, fe := range cons.CompletedWindows() {
			got.window(WindowKey{App: "Jmol", Window: fe.Window}).Merge(fe.Agg)
		}
	}
	entries, at, _ := cons.Finish()
	for _, fe := range entries {
		got.window(WindowKey{App: "Jmol", Window: fe.Window}).Merge(fe.Agg)
	}
	got.app("Jmol").merge(&at)
	if !cons.Degraded() {
		t.Fatal("consumer not degraded")
	}

	want := batchReference(t, []delivery{{app: "Jmol", session: "deg", body: body}}, goldenWindow)
	// Patterns are the sacrifice of stats-only mode; every other tally
	// must still match the batch reference exactly.
	var gotTreeless int
	for _, k := range want.SortedWindows() {
		wa, ga := want.Windows[k], got.Windows[k]
		if ga == nil {
			t.Fatalf("window %+v missing", k)
		}
		gotTreeless += ga.Treeless
		wc, gc := wa.Clone(), ga.Clone()
		wc.Unstructured, gc.Unstructured = 0, 0
		wc.Treeless, gc.Treeless = 0, 0
		if !equalAggregates(wc, gc) {
			t.Errorf("window %+v tallies diverged:\n  degraded %+v\n  batch    %+v", k, gc, wc)
		}
	}
	if gotTreeless == 0 {
		t.Error("degraded consumer recorded no treeless episodes")
	}
	if got.Apps["Jmol"] == nil || want.Apps["Jmol"] == nil || *got.Apps["Jmol"] != *want.Apps["Jmol"] {
		t.Errorf("app tally: degraded %+v, batch %+v", got.Apps["Jmol"], want.Apps["Jmol"])
	}
}

func equalAggregates(a, b *Aggregate) bool {
	a2, b2 := *a, *b
	a2.Patterns, b2.Patterns = nil, nil
	return reflect.DeepEqual(a2, b2)
}

// TestIdleSessionReaped: a client that parks a connection without
// sending is evicted by the reaper and answered 408.
func TestIdleSessionReaped(t *testing.T) {
	srv, hs := newIngestFixture(t, Config{IdleTimeout: 200 * time.Millisecond})

	pr, pw := io.Pipe()
	status := make(chan int, 1)
	go func() {
		resp, err := hs.Client().Post(hs.URL+"/ingest/Jmol/parked", "application/octet-stream", pr)
		if err != nil {
			status <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	pw.Write([]byte("#")) // open the stream, then go silent

	select {
	case code := <-status:
		if code != http.StatusRequestTimeout {
			t.Fatalf("parked session got %d, want 408", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle session never evicted")
	}
	pw.Close()
	waitFor(t, func() bool { return srv.Sessions() == 0 })
}

// TestStatsEndpointMidSession: committed windows are queryable while a
// session is still live, and the live roster lists it.
func TestStatsEndpointMidSession(t *testing.T) {
	srv, hs := newIngestFixture(t, Config{WindowDur: goldenWindow, IdleTimeout: time.Minute})

	body := encodeSession(t, "Jmol", 61, 40)
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := hs.Client().Post(hs.URL+"/ingest/Jmol/live", "application/octet-stream", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Feed most of the session so whole windows complete and commit
	// (the handler flushes every 256 records), keep the stream open.
	pw.Write(body[:len(body)*3/4])
	waitFor(t, func() bool {
		st := srv.Stats()
		return len(st.Windows) > 0 && len(st.Sessions) == 1
	})

	resp, err := hs.Client().Get(hs.URL + "/ingest/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].Session != "Jmol/live" {
		t.Errorf("live roster: %+v", st.Sessions)
	}
	if st.Sessions[0].Records == 0 || st.Sessions[0].Bytes == 0 {
		t.Errorf("live session shows no progress: %+v", st.Sessions[0])
	}
	if len(st.Windows) == 0 {
		t.Error("no committed windows visible mid-session")
	}
	for _, w := range st.Windows {
		if w.App != "Jmol" || w.Episodes == 0 {
			t.Errorf("window %+v is empty", w.WindowKey)
		}
	}

	pw.Close()
	<-done
	waitFor(t, func() bool { return srv.Sessions() == 0 })
}

// TestGarbageStreamSalvagedNotErrored: a stream of pure garbage is not
// an error — the server salvages nothing, answers 200 with a salvage
// report, and stays clean for the next client.
func TestGarbageStreamSalvagedNotErrored(t *testing.T) {
	srv, hs := newIngestFixture(t, Config{IdleTimeout: time.Minute})
	garbage := []byte("#\n" + strings.Repeat("!!! not a record !!!\n", 100))
	resp, sum, err := postDelivery(t, hs.Client(), hs.URL,
		delivery{app: "Jmol", session: "junk", body: garbage})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("garbage stream got %d, want 200 (salvaged)", resp.StatusCode)
	}
	if sum.Episodes != 0 {
		t.Errorf("garbage produced %d episodes", sum.Episodes)
	}
	waitFor(t, func() bool { return srv.Sessions() == 0 })
}

// ingestCounters is the exported metric schema of the ingest surface;
// pinned in both exposition formats so dashboards keyed on the names
// cannot silently break.
var ingestCounters = []string{
	"ingest_sessions_total",
	"ingest_records_total",
	"ingest_bytes_total",
	"ingest_shed_total",
	"ingest_sessions_degraded_total",
	"ingest_windows_committed_total",
	"ingest_sessions_evicted_idle_total",
	"ingest_sessions_evicted_budget_total",
	"ingest_sessions_evicted_deadline_total",
	"ingest_sessions_evicted_drain_total",
}

func TestIngestMetricsSchema(t *testing.T) {
	snap := obs.Default().Snapshot()
	text := snap.Format()
	prom := obs.Default().FormatProm()
	for _, name := range ingestCounters {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("snapshot has no counter %s", name)
		}
		if !strings.Contains(text, "counter "+name+" ") {
			t.Errorf("text snapshot omits %s:\n%s", name, text)
		}
		if !strings.Contains(prom, "# TYPE "+name+" counter") {
			t.Errorf("prometheus exposition omits the TYPE line for %s", name)
		}
		if !strings.Contains(prom, "\n"+name+" ") {
			t.Errorf("prometheus exposition has no sample for %s", name)
		}
	}
	const gauge = "ingest_sessions_active"
	if _, ok := snap.Gauges[gauge]; !ok {
		t.Errorf("snapshot has no gauge %s", gauge)
	}
	if !strings.Contains(prom, "# TYPE "+gauge+" gauge") {
		t.Errorf("prometheus exposition omits the TYPE line for %s", gauge)
	}
}

// TestIngestMetricsCount: the core counters move with the events they
// name.
func TestIngestMetricsCount(t *testing.T) {
	before := obs.Default().Snapshot().Counters
	_, hs := newIngestFixture(t, Config{WindowDur: goldenWindow})
	d := delivery{app: "Jmol", session: "m1", body: encodeSession(t, "Jmol", 77, 25)}
	if resp, _, err := postDelivery(t, hs.Client(), hs.URL, d); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post: %v (%v)", err, resp)
	}
	after := obs.Default().Snapshot().Counters
	for _, name := range []string{
		"ingest_sessions_total", "ingest_records_total",
		"ingest_bytes_total", "ingest_windows_committed_total",
	} {
		if after[name] <= before[name] {
			t.Errorf("%s did not move (%d -> %d)", name, before[name], after[name])
		}
	}
}

// TestReadyReasons covers the Server-side readiness signal feeding
// /readyz.
func TestReadyReasons(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if ok, reasons := srv.Ready(); !ok || len(reasons) != 0 {
		t.Fatalf("fresh server not ready: %v", reasons)
	}
	srv.BeginDrain()
	ok, reasons := srv.Ready()
	if ok || len(reasons) != 1 || reasons[0] != "draining" {
		t.Fatalf("draining server: ok=%v reasons=%v", ok, reasons)
	}
}

// TestConsumerWindowPartition: windows flushed mid-stream plus the
// final drain partition the episodes — nothing lost, nothing folded
// twice. Pure consumer-level check, no HTTP.
func TestConsumerWindowPartition(t *testing.T) {
	body := encodeSession(t, "CrosswordSage", 13, 30)
	r, err := newSalvageReader(body)
	if err != nil {
		t.Fatal(err)
	}
	cons := NewConsumer("CrosswordSage", r.Header(), ConsumerConfig{WindowDur: goldenWindow})
	total := NewTables()
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		cons.Add(rec)
		for _, fe := range cons.CompletedWindows() {
			total.window(WindowKey{App: "CrosswordSage", Window: fe.Window}).Merge(fe.Agg)
		}
	}
	entries, at, _ := cons.Finish()
	for _, fe := range entries {
		total.window(WindowKey{App: "CrosswordSage", Window: fe.Window}).Merge(fe.Agg)
	}
	total.app("CrosswordSage").merge(&at)

	want := batchReference(t, []delivery{{app: "CrosswordSage", session: "1", body: body}}, goldenWindow)
	compareTables(t, total, want)
}

func newSalvageReader(body []byte) (lila.Reader, error) {
	return lila.NewReaderOptions(bytes.NewReader(body), lila.ReaderOptions{Salvage: true})
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never reached")
}
