package ingest

import "lagalyzer/internal/obs"

// The ingest metric schema. Eviction reasons are separate counters
// (the obs registry is label-free by design); the schema test in
// metrics_test.go pins every name in both exposition formats.
var (
	mSessionsActive = obs.NewGauge("ingest_sessions_active",
		"live streaming ingest sessions currently connected")
	mSessionsTotal = obs.NewCounter("ingest_sessions_total",
		"streaming ingest sessions ever admitted")
	mRecords = obs.NewCounter("ingest_records_total",
		"trace records consumed by streaming ingest")
	mBytes = obs.NewCounter("ingest_bytes_total",
		"encoded bytes consumed by streaming ingest")
	mShed = obs.NewCounter("ingest_shed_total",
		"ingest sessions refused at admission (session cap or memory budget)")
	mDegraded = obs.NewCounter("ingest_sessions_degraded_total",
		"sessions switched to stats-only mode under memory pressure")
	mWindows = obs.NewCounter("ingest_windows_committed_total",
		"completed window aggregates journaled and folded into the tables")

	mEvictedIdle = obs.NewCounter("ingest_sessions_evicted_idle_total",
		"sessions evicted by the idle reaper")
	mEvictedBudget = obs.NewCounter("ingest_sessions_evicted_budget_total",
		"sessions evicted because degrading could not fit them in budget")
	mEvictedDeadline = obs.NewCounter("ingest_sessions_evicted_deadline_total",
		"sessions evicted by the per-chunk read deadline (slow-loris guard)")
	mEvictedDrain = obs.NewCounter("ingest_sessions_evicted_drain_total",
		"sessions flushed and closed by graceful drain")
)

func evictionCounter(reason string) *obs.Counter {
	switch reason {
	case evictIdle:
		return mEvictedIdle
	case evictBudget:
		return mEvictedBudget
	case evictDeadline:
		return mEvictedDeadline
	case evictDrain:
		return mEvictedDrain
	}
	return nil
}
