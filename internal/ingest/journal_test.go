package ingest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// mountIngest wraps a server in the real route patterns.
func mountIngest(srv *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest/{app}/{session}", srv.HandleIngest)
	mux.HandleFunc("PUT /ingest/{app}/{session}", srv.HandleIngest)
	mux.HandleFunc("GET /ingest/stats", srv.HandleStats)
	return mux
}

// TestJournalKillResume is the crash-safety contract: a server killed
// without any shutdown (the WAL is fsynced record-by-record, so a
// SIGKILL loses nothing that was committed) must be replaceable by a
// new server over the same journal dir that recovers exactly the
// committed tables — no lost windows, no double-counting.
func TestJournalKillResume(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{WindowDur: goldenWindow, JournalDir: dir}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(mountIngest(srv1))
	for i, app := range []string{"Jmol", "CrosswordSage"} {
		d := delivery{app: app, session: "k1", body: encodeSession(t, app, uint64(11+i), 20)}
		if resp, _, err := postDelivery(t, hs1.Client(), hs1.URL, d); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("post %s: %v (%v)", app, err, resp)
		}
	}
	committed := srv1.Tables()
	hs1.Close()
	// SIGKILL simulation: srv1 is simply abandoned — no drain, no
	// journal rotation, no snapshot. Recovery must come from the WAL
	// alone.

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart over the WAL: %v", err)
	}
	if got := srv2.Tables(); !reflect.DeepEqual(got, committed) {
		compareTables(t, got, committed)
		t.Fatal("recovered tables differ from the killed server's committed tables")
	}

	// The restarted server keeps ingesting and folds on top of the
	// recovered state.
	hs2 := httptest.NewServer(mountIngest(srv2))
	d := delivery{app: "Arabeske", session: "k2", body: encodeSession(t, "Arabeske", 99, 20)}
	if resp, _, err := postDelivery(t, hs2.Client(), hs2.URL, d); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post after resume: %v (%v)", err, resp)
	}
	hs2.Close()
	afterResume := srv2.Tables()
	if afterResume.Apps["Jmol"] == nil || afterResume.Apps["Arabeske"] == nil {
		t.Fatalf("resumed tables lost an app: %+v", afterResume.Apps)
	}
	wantSessions := 0
	for _, at := range afterResume.Apps {
		wantSessions += at.Sessions
	}
	if wantSessions != 3 {
		t.Fatalf("resumed tables count %d sessions, want 3 (double-counting?)", wantSessions)
	}

	// Graceful shutdown rotates the WAL into a snapshot; a third
	// server over the snapshot+fresh-WAL must again see identical
	// tables.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if left, err := srv2.Shutdown(ctx); err != nil || left != 0 {
		t.Fatalf("shutdown: left=%d err=%v", left, err)
	}
	srv3, err := New(cfg)
	if err != nil {
		t.Fatalf("restart over the snapshot: %v", err)
	}
	defer srv3.Shutdown(context.Background())
	if got := srv3.Tables(); !reflect.DeepEqual(got, afterResume) {
		compareTables(t, got, afterResume)
		t.Fatal("post-rotation tables differ")
	}
}

// TestJournalTornTailTruncated: a torn final frame (the crash landed
// mid-append) is discarded on open instead of poisoning recovery, and
// every intact frame before it survives.
func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{WindowDur: goldenWindow, JournalDir: dir}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(mountIngest(srv1))
	d := delivery{app: "Jmol", session: "t1", body: encodeSession(t, "Jmol", 3, 20)}
	if resp, _, err := postDelivery(t, hs1.Client(), hs1.URL, d); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post: %v (%v)", err, resp)
	}
	committed := srv1.Tables()
	hs1.Close()

	// Tear the tail: append half a frame header plus garbage.
	wal := filepath.Join(dir, journalName(0))
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0xFF, 0x00, 0x01, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("open over torn WAL: %v", err)
	}
	defer srv2.Shutdown(context.Background())
	if got := srv2.Tables(); !reflect.DeepEqual(got, committed) {
		t.Fatal("torn tail corrupted recovery")
	}
}

// TestJournalCorruptSnapshotRefused: a snapshot whose bytes no longer
// match the manifest's SHA-256 must fail loudly — silently serving
// half-recovered aggregates would be worse than refusing to start.
func TestJournalCorruptSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{WindowDur: goldenWindow, JournalDir: dir}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(mountIngest(srv1))
	d := delivery{app: "Jmol", session: "c1", body: encodeSession(t, "Jmol", 8, 15)}
	if resp, _, err := postDelivery(t, hs1.Client(), hs1.URL, d); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post: %v (%v)", err, resp)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the snapshot the manifest points at.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snap string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") {
			snap = filepath.Join(dir, e.Name())
		}
	}
	if snap == "" {
		t.Fatal("no snapshot written by rotation")
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := New(cfg); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
