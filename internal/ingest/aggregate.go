// Package ingest is lagd's live streaming ingestion surface: many
// concurrent LiLa record streams arrive over chunked HTTP, each is
// consumed incrementally by internal/stream's O(stack-depth) analyzer
// plus an incremental episode-tree builder, and everything folds into
// mergeable per-window aggregate state that is queryable mid-session.
//
// The package is built hostile-client-first: per-session and global
// memory budgets with 429/Retry-After shedding and a degraded
// stats-only mode, per-chunk read deadlines and idle-session reaping,
// salvage decoding of mid-stream corruption with per-session
// SalvageReports, disconnect-equals-salvage semantics, and crash-safe
// journaling of completed-window aggregates so a restarted lagd
// resumes without double-counting.
package ingest

import (
	"sort"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/trace"
)

// LagBounds are the upper bounds (exclusive) of the lag histogram's
// buckets; the final bucket is unbounded. The grid is fixed so
// histograms from any two sources merge bucket-by-bucket.
var LagBounds = []trace.Dur{
	trace.Ms(1), trace.Ms(2), trace.Ms(5), trace.Ms(10), trace.Ms(20),
	trace.Ms(50), trace.Ms(100), trace.Ms(200), trace.Ms(500),
	trace.Ms(1000), trace.Ms(2000), trace.Ms(5000), trace.Ms(10000),
	trace.Ms(30000),
}

// NumLagBuckets is len(LagBounds)+1 (the overflow bucket).
const NumLagBuckets = 15

func lagBucket(d trace.Dur) int {
	for i, b := range LagBounds {
		if d < b {
			return i
		}
	}
	return len(LagBounds)
}

// WindowKey identifies one aggregation window: an application and a
// window index in session-relative time (LiLa time stamps count from
// session start, so windows align session phases — startup, steady
// state — across sessions of the same app).
type WindowKey struct {
	App    string `json:"app"`
	Window int64  `json:"window"`
}

// PatternTally is one pattern's contribution to a window.
type PatternTally struct {
	Hash        uint64    `json:"hash"`
	Count       int       `json:"count"`
	Perceptible int       `json:"perceptible"`
	LagTotal    trace.Dur `json:"lag_total_ns"`
	LagMax      trace.Dur `json:"lag_max_ns"`
}

func (p *PatternTally) merge(o *PatternTally) {
	p.Count += o.Count
	p.Perceptible += o.Perceptible
	p.LagTotal += o.LagTotal
	if o.LagMax > p.LagMax {
		p.LagMax = o.LagMax
	}
}

// Aggregate is the mergeable per-window state. Every field is an
// integral tally (counts and duration sums), so merging is
// commutative and associative and the streamed result is identical to
// folding the same episodes in any other order — the property the
// streamed-vs-batch golden test pins.
//
// The tick-derived fields (States/Samples/App/Lib/Runnable/Ticks)
// follow the batch pipeline's per-episode EpisodeTicks scan, so a
// tick spanning two overlapping episodes counts once per episode,
// exactly as analysis.Concurrency and the fused engine tally it.
type Aggregate struct {
	Episodes    int `json:"episodes"`
	Perceptible int `json:"perceptible"`
	// Unstructured counts episodes excluded from pattern
	// classification (no retained non-GC child below the dispatch).
	Unstructured int `json:"unstructured,omitempty"`
	// Treeless counts episodes whose interval tree was dropped by the
	// degraded stats-only mode; they are absent from Patterns but
	// present in every other tally.
	Treeless int `json:"treeless,omitempty"`

	Triggers     [analysis.NumTriggers]int `json:"triggers"`
	TriggersLong [analysis.NumTriggers]int `json:"triggers_long"`

	EpisodeTime trace.Dur `json:"episode_time_ns"`
	GCTime      trace.Dur `json:"gc_time_ns"`
	NativeTime  trace.Dur `json:"native_time_ns"`

	// Cause/location/concurrency basis over all episodes.
	States     [4]int `json:"states"`
	Samples    int    `json:"samples"`
	AppSamples int    `json:"app_samples"`
	LibSamples int    `json:"lib_samples"`
	Runnable   int    `json:"runnable"`
	Ticks      int    `json:"ticks"`

	LagHist  [NumLagBuckets]int `json:"lag_hist"`
	LagTotal trace.Dur          `json:"lag_total_ns"`
	LagMax   trace.Dur          `json:"lag_max_ns"`

	// Patterns tallies structured episodes by canonical form.
	Patterns map[string]*PatternTally `json:"-"`
}

// epContribution is one finished episode, normalized so the streaming
// consumer and the batch reference fold through the same code path.
type epContribution struct {
	dur        trace.Dur
	trigger    analysis.Trigger
	gc, native trace.Dur

	causes   [4]int
	samples  int
	app, lib int
	runnable int
	ticks    int

	structured bool
	canon      []byte // valid only during the call
	hash       uint64
	treeless   bool
}

func (a *Aggregate) addEpisode(ec *epContribution, threshold trace.Dur) {
	a.Episodes++
	a.Triggers[ec.trigger]++
	perceptible := ec.dur >= threshold
	if perceptible {
		a.Perceptible++
		a.TriggersLong[ec.trigger]++
	}
	a.EpisodeTime += ec.dur
	a.GCTime += ec.gc
	a.NativeTime += ec.native
	for i, n := range ec.causes {
		a.States[i] += n
	}
	a.Samples += ec.samples
	a.AppSamples += ec.app
	a.LibSamples += ec.lib
	a.Runnable += ec.runnable
	a.Ticks += ec.ticks
	a.LagHist[lagBucket(ec.dur)]++
	a.LagTotal += ec.dur
	if ec.dur > a.LagMax {
		a.LagMax = ec.dur
	}
	switch {
	case ec.treeless:
		a.Treeless++
	case !ec.structured:
		a.Unstructured++
	default:
		if a.Patterns == nil {
			a.Patterns = make(map[string]*PatternTally)
		}
		pt := a.Patterns[string(ec.canon)]
		if pt == nil {
			pt = &PatternTally{Hash: ec.hash}
			a.Patterns[string(ec.canon)] = pt
		}
		pt.Count++
		if perceptible {
			pt.Perceptible++
		}
		pt.LagTotal += ec.dur
		if ec.dur > pt.LagMax {
			pt.LagMax = ec.dur
		}
	}
}

// Merge folds o into a.
func (a *Aggregate) Merge(o *Aggregate) {
	a.Episodes += o.Episodes
	a.Perceptible += o.Perceptible
	a.Unstructured += o.Unstructured
	a.Treeless += o.Treeless
	for i, n := range o.Triggers {
		a.Triggers[i] += n
	}
	for i, n := range o.TriggersLong {
		a.TriggersLong[i] += n
	}
	a.EpisodeTime += o.EpisodeTime
	a.GCTime += o.GCTime
	a.NativeTime += o.NativeTime
	for i, n := range o.States {
		a.States[i] += n
	}
	a.Samples += o.Samples
	a.AppSamples += o.AppSamples
	a.LibSamples += o.LibSamples
	a.Runnable += o.Runnable
	a.Ticks += o.Ticks
	for i, n := range o.LagHist {
		a.LagHist[i] += n
	}
	a.LagTotal += o.LagTotal
	if o.LagMax > a.LagMax {
		a.LagMax = o.LagMax
	}
	for canon, pt := range o.Patterns {
		if a.Patterns == nil {
			a.Patterns = make(map[string]*PatternTally)
		}
		mine := a.Patterns[canon]
		if mine == nil {
			mine = &PatternTally{Hash: pt.Hash}
			a.Patterns[canon] = mine
		}
		mine.merge(pt)
	}
}

// Clone deep-copies the aggregate.
func (a *Aggregate) Clone() *Aggregate {
	cp := *a
	cp.Patterns = nil
	if a.Patterns != nil {
		cp.Patterns = make(map[string]*PatternTally, len(a.Patterns))
		for canon, pt := range a.Patterns {
			v := *pt
			cp.Patterns[canon] = &v
		}
	}
	return &cp
}

// AppTally is the per-application session-level state that has no
// window (the profiler's own short-episode count carries no time
// stamp).
type AppTally struct {
	// Sessions counts sessions whose stream finished (cleanly or by
	// salvage); live sessions are reported separately.
	Sessions int `json:"sessions"`
	// Short counts sub-filter episodes: the profiler's own count plus
	// traced episodes below the filter threshold.
	Short int `json:"short"`
	// E2E sums the sessions' end-to-end durations.
	E2E trace.Dur `json:"e2e_ns"`
}

func (t *AppTally) merge(o *AppTally) {
	t.Sessions += o.Sessions
	t.Short += o.Short
	t.E2E += o.E2E
}

// Tables is the full mergeable aggregate state: per-window aggregates
// plus per-app session tallies.
type Tables struct {
	Windows map[WindowKey]*Aggregate
	Apps    map[string]*AppTally
}

// NewTables returns empty tables.
func NewTables() *Tables {
	return &Tables{
		Windows: make(map[WindowKey]*Aggregate),
		Apps:    make(map[string]*AppTally),
	}
}

func (t *Tables) window(k WindowKey) *Aggregate {
	a := t.Windows[k]
	if a == nil {
		a = &Aggregate{}
		t.Windows[k] = a
	}
	return a
}

func (t *Tables) app(name string) *AppTally {
	a := t.Apps[name]
	if a == nil {
		a = &AppTally{}
		t.Apps[name] = a
	}
	return a
}

// Merge folds o into t.
func (t *Tables) Merge(o *Tables) {
	for k, agg := range o.Windows {
		t.window(k).Merge(agg)
	}
	for name, at := range o.Apps {
		t.app(name).merge(at)
	}
}

// Clone deep-copies the tables.
func (t *Tables) Clone() *Tables {
	cp := NewTables()
	cp.Merge(t)
	return cp
}

// SortedWindows returns the window keys in (app, window) order.
func (t *Tables) SortedWindows() []WindowKey {
	keys := make([]WindowKey, 0, len(t.Windows))
	for k := range t.Windows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].App != keys[j].App {
			return keys[i].App < keys[j].App
		}
		return keys[i].Window < keys[j].Window
	})
	return keys
}
