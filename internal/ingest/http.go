package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/report"
	"lagalyzer/internal/stream"
	"lagalyzer/internal/treebuild"
)

// HandleIngest serves POST /ingest/{app}/{session}: one chunked LiLa
// record stream (any format the readers sniff — text is the natural
// live wire format), consumed incrementally until the client closes
// the stream, disconnects, goes idle, or is evicted. The stream is
// always decoded in salvage mode: mid-stream corruption is
// resynchronized past, a disconnect salvages what arrived, and the
// response carries the session's salvage report. Only resource
// exhaustion (429), a stalled client (408), and admission refusals
// are error statuses.
func (s *Server) HandleIngest(w http.ResponseWriter, r *http.Request) {
	app := r.PathValue("app")
	sessionID := r.PathValue("session")
	if app == "" || sessionID == "" {
		http.Error(w, "ingest: need /ingest/{app}/{session}", http.StatusBadRequest)
		return
	}
	key := app + "/" + sessionID

	ss, err := s.admit(key, app)
	switch {
	case errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrDuplicate):
		http.Error(w, fmt.Sprintf("ingest: session %s is already live", key), http.StatusConflict)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer s.release(ss)

	// Read deadlines: every arriving chunk pushes the deadline out by
	// ReadTimeout, so a slow-loris client trips it while a healthy
	// trickle never does. Best-effort — transports without deadline
	// support (httptest recorders) fall back to the idle reaper.
	rc := http.NewResponseController(w)
	readTimeout := s.cfg.readTimeout()
	setDeadline := func(t time.Time) error { return rc.SetReadDeadline(t) }
	if err := setDeadline(time.Now().Add(readTimeout)); err != nil {
		setDeadline = nil
	}
	ss.mu.Lock()
	if setDeadline != nil {
		ss.poke = setDeadline
	}
	ss.mu.Unlock()

	cr := obs.NewCountingReader(r.Body, mBytes)
	cr.OnRead(func(n int) {
		ss.touch(n)
		if setDeadline != nil {
			setDeadline(time.Now().Add(readTimeout))
		}
	})

	fh := report.FileHealth{Path: key, App: app}
	reader, err := lila.NewReaderOptions(cr, lila.ReaderOptions{Salvage: true, Limits: s.cfg.Limits})
	if err != nil {
		// Not even a sniffable header arrived; nothing to salvage.
		fh.Error = err.Error()
		s.recordHealth(fh)
		s.finishResponse(w, ss, nil, &fh, nil, err)
		return
	}
	h := reader.Header()
	if h.App != "" {
		// The stream header's app name wins over the URL for
		// aggregation; the URL stays the session identity.
		ss.mu.Lock()
		ss.app = h.App
		ss.mu.Unlock()
		fh.App = h.App
	}
	cons := NewConsumer(fh.App, h, ConsumerConfig{
		WindowDur:       s.cfg.windowDur(),
		Threshold:       s.cfg.threshold(),
		MaxEpisodeNodes: s.cfg.MaxEpisodeNodes,
	})

	var readErr error
	var skipped int64
	const checkEvery = 256
	for n := 0; ; n++ {
		if n%checkEvery == 0 && ss.evictReason() != "" {
			break
		}
		rec, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		ss.mu.Lock()
		ss.records++
		ss.mu.Unlock()
		mRecords.Inc()
		if err := cons.Add(rec); err != nil {
			skipped++
		}
		if n%checkEvery == checkEvery-1 {
			if err := s.flushAndPolice(ss, cons); err != nil {
				readErr = err
				break
			}
		}
	}

	// Salvage-what-arrived: whatever ended the stream, the consumer's
	// finished windows are real data and get committed.
	entries, at, st := cons.Finish()
	if err := s.commit(cons.App(), entries, &at); err != nil {
		s.logger.Error("ingest commit", "session", key, "err", err)
	}

	fh.Salvage = lila.SalvageOf(reader)
	fh.StreamRecords = st.Records
	fh.StreamEpisodes = st.Episodes
	fh.DegradedToStream = cons.Degraded()
	var diags []string
	if skipped > 0 {
		fh.Diagnostics = &treebuild.Diagnostics{SkippedRecords: int(skipped)}
		diags = append(diags,
			fmt.Sprintf("%d records skipped by the streaming analyzer", skipped))
	}
	if cons.Degraded() {
		diags = append(diags,
			fmt.Sprintf("degraded to stats-only mode (%d episodes lost their trees)", cons.Treeless()))
	}
	if reason := ss.evictReason(); reason != "" {
		diags = append(diags, "evicted: "+reason)
	}
	if readErr != nil && !errors.Is(readErr, io.EOF) {
		diags = append(diags, "stream ended: "+readErr.Error())
	}
	s.recordHealth(fh)
	s.logSession(key, ss, readErr)
	s.finishResponse(w, ss, st, &fh, diags, readErr)
}

// flushAndPolice commits completed windows and enforces the memory
// budgets: over-budget sessions degrade to stats-only first and are
// evicted only when that is not enough.
func (s *Server) flushAndPolice(ss *session, cons *Consumer) error {
	if entries := cons.CompletedWindows(); len(entries) > 0 {
		if err := s.commit(cons.App(), entries, nil); err != nil {
			return err
		}
	}
	sessionOver, globalOver := s.charge(ss, cons.EstimateBytes())
	if (sessionOver || globalOver) && !cons.Degraded() {
		cons.Degrade()
		mDegraded.Inc()
		ss.mu.Lock()
		ss.degraded = true
		ss.mu.Unlock()
		s.logger.Warn("ingest degrade", "session", ss.key)
		sessionOver, globalOver = s.charge(ss, cons.EstimateBytes())
	}
	if sessionOver || globalOver {
		ss.markEvict(evictBudget)
	}
	return nil
}

func (s *Server) logSession(key string, ss *session, readErr error) {
	ss.mu.Lock()
	records, bytes := ss.records, ss.bytes
	ss.mu.Unlock()
	if readErr != nil {
		s.logger.Info("ingest session end", "session", key, "records", records,
			"bytes", bytes, "err", readErr.Error())
		return
	}
	s.logger.Info("ingest session end", "session", key, "records", records, "bytes", bytes)
}

// sessionSummary is the terminal response body of one ingest stream.
type sessionSummary struct {
	Session  string              `json:"session"`
	App      string              `json:"app"`
	Records  int64               `json:"records"`
	Bytes    int64               `json:"bytes"`
	Episodes int                 `json:"episodes"`
	Short    int                 `json:"short"`
	Degraded bool                `json:"degraded,omitempty"`
	Evicted  string              `json:"evicted,omitempty"`
	Drained  bool                `json:"drained,omitempty"`
	Salvage  *lila.SalvageReport `json:"salvage,omitempty"`
	Diags    []string            `json:"diagnostics,omitempty"`
	Error    string              `json:"error,omitempty"`
}

// finishResponse maps how the stream ended to a status code: budget
// eviction and decode-limit trips are back-pressure (429), stalls are
// 408, drain is a successful 200 carrying drained=true, and anything
// salvaged — including mid-stream disconnects, where writing the
// response is itself best-effort — is a 200 with the salvage report.
func (s *Server) finishResponse(w http.ResponseWriter, ss *session, st *stream.Stats, fh *report.FileHealth, diags []string, readErr error) {
	ss.mu.Lock()
	sum := sessionSummary{
		Session:  ss.key,
		App:      ss.app,
		Records:  ss.records,
		Bytes:    ss.bytes,
		Evicted:  ss.evict,
		Degraded: ss.degraded,
	}
	ss.mu.Unlock()
	if st != nil {
		sum.Episodes = st.Episodes
		sum.Short = st.ShortCount
	}
	sum.Salvage = fh.Salvage
	sum.Diags = diags

	status := http.StatusOK
	switch {
	case sum.Evicted == evictBudget:
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case sum.Evicted == evictIdle || sum.Evicted == evictDeadline:
		status = http.StatusRequestTimeout
	case sum.Evicted == evictDrain:
		sum.Drained = true
	case readErr != nil && errors.Is(readErr, lila.ErrLimit):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case readErr != nil && errors.Is(readErr, os.ErrDeadlineExceeded):
		if sum.Evicted == "" {
			sum.Evicted = evictDeadline
		}
		status = http.StatusRequestTimeout
	}
	if sum.Evicted != "" {
		if c := evictionCounter(sum.Evicted); c != nil {
			c.Inc()
		}
	}
	if readErr != nil && status == http.StatusOK {
		// Disconnects and decode failures still answer 200: the stream
		// was salvaged. The error is informational.
		sum.Error = readErr.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&sum)
}

// windowView is one window's JSON projection: the aggregate's tallies
// plus a bounded pattern digest (full pattern maps stay server-side).
type windowView struct {
	WindowKey
	StartSec float64 `json:"start_sec"`
	*Aggregate
	PatternCount int             `json:"pattern_count"`
	TopPatterns  []patternDigest `json:"top_patterns,omitempty"`
}

type patternDigest struct {
	Canon string `json:"canon"`
	PatternTally
}

const topPatternsPerWindow = 5

// StatsResponse is GET /ingest/stats: committed per-window aggregates,
// per-app tallies, the live session roster, and the folded health of
// recently finished sessions. Live sessions' unflushed windows are by
// design absent — data becomes visible exactly when it is journaled.
type StatsResponse struct {
	Draining  bool                 `json:"draining"`
	Sessions  []liveSession        `json:"sessions"`
	MemInUse  int64                `json:"mem_in_use"`
	Windows   []windowView         `json:"windows"`
	Apps      map[string]*AppTally `json:"apps"`
	Health    *report.StudyHealth  `json:"health,omitempty"`
	WindowDur float64              `json:"window_sec"`
}

type liveSession struct {
	Session  string  `json:"session"`
	App      string  `json:"app"`
	Records  int64   `json:"records"`
	Bytes    int64   `json:"bytes"`
	Est      int64   `json:"est_bytes"`
	AgeSec   float64 `json:"age_sec"`
	IdleSec  float64 `json:"idle_sec"`
	Degraded bool    `json:"degraded,omitempty"`
}

// Stats assembles the queryable mid-session view.
func (s *Server) Stats() *StatsResponse {
	s.mu.Lock()
	tables := s.tables.Clone()
	resp := &StatsResponse{
		Draining:  s.draining,
		MemInUse:  s.memInUse,
		WindowDur: s.cfg.windowDur().Seconds(),
		Sessions:  make([]liveSession, 0, len(s.sessions)),
	}
	now := time.Now()
	for _, ss := range s.sessions {
		ss.mu.Lock()
		resp.Sessions = append(resp.Sessions, liveSession{
			Session:  ss.key,
			App:      ss.app,
			Records:  ss.records,
			Bytes:    ss.bytes,
			Est:      ss.est,
			AgeSec:   now.Sub(ss.started).Seconds(),
			IdleSec:  now.Sub(ss.lastByte).Seconds(),
			Degraded: ss.degraded,
		})
		ss.mu.Unlock()
	}
	s.mu.Unlock()
	sort.Slice(resp.Sessions, func(i, j int) bool { return resp.Sessions[i].Session < resp.Sessions[j].Session })

	windowDur := s.cfg.windowDur()
	for _, k := range tables.SortedWindows() {
		agg := tables.Windows[k]
		wv := windowView{
			WindowKey: k,
			StartSec:  (time.Duration(k.Window) * time.Duration(windowDur)).Seconds(),
			Aggregate: agg,
		}
		wv.PatternCount = len(agg.Patterns)
		wv.TopPatterns = topPatterns(agg)
		resp.Windows = append(resp.Windows, wv)
	}
	resp.Apps = tables.Apps
	if h := s.Health(); len(h.Files) > 0 {
		resp.Health = h
	}
	return resp
}

func topPatterns(agg *Aggregate) []patternDigest {
	if len(agg.Patterns) == 0 {
		return nil
	}
	out := make([]patternDigest, 0, len(agg.Patterns))
	for canon, pt := range agg.Patterns {
		out = append(out, patternDigest{Canon: canon, PatternTally: *pt})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LagTotal != out[j].LagTotal {
			return out[i].LagTotal > out[j].LagTotal
		}
		return out[i].Canon < out[j].Canon
	})
	if len(out) > topPatternsPerWindow {
		out = out[:topPatternsPerWindow]
	}
	return out
}

// HandleStats serves GET /ingest/stats.
func (s *Server) HandleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
