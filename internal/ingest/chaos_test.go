package ingest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"lagalyzer/internal/faultinject"
)

// TestIngestChaosFlakyClients is the seeded chaos suite: a concurrent
// swarm of clients whose uploads refuse, reset, stall, truncate, and
// corrupt on a deterministic plan, against a journaled server — then a
// violent kill with sessions mid-flight, a resume over the WAL, a
// second flaky wave, and a graceful drain. Invariants: the server
// never errors on hostile streams (it salvages), the session registry
// and memory accounting return to zero, every non-refused session is
// tallied exactly once, and both restarts recover the committed
// tables exactly.
func TestIngestChaosFlakyClients(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		WindowDur:   goldenWindow,
		JournalDir:  dir,
		ReadTimeout: 10 * time.Second,
		IdleTimeout: time.Minute,
	}
	apps := []string{"CrosswordSage", "Jmol", "Arabeske", "FindBugs"}
	faults := []faultinject.Fault{
		faultinject.FaultNone, faultinject.FaultRefuse,
		faultinject.FaultReset, faultinject.FaultStall,
		faultinject.FaultTruncate, faultinject.FaultCorrupt,
	}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(mountIngest(srv1))
	ft := &faultinject.FlakyTransport{
		RequestPlan: func(call int, req *http.Request) faultinject.Fault {
			return faults[(call-1)%len(faults)]
		},
		Stall: 20 * time.Millisecond,
		Seed:  77,
	}
	client := &http.Client{Transport: ft}

	const wave1 = 12
	var wg sync.WaitGroup
	for i := 0; i < wave1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := delivery{
				app:     apps[i%len(apps)],
				session: "c" + string(rune('a'+i)),
				body:    encodeSession(t, apps[i%len(apps)], uint64(100+i), 20),
			}
			// Refused and reset uploads error client-side; everything
			// else must come back as a response, never a hang.
			resp, _, err := postDelivery(t, client, hs1.URL, d)
			if err == nil && resp.StatusCode != http.StatusOK {
				t.Errorf("chaos post %s/%s: status %d", d.app, d.session, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, func() bool { return srv1.Sessions() == 0 })
	if srv1.MemInUse() != 0 {
		t.Errorf("memory accounting leaked: %d", srv1.MemInUse())
	}

	// Each of the 6 faults hit exactly wave1/6 calls; only refused
	// uploads never reach the server, so every other session is
	// tallied exactly once — no double-counting, no losses.
	total := 0
	for _, at := range srv1.Tables().Apps {
		total += at.Sessions
	}
	if want := wave1 - wave1/len(faults); total != want {
		t.Errorf("tallied %d sessions, want %d (one per non-refused upload)", total, want)
	}
	if len(srv1.Health().Files) == 0 {
		t.Error("no session outcomes in the health ring")
	}

	// Violent kill with live sessions: open streams, then slam the
	// connections shut. The handlers salvage what arrived; the WAL
	// keeps every commit.
	var killWG sync.WaitGroup
	for i := 0; i < 3; i++ {
		killWG.Add(1)
		go func(i int) {
			defer killWG.Done()
			d := delivery{
				app:     apps[i],
				session: "kill" + string(rune('a'+i)),
				body:    encodeSession(t, apps[i], uint64(200+i), 20),
			}
			postDelivery(t, &http.Client{Transport: &faultinject.FlakyTransport{
				RequestPlan: func(int, *http.Request) faultinject.Fault { return faultinject.FaultStall },
				Stall:       200 * time.Millisecond,
			}}, hs1.URL, d)
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the streams open
	hs1.CloseClientConnections()
	killWG.Wait()
	waitFor(t, func() bool { return srv1.Sessions() == 0 })
	committed := srv1.Tables()
	hs1.Close()
	// srv1 is now abandoned mid-life: no drain, no rotation.

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("resume over WAL after kill: %v", err)
	}
	if got := srv2.Tables(); !reflect.DeepEqual(got, committed) {
		compareTables(t, got, committed)
		t.Fatal("WAL recovery diverged from the killed server's tables")
	}

	// Second flaky wave on the resumed server, then a graceful drain.
	hs2 := httptest.NewServer(mountIngest(srv2))
	ft2 := &faultinject.FlakyTransport{
		RequestPlan: faultinject.SeededPlan(99, 1, 3, faultinject.FaultCorrupt),
		Seed:        99,
	}
	client2 := &http.Client{Transport: ft2}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := delivery{
				app:     apps[i%len(apps)],
				session: "w2" + string(rune('a'+i)),
				body:    encodeSession(t, apps[i%len(apps)], uint64(300+i), 15),
			}
			resp, _, err := postDelivery(t, client2, hs2.URL, d)
			if err == nil && resp.StatusCode != http.StatusOK {
				t.Errorf("wave-2 post %s/%s: status %d", d.app, d.session, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	hs2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final := srv2.Tables()
	if left, err := srv2.Shutdown(ctx); err != nil || left != 0 {
		t.Fatalf("graceful shutdown: left=%d err=%v", left, err)
	}

	srv3, err := New(cfg)
	if err != nil {
		t.Fatalf("restart over rotated snapshot: %v", err)
	}
	defer srv3.Shutdown(context.Background())
	if got := srv3.Tables(); !reflect.DeepEqual(got, final) {
		compareTables(t, got, final)
		t.Fatal("snapshot recovery diverged after the chaos run")
	}
}
