package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/faultinject"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
)

// delivery is one session's upload: the URL identity plus the exact
// bytes put on the wire.
type delivery struct {
	app, session string
	body         []byte
}

// encodeSession simulates one app session and serializes it in the
// text format (the natural live wire format, and the one the salvage
// reader can resynchronize line-by-line).
func encodeSession(t testing.TB, app string, seed uint64, seconds float64) []byte {
	t.Helper()
	profile, err := apps.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	recs, h, err := sim.Records(sim.Config{Profile: profile, Seed: seed, SessionSeconds: seconds})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w, err := lila.NewWriter(&sb, lila.FormatText, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}

// newIngestFixture builds an ingest server plus an httptest front end
// mounting the real route patterns (PathValue needs them).
func newIngestFixture(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(mountIngest(srv))
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, hs
}

// batchReference rebuilds the golden tables from delivered bytes using
// the batch pipeline: salvage decode, lenient treebuild, FoldSessions.
// The resolution rules (header app wins over URL app, an unreadable
// header contributes nothing) mirror HandleIngest exactly.
func batchReference(t *testing.T, deliveries []delivery, windowDur trace.Dur) *Tables {
	t.Helper()
	want := NewTables()
	for _, d := range deliveries {
		r, err := lila.NewReaderOptions(bytes.NewReader(d.body), lila.ReaderOptions{Salvage: true})
		if err != nil {
			continue // not even a sniffable header: the server commits nothing
		}
		app := r.Header().App
		if app == "" {
			app = d.app
		}
		session, _, err := treebuild.BuildOptions(r, treebuild.Options{Lenient: true})
		if err != nil {
			t.Fatalf("batch treebuild for %s/%s: %v", d.app, d.session, err)
		}
		FoldSessions(want, app, []*trace.Session{session}, windowDur, 0)
	}
	return want
}

// compareTables asserts the streamed tables equal the batch reference,
// with a per-key diff on mismatch.
func compareTables(t *testing.T, got, want *Tables) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	for name, at := range want.Apps {
		if g := got.Apps[name]; g == nil || *g != *at {
			t.Errorf("app %s: streamed %+v, batch %+v", name, got.Apps[name], at)
		}
	}
	for name := range got.Apps {
		if want.Apps[name] == nil {
			t.Errorf("app %s: streamed has it, batch does not", name)
		}
	}
	for _, k := range want.SortedWindows() {
		wa := want.Windows[k]
		ga := got.Windows[k]
		if ga == nil {
			t.Errorf("window %+v: missing from streamed tables (batch %+v)", k, wa)
			continue
		}
		if !reflect.DeepEqual(ga, wa) {
			gc, wc := ga.Clone(), wa.Clone()
			gc.Patterns, wc.Patterns = nil, nil
			if !reflect.DeepEqual(gc, wc) {
				t.Errorf("window %+v tallies:\n  streamed %+v\n  batch    %+v", k, gc, wc)
			}
			for canon, pt := range wa.Patterns {
				if g := ga.Patterns[canon]; g == nil || *g != *pt {
					t.Errorf("window %+v pattern %q: streamed %+v, batch %+v", k, canon, ga.Patterns[canon], pt)
				}
			}
			for canon := range ga.Patterns {
				if wa.Patterns[canon] == nil {
					t.Errorf("window %+v pattern %q: streamed has it, batch does not", k, canon)
				}
			}
		}
	}
	for _, k := range got.SortedWindows() {
		if want.Windows[k] == nil {
			t.Errorf("window %+v: streamed has it, batch does not (%+v)", k, got.Windows[k])
		}
	}
}

func postDelivery(t *testing.T, client *http.Client, base string, d delivery) (*http.Response, sessionSummary, error) {
	t.Helper()
	resp, err := client.Post(
		fmt.Sprintf("%s/ingest/%s/%s", base, d.app, d.session),
		"application/octet-stream", bytes.NewReader(d.body))
	if err != nil {
		return nil, sessionSummary{}, err
	}
	defer resp.Body.Close()
	var sum sessionSummary
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if derr := json.NewDecoder(resp.Body).Decode(&sum); derr != nil {
			t.Fatalf("summary decode for %s/%s: %v", d.app, d.session, derr)
		}
	} else {
		// Admission refusals (shed, draining, duplicate) are plain-text
		// http.Error responses with no summary.
		io.Copy(io.Discard, resp.Body)
	}
	return resp, sum, nil
}

const goldenWindow = 5 * trace.Second

// TestGoldenStreamedMatchesBatch is the tentpole equivalence test on
// undamaged streams: every session streamed through the HTTP surface
// must yield byte-for-byte the same aggregate tables as the batch
// pipeline (salvage read, treebuild, FoldSessions) over the same
// bytes — per-window tallies, pattern maps, and app tallies included.
func TestGoldenStreamedMatchesBatch(t *testing.T) {
	deliveries := []delivery{
		{app: "CrosswordSage", session: "1"},
		{app: "Jmol", session: "1"},
		{app: "Arabeske", session: "1"},
		{app: "Jmol", session: "2"},
	}
	for i := range deliveries {
		deliveries[i].body = encodeSession(t, deliveries[i].app, uint64(31+i), 30)
	}

	srv, hs := newIngestFixture(t, Config{WindowDur: goldenWindow})
	for _, d := range deliveries {
		resp, sum, err := postDelivery(t, hs.Client(), hs.URL, d)
		if err != nil {
			t.Fatalf("post %s/%s: %v", d.app, d.session, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post %s/%s: status %d", d.app, d.session, resp.StatusCode)
		}
		if sum.Episodes == 0 || sum.Records == 0 {
			t.Fatalf("post %s/%s: empty summary %+v", d.app, d.session, sum)
		}
	}
	if n := srv.Sessions(); n != 0 {
		t.Fatalf("%d sessions still live after all streams closed", n)
	}

	compareTables(t, srv.Tables(), batchReference(t, deliveries, goldenWindow))
}

// TestGoldenStreamedMatchesBatchUnderFaults re-runs the equivalence
// with every upload damaged by the fault injector in adversarial chunk
// shapes: mid-stream stalls, clean truncation at half the body, and
// seed-derived bit flips. The batch reference is rebuilt from the
// byte-exact damaged bodies the transport recorded, so the contract
// under test is: whatever bytes arrived, streamed == batch over those
// same salvaged bytes.
func TestGoldenStreamedMatchesBatchUnderFaults(t *testing.T) {
	faults := []faultinject.Fault{
		faultinject.FaultNone, faultinject.FaultStall,
		faultinject.FaultTruncate, faultinject.FaultCorrupt,
		faultinject.FaultCorrupt, faultinject.FaultTruncate,
	}
	var deliveries []delivery
	for i, app := range []string{"CrosswordSage", "Jmol", "Arabeske", "FindBugs", "Jmol", "CrosswordSage"} {
		deliveries = append(deliveries, delivery{
			app:     app,
			session: fmt.Sprintf("f%d", i),
			body:    encodeSession(t, app, uint64(71+i), 25),
		})
	}

	srv, hs := newIngestFixture(t, Config{
		WindowDur:   goldenWindow,
		ReadTimeout: 10 * time.Second, // stalls pause well under this
		IdleTimeout: time.Minute,
	})
	ft := &faultinject.FlakyTransport{
		RequestPlan: func(call int, req *http.Request) faultinject.Fault {
			return faults[(call-1)%len(faults)]
		},
		RecordBodies: true,
		Stall:        30 * time.Millisecond,
		Seed:         1234,
	}
	client := &http.Client{Transport: ft}

	for _, d := range deliveries {
		resp, sum, err := postDelivery(t, client, hs.URL, d)
		if err != nil {
			t.Fatalf("post %s/%s: %v", d.app, d.session, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post %s/%s: status %d (summary %+v)", d.app, d.session, resp.StatusCode, sum)
		}
	}
	if n := srv.Sessions(); n != 0 {
		t.Fatalf("%d sessions still live after all streams closed", n)
	}

	// Rebuild the reference from what was actually delivered.
	sent := ft.SentBodies()
	if len(sent) != len(deliveries) {
		t.Fatalf("transport recorded %d bodies, want %d", len(sent), len(deliveries))
	}
	var asArrived []delivery
	for i, sb := range sent {
		if !sb.Reliable {
			t.Fatalf("body %d (%s) not byte-reliable; the golden plan must only use none/stall/truncate/corrupt", i, sb.Fault)
		}
		parts := strings.Split(strings.TrimPrefix(sb.Path, "/ingest/"), "/")
		if len(parts) != 2 {
			t.Fatalf("unexpected recorded path %q", sb.Path)
		}
		asArrived = append(asArrived, delivery{app: parts[0], session: parts[1], body: sb.Body})
	}
	if ft.Injected() == 0 {
		t.Fatal("fault injector injected nothing")
	}

	compareTables(t, srv.Tables(), batchReference(t, asArrived, goldenWindow))
}

// TestGoldenAdversarialChunking streams one session byte-by-byte (the
// most hostile chunking possible) and in one giant write, pinning that
// chunk boundaries cannot change the aggregates.
func TestGoldenAdversarialChunking(t *testing.T) {
	body := encodeSession(t, "Jmol", 5, 20)
	srv, hs := newIngestFixture(t, Config{WindowDur: goldenWindow, IdleTimeout: time.Minute})

	// One-byte reads via an io.Reader that refuses to batch.
	resp, err := hs.Client().Post(hs.URL+"/ingest/Jmol/drip", "application/octet-stream",
		io.NopCloser(iotest(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drip-fed stream: status %d", resp.StatusCode)
	}

	if _, _, err := postDelivery(t, hs.Client(), hs.URL, delivery{app: "Jmol", session: "bulk", body: body}); err != nil {
		t.Fatal(err)
	}

	got := srv.Tables()
	want := batchReference(t, []delivery{
		{app: "Jmol", session: "drip", body: body},
		{app: "Jmol", session: "bulk", body: body},
	}, goldenWindow)
	compareTables(t, got, want)
}

// iotest returns a reader that yields one byte per Read call.
func iotest(data []byte) io.Reader { return &oneByteReader{data: data} }

type oneByteReader struct {
	data []byte
	off  int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	p[0] = r.data[r.off]
	r.off++
	return 1, nil
}
