package trace

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

// genTree builds a random properly nested interval tree rooted at a
// dispatch covering [start, start+dur).
func genTree(r *rand.Rand, start Time, dur Dur, depth int) *Interval {
	kind := KindDispatch
	if depth > 0 {
		kinds := []Kind{KindListener, KindPaint, KindNative, KindAsync, KindGC}
		kind = kinds[r.IntN(len(kinds))]
	}
	iv := &Interval{Kind: kind, Start: start, End: start.Add(dur)}
	if kind != KindGC && kind != KindDispatch {
		iv.Class, iv.Method = "c.C", "m"
	}
	if depth >= 4 || dur < Ms(2) {
		return iv
	}
	cursor := start
	for r.IntN(3) > 0 {
		gap := Dur(r.Int64N(int64(dur) / 8))
		cursor = cursor.Add(gap)
		remain := iv.End.Sub(cursor)
		if remain < Ms(0.5) {
			break
		}
		childDur := Dur(r.Int64N(int64(remain)))/2 + 1
		child := genTree(r, cursor, childDur, depth+1)
		iv.Children = append(iv.Children, child)
		cursor = child.End
	}
	return iv
}

func TestRandomTreeInvariants(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		r := rand.New(rand.NewPCG(seed, 99))
		root := genTree(r, Time(r.Int64N(int64(Second))), Ms(float64(10+r.IntN(500))), 0)

		if err := root.Validate(); err != nil {
			t.Fatalf("seed %d: generated tree invalid: %v", seed, err)
		}

		// KindTime partitions the root's duration exactly.
		var total Dur
		for _, d := range root.KindTime() {
			if d < 0 {
				t.Fatalf("seed %d: negative exclusive time", seed)
			}
			total += d
		}
		if total != root.Dur() {
			t.Fatalf("seed %d: KindTime sums to %v, root %v", seed, total, root.Dur())
		}

		// KindTimeIn over the full window equals KindTime; over split
		// windows it sums to the same.
		mid := root.Start.Add(root.Dur() / 3)
		left := root.KindTimeIn(root.Start, mid)
		right := root.KindTimeIn(mid, root.End)
		full := root.KindTime()
		for k := range full {
			if left[k]+right[k] != full[k] {
				t.Fatalf("seed %d: window split not additive for kind %v: %v + %v != %v",
					seed, Kind(k), left[k], right[k], full[k])
			}
		}

		// At/Path agreement at random probes: Path's last element is
		// At's result, every Path element contains the probe, and
		// each element is the child of its predecessor.
		for i := 0; i < 20; i++ {
			probe := root.Start.Add(Dur(r.Int64N(int64(root.Dur()))))
			at := root.At(probe)
			path := root.Path(probe)
			if at == nil || len(path) == 0 {
				t.Fatalf("seed %d: probe inside root not found", seed)
			}
			if path[len(path)-1] != at {
				t.Fatalf("seed %d: Path end != At", seed)
			}
			for j, n := range path {
				if !n.Contains(probe) {
					t.Fatalf("seed %d: path element %d does not contain probe", seed, j)
				}
				if j > 0 {
					found := false
					for _, c := range path[j-1].Children {
						if c == n {
							found = true
						}
					}
					if !found {
						t.Fatalf("seed %d: path element %d not a child of its predecessor", seed, j)
					}
				}
			}
		}

		// Clone is deep and equal.
		cp := root.Clone()
		if !reflect.DeepEqual(cp, root) {
			t.Fatalf("seed %d: clone differs", seed)
		}

		// Descendants equals the walk count minus one; depth bounds.
		n := 0
		maxDepth := 0
		root.Walk(func(_ *Interval, d int) bool {
			n++
			if d > maxDepth {
				maxDepth = d
			}
			return true
		})
		if root.Descendants() != n-1 {
			t.Fatalf("seed %d: Descendants %d != %d", seed, root.Descendants(), n-1)
		}
		if root.Depth() != maxDepth+1 {
			t.Fatalf("seed %d: Depth %d != %d", seed, root.Depth(), maxDepth+1)
		}
	}
}

func TestRandomTreeOutsideProbes(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	root := genTree(r, Time(Second), Ms(100), 0)
	if root.At(root.End) != nil || root.At(root.Start-1) != nil {
		t.Error("probes outside the root must return nil")
	}
}
