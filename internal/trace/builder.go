package trace

// NewInterval constructs an interval node. It is a convenience for
// building trees by hand (tests, examples, crafted sketches); the
// children must already be in start order.
func NewInterval(kind Kind, class, method string, start Time, dur Dur, children ...*Interval) *Interval {
	return &Interval{
		Kind:     kind,
		Class:    class,
		Method:   method,
		Start:    start,
		End:      start.Add(dur),
		Children: children,
	}
}

// NewGC constructs a GC interval (GC intervals carry no symbol).
func NewGC(start Time, dur Dur, major bool) *Interval {
	return &Interval{Kind: KindGC, Start: start, End: start.Add(dur), Major: major}
}

// AddChild appends child to iv.Children, keeping start order, and
// returns child. It panics if the child violates nesting with respect
// to the current last child or the parent bounds; hand-built trees
// should fail loudly rather than corrupt analyses.
func (iv *Interval) AddChild(child *Interval) *Interval {
	if child.Start < iv.Start || child.End > iv.End {
		panic("trace: AddChild: child escapes parent bounds")
	}
	if n := len(iv.Children); n > 0 && child.Start < iv.Children[n-1].End {
		panic("trace: AddChild: child overlaps previous sibling")
	}
	iv.Children = append(iv.Children, child)
	return child
}
