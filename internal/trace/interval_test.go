package trace

import (
	"strings"
	"testing"
)

// figure1Tree builds the episode of the paper's Figure 1: a 1705 ms
// dispatch whose entire duration is a JFrame.paint cascade, with an
// 843 ms native DrawLine call containing a 466 ms GC.
func figure1Tree() *Interval {
	root := NewInterval(KindDispatch, "", "dispatch", 0, Ms(1705))
	jframe := root.AddChild(NewInterval(KindPaint, "javax.swing.JFrame", "paint", 0, Ms(1705)))
	rootPane := jframe.AddChild(NewInterval(KindPaint, "javax.swing.JRootPane", "paint", Ms(10).asTime(), Ms(1690)))
	layered := rootPane.AddChild(NewInterval(KindPaint, "javax.swing.JLayeredPane", "paint", Ms(20).asTime(), Ms(1533)))
	toolbar := layered.AddChild(NewInterval(KindPaint, "javax.swing.JToolBar", "paint", Ms(100).asTime(), Ms(1347)))
	native := toolbar.AddChild(NewInterval(KindNative, "sun.java2d.loops.DrawLine", "DrawLine", Ms(430).asTime(), Ms(843)))
	native.AddChild(NewGC(Ms(600).asTime(), Ms(466), true))
	return root
}

func (d Dur) asTime() Time { return Time(d) }

func TestIntervalDurAndQualified(t *testing.T) {
	iv := NewInterval(KindListener, "java.awt.Button", "actionPerformed", Ms(5).asTime(), Ms(42))
	if got, want := iv.Dur(), Ms(42); got != want {
		t.Errorf("Dur = %v, want %v", got, want)
	}
	if got, want := iv.Qualified(), "java.awt.Button.actionPerformed"; got != want {
		t.Errorf("Qualified = %q, want %q", got, want)
	}
	gc := NewGC(0, Ms(10), false)
	if got, want := gc.Qualified(), "gc"; got != want {
		t.Errorf("GC Qualified = %q, want %q", got, want)
	}
}

func TestFigure1TreeShape(t *testing.T) {
	root := figure1Tree()
	if err := root.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := root.Descendants(), 6; got != want {
		t.Errorf("Descendants = %d, want %d", got, want)
	}
	if got, want := root.Depth(), 7; got != want {
		t.Errorf("Depth = %d, want %d", got, want)
	}
	if !root.HasKind(KindGC) {
		t.Error("tree should contain a GC interval")
	}
	native := root.FindKind(KindNative)
	if native == nil {
		t.Fatal("no native interval found")
	}
	if got, want := native.Dur(), Ms(843); got != want {
		t.Errorf("native Dur = %v, want %v", got, want)
	}
}

func TestWalkPreorderAndPruning(t *testing.T) {
	root := figure1Tree()
	var kinds []Kind
	root.Walk(func(n *Interval, depth int) bool {
		kinds = append(kinds, n.Kind)
		return true
	})
	want := []Kind{KindDispatch, KindPaint, KindPaint, KindPaint, KindPaint, KindNative, KindGC}
	if len(kinds) != len(want) {
		t.Fatalf("visited %d nodes, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("visit %d = %v, want %v", i, kinds[i], want[i])
		}
	}

	// Pruning at the native node must hide the GC below it.
	count := 0
	root.Walk(func(n *Interval, _ int) bool {
		count++
		return n.Kind != KindNative
	})
	if count != 6 {
		t.Errorf("pruned walk visited %d nodes, want 6", count)
	}
}

func TestAtAndPath(t *testing.T) {
	root := figure1Tree()

	// During the GC window the deepest interval is the GC itself.
	at := root.At(Ms(700).asTime())
	if at == nil || at.Kind != KindGC {
		t.Fatalf("At(700ms) = %v, want the GC interval", at)
	}
	path := root.Path(Ms(700).asTime())
	if len(path) != 7 {
		t.Fatalf("Path(700ms) length = %d, want 7", len(path))
	}
	if path[0].Kind != KindDispatch || path[6].Kind != KindGC {
		t.Errorf("Path endpoints wrong: %v .. %v", path[0].Kind, path[6].Kind)
	}

	// Before the toolbar paint we are inside the layered pane.
	at = root.At(Ms(50).asTime())
	if at == nil || at.Class != "javax.swing.JLayeredPane" {
		t.Errorf("At(50ms) = %v, want JLayeredPane.paint", at)
	}

	// Outside the root: nil.
	if root.At(Ms(2000).asTime()) != nil {
		t.Error("At beyond end should be nil")
	}
	if root.Path(Ms(-1).asTime()) != nil {
		t.Error("Path before start should be nil")
	}
	// End is exclusive.
	if root.At(Ms(1705).asTime()) != nil {
		t.Error("At(End) should be nil (half-open interval)")
	}
}

func TestKindTimeAccountsExclusiveTime(t *testing.T) {
	root := figure1Tree()
	acc := root.KindTime()

	var total Dur
	for _, d := range acc {
		total += d
	}
	if total != root.Dur() {
		t.Errorf("KindTime sums to %v, want root duration %v", total, root.Dur())
	}
	if got, want := acc[KindGC], Ms(466); got != want {
		t.Errorf("GC exclusive time = %v, want %v", got, want)
	}
	if got, want := acc[KindNative], Ms(843)-Ms(466); got != want {
		t.Errorf("native exclusive time = %v, want %v", got, want)
	}
	// Dispatch has one child covering it fully: zero exclusive time.
	if acc[KindDispatch] != 0 {
		t.Errorf("dispatch exclusive time = %v, want 0", acc[KindDispatch])
	}
}

func TestKindTimeInClipsToWindow(t *testing.T) {
	root := figure1Tree()

	// Window covering only the second half of the GC.
	acc := root.KindTimeIn(Ms(833).asTime(), Ms(1066).asTime())
	if got, want := acc[KindGC], Ms(233); got != want {
		t.Errorf("clipped GC time = %v, want %v", got, want)
	}
	var total Dur
	for _, d := range acc {
		total += d
	}
	if total != Ms(233) {
		t.Errorf("clipped total = %v, want %v", total, Ms(233))
	}

	// Full window equals KindTime.
	full := root.KindTimeIn(root.Start, root.End)
	if full != root.KindTime() {
		t.Errorf("KindTimeIn(full) = %v, want %v", full, root.KindTime())
	}

	// Empty window: all zero.
	empty := root.KindTimeIn(Ms(100).asTime(), Ms(100).asTime())
	for k, d := range empty {
		if d != 0 {
			t.Errorf("empty-window time for kind %v = %v, want 0", Kind(k), d)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	root := figure1Tree()
	cp := root.Clone()
	if cp == root {
		t.Fatal("Clone returned the receiver")
	}
	cp.Children[0].Class = "mutated"
	if root.Children[0].Class == "mutated" {
		t.Error("mutating the clone changed the original")
	}
	if cp.Descendants() != root.Descendants() {
		t.Error("clone has different shape")
	}
}

func TestValidateRejectsMalformedTrees(t *testing.T) {
	cases := []struct {
		name string
		tree *Interval
		want string
	}{
		{
			name: "end before start",
			tree: &Interval{Kind: KindDispatch, Start: 100, End: 50},
			want: "ends",
		},
		{
			name: "child escapes parent",
			tree: &Interval{Kind: KindDispatch, Start: 0, End: 100,
				Children: []*Interval{{Kind: KindPaint, Start: 50, End: 150}}},
			want: "escapes",
		},
		{
			name: "overlapping siblings",
			tree: &Interval{Kind: KindDispatch, Start: 0, End: 100, Children: []*Interval{
				{Kind: KindPaint, Start: 0, End: 60},
				{Kind: KindPaint, Start: 50, End: 100},
			}},
			want: "overlaps",
		},
		{
			name: "invalid kind",
			tree: &Interval{Kind: Kind(99), Start: 0, End: 1},
			want: "invalid interval kind",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tree.Validate()
			if err == nil {
				t.Fatal("Validate accepted a malformed tree")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestAddChildPanicsOnViolations(t *testing.T) {
	parent := NewInterval(KindDispatch, "", "", 0, Ms(100))
	parent.AddChild(NewInterval(KindPaint, "A", "paint", 0, Ms(50)))

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("escaping child", func() {
		parent.AddChild(NewInterval(KindPaint, "B", "paint", Ms(60).asTime(), Ms(100)))
	})
	mustPanic("overlapping sibling", func() {
		parent.AddChild(NewInterval(KindPaint, "C", "paint", Ms(40).asTime(), Ms(10)))
	})
}

func TestOutlineRendersEveryNode(t *testing.T) {
	out := figure1Tree().Outline()
	for _, want := range []string{"dispatch", "JFrame.paint", "JToolBar.paint", "DrawLine", "gc"} {
		if !strings.Contains(out, want) {
			t.Errorf("outline missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 7 {
		t.Errorf("outline has %d lines, want 7", got)
	}
}

func TestFindReturnsFirstPreorderMatch(t *testing.T) {
	root := figure1Tree()
	first := root.Find(func(n *Interval) bool { return n.Kind == KindPaint })
	if first == nil || first.Class != "javax.swing.JFrame" {
		t.Errorf("Find(paint) = %v, want JFrame.paint", first)
	}
	if root.Find(func(n *Interval) bool { return n.Kind == KindListener }) != nil {
		t.Error("Find(listener) should be nil")
	}
}
