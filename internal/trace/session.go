package trace

import (
	"fmt"
	"sort"
)

// DefaultPerceptibleThreshold is the episode duration beyond which lag
// is perceptible by a user. The paper follows Shneiderman's 100 ms
// threshold throughout.
const DefaultPerceptibleThreshold = 100 * Millisecond

// DefaultFilterThreshold is the tracing tool's episode filter: episodes
// shorter than this are dropped at trace time to reduce overhead, and
// only their count reaches LagAlyzer.
const DefaultFilterThreshold = 3 * Millisecond

// Episode is one user request handled on a GUI thread: the time
// interval from the point the request is dispatched until the point it
// is completed. Root is the episode's Dispatch interval; everything the
// system did to handle the request is nested below it.
type Episode struct {
	// Index is the episode's position in session order, counting only
	// traced (≥ filter threshold) episodes, starting at 0.
	Index int
	// Thread is the event dispatch thread that handled the request.
	Thread ThreadID
	// Root is the Dispatch interval; Root.Kind == KindDispatch.
	Root *Interval
}

// Start returns the dispatch time of the episode's request.
func (e *Episode) Start() Time { return e.Root.Start }

// End returns the completion time of the episode's request.
func (e *Episode) End() Time { return e.Root.End }

// Dur returns the episode's lag: the full duration of its handling.
func (e *Episode) Dur() Dur { return e.Root.Dur() }

// Perceptible reports whether the episode's lag exceeds the given
// threshold (DefaultPerceptibleThreshold in the paper's study).
func (e *Episode) Perceptible(threshold Dur) bool { return e.Dur() >= threshold }

// Structured reports whether the episode has any internal structure
// beyond incidental garbage collections: at least one non-GC child
// below the dispatch interval. Only structured episodes participate in
// pattern classification (paper, Section IV-A, column "#Eps").
func (e *Episode) Structured() bool {
	for _, c := range e.Root.Children {
		if c.Kind != KindGC {
			return true
		}
	}
	return false
}

// ThreadInfo describes one thread observed in a session.
type ThreadInfo struct {
	ID   ThreadID
	Name string
	// Daemon marks background/service threads (samplers ignore the
	// distinction; it is informational).
	Daemon bool
}

// Session is the complete trace of one interactive session with an
// application: its episodes (traced on the GUI thread), the periodic
// all-thread samples, session-wide GC spans, and bookkeeping about the
// tracing configuration.
type Session struct {
	// App is the application's display name (e.g. "JMol").
	App string
	// ID distinguishes the multiple sessions performed per application
	// (the study performs four).
	ID int
	// Start and End delimit the session; End-Start is the end-to-end
	// ("E2E") time of Table III.
	Start, End Time
	// GUIThread is the event dispatch thread whose dispatch intervals
	// define episodes.
	GUIThread ThreadID
	// Threads lists all threads observed in the trace.
	Threads []ThreadInfo
	// Episodes holds the traced episodes in start order. Episodes
	// shorter than FilterThreshold were dropped by the profiler and
	// are only counted in ShortCount.
	Episodes []*Episode
	// ShortCount is the number of episodes shorter than
	// FilterThreshold that the profiler observed but did not trace
	// (column "< 3ms" of Table III).
	ShortCount int
	// Ticks holds all sampling ticks in time order.
	Ticks []SampleTick
	// GCs lists every stop-the-world collection in the session (also
	// present as intervals inside episode trees when they overlap an
	// episode). Used for whole-session GC accounting.
	GCs []*Interval
	// FilterThreshold is the profiler's minimum traced episode
	// duration (DefaultFilterThreshold in the study).
	FilterThreshold Dur
	// SamplePeriod is the nominal interval between sampling ticks.
	SamplePeriod Dur
}

// E2E returns the session's end-to-end duration.
func (s *Session) E2E() Dur { return s.End.Sub(s.Start) }

// InEpisode returns the total time the system spent handling traced
// user requests. Together with E2E it yields Table III's "In-Eps"
// percentage.
func (s *Session) InEpisode() Dur {
	var total Dur
	for _, e := range s.Episodes {
		total += e.Dur()
	}
	return total
}

// InEpisodeFrac returns InEpisode as a fraction of E2E, or 0 for an
// empty session.
func (s *Session) InEpisodeFrac() float64 {
	e2e := s.E2E()
	if e2e <= 0 {
		return 0
	}
	return float64(s.InEpisode()) / float64(e2e)
}

// PerceptibleEpisodes returns the traced episodes whose lag is at least
// threshold, in session order.
func (s *Session) PerceptibleEpisodes(threshold Dur) []*Episode {
	var out []*Episode
	for _, e := range s.Episodes {
		if e.Perceptible(threshold) {
			out = append(out, e)
		}
	}
	return out
}

// TicksIn returns the sampling ticks with from ≤ time < to, as a
// subslice of s.Ticks (no copy). It requires s.Ticks to be sorted by
// time, which Validate enforces.
func (s *Session) TicksIn(from, to Time) []SampleTick {
	lo := sort.Search(len(s.Ticks), func(i int) bool { return s.Ticks[i].Time >= from })
	hi := sort.Search(len(s.Ticks), func(i int) bool { return s.Ticks[i].Time >= to })
	return s.Ticks[lo:hi]
}

// EpisodeTicks returns the sampling ticks that fell within episode e.
func (s *Session) EpisodeTicks(e *Episode) []SampleTick {
	return s.TicksIn(e.Start(), e.End())
}

// EpisodeAt returns the traced episode containing time t, if any.
func (s *Session) EpisodeAt(t Time) (*Episode, bool) {
	i := sort.Search(len(s.Episodes), func(i int) bool { return s.Episodes[i].End() > t })
	if i < len(s.Episodes) && s.Episodes[i].Root.Contains(t) {
		return s.Episodes[i], true
	}
	return nil, false
}

// ThreadByID returns the ThreadInfo for id, if present.
func (s *Session) ThreadByID(id ThreadID) (ThreadInfo, bool) {
	for _, t := range s.Threads {
		if t.ID == id {
			return t, true
		}
	}
	return ThreadInfo{}, false
}

// Validate checks session-level invariants: episode ordering and
// nesting, dispatch roots on the GUI thread, tick ordering, and GC span
// sanity. Analyses may assume these hold for any session produced by
// treebuild or the simulator.
func (s *Session) Validate() error {
	if s.End < s.Start {
		return fmt.Errorf("trace: session %s/%d ends before it starts", s.App, s.ID)
	}
	// Episodes of one thread never overlap; episodes of different
	// event dispatch threads may (the multi-EDT case of Section V).
	prevEnd := make(map[ThreadID]Time)
	for i, e := range s.Episodes {
		if e.Root == nil {
			return fmt.Errorf("trace: episode %d of %s/%d has no root interval", i, s.App, s.ID)
		}
		if e.Root.Kind != KindDispatch {
			return fmt.Errorf("trace: episode %d of %s/%d roots at %v, want dispatch", i, s.App, s.ID, e.Root.Kind)
		}
		if e.Index != i {
			return fmt.Errorf("trace: episode %d of %s/%d carries index %d", i, s.App, s.ID, e.Index)
		}
		if e.Start() < prevEnd[e.Thread] {
			return fmt.Errorf("trace: episode %d of %s/%d overlaps its predecessor on thread %d", i, s.App, s.ID, e.Thread)
		}
		if e.Start() < s.Start || e.End() > s.End {
			return fmt.Errorf("trace: episode %d of %s/%d escapes the session bounds", i, s.App, s.ID)
		}
		prevEnd[e.Thread] = e.End()
		if err := e.Root.Validate(); err != nil {
			return fmt.Errorf("episode %d of %s/%d: %w", i, s.App, s.ID, err)
		}
	}
	var prevTick Time = -1
	for i, tk := range s.Ticks {
		if tk.Time < prevTick {
			return fmt.Errorf("trace: tick %d of %s/%d out of order", i, s.App, s.ID)
		}
		prevTick = tk.Time
		for _, th := range tk.Threads {
			if !th.State.Valid() {
				return fmt.Errorf("trace: tick %d of %s/%d has invalid thread state", i, s.App, s.ID)
			}
		}
	}
	for i, gc := range s.GCs {
		if gc.Kind != KindGC {
			return fmt.Errorf("trace: session GC %d of %s/%d has kind %v", i, s.App, s.ID, gc.Kind)
		}
		if gc.End < gc.Start {
			return fmt.Errorf("trace: session GC %d of %s/%d ends before it starts", i, s.App, s.ID)
		}
	}
	return nil
}

// Suite groups the sessions recorded for one application. The study
// performs four similar sessions per application and reports averages
// across them.
type Suite struct {
	App      string
	Sessions []*Session
}

// Study is a full characterization run: one suite per application.
type Study struct {
	Suites []*Suite
}

// Sessions returns every session of every suite, in suite order.
func (st *Study) Sessions() []*Session {
	var out []*Session
	for _, su := range st.Suites {
		out = append(out, su.Sessions...)
	}
	return out
}
