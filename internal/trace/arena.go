package trace

// Slab hands out Session building blocks from chunked arenas. Session
// reconstruction allocates one Interval per call record and one
// ThreadSample slice per sample tick; drawing them from slabs
// amortizes the heap traffic to one allocation per chunk, which is
// what makes million-record ingests cheap. Objects handed out are
// never recycled — they stay live for the life of the session — so a
// Slab is strictly an allocation batcher, not a free-list, and the
// zero value is ready to use. Not safe for concurrent use; each
// session build owns its own Slab.
type Slab struct {
	intervals []Interval
	episodes  []Episode

	// samples is the current ThreadSample chunk with len = used. Tick
	// slices are windows into it; only the most recently returned
	// window (starting at open) may still grow.
	samples []ThreadSample
	open    int
}

const (
	intervalChunk = 512
	episodeChunk  = 64
	sampleChunk   = 1024
)

// Interval returns a pointer to a zeroed Interval that remains valid
// after the arena moves on.
func (s *Slab) Interval() *Interval {
	if len(s.intervals) == 0 {
		s.intervals = make([]Interval, intervalChunk)
	}
	iv := &s.intervals[0]
	s.intervals = s.intervals[1:]
	return iv
}

// Episode returns a pointer to a zeroed Episode.
func (s *Slab) Episode() *Episode {
	if len(s.episodes) == 0 {
		s.episodes = make([]Episode, episodeChunk)
	}
	e := &s.episodes[0]
	s.episodes = s.episodes[1:]
	return e
}

// AppendSample appends v to the tick slice ts and returns the grown
// slice. ts must be either empty (starting a new tick) or the slice
// most recently returned by AppendSample: record streams are
// time-ordered, so a session builder only ever grows its latest tick,
// and that is the invariant that lets consecutive ticks pack into one
// backing chunk. Returned slices are capped at their length, so an
// append by anyone other than the Slab copies instead of corrupting a
// neighbouring tick.
func (s *Slab) AppendSample(ts []ThreadSample, v ThreadSample) []ThreadSample {
	if len(ts) == 0 {
		if len(s.samples) == cap(s.samples) {
			s.samples = make([]ThreadSample, 0, sampleChunk)
		}
		s.open = len(s.samples)
		s.samples = append(s.samples, v)
		return s.samples[s.open:len(s.samples):len(s.samples)]
	}
	if len(s.samples) < cap(s.samples) && s.open+len(ts) == len(s.samples) {
		s.samples = append(s.samples, v)
		return s.samples[s.open:len(s.samples):len(s.samples)]
	}
	// Chunk exhausted mid-tick (or ts is not the open tick after all):
	// move the tick to a fresh chunk so it stays contiguous.
	n := sampleChunk
	if len(ts)+1 > n {
		n = 2 * (len(ts) + 1)
	}
	fresh := make([]ThreadSample, 0, n)
	fresh = append(fresh, ts...)
	fresh = append(fresh, v)
	s.samples = fresh
	s.open = 0
	return s.samples[0:len(fresh):len(fresh)]
}
