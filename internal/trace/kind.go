package trace

import "fmt"

// Kind identifies the type of an interval, following Table I of the
// paper. Every kind except GC corresponds to a method call/return pair
// recorded by the profiler; GC intervals bracket the stop-the-world
// phase of a collection and are copied into every thread's tree.
type Kind uint8

const (
	// KindDispatch is the root interval of an episode: from the point
	// a user request is dispatched until the request is completed.
	KindDispatch Kind = iota
	// KindListener is a listener notification call: the handling of
	// user input such as mouse and keyboard activity.
	KindListener
	// KindPaint is a graphics rendering operation: a call to a method
	// responsible for painting a GUI component.
	KindPaint
	// KindNative is a JNI native call. It distinguishes lag induced by
	// native libraries from lag induced by Java code.
	KindNative
	// KindAsync is the handling of a GUI event posted by a background
	// thread (timers, network callbacks, long-running computations).
	KindAsync
	// KindGC is a stop-the-world garbage collection. Per the JVMTI
	// specification the bracketed window covers only the phase where
	// all threads are stopped, not the safepoint ramp around it.
	KindGC

	numKinds = iota
)

var kindNames = [numKinds]string{
	KindDispatch: "dispatch",
	KindListener: "listener",
	KindPaint:    "paint",
	KindNative:   "native",
	KindAsync:    "async",
	KindGC:       "gc",
}

// Valid reports whether k is one of the defined interval kinds.
func (k Kind) Valid() bool { return int(k) < numKinds }

// String returns the lowercase name used in traces and in the paper's
// Table I ("dispatch", "listener", "paint", "native", "async", "gc").
func (k Kind) String() string {
	if !k.Valid() {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown interval kind %q", s)
}

// Kinds returns all defined interval kinds in declaration order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}
