// Package trace defines the in-memory representation of LiLa latency
// traces that LagAlyzer analyzes: nested interval trees per thread,
// periodic call-stack samples of all threads, episodes (the handling of
// one user request on the GUI thread), sessions, and suites of sessions.
//
// The model mirrors Section II of "LagAlyzer: A latency profile analysis
// and visualization tool" (Adamoli, Jovic, Hauswirth; ISPASS 2010):
//
//   - Intervals (Table I): Dispatch, Listener, Paint, Native, Async, GC.
//     Within one thread, intervals are properly nested: any two either
//     do not overlap, or one contains the other.
//   - Events: call-stack samples of all threads, taken periodically,
//     carrying a thread state (runnable, blocked, waiting, sleeping).
//     Sampling is suppressed while the world is stopped for GC.
//   - Episodes: a Dispatch interval on the GUI thread, from the point a
//     user request is dispatched until the request completes. Episodes
//     longer than a perceptibility threshold (100 ms in the paper) have
//     a negative impact on perceived performance.
//
// All timestamps are virtual nanoseconds since the start of the session
// (see Time); the package never consults the wall clock, which keeps
// simulation, encoding, and analysis fully deterministic.
package trace
