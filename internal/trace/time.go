package trace

import (
	"fmt"
	"time"
)

// Time is a point on the session timeline, expressed in nanoseconds
// since the start of the session. It is a virtual clock: traces and
// simulations never consult the wall clock.
type Time int64

// Dur is a span of session time in nanoseconds. It is layout-compatible
// with time.Duration but kept distinct so trace code cannot be fed
// wall-clock durations by accident.
type Dur int64

// Convenient duration units.
const (
	Nanosecond  Dur = 1
	Microsecond     = 1000 * Nanosecond
	Millisecond     = 1000 * Microsecond
	Second          = 1000 * Millisecond
	Minute          = 60 * Second
)

// Ms constructs a Dur from a (possibly fractional) number of
// milliseconds. It is the unit most of the paper is written in.
func Ms(ms float64) Dur { return Dur(ms * float64(Millisecond)) }

// Add returns the time d after t.
func (t Time) Add(d Dur) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Dur { return Dur(t - u) }

// Ms reports t as fractional milliseconds since session start.
func (t Time) Ms() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as fractional seconds since session start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as milliseconds, the paper's display unit.
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Ms()) }

// Ms reports the duration as fractional milliseconds.
func (d Dur) Ms() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports the duration as fractional seconds.
func (d Dur) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a time.Duration for interoperation with the
// standard library (formatting, sleeping in interactive tools).
func (d Dur) Std() time.Duration { return time.Duration(d) }

// String formats the duration compactly: microseconds below 1 ms,
// milliseconds below 10 s, seconds above.
func (d Dur) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Millisecond:
		return fmt.Sprintf("%dµs", int64(d)/int64(Microsecond))
	case d < 10*Second:
		return fmt.Sprintf("%.1fms", d.Ms())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Clamp limits d to the inclusive range [lo, hi].
func (d Dur) Clamp(lo, hi Dur) Dur {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
