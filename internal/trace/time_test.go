package trace

import (
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(Ms(100))
	if t1 != Time(100*Millisecond) {
		t.Errorf("Add = %v", t1)
	}
	if got := t1.Sub(t0); got != Ms(100) {
		t.Errorf("Sub = %v, want 100ms", got)
	}
	if got := t1.Ms(); got != 100 {
		t.Errorf("Ms = %v, want 100", got)
	}
	if got := Time(90 * Second).Seconds(); got != 90 {
		t.Errorf("Seconds = %v, want 90", got)
	}
}

func TestMsConstructsFractionalDurations(t *testing.T) {
	if got, want := Ms(0.5), 500*Microsecond; got != want {
		t.Errorf("Ms(0.5) = %v, want %v", got, want)
	}
	if got, want := Ms(1705), 1705*Millisecond; got != want {
		t.Errorf("Ms(1705) = %v, want %v", got, want)
	}
}

func TestDurString(t *testing.T) {
	cases := []struct {
		d    Dur
		want string
	}{
		{500 * Microsecond, "500µs"},
		{Ms(1.5), "1.5ms"},
		{Ms(100), "100.0ms"},
		{12 * Second, "12.00s"},
		{-Ms(3), "-3.0ms"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tc.d), got, tc.want)
		}
	}
}

func TestDurClamp(t *testing.T) {
	if got := Ms(5).Clamp(Ms(10), Ms(20)); got != Ms(10) {
		t.Errorf("clamp low = %v", got)
	}
	if got := Ms(50).Clamp(Ms(10), Ms(20)); got != Ms(20) {
		t.Errorf("clamp high = %v", got)
	}
	if got := Ms(15).Clamp(Ms(10), Ms(20)); got != Ms(15) {
		t.Errorf("clamp mid = %v", got)
	}
}

func TestTimeAddSubRoundTripProperty(t *testing.T) {
	f := func(base int64, delta int32) bool {
		t0 := Time(base % (1 << 40))
		d := Dur(delta)
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindStringParseRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %v", k, got)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus kind")
	}
	if Kind(200).Valid() {
		t.Error("Kind(200) should be invalid")
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("invalid kind String = %q", got)
	}
}

func TestThreadStateStringParseRoundTrip(t *testing.T) {
	for _, s := range ThreadStates() {
		got, err := ParseThreadState(s.String())
		if err != nil {
			t.Fatalf("ParseThreadState(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
	if _, err := ParseThreadState("zombie"); err == nil {
		t.Error("ParseThreadState accepted bogus state")
	}
	if ThreadState(9).Valid() {
		t.Error("ThreadState(9) should be invalid")
	}
}
