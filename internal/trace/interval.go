package trace

import (
	"fmt"
	"strings"
)

// Interval is one node of a thread's interval tree: an activity with a
// start and end time stamp, a kind, and — for all kinds except GC —
// the symbolic information (class and method) of the call it brackets.
//
// Children are stored in start-time order and are properly nested
// within their parent: they do not overlap each other and lie entirely
// within [Start, End]. Validate checks these invariants.
type Interval struct {
	Kind   Kind
	Class  string // fully qualified class name ("" for GC intervals)
	Method string // method name ("" for GC intervals)
	Start  Time
	End    Time
	// Major marks a GC interval as a major (full-heap) collection.
	// It is informational only; pattern classification ignores GC
	// nodes entirely.
	Major    bool
	Children []*Interval
}

// Dur returns the interval's total (inclusive) duration.
func (iv *Interval) Dur() Dur { return iv.End.Sub(iv.Start) }

// Qualified returns "Class.Method", or the kind name when the interval
// carries no symbol (GC intervals).
func (iv *Interval) Qualified() string {
	if iv.Class == "" && iv.Method == "" {
		return iv.Kind.String()
	}
	if iv.Class == "" {
		return iv.Method
	}
	return iv.Class + "." + iv.Method
}

// Contains reports whether t lies within the interval, treating the
// interval as half-open [Start, End). Zero-length intervals contain
// nothing.
func (iv *Interval) Contains(t Time) bool { return t >= iv.Start && t < iv.End }

// Walk visits the interval and its descendants in preorder (parent
// before children, children in start-time order). depth is 0 for the
// receiver. If fn returns false the subtree below the visited node is
// skipped (the walk itself continues with siblings).
func (iv *Interval) Walk(fn func(node *Interval, depth int) bool) {
	iv.walk(0, fn)
}

func (iv *Interval) walk(depth int, fn func(*Interval, int) bool) {
	if !fn(iv, depth) {
		return
	}
	for _, c := range iv.Children {
		c.walk(depth+1, fn)
	}
}

// Descendants counts the nodes strictly below the interval. The paper's
// "Descs" column in Table III is this count on dispatch intervals.
func (iv *Interval) Descendants() int {
	n := 0
	iv.Walk(func(*Interval, int) bool { n++; return true })
	return n - 1
}

// Depth returns the height of the tree rooted at the interval: 1 for a
// leaf. The paper's "Depth" column in Table III is this value on
// dispatch intervals.
func (iv *Interval) Depth() int {
	d := 0
	iv.Walk(func(_ *Interval, depth int) bool {
		if depth+1 > d {
			d = depth + 1
		}
		return true
	})
	return d
}

// At returns the deepest interval in the tree containing time t, or nil
// if t lies outside the receiver. It is the primitive behind episode
// sketch hover and sample attribution.
func (iv *Interval) At(t Time) *Interval {
	if !iv.Contains(t) {
		return nil
	}
	node := iv
descend:
	for {
		for _, c := range node.Children {
			if c.Contains(t) {
				node = c
				continue descend
			}
			if c.Start > t {
				break
			}
		}
		return node
	}
}

// Path returns the chain of intervals from the receiver down to the
// deepest interval containing t, or nil if t lies outside the receiver.
func (iv *Interval) Path(t Time) []*Interval {
	if !iv.Contains(t) {
		return nil
	}
	var path []*Interval
	node := iv
descend:
	for {
		path = append(path, node)
		for _, c := range node.Children {
			if c.Contains(t) {
				node = c
				continue descend
			}
			if c.Start > t {
				break
			}
		}
		return path
	}
}

// KindTime accumulates, for every interval kind, the exclusive time
// spent in intervals of that kind within the tree: time covered by a
// node but not by any of its children. Summed over all kinds this
// equals the root's duration. It is the accounting behind Figure 6's
// GC and native fractions.
func (iv *Interval) KindTime() [numKinds]Dur {
	var acc [numKinds]Dur
	iv.Walk(func(n *Interval, _ int) bool {
		self := n.Dur()
		for _, c := range n.Children {
			self -= c.Dur()
		}
		acc[n.Kind] += self
		return true
	})
	return acc
}

// KindTimeIn is like KindTime but restricted to the window [from, to).
// Intervals are clipped against the window before their exclusive time
// is accumulated.
func (iv *Interval) KindTimeIn(from, to Time) [numKinds]Dur {
	var acc [numKinds]Dur
	iv.Walk(func(n *Interval, _ int) bool {
		s, e := clip(n.Start, n.End, from, to)
		if e <= s {
			return false
		}
		self := e.Sub(s)
		for _, c := range n.Children {
			cs, ce := clip(c.Start, c.End, from, to)
			self -= ce.Sub(cs)
		}
		acc[n.Kind] += self
		return true
	})
	return acc
}

func clip(s, e, from, to Time) (Time, Time) {
	if s < from {
		s = from
	}
	if e > to {
		e = to
	}
	if e < s {
		e = s
	}
	return s, e
}

// Find returns the first interval in preorder for which match returns
// true, or nil.
func (iv *Interval) Find(match func(*Interval) bool) *Interval {
	var found *Interval
	iv.Walk(func(n *Interval, _ int) bool {
		if found != nil {
			return false
		}
		if match(n) {
			found = n
			return false
		}
		return true
	})
	return found
}

// FindKind returns the first interval of kind k in preorder, or nil.
func (iv *Interval) FindKind(k Kind) *Interval {
	return iv.Find(func(n *Interval) bool { return n.Kind == k })
}

// HasKind reports whether the tree contains an interval of kind k
// (including the receiver).
func (iv *Interval) HasKind(k Kind) bool { return iv.FindKind(k) != nil }

// Clone returns a deep copy of the tree.
func (iv *Interval) Clone() *Interval {
	cp := *iv
	if iv.Children != nil {
		cp.Children = make([]*Interval, len(iv.Children))
		for i, c := range iv.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return &cp
}

// Validate checks the structural invariants the profiler guarantees
// (Section II-A of the paper): end ≥ start everywhere, children in
// start order, children properly nested within their parent, and
// siblings non-overlapping. It returns the first violation found.
func (iv *Interval) Validate() error {
	if !iv.Kind.Valid() {
		return fmt.Errorf("trace: invalid interval kind %d", iv.Kind)
	}
	if iv.End < iv.Start {
		return fmt.Errorf("trace: interval %s ends (%v) before it starts (%v)", iv.Qualified(), iv.End, iv.Start)
	}
	prevEnd := iv.Start
	for i, c := range iv.Children {
		if c.Start < iv.Start || c.End > iv.End {
			return fmt.Errorf("trace: child %s [%v,%v] escapes parent %s [%v,%v]",
				c.Qualified(), c.Start, c.End, iv.Qualified(), iv.Start, iv.End)
		}
		if c.Start < prevEnd {
			return fmt.Errorf("trace: child %d (%s) of %s overlaps its predecessor", i, c.Qualified(), iv.Qualified())
		}
		prevEnd = c.End
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// String renders a compact single-line summary of the root node.
func (iv *Interval) String() string {
	return fmt.Sprintf("%s %s [%v +%v]", iv.Kind, iv.Qualified(), iv.Start, iv.Dur())
}

// Outline renders the tree as an indented multi-line outline, one node
// per line with kind, symbol, and duration. It is the plain-text
// sibling of the episode sketch.
func (iv *Interval) Outline() string {
	var b strings.Builder
	iv.Walk(func(n *Interval, depth int) bool {
		fmt.Fprintf(&b, "%s%s %s (%v)\n", strings.Repeat("  ", depth), n.Kind, n.Qualified(), n.Dur())
		return true
	})
	return b.String()
}
