package trace

import (
	"strings"
	"testing"
)

// testSession builds a small two-episode session with samples.
func testSession() *Session {
	ep0 := &Episode{Index: 0, Thread: 1,
		Root: NewInterval(KindDispatch, "", "", Time(Second), Ms(50),
			NewInterval(KindListener, "app.Button", "click", Time(Second), Ms(50)))}
	ep1 := &Episode{Index: 1, Thread: 1,
		Root: NewInterval(KindDispatch, "", "", Time(2*Second), Ms(400),
			NewInterval(KindPaint, "javax.swing.JPanel", "paint", Time(2*Second), Ms(400)))}
	s := &Session{
		App:             "TestApp",
		ID:              0,
		Start:           0,
		End:             Time(10 * Second),
		GUIThread:       1,
		Threads:         []ThreadInfo{{ID: 1, Name: "AWT-EventQueue-0"}, {ID: 2, Name: "worker", Daemon: true}},
		Episodes:        []*Episode{ep0, ep1},
		ShortCount:      1234,
		FilterThreshold: DefaultFilterThreshold,
		SamplePeriod:    10 * Millisecond,
	}
	for ts := Time(0); ts < s.End; ts = ts.Add(100 * Millisecond) {
		s.Ticks = append(s.Ticks, SampleTick{
			Time: ts,
			Threads: []ThreadSample{
				{Thread: 1, State: StateRunnable, Stack: []Frame{{Class: "app.Main", Method: "run"}}},
				{Thread: 2, State: StateWaiting},
			},
		})
	}
	return s
}

func TestSessionDurationsAndFractions(t *testing.T) {
	s := testSession()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := s.E2E(), 10*Second; got != want {
		t.Errorf("E2E = %v, want %v", got, want)
	}
	if got, want := s.InEpisode(), Ms(450); got != want {
		t.Errorf("InEpisode = %v, want %v", got, want)
	}
	if got, want := s.InEpisodeFrac(), 0.045; got != want {
		t.Errorf("InEpisodeFrac = %v, want %v", got, want)
	}
}

func TestPerceptibleEpisodes(t *testing.T) {
	s := testSession()
	long := s.PerceptibleEpisodes(DefaultPerceptibleThreshold)
	if len(long) != 1 || long[0].Index != 1 {
		t.Fatalf("PerceptibleEpisodes = %v, want just episode 1", long)
	}
	if !long[0].Perceptible(DefaultPerceptibleThreshold) {
		t.Error("episode 1 should be perceptible at 100ms")
	}
	if long[0].Perceptible(Ms(500)) {
		t.Error("episode 1 should not be perceptible at 500ms")
	}
	// Exactly at the threshold counts as perceptible (≥).
	e := &Episode{Root: NewInterval(KindDispatch, "", "", 0, Ms(100))}
	if !e.Perceptible(Ms(100)) {
		t.Error("episode exactly at the threshold should be perceptible")
	}
}

func TestStructured(t *testing.T) {
	childless := &Episode{Root: NewInterval(KindDispatch, "", "", 0, Ms(200))}
	if childless.Structured() {
		t.Error("childless episode should not be structured")
	}
	gcOnly := &Episode{Root: NewInterval(KindDispatch, "", "", 0, Ms(500),
		NewGC(Ms(10).asTime(), Ms(400), true))}
	if gcOnly.Structured() {
		t.Error("episode with only a GC child should not be structured (paper §IV-A)")
	}
	mixed := &Episode{Root: NewInterval(KindDispatch, "", "", 0, Ms(500),
		NewGC(Ms(10).asTime(), Ms(100), false),
		NewInterval(KindPaint, "a.B", "paint", Ms(200).asTime(), Ms(100)))}
	if !mixed.Structured() {
		t.Error("episode with a non-GC child should be structured")
	}
}

func TestTicksInUsesHalfOpenWindow(t *testing.T) {
	s := testSession()
	got := s.TicksIn(Time(Second), Time(Second).Add(Ms(300)))
	if len(got) != 3 {
		t.Fatalf("TicksIn returned %d ticks, want 3", len(got))
	}
	if got[0].Time != Time(Second) {
		t.Errorf("first tick at %v, want 1s", got[0].Time)
	}
	if len(s.TicksIn(Time(100*Second), Time(200*Second))) != 0 {
		t.Error("window beyond session should be empty")
	}
}

func TestEpisodeTicks(t *testing.T) {
	s := testSession()
	ticks := s.EpisodeTicks(s.Episodes[1]) // [2s, 2.4s)
	if len(ticks) != 4 {
		t.Fatalf("EpisodeTicks = %d ticks, want 4", len(ticks))
	}
}

func TestEpisodeAt(t *testing.T) {
	s := testSession()
	if e, ok := s.EpisodeAt(Time(2 * Second).Add(Ms(10))); !ok || e.Index != 1 {
		t.Errorf("EpisodeAt(2.01s) = %v,%v; want episode 1", e, ok)
	}
	if _, ok := s.EpisodeAt(Time(5 * Second)); ok {
		t.Error("EpisodeAt between episodes should report false")
	}
	if _, ok := s.EpisodeAt(0); ok {
		t.Error("EpisodeAt before first episode should report false")
	}
}

func TestThreadByID(t *testing.T) {
	s := testSession()
	info, ok := s.ThreadByID(2)
	if !ok || info.Name != "worker" || !info.Daemon {
		t.Errorf("ThreadByID(2) = %+v, %v", info, ok)
	}
	if _, ok := s.ThreadByID(99); ok {
		t.Error("ThreadByID(99) should report false")
	}
}

func TestSampleTickRunnableAndThread(t *testing.T) {
	tick := testSession().Ticks[0]
	if got := tick.Runnable(); got != 1 {
		t.Errorf("Runnable = %d, want 1", got)
	}
	ts, ok := tick.Thread(2)
	if !ok || ts.State != StateWaiting {
		t.Errorf("Thread(2) = %+v, %v", ts, ok)
	}
	if _, ok := tick.Thread(42); ok {
		t.Error("Thread(42) should report false")
	}
}

func TestSampleTickScanThread(t *testing.T) {
	tick := testSession().Ticks[0]
	runnable, idx := tick.ScanThread(2)
	if runnable != tick.Runnable() {
		t.Errorf("ScanThread runnable = %d, want %d", runnable, tick.Runnable())
	}
	want, _ := tick.Thread(2)
	if idx < 0 || tick.Threads[idx].State != want.State {
		t.Errorf("ScanThread idx = %d (%+v), want state %v", idx, tick.Threads[idx], want.State)
	}
	if _, idx := tick.ScanThread(42); idx != -1 {
		t.Errorf("ScanThread(42) idx = %d, want -1", idx)
	}
}

func TestThreadSampleLeafAndStackString(t *testing.T) {
	ts := ThreadSample{Stack: []Frame{
		{Class: "sun.java2d.loops.DrawLine", Method: "DrawLine", Native: true},
		{Class: "javax.swing.JComponent", Method: "paint"},
	}}
	leaf, ok := ts.Leaf()
	if !ok || leaf.Class != "sun.java2d.loops.DrawLine" || !leaf.Native {
		t.Errorf("Leaf = %+v, %v", leaf, ok)
	}
	str := ts.StackString()
	if !strings.Contains(str, "(native)") || !strings.Contains(str, "at javax.swing.JComponent.paint") {
		t.Errorf("StackString = %q", str)
	}
	empty := ThreadSample{}
	if _, ok := empty.Leaf(); ok {
		t.Error("empty sample should have no leaf")
	}
	if empty.StackString() != "<no stack>" {
		t.Errorf("empty StackString = %q", empty.StackString())
	}
}

func TestSessionValidateRejectsBadSessions(t *testing.T) {
	mutate := []struct {
		name string
		fn   func(*Session)
		want string
	}{
		{"end before start", func(s *Session) { s.End = -1 }, "ends before"},
		{"non-dispatch root", func(s *Session) { s.Episodes[0].Root.Kind = KindPaint }, "want dispatch"},
		{"wrong index", func(s *Session) { s.Episodes[1].Index = 7 }, "carries index"},
		{"overlapping episodes", func(s *Session) {
			s.Episodes[1].Root.Start = s.Episodes[0].Root.End - 1
			s.Episodes[1].Root.Children = nil
		}, "overlaps"},
		{"episode escapes session", func(s *Session) {
			s.End = s.Episodes[1].Root.End - 1
		}, "escapes the session"},
		{"nil root", func(s *Session) { s.Episodes[0].Root = nil }, "no root"},
		{"unordered ticks", func(s *Session) { s.Ticks[3].Time = 0 }, "out of order"},
		{"invalid sample state", func(s *Session) { s.Ticks[0].Threads[0].State = 99 }, "invalid thread state"},
		{"bad session GC kind", func(s *Session) {
			s.GCs = append(s.GCs, NewInterval(KindPaint, "x", "y", 0, 1))
		}, "has kind"},
		{"negative session GC", func(s *Session) {
			s.GCs = append(s.GCs, &Interval{Kind: KindGC, Start: 10, End: 5})
		}, "ends before"},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			s := testSession()
			tc.fn(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted a corrupted session")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestStudySessions(t *testing.T) {
	st := &Study{Suites: []*Suite{
		{App: "A", Sessions: []*Session{testSession(), testSession()}},
		{App: "B", Sessions: []*Session{testSession()}},
	}}
	if got := len(st.Sessions()); got != 3 {
		t.Errorf("Study.Sessions = %d, want 3", got)
	}
}
