package trace

import (
	"fmt"
	"strings"
)

// ThreadID identifies a thread within a session. The event dispatch
// (GUI) thread of a session is identified by Session.GUIThread.
type ThreadID int32

// ThreadState is the scheduling state of a thread at the moment a
// call-stack sample was taken. The states follow the paper's Figure 8
// taxonomy, which itself follows java.lang.Thread.State:
// blocked = trying to enter a contended monitor, waiting = parked in
// Object.wait()/LockSupport.park(), sleeping = Thread.sleep.
type ThreadState uint8

const (
	// StateRunnable means the thread was runnable (not necessarily
	// running: it may have been ready but waiting for a CPU).
	StateRunnable ThreadState = iota
	// StateBlocked means the thread was blocked entering a monitor.
	StateBlocked
	// StateWaiting means the thread was waiting in Object.wait() or
	// LockSupport.park().
	StateWaiting
	// StateSleeping means the thread was voluntarily sleeping in
	// Thread.sleep.
	StateSleeping

	numStates = iota
)

var stateNames = [numStates]string{
	StateRunnable: "runnable",
	StateBlocked:  "blocked",
	StateWaiting:  "waiting",
	StateSleeping: "sleeping",
}

// Valid reports whether s is one of the defined thread states.
func (s ThreadState) Valid() bool { return int(s) < numStates }

// String returns the lowercase state name.
func (s ThreadState) String() string {
	if !s.Valid() {
		return fmt.Sprintf("state(%d)", uint8(s))
	}
	return stateNames[s]
}

// ParseThreadState is the inverse of ThreadState.String.
func ParseThreadState(s string) (ThreadState, error) {
	for st, name := range stateNames {
		if s == name {
			return ThreadState(st), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown thread state %q", s)
}

// ThreadStates returns all defined states in declaration order.
func ThreadStates() []ThreadState {
	ss := make([]ThreadState, numStates)
	for i := range ss {
		ss[i] = ThreadState(i)
	}
	return ss
}

// Frame is one entry of a sampled call stack. Frames carry the fully
// qualified class name and method name; Native marks frames executing
// native (JNI) code.
type Frame struct {
	Class  string
	Method string
	Native bool
}

// String formats the frame as "Class.Method" with a native marker.
func (f Frame) String() string {
	s := f.Class + "." + f.Method
	if f.Native {
		s += " (native)"
	}
	return s
}

// ThreadSample is the sampled state of one thread at one sampling tick:
// its scheduling state and its call stack, leaf (innermost) frame
// first.
type ThreadSample struct {
	Thread ThreadID
	State  ThreadState
	Stack  []Frame
}

// Leaf returns the innermost frame, i.e. the method that was executing
// when the sample was taken, and reports whether the stack was
// non-empty. The paper's application-vs-library partition (Figure 6)
// classifies samples by the class of this frame.
func (ts ThreadSample) Leaf() (Frame, bool) {
	if len(ts.Stack) == 0 {
		return Frame{}, false
	}
	return ts.Stack[0], true
}

// StackString renders the stack top-down ("leaf\n  at caller\n ..."),
// the format shown by episode-sketch hover.
func (ts ThreadSample) StackString() string {
	if len(ts.Stack) == 0 {
		return "<no stack>"
	}
	var b strings.Builder
	for i, f := range ts.Stack {
		if i > 0 {
			b.WriteString("\n  at ")
		}
		b.WriteString(f.String())
	}
	return b.String()
}

// SampleTick is one firing of the periodic sampler: the simultaneous
// call-stack samples of all live threads. Ticks are absent entirely
// while the world is stopped for garbage collection (the JVMTI-based
// sampler is itself a mutator), which is visible as the sample gap in
// the paper's Figure 1.
type SampleTick struct {
	Time    Time
	Threads []ThreadSample
}

// Runnable counts the threads that were runnable at this tick — the
// concurrency measure of Figure 7.
func (st SampleTick) Runnable() int {
	n := 0
	for _, t := range st.Threads {
		if t.State == StateRunnable {
			n++
		}
	}
	return n
}

// ScanThread combines Runnable and Thread in a single pass over the
// tick's samples: it returns the number of runnable threads and the
// index into st.Threads of the sample belonging to id (-1 when id was
// not sampled at this tick). The fused analysis engine uses it to feed
// the concurrency, cause, and location analyses from one scan.
func (st SampleTick) ScanThread(id ThreadID) (runnable, idx int) {
	idx = -1
	for i := range st.Threads {
		t := &st.Threads[i]
		if t.State == StateRunnable {
			runnable++
		}
		if t.Thread == id {
			idx = i
		}
	}
	return runnable, idx
}

// Thread returns the sample of the given thread at this tick, if
// present.
func (st SampleTick) Thread(id ThreadID) (ThreadSample, bool) {
	for _, t := range st.Threads {
		if t.Thread == id {
			return t, true
		}
	}
	return ThreadSample{}, false
}
