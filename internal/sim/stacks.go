package sim

import (
	"math/rand/v2"

	"lagalyzer/internal/trace"
)

// Synthetic call-stack construction. Samples are leaf-first; a
// GUI-thread stack consists of a state-specific leaf, the open
// intervals' frames (deepest first), and the event-dispatch base
// frames every EDT stack bottoms out in.

var edtBaseFrames = []trace.Frame{
	{Class: "java.awt.EventQueue", Method: "dispatchEvent"},
	{Class: "java.awt.EventDispatchThread", Method: "pumpOneEventForFilters"},
	{Class: "java.awt.EventDispatchThread", Method: "run"},
}

var idleGUIStack = []trace.Frame{
	{Class: "java.lang.Object", Method: "wait", Native: true},
	{Class: "java.awt.EventQueue", Method: "getNextEvent"},
	{Class: "java.awt.EventDispatchThread", Method: "pumpOneEventForFilters"},
	{Class: "java.awt.EventDispatchThread", Method: "run"},
}

var sleepLeaf = trace.Frame{Class: "java.lang.Thread", Method: "sleep", Native: true}
var waitLeaf = trace.Frame{Class: "java.lang.Object", Method: "wait", Native: true}

// libraryLeaves is the pool of runtime-library methods synthetic
// runnable samples land in.
var libraryLeaves = []trace.Frame{
	{Class: "javax.swing.JComponent", Method: "paintComponent"},
	{Class: "javax.swing.RepaintManager", Method: "paintDirtyRegions"},
	{Class: "javax.swing.plaf.basic.BasicGraphicsUtils", Method: "drawString"},
	{Class: "java.util.HashMap", Method: "get"},
	{Class: "java.lang.String", Method: "indexOf"},
	{Class: "java.lang.StringBuilder", Method: "append"},
	{Class: "sun.java2d.SunGraphics2D", Method: "drawLine"},
	{Class: "sun.font.GlyphLayout", Method: "layout"},
	{Class: "java.awt.Container", Method: "doLayout"},
	{Class: "java.util.Arrays", Method: "sort"},
}

// appLeafMethods is the pool of application-code method names;
// classes are prefixed with the profile's AppPackage.
var appLeafMethods = []struct{ Class, Method string }{
	{"Model", "update"},
	{"View", "render"},
	{"Controller", "handle"},
	{"Document", "parse"},
	{"Layout", "compute"},
	{"Editor", "applyEdit"},
	{"Index", "lookup"},
	{"Shape", "contains"},
}

// defaultWorkerStack is the sampled stack of a runnable background
// thread that does not declare its own.
func defaultWorkerStack(appPackage string) []trace.Frame {
	return []trace.Frame{
		{Class: appPackage + ".Worker", Method: "process"},
		{Class: appPackage + ".Worker", Method: "run"},
		{Class: "java.lang.Thread", Method: "run"},
	}
}

var parkedWorkerStack = []trace.Frame{
	{Class: "java.util.concurrent.locks.LockSupport", Method: "park", Native: true},
	{Class: "java.util.concurrent.LinkedBlockingQueue", Method: "take"},
	{Class: "java.lang.Thread", Method: "run"},
}

// stackCtx is one open interval on the executor's shadow stack.
type stackCtx struct {
	frame   trace.Frame
	extra   []trace.Frame
	libFrac float64 // effective library fraction for runnable leaves
}

// appLeafFrames resolves the application leaf pool against a concrete
// AppPackage once per simulation, so per-sample leaf synthesis is a
// table lookup rather than a string concatenation.
func appLeafFrames(appPackage string) []trace.Frame {
	fs := make([]trace.Frame, len(appLeafMethods))
	for i, m := range appLeafMethods {
		fs[i] = trace.Frame{Class: appPackage + "." + m.Class, Method: m.Method}
	}
	return fs
}

// buildGUIStack synthesizes the GUI thread's sampled stack for the
// given state with the given open-interval contexts (outermost first),
// appending the frames to dst. The caller owns dst and copies the
// result out before reusing it.
func buildGUIStack(dst []trace.Frame, r *rand.Rand, state trace.ThreadState, ctxs []stackCtx, appLeaves []trace.Frame) []trace.Frame {
	if len(ctxs) == 0 {
		return append(dst, idleGUIStack...)
	}
	top := ctxs[len(ctxs)-1]

	switch state {
	case trace.StateSleeping:
		dst = append(dst, sleepLeaf)
		dst = append(dst, top.extra...)
	case trace.StateWaiting:
		dst = append(dst, waitLeaf)
		dst = append(dst, top.extra...)
	case trace.StateBlocked:
		// Blocked entering a monitor: the leaf is the Java frame
		// attempting the entry — the node's context frame when it
		// declares one, a synthesized frame otherwise.
		if len(top.extra) > 0 {
			dst = append(dst, top.extra...)
		} else {
			dst = append(dst, synthLeaf(r, top.libFrac, appLeaves))
		}
	default: // runnable
		if top.frame.Native {
			// Executing native code: the native frame itself leads.
		} else {
			// The executing method leads; context frames follow.
			dst = append(dst, synthLeaf(r, top.libFrac, appLeaves))
			dst = append(dst, top.extra...)
		}
	}

	for i := len(ctxs) - 1; i >= 0; i-- {
		dst = append(dst, ctxs[i].frame)
	}
	return append(dst, edtBaseFrames...)
}

// synthLeaf draws a leaf frame: library code with probability libFrac,
// application code otherwise.
func synthLeaf(r *rand.Rand, libFrac float64, appLeaves []trace.Frame) trace.Frame {
	if r.Float64() < libFrac {
		return libraryLeaves[r.IntN(len(libraryLeaves))]
	}
	return appLeaves[r.IntN(len(appLeaves))]
}
