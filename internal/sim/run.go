package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"

	"lagalyzer/internal/lila"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
)

// guiThreadID is the event dispatch thread's ID in simulated traces;
// background threads count up from it.
const guiThreadID trace.ThreadID = 1

// Run simulates one session and returns it rebuilt through the same
// treebuild path real traces take.
func Run(cfg Config) (*trace.Session, error) {
	recs, h, err := Records(cfg)
	if err != nil {
		return nil, err
	}
	s, _, err := treebuild.BuildRecords(h, recs)
	return s, err
}

// Records simulates one session and returns its raw record stream and
// header — what the LiLa profiler would have produced.
func Records(cfg Config) ([]*lila.Record, lila.Header, error) {
	if err := validate(cfg); err != nil {
		return nil, lila.Header{}, err
	}
	s := newSimulation(cfg)
	s.run()
	return s.recs, s.header(), nil
}

func validate(cfg Config) error {
	p := cfg.Profile
	if p == nil {
		return fmt.Errorf("sim: config has no profile")
	}
	if p.Name == "" {
		return fmt.Errorf("sim: profile has no name")
	}
	if len(p.UserBehaviors) == 0 && len(p.Timers) == 0 {
		return fmt.Errorf("sim: profile %s has neither user behaviors nor timers", p.Name)
	}
	if p.SessionSeconds <= 0 && cfg.SessionSeconds <= 0 {
		return fmt.Errorf("sim: profile %s has no session length", p.Name)
	}
	check := func(b *Behavior, role string) error {
		if b == nil {
			return fmt.Errorf("sim: profile %s has a nil %s behavior", p.Name, role)
		}
		if b.DurMs == nil {
			return fmt.Errorf("sim: behavior %s of %s has no duration distribution", b.Name, p.Name)
		}
		return nil
	}
	for _, b := range p.UserBehaviors {
		if err := check(b, "user"); err != nil {
			return err
		}
	}
	if len(p.UserBehaviors) > 0 && p.ThinkTimeMs == nil {
		return fmt.Errorf("sim: profile %s has user behaviors but no think time", p.Name)
	}
	for _, t := range p.Timers {
		if err := check(t.Behavior, "timer"); err != nil {
			return err
		}
		if t.PeriodMs == nil {
			return fmt.Errorf("sim: timer behavior %s of %s has no period", t.Behavior.Name, p.Name)
		}
	}
	return nil
}

type simulation struct {
	cfg  Config
	prof *Profile
	r    *rand.Rand
	recs []*lila.Record

	now trace.Time
	end trace.Time

	// sampler state
	samplePeriod trace.Dur
	nextTick     trace.Time
	skipUntil    trace.Time

	// heap state
	heapUsedMB float64
	gcCount    int

	// episode execution state
	edtStack []stackCtx

	// event sources
	nextUser  trace.Time
	burstLeft int
	timers    []timerState

	// short-episode materialization
	nextShort trace.Time

	filter trace.Dur

	// Allocation batching. A 30-second session emits hundreds of
	// thousands of records and sampled stacks; drawing them from slabs
	// keeps the simulator's cost per record at a copy, not a heap
	// allocation. Everything handed out stays live for the life of the
	// returned record stream.
	recArena    []lila.Record // slab behind emitted records
	frames      []trace.Frame // slab behind sampled tick stacks
	tickBuf     []trace.Frame // per-tick stack scratch, reused
	plans       planArena     // episode plan nodes, reused per episode
	appLeaves   []trace.Frame // synthLeaf app pool with AppPackage applied
	workerStack []trace.Frame // defaultWorkerStack, computed once
	userWeights []float64     // UserBehaviors weights for stats.Pick
}

type timerState struct {
	t    *Timer
	next trace.Time
	stop trace.Time
}

func newSimulation(cfg Config) *simulation {
	p := cfg.Profile
	h := fnv.New64a()
	h.Write([]byte(p.Name))
	r := stats.NewRand(cfg.Seed^h.Sum64(), uint64(cfg.SessionID)*0x9e3779b97f4a7c15+1)

	secs := cfg.SessionSeconds
	if secs <= 0 {
		// Sessions are "similar", not identical: jitter ±10%.
		secs = p.SessionSeconds * (0.9 + 0.2*r.Float64())
	}
	s := &simulation{
		cfg:          cfg,
		prof:         p,
		r:            r,
		end:          trace.Time(secs * float64(trace.Second)),
		samplePeriod: cfg.samplePeriod(),
		filter:       cfg.filterThreshold(),
	}
	s.nextTick = trace.Time(s.samplePeriod / 2) // avoid boundary coincidences

	if len(p.UserBehaviors) > 0 {
		s.nextUser = s.sampleThink(0)
	} else {
		s.nextUser = s.end // never
	}
	for _, t := range p.Timers {
		stop := s.end
		if t.ActiveTo > 0 {
			stop = trace.Time(t.ActiveTo * float64(trace.Second))
		}
		first := trace.Time(t.ActiveFrom*float64(trace.Second)) + trace.Time(trace.Ms(t.PeriodMs.Sample(r)))
		s.timers = append(s.timers, timerState{t: t, next: first, stop: stop})
	}
	if cfg.MaterializeShort && p.ShortPerSecond > 0 {
		s.nextShort = s.shortArrival(0)
	} else {
		s.nextShort = s.end
	}
	s.appLeaves = appLeafFrames(p.AppPackage)
	s.workerStack = defaultWorkerStack(p.AppPackage)
	if len(p.UserBehaviors) > 1 {
		s.userWeights = make([]float64, len(p.UserBehaviors))
		for i, b := range p.UserBehaviors {
			s.userWeights[i] = b.Weight
		}
	}
	return s
}

func (s *simulation) header() lila.Header {
	return lila.Header{
		App:             s.prof.Name,
		SessionID:       s.cfg.SessionID,
		GUIThread:       guiThreadID,
		FilterThreshold: s.filter,
		SamplePeriod:    s.samplePeriod,
		Start:           0,
	}
}

// emit appends rec to the record stream, backing it with slab storage.
func (s *simulation) emit(rec lila.Record) {
	if len(s.recArena) == 0 {
		s.recArena = make([]lila.Record, 512)
	}
	p := &s.recArena[0]
	s.recArena = s.recArena[1:]
	*p = rec
	s.recs = append(s.recs, p)
}

// stackCopy moves a scratch-built stack into slab storage so the
// returned slice stays valid while the scratch is reused.
func (s *simulation) stackCopy(fs []trace.Frame) []trace.Frame {
	n := len(fs)
	if n == 0 {
		return nil
	}
	if cap(s.frames)-len(s.frames) < n {
		c := 4096
		if n > c {
			c = n
		}
		s.frames = make([]trace.Frame, 0, c)
	}
	start := len(s.frames)
	s.frames = append(s.frames, fs...)
	return s.frames[start : start+n : start+n]
}

func (s *simulation) sampleThink(from trace.Time) trace.Time {
	return from + trace.Time(trace.Ms(s.prof.ThinkTimeMs.Sample(s.r)))
}

func (s *simulation) shortArrival(from trace.Time) trace.Time {
	gap := s.r.ExpFloat64() / s.prof.ShortPerSecond
	return from + trace.Time(gap*float64(trace.Second))
}

// run is the main loop: alternate idle gaps and episodes until the
// session ends.
func (s *simulation) run() {
	s.emit(lila.Record{Type: lila.RecThread, Thread: guiThreadID, Name: "AWT-EventQueue-0"})
	for i, bg := range s.prof.Background {
		s.emit(lila.Record{
			Type:   lila.RecThread,
			Thread: guiThreadID + 1 + trace.ThreadID(i),
			Name:   bg.Name,
			Daemon: true,
		})
	}

	for {
		arrival, behavior, user := s.nextArrival()
		if behavior == nil || arrival >= s.end {
			break
		}
		if arrival > s.now {
			s.idleAdvance(arrival)
		}
		s.runEpisode(behavior)
		if user {
			// The user reacts to the completed interaction: think
			// time counts from when the system responded, not from
			// when the input was sent (otherwise a fast typist would
			// produce unbounded queues).
			s.rescheduleUser()
		}
	}
	if s.end > s.now {
		s.idleAdvance(s.end)
	}

	short := 0
	if !s.cfg.MaterializeShort && s.prof.ShortPerSecond > 0 {
		short = stats.Poisson(s.r, s.prof.ShortPerSecond*s.end.Seconds())
	}
	s.emit(lila.Record{Type: lila.RecEnd, Time: s.now, Count: short})
}

// nextArrival picks the earliest pending EDT event. Timer sources are
// rescheduled immediately (they fire on their own cadence, coalescing
// missed ticks like Swing timers); the user source is rescheduled by
// the caller after the episode completes.
func (s *simulation) nextArrival() (at trace.Time, b *Behavior, user bool) {
	best := s.end
	bestTimer := -1
	if len(s.prof.UserBehaviors) > 0 && s.nextUser < best {
		best = s.nextUser
		user = true
	}
	for i := range s.timers {
		ts := &s.timers[i]
		if ts.next < ts.stop && ts.next < best {
			best = ts.next
			bestTimer = i
			user = false
		}
	}
	switch {
	case bestTimer >= 0:
		ts := &s.timers[bestTimer]
		period := trace.Time(trace.Ms(ts.t.PeriodMs.Sample(s.r)))
		ts.next += period
		if ts.next < s.now {
			ts.next = s.now + period
		}
		return best, ts.t.Behavior, false
	case user:
		return best, s.pickUser(), true
	default:
		return s.end, nil, false
	}
}

// pickUser selects a user behavior by weight (a single behavior is
// chosen without spending a random draw, matching the historical
// stream so seeded sessions stay reproducible).
func (s *simulation) pickUser() *Behavior {
	bs := s.prof.UserBehaviors
	if len(bs) == 1 {
		return bs[0]
	}
	return bs[stats.Pick(s.r, s.userWeights)]
}

// rescheduleUser plans the next user input after an interaction's
// episode completed at s.now. Within a burst (typing), inputs follow
// quickly; otherwise the user thinks first.
func (s *simulation) rescheduleUser() {
	if s.burstLeft == 0 && s.prof.InputsPerInteraction != nil {
		s.burstLeft = s.prof.InputsPerInteraction.SampleInt(s.r)
	}
	if s.burstLeft > 1 {
		s.burstLeft--
		s.nextUser = s.now + trace.Time(trace.Ms(20+80*s.r.Float64()))
		return
	}
	s.burstLeft = 0
	s.nextUser = s.sampleThink(s.now)
}

// idleAdvance moves the clock to `to` with the EDT idle: ambient
// allocation accrues (possibly triggering collections), materialized
// short episodes fire, and sampling ticks observe a waiting GUI
// thread.
func (s *simulation) idleAdvance(to trace.Time) {
	for s.now < to {
		// Short arrivals that fell inside a long episode are
		// rescheduled: the EDT was busy, the inputs coalesced.
		if s.nextShort < s.now {
			s.nextShort = s.shortArrival(s.now)
		}
		// Materialized short episodes interleave with the idle time.
		if s.nextShort < to && s.nextShort >= s.now {
			s.advanceIdleSpan(s.nextShort)
			s.materializeShort()
			s.nextShort = s.shortArrival(s.now)
			continue
		}
		s.advanceIdleSpan(to)
	}
}

// advanceIdleSpan advances idle time to `to` in sampling-period
// chunks, accounting ambient allocation.
func (s *simulation) advanceIdleSpan(to trace.Time) {
	for s.now < to {
		chunk := trace.Dur(to - s.now)
		if chunk > s.samplePeriod {
			chunk = s.samplePeriod
		}
		rate := s.prof.Heap.IdleAllocMBPerSec + s.backgroundAllocRate()
		if s.allocCrossesIn(rate, chunk) {
			pre := s.timeToCross(rate)
			if pre > 0 {
				s.advanceTicks(s.now + trace.Time(pre))
				s.allocMB(rate * pre.Seconds())
				s.now = s.now.Add(pre)
			}
			s.doGC(false)
			continue
		}
		s.allocMB(rate * chunk.Seconds())
		s.advanceTicks(s.now + trace.Time(chunk))
		s.now = s.now.Add(chunk)
	}
}

// materializeShort emits one sub-filter episode at the current time.
func (s *simulation) materializeShort() {
	dur := trace.Dur(float64(s.filter) * s.r.Float64() * 0.95)
	if dur < 50*trace.Microsecond {
		dur = 50 * trace.Microsecond
	}
	s.emit(lila.Record{Type: lila.RecCall, Time: s.now, Thread: guiThreadID, Kind: trace.KindDispatch})
	s.advanceTicks(s.now.Add(dur))
	s.now = s.now.Add(dur)
	s.emit(lila.Record{Type: lila.RecReturn, Time: s.now, Thread: guiThreadID})
}

// backgroundAllocRate sums the allocation rates of currently runnable
// background threads.
func (s *simulation) backgroundAllocRate() float64 {
	var rate float64
	for _, bg := range s.prof.Background {
		rate += bg.allocAt(s.now, s.end)
	}
	return rate
}

// --- heap model ---

func (s *simulation) heapEnabled() bool { return s.prof.Heap.CapacityMB > 0 }

func (s *simulation) allocMB(mb float64) {
	if s.heapEnabled() {
		s.heapUsedMB += mb
	}
}

// allocCrossesIn reports whether allocating at `rate` MB/s for `d`
// would cross the heap capacity.
func (s *simulation) allocCrossesIn(rate float64, d trace.Dur) bool {
	if !s.heapEnabled() || rate <= 0 {
		return false
	}
	return s.heapUsedMB+rate*d.Seconds() >= s.prof.Heap.CapacityMB
}

// timeToCross returns how long allocation at `rate` takes to fill the
// remaining headroom.
func (s *simulation) timeToCross(rate float64) trace.Dur {
	headroom := s.prof.Heap.CapacityMB - s.heapUsedMB
	if headroom <= 0 {
		return 0
	}
	return trace.Dur(headroom / rate * float64(trace.Second))
}

// doGC performs a stop-the-world collection at the current time:
// safepoint ramp, GC bracket, post-GC scheduling delay. Sampling is
// suppressed for the whole window (the sampler is a mutator too),
// reproducing the Figure 1 gap that is wider than the GC interval.
func (s *simulation) doGC(explicit bool) {
	hc := s.prof.Heap
	s.gcCount++
	major := explicit || (hc.MajorEvery > 0 && s.gcCount%hc.MajorEvery == 0)

	ramp := sampleMs(hc.RampMs, s.r)
	var pause trace.Dur
	if major && hc.MajorPauseMs != nil {
		pause = sampleMs(hc.MajorPauseMs, s.r)
	} else {
		pause = sampleMs(hc.MinorPauseMs, s.r)
	}
	if pause <= 0 {
		pause = trace.Ms(1)
	}
	post := sampleMs(hc.PostDelayMs, s.r)

	suppressEnd := s.now.Add(ramp + pause + post)
	if suppressEnd > s.skipUntil {
		s.skipUntil = suppressEnd
	}

	s.advanceTicks(s.now.Add(ramp)) // consumed silently: skipUntil covers them
	s.now = s.now.Add(ramp)
	s.emit(lila.Record{Type: lila.RecGCStart, Time: s.now, Major: major})
	s.advanceTicks(s.now.Add(pause))
	s.now = s.now.Add(pause)
	s.emit(lila.Record{Type: lila.RecGCEnd, Time: s.now})
	s.advanceTicks(s.now.Add(post))
	s.now = s.now.Add(post)

	s.heapUsedMB = 0
}

func sampleMs(d stats.Dist, r *rand.Rand) trace.Dur {
	if d == nil {
		return 0
	}
	ms := d.Sample(r)
	if ms < 0 || math.IsNaN(ms) {
		return 0
	}
	return trace.Ms(ms)
}

// --- sampler ---

// advanceTicks emits sampling ticks with time < to. The GUI thread's
// sample reflects the current EDT stack context; when the EDT is idle
// the canonical waiting-in-getNextEvent stack is used. Ticks inside
// the suppression window are consumed without being emitted.
func (s *simulation) advanceTicks(to trace.Time) {
	for ; s.nextTick < to; s.nextTick += trace.Time(s.samplePeriod) {
		if s.nextTick < s.skipUntil {
			continue
		}
		s.emitTick(s.nextTick, trace.StateWaiting)
	}
}

// advanceTicksInState is advanceTicks during episode work, with the
// GUI thread in the given state.
func (s *simulation) advanceTicksInState(to trace.Time, state trace.ThreadState) {
	for ; s.nextTick < to; s.nextTick += trace.Time(s.samplePeriod) {
		if s.nextTick < s.skipUntil {
			continue
		}
		s.emitTick(s.nextTick, state)
	}
}

func (s *simulation) emitTick(at trace.Time, guiState trace.ThreadState) {
	var guiStackFrames []trace.Frame
	if len(s.edtStack) == 0 {
		guiState = trace.StateWaiting
		guiStackFrames = idleGUIStack
	} else {
		s.tickBuf = buildGUIStack(s.tickBuf[:0], s.r, guiState, s.edtStack, s.appLeaves)
		guiStackFrames = s.stackCopy(s.tickBuf)
	}
	s.emit(lila.Record{Type: lila.RecSample, Time: at, Thread: guiThreadID, State: guiState, Stack: guiStackFrames})

	for i, bg := range s.prof.Background {
		st := bg.stateAt(at, s.end)
		var stack []trace.Frame
		if st == trace.StateRunnable {
			stack = bg.Stack
			if stack == nil {
				stack = s.workerStack
			}
		} else {
			stack = parkedWorkerStack
		}
		s.emit(lila.Record{
			Type:   lila.RecSample,
			Time:   at,
			Thread: guiThreadID + 1 + trace.ThreadID(i),
			State:  st,
			Stack:  stack,
		})
	}
}

// --- episode execution ---

// runEpisode expands the behavior and plays it on the timeline.
func (s *simulation) runEpisode(b *Behavior) {
	p := expand(b, s.r, s.cfg.Perturbation.slowdown(), &s.plans)

	s.emit(lila.Record{Type: lila.RecCall, Time: s.now, Thread: guiThreadID, Kind: trace.KindDispatch})
	s.edtStack = append(s.edtStack, stackCtx{
		frame:   trace.Frame{Class: "java.awt.EventQueue", Method: "dispatchEventImpl"},
		libFrac: s.effectiveLibFrac(-1),
	})

	dispatchCtx := nodeExecCtx{
		mix:         StateMix{},
		libFrac:     s.effectiveLibFrac(-1),
		allocFactor: 1,
	}
	s.playChildren(p.dispatchSelf, p.roots, dispatchCtx)

	s.edtStack = s.edtStack[:len(s.edtStack)-1]
	s.emit(lila.Record{Type: lila.RecReturn, Time: s.now, Thread: guiThreadID})
}

// nodeExecCtx is the execution context of self time: how states,
// samples, and allocation behave.
type nodeExecCtx struct {
	mix         StateMix
	libFrac     float64
	allocFactor float64
}

func (s *simulation) effectiveLibFrac(nodeFrac float64) float64 {
	if nodeFrac >= 0 {
		return nodeFrac
	}
	return s.prof.LibraryFrac
}

// playChildren distributes `self` time into the gaps around the
// children and plays everything in order.
func (s *simulation) playChildren(self trace.Dur, children []*planNode, ctx nodeExecCtx) {
	gaps := len(children) + 1
	per := self / trace.Dur(gaps)
	rem := self - per*trace.Dur(gaps-1)
	for _, c := range children {
		s.advanceWork(per, ctx)
		s.playNode(c)
	}
	s.advanceWork(rem, ctx)
}

// playNode plays one planned interval. Intervals shorter than the
// trace filter are not emitted — the profiler would not have recorded
// them — but their time is still spent (as apparent self time of the
// parent).
func (s *simulation) playNode(pn *planNode) {
	n := pn.node
	if n.ExplicitGC {
		s.doGC(true)
	}
	ctx := nodeExecCtx{
		mix:         n.States,
		libFrac:     s.effectiveLibFrac(nodeLibFrac(n)),
		allocFactor: n.allocFactor(),
	}
	if pn.total() < s.filter {
		s.advanceWork(pn.total(), ctx)
		return
	}

	s.emit(lila.Record{Type: lila.RecCall, Time: s.now, Thread: guiThreadID,
		Kind: n.Kind, Class: pn.class, Method: pn.method})
	s.edtStack = append(s.edtStack, stackCtx{
		frame:   trace.Frame{Class: pn.class, Method: pn.method, Native: n.Kind == trace.KindNative},
		extra:   n.ExtraFrames,
		libFrac: ctx.libFrac,
	})

	s.playChildren(pn.self, pn.children, ctx)

	s.edtStack = s.edtStack[:len(s.edtStack)-1]
	s.emit(lila.Record{Type: lila.RecReturn, Time: s.now, Thread: guiThreadID})
}

// nodeLibFrac maps the Node field convention (zero value inherits the
// profile default; see Node.LibFrac) onto effectiveLibFrac's
// convention (negative inherits).
func nodeLibFrac(n *Node) float64 {
	if n.LibFrac == 0 {
		return -1
	}
	return n.LibFrac
}

// advanceWork spends `d` of GUI-thread self time: states are drawn
// from the mix in sampling-period chunks, allocation accrues while
// runnable, and collections interrupt (and stretch) the work.
func (s *simulation) advanceWork(d trace.Dur, ctx nodeExecCtx) {
	for d > 0 {
		chunk := d
		if chunk > s.samplePeriod {
			chunk = s.samplePeriod
		}
		state := pickState(s.r, ctx.mix)
		if state == trace.StateRunnable {
			rate := s.prof.Heap.AllocMBPerSec*ctx.allocFactor + s.backgroundAllocRate() +
				s.cfg.Perturbation.extraAlloc()
			if s.allocCrossesIn(rate, chunk) {
				pre := s.timeToCross(rate)
				if pre > chunk {
					pre = chunk
				}
				if pre > 0 {
					s.advanceTicksInState(s.now+trace.Time(pre), state)
					s.allocMB(rate * pre.Seconds())
					s.now = s.now.Add(pre)
					d -= pre
				}
				s.doGC(false)
				continue
			}
			s.allocMB(rate * chunk.Seconds())
		}
		s.advanceTicksInState(s.now+trace.Time(chunk), state)
		s.now = s.now.Add(chunk)
		d -= chunk
	}
}

func pickState(r *rand.Rand, mix StateMix) trace.ThreadState {
	x := r.Float64()
	if x < mix.Blocked {
		return trace.StateBlocked
	}
	x -= mix.Blocked
	if x < mix.Waiting {
		return trace.StateWaiting
	}
	x -= mix.Waiting
	if x < mix.Sleeping {
		return trace.StateSleeping
	}
	return trace.StateRunnable
}
