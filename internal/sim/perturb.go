package sim

// Perturbation models the measurement overhead of the profiler itself
// — the threat to validity the paper defers to future work ("we plan
// to study the perturbation of LiLa"): instrumentation slows the
// application down, and the profiler's own temporary allocations can
// increase garbage collection frequency.
//
// Attaching a Perturbation to a Config lets an experiment compare a
// "measured" session against the clean baseline with everything else
// held fixed (see BenchmarkAblation_Perturbation).
type Perturbation struct {
	// SlowdownFactor multiplies all planned handler durations —
	// call/return instrumentation overhead. 0 and 1 both mean no
	// slowdown. Per-sample sampler pauses fold into this factor to
	// first order (a 1 ms pause every 10 ms ≈ factor 1.1).
	SlowdownFactor float64
	// ExtraAllocMBPerSec is the profiler's own allocation rate
	// (event buffers, stack-trace copies), active whenever the GUI
	// thread is doing work. It accelerates collections.
	ExtraAllocMBPerSec float64
}

// slowdown returns the effective duration multiplier.
func (p *Perturbation) slowdown() float64 {
	if p == nil || p.SlowdownFactor <= 0 {
		return 1
	}
	return p.SlowdownFactor
}

// extraAlloc returns the profiler's allocation rate.
func (p *Perturbation) extraAlloc() float64 {
	if p == nil {
		return 0
	}
	return p.ExtraAllocMBPerSec
}
