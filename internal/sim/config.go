// Package sim is a deterministic discrete-event simulator of an
// interactive Java application session, standing in for the paper's
// combination of a real Swing application, a human driver, and the
// LiLa profiler (none of which are available to this reproduction; see
// DESIGN.md).
//
// The simulator models:
//
//   - an event dispatch thread (EDT) processing user input events,
//     timer/background events, and repaints, one episode at a time;
//   - a human user with stochastic think time between interactions;
//   - per-application behavior templates that expand into nested
//     listener/paint/native/async interval trees with durations;
//   - a stop-the-world garbage collector driven by an allocation-rate
//     heap model, with minor/major pauses, explicit System.gc()
//     requests, safepoint ramps, and post-GC scheduling delays;
//   - background threads with duty-cycled activity that show up in
//     call-stack samples and allocate memory;
//   - the profiler's periodic all-thread call-stack sampler, which —
//     being a mutator itself — is suppressed while the world is
//     stopped; and
//   - the profiler's trace filter, which drops episodes and intervals
//     shorter than the filter threshold, only counting the episodes.
//
// Everything is driven by a single virtual clock and seeded PCG
// randomness: a (profile, session id, seed) triple always reproduces
// the identical record stream.
package sim

import (
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// Config configures one simulated session.
type Config struct {
	// Profile is the application to simulate.
	Profile *Profile
	// SessionID distinguishes the multiple sessions of a study; it is
	// also folded into the random seed.
	SessionID int
	// Seed is the base random seed.
	Seed uint64
	// SamplePeriod is the call-stack sampling interval; 0 means 10 ms.
	SamplePeriod trace.Dur
	// FilterThreshold is the profiler's minimum traced episode (and
	// interval) duration; 0 means trace.DefaultFilterThreshold.
	FilterThreshold trace.Dur
	// MaterializeShort generates sub-threshold episodes as real
	// dispatch records (to be filtered by the trace consumer) instead
	// of accounting for them with a closed-form count. The real
	// profiler also filters them at trace time; materialization
	// exists to exercise the consumer-side filter path.
	MaterializeShort bool
	// SessionSeconds overrides the profile's session length when > 0.
	SessionSeconds float64
	// Perturbation, when non-nil, models the profiler's measurement
	// overhead (instrumentation slowdown, profiler allocations). Nil
	// simulates an unperturbed application.
	Perturbation *Perturbation
}

func (c Config) samplePeriod() trace.Dur {
	if c.SamplePeriod > 0 {
		return c.SamplePeriod
	}
	return 10 * trace.Millisecond
}

func (c Config) filterThreshold() trace.Dur {
	if c.FilterThreshold > 0 {
		return c.FilterThreshold
	}
	return trace.DefaultFilterThreshold
}

// Profile describes one application's behaviour: how often the user
// interacts, what the handlers do, how memory behaves, and which
// background threads exist. The 14 study profiles live in package
// apps.
type Profile struct {
	// Name, Version, Classes, and Description match Table II.
	Name        string
	Version     string
	Classes     int
	Description string

	// AppPackage is the application's root package, used to
	// synthesize application-code stack frames (anything outside the
	// runtime-library prefixes).
	AppPackage string

	// SessionSeconds is the mean end-to-end session length.
	SessionSeconds float64
	// ThinkTimeMs is the user's pause after an episode completes
	// before the next input event arrives.
	ThinkTimeMs stats.Dist
	// InputsPerInteraction optionally makes one user interaction
	// deliver a burst of input events (e.g. typing); nil means one.
	InputsPerInteraction stats.IntDist
	// ShortPerSecond is the rate of sub-filter episodes per second of
	// session time (Table III's "< 3ms" column divided by E2E).
	ShortPerSecond float64

	// UserBehaviors are the episode templates triggered by user
	// input, picked by weight.
	UserBehaviors []*Behavior
	// Timers post events to the EDT on their own cadence (animations,
	// progress updates, network callbacks).
	Timers []*Timer

	// Heap configures the allocation/GC model.
	Heap HeapConfig
	// LibraryFrac is the default probability that a runnable
	// GUI-thread sample lands in runtime-library code (nodes can
	// override it).
	LibraryFrac float64
	// Background lists the application's background threads.
	Background []*BackgroundThread
}

// Timer is an EDT event source with its own cadence.
type Timer struct {
	// Behavior is the episode template dispatched per firing.
	Behavior *Behavior
	// PeriodMs is the interval between firings.
	PeriodMs stats.Dist
	// ActiveFrom and ActiveTo bound the timer's lifetime in session
	// seconds; ActiveTo 0 means until session end.
	ActiveFrom, ActiveTo float64
}

// Behavior is one kind of episode: a duration distribution plus the
// structural template below the dispatch interval.
type Behavior struct {
	// Name labels the behavior (for debugging and tests).
	Name string
	// Weight is the relative pick probability among a profile's
	// UserBehaviors (ignored for timer behaviors).
	Weight float64
	// DurMs is the episode's planned handler duration in
	// milliseconds, excluding whatever GC pauses get injected.
	DurMs stats.Dist
	// DispatchWeight is the dispatch interval's own self-time weight
	// (event queue overhead around the handlers); 0 means 0.02.
	DispatchWeight float64
	// Nodes are the templates of the dispatch interval's children.
	Nodes []Node
}

func (b *Behavior) dispatchWeight() float64 {
	if b.DispatchWeight > 0 {
		return b.DispatchWeight
	}
	return 0.02
}

// Node is a template for one interval of an episode's tree.
//
// Durations are expressed as weights: after inclusion and repetition
// are sampled, the episode's planned duration (Behavior.DurMs) is
// distributed over all included nodes proportionally to their weights,
// each node receiving its share as *self* time (time not covered by
// its children). This makes episode-duration distributions directly
// calibratable while preserving arbitrarily deep structure.
type Node struct {
	// Kind is the interval type: listener, paint, native, or async
	// (dispatch is implicit, GC is injected by the heap model).
	Kind trace.Kind
	// Class and Method are the interval's symbolic information.
	Class, Method string
	// ClassPool, when non-empty, picks the class per expanded
	// instance (uniformly) instead of using Class. Repeated nodes
	// draw independently, so a repeat of 3 over a pool of 5 classes
	// produces ordered class sequences — the combinatorial source of
	// the hundreds of distinct episode patterns real applications
	// show (Table III's "Dist" column). Paint nodes default their
	// method to "paint".
	ClassPool []string
	// Weight is the node's relative share of the episode duration as
	// self time.
	Weight float64
	// Prob is the node's inclusion probability; 0 means always.
	// Optional nodes create the structural diversity behind distinct
	// patterns.
	Prob float64
	// Repeat replicates the node sequentially (e.g. one paint per
	// visible component); nil means exactly once.
	Repeat stats.IntDist
	// Children nest below this node.
	Children []Node

	// States mixes non-runnable scheduling states into this node's
	// self time (Figure 8's blocked/waiting/sleeping causes).
	States StateMix
	// LibFrac overrides the profile's library-code sample fraction
	// for this node's runnable self time; 0 means inherit the
	// profile's LibraryFrac (use a small value such as 0.01 for
	// "almost never in the library").
	LibFrac float64
	// AllocFactor scales the profile's allocation rate during this
	// node's self time; 0 means 1.
	AllocFactor float64
	// ExplicitGC triggers a System.gc() major collection when the
	// node is entered (the Arabeske behaviour of Section IV-C).
	ExplicitGC bool
	// ExtraFrames are appended below this node's frame in synthetic
	// call stacks (e.g. the Apple combo-box blink method that owns
	// the Thread.sleep in Section IV-E).
	ExtraFrames []trace.Frame
}

func (n *Node) prob() float64 {
	if n.Prob == 0 {
		return 1
	}
	return n.Prob
}

func (n *Node) allocFactor() float64 {
	if n.AllocFactor == 0 {
		return 1
	}
	return n.AllocFactor
}

// StateMix gives the fractions of a node's self time spent blocked,
// waiting, and sleeping; the remainder is runnable. The zero value is
// fully runnable.
type StateMix struct {
	Blocked  float64
	Waiting  float64
	Sleeping float64
}

// HeapConfig parameterizes the stop-the-world collector.
type HeapConfig struct {
	// CapacityMB is the collected generation's size; a collection
	// triggers when cumulative allocation crosses it.
	CapacityMB float64
	// AllocMBPerSec is the allocation rate while the GUI thread is
	// doing work in an episode.
	AllocMBPerSec float64
	// IdleAllocMBPerSec is the ambient allocation rate outside
	// episode work (timers, toolkits, background bookkeeping).
	IdleAllocMBPerSec float64
	// MinorPauseMs distributes minor-collection pause times.
	MinorPauseMs stats.Dist
	// MajorEvery makes every Nth collection a major one (0 disables
	// heap-driven major collections; explicit System.gc() is always
	// major).
	MajorEvery int
	// MajorPauseMs distributes major-collection pause times.
	MajorPauseMs stats.Dist
	// RampMs is the safepoint ramp before the GC bracket: threads are
	// already stopped but the JVMTI "Garbage Collection Start" event
	// has not fired yet (the Figure 1 observation).
	RampMs stats.Dist
	// PostDelayMs is the scheduling delay after the GC bracket before
	// the GUI thread (and the sampler) get their first time slice
	// again.
	PostDelayMs stats.Dist
}

// BackgroundThread models a non-EDT thread's visible behaviour: when
// it is runnable (for Figure 7's concurrency measure), what it
// allocates, and what its sampled stack looks like.
type BackgroundThread struct {
	// Name is the thread's display name.
	Name string
	// ActiveFrom and ActiveTo bound the thread's busy phase in
	// session seconds; ActiveTo 0 means until session end. Outside
	// the phase the thread waits.
	ActiveFrom, ActiveTo float64
	// Duty is the fraction of the busy phase the thread is runnable,
	// cycled with PeriodMs granularity.
	Duty float64
	// PeriodMs is the duty cycle length; 0 means 1000 ms.
	PeriodMs float64
	// AllocMBPerSec is the thread's allocation rate while runnable.
	AllocMBPerSec float64
	// Stack is the thread's sampled stack while runnable (leaf
	// first); while waiting a generic park stack is synthesized.
	Stack []trace.Frame
}

func (b *BackgroundThread) periodMs() float64 {
	if b.PeriodMs > 0 {
		return b.PeriodMs
	}
	return 1000
}

// stateAt returns the thread's scheduling state at session time t.
// The duty cycle is deterministic in t so that repeated sampling of
// the same instant agrees.
func (b *BackgroundThread) stateAt(t trace.Time, sessionEnd trace.Time) trace.ThreadState {
	sec := t.Seconds()
	to := b.ActiveTo
	if to == 0 {
		to = sessionEnd.Seconds()
	}
	if sec < b.ActiveFrom || sec >= to {
		return trace.StateWaiting
	}
	if b.Duty >= 1 {
		return trace.StateRunnable
	}
	period := b.periodMs()
	phase := t.Ms() - float64(int64(t.Ms()/period))*period
	if phase < b.Duty*period {
		return trace.StateRunnable
	}
	return trace.StateWaiting
}

// allocAt returns the thread's allocation rate (MB/s) at time t.
func (b *BackgroundThread) allocAt(t trace.Time, sessionEnd trace.Time) float64 {
	if b.stateAt(t, sessionEnd) == trace.StateRunnable {
		return b.AllocMBPerSec
	}
	return 0
}
