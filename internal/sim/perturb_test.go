package sim

import (
	"testing"

	"lagalyzer/internal/trace"
)

// TestPerturbationSlowdown checks that instrumentation slowdown
// stretches episodes proportionally: more perceptible episodes, longer
// in-episode time.
func TestPerturbationSlowdown(t *testing.T) {
	base := Config{Profile: testProfile(), Seed: 51, SessionSeconds: 60}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := base
	perturbed.Perturbation = &Perturbation{SlowdownFactor: 1.5}
	slow, err := Run(perturbed)
	if err != nil {
		t.Fatal(err)
	}

	cleanFrac := clean.InEpisodeFrac()
	slowFrac := slow.InEpisodeFrac()
	ratio := slowFrac / cleanFrac
	if ratio < 1.25 || ratio > 1.8 {
		t.Errorf("in-episode fraction ratio = %.2f (clean %.3f, perturbed %.3f), want ≈1.5",
			ratio, cleanFrac, slowFrac)
	}
	cleanLong := len(clean.PerceptibleEpisodes(trace.DefaultPerceptibleThreshold))
	slowLong := len(slow.PerceptibleEpisodes(trace.DefaultPerceptibleThreshold))
	if slowLong <= cleanLong {
		t.Errorf("slowdown did not add perceptible episodes: %d vs %d", slowLong, cleanLong)
	}
}

// TestPerturbationAllocation checks that profiler allocations increase
// GC frequency — the paper's explicit perturbation worry ("increase
// the frequency of garbage collections by allocating a significant
// amount of temporary data").
func TestPerturbationAllocation(t *testing.T) {
	base := Config{Profile: testProfile(), Seed: 53, SessionSeconds: 60}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := base
	perturbed.Perturbation = &Perturbation{ExtraAllocMBPerSec: 60}
	noisy, err := Run(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if len(noisy.GCs) <= len(clean.GCs) {
		t.Errorf("extra allocation did not add collections: %d vs %d", len(noisy.GCs), len(clean.GCs))
	}
}

func TestPerturbationZeroValues(t *testing.T) {
	var p *Perturbation
	if p.slowdown() != 1 || p.extraAlloc() != 0 {
		t.Error("nil perturbation should be neutral")
	}
	p = &Perturbation{}
	if p.slowdown() != 1 || p.extraAlloc() != 0 {
		t.Error("zero perturbation should be neutral")
	}
	p = &Perturbation{SlowdownFactor: 1.2, ExtraAllocMBPerSec: 5}
	if p.slowdown() != 1.2 || p.extraAlloc() != 5 {
		t.Error("perturbation fields not passed through")
	}
}
