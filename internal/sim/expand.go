package sim

import (
	"math/rand/v2"

	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// plan is a behavior template expanded into a concrete episode: every
// structural choice (inclusion, repetition) is resolved and every node
// carries its self-time duration. The executor then plays the plan on
// the virtual timeline, where GC pauses may still stretch it.
type plan struct {
	behavior *Behavior
	// dispatchSelf is the dispatch interval's own self time.
	dispatchSelf trace.Dur
	// roots are the dispatch interval's children.
	roots []*planNode
}

type planNode struct {
	node *Node
	// class and method are the resolved symbols (Node.ClassPool picks
	// a class per expanded instance).
	class, method string
	self          trace.Dur
	children      []*planNode
}

// total returns the node's full planned duration: self time plus all
// descendants'.
func (pn *planNode) total() trace.Dur {
	d := pn.self
	for _, c := range pn.children {
		d += c.total()
	}
	return d
}

// plannedDur returns the episode's full planned duration.
func (p *plan) plannedDur() trace.Dur {
	d := p.dispatchSelf
	for _, r := range p.roots {
		d += r.total()
	}
	return d
}

// expand resolves a behavior template into a plan: structural choices
// are sampled, then the sampled episode duration — scaled by the
// instrumentation slowdown, when a perturbation is modeled — is split
// over the included nodes proportionally to their weights.
func expand(b *Behavior, r *rand.Rand, slowdown float64) *plan {
	p := &plan{behavior: b}
	var totalWeight float64
	for _, n := range b.Nodes {
		p.roots = append(p.roots, expandNode(&n, r, &totalWeight)...)
	}
	totalWeight += b.dispatchWeight()

	durMs := b.DurMs.Sample(r) * slowdown
	if durMs < 0 {
		durMs = 0
	}
	dur := trace.Ms(durMs)

	p.dispatchSelf = scaleDur(dur, b.dispatchWeight(), totalWeight)
	for _, root := range p.roots {
		assignSelf(root, dur, totalWeight)
	}
	return p
}

// expandNode resolves one template node (inclusion, repetition,
// children) and accumulates the weights of everything included.
func expandNode(n *Node, r *rand.Rand, totalWeight *float64) []*planNode {
	if pr := n.prob(); pr < 1 && r.Float64() >= pr {
		return nil
	}
	count := 1
	if n.Repeat != nil {
		count = n.Repeat.SampleInt(r)
	}
	var out []*planNode
	for i := 0; i < count; i++ {
		pn := &planNode{node: n, class: n.Class, method: n.Method}
		if len(n.ClassPool) > 0 {
			pn.class = n.ClassPool[r.IntN(len(n.ClassPool))]
		}
		if pn.method == "" && n.Kind == trace.KindPaint {
			pn.method = "paint"
		}
		*totalWeight += n.Weight
		for j := range n.Children {
			pn.children = append(pn.children, expandNode(&n.Children[j], r, totalWeight)...)
		}
		out = append(out, pn)
	}
	return out
}

func assignSelf(pn *planNode, dur trace.Dur, totalWeight float64) {
	pn.self = scaleDur(dur, pn.node.Weight, totalWeight)
	for _, c := range pn.children {
		assignSelf(c, dur, totalWeight)
	}
}

func scaleDur(dur trace.Dur, weight, total float64) trace.Dur {
	if total <= 0 {
		return 0
	}
	return trace.Dur(float64(dur) * weight / total)
}

// pickBehavior selects a user behavior by weight.
func pickBehavior(behaviors []*Behavior, r *rand.Rand) *Behavior {
	if len(behaviors) == 1 {
		return behaviors[0]
	}
	weights := make([]float64, len(behaviors))
	for i, b := range behaviors {
		weights[i] = b.Weight
	}
	return behaviors[stats.Pick(r, weights)]
}
