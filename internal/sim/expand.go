package sim

import (
	"math/rand/v2"

	"lagalyzer/internal/trace"
)

// plan is a behavior template expanded into a concrete episode: every
// structural choice (inclusion, repetition) is resolved and every node
// carries its self-time duration. The executor then plays the plan on
// the virtual timeline, where GC pauses may still stretch it.
type plan struct {
	behavior *Behavior
	// dispatchSelf is the dispatch interval's own self time.
	dispatchSelf trace.Dur
	// roots are the dispatch interval's children.
	roots []*planNode
}

type planNode struct {
	node *Node
	// class and method are the resolved symbols (Node.ClassPool picks
	// a class per expanded instance).
	class, method string
	self          trace.Dur
	children      []*planNode
}

// total returns the node's full planned duration: self time plus all
// descendants'.
func (pn *planNode) total() trace.Dur {
	d := pn.self
	for _, c := range pn.children {
		d += c.total()
	}
	return d
}

// plannedDur returns the episode's full planned duration.
func (p *plan) plannedDur() trace.Dur {
	d := p.dispatchSelf
	for _, r := range p.roots {
		d += r.total()
	}
	return d
}

// planArena recycles planNode storage across episodes. A plan only
// lives for the one runEpisode call that plays it, but a session runs
// thousands of episodes; reusing the node slots — and, crucially, the
// capacity their children slices grew to — makes expansion
// allocation-free at steady state. reset reclaims everything; callers
// must not retain planNodes across episodes.
type planArena struct {
	chunks [][]planNode
	ci, ni int
	plan   plan // reusable plan header (roots capacity persists)
}

const planChunkSize = 64

func (a *planArena) reset() { a.ci, a.ni = 0, 0 }

// new hands out a recycled planNode slot with fields set, keeping the
// slot's previous children capacity.
func (a *planArena) new(n *Node, class, method string) *planNode {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]planNode, planChunkSize))
	}
	pn := &a.chunks[a.ci][a.ni]
	if a.ni++; a.ni == planChunkSize {
		a.ci++
		a.ni = 0
	}
	pn.node = n
	pn.class = class
	pn.method = method
	pn.self = 0
	pn.children = pn.children[:0]
	return pn
}

// expand resolves a behavior template into a plan: structural choices
// are sampled, then the sampled episode duration — scaled by the
// instrumentation slowdown, when a perturbation is modeled — is split
// over the included nodes proportionally to their weights. The
// returned plan is arena-backed and valid until the next expand on the
// same arena.
func expand(b *Behavior, r *rand.Rand, slowdown float64, a *planArena) *plan {
	a.reset()
	p := &a.plan
	p.behavior = b
	p.dispatchSelf = 0
	p.roots = p.roots[:0]
	var totalWeight float64
	for i := range b.Nodes {
		expandNode(&b.Nodes[i], r, &totalWeight, a, &p.roots)
	}
	totalWeight += b.dispatchWeight()

	durMs := b.DurMs.Sample(r) * slowdown
	if durMs < 0 {
		durMs = 0
	}
	dur := trace.Ms(durMs)

	p.dispatchSelf = scaleDur(dur, b.dispatchWeight(), totalWeight)
	for _, root := range p.roots {
		assignSelf(root, dur, totalWeight)
	}
	return p
}

// expandNode resolves one template node (inclusion, repetition,
// children), appending the expanded instances to dst and accumulating
// the weights of everything included.
func expandNode(n *Node, r *rand.Rand, totalWeight *float64, a *planArena, dst *[]*planNode) {
	if pr := n.prob(); pr < 1 && r.Float64() >= pr {
		return
	}
	count := 1
	if n.Repeat != nil {
		count = n.Repeat.SampleInt(r)
	}
	for i := 0; i < count; i++ {
		class, method := n.Class, n.Method
		if len(n.ClassPool) > 0 {
			class = n.ClassPool[r.IntN(len(n.ClassPool))]
		}
		if method == "" && n.Kind == trace.KindPaint {
			method = "paint"
		}
		pn := a.new(n, class, method)
		*totalWeight += n.Weight
		for j := range n.Children {
			expandNode(&n.Children[j], r, totalWeight, a, &pn.children)
		}
		*dst = append(*dst, pn)
	}
}

func assignSelf(pn *planNode, dur trace.Dur, totalWeight float64) {
	pn.self = scaleDur(dur, pn.node.Weight, totalWeight)
	for _, c := range pn.children {
		assignSelf(c, dur, totalWeight)
	}
}

func scaleDur(dur trace.Dur, weight, total float64) trace.Dur {
	if total <= 0 {
		return 0
	}
	return trace.Dur(float64(dur) * weight / total)
}
