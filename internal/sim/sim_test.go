package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// testProfile is a small app: one click behavior with a listener that
// paints, one timer repaint, one background thread, and a GC-prone
// heap.
func testProfile() *Profile {
	return &Profile{
		Name:           "MiniApp",
		Version:        "1.0",
		Classes:        42,
		AppPackage:     "com.example.mini",
		SessionSeconds: 30,
		ThinkTimeMs:    stats.Exp{MeanV: 400},
		ShortPerSecond: 50,
		LibraryFrac:    0.5,
		UserBehaviors: []*Behavior{
			{
				Name:   "click",
				Weight: 1,
				DurMs:  stats.Clamped{D: stats.LogNormal{Median: 40, Sigma: 0.9}, Lo: 4, Hi: 3000},
				Nodes: []Node{
					{
						Kind: trace.KindListener, Class: "com.example.mini.ButtonHandler", Method: "actionPerformed",
						Weight: 0.4,
						Children: []Node{
							{Kind: trace.KindPaint, Class: "javax.swing.JPanel", Method: "paint", Weight: 0.4},
							{Kind: trace.KindNative, Class: "sun.java2d.loops.Blit", Method: "Blit", Weight: 0.2, Prob: 0.5},
						},
					},
				},
			},
		},
		Timers: []*Timer{
			{
				Behavior: &Behavior{
					Name:  "repaint",
					DurMs: stats.Clamped{D: stats.LogNormal{Median: 25, Sigma: 0.5}, Lo: 4, Hi: 500},
					Nodes: []Node{
						{Kind: trace.KindAsync, Class: "java.awt.event.InvocationEvent", Method: "dispatch", Weight: 0.1,
							Children: []Node{
								{Kind: trace.KindPaint, Class: "com.example.mini.Canvas", Method: "paint", Weight: 0.9},
							}},
					},
				},
				PeriodMs: stats.Const{V: 500},
			},
		},
		Heap: HeapConfig{
			CapacityMB:        8,
			AllocMBPerSec:     30,
			IdleAllocMBPerSec: 1,
			MinorPauseMs:      stats.Uniform{Lo: 5, Hi: 20},
			MajorEvery:        8,
			MajorPauseMs:      stats.Uniform{Lo: 80, Hi: 200},
			RampMs:            stats.Uniform{Lo: 0.2, Hi: 2},
			PostDelayMs:       stats.Uniform{Lo: 0.2, Hi: 5},
		},
		Background: []*BackgroundThread{
			{Name: "loader", ActiveFrom: 2, ActiveTo: 10, Duty: 0.8, AllocMBPerSec: 2},
		},
	}
}

func runTest(t *testing.T, cfg Config) *trace.Session {
	t.Helper()
	s, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("simulated session invalid: %v", err)
	}
	return s
}

func TestRunProducesValidSession(t *testing.T) {
	s := runTest(t, Config{Profile: testProfile(), Seed: 1})
	if s.App != "MiniApp" {
		t.Errorf("App = %q", s.App)
	}
	if got := s.E2E().Seconds(); got < 27-1e-9 || got > 33+1e-9 {
		t.Errorf("E2E = %vs, want 30±10%%", got)
	}
	if len(s.Episodes) < 20 {
		t.Errorf("only %d episodes", len(s.Episodes))
	}
	if s.ShortCount == 0 {
		t.Error("no short episodes counted")
	}
	if len(s.Ticks) < 1000 {
		t.Errorf("only %d ticks (expected ~3000 for a 30s session)", len(s.Ticks))
	}
	if len(s.GCs) == 0 {
		t.Error("no collections despite allocation pressure")
	}
	if len(s.Threads) != 2 {
		t.Errorf("threads = %d, want 2", len(s.Threads))
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Profile: testProfile(), Seed: 7, SessionID: 2}
	r1, h1, err := Records(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, h2, err := Records(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("headers differ between identical runs")
	}
	if len(r1) != len(r2) {
		t.Fatalf("record counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if !reflect.DeepEqual(r1[i], r2[i]) {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}
	// A different session id must give a different stream.
	r3, _, err := Records(Config{Profile: testProfile(), Seed: 7, SessionID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) == len(r3) {
		same := true
		for i := range r1 {
			if !reflect.DeepEqual(r1[i], r3[i]) {
				same = false
				break
			}
		}
		if same {
			t.Error("different session ids produced identical streams")
		}
	}
}

func TestRecordStreamIsWellFormed(t *testing.T) {
	recs, _, err := Records(Config{Profile: testProfile(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var last trace.Time
	depth := 0
	inGC := false
	for i, rec := range recs {
		if rec.Type != lila.RecThread && rec.Time < last {
			t.Fatalf("record %d at %v after %v", i, rec.Time, last)
		}
		if rec.Type != lila.RecThread {
			last = rec.Time
		}
		switch rec.Type {
		case lila.RecCall:
			depth++
		case lila.RecReturn:
			depth--
			if depth < 0 {
				t.Fatal("return underflow")
			}
		case lila.RecGCStart:
			if inGC {
				t.Fatal("nested GC")
			}
			inGC = true
		case lila.RecGCEnd:
			inGC = false
		case lila.RecSample:
			if inGC {
				t.Errorf("record %d: sample during GC bracket", i)
			}
			if len(rec.Stack) == 0 {
				t.Errorf("record %d: empty sample stack", i)
			}
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if depth != 0 || inGC {
		t.Errorf("unbalanced stream: depth=%d inGC=%v", depth, inGC)
	}
	if recs[len(recs)-1].Type != lila.RecEnd {
		t.Error("stream must end with RecEnd")
	}
}

func TestEpisodeStructures(t *testing.T) {
	s := runTest(t, Config{Profile: testProfile(), Seed: 11})
	var sawListener, sawNestedPaint, sawOptionalNative, sawWithoutNative, sawAsyncPaint bool
	for _, e := range s.Episodes {
		if len(e.Root.Children) == 0 {
			continue
		}
		c := e.Root.Children[0]
		switch c.Kind {
		case trace.KindListener:
			sawListener = true
			hasNative := false
			for _, cc := range c.Children {
				if cc.Kind == trace.KindPaint {
					sawNestedPaint = true
				}
				if cc.Kind == trace.KindNative {
					hasNative = true
				}
			}
			if hasNative {
				sawOptionalNative = true
			} else {
				sawWithoutNative = true
			}
		case trace.KindAsync:
			if c.HasKind(trace.KindPaint) {
				sawAsyncPaint = true
			}
		}
	}
	if !sawListener || !sawNestedPaint {
		t.Error("listener episodes with nested paints not produced")
	}
	if !sawOptionalNative || !sawWithoutNative {
		t.Error("optional native child did not create structural diversity")
	}
	if !sawAsyncPaint {
		t.Error("timer episodes with async(paint) not produced")
	}
}

func TestPatternsEmergeFromSimulation(t *testing.T) {
	s := runTest(t, Config{Profile: testProfile(), Seed: 13})
	set := patterns.Classify([]*trace.Session{s}, patterns.Options{})
	if len(set.Patterns) < 2 {
		t.Fatalf("only %d patterns", len(set.Patterns))
	}
	// The two main behaviors (with and without the optional native)
	// plus the timer pattern should dominate.
	if set.Patterns[0].Count() < 5 {
		t.Errorf("largest pattern has only %d episodes", set.Patterns[0].Count())
	}
}

func TestGCAppearsInsideEpisodes(t *testing.T) {
	s := runTest(t, Config{Profile: testProfile(), Seed: 17})
	inEpisode := 0
	for _, e := range s.Episodes {
		if e.Root.HasKind(trace.KindGC) {
			inEpisode++
		}
	}
	if inEpisode == 0 {
		t.Error("no episode contains a GC despite 30 MB/s allocation against an 8 MB heap")
	}
	// And sampling is suppressed during collections.
	for _, gc := range s.GCs {
		if n := len(s.TicksIn(gc.Start, gc.End)); n > 0 {
			t.Fatalf("%d ticks inside GC [%v,%v]", n, gc.Start, gc.End)
		}
	}
}

func TestBackgroundThreadVisibleInSamples(t *testing.T) {
	s := runTest(t, Config{Profile: testProfile(), Seed: 19})
	// During the loader's active phase ([2s,10s), duty 0.8) it should
	// often be runnable; outside, never.
	activeRunnable, activeTotal := 0, 0
	for _, tick := range s.TicksIn(trace.Time(2*trace.Second), trace.Time(10*trace.Second)) {
		ts, ok := tick.Thread(2)
		if !ok {
			t.Fatal("loader not sampled")
		}
		activeTotal++
		if ts.State == trace.StateRunnable {
			activeRunnable++
		}
	}
	if activeTotal == 0 {
		t.Fatal("no ticks in the loader's active phase")
	}
	frac := float64(activeRunnable) / float64(activeTotal)
	if math.Abs(frac-0.8) > 0.1 {
		t.Errorf("loader runnable fraction = %v, want ≈0.8", frac)
	}
	for _, tick := range s.TicksIn(trace.Time(12*trace.Second), s.End) {
		if ts, ok := tick.Thread(2); ok && ts.State == trace.StateRunnable {
			t.Fatal("loader runnable outside its active phase")
		}
	}
}

func TestStateMixShowsUpInCauses(t *testing.T) {
	p := testProfile()
	p.Heap = HeapConfig{} // no GC noise
	p.Timers = nil
	p.UserBehaviors = []*Behavior{{
		Name:   "sleepy",
		Weight: 1,
		DurMs:  stats.Const{V: 300},
		Nodes: []Node{{
			Kind: trace.KindListener, Class: "com.example.mini.Combo", Method: "show",
			Weight: 1,
			States: StateMix{Sleeping: 0.6},
			ExtraFrames: []trace.Frame{
				{Class: "com.apple.laf.AquaComboBoxUI", Method: "blink"},
			},
		}},
	}}
	s := runTest(t, Config{Profile: p, Seed: 23})
	c := analysis.CauseAnalysis([]*trace.Session{s}, trace.DefaultPerceptibleThreshold, true)
	if c.Samples < 100 {
		t.Fatalf("too few samples: %d", c.Samples)
	}
	if math.Abs(c.Sleeping-0.6) > 0.08 {
		t.Errorf("sleeping share = %v, want ≈0.6", c.Sleeping)
	}
	// Sleeping samples must show Thread.sleep over the blink frame.
	found := false
	for _, tick := range s.Ticks {
		ts, ok := tick.Thread(1)
		if !ok || ts.State != trace.StateSleeping {
			continue
		}
		str := ts.StackString()
		if strings.Contains(str, "java.lang.Thread.sleep") && strings.Contains(str, "AquaComboBoxUI.blink") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no sleeping sample shows the Thread.sleep/blink stack")
	}
}

func TestExplicitGCEpisodes(t *testing.T) {
	p := testProfile()
	p.Timers = nil
	p.Heap.AllocMBPerSec = 0.1
	p.Heap.IdleAllocMBPerSec = 0.01
	p.UserBehaviors = []*Behavior{{
		Name:   "systemgc",
		Weight: 1,
		DurMs:  stats.Const{V: 150},
		Nodes: []Node{{
			Kind: trace.KindListener, Class: "x.Gc", Method: "trigger",
			// 0.0002/(0.0202) of 150 ms ≈ 1.5 ms: below the filter,
			// so the listener interval is structurally invisible.
			Weight: 0.0002, ExplicitGC: true,
		}},
	}}
	s := runTest(t, Config{Profile: p, Seed: 29})
	unspecifiedWithGC := 0
	for _, e := range s.Episodes {
		hasGC := e.Root.HasKind(trace.KindGC)
		if !e.Structured() && hasGC {
			unspecifiedWithGC++
		}
		if analysis.TriggerOf(e, analysis.TriggerOptions{}) != analysis.TriggerUnspecified {
			t.Fatalf("explicit-GC episode classified as %v, want unspecified",
				analysis.TriggerOf(e, analysis.TriggerOptions{}))
		}
	}
	if unspecifiedWithGC == 0 {
		t.Error("no unstructured GC-only episodes produced")
	}
	// Every collection must be major (System.gc()).
	for _, gc := range s.GCs {
		if !gc.Major {
			t.Error("explicit collection not major")
		}
	}
}

func TestMaterializeShort(t *testing.T) {
	p := testProfile()
	p.ShortPerSecond = 100
	cfg := Config{Profile: p, Seed: 31, MaterializeShort: true, SessionSeconds: 10}
	s := runTest(t, cfg)
	if s.ShortCount < 500 {
		t.Errorf("materialized ShortCount = %d, want ≈1000", s.ShortCount)
	}
	// Closed-form mode should give a similar count.
	s2 := runTest(t, Config{Profile: p, Seed: 31, SessionSeconds: 10})
	ratio := float64(s.ShortCount) / float64(s2.ShortCount)
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("materialized %d vs closed-form %d: implausible ratio", s.ShortCount, s2.ShortCount)
	}
}

func TestSessionLengthOverride(t *testing.T) {
	s := runTest(t, Config{Profile: testProfile(), Seed: 37, SessionSeconds: 5})
	if got := s.E2E().Seconds(); math.Abs(got-5) > 1.0 {
		t.Errorf("E2E = %v, want ≈5s", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
		want string
	}{
		{"no name", func(p *Profile) { p.Name = "" }, "no name"},
		{"no sources", func(p *Profile) { p.UserBehaviors = nil; p.Timers = nil }, "neither"},
		{"no session length", func(p *Profile) { p.SessionSeconds = 0 }, "session length"},
		{"nil dur", func(p *Profile) { p.UserBehaviors[0].DurMs = nil }, "duration distribution"},
		{"no think time", func(p *Profile) { p.ThinkTimeMs = nil }, "think time"},
		{"nil timer period", func(p *Profile) { p.Timers[0].PeriodMs = nil }, "period"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := testProfile()
			tc.mut(p)
			_, _, err := Records(Config{Profile: p, Seed: 1})
			if err == nil {
				t.Fatal("bad config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, _, err := Records(Config{}); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestLibFracControlsLocationSplit(t *testing.T) {
	mk := func(libFrac float64) *trace.Session {
		p := testProfile()
		p.Heap = HeapConfig{}
		p.Timers = nil
		p.LibraryFrac = libFrac
		p.UserBehaviors = []*Behavior{{
			Name: "work", Weight: 1, DurMs: stats.Const{V: 200},
			Nodes: []Node{{Kind: trace.KindListener, Class: "com.example.mini.H", Method: "on", Weight: 1}},
		}}
		return runTest(t, Config{Profile: p, Seed: 41})
	}
	libHeavy := analysis.LocationAnalysis([]*trace.Session{mk(0.9)}, trace.DefaultPerceptibleThreshold, false, nil)
	appHeavy := analysis.LocationAnalysis([]*trace.Session{mk(0.1)}, trace.DefaultPerceptibleThreshold, false, nil)
	if math.Abs(libHeavy.Library-0.9) > 0.08 {
		t.Errorf("library-heavy split = %v, want ≈0.9", libHeavy.Library)
	}
	if math.Abs(appHeavy.App-0.9) > 0.08 {
		t.Errorf("app-heavy split = %v, want ≈0.9", appHeavy.App)
	}
}

func TestTimerWindowRespected(t *testing.T) {
	p := testProfile()
	p.UserBehaviors = nil
	p.ThinkTimeMs = nil
	p.ShortPerSecond = 0
	p.Heap = HeapConfig{}
	p.Timers[0].ActiveFrom = 5
	p.Timers[0].ActiveTo = 15
	s := runTest(t, Config{Profile: p, Seed: 43, SessionSeconds: 30})
	if len(s.Episodes) == 0 {
		t.Fatal("timer produced no episodes")
	}
	for _, e := range s.Episodes {
		sec := e.Start().Seconds()
		if sec < 5-1e-9 || sec > 16 {
			t.Fatalf("timer episode at %vs outside [5,15]s window", sec)
		}
	}
}

func TestSamplePeriodOverride(t *testing.T) {
	fast := runTest(t, Config{Profile: testProfile(), Seed: 61, SamplePeriod: 5 * trace.Millisecond, SessionSeconds: 10})
	slow := runTest(t, Config{Profile: testProfile(), Seed: 61, SamplePeriod: 50 * trace.Millisecond, SessionSeconds: 10})
	if fast.SamplePeriod != 5*trace.Millisecond || slow.SamplePeriod != 50*trace.Millisecond {
		t.Fatal("sample period not recorded in the session")
	}
	ratio := float64(len(fast.Ticks)) / float64(len(slow.Ticks))
	if ratio < 6 || ratio > 14 {
		t.Errorf("tick ratio = %.1f (10x period change), ticks %d vs %d", ratio, len(fast.Ticks), len(slow.Ticks))
	}
}

func TestIdleGCsStayOutOfEpisodes(t *testing.T) {
	p := testProfile()
	p.Timers = nil
	p.ShortPerSecond = 1
	// Almost no user activity, heavy idle allocation: collections
	// must happen between episodes and appear session-wide only.
	p.ThinkTimeMs = stats.Const{V: 5000}
	p.Heap.AllocMBPerSec = 0.1
	p.Heap.IdleAllocMBPerSec = 20
	s := runTest(t, Config{Profile: p, Seed: 67, SessionSeconds: 20})
	if len(s.GCs) < 10 {
		t.Fatalf("only %d collections with 20 MB/s idle allocation", len(s.GCs))
	}
	inEpisode := 0
	for _, e := range s.Episodes {
		if e.Root.HasKind(trace.KindGC) {
			inEpisode++
		}
	}
	if inEpisode > len(s.GCs)/4 {
		t.Errorf("%d of %d collections landed inside episodes of a ~idle session", inEpisode, len(s.GCs))
	}
}

func TestTimerSaturationCoalesces(t *testing.T) {
	// A 10 ms timer with ~60 ms handlers saturates the EDT: episodes
	// must queue back-to-back without overlapping, and the effective
	// rate is bounded by the handler duration, not the period.
	p := testProfile()
	p.UserBehaviors = nil
	p.ThinkTimeMs = nil
	p.ShortPerSecond = 0
	p.Heap = HeapConfig{}
	p.Background = nil
	p.Timers = []*Timer{{
		Behavior: &Behavior{
			Name:  "flood",
			DurMs: stats.Const{V: 60},
			Nodes: []Node{{Kind: trace.KindPaint, Class: "x.P", Method: "paint", Weight: 1}},
		},
		PeriodMs: stats.Const{V: 10},
	}}
	s := runTest(t, Config{Profile: p, Seed: 71, SessionSeconds: 10})
	// ~10s / 60ms ≈ 166 episodes, far below the 1000 the period alone
	// would produce.
	if n := len(s.Episodes); n < 120 || n > 200 {
		t.Errorf("saturated timer produced %d episodes, want ≈166", n)
	}
	for i := 1; i < len(s.Episodes); i++ {
		if s.Episodes[i].Start() < s.Episodes[i-1].End() {
			t.Fatal("episodes overlap")
		}
	}
	if f := s.InEpisodeFrac(); f < 0.9 {
		t.Errorf("saturated EDT in-episode fraction = %.2f", f)
	}
}

func TestStackSynthesisShapes(t *testing.T) {
	s := runTest(t, Config{Profile: testProfile(), Seed: 73, SessionSeconds: 20})
	sawIdle, sawEDTBase := false, false
	for _, tick := range s.Ticks {
		ts, ok := tick.Thread(1)
		if !ok || len(ts.Stack) == 0 {
			t.Fatal("GUI thread sample missing or empty")
		}
		bottom := ts.Stack[len(ts.Stack)-1]
		if bottom.Class != "java.awt.EventDispatchThread" {
			t.Fatalf("GUI stack does not bottom out in the EDT: %v", bottom)
		}
		if ts.State == trace.StateWaiting && ts.Stack[0].Class == "java.lang.Object" {
			sawIdle = true
		}
		if len(ts.Stack) > 3 {
			sawEDTBase = true
		}
	}
	if !sawIdle {
		t.Error("no idle (waiting in getNextEvent) samples")
	}
	if !sawEDTBase {
		t.Error("no deep in-episode samples")
	}
}
