package analysis

import "lagalyzer/internal/trace"

// Concurrency computes the average number of runnable threads per
// sampling tick taken during episodes (Figure 7). A value of one means
// only the GUI thread was runnable; below one, the GUI thread itself
// was sometimes blocked, waiting, or sleeping; above one, background
// threads were competing for the CPU.
//
// onlyPerceptible restricts the population to episodes at or above the
// threshold (the lower panel of Figure 7). The second return value is
// the number of ticks behind the average.
func Concurrency(sessions []*trace.Session, threshold trace.Dur, onlyPerceptible bool) (float64, int) {
	total, ticks := 0, 0
	for _, s := range sessions {
		for _, e := range s.Episodes {
			if onlyPerceptible && !e.Perceptible(threshold) {
				continue
			}
			for _, tick := range s.EpisodeTicks(e) {
				total += tick.Runnable()
				ticks++
			}
		}
	}
	if ticks == 0 {
		return 0, 0
	}
	return float64(total) / float64(ticks), ticks
}

// CauseShares partitions the GUI thread's in-episode time by its
// sampled scheduling state (Figure 8): blocked entering contended
// monitors, waiting in Object.wait()/LockSupport.park(), voluntarily
// sleeping in Thread.sleep, and runnable (doing, or ready to do,
// work). Fractions sum to 1 unless no samples were found.
type CauseShares struct {
	Blocked  float64
	Waiting  float64
	Sleeping float64
	Runnable float64
	// Samples is the number of GUI-thread samples behind the split.
	Samples int
}

// Frac returns the share for a thread state.
func (c CauseShares) Frac(st trace.ThreadState) float64 {
	switch st {
	case trace.StateBlocked:
		return c.Blocked
	case trace.StateWaiting:
		return c.Waiting
	case trace.StateSleeping:
		return c.Sleeping
	case trace.StateRunnable:
		return c.Runnable
	}
	return 0
}

// CauseAnalysis computes CauseShares over the sessions' episodes;
// onlyPerceptible restricts to episodes at or above the threshold
// (the lower panel of Figure 8). Only samples of each episode's own
// dispatch thread are counted.
func CauseAnalysis(sessions []*trace.Session, threshold trace.Dur, onlyPerceptible bool) CauseShares {
	var counts [4]int
	total := 0
	for _, s := range sessions {
		for _, e := range s.Episodes {
			if onlyPerceptible && !e.Perceptible(threshold) {
				continue
			}
			for _, tick := range s.EpisodeTicks(e) {
				ts, ok := tick.Thread(e.Thread)
				if !ok {
					continue
				}
				counts[ts.State]++
				total++
			}
		}
	}
	var c CauseShares
	c.Samples = total
	if total == 0 {
		return c
	}
	c.Runnable = float64(counts[trace.StateRunnable]) / float64(total)
	c.Blocked = float64(counts[trace.StateBlocked]) / float64(total)
	c.Waiting = float64(counts[trace.StateWaiting]) / float64(total)
	c.Sleeping = float64(counts[trace.StateSleeping]) / float64(total)
	return c
}
