package analysis

import (
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/trace"
)

// Overview is one row of the paper's Table III: session duration,
// episode counts, and pattern statistics for one application, averaged
// over its sessions.
type Overview struct {
	App      string
	Sessions int

	// E2ESeconds is the mean end-to-end session duration ("E2E [s]").
	E2ESeconds float64
	// InEpsFrac is the mean fraction of time spent in traced episodes
	// ("In-Eps [%]" as a fraction).
	InEpsFrac float64

	// Short is the mean count of episodes below the trace filter
	// ("< 3ms").
	Short float64
	// Traced is the mean count of traced episodes ("≥ 3ms").
	Traced float64
	// Perceptible is the mean count of perceptible episodes
	// ("≥ 100ms").
	Perceptible float64
	// LongPerMin is the mean number of perceptible episodes per
	// minute of in-episode time ("Long/min") — the paper's
	// cross-application measure of how often a user notices lag.
	LongPerMin float64

	// Dist is the mean number of distinct patterns per session
	// ("Dist").
	Dist float64
	// CoveredEps is the mean number of episodes covered by patterns
	// ("#Eps"; episodes without internal structure are excluded).
	CoveredEps float64
	// OneEpFrac is the mean fraction of singleton patterns ("One-Ep").
	OneEpFrac float64
	// Descs is the mean number of descendants of the dispatch
	// interval, averaged over patterns ("Descs").
	Descs float64
	// Depth is the mean interval tree depth, averaged over patterns
	// ("Depth").
	Depth float64
}

// OverviewOf computes the Table III row for one application's suite of
// sessions. Pattern statistics are computed per session and averaged,
// matching the table's presentation ("each row represents the average
// over the four interactive sessions").
func OverviewOf(suite *trace.Suite, threshold trace.Dur) Overview {
	o := Overview{App: suite.App, Sessions: len(suite.Sessions)}
	if len(suite.Sessions) == 0 {
		return o
	}
	n := float64(len(suite.Sessions))
	for _, s := range suite.Sessions {
		o.E2ESeconds += s.E2E().Seconds() / n
		o.InEpsFrac += s.InEpisodeFrac() / n
		o.Short += float64(s.ShortCount) / n
		o.Traced += float64(len(s.Episodes)) / n
		perceptible := len(s.PerceptibleEpisodes(threshold))
		o.Perceptible += float64(perceptible) / n
		if inEps := s.InEpisode(); inEps > 0 {
			o.LongPerMin += float64(perceptible) / (inEps.Seconds() / 60) / n
		}

		set := patterns.Classify([]*trace.Session{s}, patterns.Options{Threshold: threshold})
		o.Dist += float64(len(set.Patterns)) / n
		o.CoveredEps += float64(set.Covered()) / n
		o.OneEpFrac += set.SingletonFrac() / n
		o.Descs += set.MeanDescendants() / n
		o.Depth += set.MeanDepth() / n
	}
	return o
}

// MeanOverview averages a list of per-application overviews into the
// "Mean" row of Table III.
func MeanOverview(rows []Overview) Overview {
	m := Overview{App: "Mean"}
	if len(rows) == 0 {
		return m
	}
	n := float64(len(rows))
	for _, r := range rows {
		m.Sessions += r.Sessions
		m.E2ESeconds += r.E2ESeconds / n
		m.InEpsFrac += r.InEpsFrac / n
		m.Short += r.Short / n
		m.Traced += r.Traced / n
		m.Perceptible += r.Perceptible / n
		m.LongPerMin += r.LongPerMin / n
		m.Dist += r.Dist / n
		m.CoveredEps += r.CoveredEps / n
		m.OneEpFrac += r.OneEpFrac / n
		m.Descs += r.Descs / n
		m.Depth += r.Depth / n
	}
	return m
}
