// Package analysis implements LagAlyzer's characterization analyses
// (Section IV of the paper): overview statistics (Table III), episode
// trigger classification (Figure 5), location of time (Figure 6),
// concurrency (Figure 7), and the causes of lag — synchronization,
// sleep, and work (Figure 8).
//
// All analyses operate on trace.Session values and are pure functions:
// they never mutate their inputs and carry no global state, so callers
// can run them concurrently over different suites.
package analysis

import "lagalyzer/internal/trace"

// Trigger classifies what initiated an episode (Section IV-C).
type Trigger int

const (
	// TriggerInput: the episode was triggered by user input — its
	// first significant interval is a listener notification.
	TriggerInput Trigger = iota
	// TriggerOutput: the episode renders to the screen — its first
	// significant interval is a paint (or a repaint-manager async
	// wrapping a paint; see Options.NoAsyncReclassify).
	TriggerOutput
	// TriggerAsync: the episode handles an event posted by a
	// background thread.
	TriggerAsync
	// TriggerUnspecified: the episode has no listener, paint, or
	// async interval long enough to have passed the trace filter.
	TriggerUnspecified

	numTriggers = iota
)

// NumTriggers is the number of trigger classes, for callers sizing
// mergeable per-trigger tallies.
const NumTriggers = numTriggers

var triggerNames = [numTriggers]string{
	TriggerInput:       "input",
	TriggerOutput:      "output",
	TriggerAsync:       "async",
	TriggerUnspecified: "unspecified",
}

// String returns the trigger's lowercase name as used in Figure 5.
func (t Trigger) String() string {
	if int(t) >= numTriggers {
		return "trigger(?)"
	}
	return triggerNames[t]
}

// Triggers returns all trigger classes in Figure 5's stacking order.
func Triggers() []Trigger {
	ts := make([]Trigger, numTriggers)
	for i := range ts {
		ts[i] = Trigger(i)
	}
	return ts
}

// TriggerOptions tune the trigger classification; the zero value is
// the paper's configuration.
type TriggerOptions struct {
	// NoAsyncReclassify disables the Swing repaint-manager special
	// case. The paper observes that the toolkit's repaint manager
	// enqueues paint requests through the event queue even on the GUI
	// thread, producing episodes with an "async" interval containing
	// a "paint" interval; those are really output episodes and are
	// reclassified as such. Setting this flag keeps them async — the
	// ablation measured by BenchmarkAblation_AsyncReclassify.
	NoAsyncReclassify bool
}

// TriggerOf determines an episode's trigger with the paper's rules: a
// preorder traversal of the interval tree finds the first listener,
// paint, or async interval, whose type decides the class. An async
// interval that contains a paint interval is reclassified as output
// (repaint-manager episodes), unless opts disables that.
func TriggerOf(e *trace.Episode, opts TriggerOptions) Trigger {
	deciding := e.Root.Find(func(n *trace.Interval) bool {
		switch n.Kind {
		case trace.KindListener, trace.KindPaint, trace.KindAsync:
			return true
		}
		return false
	})
	if deciding == nil {
		return TriggerUnspecified
	}
	switch deciding.Kind {
	case trace.KindListener:
		return TriggerInput
	case trace.KindPaint:
		return TriggerOutput
	default: // async
		if !opts.NoAsyncReclassify && deciding.HasKind(trace.KindPaint) {
			return TriggerOutput
		}
		return TriggerAsync
	}
}

// TriggerShares is the per-class episode fraction for one population
// of episodes (one bar of Figure 5). Fractions sum to 1 unless the
// population was empty.
type TriggerShares struct {
	Counts [numTriggers]int
	Total  int
}

// Frac returns the fraction of episodes with the given trigger.
func (ts TriggerShares) Frac(t Trigger) float64 {
	if ts.Total == 0 {
		return 0
	}
	return float64(ts.Counts[t]) / float64(ts.Total)
}

// TriggerAnalysis tallies the triggers of the sessions' episodes;
// onlyPerceptible restricts the population to episodes at or above
// the threshold (the lower panel of Figure 5).
func TriggerAnalysis(sessions []*trace.Session, threshold trace.Dur, onlyPerceptible bool, opts TriggerOptions) TriggerShares {
	var ts TriggerShares
	for _, s := range sessions {
		for _, e := range s.Episodes {
			if onlyPerceptible && !e.Perceptible(threshold) {
				continue
			}
			ts.Counts[TriggerOf(e, opts)]++
			ts.Total++
		}
	}
	return ts
}
