package analysis

import (
	"math"
	"testing"

	"lagalyzer/internal/trace"
)

func TestThresholdSweep(t *testing.T) {
	// Episodes at 50, 120, 180, 210, 500 ms.
	var eps []*trace.Episode
	var start trace.Time
	for _, d := range []float64{50, 120, 180, 210, 500} {
		eps = append(eps, ep(start, trace.Ms(d)))
		start = start.Add(trace.Ms(d) + trace.Second)
	}
	s := sessionWith(eps...)

	points := ThresholdSweep([]*trace.Session{s}, nil)
	if len(points) != len(LiteratureThresholds) {
		t.Fatalf("%d points, want %d", len(points), len(LiteratureThresholds))
	}
	wantCounts := []int{4, 3, 2, 1} // ≥100, ≥150, ≥195, ≥225
	for i, p := range points {
		if p.Threshold != LiteratureThresholds[i] {
			t.Errorf("point %d threshold = %v", i, p.Threshold)
		}
		if p.Episodes != wantCounts[i] {
			t.Errorf("threshold %v: %d episodes, want %d", p.Threshold, p.Episodes, wantCounts[i])
		}
		if math.Abs(p.Frac-float64(wantCounts[i])/5) > 1e-12 {
			t.Errorf("threshold %v: frac %v", p.Threshold, p.Frac)
		}
	}
	// Monotone non-increasing counts.
	for i := 1; i < len(points); i++ {
		if points[i].Episodes > points[i-1].Episodes {
			t.Error("sweep counts must not increase with the threshold")
		}
	}
	// PerMin consistency: episodes per minute of in-episode time.
	inEps := s.InEpisode().Seconds() / 60
	if got, want := points[0].PerMin, 4/inEps; math.Abs(got-want) > 1e-9 {
		t.Errorf("PerMin = %v, want %v", got, want)
	}
}

func TestThresholdSweepCustomAndEmpty(t *testing.T) {
	s := sessionWith(ep(0, trace.Ms(80)))
	points := ThresholdSweep([]*trace.Session{s}, []trace.Dur{trace.Ms(50), trace.Ms(100)})
	if len(points) != 2 || points[0].Episodes != 1 || points[1].Episodes != 0 {
		t.Errorf("custom sweep: %+v", points)
	}
	empty := ThresholdSweep(nil, nil)
	for _, p := range empty {
		if p.Episodes != 0 || p.Frac != 0 || p.PerMin != 0 {
			t.Errorf("empty sweep point: %+v", p)
		}
	}
}

func TestLiteratureThresholds(t *testing.T) {
	want := []trace.Dur{trace.Ms(100), trace.Ms(150), trace.Ms(195), trace.Ms(225)}
	if len(LiteratureThresholds) != len(want) {
		t.Fatalf("%d literature thresholds", len(LiteratureThresholds))
	}
	for i, th := range want {
		if LiteratureThresholds[i] != th {
			t.Errorf("threshold %d = %v, want %v", i, LiteratureThresholds[i], th)
		}
	}
}
