package analysis

import (
	"math"
	"testing"

	"lagalyzer/internal/trace"
)

func ms(v float64) trace.Time { return trace.Time(trace.Ms(v)) }

func ep(start trace.Time, dur trace.Dur, children ...*trace.Interval) *trace.Episode {
	root := trace.NewInterval(trace.KindDispatch, "", "", start, dur)
	for _, c := range children {
		root.AddChild(c)
	}
	return &trace.Episode{Thread: 1, Root: root}
}

func sessionWith(eps ...*trace.Episode) *trace.Session {
	s := &trace.Session{App: "t", GUIThread: 1, Start: 0, FilterThreshold: trace.DefaultFilterThreshold,
		SamplePeriod: 10 * trace.Millisecond}
	var end trace.Time
	for i, e := range eps {
		e.Index = i
		if e.End() > end {
			end = e.End()
		}
	}
	s.Episodes = eps
	s.End = end.Add(trace.Second)
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

const th = trace.DefaultPerceptibleThreshold

func TestTriggerOf(t *testing.T) {
	listener := trace.NewInterval(trace.KindListener, "a.B", "on", ms(0), trace.Ms(50))
	paint := trace.NewInterval(trace.KindPaint, "x.P", "paint", ms(60), trace.Ms(30))

	cases := []struct {
		name string
		e    *trace.Episode
		want Trigger
	}{
		{"input", ep(0, trace.Ms(100), listener.Clone(), paint.Clone()), TriggerInput},
		{"output", ep(0, trace.Ms(100),
			trace.NewInterval(trace.KindPaint, "x.P", "paint", ms(0), trace.Ms(30))), TriggerOutput},
		{"async", ep(0, trace.Ms(100),
			trace.NewInterval(trace.KindAsync, "q.E", "dispatch", ms(0), trace.Ms(30),
				trace.NewInterval(trace.KindNative, "n.N", "call", ms(5), trace.Ms(10)))), TriggerAsync},
		{"unspecified empty", ep(0, trace.Ms(100)), TriggerUnspecified},
		{"unspecified gc-only", ep(0, trace.Ms(500), trace.NewGC(ms(10), trace.Ms(300), true)), TriggerUnspecified},
		{"unspecified native-only", ep(0, trace.Ms(100),
			trace.NewInterval(trace.KindNative, "n.N", "call", ms(0), trace.Ms(50))), TriggerUnspecified},
		// The Swing repaint-manager case: async containing paint is
		// really output.
		{"repaint manager", ep(0, trace.Ms(100),
			trace.NewInterval(trace.KindAsync, "q.E", "dispatch", ms(0), trace.Ms(90),
				trace.NewInterval(trace.KindPaint, "x.P", "paint", ms(5), trace.Ms(80)))), TriggerOutput},
		// Nested deciding interval below a native call.
		{"nested listener", ep(0, trace.Ms(100),
			trace.NewInterval(trace.KindNative, "n.N", "call", ms(0), trace.Ms(90),
				trace.NewInterval(trace.KindListener, "a.B", "on", ms(10), trace.Ms(50)))), TriggerInput},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := TriggerOf(tc.e, TriggerOptions{}); got != tc.want {
				t.Errorf("TriggerOf = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestTriggerAsyncReclassifyAblation(t *testing.T) {
	e := ep(0, trace.Ms(100),
		trace.NewInterval(trace.KindAsync, "q.E", "dispatch", ms(0), trace.Ms(90),
			trace.NewInterval(trace.KindPaint, "x.P", "paint", ms(5), trace.Ms(80))))
	if got := TriggerOf(e, TriggerOptions{}); got != TriggerOutput {
		t.Errorf("default = %v, want output", got)
	}
	if got := TriggerOf(e, TriggerOptions{NoAsyncReclassify: true}); got != TriggerAsync {
		t.Errorf("ablation = %v, want async", got)
	}
}

func TestTriggerAnalysisCountsAndFilters(t *testing.T) {
	s := sessionWith(
		ep(ms(0), trace.Ms(200), trace.NewInterval(trace.KindListener, "a.B", "on", ms(0), trace.Ms(100))),
		ep(ms(1000), trace.Ms(10), trace.NewInterval(trace.KindListener, "a.B", "on", ms(1000), trace.Ms(5))),
		ep(ms(2000), trace.Ms(300), trace.NewInterval(trace.KindPaint, "x.P", "paint", ms(2000), trace.Ms(100))),
		ep(ms(3000), trace.Ms(400)),
	)
	all := TriggerAnalysis([]*trace.Session{s}, th, false, TriggerOptions{})
	if all.Total != 4 {
		t.Fatalf("all total = %d", all.Total)
	}
	if all.Frac(TriggerInput) != 0.5 || all.Frac(TriggerOutput) != 0.25 || all.Frac(TriggerUnspecified) != 0.25 {
		t.Errorf("all fracs: input=%v output=%v unspec=%v", all.Frac(TriggerInput), all.Frac(TriggerOutput), all.Frac(TriggerUnspecified))
	}
	long := TriggerAnalysis([]*trace.Session{s}, th, true, TriggerOptions{})
	if long.Total != 3 {
		t.Fatalf("perceptible total = %d", long.Total)
	}
	if got := long.Frac(TriggerInput); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("perceptible input frac = %v", got)
	}
	var empty TriggerShares
	if empty.Frac(TriggerInput) != 0 {
		t.Error("empty shares should report 0")
	}
}

// tickAt appends a sampling tick with the given GUI-thread state and
// leaf class, plus optionally a runnable worker thread.
func tickAt(s *trace.Session, at trace.Time, state trace.ThreadState, leafClass string, native bool, workerRunnable bool) {
	threads := []trace.ThreadSample{{
		Thread: 1,
		State:  state,
		Stack:  []trace.Frame{{Class: leafClass, Method: "m", Native: native}},
	}}
	wstate := trace.StateWaiting
	if workerRunnable {
		wstate = trace.StateRunnable
	}
	threads = append(threads, trace.ThreadSample{Thread: 2, State: wstate})
	s.Ticks = append(s.Ticks, trace.SampleTick{Time: at, Threads: threads})
}

func TestLocationAnalysisSamplesSplit(t *testing.T) {
	e := ep(ms(0), trace.Ms(200),
		trace.NewInterval(trace.KindNative, "sun.j2d.Draw", "line", ms(20), trace.Ms(50),
			trace.NewGC(ms(30), trace.Ms(20), false)))
	s := sessionWith(e)
	// 2 library samples, 1 app sample, 1 native-leaf sample
	// (excluded), 1 sample outside the episode (excluded).
	tickAt(s, ms(5), trace.StateRunnable, "javax.swing.JComponent", false, false)
	tickAt(s, ms(10), trace.StateRunnable, "java.util.HashMap", false, false)
	tickAt(s, ms(15), trace.StateRunnable, "com.example.Model", false, false)
	tickAt(s, ms(25), trace.StateRunnable, "sun.j2d.Draw", true, false)
	tickAt(s, ms(500), trace.StateRunnable, "com.example.Idle", false, false)

	loc := LocationAnalysis([]*trace.Session{s}, th, false, nil)
	if loc.JavaSamples != 3 {
		t.Fatalf("JavaSamples = %d, want 3", loc.JavaSamples)
	}
	if math.Abs(loc.Library-2.0/3) > 1e-12 || math.Abs(loc.App-1.0/3) > 1e-12 {
		t.Errorf("App/Library = %v/%v", loc.App, loc.Library)
	}
	// GC: 20ms of 200ms = 0.1; native exclusive: 30ms of 200ms = 0.15.
	if math.Abs(loc.GC-0.1) > 1e-12 {
		t.Errorf("GC frac = %v, want 0.1", loc.GC)
	}
	if math.Abs(loc.Native-0.15) > 1e-12 {
		t.Errorf("Native frac = %v, want 0.15", loc.Native)
	}
	if loc.EpisodeTime != trace.Ms(200) {
		t.Errorf("EpisodeTime = %v", loc.EpisodeTime)
	}
}

func TestLocationAnalysisPerceptibleFilter(t *testing.T) {
	fast := ep(ms(0), trace.Ms(50), trace.NewGC(ms(10), trace.Ms(25), false))
	slow := ep(ms(1000), trace.Ms(200), trace.NewGC(ms(1010), trace.Ms(20), false))
	s := sessionWith(fast, slow)
	all := LocationAnalysis([]*trace.Session{s}, th, false, nil)
	long := LocationAnalysis([]*trace.Session{s}, th, true, nil)
	if math.Abs(all.GC-45.0/250) > 1e-12 {
		t.Errorf("all GC = %v", all.GC)
	}
	if math.Abs(long.GC-0.1) > 1e-12 {
		t.Errorf("perceptible GC = %v", long.GC)
	}
	if all.JavaSamples != 0 || all.App != 0 || all.Library != 0 {
		t.Error("sample split should be zero without samples")
	}
}

func TestPrefixClassifier(t *testing.T) {
	isLib := DefaultLibraryClassifier
	for _, cls := range []string{"java.util.ArrayList", "javax.swing.JButton", "sun.awt.X", "com.apple.laf.ComboBox", "jdk.internal.Foo"} {
		if !isLib(trace.Frame{Class: cls}) {
			t.Errorf("%s should be library", cls)
		}
	}
	for _, cls := range []string{"com.example.App", "org.gantt.Chart", "net.sf.jedit.Buffer", "javafake.X"} {
		if isLib(trace.Frame{Class: cls}) {
			t.Errorf("%s should be application", cls)
		}
	}
	custom := PrefixClassifier([]string{"org.gantt."})
	if !custom(trace.Frame{Class: "org.gantt.Chart"}) {
		t.Error("custom prefix ignored")
	}
}

func TestConcurrency(t *testing.T) {
	e := ep(ms(0), trace.Ms(200), trace.NewInterval(trace.KindListener, "a.B", "on", ms(0), trace.Ms(150)))
	s := sessionWith(e)
	// Tick 1: GUI runnable + worker runnable = 2.
	tickAt(s, ms(10), trace.StateRunnable, "a.B", false, true)
	// Tick 2: GUI blocked, worker waiting = 0.
	tickAt(s, ms(20), trace.StateBlocked, "a.B", false, false)
	// Tick 3: GUI runnable, worker waiting = 1.
	tickAt(s, ms(30), trace.StateRunnable, "a.B", false, false)
	// Outside the episode: ignored.
	tickAt(s, ms(900), trace.StateRunnable, "a.B", false, true)

	avg, n := Concurrency([]*trace.Session{s}, th, false)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	if got := avg; math.Abs(got-1.0) > 1e-12 {
		t.Errorf("avg runnable = %v, want 1.0", got)
	}
	if avg, n := Concurrency(nil, th, false); avg != 0 || n != 0 {
		t.Error("empty concurrency should be 0,0")
	}
}

func TestCauseAnalysis(t *testing.T) {
	e := ep(ms(0), trace.Ms(400), trace.NewInterval(trace.KindListener, "a.B", "on", ms(0), trace.Ms(350)))
	s := sessionWith(e)
	tickAt(s, ms(10), trace.StateRunnable, "a.B", false, false)
	tickAt(s, ms(20), trace.StateRunnable, "a.B", false, false)
	tickAt(s, ms(30), trace.StateBlocked, "a.B", false, false)
	tickAt(s, ms(40), trace.StateSleeping, "com.apple.laf.Blink", false, false)

	c := CauseAnalysis([]*trace.Session{s}, th, false)
	if c.Samples != 4 {
		t.Fatalf("samples = %d", c.Samples)
	}
	if c.Runnable != 0.5 || c.Blocked != 0.25 || c.Sleeping != 0.25 || c.Waiting != 0 {
		t.Errorf("shares = %+v", c)
	}
	if sum := c.Runnable + c.Blocked + c.Sleeping + c.Waiting; math.Abs(sum-1) > 1e-12 {
		t.Errorf("shares sum to %v", sum)
	}
	for _, st := range trace.ThreadStates() {
		if c.Frac(st) < 0 {
			t.Errorf("negative share for %v", st)
		}
	}
	if got := CauseAnalysis(nil, th, false); got.Samples != 0 {
		t.Error("empty cause analysis should have 0 samples")
	}
}

func TestOverviewOf(t *testing.T) {
	mkSession := func(id int) *trace.Session {
		s := sessionWith(
			ep(ms(0), trace.Ms(200), trace.NewInterval(trace.KindListener, "a.B", "on", ms(0), trace.Ms(100))),
			ep(ms(1000), trace.Ms(50), trace.NewInterval(trace.KindListener, "a.B", "on", ms(1000), trace.Ms(25))),
			ep(ms(2000), trace.Ms(150), trace.NewInterval(trace.KindPaint, "x.P", "paint", ms(2000), trace.Ms(100))),
			ep(ms(3000), trace.Ms(10)), // unstructured
		)
		s.ID = id
		s.ShortCount = 1000
		s.End = ms(10000) // 10 s E2E
		return s
	}
	suite := &trace.Suite{App: "TestApp", Sessions: []*trace.Session{mkSession(0), mkSession(1)}}
	o := OverviewOf(suite, th)

	if o.App != "TestApp" || o.Sessions != 2 {
		t.Errorf("identity: %+v", o)
	}
	if o.E2ESeconds != 10 {
		t.Errorf("E2E = %v", o.E2ESeconds)
	}
	// In-episode: 410ms of 10s.
	if math.Abs(o.InEpsFrac-0.041) > 1e-9 {
		t.Errorf("InEpsFrac = %v", o.InEpsFrac)
	}
	if o.Short != 1000 || o.Traced != 4 || o.Perceptible != 2 {
		t.Errorf("counts: %+v", o)
	}
	// 2 perceptible per (0.41/60) minutes of in-episode time.
	wantLPM := 2 / (0.41 / 60)
	if math.Abs(o.LongPerMin-wantLPM) > 1e-6 {
		t.Errorf("LongPerMin = %v, want %v", o.LongPerMin, wantLPM)
	}
	// Patterns per session: listener pattern (2 eps) + paint pattern.
	if o.Dist != 2 || o.CoveredEps != 3 {
		t.Errorf("patterns: Dist=%v CoveredEps=%v", o.Dist, o.CoveredEps)
	}
	if o.OneEpFrac != 0.5 {
		t.Errorf("OneEpFrac = %v", o.OneEpFrac)
	}
	if o.Descs != 1 || o.Depth != 2 {
		t.Errorf("structure: Descs=%v Depth=%v", o.Descs, o.Depth)
	}
}

func TestOverviewEmptySuite(t *testing.T) {
	o := OverviewOf(&trace.Suite{App: "Empty"}, th)
	if o.Sessions != 0 || o.Traced != 0 {
		t.Errorf("empty suite overview = %+v", o)
	}
}

func TestMeanOverview(t *testing.T) {
	rows := []Overview{
		{Sessions: 4, E2ESeconds: 100, Traced: 10, LongPerMin: 30, OneEpFrac: 0.4},
		{Sessions: 4, E2ESeconds: 300, Traced: 20, LongPerMin: 90, OneEpFrac: 0.6},
	}
	m := MeanOverview(rows)
	if m.App != "Mean" || m.Sessions != 8 {
		t.Errorf("mean identity: %+v", m)
	}
	if m.E2ESeconds != 200 || m.Traced != 15 || m.LongPerMin != 60 || m.OneEpFrac != 0.5 {
		t.Errorf("mean values: %+v", m)
	}
	if MeanOverview(nil).App != "Mean" {
		t.Error("empty mean should still be labelled")
	}
}

func TestTriggerNames(t *testing.T) {
	if len(Triggers()) != 4 {
		t.Fatal("want 4 trigger classes")
	}
	names := map[Trigger]string{
		TriggerInput: "input", TriggerOutput: "output",
		TriggerAsync: "async", TriggerUnspecified: "unspecified",
	}
	for tr, want := range names {
		if tr.String() != want {
			t.Errorf("%d.String() = %q, want %q", tr, tr.String(), want)
		}
	}
}
