package analysis

import "lagalyzer/internal/trace"

// The HCI literature the paper builds on does not agree on a single
// perceptibility threshold: Shneiderman's classic 100 ms, Dabrowski
// and Munson's 150 ms for keyboard and 195 ms for mouse input, and
// MacKenzie and Ware's 225 ms beyond which virtual-reality performance
// degrades sharply. LiteratureThresholds collects them for sensitivity
// analyses.
var LiteratureThresholds = []trace.Dur{
	100 * trace.Millisecond, // Shneiderman [10,11]
	150 * trace.Millisecond, // Dabrowski & Munson, keyboard [1]
	195 * trace.Millisecond, // Dabrowski & Munson, mouse [1]
	225 * trace.Millisecond, // MacKenzie & Ware [7]
}

// ThresholdPoint reports perceptible-episode statistics at one
// candidate threshold.
type ThresholdPoint struct {
	Threshold trace.Dur
	// Episodes is the number of traced episodes at or above the
	// threshold.
	Episodes int
	// Frac is Episodes over all traced episodes.
	Frac float64
	// PerMin is the number of such episodes per minute of in-episode
	// time (Table III's "Long/min" at this threshold).
	PerMin float64
}

// ThresholdSweep evaluates how the study's headline numbers move with
// the perceptibility threshold — a sensitivity analysis over the
// disagreeing HCI literature. Thresholds nil means
// LiteratureThresholds.
func ThresholdSweep(sessions []*trace.Session, thresholds []trace.Dur) []ThresholdPoint {
	if thresholds == nil {
		thresholds = LiteratureThresholds
	}
	total := 0
	var inEps trace.Dur
	for _, s := range sessions {
		total += len(s.Episodes)
		inEps += s.InEpisode()
	}
	points := make([]ThresholdPoint, 0, len(thresholds))
	for _, th := range thresholds {
		n := 0
		for _, s := range sessions {
			n += len(s.PerceptibleEpisodes(th))
		}
		p := ThresholdPoint{Threshold: th, Episodes: n}
		if total > 0 {
			p.Frac = float64(n) / float64(total)
		}
		if inEps > 0 {
			p.PerMin = float64(n) / (inEps.Seconds() / 60)
		}
		points = append(points, p)
	}
	return points
}
