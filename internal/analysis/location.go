package analysis

import (
	"strings"

	"lagalyzer/internal/trace"
)

// LibraryClassifier decides whether a frame executes runtime-library
// code (as opposed to application code). The paper distinguishes the
// two "based on the fully qualified class name of the method that was
// executing when the sample was taken".
type LibraryClassifier func(trace.Frame) bool

// DefaultLibraryPrefixes are the class-name prefixes of the Java
// runtime libraries on the paper's platform (Apple's Java 6): the
// platform classes, the Sun/Apple internals, and the standards bodies'
// namespaces.
var DefaultLibraryPrefixes = []string{
	"java.", "javax.", "sun.", "com.sun.", "com.apple.", "apple.",
	"jdk.", "org.omg.", "org.w3c.", "org.xml.", "org.ietf.",
}

// PrefixClassifier builds a LibraryClassifier from class-name
// prefixes.
func PrefixClassifier(prefixes []string) LibraryClassifier {
	owned := make([]string, len(prefixes))
	copy(owned, prefixes)
	return func(f trace.Frame) bool {
		for _, p := range owned {
			if strings.HasPrefix(f.Class, p) {
				return true
			}
		}
		return false
	}
}

// DefaultLibraryClassifier classifies by DefaultLibraryPrefixes.
var DefaultLibraryClassifier = PrefixClassifier(DefaultLibraryPrefixes)

// LocationShares quantifies where episode time went (one application's
// two stacked bars of Figure 6).
//
// App and Library partition the Java-code samples of the episode
// thread: App+Library = 1 when any such samples exist. GC and Native
// are fractions of total episode *time* spent in garbage collection
// and in native calls (exclusive of nested GC), computed directly from
// the intervals.
type LocationShares struct {
	App     float64
	Library float64
	GC      float64
	Native  float64

	// JavaSamples is the number of samples behind the App/Library
	// split (0 means the split is undefined and reported as 0/0).
	JavaSamples int
	// EpisodeTime is the total episode time behind the GC/Native
	// fractions.
	EpisodeTime trace.Dur
}

// LocationAnalysis computes LocationShares over the sessions'
// episodes; onlyPerceptible restricts to episodes at or above the
// threshold (the lower panel of Figure 6).
//
// The App/Library split follows the paper: call-stack samples of the
// episode's dispatch thread, taken during the episode while executing
// Java code (native-leaf samples are excluded), classified by the leaf
// frame's class name. The GC/Native split instead uses the explicit
// intervals: exclusive GC time and exclusive native time as fractions
// of total episode time.
func LocationAnalysis(sessions []*trace.Session, threshold trace.Dur, onlyPerceptible bool, isLibrary LibraryClassifier) LocationShares {
	if isLibrary == nil {
		isLibrary = DefaultLibraryClassifier
	}
	var (
		appSamples, libSamples int
		gcTime, nativeTime     trace.Dur
		episodeTime            trace.Dur
	)
	for _, s := range sessions {
		for _, e := range s.Episodes {
			if onlyPerceptible && !e.Perceptible(threshold) {
				continue
			}
			episodeTime += e.Dur()
			kt := e.Root.KindTime()
			gcTime += kt[trace.KindGC]
			nativeTime += kt[trace.KindNative]

			for _, tick := range s.EpisodeTicks(e) {
				ts, ok := tick.Thread(e.Thread)
				if !ok {
					continue
				}
				leaf, ok := ts.Leaf()
				if !ok || leaf.Native {
					continue // not executing Java code
				}
				if isLibrary(leaf) {
					libSamples++
				} else {
					appSamples++
				}
			}
		}
	}
	shares := LocationShares{
		JavaSamples: appSamples + libSamples,
		EpisodeTime: episodeTime,
	}
	if shares.JavaSamples > 0 {
		shares.App = float64(appSamples) / float64(shares.JavaSamples)
		shares.Library = float64(libSamples) / float64(shares.JavaSamples)
	}
	if episodeTime > 0 {
		shares.GC = float64(gcTime) / float64(episodeTime)
		shares.Native = float64(nativeTime) / float64(episodeTime)
	}
	return shares
}
