package lila

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"lagalyzer/internal/trace"
)

// The binary format:
//
//	magic "LILA" + version byte
//	header: app string, then uvarints for session id, gui thread,
//	        filter threshold, sample period, start time
//	records: type byte followed by type-specific fields
//
// Integers are varint-encoded; record times are signed deltas from the
// previous record's time. Strings are interned: a string reference is
// either 0 followed by an inline length-prefixed string (which is
// assigned the next table index), or the 1-based table index of a
// previously seen string. Symbol-heavy traces (every paint call names
// the same few classes) compress well under this scheme.

var binaryMagic = [5]byte{'L', 'I', 'L', 'A', FormatVersion}

// BinaryWriter writes a trace in the binary format.
type BinaryWriter struct {
	w        *bufio.Writer
	buf      []byte
	strings  map[string]uint64
	lastTime trace.Time
	closed   bool
}

// NewBinaryWriter writes the header for h to w and returns a writer
// for the record stream.
func NewBinaryWriter(w io.Writer, h Header) (*BinaryWriter, error) {
	bw := &BinaryWriter{
		w:       bufio.NewWriterSize(w, 1<<16),
		strings: make(map[string]uint64),
	}
	if _, err := bw.w.Write(binaryMagic[:]); err != nil {
		return nil, fmt.Errorf("lila: writing binary magic: %w", err)
	}
	bw.buf = bw.buf[:0]
	bw.appendString(h.App)
	bw.buf = binary.AppendVarint(bw.buf, int64(h.SessionID))
	bw.buf = binary.AppendVarint(bw.buf, int64(h.GUIThread))
	bw.buf = binary.AppendVarint(bw.buf, int64(h.FilterThreshold))
	bw.buf = binary.AppendVarint(bw.buf, int64(h.SamplePeriod))
	bw.buf = binary.AppendVarint(bw.buf, int64(h.Start))
	if _, err := bw.w.Write(bw.buf); err != nil {
		return nil, fmt.Errorf("lila: writing binary header: %w", err)
	}
	return bw, nil
}

// appendString appends a raw (non-interned) length-prefixed string.
func (bw *BinaryWriter) appendString(s string) {
	bw.buf = binary.AppendUvarint(bw.buf, uint64(len(s)))
	bw.buf = append(bw.buf, s...)
}

// appendRef appends an interned string reference.
func (bw *BinaryWriter) appendRef(s string) {
	if id, ok := bw.strings[s]; ok {
		bw.buf = binary.AppendUvarint(bw.buf, id)
		return
	}
	bw.buf = binary.AppendUvarint(bw.buf, 0)
	bw.appendString(s)
	bw.strings[s] = uint64(len(bw.strings) + 1)
}

func (bw *BinaryWriter) appendTime(t trace.Time) {
	bw.buf = binary.AppendVarint(bw.buf, int64(t-bw.lastTime))
	bw.lastTime = t
}

// WriteRecord implements Writer.
func (bw *BinaryWriter) WriteRecord(r *Record) error {
	if bw.closed {
		return fmt.Errorf("lila: write after Close")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	bw.buf = bw.buf[:0]
	bw.buf = append(bw.buf, byte(r.Type))
	switch r.Type {
	case RecThread:
		bw.buf = binary.AppendVarint(bw.buf, int64(r.Thread))
		bw.appendString(r.Name)
		bw.buf = append(bw.buf, b2byte(r.Daemon))
	case RecCall:
		bw.appendTime(r.Time)
		bw.buf = binary.AppendVarint(bw.buf, int64(r.Thread))
		bw.buf = append(bw.buf, byte(r.Kind))
		bw.appendRef(r.Class)
		bw.appendRef(r.Method)
	case RecReturn:
		bw.appendTime(r.Time)
		bw.buf = binary.AppendVarint(bw.buf, int64(r.Thread))
	case RecGCStart:
		bw.appendTime(r.Time)
		bw.buf = append(bw.buf, b2byte(r.Major))
	case RecGCEnd:
		bw.appendTime(r.Time)
	case RecSample:
		bw.appendTime(r.Time)
		bw.buf = binary.AppendVarint(bw.buf, int64(r.Thread))
		bw.buf = append(bw.buf, byte(r.State))
		bw.buf = binary.AppendUvarint(bw.buf, uint64(len(r.Stack)))
		for _, f := range r.Stack {
			bw.buf = append(bw.buf, b2byte(f.Native))
			bw.appendRef(f.Class)
			bw.appendRef(f.Method)
		}
	case RecEnd:
		bw.appendTime(r.Time)
		bw.buf = binary.AppendUvarint(bw.buf, uint64(r.Count))
	}
	if _, err := bw.w.Write(bw.buf); err != nil {
		return fmt.Errorf("lila: writing binary record: %w", err)
	}
	return nil
}

// Close implements Writer.
func (bw *BinaryWriter) Close() error {
	if bw.closed {
		return nil
	}
	bw.closed = true
	if err := bw.w.Flush(); err != nil {
		return fmt.Errorf("lila: flushing binary trace: %w", err)
	}
	return nil
}

func b2byte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// BinaryReader reads a trace in the binary format (fail-stop; for the
// damage-tolerant variant see NewBinaryReaderOptions with Salvage).
//
// Decoding is allocation-lean: records come from a chunked arena,
// string-table entries are interned process-wide exactly once (so
// identical class/method names are shared across sessions), and
// identical sampled stacks within the session collapse onto one
// shared []Frame.
type BinaryReader struct {
	r        *bufio.Reader
	h        Header
	strings  []string
	lastTime trace.Time
	limits   Limits
	records  int
	done     bool

	arena    recArena
	stacks   stackTab
	frameBuf []trace.Frame // per-sample decode scratch, reused
}

// NewBinaryReader parses the header from r and returns a reader for
// the record stream.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	return newBinaryReaderLimits(r, Limits{})
}

// NewBinaryReaderOptions is NewBinaryReader with explicit options.
// With o.Salvage set it returns a salvage-mode reader that buffers the
// record stream and resynchronizes past damage (see BinarySalvageReader);
// otherwise it returns the streaming fail-stop reader with o.Limits
// applied.
func NewBinaryReaderOptions(r io.Reader, o ReaderOptions) (Reader, error) {
	if o.Salvage {
		return NewBinarySalvageReader(r, o.Limits)
	}
	return newBinaryReaderLimits(r, o.Limits)
}

func newBinaryReaderLimits(r io.Reader, limits Limits) (*BinaryReader, error) {
	br := &BinaryReader{r: bufio.NewReaderSize(r, 1<<16), limits: limits.WithDefaults()}
	var magic [5]byte
	if _, err := io.ReadFull(br.r, magic[:]); err != nil {
		return nil, fmt.Errorf("lila: reading binary magic: %w", err)
	}
	if magic != binaryMagic {
		if string(magic[:4]) == "LILA" {
			return nil, fmt.Errorf("%w %d (this is the v1 binary reader)",
				ErrUnsupportedVersion, magic[4])
		}
		return nil, fmt.Errorf("lila: bad magic %q (version %d?)", magic[:4], magic[4])
	}
	var err error
	if br.h.App, err = br.readString(); err != nil {
		return nil, fmt.Errorf("lila: binary header app: %w", err)
	}
	fields := []*int64{}
	var sid, gui, filt, period, start int64
	fields = append(fields, &sid, &gui, &filt, &period, &start)
	for _, f := range fields {
		if *f, err = binary.ReadVarint(br.r); err != nil {
			return nil, fmt.Errorf("lila: binary header: %w", err)
		}
	}
	br.h.SessionID = int(sid)
	br.h.GUIThread = trace.ThreadID(gui)
	br.h.FilterThreshold = trace.Dur(filt)
	br.h.SamplePeriod = trace.Dur(period)
	br.h.Start = trace.Time(start)
	return br, nil
}

func (br *BinaryReader) readString() (string, error) {
	n, err := binary.ReadUvarint(br.r)
	if err != nil {
		return "", err
	}
	if n > uint64(br.limits.MaxStringLen) {
		return "", limitErrf("implausible string length %d", n)
	}
	// Read into pooled scratch and intern: a string seen before (by
	// any session in the process) costs no allocation at all.
	buf := scratchPool.Get().([]byte)
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br.r, buf); err != nil {
		scratchPool.Put(buf[:0])
		return "", err
	}
	s := internBytes(buf)
	scratchPool.Put(buf[:0])
	return s, nil
}

func (br *BinaryReader) readRef() (string, error) {
	id, err := binary.ReadUvarint(br.r)
	if err != nil {
		return "", err
	}
	if id == 0 {
		s, err := br.readString()
		if err != nil {
			return "", err
		}
		if len(br.strings) >= br.limits.MaxStringTable {
			return "", limitErrf("string table exceeds limit %d", br.limits.MaxStringTable)
		}
		br.strings = append(br.strings, s)
		return s, nil
	}
	if id > uint64(len(br.strings)) {
		return "", fmt.Errorf("string ref %d beyond table size %d", id, len(br.strings))
	}
	return br.strings[id-1], nil
}

func (br *BinaryReader) readTime() (trace.Time, error) {
	dt, err := binary.ReadVarint(br.r)
	if err != nil {
		return 0, err
	}
	br.lastTime += trace.Time(dt)
	return br.lastTime, nil
}

// Header implements Reader.
func (br *BinaryReader) Header() Header { return br.h }

// Read implements Reader. It returns io.EOF after the end record.
func (br *BinaryReader) Read() (*Record, error) {
	if br.done {
		return nil, io.EOF
	}
	if br.records >= br.limits.MaxRecords {
		br.done = true
		return nil, limitErrf("lila: record limit %d exceeded", br.limits.MaxRecords)
	}
	rec, err := br.read()
	if err != nil {
		if err == io.EOF {
			br.done = true
			return nil, fmt.Errorf("lila: truncated trace: no end record")
		}
		return nil, err
	}
	br.records++
	if rec.Type == RecEnd {
		br.done = true
	}
	return rec, nil
}

func (br *BinaryReader) read() (*Record, error) {
	tb, err := br.r.ReadByte()
	if err != nil {
		return nil, err
	}
	if int(tb) >= numRecTypes {
		return nil, fmt.Errorf("lila: unknown binary record type %d", tb)
	}
	rec := br.arena.new()
	rec.Type = RecType(tb)
	fail := func(err error) (*Record, error) {
		return nil, fmt.Errorf("lila: reading %s record: %w", rec.Type, err)
	}
	readTID := func() error {
		v, err := binary.ReadVarint(br.r)
		rec.Thread = trace.ThreadID(v)
		return err
	}
	switch rec.Type {
	case RecThread:
		if err := readTID(); err != nil {
			return fail(err)
		}
		if rec.Name, err = br.readString(); err != nil {
			return fail(err)
		}
		d, err := br.r.ReadByte()
		if err != nil {
			return fail(err)
		}
		rec.Daemon = d == 1
	case RecCall:
		if rec.Time, err = br.readTime(); err != nil {
			return fail(err)
		}
		if err := readTID(); err != nil {
			return fail(err)
		}
		k, err := br.r.ReadByte()
		if err != nil {
			return fail(err)
		}
		rec.Kind = trace.Kind(k)
		if rec.Class, err = br.readRef(); err != nil {
			return fail(err)
		}
		if rec.Method, err = br.readRef(); err != nil {
			return fail(err)
		}
	case RecReturn:
		if rec.Time, err = br.readTime(); err != nil {
			return fail(err)
		}
		if err := readTID(); err != nil {
			return fail(err)
		}
	case RecGCStart:
		if rec.Time, err = br.readTime(); err != nil {
			return fail(err)
		}
		m, err := br.r.ReadByte()
		if err != nil {
			return fail(err)
		}
		rec.Major = m == 1
	case RecGCEnd:
		if rec.Time, err = br.readTime(); err != nil {
			return fail(err)
		}
	case RecSample:
		if rec.Time, err = br.readTime(); err != nil {
			return fail(err)
		}
		if err := readTID(); err != nil {
			return fail(err)
		}
		st, err := br.r.ReadByte()
		if err != nil {
			return fail(err)
		}
		rec.State = trace.ThreadState(st)
		n, err := binary.ReadUvarint(br.r)
		if err != nil {
			return fail(err)
		}
		if n > uint64(br.limits.MaxStackDepth) {
			return fail(limitErrf("implausible stack depth %d", n))
		}
		// Decode into the reusable scratch, then collapse onto the
		// session's canonical copy of this exact stack (real samplers
		// see the same few stacks tens of thousands of times).
		if cap(br.frameBuf) < int(n) {
			br.frameBuf = make([]trace.Frame, n)
		}
		br.frameBuf = br.frameBuf[:n]
		for i := range br.frameBuf {
			nb, err := br.r.ReadByte()
			if err != nil {
				return fail(err)
			}
			br.frameBuf[i].Native = nb == 1
			if br.frameBuf[i].Class, err = br.readRef(); err != nil {
				return fail(err)
			}
			if br.frameBuf[i].Method, err = br.readRef(); err != nil {
				return fail(err)
			}
		}
		rec.Stack = br.stacks.canon(br.frameBuf)
	case RecEnd:
		if rec.Time, err = br.readTime(); err != nil {
			return fail(err)
		}
		n, err := binary.ReadUvarint(br.r)
		if err != nil {
			return fail(err)
		}
		rec.Count = int(n)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}
