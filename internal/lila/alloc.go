package lila

import (
	"sync"

	"lagalyzer/internal/intern"
	"lagalyzer/internal/trace"
)

// Allocation-lean decode plumbing shared by the text, binary, and
// salvage readers. A multi-hundred-thousand-record session used to
// cost one heap allocation per record plus one per sampled stack;
// the arenas below amortize the former to one allocation per chunk
// and the dedup table collapses the latter onto one shared slice per
// distinct stack, which matters because real samplers see the same
// few stacks (the idle EDT stack, parked workers) tens of thousands
// of times per session.

// recChunkSize is the records-per-allocation granularity of recArena.
// Records handed out are never recycled — they stay valid for the
// life of the session being built — so the only cost of a larger
// chunk is tail waste on the final one.
const recChunkSize = 1024

// recArena hands out Record slots from chunked slabs. The zero value
// is ready to use. Not safe for concurrent use; every reader owns its
// own arena (LoadTraceDir parallelism is one reader per file).
type recArena struct {
	chunk []Record
}

// new returns a pointer to a zeroed Record that remains valid (and is
// never reused) after the arena moves on.
func (a *recArena) new() *Record {
	if len(a.chunk) == 0 {
		a.chunk = make([]Record, recChunkSize)
	}
	r := &a.chunk[0]
	a.chunk = a.chunk[1:]
	return r
}

// stackTab deduplicates decoded call stacks within one session: the
// decoder parses each sample's frames into a scratch buffer, and the
// table either returns the shared slice of an identical earlier stack
// or copies the scratch into a fresh canonical slice. Frame strings
// are interned before lookup, so equality checks usually
// short-circuit on identical string data pointers.
type stackTab struct {
	m map[uint64][][]trace.Frame
}

// canon returns the canonical slice for the frames in scratch,
// copying them only the first time this exact stack is seen.
func (t *stackTab) canon(scratch []trace.Frame) []trace.Frame {
	if len(scratch) == 0 {
		return nil
	}
	h := uint64(14695981039346656037)
	for i := range scratch {
		f := &scratch[i]
		for j := 0; j < len(f.Class); j++ {
			h ^= uint64(f.Class[j])
			h *= 1099511628211
		}
		h ^= '#'
		h *= 1099511628211
		for j := 0; j < len(f.Method); j++ {
			h ^= uint64(f.Method[j])
			h *= 1099511628211
		}
		if f.Native {
			h ^= 1
		}
		h *= 1099511628211
	}
	if t.m == nil {
		t.m = make(map[uint64][][]trace.Frame)
	}
	for _, cand := range t.m[h] {
		if framesEqual(cand, scratch) {
			return cand
		}
	}
	cp := make([]trace.Frame, len(scratch))
	copy(cp, scratch)
	t.m[h] = append(t.m[h], cp)
	return cp
}

func framesEqual(a, b []trace.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scratchPool recycles the byte buffers the binary decoders read
// inline strings into before interning; the pooled buffer never
// escapes a single readString call.
var scratchPool = sync.Pool{
	New: func() any { return make([]byte, 0, 256) },
}

// internBytes is intern.Bytes; aliased here so the decoders read as
// one layer.
func internBytes(b []byte) string { return intern.Bytes(b) }

// internString is intern.String for the text decoder's tokens.
func internString(s string) string { return intern.String(s) }
