package lila

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lagalyzer/internal/trace"
)

// The text format is line-oriented. A trace starts with a header block
// of "#key value" lines terminated by the first record line. Record
// lines are space-separated fields:
//
//	T <tid> <name-quoted> <daemon 0|1>
//	C <ns> <tid> <kind> <class> <method>
//	R <ns> <tid>
//	G <ns> <major 0|1>
//	H <ns>
//	S <ns> <tid> <state> <stack>
//	E <ns> <shortcount>
//
// Stack frames are leaf-first, ';'-separated, each "class#method" with
// a '*' prefix marking native frames; "-" denotes an empty stack.
// Class and method names must not contain whitespace, ';', or '#'
// (true of JVM symbols).

// TextWriter writes a trace in the text format.
type TextWriter struct {
	w      *bufio.Writer
	closed bool
	err    error
}

// NewTextWriter writes the header for h to w and returns a writer for
// the record stream.
func NewTextWriter(w io.Writer, h Header) (*TextWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "#lila text %d\n", FormatVersion)
	fmt.Fprintf(bw, "#app %s\n", strconv.Quote(h.App))
	fmt.Fprintf(bw, "#session %d\n", h.SessionID)
	fmt.Fprintf(bw, "#gui %d\n", h.GUIThread)
	fmt.Fprintf(bw, "#filter %d\n", int64(h.FilterThreshold))
	fmt.Fprintf(bw, "#sampleperiod %d\n", int64(h.SamplePeriod))
	fmt.Fprintf(bw, "#start %d\n", int64(h.Start))
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("lila: writing text header: %w", err)
	}
	return &TextWriter{w: bw}, nil
}

func checkSymbol(role, s string) error {
	if strings.ContainsAny(s, " \t\n;#") {
		return fmt.Errorf("lila: %s %q contains reserved characters", role, s)
	}
	return nil
}

// WriteRecord implements Writer.
func (tw *TextWriter) WriteRecord(r *Record) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.closed {
		return fmt.Errorf("lila: write after Close")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	switch r.Type {
	case RecThread:
		fmt.Fprintf(tw.w, "T %d %s %d\n", r.Thread, strconv.Quote(r.Name), b2i(r.Daemon))
	case RecCall:
		if err := checkSymbol("class", r.Class); err != nil {
			return err
		}
		if err := checkSymbol("method", r.Method); err != nil {
			return err
		}
		fmt.Fprintf(tw.w, "C %d %d %s %s %s\n", int64(r.Time), r.Thread, r.Kind, emptyDash(r.Class), emptyDash(r.Method))
	case RecReturn:
		fmt.Fprintf(tw.w, "R %d %d\n", int64(r.Time), r.Thread)
	case RecGCStart:
		fmt.Fprintf(tw.w, "G %d %d\n", int64(r.Time), b2i(r.Major))
	case RecGCEnd:
		fmt.Fprintf(tw.w, "H %d\n", int64(r.Time))
	case RecSample:
		stack, err := formatStack(r.Stack)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw.w, "S %d %d %s %s\n", int64(r.Time), r.Thread, r.State, stack)
	case RecEnd:
		fmt.Fprintf(tw.w, "E %d %d\n", int64(r.Time), r.Count)
	}
	return nil
}

// Close flushes buffered output. It does not write an end record; the
// producer is responsible for emitting RecEnd.
func (tw *TextWriter) Close() error {
	if tw.closed {
		return nil
	}
	tw.closed = true
	if err := tw.w.Flush(); err != nil {
		tw.err = err
		return fmt.Errorf("lila: flushing text trace: %w", err)
	}
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func emptyDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func dashEmpty(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

func formatStack(stack []trace.Frame) (string, error) {
	if len(stack) == 0 {
		return "-", nil
	}
	var b strings.Builder
	for i, f := range stack {
		if err := checkSymbol("frame class", f.Class); err != nil {
			return "", err
		}
		if err := checkSymbol("frame method", f.Method); err != nil {
			return "", err
		}
		if i > 0 {
			b.WriteByte(';')
		}
		if f.Native {
			b.WriteByte('*')
		}
		b.WriteString(f.Class)
		b.WriteByte('#')
		b.WriteString(f.Method)
	}
	return b.String(), nil
}

// parseStack parses a ';'-separated stack into the reader's scratch
// buffer, interning every symbol, and returns the session-canonical
// shared slice for that exact stack (see stackTab).
func (tr *TextReader) parseStack(s string) ([]trace.Frame, error) {
	if s == "-" {
		return nil, nil
	}
	tr.frameBuf = tr.frameBuf[:0]
	for len(s) > 0 {
		p := s
		if i := strings.IndexByte(s, ';'); i >= 0 {
			p, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		f := trace.Frame{}
		if strings.HasPrefix(p, "*") {
			f.Native = true
			p = p[1:]
		}
		class, method, ok := strings.Cut(p, "#")
		if !ok || class == "" || method == "" {
			return nil, fmt.Errorf("lila: malformed stack frame %q", p)
		}
		f.Class, f.Method = internString(class), internString(method)
		tr.frameBuf = append(tr.frameBuf, f)
	}
	return tr.stacks.canon(tr.frameBuf), nil
}

// TextReader reads a trace in the text format. Like the binary
// reader, decoding is allocation-lean: records come from a chunked
// arena, symbol tokens are interned process-wide, and identical
// sampled stacks share one canonical []Frame per session.
type TextReader struct {
	s            *bufio.Scanner
	h            Header
	line         int
	done         bool
	sawEnd       bool
	unterminated bool // final line had no newline (set by the split func)
	limits       Limits
	report       *SalvageReport // nil outside salvage mode
	records      int
	flushed      bool

	arena    recArena
	stacks   stackTab
	frameBuf []trace.Frame // per-sample parse scratch, reused
}

// NewTextReader parses the header from r and returns a reader for the
// record stream.
func NewTextReader(r io.Reader) (*TextReader, error) {
	return NewTextReaderOptions(r, ReaderOptions{})
}

// NewTextReaderOptions is NewTextReader with explicit options. In
// salvage mode a malformed record line is skipped (accounted in the
// SalvageReport) instead of failing the stream, and a missing end
// record yields a truncated-tail report instead of an error. The
// header block must still parse — a trace whose header is destroyed
// cannot be attributed to a session and fails either way.
func NewTextReaderOptions(r io.Reader, o ReaderOptions) (*TextReader, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), 1<<22)
	tr := &TextReader{s: s, limits: o.Limits.WithDefaults()}
	// Track whether the stream's final line lost its newline: a
	// truncation can cut a record mid-line yet leave a shorter,
	// still-parseable prefix (a sample line minus half its stack), so
	// salvage mode must distrust an unterminated final line.
	s.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		adv, tok, err := bufio.ScanLines(data, atEOF)
		if atEOF && err == nil && tok != nil && adv == len(data) &&
			len(data) > 0 && data[len(data)-1] != '\n' {
			tr.unterminated = true
		}
		return adv, tok, err
	})
	if o.Salvage {
		tr.report = &SalvageReport{}
	}
	if err := tr.readHeader(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Salvage implements SalvageReporter; it returns nil unless the reader
// was opened in salvage mode.
func (tr *TextReader) Salvage() *SalvageReport { return tr.report }

// finishStream publishes salvage metrics exactly once per trace.
func (tr *TextReader) finishStream() {
	if tr.flushed || tr.report == nil {
		return
	}
	tr.flushed = true
	tr.report.flushMetrics()
}

func (tr *TextReader) readHeader() error {
	want := []string{"#lila", "#app", "#session", "#gui", "#filter", "#sampleperiod", "#start"}
	for _, key := range want {
		if !tr.s.Scan() {
			return fmt.Errorf("lila: truncated text header (missing %s): %v", key, tr.s.Err())
		}
		tr.line++
		line := tr.s.Text()
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] != key {
			return fmt.Errorf("lila: text header line %d: got %q, want %s", tr.line, line, key)
		}
		var err error
		switch key {
		case "#lila":
			if len(fields) != 3 || fields[1] != "text" {
				return fmt.Errorf("lila: not a text trace: %q", line)
			}
			v, convErr := strconv.Atoi(fields[2])
			if convErr != nil {
				return fmt.Errorf("lila: malformed text format version %q", fields[2])
			}
			if v != FormatVersion {
				return fmt.Errorf("%w %d (text traces are v%d)",
					ErrUnsupportedVersion, v, FormatVersion)
			}
		case "#app":
			tr.h.App, err = strconv.Unquote(strings.TrimSpace(line[len("#app "):]))
		case "#session":
			tr.h.SessionID, err = strconv.Atoi(fields[1])
		case "#gui":
			var v int64
			v, err = strconv.ParseInt(fields[1], 10, 32)
			tr.h.GUIThread = trace.ThreadID(v)
		case "#filter":
			var v int64
			v, err = strconv.ParseInt(fields[1], 10, 64)
			tr.h.FilterThreshold = trace.Dur(v)
		case "#sampleperiod":
			var v int64
			v, err = strconv.ParseInt(fields[1], 10, 64)
			tr.h.SamplePeriod = trace.Dur(v)
		case "#start":
			var v int64
			v, err = strconv.ParseInt(fields[1], 10, 64)
			tr.h.Start = trace.Time(v)
		}
		if err != nil {
			return fmt.Errorf("lila: text header line %d (%q): %w", tr.line, line, err)
		}
	}
	return nil
}

// Header implements Reader.
func (tr *TextReader) Header() Header { return tr.h }

// Read implements Reader. It returns io.EOF after the end record.
func (tr *TextReader) Read() (*Record, error) {
	if tr.done {
		return nil, io.EOF
	}
	for tr.s.Scan() {
		tr.line++
		raw := tr.s.Text()
		line := strings.TrimSpace(raw)
		if tr.unterminated && tr.report != nil {
			// Truncation cut this line short; even if its prefix still
			// parses, trusting it would smuggle a mutilated record
			// (e.g. a sample missing half its stack) into the session.
			tr.done = true
			tr.report.TruncatedTail = true
			if line != "" && !strings.HasPrefix(line, "#") {
				tr.report.note(fmt.Errorf("lila: text line %d: unterminated final line", tr.line))
				tr.report.RecordsDropped++
				tr.report.BytesSkipped += int64(len(raw))
			}
			tr.finishStream()
			return nil, io.EOF
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if tr.records >= tr.limits.MaxRecords {
			tr.done = true
			tr.finishStream()
			return nil, limitErrf("lila: text line %d: record limit %d exceeded", tr.line, tr.limits.MaxRecords)
		}
		rec, err := tr.parseLine(line)
		if err != nil {
			err = fmt.Errorf("lila: text line %d: %w", tr.line, err)
			if tr.report != nil {
				// Salvage: drop the malformed line and resynchronize
				// at the next one (lines are self-delimiting).
				tr.report.note(err)
				tr.report.RecordsDropped++
				tr.report.BytesSkipped += int64(len(raw)) + 1
				tr.report.Resyncs++
				continue
			}
			return nil, err
		}
		tr.records++
		if tr.report != nil {
			tr.report.RecordsKept++
		}
		if rec.Type == RecEnd {
			tr.done = true
			tr.sawEnd = true
			tr.finishStream()
		}
		return rec, nil
	}
	tr.done = true
	if err := tr.s.Err(); err != nil {
		if tr.report != nil {
			tr.report.note(err)
			tr.report.TruncatedTail = true
			tr.finishStream()
			return nil, io.EOF
		}
		return nil, fmt.Errorf("lila: reading text trace: %w", err)
	}
	if tr.report != nil {
		tr.report.note(errTruncated)
		tr.report.TruncatedTail = true
		tr.finishStream()
		return nil, io.EOF
	}
	return nil, fmt.Errorf("lila: truncated trace: no end record")
}

func (tr *TextReader) parseLine(line string) (*Record, error) {
	fields := strings.Fields(line)
	op, args := fields[0], fields[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("record %q has %d fields, want %d", op, len(args), n)
		}
		return nil
	}
	parseTime := func(s string) (trace.Time, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		return trace.Time(v), err
	}
	parseTID := func(s string) (trace.ThreadID, error) {
		v, err := strconv.ParseInt(s, 10, 32)
		return trace.ThreadID(v), err
	}

	rec := tr.arena.new()
	var err error
	switch op {
	case "T":
		// The quoted name may contain spaces; re-split carefully.
		if len(args) < 3 {
			return nil, fmt.Errorf("thread record has %d fields, want 3", len(args))
		}
		rec.Type = RecThread
		if rec.Thread, err = parseTID(args[0]); err != nil {
			return nil, err
		}
		quoted := strings.Join(args[1:len(args)-1], " ")
		if len(quoted) > tr.limits.MaxStringLen {
			return nil, limitErrf("thread name exceeds string limit %d", tr.limits.MaxStringLen)
		}
		if rec.Name, err = strconv.Unquote(quoted); err != nil {
			return nil, fmt.Errorf("thread name %q: %w", quoted, err)
		}
		rec.Name = internString(rec.Name)
		rec.Daemon = args[len(args)-1] == "1"
	case "C":
		if err = need(5); err != nil {
			return nil, err
		}
		rec.Type = RecCall
		if rec.Time, err = parseTime(args[0]); err != nil {
			return nil, err
		}
		if rec.Thread, err = parseTID(args[1]); err != nil {
			return nil, err
		}
		if rec.Kind, err = trace.ParseKind(args[2]); err != nil {
			return nil, err
		}
		if len(args[3]) > tr.limits.MaxStringLen || len(args[4]) > tr.limits.MaxStringLen {
			return nil, limitErrf("symbol exceeds string limit %d", tr.limits.MaxStringLen)
		}
		rec.Class = internString(dashEmpty(args[3]))
		rec.Method = internString(dashEmpty(args[4]))
	case "R":
		if err = need(2); err != nil {
			return nil, err
		}
		rec.Type = RecReturn
		if rec.Time, err = parseTime(args[0]); err != nil {
			return nil, err
		}
		if rec.Thread, err = parseTID(args[1]); err != nil {
			return nil, err
		}
	case "G":
		if err = need(2); err != nil {
			return nil, err
		}
		rec.Type = RecGCStart
		if rec.Time, err = parseTime(args[0]); err != nil {
			return nil, err
		}
		rec.Major = args[1] == "1"
	case "H":
		if err = need(1); err != nil {
			return nil, err
		}
		rec.Type = RecGCEnd
		if rec.Time, err = parseTime(args[0]); err != nil {
			return nil, err
		}
	case "S":
		if err = need(4); err != nil {
			return nil, err
		}
		rec.Type = RecSample
		if rec.Time, err = parseTime(args[0]); err != nil {
			return nil, err
		}
		if rec.Thread, err = parseTID(args[1]); err != nil {
			return nil, err
		}
		if rec.State, err = trace.ParseThreadState(args[2]); err != nil {
			return nil, err
		}
		if rec.Stack, err = tr.parseStack(args[3]); err != nil {
			return nil, err
		}
		if len(rec.Stack) > tr.limits.MaxStackDepth {
			return nil, limitErrf("stack depth %d exceeds limit %d", len(rec.Stack), tr.limits.MaxStackDepth)
		}
	case "E":
		if err = need(2); err != nil {
			return nil, err
		}
		rec.Type = RecEnd
		if rec.Time, err = parseTime(args[0]); err != nil {
			return nil, err
		}
		if rec.Count, err = strconv.Atoi(args[1]); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown record %q", op)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}
