package lila_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"lagalyzer/internal/lila"
)

// drainUntilErr reads until the first non-EOF error and returns it
// (nil if the stream ends cleanly).
func drainUntilErr(t *testing.T, r lila.Reader) error {
	t.Helper()
	for {
		_, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// TestErrLimitClassification: tripping a resource guard surfaces an
// error matching errors.Is(err, ErrLimit) in every format — the signal
// ingest servers turn into 429 back-pressure — while plain malformed
// input must NOT match, or corrupt streams would masquerade as
// exhaustion and get retried forever.
func TestErrLimitClassification(t *testing.T) {
	for _, f := range []lila.Format{lila.FormatText, lila.FormatBinary} {
		t.Run(formatName(f), func(t *testing.T) {
			data, _, _ := genTrace(t, f, 8)

			r, err := lila.NewReaderOptions(bytes.NewReader(data), lila.ReaderOptions{
				Limits: lila.Limits{MaxRecords: 5},
			})
			if err != nil {
				t.Fatal(err)
			}
			lerr := drainUntilErr(t, r)
			if lerr == nil {
				t.Fatal("record limit 5 never tripped on a trace with dozens of records")
			}
			if !errors.Is(lerr, lila.ErrLimit) {
				t.Errorf("limit trip not classified: errors.Is(%v, ErrLimit) = false", lerr)
			}
		})
	}
}

// TestErrLimitStringGuard: a single oversized symbol trips
// MaxStringLen as an ErrLimit in the strict text reader.
func TestErrLimitStringGuard(t *testing.T) {
	trace := "#lila text 1\n#app \"t\"\n#session 1\n#gui 1\n#filter 0\n#sampleperiod 10000000\n#start 0\n" +
		"C 10 1 listener " + strings.Repeat("x", 64) + ".Cls m\n" +
		"E 20 0\n"
	r, err := lila.NewReaderOptions(strings.NewReader(trace), lila.ReaderOptions{
		Limits: lila.Limits{MaxStringLen: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	lerr := drainUntilErr(t, r)
	if lerr == nil || !errors.Is(lerr, lila.ErrLimit) {
		t.Errorf("oversized symbol: err = %v, want ErrLimit match", lerr)
	}
}

// TestMalformedIsNotErrLimit: garbage in a strict reader is a decode
// error, not resource exhaustion.
func TestMalformedIsNotErrLimit(t *testing.T) {
	trace := "#lila text 1\n#app \"t\"\n#session 1\n#gui 1\n#filter 0\n#sampleperiod 10000000\n#start 0\n" +
		"C notatime 1 listener a.B m\n"
	r, err := lila.NewReaderOptions(strings.NewReader(trace), lila.ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lerr := drainUntilErr(t, r)
	if lerr == nil {
		t.Fatal("malformed record accepted by the strict reader")
	}
	if errors.Is(lerr, lila.ErrLimit) {
		t.Errorf("malformed input misclassified as ErrLimit: %v", lerr)
	}
}

// TestErrLimitUnderSalvage: salvage mode swallows damage but must NOT
// swallow resource guards — a hostile stream that exceeds its budgets
// has to surface ErrLimit so the server can shed it.
func TestErrLimitUnderSalvage(t *testing.T) {
	data, _, _ := genTrace(t, lila.FormatText, 8)
	r, err := lila.NewReaderOptions(bytes.NewReader(data), lila.ReaderOptions{
		Salvage: true,
		Limits:  lila.Limits{MaxRecords: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	lerr := drainUntilErr(t, r)
	if lerr == nil || !errors.Is(lerr, lila.ErrLimit) {
		t.Errorf("salvage reader: err = %v, want ErrLimit match", lerr)
	}
}

func formatName(f lila.Format) string {
	if f == lila.FormatText {
		return "text"
	}
	return "binary"
}
