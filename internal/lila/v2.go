package lila

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"lagalyzer/internal/trace"
)

// The v2 format is block-structured and indexed, designed so readers
// can map the file into memory and decode only the blocks an analysis
// needs:
//
//	file      := magic header stringtab stacktab block* sentinel index trailer
//	magic     := "LILA" 0x02
//	header    := str(app) varint(session) varint(gui) varint(filter)
//	             varint(sampleperiod) varint(start)
//	str(s)    := uvarint(len) bytes
//	stringtab := uvarint(count) str*                      (ref 0 = "", ref i = entry i-1)
//	stacktab  := uvarint(count) stack*                    (ref 0 = empty, ref i = entry i-1)
//	stack     := uvarint(nframes) frame*                  (leaf first)
//	frame     := byte(flags: bit0 native) uvarint(classRef) uvarint(methodRef)
//	block     := rawblock | deflateblock
//	rawblock  := uvarint(storedLen > 0) uvarint(recordCount > 0)
//	             varint(baseTime) u32le(crc32c(stored)) stored
//	deflateblock := uvarint(storedLen > 0) uvarint(0) uvarint(recordCount)
//	             uvarint(inflatedLen) varint(baseTime) u32le(crc32c(stored)) stored
//	sentinel  := uvarint(0)                               (ends the block sequence)
//	index     := uvarint(blockCount) entry*
//	entry     := uvarint(offset) uvarint(length) uvarint(recordCount)
//	             varint(minTime) varint(maxTime) uvarint(threadBits) uvarint(flags)
//	             [uvarint(inflatedLen) iff flags&compressed]
//	trailer   := u64le(indexOffset) u32le(indexLen) u32le(crc32c(index)) "LILAIDX2"
//
// Unlike v1, every string and every distinct sampled call stack is
// written exactly once, up front; records reference them by table
// index, so the per-record hot path of a reader is a handful of varint
// reads and two slice lookups — no hashing, interning, or frame
// decoding. Record times are signed deltas from the previous record
// *within the block*, with the block's first delta taken from the
// header's baseTime: blocks decode independently, in any order, and a
// block lost to damage never shifts the absolute times of the blocks
// after it (the v1 salvage decoder cannot make that promise).
//
// The footer index carries per-block offsets, record counts, time
// spans, a 64-bit thread bitmap (bit tid%64 set for every thread with
// records in the block), and a global flag (the block holds thread
// declarations, GC brackets, or the end record). Selective readers
// skip blocks whose index entry cannot match their RecordFilter.
//
// Blocks may be individually DEFLATE-compressed (v2.1). A record
// count of 0 in the block header — impossible for a raw block, whose
// count is always positive — escapes into the compressed framing: the
// true record count and the inflated payload length follow, and the
// stored bytes are the flate stream of the payload. The CRC always
// covers the *stored* bytes, so damage is detected before any
// inflation, and a compressed index entry carries the inflated length
// after its flags, so selective readers still skip untouched blocks
// without inflating anything. The writer compresses per block and
// keeps whichever form is smaller, so pathological payloads never
// grow; uncompressed writes are byte-identical to v2.0.
//
// Damage tolerance is per block: each block carries a CRC of its
// stored bytes and the index carries its own CRC, so a salvage reader
// drops exactly the blocks that fail their checksum — an itemized
// loss, with no resynchronization scan — and survives a destroyed
// index by re-framing blocks from their self-describing headers.

// V2FormatVersion is the version byte of the block-indexed format.
const V2FormatVersion = 2

// v2Magic opens every v2 trace; it shares the "LILA" prefix with the
// v1 binary magic so version sniffing is uniform.
var v2Magic = [5]byte{'L', 'I', 'L', 'A', V2FormatVersion}

// v2TrailerMagic closes every v2 trace.
var v2TrailerMagic = [8]byte{'L', 'I', 'L', 'A', 'I', 'D', 'X', '2'}

// v2TrailerLen is the fixed byte length of the trailer.
const v2TrailerLen = 8 + 4 + 4 + 8

// DefaultV2BlockRecords is the records-per-block granularity of the
// writer. Blocks are the unit of selective decode and of salvage loss,
// so the default balances skip granularity against per-block overhead.
const DefaultV2BlockRecords = 4096

// v2CRC is the Castagnoli table shared by writer and readers.
var v2CRC = crc32.MakeTable(crc32.Castagnoli)

// v2 index entry flag bits.
const (
	// v2FlagGlobal marks a block containing records that apply to every
	// thread (thread declarations, GC brackets, the end record); such
	// blocks are decoded by every selective read.
	v2FlagGlobal = 1 << 0
	// v2FlagCompressed marks a block whose payload is stored as a raw
	// DEFLATE stream; the index entry then carries the inflated length
	// after its flags. The block's own header is authoritative for
	// decode (the count-0 escape, see the format comment); the index
	// flag exists so selective readers can account for compression
	// without touching the block.
	v2FlagCompressed = 1 << 1
)

// Compression selects the per-block codec of the v2 writer. It is a
// property of the encoding pass, not the format: readers accept raw
// and compressed blocks side by side in one file.
type Compression int

const (
	// CompressionNone stores every block raw (the v2.0 encoding).
	CompressionNone Compression = iota
	// CompressionFlate DEFLATE-compresses each block independently,
	// keeping a block raw when compression would not shrink it.
	CompressionFlate
)

// String returns "none" or "flate".
func (c Compression) String() string {
	switch c {
	case CompressionNone:
		return "none"
	case CompressionFlate:
		return "flate"
	default:
		return fmt.Sprintf("compression(%d)", int(c))
	}
}

// ParseCompression recognises "none" and "flate".
func ParseCompression(s string) (Compression, error) {
	switch s {
	case "none", "":
		return CompressionNone, nil
	case "flate":
		return CompressionFlate, nil
	}
	return 0, fmt.Errorf("lila: unknown compression %q (want none or flate)", s)
}

// threadBit maps a thread ID onto the 64-bit per-block thread bitmap.
func threadBit(id trace.ThreadID) uint64 {
	return 1 << (uint64(uint32(id)) % 64)
}

// V2WriterOptions tune the v2 writer beyond its defaults.
type V2WriterOptions struct {
	// BlockRecords caps the records per block; 0 takes
	// DefaultV2BlockRecords.
	BlockRecords int
	// Compression selects the per-block codec; the zero value stores
	// blocks raw.
	Compression Compression
}

// V2Writer writes a trace in the v2 block-indexed format. The string
// and stack tables precede the blocks in the file, so the writer
// buffers the record stream in memory and emits everything on Close —
// acceptable because v2 traces are produced from in-memory sessions
// (the simulator, Flatten, or a convert pass over another encoding).
type V2Writer struct {
	w      io.Writer
	h      Header
	opts   V2WriterOptions
	recs   []Record
	closed bool
}

// NewV2Writer returns a Writer that emits the v2 format on Close.
func NewV2Writer(w io.Writer, h Header) (*V2Writer, error) {
	return NewV2WriterOptions(w, h, V2WriterOptions{})
}

// NewV2WriterOptions is NewV2Writer with explicit options.
func NewV2WriterOptions(w io.Writer, h Header, opts V2WriterOptions) (*V2Writer, error) {
	if opts.BlockRecords <= 0 {
		opts.BlockRecords = DefaultV2BlockRecords
	}
	if opts.Compression != CompressionNone && opts.Compression != CompressionFlate {
		return nil, fmt.Errorf("lila: unknown compression %d", int(opts.Compression))
	}
	return &V2Writer{w: w, h: h, opts: opts}, nil
}

// WriteRecord implements Writer. Records are buffered until Close.
func (vw *V2Writer) WriteRecord(r *Record) error {
	if vw.closed {
		return fmt.Errorf("lila: write after Close")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	vw.recs = append(vw.recs, *r)
	return nil
}

// EncodeV2 encodes a complete record stream as a v2 trace and returns
// the file bytes. It is the programmatic twin of NewV2Writer for
// producers that already hold the whole stream in memory — the
// self-trace bridge (obs/selftrace) and tests — and validates each
// record the same way the streaming writer does.
func EncodeV2(h Header, recs []*Record) ([]byte, error) {
	var buf bytes.Buffer
	vw, err := NewV2Writer(&buf, h)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if err := vw.WriteRecord(r); err != nil {
			return nil, err
		}
	}
	if err := vw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// v2enc accumulates the encoded file and the intern state for the
// string and stack tables.
type v2enc struct {
	buf     []byte
	strings map[string]uint64
	strTab  []string
	stacks  stackTab // canonicalizes producer stacks before ref lookup
	stackID map[*trace.Frame]uint64
	stakTab [][]trace.Frame
}

func (e *v2enc) strRef(s string) uint64 {
	if s == "" {
		return 0
	}
	if id, ok := e.strings[s]; ok {
		return id
	}
	id := uint64(len(e.strTab) + 1)
	e.strings[s] = id
	e.strTab = append(e.strTab, s)
	return id
}

func (e *v2enc) stackRef(frames []trace.Frame) uint64 {
	if len(frames) == 0 {
		return 0
	}
	// Canonicalize so identical stacks from different producers (or a
	// reader that did not dedup) share one table entry, then key by the
	// canonical slice's first-frame pointer, which stackTab guarantees
	// is unique per distinct stack.
	canon := e.stacks.canon(frames)
	key := &canon[0]
	if id, ok := e.stackID[key]; ok {
		return id
	}
	// Intern the frame symbols now so the table section below reuses
	// the string refs records already forced.
	for _, f := range canon {
		e.strRef(f.Class)
		e.strRef(f.Method)
	}
	id := uint64(len(e.stakTab) + 1)
	e.stackID[key] = id
	e.stakTab = append(e.stakTab, canon)
	return id
}

func (e *v2enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *v2enc) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *v2enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// encodeRecord appends r's v2 payload encoding. lastTime is the
// running time base; the returned value carries it forward.
func (e *v2enc) encodeRecord(r *Record, lastTime trace.Time) trace.Time {
	e.buf = append(e.buf, byte(r.Type))
	dt := func() {
		e.varint(int64(r.Time - lastTime))
		lastTime = r.Time
	}
	switch r.Type {
	case RecThread:
		e.varint(int64(r.Thread))
		e.uvarint(e.strRef(r.Name))
		e.buf = append(e.buf, b2byte(r.Daemon))
	case RecCall:
		dt()
		e.varint(int64(r.Thread))
		e.buf = append(e.buf, byte(r.Kind))
		e.uvarint(e.strRef(r.Class))
		e.uvarint(e.strRef(r.Method))
	case RecReturn:
		dt()
		e.varint(int64(r.Thread))
	case RecGCStart:
		dt()
		e.buf = append(e.buf, b2byte(r.Major))
	case RecGCEnd:
		dt()
	case RecSample:
		dt()
		e.varint(int64(r.Thread))
		e.buf = append(e.buf, byte(r.State))
		e.uvarint(e.stackRef(r.Stack))
	case RecEnd:
		dt()
		e.uvarint(uint64(r.Count))
	}
	return lastTime
}

// blockMeta is the writer-side index entry.
type blockMeta struct {
	offset, length   uint64
	records          int
	minTime, maxTime trace.Time
	threadBits       uint64
	flags            uint64
	rawLen           uint64 // inflated payload length; set iff compressed
}

// Close encodes the buffered stream and writes the complete v2 file.
func (vw *V2Writer) Close() error {
	if vw.closed {
		return nil
	}
	vw.closed = true

	enc := &v2enc{
		strings: make(map[string]uint64),
		stackID: make(map[*trace.Frame]uint64),
	}

	// Pass 1: encode every block payload. Interleaving table discovery
	// with payload encoding is safe because payloads are assembled in a
	// scratch buffer and spliced after the tables are written.
	var payloads []byte // all block payloads, back to back
	type pendingBlock struct {
		payloadLen int
		meta       blockMeta
		baseTime   trace.Time
	}
	var blocks []pendingBlock
	lastTime := trace.Time(0)
	for start := 0; start < len(vw.recs); start += vw.opts.BlockRecords {
		end := start + vw.opts.BlockRecords
		if end > len(vw.recs) {
			end = len(vw.recs)
		}
		pb := pendingBlock{baseTime: lastTime}
		pb.meta.records = end - start
		enc.buf = payloads
		mark := len(enc.buf)
		first := true
		for i := start; i < end; i++ {
			r := &vw.recs[i]
			lastTime = enc.encodeRecord(r, lastTime)
			switch r.Type {
			case RecThread, RecGCStart, RecGCEnd, RecEnd:
				pb.meta.flags |= v2FlagGlobal
			}
			switch r.Type {
			case RecCall, RecReturn, RecSample:
				pb.meta.threadBits |= threadBit(r.Thread)
			}
			if r.Type != RecThread { // threads carry no time stamp
				if first || r.Time < pb.meta.minTime {
					pb.meta.minTime = r.Time
				}
				if first || r.Time > pb.meta.maxTime {
					pb.meta.maxTime = r.Time
				}
				first = false
			}
		}
		if first {
			// A block of nothing but thread declarations: pin its span
			// to the running time base so index entries stay ordered.
			pb.meta.minTime, pb.meta.maxTime = pb.baseTime, pb.baseTime
		}
		payloads = enc.buf
		pb.payloadLen = len(payloads) - mark
		blocks = append(blocks, pb)
	}

	// Pass 2: assemble the file.
	enc.buf = make([]byte, 0, len(payloads)+len(payloads)/4+1024)
	enc.buf = append(enc.buf, v2Magic[:]...)
	enc.str(vw.h.App)
	enc.varint(int64(vw.h.SessionID))
	enc.varint(int64(vw.h.GUIThread))
	enc.varint(int64(vw.h.FilterThreshold))
	enc.varint(int64(vw.h.SamplePeriod))
	enc.varint(int64(vw.h.Start))

	enc.uvarint(uint64(len(enc.strTab)))
	for _, s := range enc.strTab {
		enc.str(s)
	}
	enc.uvarint(uint64(len(enc.stakTab)))
	for _, frames := range enc.stakTab {
		enc.uvarint(uint64(len(frames)))
		for _, f := range frames {
			enc.buf = append(enc.buf, b2byte(f.Native))
			enc.uvarint(enc.strings[f.Class]) // "" maps to absent key = 0
			enc.uvarint(enc.strings[f.Method])
		}
	}

	var fw *flate.Writer
	var cbuf bytes.Buffer
	off := 0
	for i := range blocks {
		pb := &blocks[i]
		payload := payloads[off : off+pb.payloadLen]
		off += pb.payloadLen
		stored := payload
		if vw.opts.Compression == CompressionFlate {
			cbuf.Reset()
			if fw == nil {
				fw, _ = flate.NewWriter(&cbuf, flate.DefaultCompression)
			} else {
				fw.Reset(&cbuf)
			}
			if _, err := fw.Write(payload); err != nil {
				return fmt.Errorf("lila: compressing v2 block: %w", err)
			}
			if err := fw.Close(); err != nil {
				return fmt.Errorf("lila: compressing v2 block: %w", err)
			}
			// Keep whichever form is smaller; incompressible blocks stay
			// raw so no file ever grows from asking for compression.
			if cbuf.Len() < len(payload) {
				stored = cbuf.Bytes()
				pb.meta.flags |= v2FlagCompressed
				pb.meta.rawLen = uint64(len(payload))
			}
		}
		pb.meta.offset = uint64(len(enc.buf))
		enc.uvarint(uint64(len(stored)))
		if pb.meta.flags&v2FlagCompressed != 0 {
			enc.uvarint(0) // escape: compressed framing follows
			enc.uvarint(uint64(pb.meta.records))
			enc.uvarint(pb.meta.rawLen)
		} else {
			enc.uvarint(uint64(pb.meta.records))
		}
		enc.varint(int64(pb.baseTime))
		enc.buf = binary.LittleEndian.AppendUint32(enc.buf, crc32.Checksum(stored, v2CRC))
		enc.buf = append(enc.buf, stored...)
		pb.meta.length = uint64(len(enc.buf)) - pb.meta.offset
	}
	enc.uvarint(0) // sentinel: end of blocks

	indexOff := uint64(len(enc.buf))
	enc.uvarint(uint64(len(blocks)))
	for i := range blocks {
		m := &blocks[i].meta
		enc.uvarint(m.offset)
		enc.uvarint(m.length)
		enc.uvarint(uint64(m.records))
		enc.varint(int64(m.minTime))
		enc.varint(int64(m.maxTime))
		enc.uvarint(m.threadBits)
		enc.uvarint(m.flags)
		if m.flags&v2FlagCompressed != 0 {
			enc.uvarint(m.rawLen)
		}
	}
	index := enc.buf[indexOff:]
	enc.buf = binary.LittleEndian.AppendUint64(enc.buf, indexOff)
	enc.buf = binary.LittleEndian.AppendUint32(enc.buf, uint32(len(index)))
	enc.buf = binary.LittleEndian.AppendUint32(enc.buf, crc32.Checksum(index, v2CRC))
	enc.buf = append(enc.buf, v2TrailerMagic[:]...)

	if _, err := vw.w.Write(enc.buf); err != nil {
		return fmt.Errorf("lila: writing v2 trace: %w", err)
	}
	vw.recs = nil
	return nil
}
