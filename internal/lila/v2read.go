package lila

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"lagalyzer/internal/obs"
	"lagalyzer/internal/trace"
)

// v2 decoding. Three entry points share the machinery below:
//
//   - OpenV2File maps a trace file into memory (mmap on unix, a plain
//     read elsewhere) and serves random-access, index-driven selective
//     decode — the LoadTraceDir fast path.
//   - ParseV2 does the same over an in-memory byte slice.
//   - NewV2Reader adapts the slice machinery to the streaming Reader
//     contract for sniffed io.Reader inputs (pipes, network, the
//     convert pass); it buffers the input, bounded by MaxTraceBytes,
//     and never needs the footer index — blocks are self-framing.

// Decode-path metrics: how often the index lets a selective read skip
// a whole block, how many compressed blocks readers inflate, and the
// worker count of the most recent intra-file parallel decode.
var (
	mBlocksSkipped  = obs.NewCounter("lila_blocks_skipped_total", "v2 blocks skipped whole by index-level selective decode")
	mBlocksInflated = obs.NewCounter("lila_blocks_inflated_total", "compressed v2 blocks inflated by readers")
	mDecodeWorkers  = obs.NewGauge("lila_block_decode_workers", "workers of the most recent parallel v2 block decode")
)

// v2cur is a bounds-checked cursor over encoded bytes.
type v2cur struct {
	data []byte
	off  int
}

func (c *v2cur) remaining() int { return len(c.data) - c.off }

func (c *v2cur) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *v2cur) varint() (int64, error) {
	v, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *v2cur) byte() (byte, error) {
	if c.off >= len(c.data) {
		return 0, fmt.Errorf("truncated byte at offset %d", c.off)
	}
	b := c.data[c.off]
	c.off++
	return b, nil
}

func (c *v2cur) bytes(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, fmt.Errorf("truncated %d-byte field at offset %d", n, c.off)
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

// v2data is a parsed v2 prefix: header, tables, and the position where
// the block sequence starts.
type v2data struct {
	data        []byte
	h           Header
	strings     []string
	stacks      [][]trace.Frame
	blocksStart int
	limits      Limits
}

func (d *v2data) str(ref uint64) (string, error) {
	if ref == 0 {
		return "", nil
	}
	if ref > uint64(len(d.strings)) {
		return "", fmt.Errorf("string ref %d beyond table size %d", ref, len(d.strings))
	}
	return d.strings[ref-1], nil
}

// parseV2Prefix parses magic, header, string table, and stack table.
func parseV2Prefix(data []byte, limits Limits) (*v2data, error) {
	limits = limits.WithDefaults()
	c := &v2cur{data: data}
	magic, err := c.bytes(len(v2Magic))
	if err != nil {
		return nil, fmt.Errorf("lila: reading v2 magic: %w", err)
	}
	if string(magic[:4]) != "LILA" {
		return nil, fmt.Errorf("lila: bad magic %q", magic[:4])
	}
	if magic[4] != V2FormatVersion {
		return nil, fmt.Errorf("%w %d (this is the v2 reader)", ErrUnsupportedVersion, magic[4])
	}
	d := &v2data{data: data, limits: limits}

	readString := func() (string, error) {
		n, err := c.uvarint()
		if err != nil {
			return "", err
		}
		if n > uint64(limits.MaxStringLen) {
			return "", fmt.Errorf("implausible string length %d", n)
		}
		b, err := c.bytes(int(n))
		if err != nil {
			return "", err
		}
		return internBytes(b), nil
	}

	if d.h.App, err = readString(); err != nil {
		return nil, fmt.Errorf("lila: v2 header app: %w", err)
	}
	var sid, gui, filt, period, start int64
	for _, f := range []*int64{&sid, &gui, &filt, &period, &start} {
		if *f, err = c.varint(); err != nil {
			return nil, fmt.Errorf("lila: v2 header: %w", err)
		}
	}
	d.h.SessionID = int(sid)
	d.h.GUIThread = trace.ThreadID(gui)
	d.h.FilterThreshold = trace.Dur(filt)
	d.h.SamplePeriod = trace.Dur(period)
	d.h.Start = trace.Time(start)

	nstr, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("lila: v2 string table: %w", err)
	}
	if nstr > uint64(limits.MaxStringTable) {
		return nil, limitErrf("lila: v2 string table exceeds limit %d", limits.MaxStringTable)
	}
	d.strings = make([]string, nstr)
	for i := range d.strings {
		if d.strings[i], err = readString(); err != nil {
			return nil, fmt.Errorf("lila: v2 string table entry %d: %w", i, err)
		}
	}

	nstk, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("lila: v2 stack table: %w", err)
	}
	if nstk > uint64(limits.MaxStringTable) {
		return nil, limitErrf("lila: v2 stack table exceeds limit %d", limits.MaxStringTable)
	}
	d.stacks = make([][]trace.Frame, nstk)
	var slab []trace.Frame // frames for all stacks, allocated in chunks
	for i := range d.stacks {
		nf, err := c.uvarint()
		if err != nil {
			return nil, fmt.Errorf("lila: v2 stack table entry %d: %w", i, err)
		}
		if nf == 0 || nf > uint64(limits.MaxStackDepth) {
			return nil, fmt.Errorf("lila: v2 stack table entry %d: implausible depth %d", i, nf)
		}
		if uint64(c.remaining()) < 3*nf { // each frame is at least 3 bytes
			return nil, fmt.Errorf("lila: v2 stack table entry %d: truncated", i)
		}
		if len(slab) < int(nf) {
			slab = make([]trace.Frame, max(int(nf), 1024))
		}
		frames := slab[:nf:nf]
		slab = slab[nf:]
		for j := range frames {
			fl, err := c.byte()
			if err != nil {
				return nil, fmt.Errorf("lila: v2 stack table entry %d: %w", i, err)
			}
			frames[j].Native = fl&1 != 0
			cr, err := c.uvarint()
			if err != nil {
				return nil, fmt.Errorf("lila: v2 stack table entry %d: %w", i, err)
			}
			mr, err := c.uvarint()
			if err != nil {
				return nil, fmt.Errorf("lila: v2 stack table entry %d: %w", i, err)
			}
			if frames[j].Class, err = d.str(cr); err != nil {
				return nil, fmt.Errorf("lila: v2 stack table entry %d: %w", i, err)
			}
			if frames[j].Method, err = d.str(mr); err != nil {
				return nil, fmt.Errorf("lila: v2 stack table entry %d: %w", i, err)
			}
		}
		d.stacks[i] = frames
	}
	d.blocksStart = c.off
	return d, nil
}

// V2BlockInfo describes one block for selective decode. Entries come
// from the footer index, or — when the index is damaged — from a
// sequential scan of the self-framing block headers, in which case the
// selectivity fields are conservative (never exclude a block).
type V2BlockInfo struct {
	// Offset and Length frame the whole block (header + payload) in
	// the file.
	Offset, Length int64
	// Records is the block's record count.
	Records int
	// MinTime and MaxTime span the block's timed records.
	MinTime, MaxTime trace.Time
	// RawLen is the inflated payload length of a compressed block;
	// 0 for blocks stored raw.
	RawLen int64

	threadBits uint64
	flags      uint64
}

// HasGlobal reports whether the block carries records that apply to
// every thread (thread declarations, GC brackets, the end record).
func (b *V2BlockInfo) HasGlobal() bool { return b.flags&v2FlagGlobal != 0 }

// MayContainThread reports whether the block may hold records of the
// given thread (64-bit bitmap; false positives possible, false
// negatives not).
func (b *V2BlockInfo) MayContainThread(id trace.ThreadID) bool {
	return b.threadBits&threadBit(id) != 0
}

// Compressed reports whether the block's payload is stored as a
// DEFLATE stream.
func (b *V2BlockInfo) Compressed() bool { return b.flags&v2FlagCompressed != 0 }

// parseV2Index recovers the block index from the footer trailer,
// verifying its checksum and every entry's framing.
func parseV2Index(d *v2data) ([]V2BlockInfo, error) {
	data := d.data
	if len(data) < v2TrailerLen {
		return nil, fmt.Errorf("lila: v2 trace too short for a trailer")
	}
	tr := data[len(data)-v2TrailerLen:]
	if string(tr[16:24]) != string(v2TrailerMagic[:]) {
		return nil, fmt.Errorf("lila: v2 trailer magic missing")
	}
	indexOff := binary.LittleEndian.Uint64(tr[0:8])
	indexLen := binary.LittleEndian.Uint32(tr[8:12])
	indexCRC := binary.LittleEndian.Uint32(tr[12:16])
	end := uint64(len(data) - v2TrailerLen)
	if indexOff > end || uint64(indexLen) > end-indexOff {
		return nil, fmt.Errorf("lila: v2 index frame out of bounds")
	}
	index := data[indexOff : indexOff+uint64(indexLen)]
	if crc32.Checksum(index, v2CRC) != indexCRC {
		return nil, fmt.Errorf("lila: v2 index checksum mismatch")
	}
	c := &v2cur{data: index}
	n, err := c.uvarint()
	if err != nil {
		return nil, fmt.Errorf("lila: v2 index: %w", err)
	}
	if n > uint64(len(index)) { // each entry is at least 7 bytes
		return nil, fmt.Errorf("lila: v2 index: implausible block count %d", n)
	}
	blocks := make([]V2BlockInfo, n)
	for i := range blocks {
		b := &blocks[i]
		var off, length, records uint64
		var minT, maxT int64
		err := error(nil)
		for _, step := range []func() error{
			func() (e error) { off, e = c.uvarint(); return },
			func() (e error) { length, e = c.uvarint(); return },
			func() (e error) { records, e = c.uvarint(); return },
			func() (e error) { minT, e = c.varint(); return },
			func() (e error) { maxT, e = c.varint(); return },
			func() (e error) { b.threadBits, e = c.uvarint(); return },
			func() (e error) { b.flags, e = c.uvarint(); return },
		} {
			if err = step(); err != nil {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("lila: v2 index entry %d: %w", i, err)
		}
		b.Offset, b.Length, b.Records = int64(off), int64(length), int(records)
		b.MinTime, b.MaxTime = trace.Time(minT), trace.Time(maxT)
		if b.Offset < int64(d.blocksStart) || b.Length <= 0 ||
			uint64(b.Offset)+uint64(b.Length) > indexOff ||
			b.Records < 0 || b.Records > d.limits.MaxRecords {
			return nil, fmt.Errorf("lila: v2 index entry %d: frame out of bounds", i)
		}
		if b.flags&v2FlagCompressed != 0 {
			// Compressed entries carry the inflated payload length after
			// their flags; an entry that lacks it (or declares an absurd
			// one) is index damage like any other.
			rl, err := c.uvarint()
			if err != nil {
				return nil, fmt.Errorf("lila: v2 index entry %d: %w", i, err)
			}
			if rl == 0 || rl > maxInflatedLen(uint64(b.Length), d.limits) {
				return nil, fmt.Errorf("lila: v2 index entry %d: implausible inflated length %d", i, rl)
			}
			b.RawLen = int64(rl)
		}
	}
	return blocks, nil
}

// maxInflatedLen bounds a compressed block's declared inflated size
// before any buffer is allocated for it: DEFLATE expands at most
// ~1032:1, and nothing can exceed the whole-trace byte budget.
func maxInflatedLen(storedLen uint64, limits Limits) uint64 {
	bound := storedLen*1032 + 64
	if m := uint64(limits.MaxTraceBytes); bound > m {
		bound = m
	}
	return bound
}

// scanV2Blocks re-frames the block sequence from the self-describing
// block headers — the streaming path, and the salvage fallback when
// the footer index is destroyed. Selectivity fields are conservative:
// every scanned block reports global and an all-ones thread bitmap, so
// no filter ever skips it. A framing error mid-scan returns the blocks
// recovered so far together with the error.
func scanV2Blocks(d *v2data) ([]V2BlockInfo, error) {
	c := &v2cur{data: d.data, off: d.blocksStart}
	var blocks []V2BlockInfo
	total := 0
	for {
		start := c.off
		plen, err := c.uvarint()
		if err != nil {
			return blocks, fmt.Errorf("lila: v2 block %d framing: %w", len(blocks), err)
		}
		if plen == 0 {
			return blocks, nil // sentinel: index + trailer follow
		}
		count, err := c.uvarint()
		if err != nil {
			return blocks, fmt.Errorf("lila: v2 block %d framing: %w", len(blocks), err)
		}
		flags := uint64(v2FlagGlobal)
		var rawLen uint64
		if count == 0 {
			// Raw blocks never have zero records: this is the escape
			// into the compressed framing (see the format comment in
			// v2.go) — the true count and inflated length follow.
			flags |= v2FlagCompressed
			if count, err = c.uvarint(); err != nil {
				return blocks, fmt.Errorf("lila: v2 block %d framing: %w", len(blocks), err)
			}
			if rawLen, err = c.uvarint(); err != nil {
				return blocks, fmt.Errorf("lila: v2 block %d framing: %w", len(blocks), err)
			}
		}
		if _, err := c.varint(); err != nil { // baseTime
			return blocks, fmt.Errorf("lila: v2 block %d framing: %w", len(blocks), err)
		}
		if _, err := c.bytes(4); err != nil { // crc
			return blocks, fmt.Errorf("lila: v2 block %d framing: %w", len(blocks), err)
		}
		implausible := plen > uint64(c.remaining()) || count == 0
		if flags&v2FlagCompressed != 0 {
			implausible = implausible || rawLen == 0 || count > rawLen ||
				rawLen > maxInflatedLen(plen, d.limits)
		} else {
			implausible = implausible || count > plen
		}
		if implausible {
			return blocks, fmt.Errorf("lila: v2 block %d: implausible frame (payload %d, records %d)",
				len(blocks), plen, count)
		}
		total += int(count)
		if total > d.limits.MaxRecords {
			return blocks, limitErrf("lila: record limit %d exceeded", d.limits.MaxRecords)
		}
		c.off += int(plen)
		blocks = append(blocks, V2BlockInfo{
			Offset:     int64(start),
			Length:     int64(c.off - start),
			Records:    int(count),
			MinTime:    math.MinInt64,
			MaxTime:    math.MaxInt64,
			RawLen:     int64(rawLen),
			threadBits: ^uint64(0),
			flags:      flags,
		})
	}
}

// v2scratch bundles the per-goroutine decode state: the record arena
// plus the reusable inflate machinery for compressed blocks. Not safe
// for concurrent use; every decoding goroutine owns one.
type v2scratch struct {
	arena    recArena
	br       bytes.Reader
	fr       io.ReadCloser // flate reader, Reset per block
	inflated []byte        // reusable inflated-payload buffer
}

// inflate decompresses stored into the scratch buffer, insisting on
// exactly rawLen bytes. The returned slice is valid until the next
// call; record decode never retains payload bytes (strings and stacks
// live in the up-front tables), so reuse is safe.
func (s *v2scratch) inflate(stored []byte, rawLen int) ([]byte, error) {
	s.br.Reset(stored)
	if s.fr == nil {
		s.fr = flate.NewReader(&s.br)
	} else if err := s.fr.(flate.Resetter).Reset(&s.br, nil); err != nil {
		return nil, fmt.Errorf("inflating block payload: %w", err)
	}
	if cap(s.inflated) < rawLen {
		s.inflated = make([]byte, rawLen)
	}
	buf := s.inflated[:rawLen]
	if _, err := io.ReadFull(s.fr, buf); err != nil {
		return nil, fmt.Errorf("inflating block payload: %w", err)
	}
	var tail [1]byte
	if n, _ := s.fr.Read(tail[:]); n != 0 {
		return nil, fmt.Errorf("inflated payload exceeds declared length %d", rawLen)
	}
	return buf, nil
}

// decodeV2Block verifies and decodes one block, appending its records
// to dst. The block header is re-read from b's frame (it carries the
// base time and, for compressed blocks, the inflated length); the
// checksum over the stored bytes is verified before any inflation or
// record materialization. On error dst is unchanged at its original
// length (appended capacity may hold dead pointers; callers must not
// read past len).
func (d *v2data) decodeV2Block(b *V2BlockInfo, sc *v2scratch, dst []*Record) ([]*Record, error) {
	c := &v2cur{data: d.data[:b.Offset+b.Length], off: int(b.Offset)}
	plen, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	count, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	compressed := false
	rawLen := int(plen)
	if count == 0 { // escape into the compressed framing
		compressed = true
		if count, err = c.uvarint(); err != nil {
			return nil, err
		}
		rl, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if rl == 0 || rl > maxInflatedLen(plen, d.limits) {
			return nil, fmt.Errorf("implausible inflated length %d for %d stored bytes", rl, plen)
		}
		rawLen = int(rl)
	}
	base, err := c.varint()
	if err != nil {
		return nil, err
	}
	crcb, err := c.bytes(4)
	if err != nil {
		return nil, err
	}
	stored, err := c.bytes(int(plen))
	if err != nil {
		return nil, err
	}
	if c.remaining() != 0 || int(count) != b.Records {
		return nil, fmt.Errorf("block header disagrees with index (payload %d, records %d vs %d)",
			plen, count, b.Records)
	}
	if crc32.Checksum(stored, v2CRC) != binary.LittleEndian.Uint32(crcb) {
		return nil, fmt.Errorf("block checksum mismatch (%d records lost)", count)
	}
	payload := stored
	if compressed {
		if payload, err = sc.inflate(stored, rawLen); err != nil {
			return nil, fmt.Errorf("%w (%d records lost)", err, count)
		}
		mBlocksInflated.Inc()
	}

	pc := &v2cur{data: payload}
	lastTime := trace.Time(base)
	for i := 0; i < int(count); i++ {
		rec, err := d.decodeRecord(pc, &lastTime, &sc.arena)
		if err != nil {
			return nil, fmt.Errorf("record %d of block: %w", i, err)
		}
		dst = append(dst, rec)
	}
	if pc.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after %d records", pc.remaining(), count)
	}
	return dst, nil
}

// decodeRecord decodes one record from the payload cursor.
func (d *v2data) decodeRecord(c *v2cur, lastTime *trace.Time, arena *recArena) (*Record, error) {
	tb, err := c.byte()
	if err != nil {
		return nil, err
	}
	if int(tb) >= numRecTypes {
		return nil, fmt.Errorf("unknown record type %d", tb)
	}
	rec := arena.new()
	rec.Type = RecType(tb)
	readTime := func() error {
		dt, err := c.varint()
		if err != nil {
			return err
		}
		*lastTime += trace.Time(dt)
		rec.Time = *lastTime
		return nil
	}
	readTID := func() error {
		v, err := c.varint()
		rec.Thread = trace.ThreadID(v)
		return err
	}
	switch rec.Type {
	case RecThread:
		if err := readTID(); err != nil {
			return nil, err
		}
		ref, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if rec.Name, err = d.str(ref); err != nil {
			return nil, err
		}
		db, err := c.byte()
		if err != nil {
			return nil, err
		}
		rec.Daemon = db == 1
	case RecCall:
		if err := readTime(); err != nil {
			return nil, err
		}
		if err := readTID(); err != nil {
			return nil, err
		}
		k, err := c.byte()
		if err != nil {
			return nil, err
		}
		rec.Kind = trace.Kind(k)
		cr, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		mr, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if rec.Class, err = d.str(cr); err != nil {
			return nil, err
		}
		if rec.Method, err = d.str(mr); err != nil {
			return nil, err
		}
	case RecReturn:
		if err := readTime(); err != nil {
			return nil, err
		}
		if err := readTID(); err != nil {
			return nil, err
		}
	case RecGCStart:
		if err := readTime(); err != nil {
			return nil, err
		}
		mb, err := c.byte()
		if err != nil {
			return nil, err
		}
		rec.Major = mb == 1
	case RecGCEnd:
		if err := readTime(); err != nil {
			return nil, err
		}
	case RecSample:
		if err := readTime(); err != nil {
			return nil, err
		}
		if err := readTID(); err != nil {
			return nil, err
		}
		st, err := c.byte()
		if err != nil {
			return nil, err
		}
		rec.State = trace.ThreadState(st)
		ref, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if ref > uint64(len(d.stacks)) {
			return nil, fmt.Errorf("stack ref %d beyond table size %d", ref, len(d.stacks))
		}
		if ref > 0 {
			rec.Stack = d.stacks[ref-1]
		}
	case RecEnd:
		if err := readTime(); err != nil {
			return nil, err
		}
		n, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		rec.Count = int(n)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}

// V2File is a v2 trace opened for random access: the footer index is
// parsed once, and blocks decode independently — all of them, or only
// the ones a RecordFilter selects.
type V2File struct {
	d      *v2data
	blocks []V2BlockInfo
	// indexErr is non-nil when the footer index was damaged and blocks
	// were re-framed by sequential scan; strict decodes refuse to
	// proceed, salvage decodes carry on with what the scan recovered.
	indexErr error
	unmap    func() error
}

// ParseV2 opens an in-memory v2 trace. The returned file borrows data;
// it must stay alive and unmodified for the file's lifetime.
func ParseV2(data []byte, limits Limits) (*V2File, error) {
	d, err := parseV2Prefix(data, limits)
	if err != nil {
		return nil, err
	}
	v := &V2File{d: d}
	blocks, ierr := parseV2Index(d)
	if ierr == nil {
		v.blocks = blocks
		return v, nil
	}
	// Damaged or missing index: re-frame from the block headers. The
	// scan error (if any) marks where framing broke; everything before
	// it is usable under salvage.
	v.indexErr = ierr
	blocks, scanErr := scanV2Blocks(d)
	v.blocks = blocks
	if scanErr != nil {
		v.indexErr = fmt.Errorf("%v; block scan: %w", ierr, scanErr)
	}
	return v, nil
}

// OpenV2File maps f into memory (mmap where available, one read
// elsewhere) and parses it as a v2 trace. Closing the V2File releases
// the mapping; the *os.File itself stays the caller's to close.
func OpenV2File(f *os.File, limits Limits) (*V2File, error) {
	data, unmap, err := mapFile(f)
	if err != nil {
		return nil, fmt.Errorf("lila: mapping v2 trace: %w", err)
	}
	v, err := ParseV2(data, limits)
	if err != nil {
		unmap()
		return nil, err
	}
	v.unmap = unmap
	return v, nil
}

// Header returns the session header.
func (v *V2File) Header() Header { return v.d.h }

// Blocks exposes the block index (read-only).
func (v *V2File) Blocks() []V2BlockInfo { return v.blocks }

// Size returns the trace's encoded size in bytes.
func (v *V2File) Size() int64 { return int64(len(v.d.data)) }

// Close releases the file's memory mapping, if any.
func (v *V2File) Close() error {
	if v.unmap != nil {
		u := v.unmap
		v.unmap = nil
		return u()
	}
	return nil
}

// Records decodes the blocks selected by filter (nil = everything) and
// returns their records, filtered, in stream order.
//
// With salvage false the decode is fail-stop: a damaged index or a
// block that fails its checksum is an error. With salvage true damage
// is per block: a bad block is dropped and itemized in the returned
// SalvageReport (never a resync scan — the loss is exactly the blocks
// that failed), and a missing end record marks a truncated tail. The
// report is non-nil exactly when salvage is true; its metrics are
// flushed once per call.
func (v *V2File) Records(filter *RecordFilter, salvage bool) ([]*Record, *SalvageReport, error) {
	return v.RecordsJobs(filter, salvage, 1)
}

// v2blockResult is one speculatively decoded block.
type v2blockResult struct {
	recs []*Record
	err  error
	done bool // false = the pre-pass skipped this block
}

// RecordsJobs is Records with a bounded intra-file decode pool: up to
// jobs workers (≤0 takes GOMAXPROCS, ≤1 decodes inline) verify,
// inflate, and decode blocks concurrently, each with its own arena
// and inflate scratch, while a sequential merge walks the blocks in
// index order and applies the filter with its live call-depth state.
// Records, salvage accounting, and errors are byte-identical at every
// worker count: the merge is the one place that decides what a block
// contributes, so parallelism only changes who ran the decode.
func (v *V2File) RecordsJobs(filter *RecordFilter, salvage bool, jobs int) ([]*Record, *SalvageReport, error) {
	var report *SalvageReport
	if salvage {
		report = &SalvageReport{}
		defer report.flushMetrics()
	}
	if v.indexErr != nil {
		if !salvage {
			return nil, nil, v.indexErr
		}
		report.note(v.indexErr)
	}
	var state *filterState
	if !filter.All() {
		state = newFilterState(filter)
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	scratch := &v2scratch{}
	fetch := func(i int, dst []*Record) ([]*Record, error) {
		return v.d.decodeV2Block(&v.blocks[i], scratch, dst)
	}
	if jobs > 1 && len(v.blocks) > 1 {
		results := v.decodeBlocksParallel(state, jobs)
		fetch = func(i int, dst []*Record) ([]*Record, error) {
			r := &results[i]
			if !r.done {
				// The pre-pass skip set is provably a subset of the
				// merge's (see decodeBlocksParallel); decode inline if
				// that invariant ever broke rather than lose a block.
				return v.d.decodeV2Block(&v.blocks[i], scratch, dst)
			}
			if r.err != nil {
				return nil, r.err
			}
			return append(dst, r.recs...), nil
		}
	}
	totalCap := 0
	for i := range v.blocks {
		totalCap += v.blocks[i].Records
	}
	out := make([]*Record, 0, max(0, min(totalCap, v.d.limits.MaxRecords)))
	sawEnd := false
	total := 0
	for i := range v.blocks {
		b := &v.blocks[i]
		if sawEnd {
			break
		}
		if total += b.Records; total > v.d.limits.MaxRecords {
			return nil, report, limitErrf("lila: record limit %d exceeded", v.d.limits.MaxRecords)
		}
		if state != nil && !state.blockMayMatch(b) {
			mBlocksSkipped.Inc()
			continue
		}
		mark := len(out)
		decoded, err := fetch(i, out)
		if err != nil {
			err = fmt.Errorf("lila: v2 block %d: %w", i, err)
			if !salvage {
				return nil, nil, err
			}
			report.note(err)
			report.RecordsDropped += b.Records
			report.BytesSkipped += b.Length
			if i < len(v.blocks)-1 {
				report.Resyncs++
			}
			continue
		}
		if report != nil {
			report.RecordsKept += len(decoded) - mark
		}
		// Filter in place and stop at the end record; anything a
		// malformed block encodes after RecEnd is discarded.
		w := mark
		for j := mark; j < len(decoded); j++ {
			rec := decoded[j]
			if state == nil || state.keep(rec) {
				decoded[w] = rec
				w++
			}
			if rec.Type == RecEnd {
				sawEnd = true
				break
			}
		}
		out = decoded[:w]
	}
	if !sawEnd {
		if !salvage {
			return nil, nil, fmt.Errorf("lila: truncated trace: no end record")
		}
		report.TruncatedTail = true
		if report.FirstError == "" {
			report.note(errTruncated)
		}
	}
	return out, report, nil
}

// decodeBlocksParallel speculatively decodes every block an index-only
// pre-pass cannot rule out, fanning them over min(jobs, candidates)
// workers with per-worker scratch (arena + inflate state) and the same
// work-stealing discipline as the directory loader's pool.
//
// The merge in RecordsJobs re-applies the exact skip rule with live
// call-depth state, so a block decoded here but skipped there costs
// only wasted work — never a changed output. What must not happen is
// the converse: the pre-pass skipping a block the merge wants. The
// exact rule decodes a non-global block when its thread bitmap matches
// and either the window overlaps or a kept call is open; a kept call
// open at block i implies an earlier block passed both the thread and
// window tests, which is exactly when mayOpen is set below — so from
// then on the pre-pass stops trusting window exclusions, and its
// decode set is a superset of the merge's. Thread-bitmap misses stay
// skippable throughout (see blockMayMatch).
func (v *V2File) decodeBlocksParallel(state *filterState, jobs int) []v2blockResult {
	want := make([]int, 0, len(v.blocks))
	mayOpen := false
	total := 0
	for i := range v.blocks {
		b := &v.blocks[i]
		if total += b.Records; total > v.d.limits.MaxRecords {
			break // the merge stops with a limit error at this block
		}
		dec, opens := true, true
		if state != nil {
			threadHit := state.blockThreadHit(b)
			inWindow := !state.blockTimeExcluded(b)
			opens = threadHit && inWindow
			dec = b.HasGlobal() || (threadHit && (mayOpen || inWindow))
		}
		if dec {
			want = append(want, i)
		}
		if opens {
			mayOpen = true
		}
	}
	results := make([]v2blockResult, len(v.blocks))
	decodeOne := func(sc *v2scratch, bi int) {
		r := &results[bi]
		r.recs, r.err = v.d.decodeV2Block(&v.blocks[bi], sc, nil)
		r.done = true
	}
	workers := min(jobs, len(want))
	if workers <= 1 {
		sc := &v2scratch{}
		for _, bi := range want {
			decodeOne(sc, bi)
		}
		return results
	}
	mDecodeWorkers.Set(int64(workers))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &v2scratch{}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(want) {
					return
				}
				decodeOne(sc, want[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// readAllLimited buffers r, refusing inputs beyond max bytes.
func readAllLimited(r io.Reader, max int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > max {
		return nil, fmt.Errorf("lila: trace exceeds %d-byte limit", max)
	}
	return data, nil
}

// V2Reader adapts a v2 trace to the streaming Reader contract for
// sniffed io.Reader inputs. The input is buffered (bounded by
// Limits.MaxTraceBytes) because the tables that records reference sit
// between the header and the blocks; decode then proceeds block by
// block without ever touching the footer index. In salvage mode a
// block that fails its checksum is dropped and itemized — and because
// every block carries its own time base, the blocks after a loss
// decode with correct absolute times, which the v1 salvage decoder
// cannot guarantee.
type V2Reader struct {
	d      *v2data
	blocks []V2BlockInfo
	// scanErr is the block-framing error hit by the sequential scan,
	// reported after the blocks before it have been delivered.
	scanErr error
	report  *SalvageReport // nil outside salvage mode

	scratch v2scratch
	queue   []*Record
	qi      int
	block   int
	records int
	sawEnd  bool
	done    bool
	flushed bool
}

// NewV2Reader buffers r and returns a streaming reader for its record
// stream. The first bytes of r must be the v2 magic (callers reach
// here via format sniffing).
func NewV2Reader(r io.Reader, o ReaderOptions) (*V2Reader, error) {
	limits := o.Limits.WithDefaults()
	data, err := readAllLimited(r, limits.MaxTraceBytes)
	if err != nil {
		return nil, fmt.Errorf("lila: buffering v2 trace: %w", err)
	}
	d, err := parseV2Prefix(data, limits)
	if err != nil {
		return nil, err
	}
	vr := &V2Reader{d: d}
	vr.blocks, vr.scanErr = scanV2Blocks(d)
	if o.Salvage {
		vr.report = &SalvageReport{}
	}
	return vr, nil
}

// Header implements Reader.
func (vr *V2Reader) Header() Header { return vr.d.h }

// Salvage implements SalvageReporter; it returns nil unless the
// reader was opened in salvage mode.
func (vr *V2Reader) Salvage() *SalvageReport { return vr.report }

func (vr *V2Reader) finishStream() {
	if vr.flushed || vr.report == nil {
		return
	}
	vr.flushed = true
	vr.report.flushMetrics()
}

// Read implements Reader. It returns io.EOF after the end record.
func (vr *V2Reader) Read() (*Record, error) {
	for {
		if vr.qi < len(vr.queue) {
			rec := vr.queue[vr.qi]
			vr.qi++
			if vr.report != nil {
				vr.report.RecordsKept++
			}
			if rec.Type == RecEnd {
				vr.sawEnd = true
				vr.done = true
				vr.finishStream()
			}
			return rec, nil
		}
		if vr.done {
			return nil, io.EOF
		}
		if err := vr.nextBlock(); err != nil {
			return nil, err
		}
	}
}

// nextBlock decodes the next block into the queue, or finishes the
// stream. It returns a non-nil error only in fail-stop mode.
func (vr *V2Reader) nextBlock() error {
	vr.queue, vr.qi = vr.queue[:0], 0
	for vr.block < len(vr.blocks) {
		b := &vr.blocks[vr.block]
		vr.block++
		if vr.records+b.Records > vr.d.limits.MaxRecords {
			vr.done = true
			vr.finishStream()
			return limitErrf("lila: record limit %d exceeded", vr.d.limits.MaxRecords)
		}
		recs, err := vr.d.decodeV2Block(b, &vr.scratch, vr.queue)
		if err != nil {
			err = fmt.Errorf("lila: v2 block %d: %w", vr.block-1, err)
			if vr.report == nil {
				vr.done = true
				return err
			}
			vr.report.note(err)
			vr.report.RecordsDropped += b.Records
			vr.report.BytesSkipped += b.Length
			if vr.block < len(vr.blocks) {
				vr.report.Resyncs++
			}
			continue
		}
		vr.records += len(recs)
		vr.queue = recs
		return nil
	}
	// Out of blocks: account for how the stream ended.
	vr.done = true
	if vr.sawEnd {
		return nil // queue drain already returned EOF path
	}
	if vr.report == nil {
		if vr.scanErr != nil {
			return vr.scanErr
		}
		return fmt.Errorf("lila: truncated trace: no end record")
	}
	if vr.scanErr != nil {
		vr.report.note(vr.scanErr)
	} else {
		vr.report.note(errTruncated)
	}
	vr.report.TruncatedTail = true
	vr.finishStream()
	return nil
}
