package lila

import (
	"errors"
	"fmt"
	"io"

	"lagalyzer/internal/obs"
)

// ErrLimit marks errors caused by a Limits resource guard tripping
// (string/stack/record/byte budgets), as opposed to malformed input.
// Servers ingesting untrusted traces test errors.Is(err, ErrLimit) to
// answer resource exhaustion with back-pressure (429) rather than
// treating the stream as corrupt.
var ErrLimit = errors.New("lila: resource limit exceeded")

// limitErrf builds an error that formats like fmt.Errorf but matches
// errors.Is(err, ErrLimit).
func limitErrf(format string, args ...any) error {
	return &limitError{msg: fmt.Sprintf(format, args...)}
}

type limitError struct{ msg string }

func (e *limitError) Error() string        { return e.msg }
func (e *limitError) Is(target error) bool { return target == ErrLimit }

// Salvage metrics, flushed once per trace when the stream finishes
// (never per record).
var (
	mRecordsSalvaged = obs.NewCounter("lila_records_salvaged_total",
		"records decoded successfully by salvage-mode readers from damaged traces")
	mBytesSkipped = obs.NewCounter("lila_bytes_skipped_total",
		"encoded trace bytes skipped while resynchronizing damaged traces")
)

// Limits are the resource guards applied to untrusted traces. A field
// left zero takes its DefaultLimits value, so Limits{} is safe
// everywhere a Limits is accepted.
type Limits struct {
	// MaxStringLen bounds a single decoded string (class, method,
	// thread, app name).
	MaxStringLen int
	// MaxStringTable bounds the binary format's interned-string table.
	MaxStringTable int
	// MaxStackDepth bounds one sample's frame count.
	MaxStackDepth int
	// MaxRecords bounds the total records decoded from one trace.
	MaxRecords int
	// MaxTraceBytes bounds the encoded bytes a salvage-mode binary
	// reader will buffer (the salvage decoder needs the record stream
	// in memory to scan for resynchronization points).
	MaxTraceBytes int64
	// MaxSessionBytes bounds the estimated in-memory size of a rebuilt
	// session (enforced by treebuild, not by the readers); sessions
	// beyond the budget degrade to the streaming analyzer.
	MaxSessionBytes int64
}

// DefaultLimits returns the guards applied when a Limits field is
// zero. They are far above anything a real LiLa session produces but
// low enough that a hostile or garbage input cannot balloon memory.
func DefaultLimits() Limits {
	return Limits{
		MaxStringLen:    1 << 20, // 1 MiB symbol
		MaxStringTable:  1 << 20, // 1M interned strings
		MaxStackDepth:   1 << 16, // 64k frames
		MaxRecords:      1 << 26, // 67M records
		MaxTraceBytes:   1 << 31, // 2 GiB encoded
		MaxSessionBytes: 4 << 30, // 4 GiB estimated session
	}
}

// WithDefaults fills zero fields from DefaultLimits.
func (l Limits) WithDefaults() Limits {
	d := DefaultLimits()
	if l.MaxStringLen <= 0 {
		l.MaxStringLen = d.MaxStringLen
	}
	if l.MaxStringTable <= 0 {
		l.MaxStringTable = d.MaxStringTable
	}
	if l.MaxStackDepth <= 0 {
		l.MaxStackDepth = d.MaxStackDepth
	}
	if l.MaxRecords <= 0 {
		l.MaxRecords = d.MaxRecords
	}
	if l.MaxTraceBytes <= 0 {
		l.MaxTraceBytes = d.MaxTraceBytes
	}
	if l.MaxSessionBytes <= 0 {
		l.MaxSessionBytes = d.MaxSessionBytes
	}
	return l
}

// ReaderOptions configure trace decoding beyond the defaults.
type ReaderOptions struct {
	// Salvage switches the reader from fail-stop to salvage decoding:
	// a malformed record no longer kills the stream; the reader
	// resynchronizes at the next plausible record boundary and keeps
	// going, accounting for the damage in its SalvageReport.
	Salvage bool
	// Limits are the resource guards; zero fields take defaults.
	Limits Limits
}

// SalvageReport accounts for the damage a salvage-mode reader worked
// around in one trace. All fields are deterministic functions of the
// input bytes, so reports can participate in byte-identical output
// guarantees.
type SalvageReport struct {
	// RecordsKept counts records decoded successfully.
	RecordsKept int `json:"records_kept"`
	// RecordsDropped counts records lost to damage: malformed text
	// lines and binary resynchronization gaps (a binary gap of unknown
	// record count is counted as one drop per resync).
	RecordsDropped int `json:"records_dropped"`
	// BytesSkipped totals the encoded bytes passed over while
	// resynchronizing (text: the malformed lines; binary: the scan
	// gaps including any undecodable tail).
	BytesSkipped int64 `json:"bytes_skipped"`
	// Resyncs counts successful re-entries into the record stream
	// after damage.
	Resyncs int `json:"resyncs,omitempty"`
	// TruncatedTail is set when the stream ended without an end record
	// (or the undecodable remainder was dropped).
	TruncatedTail bool `json:"truncated_tail,omitempty"`
	// FirstError and LastError describe the first and most recent
	// damage encountered.
	FirstError string `json:"first_error,omitempty"`
	LastError  string `json:"last_error,omitempty"`
}

// Damaged reports whether the reader had to drop or skip anything.
func (r *SalvageReport) Damaged() bool {
	return r != nil && (r.RecordsDropped > 0 || r.BytesSkipped > 0 || r.TruncatedTail || r.FirstError != "")
}

// note records one damage event.
func (r *SalvageReport) note(err error) {
	msg := err.Error()
	if r.FirstError == "" {
		r.FirstError = msg
	}
	r.LastError = msg
}

// String summarizes the report for logs and health sections.
func (r *SalvageReport) String() string {
	if !r.Damaged() {
		return fmt.Sprintf("clean (%d records)", r.RecordsKept)
	}
	s := fmt.Sprintf("kept %d, dropped %d records, skipped %d bytes",
		r.RecordsKept, r.RecordsDropped, r.BytesSkipped)
	if r.TruncatedTail {
		s += ", truncated tail"
	}
	if r.FirstError != "" {
		s += fmt.Sprintf("; first error: %s", r.FirstError)
	}
	return s
}

// flushMetrics publishes the report's totals to the obs registry. It
// must be called exactly once, when the stream finishes.
func (r *SalvageReport) flushMetrics() {
	if r.Damaged() {
		mRecordsSalvaged.Add(int64(r.RecordsKept))
	}
	mBytesSkipped.Add(r.BytesSkipped)
}

// SalvageReporter is implemented by readers that can account for
// damage. Salvage returns nil when the reader is not in salvage mode.
type SalvageReporter interface {
	Salvage() *SalvageReport
}

// SalvageOf returns r's salvage report when r is a salvage-mode
// reader, else nil.
func SalvageOf(r Reader) *SalvageReport {
	if sr, ok := r.(SalvageReporter); ok {
		return sr.Salvage()
	}
	return nil
}

// NewReaderOptions is NewReader with explicit options: it sniffs the
// encoding of rd ('#' opens the text format; otherwise the 5-byte
// binary magic carries the version) and returns the matching reader
// configured with o. A recognised magic with an unknown version is
// ErrUnsupportedVersion, never a garbled decode or a salvage spiral.
func NewReaderOptions(rd io.Reader, o ReaderOptions) (Reader, error) {
	br := &sniffReader{r: rd}
	first, err := br.peek()
	if err != nil {
		return nil, fmt.Errorf("lila: sniffing trace format: %w", err)
	}
	if first == '#' {
		return NewTextReaderOptions(br, o)
	}
	// Binary: dispatch on the version byte that follows the magic. A
	// stream too short to hold the magic falls through to the v1
	// reader, whose framing error describes it.
	if magic, err := br.peekN(5); err == nil && string(magic[:4]) == "LILA" {
		switch magic[4] {
		case FormatVersion:
			// v1 stream binary, below.
		case V2FormatVersion:
			return NewV2Reader(br, o)
		default:
			return nil, fmt.Errorf("%w %d (this reader supports v1 and v2)",
				ErrUnsupportedVersion, magic[4])
		}
	}
	return NewBinaryReaderOptions(br, o)
}
