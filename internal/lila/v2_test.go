package lila

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lagalyzer/internal/trace"
)

// v2TestRecords builds an interleaved multi-thread stream big enough
// to span many blocks at small BlockRecords settings: thread 1 (the
// GUI thread) works first, then thread 2 runs a long solo stretch, and
// thread 1 returns for a finale.
func v2TestRecords() []*Record {
	recs := []*Record{
		{Type: RecThread, Thread: 1, Name: "AWT-EventQueue-0"},
		{Type: RecThread, Thread: 2, Name: "Worker", Daemon: true},
	}
	t := trace.Time(1000)
	addPair := func(id trace.ThreadID, class, method string) {
		recs = append(recs,
			&Record{Type: RecCall, Time: t, Thread: id, Kind: trace.KindListener, Class: class, Method: method},
			&Record{Type: RecSample, Time: t + 1, Thread: id, State: trace.StateRunnable,
				Stack: []trace.Frame{{Class: class, Method: method}}},
			&Record{Type: RecReturn, Time: t + 2, Thread: id})
		t += 10
	}
	for i := 0; i < 8; i++ {
		addPair(1, "app.Button", "actionPerformed")
	}
	for i := 0; i < 40; i++ {
		addPair(2, "app.Worker", "run")
	}
	recs = append(recs,
		&Record{Type: RecGCStart, Time: t, Major: true},
		&Record{Type: RecGCEnd, Time: t + 5})
	t += 10
	for i := 0; i < 8; i++ {
		addPair(1, "app.Button", "actionPerformed")
	}
	recs = append(recs, &Record{Type: RecEnd, Time: t + 100, Count: 7})
	return recs
}

// writeV2 encodes recs with the given block granularity.
func writeV2(t *testing.T, recs []*Record, blockRecords int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewV2WriterOptions(&buf, testHeader(), V2WriterOptions{BlockRecords: blockRecords})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func drainReader(t *testing.T, r Reader) []*Record {
	t.Helper()
	var recs []*Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func recordsEqual(t *testing.T, got, want []*Record, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: record %d:\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

func TestV2MultiBlockRoundTrip(t *testing.T) {
	want := v2TestRecords()
	for _, blockRecords := range []int{1, 4, 7, 1 << 20} {
		data := writeV2(t, want, blockRecords)

		// Random-access path.
		v, err := ParseV2(data, Limits{})
		if err != nil {
			t.Fatalf("blockRecords=%d: ParseV2: %v", blockRecords, err)
		}
		if v.Header() != testHeader() {
			t.Fatalf("blockRecords=%d: header = %+v", blockRecords, v.Header())
		}
		wantBlocks := (len(want) + blockRecords - 1) / blockRecords
		if len(v.Blocks()) != wantBlocks {
			t.Fatalf("blockRecords=%d: %d blocks, want %d", blockRecords, len(v.Blocks()), wantBlocks)
		}
		got, rep, err := v.Records(nil, false)
		if err != nil {
			t.Fatalf("blockRecords=%d: Records: %v", blockRecords, err)
		}
		if rep != nil {
			t.Fatalf("blockRecords=%d: strict decode produced a salvage report", blockRecords)
		}
		recordsEqual(t, got, want, "random access")

		// Streaming path (sniffed; never touches the index).
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("blockRecords=%d: NewReader: %v", blockRecords, err)
		}
		recordsEqual(t, drainReader(t, r), want, "streaming")
	}
}

func TestV2OpenFileMmap(t *testing.T) {
	want := v2TestRecords()
	path := filepath.Join(t.TempDir(), "s.lila")
	if err := os.WriteFile(path, writeV2(t, want, 16), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	v, err := OpenV2File(f, Limits{})
	if err != nil {
		t.Fatalf("OpenV2File: %v", err)
	}
	got, _, err := v.Records(nil, false)
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	recordsEqual(t, got, want, "mmap")
	if err := v.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := v.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

// TestV2SelectiveDecodeEquivalence pins the format-independence of
// RecordFilter: selecting blocks via the v2 index must yield exactly
// the records the same filter keeps over the full v1 stream.
func TestV2SelectiveDecodeEquivalence(t *testing.T) {
	all := v2TestRecords()
	filters := []*RecordFilter{
		{Threads: []trace.ThreadID{1}},
		{Threads: []trace.ThreadID{2}},
		{MinTime: 1100, MaxTime: 1300},
		{Threads: []trace.ThreadID{1}, MinTime: 1050, MaxTime: 1200},
		{MinTime: 4000}, // beyond the last timed record except the end
	}
	data := writeV2(t, all, 8)
	v, err := ParseV2(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	w, err := NewWriter(&v1, FormatBinary, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range all {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	for i, f := range filters {
		got, _, err := v.Records(f, false)
		if err != nil {
			t.Fatalf("filter %d: v2 Records: %v", i, err)
		}
		br, err := NewReader(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		want := drainReader(t, NewFilteredReader(br, f))
		recordsEqual(t, got, want, "filtered")
		if len(got) == len(all) && !f.All() && i != 4 {
			t.Errorf("filter %d selected everything; test is vacuous", i)
		}
	}
}

// TestV2SelectiveSkipsCorruptBlock proves blocks are really skipped:
// a corrupt worker-only block kills a strict full decode but is never
// touched by a strict GUI-thread-filtered decode.
func TestV2SelectiveSkipsCorruptBlock(t *testing.T) {
	all := v2TestRecords()
	data := writeV2(t, all, 8)
	v, err := ParseV2(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// Find a block attributed solely to thread 2, with no global recs.
	target := -1
	for i, b := range v.Blocks() {
		if !b.HasGlobal() && b.MayContainThread(2) && !b.MayContainThread(1) {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no worker-only block in corpus; adjust the test stream")
	}
	bad := bytes.Clone(data)
	b := v.Blocks()[target]
	bad[b.Offset+b.Length-1] ^= 0xff // corrupt the payload tail

	vb, err := ParseV2(bad, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := vb.Records(nil, false); err == nil {
		t.Fatal("strict full decode of corrupt block succeeded")
	}
	got, _, err := vb.Records(&RecordFilter{Threads: []trace.ThreadID{1}}, false)
	if err != nil {
		t.Fatalf("GUI-filtered decode touched the corrupt worker block: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("filtered decode returned nothing")
	}
}

// TestV2PerBlockSalvage corrupts one block and checks the loss is
// exactly that block — itemized counts, no resync scan, and correct
// absolute times after the gap thanks to per-block time bases.
func TestV2PerBlockSalvage(t *testing.T) {
	all := v2TestRecords()
	const blockRecords = 8
	data := writeV2(t, all, blockRecords)
	v, err := ParseV2(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	target := 3 // a middle block
	info := v.Blocks()[target]
	bad := bytes.Clone(data)
	bad[info.Offset+info.Length/2] ^= 0x40

	vb, err := ParseV2(bad, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := vb.Records(nil, true)
	if err != nil {
		t.Fatalf("salvage Records: %v", err)
	}
	if rep == nil || !rep.Damaged() {
		t.Fatal("salvage of a corrupt block reported no damage")
	}
	if rep.RecordsDropped != info.Records {
		t.Errorf("dropped %d records, want exactly the block's %d", rep.RecordsDropped, info.Records)
	}
	if rep.BytesSkipped != info.Length {
		t.Errorf("skipped %d bytes, want the block's %d", rep.BytesSkipped, info.Length)
	}
	want := append(append([]*Record{}, all[:target*blockRecords]...), all[(target+1)*blockRecords:]...)
	recordsEqual(t, got, want, "salvaged")
	if rep.RecordsKept != len(got) {
		t.Errorf("kept %d, yielded %d", rep.RecordsKept, len(got))
	}

	// The streaming salvage reader must reach the same records.
	r, err := NewReaderOptions(bytes.NewReader(bad), ReaderOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*Record
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		streamed = append(streamed, rec)
	}
	recordsEqual(t, streamed, want, "streaming salvage")
	srep := SalvageOf(r)
	if srep == nil || srep.RecordsDropped != info.Records {
		t.Errorf("streaming salvage report = %+v, want %d dropped", srep, info.Records)
	}
}

// TestV2IndexDamageFallsBackToScan destroys the footer and checks
// strict decode refuses while salvage re-frames every block from the
// self-describing headers.
func TestV2IndexDamageFallsBackToScan(t *testing.T) {
	all := v2TestRecords()
	data := writeV2(t, all, 8)
	for name, mutate := range map[string]func([]byte) []byte{
		"trailer":   func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"index":     func(b []byte) []byte { b[len(b)-v2TrailerLen-2] ^= 0xff; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-v2TrailerLen] },
	} {
		t.Run(name, func(t *testing.T) {
			bad := mutate(bytes.Clone(data))
			v, err := ParseV2(bad, Limits{})
			if err != nil {
				t.Fatalf("ParseV2: %v", err)
			}
			if _, _, err := v.Records(nil, false); err == nil {
				t.Error("strict decode accepted a damaged index")
			}
			got, rep, err := v.Records(nil, true)
			if err != nil {
				t.Fatalf("salvage Records: %v", err)
			}
			recordsEqual(t, got, all, "index-damage salvage")
			if rep.FirstError == "" {
				t.Error("index damage not noted in report")
			}
		})
	}
}

func TestV2TruncatedTail(t *testing.T) {
	all := v2TestRecords()
	data := writeV2(t, all, 8)
	cut := data[:len(data)*2/3]

	if r, err := NewReader(bytes.NewReader(cut)); err == nil {
		if _, err := io.ReadAll(readerAdapter{r}); err == nil {
			t.Error("strict streaming decode accepted a truncated trace")
		}
	}

	r, err := NewReaderOptions(bytes.NewReader(cut), ReaderOptions{Salvage: true})
	if err != nil {
		t.Fatalf("salvage reader: %v", err)
	}
	n := 0
	for {
		if _, err := r.Read(); err != nil {
			break
		}
		n++
	}
	rep := SalvageOf(r)
	if rep == nil || !rep.TruncatedTail {
		t.Errorf("truncated v2 trace: report = %+v, want TruncatedTail", rep)
	}
	if n == 0 {
		t.Error("salvage recovered nothing from a 2/3 prefix")
	}
}

// readerAdapter exposes a lila.Reader as an io.Reader of record
// stringifications, just to drive it to EOF-or-error.
type readerAdapter struct{ r Reader }

func (a readerAdapter) Read(p []byte) (int, error) {
	if _, err := a.r.Read(); err != nil {
		return 0, err
	}
	if len(p) > 0 {
		p[0] = '.'
		return 1, nil
	}
	return 0, nil
}

// TestUnsupportedVersionBothDirections covers every reader × wrong
// version pairing: each must report ErrUnsupportedVersion, not a
// garbled decode or a salvage spiral.
func TestUnsupportedVersionBothDirections(t *testing.T) {
	v2Data := writeV2(t, v2TestRecords(), 8)
	var v1buf bytes.Buffer
	w, err := NewWriter(&v1buf, FormatBinary, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(&Record{Type: RecEnd, Time: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	v1Data := v1buf.Bytes()
	future := []byte("LILA\x07whatever")

	cases := []struct {
		name string
		err  func() error
	}{
		{"v1 binary reader on v2", func() error {
			_, err := NewBinaryReader(bytes.NewReader(v2Data))
			return err
		}},
		{"v1 salvage reader on v2", func() error {
			_, err := NewBinarySalvageReader(bytes.NewReader(v2Data), Limits{})
			return err
		}},
		{"v2 parser on v1", func() error {
			_, err := ParseV2(v1Data, Limits{})
			return err
		}},
		{"v2 stream reader on v1", func() error {
			_, err := NewV2Reader(bytes.NewReader(v1Data), ReaderOptions{})
			return err
		}},
		{"sniffer on future version", func() error {
			_, err := NewReader(bytes.NewReader(future))
			return err
		}},
		{"salvage sniffer on future version", func() error {
			_, err := NewReaderOptions(bytes.NewReader(future), ReaderOptions{Salvage: true})
			return err
		}},
		{"text reader on future text version", func() error {
			_, err := NewReader(bytes.NewReader([]byte("#lila text 9\n")))
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.err()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrUnsupportedVersion) {
			t.Errorf("%s: error %q does not wrap ErrUnsupportedVersion", tc.name, err)
		}
	}

	// The sniffing entry points must route each version to the right
	// reader rather than erroring.
	for _, data := range [][]byte{v1Data, v2Data} {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("sniffed reader: %v", err)
		}
		drainReader(t, r)
	}
}

// TestV2RejectsCompressedFlag pins the index-entry contract around the
// compression flag: a compressed entry must carry its inflated length,
// so a forged flag on a raw block's entry (with nothing following) is
// treated as index damage — the reader must not misdecode the payload,
// and salvage must still recover everything from the self-framing
// block headers, whose own raw/compressed discipline is authoritative.
func TestV2RejectsCompressedFlag(t *testing.T) {
	// Single block, so the index's final byte is its flags uvarint.
	data := writeV2(t, v2TestRecords(), 1<<20)
	tr := data[len(data)-v2TrailerLen:]
	indexOff := binary.LittleEndian.Uint64(tr[0:8])
	indexLen := binary.LittleEndian.Uint32(tr[8:12])
	index := data[indexOff : indexOff+uint64(indexLen)]
	index[len(index)-1] |= v2FlagCompressed
	binary.LittleEndian.PutUint32(tr[12:16], crc32.Checksum(index, v2CRC))

	v, err := ParseV2(data, Limits{})
	if err != nil {
		t.Fatalf("ParseV2: %v", err)
	}
	if v.indexErr == nil {
		t.Fatal("compressed flag accepted as a valid index")
	}
	if _, _, err := v.Records(nil, false); err == nil {
		t.Error("strict decode proceeded past a compressed-flag index")
	}
	// Salvage still recovers the records via the header scan.
	got, _, err := v.Records(nil, true)
	if err != nil {
		t.Fatalf("salvage Records: %v", err)
	}
	recordsEqual(t, got, v2TestRecords(), "compressed-flag fallback")
}
