package lila

import (
	"bytes"
	"io"
	"math/rand/v2"
	"reflect"
	"testing"

	"lagalyzer/internal/trace"
)

// genRecords builds a random, well-formed record stream: balanced
// calls/returns on two threads, non-nested GC brackets, samples with
// random stacks, a final end record, all time-ordered.
func genRecords(r *rand.Rand) []*Record {
	recs := []*Record{
		{Type: RecThread, Thread: 1, Name: "edt"},
		{Type: RecThread, Thread: 2, Name: "bg thread", Daemon: true},
	}
	classes := []string{"a.B", "javax.swing.JComponent", "sun.x.Y", "org.app.Long$Inner"}
	methods := []string{"m", "paint", "actionPerformed", "run"}
	kinds := []trace.Kind{trace.KindDispatch, trace.KindListener, trace.KindPaint, trace.KindNative, trace.KindAsync}
	states := trace.ThreadStates()

	now := trace.Time(0)
	depth := map[trace.ThreadID]int{}
	inGC := false
	for i := 0; i < 300; i++ {
		now = now.Add(trace.Dur(r.Int64N(int64(trace.Ms(5)))) + 1)
		tid := trace.ThreadID(1 + r.IntN(2))
		switch choice := r.IntN(10); {
		case choice < 4: // call
			if inGC {
				continue
			}
			recs = append(recs, &Record{
				Type: RecCall, Time: now, Thread: tid,
				Kind:  kinds[r.IntN(len(kinds))],
				Class: classes[r.IntN(len(classes))], Method: methods[r.IntN(len(methods))],
			})
			depth[tid]++
		case choice < 7: // return
			if inGC || depth[tid] == 0 {
				continue
			}
			recs = append(recs, &Record{Type: RecReturn, Time: now, Thread: tid})
			depth[tid]--
		case choice < 9: // sample
			var stack []trace.Frame
			for j := 0; j < r.IntN(5); j++ {
				stack = append(stack, trace.Frame{
					Class: classes[r.IntN(len(classes))], Method: methods[r.IntN(len(methods))],
					Native: r.IntN(4) == 0,
				})
			}
			recs = append(recs, &Record{
				Type: RecSample, Time: now, Thread: tid,
				State: states[r.IntN(len(states))], Stack: stack,
			})
		default: // GC toggle
			if inGC {
				recs = append(recs, &Record{Type: RecGCEnd, Time: now})
			} else {
				recs = append(recs, &Record{Type: RecGCStart, Time: now, Major: r.IntN(3) == 0})
			}
			inGC = !inGC
		}
	}
	// Close everything.
	if inGC {
		now = now.Add(1)
		recs = append(recs, &Record{Type: RecGCEnd, Time: now})
	}
	for tid, d := range depth {
		for ; d > 0; d-- {
			now = now.Add(1)
			recs = append(recs, &Record{Type: RecReturn, Time: now, Thread: tid})
		}
	}
	recs = append(recs, &Record{Type: RecEnd, Time: now.Add(1), Count: r.IntN(1 << 20)})
	return recs
}

// TestPropertyRoundTrip encodes and decodes random record streams in
// both formats and demands exact equality.
func TestPropertyRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		r := rand.New(rand.NewPCG(seed, seed*7+1))
		recs := genRecords(r)
		h := Header{
			App:             "Prop App",
			SessionID:       int(seed),
			GUIThread:       1,
			FilterThreshold: trace.Dur(r.Int64N(int64(trace.Ms(10)))),
			SamplePeriod:    trace.Dur(r.Int64N(int64(trace.Ms(20)))),
			Start:           trace.Time(r.Int64N(1000)),
		}
		for _, f := range []Format{FormatText, FormatBinary} {
			var buf bytes.Buffer
			w, err := NewWriter(&buf, f, h)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range recs {
				if err := w.WriteRecord(rec); err != nil {
					t.Fatalf("seed %d %v: write: %v", seed, f, err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			rd, err := NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if rd.Header() != h {
				t.Fatalf("seed %d %v: header mismatch: %+v vs %+v", seed, f, rd.Header(), h)
			}
			for i := 0; ; i++ {
				got, err := rd.Read()
				if err == io.EOF {
					if i != len(recs) {
						t.Fatalf("seed %d %v: read %d of %d records", seed, f, i, len(recs))
					}
					break
				}
				if err != nil {
					t.Fatalf("seed %d %v: read %d: %v", seed, f, i, err)
				}
				if !reflect.DeepEqual(got, recs[i]) {
					t.Fatalf("seed %d %v: record %d:\n got %+v\nwant %+v", seed, f, i, got, recs[i])
				}
			}
		}
	}
}
