package lila_test

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"lagalyzer/internal/faultinject"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
)

// genTrace writes a deterministic multi-episode trace and returns the
// encoded bytes alongside the records that went in.
func genTrace(t testing.TB, f lila.Format, episodes int) ([]byte, lila.Header, []*lila.Record) {
	t.Helper()
	h := lila.Header{App: "salvage-app", SessionID: 7, GUIThread: 1,
		FilterThreshold: 0, SamplePeriod: trace.Ms(10), Start: 0}
	var recs []*lila.Record
	recs = append(recs,
		&lila.Record{Type: lila.RecThread, Thread: 1, Name: "edt"},
		&lila.Record{Type: lila.RecThread, Thread: 2, Name: "worker", Daemon: true},
	)
	tm := trace.Time(trace.Ms(1))
	step := trace.Time(trace.Ms(1))
	for i := 0; i < episodes; i++ {
		cls := fmt.Sprintf("app.Widget%d", i%5)
		recs = append(recs,
			&lila.Record{Type: lila.RecCall, Time: tm, Thread: 1, Kind: trace.KindDispatch},
			&lila.Record{Type: lila.RecCall, Time: tm + step, Thread: 1, Kind: trace.KindListener, Class: cls, Method: "actionPerformed"},
			&lila.Record{Type: lila.RecSample, Time: tm + 2*step, Thread: 1, State: trace.StateRunnable,
				Stack: []trace.Frame{{Class: cls, Method: "actionPerformed"}, {Class: "java.awt.EventQueue", Method: "dispatchEvent"}}},
			&lila.Record{Type: lila.RecReturn, Time: tm + 3*step, Thread: 1},
			&lila.Record{Type: lila.RecReturn, Time: tm + 4*step, Thread: 1},
		)
		tm += 6 * step
	}
	recs = append(recs, &lila.Record{Type: lila.RecEnd, Time: tm, Count: 2})

	var buf bytes.Buffer
	w, err := lila.NewWriter(&buf, f, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), h, recs
}

// salvageAll drains a salvage-mode reader, failing the test on any
// non-EOF error (salvage mode must not surface record errors).
func salvageAll(t testing.TB, data []byte) ([]*lila.Record, *lila.SalvageReport) {
	t.Helper()
	r, err := lila.NewReaderOptions(bytes.NewReader(data), lila.ReaderOptions{Salvage: true})
	if err != nil {
		t.Fatalf("opening salvage reader: %v", err)
	}
	var recs []*lila.Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("salvage read: %v", err)
		}
		recs = append(recs, rec)
	}
	rep := lila.SalvageOf(r)
	if rep == nil {
		t.Fatal("salvage reader returned no report")
	}
	return recs, rep
}

func TestSalvageCleanTrace(t *testing.T) {
	for _, f := range []lila.Format{lila.FormatText, lila.FormatBinary} {
		data, _, want := genTrace(t, f, 10)
		got, rep := salvageAll(t, data)
		if rep.Damaged() {
			t.Errorf("%v: clean trace reported damage: %s", f, rep)
		}
		if rep.RecordsKept != len(want) {
			t.Errorf("%v: kept %d records, want %d", f, rep.RecordsKept, len(want))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: salvage of clean trace changed records", f)
		}
	}
}

// TestSalvageTruncated is the golden truncation test: records salvaged
// from a truncated trace must be exactly the decodable prefix of the
// original record stream, and the report must flag the lost tail.
func TestSalvageTruncated(t *testing.T) {
	for _, f := range []lila.Format{lila.FormatText, lila.FormatBinary} {
		data, _, want := genTrace(t, f, 20)
		for _, frac := range []float64{0.35, 0.6, 0.9} {
			cut := faultinject.TruncateFrac(data, frac)
			got, rep := salvageAll(t, cut)
			if !rep.TruncatedTail {
				t.Errorf("%v frac=%v: truncated tail not reported: %s", f, frac, rep)
			}
			if len(got) == 0 {
				t.Errorf("%v frac=%v: salvaged nothing from %d bytes", f, frac, len(cut))
			}
			if len(got) >= len(want) {
				t.Errorf("%v frac=%v: kept %d records from truncated trace of %d", f, frac, len(got), len(want))
			}
			// Golden property: the survivors are the uncorrupted prefix.
			if !reflect.DeepEqual(got, want[:len(got)]) {
				t.Errorf("%v frac=%v: salvaged records diverge from original prefix", f, frac)
			}
			if rep.RecordsKept != len(got) {
				t.Errorf("%v frac=%v: report kept %d, reader yielded %d", f, frac, rep.RecordsKept, len(got))
			}
		}
	}
}

// TestSalvageBitFlips corrupts bytes mid-stream and checks the reader
// resynchronizes: the prefix before the damage survives verbatim, the
// report accounts for the loss, and a lenient session build succeeds.
func TestSalvageBitFlips(t *testing.T) {
	for _, f := range []lila.Format{lila.FormatText, lila.FormatBinary} {
		data, _, want := genTrace(t, f, 40)
		lo := len(data) / 3 // keep header and an ample prefix intact
		for seed := uint64(1); seed <= 5; seed++ {
			bad := faultinject.FlipBits(data, seed, 8, lo, 0)
			got, rep := salvageAll(t, bad)
			if !rep.Damaged() {
				// A flip can land inside a symbol name, yielding a
				// valid record with different content — undetectable by
				// any decoder. The record count still must hold.
				if len(got) != len(want) {
					t.Errorf("%v seed=%d: record count changed (%d != %d) but no damage reported",
						f, seed, len(got), len(want))
				}
				continue
			}
			if rep.RecordsKept != len(got) {
				t.Errorf("%v seed=%d: report kept %d, reader yielded %d", f, seed, rep.RecordsKept, len(got))
			}
			if rep.FirstError == "" {
				t.Errorf("%v seed=%d: damaged report carries no first error", f, seed)
			}
			// The prefix strictly before the first flipped byte decodes
			// identically; find how many original records that covers by
			// decoding the undamaged prefix in salvage mode too.
			prefix, _ := salvageAll(t, data[:lo])
			if len(got) < len(prefix) {
				t.Errorf("%v seed=%d: kept %d records, undamaged prefix alone holds %d",
					f, seed, len(got), len(prefix))
			}
			if !reflect.DeepEqual(got[:len(prefix)], prefix) {
				t.Errorf("%v seed=%d: records before the damage diverge", f, seed)
			}
			// End to end: a lenient build over the salvaged records must
			// produce a valid (possibly degraded) session.
			s, health, err := treebuild.ReadSessionOptions(bytes.NewReader(bad),
				lila.ReaderOptions{Salvage: true}, treebuild.Options{Lenient: true})
			if err != nil {
				t.Errorf("%v seed=%d: lenient build over salvaged trace: %v", f, seed, err)
				continue
			}
			if s == nil || len(s.Episodes) == 0 {
				t.Errorf("%v seed=%d: salvaged session has no episodes", f, seed)
			}
			if !health.Degraded() {
				t.Errorf("%v seed=%d: damaged ingest not reflected in health", f, seed)
			}
		}
	}
}

// TestSalvageDeterministic re-runs salvage over the same damaged input
// and requires byte-identical outcomes — reports feed the study health
// sections, which participate in the byte-identical output guarantee.
func TestSalvageDeterministic(t *testing.T) {
	for _, f := range []lila.Format{lila.FormatText, lila.FormatBinary} {
		data, _, _ := genTrace(t, f, 30)
		bad := faultinject.FlipBits(data, 42, 12, len(data)/4, 0)
		bad = faultinject.Truncate(bad, len(bad)-len(bad)/10)
		recs1, rep1 := salvageAll(t, bad)
		recs2, rep2 := salvageAll(t, bad)
		if !reflect.DeepEqual(recs1, recs2) {
			t.Errorf("%v: salvaged records differ between runs", f)
		}
		if !reflect.DeepEqual(rep1, rep2) {
			t.Errorf("%v: salvage reports differ between runs: %+v vs %+v", f, rep1, rep2)
		}
	}
}

// TestSalvageTextLineDamage corrupts individual text lines and checks
// the per-line accounting is exact.
func TestSalvageTextLineDamage(t *testing.T) {
	data, _, want := genTrace(t, lila.FormatText, 10)
	lines := strings.Split(string(data), "\n")
	// Damage three record lines (well past the 7 header lines).
	damaged := 0
	for _, i := range []int{10, 15, 22} {
		if i < len(lines) && lines[i] != "" && lines[i][0] != 'E' {
			lines[i] = "X" + lines[i]
			damaged++
		}
	}
	got, rep := salvageAll(t, []byte(strings.Join(lines, "\n")))
	if rep.RecordsDropped != damaged {
		t.Errorf("dropped %d records, want %d", rep.RecordsDropped, damaged)
	}
	if rep.RecordsKept != len(want)-damaged {
		t.Errorf("kept %d records, want %d", rep.RecordsKept, len(want)-damaged)
	}
	if len(got) != len(want)-damaged {
		t.Errorf("yielded %d records, want %d", len(got), len(want)-damaged)
	}
	if rep.TruncatedTail {
		t.Errorf("tail intact but reported truncated: %s", rep)
	}
}

// TestStrictReadersStillFail pins the fail-stop default: without
// Salvage the same damage is an error, not a degraded success.
func TestStrictReadersStillFail(t *testing.T) {
	for _, f := range []lila.Format{lila.FormatText, lila.FormatBinary} {
		data, _, _ := genTrace(t, f, 10)
		// Truncation is unambiguous damage in both formats; a bit flip
		// can land inside a symbol name where no decoder can tell.
		cut := faultinject.TruncateFrac(data, 0.5)
		r, err := lila.NewReader(bytes.NewReader(cut))
		if err != nil {
			continue // header damage: also a fail, fine
		}
		var readErr error
		for {
			_, readErr = r.Read()
			if readErr != nil {
				break
			}
		}
		if readErr == io.EOF {
			t.Errorf("%v: strict reader accepted truncated trace", f)
		}
	}
}
