// Package lila implements the trace format contract between the LiLa
// listener-latency profiler and LagAlyzer.
//
// A trace is a header followed by a time-ordered stream of records:
// thread declarations, interval call/return pairs, global GC start/end
// brackets, call-stack samples of all threads, and a final end record
// carrying the session end time and the count of episodes the profiler
// filtered out (shorter than the filter threshold).
//
// Three interchangeable encodings are provided: a line-oriented text
// format that is easy to inspect and diff, a compact v1 binary format
// with string interning for realistic multi-hundred-thousand-record
// sessions, and the block-indexed v2 binary format whose footer index
// lets readers map the file and decode only the blocks an analysis
// needs. All of them round-trip exactly.
//
// The package deliberately knows nothing about interval trees or
// episodes; reconstructing those from the record stream is the job of
// package treebuild, mirroring how the real LagAlyzer parses LiLa
// output into its in-memory core.
package lila

import (
	"errors"
	"fmt"

	"lagalyzer/internal/trace"
)

// FormatVersion is the version of the v1 encodings (text and the
// stream binary format). The block-indexed binary format is
// V2FormatVersion.
const FormatVersion = 1

// ErrUnsupportedVersion is wrapped by readers that recognise a LiLa
// trace whose format version they do not speak — a v1 reader handed a
// v2 file, or any reader handed a version from the future. Callers
// match it with errors.Is to distinguish "wrong version" from "not a
// LiLa trace at all".
var ErrUnsupportedVersion = errors.New("lila: unsupported format version")

// Header carries the per-session metadata recorded at trace start.
type Header struct {
	// App is the application's display name.
	App string
	// SessionID distinguishes multiple sessions with the same app.
	SessionID int
	// GUIThread is the event dispatch thread whose dispatch intervals
	// delimit episodes.
	GUIThread trace.ThreadID
	// FilterThreshold is the minimum episode duration the profiler
	// traces; shorter episodes are only counted.
	FilterThreshold trace.Dur
	// SamplePeriod is the nominal call-stack sampling interval.
	SamplePeriod trace.Dur
	// Start is the session start time stamp.
	Start trace.Time
}

// RecType enumerates the record kinds of the trace stream.
type RecType uint8

const (
	// RecThread declares a thread (ID, name, daemon flag). Thread
	// records appear before any record referring to the thread.
	RecThread RecType = iota
	// RecCall opens an interval (dispatch, listener, paint, native,
	// or async — never GC) on a thread.
	RecCall
	// RecReturn closes the innermost open interval on a thread.
	RecReturn
	// RecGCStart opens a stop-the-world collection. GC brackets are
	// global: they apply to every thread simultaneously.
	RecGCStart
	// RecGCEnd closes the current collection.
	RecGCEnd
	// RecSample is the call-stack sample of one thread at one
	// sampling tick. All samples of a tick share a time stamp.
	RecSample
	// RecEnd terminates the stream, carrying the session end time and
	// the short-episode count.
	RecEnd

	numRecTypes = iota
)

var recTypeNames = [numRecTypes]string{
	RecThread:  "thread",
	RecCall:    "call",
	RecReturn:  "return",
	RecGCStart: "gcstart",
	RecGCEnd:   "gcend",
	RecSample:  "sample",
	RecEnd:     "end",
}

// String returns the record type's name.
func (t RecType) String() string {
	if int(t) >= numRecTypes {
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
	return recTypeNames[t]
}

// Record is one entry of the trace stream. Which fields are meaningful
// depends on Type; unused fields are zero.
type Record struct {
	Type   RecType
	Time   trace.Time        // all except RecThread
	Thread trace.ThreadID    // RecThread, RecCall, RecReturn, RecSample
	Kind   trace.Kind        // RecCall
	Class  string            // RecCall
	Method string            // RecCall
	Name   string            // RecThread: thread name
	Daemon bool              // RecThread
	Major  bool              // RecGCStart: major (full) collection
	State  trace.ThreadState // RecSample
	Stack  []trace.Frame     // RecSample, leaf first
	Count  int               // RecEnd: short-episode count
}

// Validate checks that the record is internally consistent for its
// type (e.g. a call carries a valid non-GC kind).
func (r *Record) Validate() error {
	switch r.Type {
	case RecThread:
		if r.Name == "" {
			return fmt.Errorf("lila: thread record for %d without a name", r.Thread)
		}
	case RecCall:
		if !r.Kind.Valid() {
			return fmt.Errorf("lila: call record with invalid kind %d", r.Kind)
		}
		if r.Kind == trace.KindGC {
			return fmt.Errorf("lila: GC intervals use gcstart/gcend records, not calls")
		}
	case RecReturn, RecGCStart, RecGCEnd, RecEnd:
		// No per-type constraints beyond field zero-ness.
	case RecSample:
		if !r.State.Valid() {
			return fmt.Errorf("lila: sample record with invalid state %d", r.State)
		}
	default:
		return fmt.Errorf("lila: unknown record type %d", r.Type)
	}
	return nil
}

// Writer emits trace records. Implementations write the header at
// construction time; Close flushes any buffered output. Records must
// be written in stream order (the order Validate-checked producers
// emit them); writers do not reorder.
type Writer interface {
	WriteRecord(r *Record) error
	Close() error
}

// Reader yields trace records. Read returns io.EOF after the RecEnd
// record has been delivered.
type Reader interface {
	Header() Header
	Read() (*Record, error)
}
