package lila_test

import (
	"bytes"
	"io"
	"testing"

	"lagalyzer/internal/faultinject"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/stream"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
)

// corpus returns seed inputs for the parser fuzzers: one valid trace
// per format plus a handful of near-valid mutations.
func corpus(t testing.TB) [][]byte {
	var out [][]byte
	h := lila.Header{App: "fuzz", GUIThread: 1, FilterThreshold: trace.Ms(3), SamplePeriod: trace.Ms(10)}
	for _, f := range []lila.Format{lila.FormatText, lila.FormatBinary, lila.FormatV2} {
		var buf bytes.Buffer
		w, err := lila.NewWriter(&buf, f, h)
		if err != nil {
			t.Fatal(err)
		}
		recs := []*lila.Record{
			{Type: lila.RecThread, Thread: 1, Name: "edt"},
			{Type: lila.RecCall, Time: 10, Thread: 1, Kind: trace.KindDispatch},
			{Type: lila.RecCall, Time: 12, Thread: 1, Kind: trace.KindListener, Class: "a.B", Method: "on"},
			{Type: lila.RecGCStart, Time: 15, Major: true},
			{Type: lila.RecGCEnd, Time: 20},
			{Type: lila.RecSample, Time: 25, Thread: 1, State: trace.StateRunnable,
				Stack: []trace.Frame{{Class: "a.B", Method: "on"}}},
			{Type: lila.RecReturn, Time: 30, Thread: 1},
			{Type: lila.RecReturn, Time: 31, Thread: 1},
			{Type: lila.RecEnd, Time: 100, Count: 3},
		}
		for _, rec := range recs {
			if err := w.WriteRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}
	// A flate-compressed v2 trace seeds the fuzzers near the inflate
	// path: block CRCs over the stored bytes, the count==0 header
	// escape, and the inflated-length bound check.
	{
		var buf bytes.Buffer
		w, err := lila.NewWriterOptions(&buf, h, lila.WriteOptions{Format: lila.FormatV2, Compression: lila.CompressionFlate})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range compressibleRecords() {
			if err := w.WriteRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}
	out = append(out,
		[]byte(""),
		[]byte("#lila text 1\n"),
		[]byte("#lila text 1\n#app \"x\"\n#session 0\n#gui 1\n#filter 0\n#sampleperiod 0\n#start 0\nZ bogus\n"),
		[]byte("LILA\x01"),
		[]byte("LILA\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"),
		[]byte("LILA\x02junk"),
	)
	return out
}

// compressibleRecords is a repetitive stream long enough that the v2
// writer's flate pass genuinely compresses its blocks (tiny payloads
// stay raw, which would leave the inflate path unseeded).
func compressibleRecords() []*lila.Record {
	recs := []*lila.Record{{Type: lila.RecThread, Thread: 1, Name: "edt"}}
	tm := trace.Time(10)
	for i := 0; i < 200; i++ {
		recs = append(recs,
			&lila.Record{Type: lila.RecCall, Time: tm, Thread: 1, Kind: trace.KindListener, Class: "a.B", Method: "on"},
			&lila.Record{Type: lila.RecSample, Time: tm + 1, Thread: 1, State: trace.StateRunnable,
				Stack: []trace.Frame{{Class: "a.B", Method: "on"}}},
			&lila.Record{Type: lila.RecReturn, Time: tm + 2, Thread: 1})
		tm += 5
	}
	recs = append(recs, &lila.Record{Type: lila.RecEnd, Time: tm, Count: 3})
	return recs
}

// drain reads everything the parser will give, feeding both downstream
// consumers; the property under test is "no panic, no hang" on
// arbitrary input.
func drain(data []byte) {
	r, err := lila.NewReader(bytes.NewReader(data))
	if err != nil {
		return
	}
	a := stream.NewAnalyzer(r.Header(), 0)
	var recs []*lila.Record
	for i := 0; i < 1<<17; i++ { // hard cap: fuzz inputs must terminate
		rec, err := r.Read()
		if err == io.EOF || err != nil {
			break
		}
		recs = append(recs, rec)
		_ = a.Add(rec) // errors fine; panics not
	}
	_, _, _ = treebuild.BuildRecords(r.Header(), recs)
	_ = a.Stats()
}

// FuzzReader throws arbitrary bytes at the format sniffer, both
// codecs, the session rebuilder, and the streaming analyzer. Run with
// `go test -fuzz=FuzzReader ./internal/lila` for continuous fuzzing;
// under plain `go test` the seed corpus acts as a robustness test.
func FuzzReader(f *testing.F) {
	for _, seed := range corpus(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		drain(data)
	})
}

// drainSalvage pushes arbitrary bytes through the salvage-mode reader
// and the lenient session builder — the full damaged-trace ingest
// path. The property is "no panic, no hang" plus report consistency.
func drainSalvage(t *testing.T, data []byte) {
	r, err := lila.NewReaderOptions(bytes.NewReader(data), lila.ReaderOptions{Salvage: true})
	if err != nil {
		return // header damage is allowed to fail
	}
	var recs []*lila.Record
	for i := 0; i < 1<<17; i++ { // hard cap: fuzz inputs must terminate
		rec, err := r.Read()
		if err != nil {
			break
		}
		recs = append(recs, rec)
	}
	rep := lila.SalvageOf(r)
	if rep == nil {
		t.Fatal("salvage-mode reader has no report")
	}
	if rep.RecordsKept < len(recs) {
		t.Fatalf("report kept %d < yielded %d", rep.RecordsKept, len(recs))
	}
	if rep.BytesSkipped < 0 || rep.BytesSkipped > int64(len(data)) {
		t.Fatalf("skipped %d bytes of a %d-byte input", rep.BytesSkipped, len(data))
	}
	_, _, _ = treebuild.BuildRecordsOptions(r.Header(), recs, treebuild.Options{Lenient: true})
}

// salvageSeeds augments the shared corpus with faultinject-damaged
// variants of the valid traces so the fuzzers start near the
// interesting resynchronization paths.
func salvageSeeds(t testing.TB) [][]byte {
	seeds := corpus(t)
	var out [][]byte
	for _, s := range seeds {
		out = append(out, s)
		if len(s) < 16 {
			continue
		}
		out = append(out,
			faultinject.TruncateFrac(s, 0.5),
			faultinject.FlipBits(s, 1, 4, len(s)/4, 0),
			faultinject.CorruptRange(s, 2, len(s)/3, len(s)/2),
		)
	}
	return out
}

// FuzzSalvageText fuzzes the text salvage path.
func FuzzSalvageText(f *testing.F) {
	for _, seed := range salvageSeeds(f) {
		if len(seed) > 0 && seed[0] == '#' {
			f.Add(seed)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		drainSalvage(t, data)
	})
}

// FuzzSalvageBinary fuzzes the binary salvage path, including the
// forward-scan resynchronization. The corpus split (text seeds above,
// binary seeds here) just points each fuzzer at its format; the
// sniffing entry point is shared, so crossover mutations still run.
func FuzzSalvageBinary(f *testing.F) {
	for _, seed := range salvageSeeds(f) {
		if len(seed) == 0 || seed[0] != '#' {
			f.Add(seed)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		drainSalvage(t, data)
	})
}

// FuzzSalvageBinaryV2 fuzzes the v2 block-indexed salvage path: footer
// index recovery, per-block checksum drops, and the sequential
// re-framing scan. Seeds are the v2 members of the damaged corpus
// (magic "LILA\x02"); the sniffing entry point is shared, so crossover
// mutations exercise the other formats too.
func FuzzSalvageBinaryV2(f *testing.F) {
	for _, seed := range salvageSeeds(f) {
		if len(seed) >= 5 && bytes.HasPrefix(seed, []byte("LILA\x02")) {
			f.Add(seed)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		drainSalvage(t, data)
		// The random-access path sees the same bytes via LoadTraceDir;
		// fuzz it directly as well.
		v, err := lila.ParseV2(data, lila.Limits{})
		if err != nil {
			return
		}
		if recs, rep, err := v.Records(nil, true); err == nil && rep != nil {
			if rep.RecordsKept < len(recs) {
				t.Fatalf("report kept %d < yielded %d", rep.RecordsKept, len(recs))
			}
		}
	})
}

// TestParsersSurviveMutations flips bytes of valid traces and checks
// nothing panics — a deterministic slice of what FuzzReader explores.
func TestParsersSurviveMutations(t *testing.T) {
	for _, seed := range corpus(t) {
		if len(seed) == 0 {
			continue
		}
		for stride := 1; stride < 17; stride += 3 {
			mutated := bytes.Clone(seed)
			for i := stride; i < len(mutated); i += 13 {
				mutated[i] ^= byte(0x5a + stride)
			}
			drain(mutated)
		}
		// Truncations at every eighth offset.
		for cut := 0; cut < len(seed); cut += 8 {
			drain(seed[:cut])
		}
	}
}
