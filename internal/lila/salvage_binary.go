package lila

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lagalyzer/internal/trace"
)

// errTruncated marks a record stream that ended without its end record.
var errTruncated = errors.New("truncated trace: no end record")

// maxResyncScan bounds the forward scan for the next plausible record
// boundary after a malformed binary record. Damage wider than this is
// treated as an undecodable tail.
const maxResyncScan = 1 << 16

// maxTimeDelta is the salvage decoder's time-monotonicity guard: a
// record whose delta is negative or jumps the clock by more than a
// day is treated as damage. Valid streams are time-ordered, so their
// deltas are never negative, and no interactive session records a
// 24-hour silence between two adjacent records.
const maxTimeDelta = 24 * 60 * 60 * 1e9

// resyncProbes is how many consecutive records must decode cleanly at
// a candidate offset before the salvage decoder accepts it as a
// record boundary. One record can decode by coincidence from garbage;
// three in a row almost never do.
const resyncProbes = 3

// probeWindow bounds the bytes one candidate's speculative decode may
// consume. Real records are far smaller (the largest, a deep sample,
// runs a few KiB), while garbage that passes the type-byte check can
// otherwise swallow MaxStringLen-sized reads per probe.
const probeWindow = 1 << 14

// scanWorkPerByte scales the per-trace resynchronization work budget:
// a salvage decode may spend at most this many probe bytes per input
// byte before giving up on further resyncs. It keeps the worst case —
// crafted input where every offset starts a plausible-looking record —
// linear in the input size instead of quadratic.
const scanWorkPerByte = 64

// BinarySalvageReader reads a binary trace in salvage mode: the
// record stream is buffered, and a malformed record triggers a
// bounded forward scan for the next plausible record boundary instead
// of a fatal error. Candidate boundaries are validated by speculative
// decoding with record-kind, string-reference, string-plausibility,
// and time-monotonicity sanity checks.
//
// Salvage is best-effort by design: records inside a damaged region
// are lost, and with them any interned-string definitions and time
// deltas they carried, so strings referenced only by lost definitions
// make later records undecodable too (they are dropped the same way),
// and absolute times after a gap can shift earlier by the lost
// deltas. Everything dropped or skipped is accounted in the
// SalvageReport; the decode is a pure function of the input bytes.
type BinarySalvageReader struct {
	h        Header
	data     []byte
	off      int
	strings  []string
	lastTime trace.Time
	limits   Limits
	report   SalvageReport
	records  int
	scanWork int64 // remaining resync probe-byte budget
	done     bool
	flushed  bool

	arena    recArena
	stacks   stackTab
	frameBuf []trace.Frame // per-sample decode scratch, reused
	// probing marks speculative decodes (resync plausibility probes).
	// Probe strings are never interned: a rolled-back probe over
	// damaged bytes must not leak byte soup into the process-wide
	// interner.
	probing bool
}

// NewBinarySalvageReader buffers the trace from r (bounded by
// limits.MaxTraceBytes) and parses its header. A trace whose magic or
// header is unreadable fails — without the header the records cannot
// be attributed to a session.
func NewBinarySalvageReader(r io.Reader, limits Limits) (*BinarySalvageReader, error) {
	limits = limits.WithDefaults()
	data, err := io.ReadAll(io.LimitReader(r, limits.MaxTraceBytes+1))
	if err != nil {
		// A transport error mid-slurp still leaves a salvageable
		// prefix; only a totally unreadable source is fatal.
		if len(data) == 0 {
			return nil, fmt.Errorf("lila: reading trace for salvage: %w", err)
		}
	}
	d := &BinarySalvageReader{data: data, limits: limits}
	d.scanWork = scanWorkPerByte * int64(len(data))
	if d.scanWork < 1<<20 {
		d.scanWork = 1 << 20
	}
	if err != nil {
		d.report.note(fmt.Errorf("lila: reading trace for salvage: %w", err))
		d.report.TruncatedTail = true
	}
	if int64(len(data)) > limits.MaxTraceBytes {
		d.data = data[:limits.MaxTraceBytes]
		d.report.note(fmt.Errorf("lila: trace exceeds %d-byte salvage buffer; tail dropped", limits.MaxTraceBytes))
		d.report.TruncatedTail = true
	}
	if len(d.data) < len(binaryMagic) || [5]byte(d.data[:5]) != binaryMagic {
		if len(d.data) >= len(binaryMagic) && string(d.data[:4]) == "LILA" {
			return nil, fmt.Errorf("%w %d (this is the v1 binary salvage reader)",
				ErrUnsupportedVersion, d.data[4])
		}
		return nil, fmt.Errorf("lila: bad magic in salvage input")
	}
	d.off = len(binaryMagic)
	if err := d.readHeader(); err != nil {
		return nil, fmt.Errorf("lila: binary header: %w", err)
	}
	return d, nil
}

func (d *BinarySalvageReader) readHeader() error {
	app, err := d.str()
	if err != nil {
		return err
	}
	d.h.App = app
	vals := make([]int64, 5)
	for i := range vals {
		if vals[i], err = d.varint(); err != nil {
			return err
		}
	}
	d.h.SessionID = int(vals[0])
	d.h.GUIThread = trace.ThreadID(vals[1])
	d.h.FilterThreshold = trace.Dur(vals[2])
	d.h.SamplePeriod = trace.Dur(vals[3])
	d.h.Start = trace.Time(vals[4])
	return nil
}

// Header implements Reader.
func (d *BinarySalvageReader) Header() Header { return d.h }

// Salvage implements SalvageReporter.
func (d *BinarySalvageReader) Salvage() *SalvageReport { return &d.report }

// Primitive slice decoders. Each fails cleanly at the end of data.

var errShort = errors.New("unexpected end of data")

func (d *BinarySalvageReader) byteVal() (byte, error) {
	if d.off >= len(d.data) {
		return 0, errShort
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

func (d *BinarySalvageReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, errShort
	}
	d.off += n
	return v, nil
}

func (d *BinarySalvageReader) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, errShort
	}
	d.off += n
	return v, nil
}

func (d *BinarySalvageReader) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.limits.MaxStringLen) {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	if d.off+int(n) > len(d.data) {
		return "", errShort
	}
	raw := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	if !plausibleBytes(raw) {
		return "", fmt.Errorf("implausible string %q", raw)
	}
	if d.probing {
		// Plain copy, not interned: a rolled-back probe over damaged
		// bytes must not leak byte soup into the process-wide interner.
		return string(raw), nil
	}
	return internBytes(raw), nil
}

func (d *BinarySalvageReader) ref() (string, error) {
	id, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if id == 0 {
		s, err := d.str()
		if err != nil {
			return "", err
		}
		if len(d.strings) >= d.limits.MaxStringTable {
			return "", fmt.Errorf("string table exceeds limit %d", d.limits.MaxStringTable)
		}
		d.strings = append(d.strings, s)
		return s, nil
	}
	if id > uint64(len(d.strings)) {
		return "", fmt.Errorf("string ref %d beyond table size %d", id, len(d.strings))
	}
	return d.strings[id-1], nil
}

func (d *BinarySalvageReader) time() (trace.Time, error) {
	dt, err := d.varint()
	if err != nil {
		return 0, err
	}
	// Monotonicity guard: valid streams are time-ordered (deltas are
	// never negative) and never silent for a day between records.
	if dt < 0 || dt > maxTimeDelta {
		return 0, fmt.Errorf("implausible time delta %d", dt)
	}
	d.lastTime += trace.Time(dt)
	return d.lastTime, nil
}

// plausibleBytes rejects byte soup masquerading as a symbol: JVM
// class/method/thread names never contain control characters.
func plausibleBytes(b []byte) bool {
	for i := 0; i < len(b); i++ {
		if b[i] < 0x20 {
			return false
		}
	}
	return true
}

// snapshot and restore capture the decoder state around speculative
// decodes. The string table only ever appends, so restoring its
// length suffices.
type salvageState struct {
	off      int
	nstrings int
	lastTime trace.Time
}

func (d *BinarySalvageReader) snapshot() salvageState {
	return salvageState{d.off, len(d.strings), d.lastTime}
}

func (d *BinarySalvageReader) restore(s salvageState) {
	d.off = s.off
	d.strings = d.strings[:s.nstrings]
	d.lastTime = s.lastTime
}

// decodeRecord decodes one record at the current offset, mirroring
// BinaryReader.read over the buffered slice.
func (d *BinarySalvageReader) decodeRecord() (*Record, error) {
	tb, err := d.byteVal()
	if err != nil {
		return nil, err
	}
	if int(tb) >= numRecTypes {
		return nil, fmt.Errorf("unknown binary record type %d", tb)
	}
	var rec *Record
	if d.probing {
		// Probe records are discarded on rollback; keep them off the
		// arena so a long resync scan can't strand slab slots.
		rec = &Record{Type: RecType(tb)}
	} else {
		rec = d.arena.new()
		rec.Type = RecType(tb)
	}
	readTID := func() error {
		v, err := d.varint()
		rec.Thread = trace.ThreadID(v)
		return err
	}
	switch rec.Type {
	case RecThread:
		if err := readTID(); err != nil {
			return nil, err
		}
		if rec.Name, err = d.str(); err != nil {
			return nil, err
		}
		db, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		rec.Daemon = db == 1
	case RecCall:
		if rec.Time, err = d.time(); err != nil {
			return nil, err
		}
		if err := readTID(); err != nil {
			return nil, err
		}
		k, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		rec.Kind = trace.Kind(k)
		if rec.Class, err = d.ref(); err != nil {
			return nil, err
		}
		if rec.Method, err = d.ref(); err != nil {
			return nil, err
		}
	case RecReturn:
		if rec.Time, err = d.time(); err != nil {
			return nil, err
		}
		if err := readTID(); err != nil {
			return nil, err
		}
	case RecGCStart:
		if rec.Time, err = d.time(); err != nil {
			return nil, err
		}
		m, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		rec.Major = m == 1
	case RecGCEnd:
		if rec.Time, err = d.time(); err != nil {
			return nil, err
		}
	case RecSample:
		if rec.Time, err = d.time(); err != nil {
			return nil, err
		}
		if err := readTID(); err != nil {
			return nil, err
		}
		st, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		rec.State = trace.ThreadState(st)
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(d.limits.MaxStackDepth) {
			return nil, fmt.Errorf("implausible stack depth %d", n)
		}
		if n > 0 {
			if cap(d.frameBuf) < int(n) {
				d.frameBuf = make([]trace.Frame, n)
			}
			d.frameBuf = d.frameBuf[:n]
			for i := range d.frameBuf {
				nb, err := d.byteVal()
				if err != nil {
					return nil, err
				}
				d.frameBuf[i].Native = nb == 1
				if d.frameBuf[i].Class, err = d.ref(); err != nil {
					return nil, err
				}
				if d.frameBuf[i].Method, err = d.ref(); err != nil {
					return nil, err
				}
			}
			if d.probing {
				rec.Stack = d.frameBuf // transient; dies with the probe
			} else {
				rec.Stack = d.stacks.canon(d.frameBuf)
			}
		}
	case RecEnd:
		if rec.Time, err = d.time(); err != nil {
			return nil, err
		}
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		rec.Count = int(n)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}

// plausible reports whether off looks like a record boundary: several
// consecutive records must decode cleanly from there (or the stream
// must end cleanly sooner). State is rolled back either way.
func (d *BinarySalvageReader) plausible(off int) bool {
	save := d.snapshot()
	d.probing = true
	defer func() {
		// Bill the probe bytes consumed against the scan budget before
		// rolling back.
		d.scanWork -= int64(d.off-off) + 1
		d.restore(save)
		d.probing = false
	}()
	d.off = off
	for i := 0; i < resyncProbes; i++ {
		if d.off >= len(d.data) {
			// Reaching the exact end of data mid-probe is consistent
			// with a truncated but otherwise well-formed tail.
			return i > 0
		}
		if d.off-off > probeWindow {
			// No real record run is this large; garbage that decodes
			// into giant speculative reads is not a boundary.
			return false
		}
		rec, err := d.decodeRecord()
		if err != nil {
			return false
		}
		if rec.Type == RecEnd {
			return true
		}
	}
	return true
}

// resync scans forward from the damage for the next plausible record
// boundary. It returns false when no boundary exists within the scan
// budget (the tail is dropped).
func (d *BinarySalvageReader) resync(from int) bool {
	limit := from + maxResyncScan
	if limit > len(d.data) {
		limit = len(d.data)
	}
	for cand := from + 1; cand < limit; cand++ {
		if d.scanWork <= 0 {
			d.report.note(fmt.Errorf("lila: resync scan budget exhausted at offset %d", cand))
			return false
		}
		if !d.plausible(cand) {
			continue
		}
		d.report.BytesSkipped += int64(cand - from)
		d.report.RecordsDropped++
		d.report.Resyncs++
		d.off = cand
		return true
	}
	return false
}

// finishStream publishes salvage metrics exactly once per trace.
func (d *BinarySalvageReader) finishStream() {
	d.done = true
	if d.flushed {
		return
	}
	d.flushed = true
	d.report.flushMetrics()
}

// Read implements Reader. It returns io.EOF after the end record, or
// after the decodable input is exhausted (TruncatedTail set in the
// report); damage never surfaces as an error, only resource-limit
// violations do.
func (d *BinarySalvageReader) Read() (*Record, error) {
	if d.done {
		return nil, io.EOF
	}
	for {
		if d.off >= len(d.data) {
			d.report.note(errTruncated)
			d.report.TruncatedTail = true
			d.finishStream()
			return nil, io.EOF
		}
		if d.records >= d.limits.MaxRecords {
			d.finishStream()
			return nil, limitErrf("lila: record limit %d exceeded", d.limits.MaxRecords)
		}
		start := d.off
		save := d.snapshot()
		rec, err := d.decodeRecord()
		if err == nil {
			d.records++
			d.report.RecordsKept++
			if rec.Type == RecEnd {
				d.finishStream()
			}
			return rec, nil
		}
		d.restore(save)
		d.report.note(fmt.Errorf("lila: binary record at offset %d: %w", start, err))
		if !d.resync(start) {
			d.report.BytesSkipped += int64(len(d.data) - start)
			d.report.RecordsDropped++
			d.report.TruncatedTail = true
			d.finishStream()
			return nil, io.EOF
		}
	}
}
