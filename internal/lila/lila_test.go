package lila

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"lagalyzer/internal/trace"
)

func testHeader() Header {
	return Header{
		App:             "Test App", // space exercises quoting
		SessionID:       2,
		GUIThread:       1,
		FilterThreshold: 3 * trace.Millisecond,
		SamplePeriod:    10 * trace.Millisecond,
		Start:           0,
	}
}

func testRecords() []*Record {
	ms := func(v float64) trace.Time { return trace.Time(trace.Ms(v)) }
	return []*Record{
		{Type: RecThread, Thread: 1, Name: "AWT-EventQueue-0"},
		{Type: RecThread, Thread: 2, Name: "Worker Pool 1", Daemon: true},
		{Type: RecCall, Time: ms(10), Thread: 1, Kind: trace.KindDispatch},
		{Type: RecCall, Time: ms(10), Thread: 1, Kind: trace.KindListener, Class: "app.Button", Method: "actionPerformed"},
		{Type: RecSample, Time: ms(15), Thread: 1, State: trace.StateRunnable, Stack: []trace.Frame{
			{Class: "app.Model", Method: "update"},
			{Class: "app.Button", Method: "actionPerformed"},
		}},
		{Type: RecSample, Time: ms(15), Thread: 2, State: trace.StateWaiting},
		{Type: RecGCStart, Time: ms(20), Major: true},
		{Type: RecGCEnd, Time: ms(120)},
		{Type: RecSample, Time: ms(125), Thread: 1, State: trace.StateSleeping, Stack: []trace.Frame{
			{Class: "sun.java2d.loops.DrawLine", Method: "DrawLine", Native: true},
		}},
		{Type: RecReturn, Time: ms(200), Thread: 1},
		{Type: RecReturn, Time: ms(200), Thread: 1},
		{Type: RecEnd, Time: ms(1000), Count: 4321},
	}
}

func roundTrip(t *testing.T, f Format) ([]*Record, Header) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, f, testHeader())
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, rec := range testRecords() {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatalf("WriteRecord(%v): %v", rec.Type, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var got []*Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		got = append(got, rec)
	}
	return got, r.Header()
}

func TestRoundTrip(t *testing.T) {
	for _, f := range []Format{FormatText, FormatBinary, FormatV2} {
		t.Run(f.String(), func(t *testing.T) {
			got, h := roundTrip(t, f)
			if h != testHeader() {
				t.Errorf("header = %+v, want %+v", h, testHeader())
			}
			want := testRecords()
			if len(got) != len(want) {
				t.Fatalf("read %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	var text, bin bytes.Buffer
	for _, tc := range []struct {
		f   Format
		buf *bytes.Buffer
	}{{FormatText, &text}, {FormatBinary, &bin}} {
		w, err := NewWriter(tc.buf, tc.f, testHeader())
		if err != nil {
			t.Fatal(err)
		}
		// Write repetitive records so interning pays off.
		for i := 0; i < 500; i++ {
			rec := &Record{Type: RecCall, Time: trace.Time(i) * 1000, Thread: 1,
				Kind: trace.KindPaint, Class: "javax.swing.JComponent", Method: "paintComponent"}
			if err := w.WriteRecord(rec); err != nil {
				t.Fatal(err)
			}
			if err := w.WriteRecord(&Record{Type: RecReturn, Time: trace.Time(i)*1000 + 500, Thread: 1}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WriteRecord(&Record{Type: RecEnd, Time: 10 << 20}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if bin.Len()*4 > text.Len() {
		t.Errorf("binary %d bytes vs text %d bytes; want at least 4x smaller", bin.Len(), text.Len())
	}
}

func TestRecordValidate(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
		ok   bool
	}{
		{"gc call", Record{Type: RecCall, Kind: trace.KindGC}, false},
		{"bad kind", Record{Type: RecCall, Kind: 77}, false},
		{"unnamed thread", Record{Type: RecThread, Thread: 3}, false},
		{"bad state", Record{Type: RecSample, State: 9}, false},
		{"bad type", Record{Type: 42}, false},
		{"good call", Record{Type: RecCall, Kind: trace.KindPaint, Class: "a", Method: "b"}, true},
		{"good end", Record{Type: RecEnd}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.rec.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestTextRejectsReservedSymbols(t *testing.T) {
	w, err := NewTextWriter(&bytes.Buffer{}, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	bad := []*Record{
		{Type: RecCall, Kind: trace.KindPaint, Class: "has space", Method: "m"},
		{Type: RecCall, Kind: trace.KindPaint, Class: "a", Method: "semi;colon"},
		{Type: RecSample, State: trace.StateRunnable, Stack: []trace.Frame{{Class: "a#b", Method: "m"}}},
	}
	for i, rec := range bad {
		if err := w.WriteRecord(rec); err == nil {
			t.Errorf("record %d with reserved characters was accepted", i)
		}
	}
}

func TestTextParserErrors(t *testing.T) {
	header := "#lila text 1\n#app \"X\"\n#session 0\n#gui 1\n#filter 0\n#sampleperiod 0\n#start 0\n"
	cases := []struct {
		name string
		body string
	}{
		{"unknown op", "Z 1 2\n"},
		{"short call", "C 100 1 paint\n"},
		{"bad kind", "C 100 1 warp a b\n"},
		{"bad time", "C abc 1 paint a b\n"},
		{"bad state", "S 100 1 zombie -\n"},
		{"bad frame", "S 100 1 runnable noseparator\n"},
		{"empty frame class", "S 100 1 runnable #m\n"},
		{"bad thread quote", "T 1 unquoted 0\n"},
		{"short end", "E 100\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewTextReader(strings.NewReader(header + tc.body))
			if err != nil {
				t.Fatalf("header rejected: %v", err)
			}
			if _, err := r.Read(); err == nil {
				t.Error("malformed record accepted")
			}
		})
	}
}

func TestTextHeaderErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"wrong magic", "#nope text 1\n"},
		{"binary claimed", "#lila binary 1\n"},
		{"bad version", "#lila text 9\n"},
		{"missing fields", "#lila text 1\n#app \"X\"\n"},
		{"bad session", "#lila text 1\n#app \"X\"\n#session x\n#gui 1\n#filter 0\n#sampleperiod 0\n#start 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTextReader(strings.NewReader(tc.in)); err == nil {
				t.Error("malformed header accepted")
			}
		})
	}
}

func TestTruncatedTraces(t *testing.T) {
	for _, f := range []Format{FormatText, FormatBinary} {
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			w, err := NewWriter(&buf, f, testHeader())
			if err != nil {
				t.Fatal(err)
			}
			if err := w.WriteRecord(&Record{Type: RecCall, Time: 5, Thread: 1, Kind: trace.KindDispatch}); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			// No RecEnd was written: the reader must report truncation.
			r, err := NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var readErr error
			for readErr == nil {
				_, readErr = r.Read()
			}
			if readErr == io.EOF || !strings.Contains(readErr.Error(), "truncated") {
				t.Errorf("truncated trace error = %v, want truncation report", readErr)
			}
		})
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := NewBinaryReader(bytes.NewReader([]byte("NOPE\x01rest"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewBinaryReader(bytes.NewReader([]byte("LI"))); err == nil {
		t.Error("short magic accepted")
	}
}

func TestBinaryBadStringRef(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewBinaryWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a call record with a dangling string reference.
	raw := append(buf.Bytes(), byte(RecCall))
	raw = append(raw, 0x02 /* dt=1 */, 0x02 /* tid=1 */, byte(trace.KindPaint), 0x09 /* ref 9: dangling */)
	r, err := NewBinaryReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || !strings.Contains(err.Error(), "string ref") {
		t.Errorf("dangling ref error = %v", err)
	}
}

func TestReaderSniffsFormat(t *testing.T) {
	for _, f := range []Format{FormatText, FormatBinary, FormatV2} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, f, testHeader())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(&Record{Type: RecEnd, Time: 1}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf) // plain io.Reader, no Seek/Peek
		if err != nil {
			t.Fatalf("%v: NewReader: %v", f, err)
		}
		if r.Header().App != "Test App" {
			t.Errorf("%v: sniffed header app = %q", f, r.Header().App)
		}
	}
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("text"); err != nil || f != FormatText {
		t.Errorf("ParseFormat(text) = %v, %v", f, err)
	}
	if f, err := ParseFormat("binary"); err != nil || f != FormatBinary {
		t.Errorf("ParseFormat(binary) = %v, %v", f, err)
	}
	if f, err := ParseFormat("v2"); err != nil || f != FormatV2 {
		t.Errorf("ParseFormat(v2) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat(xml) accepted")
	}
	if got := Format(9).String(); got != "format(9)" {
		t.Errorf("Format(9).String() = %q", got)
	}
}

func TestWriteAfterClose(t *testing.T) {
	for _, f := range []Format{FormatText, FormatBinary, FormatV2} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, f, testHeader())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(&Record{Type: RecEnd}); err == nil {
			t.Errorf("%v: write after close accepted", f)
		}
		if err := w.Close(); err != nil {
			t.Errorf("%v: double close: %v", f, err)
		}
	}
}

func TestFlattenOrdersNestedBoundaries(t *testing.T) {
	// Child ends exactly when the next child starts, and when the
	// parent ends; flatten must order returns before calls and deeper
	// returns first so a stack-based rebuilder never underflows.
	root := trace.NewInterval(trace.KindDispatch, "", "", 0, trace.Ms(100))
	a := root.AddChild(trace.NewInterval(trace.KindListener, "x.A", "run", 0, trace.Ms(50)))
	a.AddChild(trace.NewInterval(trace.KindPaint, "x.P", "paint", trace.Time(trace.Ms(20)), trace.Ms(30)))
	root.AddChild(trace.NewInterval(trace.KindPaint, "x.Q", "paint", trace.Time(trace.Ms(50)), trace.Ms(50)))

	s := &trace.Session{
		App: "t", GUIThread: 1, Start: 0, End: trace.Time(trace.Ms(100)),
		Threads:  []trace.ThreadInfo{{ID: 1, Name: "edt"}},
		Episodes: []*trace.Episode{{Index: 0, Thread: 1, Root: root}},
	}
	recs := Flatten(s)

	depth := 0
	for _, rec := range recs {
		switch rec.Type {
		case RecCall:
			depth++
		case RecReturn:
			depth--
			if depth < 0 {
				t.Fatal("stack underflow in flattened stream")
			}
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced stream: depth %d at end", depth)
	}
	if recs[len(recs)-1].Type != RecEnd {
		t.Error("stream does not end with RecEnd")
	}

	// At t=50ms: P returns (deepest), A returns, then Q is called.
	var at50 []RecType
	for _, rec := range recs {
		if rec.Time == trace.Time(trace.Ms(50)) {
			at50 = append(at50, rec.Type)
		}
	}
	want := []RecType{RecReturn, RecReturn, RecCall}
	if !reflect.DeepEqual(at50, want) {
		t.Errorf("events at 50ms = %v, want %v", at50, want)
	}
}

func TestFlattenSkipsEmbeddedGC(t *testing.T) {
	root := trace.NewInterval(trace.KindDispatch, "", "", 0, trace.Ms(100))
	root.AddChild(trace.NewGC(trace.Time(trace.Ms(10)), trace.Ms(20), true))
	gc := trace.NewGC(trace.Time(trace.Ms(10)), trace.Ms(20), true)
	s := &trace.Session{
		App: "t", GUIThread: 1, Start: 0, End: trace.Time(trace.Ms(100)),
		Episodes: []*trace.Episode{{Index: 0, Thread: 1, Root: root}},
		GCs:      []*trace.Interval{gc},
	}
	recs := Flatten(s)
	var starts, calls int
	for _, rec := range recs {
		switch rec.Type {
		case RecGCStart:
			starts++
			if !rec.Major {
				t.Error("GC major flag lost")
			}
		case RecCall:
			calls++
		}
	}
	if starts != 1 {
		t.Errorf("flatten emitted %d gcstart records, want 1 (embedded copy must be skipped)", starts)
	}
	if calls != 1 {
		t.Errorf("flatten emitted %d calls, want 1 (the dispatch)", calls)
	}
}
