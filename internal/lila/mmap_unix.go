//go:build unix

package lila

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile maps f read-only into memory. The returned unmap must be
// called exactly once when the data is no longer referenced. A zero-
// length file maps to an empty slice with a no-op unmap (mmap rejects
// zero-length mappings).
func mapFile(f *os.File) (data []byte, unmap func() error, err error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size > math.MaxInt32 && intSize == 32 || size < 0 {
		return nil, nil, fmt.Errorf("trace too large to map (%d bytes)", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}

const intSize = 32 << (^uint(0) >> 63)
