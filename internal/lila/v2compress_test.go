package lila

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"lagalyzer/internal/trace"
)

// writeV2C encodes recs at the given block granularity and compression.
func writeV2C(t *testing.T, recs []*Record, blockRecords int, c Compression) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewV2WriterOptions(&buf, testHeader(), V2WriterOptions{BlockRecords: blockRecords, Compression: c})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// v2LongRecords builds a stream long and repetitive enough that every
// reasonably sized block deflates well below its raw payload size.
func v2LongRecords(pairs int) []*Record {
	recs := []*Record{
		{Type: RecThread, Thread: 1, Name: "AWT-EventQueue-0"},
		{Type: RecThread, Thread: 2, Name: "Worker", Daemon: true},
	}
	t := trace.Time(1000)
	for i := 0; i < pairs; i++ {
		id := trace.ThreadID(1 + i/(pairs/2+1)) // first half GUI, second half worker
		cls := fmt.Sprintf("app.Widget%d", i%3)
		recs = append(recs,
			&Record{Type: RecCall, Time: t, Thread: id, Kind: trace.KindListener, Class: cls, Method: "actionPerformed"},
			&Record{Type: RecSample, Time: t + 1, Thread: id, State: trace.StateRunnable,
				Stack: []trace.Frame{{Class: cls, Method: "actionPerformed"}, {Class: "java.awt.EventQueue", Method: "dispatchEvent"}}},
			&Record{Type: RecReturn, Time: t + 2, Thread: id})
		t += 10
	}
	recs = append(recs, &Record{Type: RecEnd, Time: t + 100, Count: 9})
	return recs
}

// TestV2CompressedRoundTrip pins that flate-compressed traces decode
// byte-identically to their record stream on both the random-access and
// streaming paths, across block granularities (including single-record
// blocks, where flate loses and the writer keeps blocks raw).
func TestV2CompressedRoundTrip(t *testing.T) {
	want := v2TestRecords()
	for _, blockRecords := range []int{1, 4, 7, 64, 1 << 20} {
		data := writeV2C(t, want, blockRecords, CompressionFlate)

		v, err := ParseV2(data, Limits{})
		if err != nil {
			t.Fatalf("blockRecords=%d: ParseV2: %v", blockRecords, err)
		}
		got, rep, err := v.Records(nil, false)
		if err != nil {
			t.Fatalf("blockRecords=%d: Records: %v", blockRecords, err)
		}
		if rep != nil {
			t.Fatalf("blockRecords=%d: strict decode produced a salvage report", blockRecords)
		}
		recordsEqual(t, got, want, fmt.Sprintf("compressed random access (blockRecords=%d)", blockRecords))

		// Streaming path re-frames from the self-describing headers.
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("blockRecords=%d: NewReader: %v", blockRecords, err)
		}
		recordsEqual(t, drainReader(t, r), want, fmt.Sprintf("compressed streaming (blockRecords=%d)", blockRecords))

		// Large blocks must actually end up compressed and smaller.
		if blockRecords >= 64 {
			anyCompressed := false
			for _, b := range v.Blocks() {
				if b.Compressed() {
					anyCompressed = true
				}
			}
			if !anyCompressed {
				t.Errorf("blockRecords=%d: no block came out compressed", blockRecords)
			}
			raw := writeV2(t, want, blockRecords)
			if len(data) >= len(raw) {
				t.Errorf("blockRecords=%d: compressed file %d bytes >= raw %d", blockRecords, len(data), len(raw))
			}
		}
	}
}

// TestV2CompressionRatio is the acceptance-criterion check: on a long
// repetitive trace at the default block size, flate must at least halve
// the file.
func TestV2CompressionRatio(t *testing.T) {
	recs := v2LongRecords(4000)
	raw := writeV2C(t, recs, 0, CompressionNone)
	comp := writeV2C(t, recs, 0, CompressionFlate)
	if len(comp)*2 > len(raw) {
		t.Errorf("compression ratio %.2fx < 2x (raw %d, compressed %d bytes)",
			float64(len(raw))/float64(len(comp)), len(raw), len(comp))
	}
	// Compression must not perturb the records.
	v, err := ParseV2(comp, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Records(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, got, recs, "ratio corpus")
}

// TestV2UncompressedOptionByteIdentical pins that CompressionNone (and
// the zero options) writes exactly the v2.0 byte stream — goldens and
// the deterministic selftrace encoding depend on it.
func TestV2UncompressedOptionByteIdentical(t *testing.T) {
	recs := v2TestRecords()
	a := writeV2(t, recs, 8)
	b := writeV2C(t, recs, 8, CompressionNone)
	if !bytes.Equal(a, b) {
		t.Fatal("CompressionNone output differs from the v2.0 writer")
	}
}

// TestV2CompressedSalvage corrupts one compressed block and checks the
// loss is exactly that block: itemized counts, no resync, and correct
// absolute times after the gap — the CRC is over the stored bytes, so
// damage is rejected before any inflation is attempted.
func TestV2CompressedSalvage(t *testing.T) {
	all := v2LongRecords(200)
	const blockRecords = 64
	data := writeV2C(t, all, blockRecords, CompressionFlate)
	v, err := ParseV2(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a middle block and require it to really be compressed, so
	// the corruption lands on a deflate payload.
	target := len(v.Blocks()) / 2
	info := v.Blocks()[target]
	if !info.Compressed() {
		t.Fatalf("block %d not compressed; corpus too small for the test", target)
	}
	bad := bytes.Clone(data)
	bad[info.Offset+info.Length/2] ^= 0x40

	vb, err := ParseV2(bad, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := vb.Records(nil, true)
	if err != nil {
		t.Fatalf("salvage Records: %v", err)
	}
	if rep == nil || !rep.Damaged() {
		t.Fatal("salvage of a corrupt compressed block reported no damage")
	}
	if rep.RecordsDropped != info.Records {
		t.Errorf("dropped %d records, want exactly the block's %d", rep.RecordsDropped, info.Records)
	}
	if rep.BytesSkipped != info.Length {
		t.Errorf("skipped %d bytes, want the block's %d", rep.BytesSkipped, info.Length)
	}
	want := append(append([]*Record{}, all[:target*blockRecords]...), all[(target+1)*blockRecords:]...)
	recordsEqual(t, got, want, "compressed salvage")

	// The streaming salvage reader must agree record for record.
	r, err := NewReaderOptions(bytes.NewReader(bad), ReaderOptions{Salvage: true})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*Record
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		streamed = append(streamed, rec)
	}
	recordsEqual(t, streamed, want, "compressed streaming salvage")
	srep := SalvageOf(r)
	if srep == nil || srep.RecordsDropped != info.Records {
		t.Errorf("streaming salvage report = %+v, want %d dropped", srep, info.Records)
	}
}

// TestV2CompressedIndexSalvageScan destroys the footer of a compressed
// file: strict decode must refuse, while the salvage scan re-frames
// every block — including deflate blocks via the count==0 escape in the
// self-describing headers.
func TestV2CompressedIndexSalvageScan(t *testing.T) {
	all := v2LongRecords(200)
	data := writeV2C(t, all, 64, CompressionFlate)
	bad := bytes.Clone(data)
	bad[len(bad)-1] ^= 0xff // trailer CRC

	v, err := ParseV2(bad, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Records(nil, false); err == nil {
		t.Error("strict decode accepted a damaged index")
	}
	got, rep, err := v.Records(nil, true)
	if err != nil {
		t.Fatalf("salvage Records: %v", err)
	}
	recordsEqual(t, got, all, "compressed index-damage salvage")
	if rep.FirstError == "" {
		t.Error("index damage not noted in report")
	}
}

// TestV2CompressedSelectiveDecodeEquivalence re-pins the selective
// decode contract over the compressed encoding, sequentially and with
// intra-file workers: block skipping via the index must yield exactly
// what the same filter keeps over the full v1 stream.
func TestV2CompressedSelectiveDecodeEquivalence(t *testing.T) {
	all := v2TestRecords()
	filters := []*RecordFilter{
		{Threads: []trace.ThreadID{1}},
		{Threads: []trace.ThreadID{2}},
		{MinTime: 1100, MaxTime: 1300},
		{Threads: []trace.ThreadID{1}, MinTime: 1050, MaxTime: 1200},
	}
	data := writeV2C(t, all, 8, CompressionFlate)
	v, err := ParseV2(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	w, err := NewWriter(&v1, FormatBinary, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range all {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range filters {
		br, err := NewReader(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		want := drainReader(t, NewFilteredReader(br, f))
		for _, jobs := range []int{1, 4} {
			got, _, err := v.RecordsJobs(f, false, jobs)
			if err != nil {
				t.Fatalf("filter %d jobs %d: %v", i, jobs, err)
			}
			recordsEqual(t, got, want, fmt.Sprintf("compressed filter %d jobs %d", i, jobs))
		}
	}
}

// TestV2ParallelDecodeDeterminism is the worker-count pin of the
// acceptance criteria: records, salvage reports, and strict errors must
// be byte-identical at jobs 1, 2, and 8, for raw and compressed files,
// clean and damaged, filtered and not.
func TestV2ParallelDecodeDeterminism(t *testing.T) {
	all := v2TestRecords()
	filters := []*RecordFilter{
		nil,
		{Threads: []trace.ThreadID{1}},
		{MinTime: 1100, MaxTime: 1300},
		{Threads: []trace.ThreadID{2}, MinTime: 1050, MaxTime: 1400},
	}
	for _, comp := range []Compression{CompressionNone, CompressionFlate} {
		data := writeV2C(t, all, 8, comp)
		bad := bytes.Clone(data)
		v, err := ParseV2(data, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		mid := v.Blocks()[len(v.Blocks())/2]
		bad[mid.Offset+mid.Length/2] ^= 0x40

		for name, input := range map[string][]byte{"clean": data, "damaged": bad} {
			vf, err := ParseV2(input, Limits{})
			if err != nil {
				t.Fatal(err)
			}
			for fi, f := range filters {
				for _, salvage := range []bool{false, true} {
					label := fmt.Sprintf("%v/%s/filter%d/salvage=%v", comp, name, fi, salvage)
					wantRecs, wantRep, wantErr := vf.RecordsJobs(f, salvage, 1)
					for _, jobs := range []int{2, 8} {
						gotRecs, gotRep, gotErr := vf.RecordsJobs(f, salvage, jobs)
						if (gotErr == nil) != (wantErr == nil) ||
							(gotErr != nil && gotErr.Error() != wantErr.Error()) {
							t.Errorf("%s jobs=%d: err %v, want %v", label, jobs, gotErr, wantErr)
							continue
						}
						if !reflect.DeepEqual(gotRecs, wantRecs) {
							t.Errorf("%s jobs=%d: records diverge from sequential", label, jobs)
						}
						if !reflect.DeepEqual(gotRep, wantRep) {
							t.Errorf("%s jobs=%d: report %+v, want %+v", label, jobs, gotRep, wantRep)
						}
					}
				}
			}
		}
	}
}

// TestV2ThreadSkipWithOpenCall pins the filter-conservatism fix: a
// thread-bitmap miss is sound even while a kept call is open, so
// worker-only blocks under an open GUI dispatch are skipped (previously
// any open call forced every block to decode). A corrupt worker-only
// block inside the open call proves the skip really happens, at every
// worker count.
func TestV2ThreadSkipWithOpenCall(t *testing.T) {
	recs := []*Record{
		{Type: RecThread, Thread: 1, Name: "AWT-EventQueue-0"},
		{Type: RecThread, Thread: 2, Name: "Worker", Daemon: true},
		{Type: RecCall, Time: 100, Thread: 1, Kind: trace.KindDispatch},
	}
	tm := trace.Time(110)
	for i := 0; i < 40; i++ {
		recs = append(recs,
			&Record{Type: RecCall, Time: tm, Thread: 2, Kind: trace.KindListener, Class: "app.Worker", Method: "run"},
			&Record{Type: RecSample, Time: tm + 1, Thread: 2, State: trace.StateRunnable,
				Stack: []trace.Frame{{Class: "app.Worker", Method: "run"}}},
			&Record{Type: RecReturn, Time: tm + 2, Thread: 2})
		tm += 10
	}
	recs = append(recs,
		&Record{Type: RecReturn, Time: tm, Thread: 1},
		&Record{Type: RecEnd, Time: tm + 10, Count: 2})

	for _, comp := range []Compression{CompressionNone, CompressionFlate} {
		data := writeV2C(t, recs, 8, comp)
		v, err := ParseV2(data, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		target := -1
		for i, b := range v.Blocks() {
			if !b.HasGlobal() && b.MayContainThread(2) && !b.MayContainThread(1) {
				target = i
				break
			}
		}
		if target < 0 {
			t.Fatal("no worker-only block in corpus; adjust the test stream")
		}
		bad := bytes.Clone(data)
		b := v.Blocks()[target]
		bad[b.Offset+b.Length-1] ^= 0xff

		vb, err := ParseV2(bad, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := vb.Records(nil, false); err == nil {
			t.Fatalf("%v: strict full decode of corrupt block succeeded", comp)
		}
		f := &RecordFilter{Threads: []trace.ThreadID{1}}
		var want []*Record
		st := newFilterState(f)
		for _, rec := range recs {
			if st.keep(rec) {
				want = append(want, rec)
			}
		}
		for _, jobs := range []int{1, 4} {
			got, _, err := vb.RecordsJobs(f, false, jobs)
			if err != nil {
				t.Fatalf("%v jobs=%d: GUI-filtered decode touched the corrupt worker block under an open call: %v", comp, jobs, err)
			}
			recordsEqual(t, got, want, fmt.Sprintf("%v jobs=%d open-call skip", comp, jobs))
		}
	}
}

// TestV2SelectiveDecodeInflatesOnlyTouchedBlocks checks the
// skip-effectiveness metrics: a filtered decode of a compressed file
// must inflate strictly fewer blocks than a full decode, and account
// for the skipped remainder.
func TestV2SelectiveDecodeInflatesOnlyTouchedBlocks(t *testing.T) {
	all := v2LongRecords(400)
	data := writeV2C(t, all, 64, CompressionFlate)
	v, err := ParseV2(data, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	compressed := 0
	for _, b := range v.Blocks() {
		if b.Compressed() {
			compressed++
		}
	}
	if compressed < 3 {
		t.Fatalf("only %d compressed blocks; corpus too small", compressed)
	}

	before := mBlocksInflated.Value()
	if _, _, err := v.Records(nil, false); err != nil {
		t.Fatal(err)
	}
	full := mBlocksInflated.Value() - before
	if full != int64(compressed) {
		t.Errorf("full decode inflated %d blocks, want all %d compressed", full, compressed)
	}

	beforeInf, beforeSkip := mBlocksInflated.Value(), mBlocksSkipped.Value()
	// Threads in v2LongRecords split the stream in half: the worker
	// filter must leave the GUI half's blocks uninflated.
	if _, _, err := v.Records(&RecordFilter{Threads: []trace.ThreadID{2}}, false); err != nil {
		t.Fatal(err)
	}
	partial := mBlocksInflated.Value() - beforeInf
	skipped := mBlocksSkipped.Value() - beforeSkip
	if partial >= full {
		t.Errorf("filtered decode inflated %d blocks, not fewer than the full decode's %d", partial, full)
	}
	if skipped == 0 {
		t.Error("filtered decode skipped no blocks")
	}
}
