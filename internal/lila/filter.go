package lila

import (
	"lagalyzer/internal/trace"
)

// RecordFilter selects a subset of a trace's record stream for
// analyses that do not need everything — episode building needs only
// the GUI thread's calls, a zoomed-in view needs only one time window.
// Filter semantics are defined at the record level and are therefore
// format-independent: a v2 reader merely *accelerates* the same
// selection by skipping whole blocks whose index entry cannot match.
//
// The selection always keeps the stream well formed:
//
//   - Global records (thread declarations, GC brackets, the end
//     record) are always kept; they apply to every thread and cost
//     little.
//   - A call is kept when its thread is selected and its start time is
//     inside the window; the matching return is kept exactly when the
//     call was (tracked per thread), so no reader downstream ever sees
//     an unbalanced call/return stream.
//   - A sample is kept when its thread is selected and its time stamp
//     is inside the window.
type RecordFilter struct {
	// Threads restricts thread-attributed records to these threads;
	// nil selects every thread.
	Threads []trace.ThreadID
	// MinTime and MaxTime bound the selected window. MaxTime 0 means
	// unbounded above (trace times are non-negative in practice; a
	// window genuinely ending at 0 selects nothing timed, as written).
	MinTime, MaxTime trace.Time
}

// All reports whether the filter selects every record (nil or zero).
func (f *RecordFilter) All() bool {
	return f == nil || (len(f.Threads) == 0 && f.MinTime == 0 && f.MaxTime == 0)
}

// filterState is the stateful evaluator of a RecordFilter over one
// record stream. Not safe for concurrent use; each reader owns one.
type filterState struct {
	f       *RecordFilter
	threads map[trace.ThreadID]bool // nil = all threads
	depth   map[trace.ThreadID]int  // open kept calls per thread
}

func newFilterState(f *RecordFilter) *filterState {
	s := &filterState{f: f, depth: make(map[trace.ThreadID]int)}
	if len(f.Threads) > 0 {
		s.threads = make(map[trace.ThreadID]bool, len(f.Threads))
		for _, id := range f.Threads {
			s.threads[id] = true
		}
	}
	return s
}

func (s *filterState) inWindow(t trace.Time) bool {
	if t < s.f.MinTime {
		return false
	}
	return s.f.MaxTime == 0 || t <= s.f.MaxTime
}

func (s *filterState) threadSelected(id trace.ThreadID) bool {
	return s.threads == nil || s.threads[id]
}

// keep decides whether rec survives the selection. It must see every
// record of the stream, in order, to balance calls and returns.
func (s *filterState) keep(rec *Record) bool {
	switch rec.Type {
	case RecThread, RecGCStart, RecGCEnd, RecEnd:
		return true
	case RecCall:
		if s.threadSelected(rec.Thread) && s.inWindow(rec.Time) {
			s.depth[rec.Thread]++
			return true
		}
		return false
	case RecReturn:
		// Kept exactly when its call was: a return closing a call that
		// fell outside the selection is dropped with it.
		if s.depth[rec.Thread] > 0 {
			s.depth[rec.Thread]--
			return true
		}
		return false
	case RecSample:
		return s.threadSelected(rec.Thread) && s.inWindow(rec.Time)
	}
	return true
}

// blockThreadHit reports whether the block's thread bitmap intersects
// the selected threads (vacuously true without a thread restriction;
// the bitmap has false positives but never false negatives).
func (s *filterState) blockThreadHit(b *V2BlockInfo) bool {
	if s.threads == nil {
		return true
	}
	for id := range s.threads {
		if b.threadBits&threadBit(id) != 0 {
			return true
		}
	}
	return false
}

// blockTimeExcluded reports whether every timed record of the block
// falls outside the filter window.
func (s *filterState) blockTimeExcluded(b *V2BlockInfo) bool {
	if s.f.MaxTime != 0 && b.MinTime > s.f.MaxTime {
		return true
	}
	return b.MaxTime < s.f.MinTime
}

// blockMayMatch is the v2 index-level pre-test: false only when no
// record of the block can survive the filter, so skipping the block is
// sound. Global blocks always decode (they carry records every
// selection keeps). A thread-bitmap miss is sound even while a kept
// call is open: the writer sets a thread's bit for its returns as well
// as its calls, so a missed block can hold neither a selected thread's
// call nor the return that closes one — and only selected threads ever
// have open depth. An open call therefore only forces decoding of
// blocks the *window* test would exclude, where the call's return (in
// a later, out-of-window block) may hide.
func (s *filterState) blockMayMatch(b *V2BlockInfo) bool {
	if b.flags&v2FlagGlobal != 0 {
		return true
	}
	if !s.blockThreadHit(b) {
		return false
	}
	for _, d := range s.depth {
		if d > 0 {
			return true
		}
	}
	return !s.blockTimeExcluded(b)
}

// NewFilteredReader wraps r so that Read yields only records selected
// by f, preserving the Reader contract (io.EOF after the end record).
// It is how v1 readers honor the same selection a v2 reader serves
// from its block index.
func NewFilteredReader(r Reader, f *RecordFilter) Reader {
	if f.All() {
		return r
	}
	return &filteredReader{r: r, state: newFilterState(f)}
}

type filteredReader struct {
	r     Reader
	state *filterState
}

func (fr *filteredReader) Header() Header { return fr.r.Header() }

func (fr *filteredReader) Read() (*Record, error) {
	for {
		rec, err := fr.r.Read()
		if err != nil {
			return nil, err
		}
		if fr.state.keep(rec) {
			return rec, nil
		}
	}
}

// Salvage implements SalvageReporter by delegation, so damage
// accounting survives filtering.
func (fr *filteredReader) Salvage() *SalvageReport { return SalvageOf(fr.r) }
