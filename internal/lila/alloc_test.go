package lila

import (
	"bytes"
	"io"
	"testing"

	"lagalyzer/internal/trace"
)

// allocTestTrace builds a binary trace whose symbols and stacks repeat
// heavily, the shape real profiler output has (the same few painted
// classes and idle stacks, tens of thousands of times).
func allocTestTrace(t *testing.T, calls int) []byte {
	t.Helper()
	var buf bytes.Buffer
	h := Header{App: "AllocLean", SessionID: 1, GUIThread: 1,
		FilterThreshold: trace.Ms(3), SamplePeriod: trace.Ms(10)}
	bw, err := NewBinaryWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	write := func(r *Record) {
		t.Helper()
		if err := bw.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	write(&Record{Type: RecThread, Thread: 1, Name: "AWT-EventQueue-0"})
	classes := []string{"com.example.View", "com.example.Model", "javax.swing.JComponent", "java.util.HashMap"}
	stacks := [][]trace.Frame{
		{{Class: "com.example.View", Method: "paint"}, {Class: "java.awt.EventQueue", Method: "dispatchEvent"}},
		{{Class: "java.lang.Object", Method: "wait", Native: true}, {Class: "java.awt.EventQueue", Method: "getNextEvent"}},
	}
	now := trace.Time(0)
	for i := 0; i < calls; i++ {
		write(&Record{Type: RecCall, Time: now, Thread: 1, Kind: trace.KindDispatch,
			Class: classes[i%len(classes)], Method: "run"})
		now += trace.Time(trace.Ms(1))
		write(&Record{Type: RecSample, Time: now, Thread: 1,
			State: trace.StateRunnable, Stack: stacks[i%len(stacks)]})
		now += trace.Time(trace.Ms(1))
		write(&Record{Type: RecReturn, Time: now, Thread: 1})
	}
	write(&Record{Type: RecEnd, Time: now})
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeAll(t *testing.T, data []byte) int {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
}

// TestBinaryDecodeAllocationLean pins the decode path's allocation
// budget: with the record arena, the pooled read scratch, the string
// interner, and the stack-dedup table in place, decoding a
// symbol-repetitive trace must cost far less than one heap allocation
// per record. A regression to per-record allocation trips this
// immediately (the historical decoder paid 1 Record + 1 stack slice
// per record).
func TestBinaryDecodeAllocationLean(t *testing.T) {
	const calls = 2000
	data := allocTestTrace(t, calls)

	// Warm the process-wide interner so the measured runs exercise the
	// steady state (hits, not first-sight inserts).
	records := decodeAll(t, data)
	if want := 3*calls + 2; records != want {
		t.Fatalf("decoded %d records, want %d", records, want)
	}

	allocs := testing.AllocsPerRun(5, func() {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			panic(err)
		}
		for {
			if _, err := r.Read(); err != nil {
				if err == io.EOF {
					return
				}
				panic(err)
			}
		}
	})
	// Budget: reader setup, arena chunks (one per 1024 records), the
	// dedup table — all amortized. One-per-record anything blows this.
	if max := float64(records) / 10; allocs > max {
		t.Errorf("decode of %d records allocated %v times, want <= %v", records, allocs, max)
	}
}

// TestSampleStackDedup: identical sampled stacks within one session
// must decode onto one shared []Frame, not per-record copies.
func TestSampleStackDedup(t *testing.T) {
	data := allocTestTrace(t, 10)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	byLeaf := make(map[string][]*Record)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Type == RecSample && len(rec.Stack) > 0 {
			leaf := rec.Stack[0].Class + "#" + rec.Stack[0].Method
			byLeaf[leaf] = append(byLeaf[leaf], rec)
		}
	}
	if len(byLeaf) != 2 {
		t.Fatalf("distinct sampled stacks = %d, want 2", len(byLeaf))
	}
	for leaf, recs := range byLeaf {
		if len(recs) < 2 {
			t.Fatalf("stack %s sampled %d times, want >= 2", leaf, len(recs))
		}
		first := recs[0].Stack
		for _, rec := range recs[1:] {
			if &rec.Stack[0] != &first[0] {
				t.Errorf("stack %s decoded onto distinct backing arrays", leaf)
			}
		}
	}
}
