package lila

import (
	"fmt"
	"io"
	"sort"

	"lagalyzer/internal/trace"
)

// Flatten converts an in-memory session back into the record stream a
// profiler would have emitted: thread declarations, then calls,
// returns, GC brackets, and samples in time order, terminated by the
// end record. It is the inverse of treebuild and the basis for
// serializing simulated sessions.
//
// GC intervals embedded in episode trees are per-thread *copies* of
// the global collections (Section II-A of the paper); Flatten skips
// them and emits the global brackets from Session.GCs instead, so the
// round trip through treebuild reconstructs the copies.
func Flatten(s *trace.Session) []*Record {
	var recs []*Record
	for _, t := range s.Threads {
		recs = append(recs, &Record{Type: RecThread, Thread: t.ID, Name: t.Name, Daemon: t.Daemon})
	}

	// Ordered stream events: collect, then sort with tie-breaking
	// rules that preserve proper nesting at equal time stamps:
	// returns close before anything opens (deepest first), samples in
	// between, calls open after (shallowest first), and GC brackets
	// sit innermost (end first, start last).
	type event struct {
		rec   *Record
		prio  int // see ordering above
		depth int
		seq   int
	}
	var events []event
	seq := 0
	add := func(rec *Record, prio, depth int) {
		events = append(events, event{rec, prio, depth, seq})
		seq++
	}

	const (
		prioGCEnd = iota
		prioReturn
		prioSample
		prioCall
		prioGCStart
	)

	for _, e := range s.Episodes {
		e.Root.Walk(func(n *trace.Interval, depth int) bool {
			if n.Kind == trace.KindGC {
				return false // global brackets come from s.GCs
			}
			add(&Record{Type: RecCall, Time: n.Start, Thread: e.Thread, Kind: n.Kind, Class: n.Class, Method: n.Method}, prioCall, depth)
			add(&Record{Type: RecReturn, Time: n.End, Thread: e.Thread}, prioReturn, depth)
			return true
		})
	}
	for _, gc := range s.GCs {
		add(&Record{Type: RecGCStart, Time: gc.Start, Major: gc.Major}, prioGCStart, 0)
		add(&Record{Type: RecGCEnd, Time: gc.End}, prioGCEnd, 0)
	}
	for _, tick := range s.Ticks {
		for _, th := range tick.Threads {
			add(&Record{Type: RecSample, Time: tick.Time, Thread: th.Thread, State: th.State, Stack: th.Stack}, prioSample, 0)
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.rec.Time != b.rec.Time {
			return a.rec.Time < b.rec.Time
		}
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		switch a.prio {
		case prioReturn:
			// Deeper intervals close first.
			if a.depth != b.depth {
				return a.depth > b.depth
			}
		case prioCall:
			// Shallower intervals open first.
			if a.depth != b.depth {
				return a.depth < b.depth
			}
		}
		return a.seq < b.seq
	})

	for _, ev := range events {
		recs = append(recs, ev.rec)
	}
	recs = append(recs, &Record{Type: RecEnd, Time: s.End, Count: s.ShortCount})
	return recs
}

// HeaderOf derives the trace header for a session.
func HeaderOf(s *trace.Session) Header {
	return Header{
		App:             s.App,
		SessionID:       s.ID,
		GUIThread:       s.GUIThread,
		FilterThreshold: s.FilterThreshold,
		SamplePeriod:    s.SamplePeriod,
		Start:           s.Start,
	}
}

// Format selects a trace encoding.
type Format int

const (
	// FormatText is the line-oriented, human-readable encoding.
	FormatText Format = iota
	// FormatBinary is the compact varint encoding.
	FormatBinary
)

// String returns "text" or "binary".
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// ParseFormat recognises "text" and "binary".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text":
		return FormatText, nil
	case "binary":
		return FormatBinary, nil
	}
	return 0, fmt.Errorf("lila: unknown format %q (want text or binary)", s)
}

// NewWriter returns a Writer for the chosen format, with the header
// already emitted.
func NewWriter(w io.Writer, f Format, h Header) (Writer, error) {
	switch f {
	case FormatText:
		return NewTextWriter(w, h)
	case FormatBinary:
		return NewBinaryWriter(w, h)
	default:
		return nil, fmt.Errorf("lila: unknown format %d", f)
	}
}

// WriteSession flattens s and writes it to w in the chosen format.
func WriteSession(w io.Writer, f Format, s *trace.Session) error {
	lw, err := NewWriter(w, f, HeaderOf(s))
	if err != nil {
		return err
	}
	for _, rec := range Flatten(s) {
		if err := lw.WriteRecord(rec); err != nil {
			return err
		}
	}
	return lw.Close()
}

// NewReader sniffs the encoding of r (by its first bytes) and returns
// the matching Reader. The stream must support nothing beyond
// io.Reader; sniffing is done with a one-byte lookahead wrapper.
func NewReader(r io.Reader) (Reader, error) {
	br := &sniffReader{r: r}
	first, err := br.peek()
	if err != nil {
		return nil, fmt.Errorf("lila: sniffing trace format: %w", err)
	}
	if first == '#' {
		return NewTextReader(br)
	}
	return NewBinaryReader(br)
}

// sniffReader is an io.Reader with one byte of lookahead.
type sniffReader struct {
	r      io.Reader
	buf    [1]byte
	have   bool
	peeked byte
}

func (s *sniffReader) peek() (byte, error) {
	if s.have {
		return s.peeked, nil
	}
	if _, err := io.ReadFull(s.r, s.buf[:]); err != nil {
		return 0, err
	}
	s.have = true
	s.peeked = s.buf[0]
	return s.peeked, nil
}

func (s *sniffReader) Read(p []byte) (int, error) {
	if s.have {
		if len(p) == 0 {
			return 0, nil
		}
		p[0] = s.peeked
		s.have = false
		n, err := s.r.Read(p[1:])
		return n + 1, err
	}
	return s.r.Read(p)
}
