package lila

import (
	"fmt"
	"io"
	"sort"

	"lagalyzer/internal/trace"
)

// Flatten converts an in-memory session back into the record stream a
// profiler would have emitted: thread declarations, then calls,
// returns, GC brackets, and samples in time order, terminated by the
// end record. It is the inverse of treebuild and the basis for
// serializing simulated sessions.
//
// GC intervals embedded in episode trees are per-thread *copies* of
// the global collections (Section II-A of the paper); Flatten skips
// them and emits the global brackets from Session.GCs instead, so the
// round trip through treebuild reconstructs the copies.
func Flatten(s *trace.Session) []*Record {
	var recs []*Record
	for _, t := range s.Threads {
		recs = append(recs, &Record{Type: RecThread, Thread: t.ID, Name: t.Name, Daemon: t.Daemon})
	}

	// Ordered stream events: collect, then sort with tie-breaking
	// rules that preserve proper nesting at equal time stamps:
	// returns close before anything opens (deepest first), samples in
	// between, calls open after (shallowest first), and GC brackets
	// sit innermost (end first, start last).
	type event struct {
		rec   *Record
		prio  int // see ordering above
		depth int
		seq   int
	}
	var events []event
	seq := 0
	add := func(rec *Record, prio, depth int) {
		events = append(events, event{rec, prio, depth, seq})
		seq++
	}

	const (
		prioGCEnd = iota
		prioReturn
		prioSample
		prioCall
		prioGCStart
	)

	for _, e := range s.Episodes {
		e.Root.Walk(func(n *trace.Interval, depth int) bool {
			if n.Kind == trace.KindGC {
				return false // global brackets come from s.GCs
			}
			add(&Record{Type: RecCall, Time: n.Start, Thread: e.Thread, Kind: n.Kind, Class: n.Class, Method: n.Method}, prioCall, depth)
			add(&Record{Type: RecReturn, Time: n.End, Thread: e.Thread}, prioReturn, depth)
			return true
		})
	}
	for _, gc := range s.GCs {
		add(&Record{Type: RecGCStart, Time: gc.Start, Major: gc.Major}, prioGCStart, 0)
		add(&Record{Type: RecGCEnd, Time: gc.End}, prioGCEnd, 0)
	}
	for _, tick := range s.Ticks {
		for _, th := range tick.Threads {
			add(&Record{Type: RecSample, Time: tick.Time, Thread: th.Thread, State: th.State, Stack: th.Stack}, prioSample, 0)
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.rec.Time != b.rec.Time {
			return a.rec.Time < b.rec.Time
		}
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		switch a.prio {
		case prioReturn:
			// Deeper intervals close first.
			if a.depth != b.depth {
				return a.depth > b.depth
			}
		case prioCall:
			// Shallower intervals open first.
			if a.depth != b.depth {
				return a.depth < b.depth
			}
		}
		return a.seq < b.seq
	})

	for _, ev := range events {
		recs = append(recs, ev.rec)
	}
	recs = append(recs, &Record{Type: RecEnd, Time: s.End, Count: s.ShortCount})
	return recs
}

// HeaderOf derives the trace header for a session.
func HeaderOf(s *trace.Session) Header {
	return Header{
		App:             s.App,
		SessionID:       s.ID,
		GUIThread:       s.GUIThread,
		FilterThreshold: s.FilterThreshold,
		SamplePeriod:    s.SamplePeriod,
		Start:           s.Start,
	}
}

// Format selects a trace encoding.
type Format int

const (
	// FormatText is the line-oriented, human-readable encoding.
	FormatText Format = iota
	// FormatBinary is the compact v1 varint stream encoding.
	FormatBinary
	// FormatV2 is the block-indexed binary encoding: string and stack
	// tables up front, checksummed blocks with independent time bases,
	// and a footer index for mmap-style selective decode.
	FormatV2
)

// String returns "text", "binary", or "v2".
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	case FormatV2:
		return "v2"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// ParseFormat recognises "text", "binary", and "v2".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text":
		return FormatText, nil
	case "binary":
		return FormatBinary, nil
	case "v2":
		return FormatV2, nil
	}
	return 0, fmt.Errorf("lila: unknown format %q (want text, binary, or v2)", s)
}

// NewWriter returns a Writer for the chosen format, with the header
// already emitted.
func NewWriter(w io.Writer, f Format, h Header) (Writer, error) {
	return NewWriterOptions(w, h, WriteOptions{Format: f})
}

// WriteOptions select a trace encoding together with its tuning knobs.
type WriteOptions struct {
	// Format selects the encoding; the zero value is FormatText.
	Format Format
	// Compression selects the per-block codec. Only FormatV2 is
	// block-structured, so any other format rejects a non-zero value.
	Compression Compression
}

// NewWriterOptions is NewWriter with explicit encoding options.
func NewWriterOptions(w io.Writer, h Header, o WriteOptions) (Writer, error) {
	if o.Compression != CompressionNone && o.Format != FormatV2 {
		return nil, fmt.Errorf("lila: %s format does not support compression (only v2 is block-structured)", o.Format)
	}
	switch o.Format {
	case FormatText:
		return NewTextWriter(w, h)
	case FormatBinary:
		return NewBinaryWriter(w, h)
	case FormatV2:
		return NewV2WriterOptions(w, h, V2WriterOptions{Compression: o.Compression})
	default:
		return nil, fmt.Errorf("lila: unknown format %d", o.Format)
	}
}

// WriteSession flattens s and writes it to w in the chosen format.
func WriteSession(w io.Writer, f Format, s *trace.Session) error {
	return WriteSessionOptions(w, WriteOptions{Format: f}, s)
}

// WriteSessionOptions is WriteSession with explicit encoding options.
func WriteSessionOptions(w io.Writer, o WriteOptions, s *trace.Session) error {
	lw, err := NewWriterOptions(w, HeaderOf(s), o)
	if err != nil {
		return err
	}
	for _, rec := range Flatten(s) {
		if err := lw.WriteRecord(rec); err != nil {
			return err
		}
	}
	return lw.Close()
}

// NewReader sniffs the encoding of r (by its first bytes) and returns
// the matching Reader. The stream must support nothing beyond
// io.Reader; sniffing is done with a bounded-lookahead wrapper, and a
// recognised LiLa magic with a version this package does not speak
// reports ErrUnsupportedVersion rather than a garbled decode.
func NewReader(r io.Reader) (Reader, error) {
	return NewReaderOptions(r, ReaderOptions{})
}

// sniffReader is an io.Reader with a few bytes of lookahead: enough to
// read the 5-byte binary magic (4 magic bytes + version) and dispatch
// on it, replaying the peeked bytes to whichever reader wins.
type sniffReader struct {
	r   io.Reader
	buf [5]byte
	n   int // peeked bytes in buf
	pos int // replayed so far
}

// peek returns the first byte of the stream without consuming it.
func (s *sniffReader) peek() (byte, error) {
	b, err := s.peekN(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// peekN returns the first n (≤ len(buf)) bytes of the stream without
// consuming them. A short stream yields io.ErrUnexpectedEOF.
func (s *sniffReader) peekN(n int) ([]byte, error) {
	if s.pos > 0 {
		return nil, fmt.Errorf("lila: peek after read")
	}
	for s.n < n {
		m, err := s.r.Read(s.buf[s.n:n])
		s.n += m
		if err != nil {
			if err == io.EOF && s.n > 0 {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return s.buf[:n], nil
}

func (s *sniffReader) Read(p []byte) (int, error) {
	if s.pos < s.n {
		n := copy(p, s.buf[s.pos:s.n])
		s.pos += n
		return n, nil
	}
	return s.r.Read(p)
}
