//go:build !unix

package lila

import (
	"io"
	"os"
)

// mapFile on platforms without mmap support reads the whole file via
// the io.ReaderAt surface instead; unmap is a no-op. Selective decode
// still works — it just pays the full read up front.
func mapFile(f *os.File) (data []byte, unmap func() error, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	data, err = io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
