package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Dist is a one-dimensional probability distribution over float64.
// Distributions are immutable; all state lives in the caller's
// *rand.Rand, so concurrent simulations with separate generators are
// safe.
type Dist interface {
	// Sample draws one value.
	Sample(r *rand.Rand) float64
	// Mean returns the distribution's expected value (used for
	// calibration and documentation, not sampling).
	Mean() float64
}

// Const is the degenerate distribution that always returns V.
type Const struct{ V float64 }

// Sample implements Dist.
func (c Const) Sample(*rand.Rand) float64 { return c.V }

// Mean implements Dist.
func (c Const) Mean() float64 { return c.V }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exp is the exponential distribution with the given mean (1/rate).
// It models inter-arrival gaps such as user think time.
type Exp struct{ MeanV float64 }

// Sample implements Dist.
func (e Exp) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * e.MeanV }

// Mean implements Dist.
func (e Exp) Mean() float64 { return e.MeanV }

// LogNormal is the log-normal distribution parameterized by the median
// (exp(mu)) and sigma, the standard deviation of the underlying
// normal. Interactive episode durations are heavy-tailed, which
// log-normals capture well: most handlings are quick, a few are very
// slow.
type LogNormal struct {
	Median float64
	Sigma  float64
}

// Sample implements Dist.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return l.Median * math.Exp(r.NormFloat64()*l.Sigma)
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return l.Median * math.Exp(l.Sigma*l.Sigma/2) }

// Pareto is the Pareto (power-law) distribution with scale Xm (the
// minimum value) and shape Alpha. For Alpha ≤ 1 the mean diverges and
// Mean reports +Inf.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Dist.
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean implements Dist.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Clamped wraps a distribution and clamps its samples to [Lo, Hi].
// Simulators use it to keep heavy-tailed draws physical (an episode
// cannot be longer than the session).
type Clamped struct {
	D      Dist
	Lo, Hi float64
}

// Sample implements Dist.
func (c Clamped) Sample(r *rand.Rand) float64 {
	x := c.D.Sample(r)
	if x < c.Lo {
		return c.Lo
	}
	if x > c.Hi {
		return c.Hi
	}
	return x
}

// Mean implements Dist. The clamp is ignored; for the narrow clamps
// used in practice the error is negligible and Mean is documentation.
func (c Clamped) Mean() float64 { return c.D.Mean() }

// Scaled multiplies every sample of D by K.
type Scaled struct {
	D Dist
	K float64
}

// Sample implements Dist.
func (s Scaled) Sample(r *rand.Rand) float64 { return s.D.Sample(r) * s.K }

// Mean implements Dist.
func (s Scaled) Mean() float64 { return s.D.Mean() * s.K }

// Mixture draws from one of several component distributions with the
// given weights (not necessarily normalized). It models bimodal
// behaviour such as "usually fast, occasionally triggers a full
// revalidation".
type Mixture struct {
	Weights []float64
	Comps   []Dist
	total   float64
}

// NewMixture builds a mixture; it panics on mismatched or empty
// component lists since that is always a programming error in a
// profile definition.
func NewMixture(weights []float64, comps []Dist) *Mixture {
	if len(weights) != len(comps) || len(comps) == 0 {
		panic(fmt.Sprintf("stats: mixture with %d weights and %d components", len(weights), len(comps)))
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative mixture weight")
		}
		total += w
	}
	if total == 0 {
		panic("stats: mixture weights sum to zero")
	}
	return &Mixture{Weights: weights, Comps: comps, total: total}
}

// Sample implements Dist.
func (m *Mixture) Sample(r *rand.Rand) float64 {
	x := r.Float64() * m.total
	for i, w := range m.Weights {
		x -= w
		if x < 0 {
			return m.Comps[i].Sample(r)
		}
	}
	return m.Comps[len(m.Comps)-1].Sample(r)
}

// Mean implements Dist.
func (m *Mixture) Mean() float64 {
	var mean float64
	for i, w := range m.Weights {
		mean += w / m.total * m.Comps[i].Mean()
	}
	return mean
}

// IntDist is a distribution over non-negative integers, used for
// structural choices such as repetition counts of template nodes.
type IntDist interface {
	SampleInt(r *rand.Rand) int
	MeanInt() float64
}

// ConstInt always returns V.
type ConstInt struct{ V int }

// SampleInt implements IntDist.
func (c ConstInt) SampleInt(*rand.Rand) int { return c.V }

// MeanInt implements IntDist.
func (c ConstInt) MeanInt() float64 { return float64(c.V) }

// UniformInt returns integers uniformly in [Lo, Hi] inclusive.
type UniformInt struct{ Lo, Hi int }

// SampleInt implements IntDist.
func (u UniformInt) SampleInt(r *rand.Rand) int {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + int(r.IntN(u.Hi-u.Lo+1))
}

// MeanInt implements IntDist.
func (u UniformInt) MeanInt() float64 { return float64(u.Lo+u.Hi) / 2 }

// Geometric returns integers ≥ Lo where each increment continues with
// probability P (0 ≤ P < 1). It models recursive structures like
// nested component paints of varying depth.
type Geometric struct {
	Lo int
	P  float64
}

// SampleInt implements IntDist.
func (g Geometric) SampleInt(r *rand.Rand) int {
	n := g.Lo
	for r.Float64() < g.P {
		n++
	}
	return n
}

// MeanInt implements IntDist.
func (g Geometric) MeanInt() float64 {
	if g.P >= 1 {
		return math.Inf(1)
	}
	return float64(g.Lo) + g.P/(1-g.P)
}

// Pick returns an index in [0, len(weights)) with probability
// proportional to the weights. It panics on an empty or all-zero
// weight vector.
func Pick(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative pick weight")
		}
		total += w
	}
	if total == 0 {
		panic("stats: pick weights sum to zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Poisson draws from a Poisson distribution with the given mean. For
// large means it uses a normal approximation, which is ample for the
// simulator's use (closed-form counts of sub-3ms episodes, where the
// mean is in the tens of thousands).
func Poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	// Knuth's method for small means.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// NewRand returns a deterministic PCG generator seeded from two words.
// All simulator components derive their generators through this
// function so a (profile, session) pair always replays identically.
func NewRand(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}
