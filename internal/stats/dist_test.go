package stats

import (
	"math"
	"testing"
)

// sampleMean draws n samples and returns their mean.
func sampleMean(d Dist, n int) float64 {
	r := NewRand(1, 2)
	var t float64
	for i := 0; i < n; i++ {
		t += d.Sample(r)
	}
	return t / float64(n)
}

func TestConst(t *testing.T) {
	d := Const{42}
	if d.Mean() != 42 || d.Sample(NewRand(0, 0)) != 42 {
		t.Error("Const should always return its value")
	}
}

func TestDistSampleMeansMatchAnalyticMeans(t *testing.T) {
	cases := []struct {
		name string
		d    Dist
		tol  float64 // relative tolerance
	}{
		{"uniform", Uniform{10, 20}, 0.02},
		{"exp", Exp{5}, 0.05},
		{"lognormal", LogNormal{Median: 8, Sigma: 0.5}, 0.05},
		{"pareto", Pareto{Xm: 2, Alpha: 3}, 0.05},
		{"scaled", Scaled{Uniform{0, 1}, 10}, 0.05},
		{"mixture", NewMixture([]float64{1, 3}, []Dist{Const{0}, Const{4}}), 0.05},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := sampleMean(tc.d, 200000)
			want := tc.d.Mean()
			if math.Abs(got-want) > tc.tol*want {
				t.Errorf("sample mean %v, analytic mean %v", got, want)
			}
		})
	}
}

func TestLogNormalMedian(t *testing.T) {
	d := LogNormal{Median: 10, Sigma: 1.2}
	r := NewRand(7, 7)
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if d.Sample(r) < 10 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below median = %v, want ≈0.5", frac)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	if !math.IsInf(Pareto{Xm: 1, Alpha: 1}.Mean(), 1) {
		t.Error("Pareto mean with alpha ≤ 1 should be +Inf")
	}
}

func TestParetoSamplesAboveScale(t *testing.T) {
	d := Pareto{Xm: 3, Alpha: 2}
	r := NewRand(3, 3)
	for i := 0; i < 10000; i++ {
		if x := d.Sample(r); x < 3 {
			t.Fatalf("Pareto sample %v below scale 3", x)
		}
	}
}

func TestClamped(t *testing.T) {
	d := Clamped{D: Const{100}, Lo: 0, Hi: 10}
	if got := d.Sample(NewRand(0, 0)); got != 10 {
		t.Errorf("clamp high = %v, want 10", got)
	}
	d2 := Clamped{D: Const{-5}, Lo: 0, Hi: 10}
	if got := d2.Sample(NewRand(0, 0)); got != 0 {
		t.Errorf("clamp low = %v, want 0", got)
	}
	if d.Mean() != 100 {
		t.Errorf("Clamped.Mean should pass through, got %v", d.Mean())
	}
}

func TestMixtureWeighting(t *testing.T) {
	m := NewMixture([]float64{1, 9}, []Dist{Const{0}, Const{1}})
	r := NewRand(11, 13)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(r) == 1 {
			ones++
		}
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.9) > 0.01 {
		t.Errorf("mixture picked heavy component %v of the time, want ≈0.9", frac)
	}
}

func TestNewMixturePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("mismatched lengths", func() { NewMixture([]float64{1}, []Dist{Const{1}, Const{2}}) })
	mustPanic("empty", func() { NewMixture(nil, nil) })
	mustPanic("negative weight", func() { NewMixture([]float64{-1, 2}, []Dist{Const{1}, Const{2}}) })
	mustPanic("zero total", func() { NewMixture([]float64{0, 0}, []Dist{Const{1}, Const{2}}) })
}

func TestIntDists(t *testing.T) {
	r := NewRand(5, 5)
	if (ConstInt{7}).SampleInt(r) != 7 || (ConstInt{7}).MeanInt() != 7 {
		t.Error("ConstInt misbehaves")
	}

	u := UniformInt{2, 5}
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := u.SampleInt(r)
		if v < 2 || v > 5 {
			t.Fatalf("UniformInt sample %d outside [2,5]", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("UniformInt hit %d distinct values, want 4", len(seen))
	}
	if u.MeanInt() != 3.5 {
		t.Errorf("UniformInt mean = %v, want 3.5", u.MeanInt())
	}
	if (UniformInt{3, 3}).SampleInt(r) != 3 {
		t.Error("degenerate UniformInt should return Lo")
	}

	g := Geometric{Lo: 1, P: 0.5}
	var total int
	for i := 0; i < 100000; i++ {
		v := g.SampleInt(r)
		if v < 1 {
			t.Fatalf("Geometric sample %d below Lo", v)
		}
		total += v
	}
	mean := float64(total) / 100000
	if math.Abs(mean-g.MeanInt()) > 0.05 {
		t.Errorf("Geometric sample mean %v, analytic %v", mean, g.MeanInt())
	}
	if !math.IsInf(Geometric{Lo: 0, P: 1}.MeanInt(), 1) {
		t.Error("Geometric with P=1 should have infinite mean")
	}
}

func TestPickRespectsWeights(t *testing.T) {
	r := NewRand(21, 22)
	counts := [3]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Pick(r, []float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Errorf("picked zero-weight index %d times", counts[1])
	}
	frac := float64(counts[2]) / n
	if math.Abs(frac-0.75) > 0.01 {
		t.Errorf("heavy index picked %v of the time, want ≈0.75", frac)
	}
}

func TestPickPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRand(1, 1)
	mustPanic("zero total", func() { Pick(r, []float64{0, 0}) })
	mustPanic("negative", func() { Pick(r, []float64{-1, 2}) })
	mustPanic("empty", func() { Pick(r, nil) })
}

func TestPoisson(t *testing.T) {
	r := NewRand(9, 9)
	if Poisson(r, 0) != 0 || Poisson(r, -5) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
	// Small-mean regime (Knuth).
	var total int
	const n = 100000
	for i := 0; i < n; i++ {
		total += Poisson(r, 4)
	}
	if mean := float64(total) / n; math.Abs(mean-4) > 0.05 {
		t.Errorf("Poisson(4) sample mean %v", mean)
	}
	// Large-mean regime (normal approximation).
	total = 0
	for i := 0; i < 10000; i++ {
		v := Poisson(r, 120000)
		if v < 0 {
			t.Fatal("negative Poisson draw")
		}
		total += v
	}
	if mean := float64(total) / 10000; math.Abs(mean-120000) > 120000*0.005 {
		t.Errorf("Poisson(120000) sample mean %v", mean)
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(42, 43), NewRand(42, 43)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seeds must produce the same stream")
		}
	}
	c := NewRand(42, 44)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(42, 43).Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should produce different streams")
	}
}
