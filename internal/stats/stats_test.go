package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		s.Add(x)
	}
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Min != 1 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 1/9", s.Min, s.Max)
	}
	if s.Total != 31 {
		t.Errorf("Total = %v, want 31", s.Total)
	}
	if got, want := s.Mean(), 31.0/8; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	// Population stddev: sqrt(52.875/8).
	if got := s.StdDev(); math.Abs(got-2.5708705) > 1e-4 {
		t.Errorf("StdDev = %v, want ≈2.571", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 {
		t.Errorf("empty summary: Mean=%v StdDev=%v, want 0/0", s.Mean(), s.StdDev())
	}
}

func TestSummaryMergeMatchesSequentialAdds(t *testing.T) {
	f := func(raw []float64, split uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		var whole, a, b Summary
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(b)
		if whole.N != a.N {
			return false
		}
		if whole.N == 0 {
			return true
		}
		closeEnough := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-6*(1+math.Abs(x)+math.Abs(y))
		}
		return whole.Min == a.Min && whole.Max == a.Max &&
			closeEnough(whole.Total, a.Total) &&
			closeEnough(whole.Mean(), a.Mean()) &&
			closeEnough(whole.StdDev(), a.StdDev())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) should be 0")
	}
	// Input must not be reordered.
	if xs[0] != 10 {
		t.Error("Percentile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 9}); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestCumulativeShareParetoShape(t *testing.T) {
	// 20 items where the first 4 hold 80 of 100 units: a designed
	// 80/20 distribution should yield ShareAt(0.2) == 0.8.
	weights := make([]float64, 20)
	for i := 0; i < 4; i++ {
		weights[i] = 20
	}
	for i := 4; i < 20; i++ {
		weights[i] = 1.25
	}
	curve := CumulativeShare(weights)
	if got := ShareAt(curve, 0.2); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("ShareAt(0.2) = %v, want 0.8", got)
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.X != 0 || first.Y != 0 {
		t.Errorf("curve starts at %+v, want (0,0)", first)
	}
	if last.X != 1 || math.Abs(last.Y-1) > 1e-12 {
		t.Errorf("curve ends at %+v, want (1,1)", last)
	}
}

func TestCumulativeShareSortsDescending(t *testing.T) {
	// Order of input must not matter.
	a := CumulativeShare([]float64{1, 10, 5})
	b := CumulativeShare([]float64{10, 5, 1})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("curve depends on input order: %v vs %v", a, b)
		}
	}
	// Curve must be concave for descending weights: marginal gains
	// shrink left to right.
	prevGain := math.Inf(1)
	for i := 1; i < len(a); i++ {
		gain := a[i].Y - a[i-1].Y
		if gain > prevGain+1e-12 {
			t.Fatalf("curve not concave at %d", i)
		}
		prevGain = gain
	}
}

func TestCumulativeShareEmpty(t *testing.T) {
	curve := CumulativeShare(nil)
	if len(curve) != 1 || curve[0] != (CDFPoint{0, 0}) {
		t.Errorf("empty curve = %v", curve)
	}
	if ShareAt(nil, 0.5) != 0 {
		t.Error("ShareAt on empty curve should be 0")
	}
}

func TestShareAtClampsToEnds(t *testing.T) {
	curve := CumulativeShare([]float64{1, 1})
	if got := ShareAt(curve, -1); got != 0 {
		t.Errorf("ShareAt(-1) = %v, want 0", got)
	}
	if got := ShareAt(curve, 2); got != 1 {
		t.Errorf("ShareAt(2) = %v, want 1", got)
	}
}

func TestCumulativeShareProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var ws []float64
		for _, w := range raw {
			if w > 0 && w < 1e9 && !math.IsNaN(w) {
				ws = append(ws, w)
			}
		}
		curve := CumulativeShare(ws)
		// Monotone non-decreasing in both coordinates.
		for i := 1; i < len(curve); i++ {
			if curve[i].X < curve[i-1].X || curve[i].Y < curve[i-1].Y-1e-12 {
				return false
			}
		}
		// y ≥ x everywhere (descending sort means early items carry
		// at least their proportional share).
		for _, p := range curve {
			if p.Y < p.X-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
