// Package stats provides the small statistical toolkit the rest of the
// reproduction builds on: deterministic random distributions used by
// the session simulator, summary statistics used by the analyses, and
// cumulative-distribution helpers used for Figure 3.
//
// All randomness flows through *rand.Rand (math/rand/v2) instances
// seeded by the caller, so every simulation and every experiment is
// exactly reproducible.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the order statistics LagAlyzer's pattern browser shows
// per pattern (count, min, mean, max, total) plus the standard
// deviation for reporting.
type Summary struct {
	N     int
	Min   float64
	Max   float64
	Total float64
	mean  float64
	m2    float64 // sum of squared deviations (Welford)
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.N == 0 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.N++
	s.Total += x
	delta := x - s.mean
	s.mean += delta / float64(s.N)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another summary into the receiver.
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	n1, n2 := float64(s.N), float64(o.N)
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*n1*n2/(n1+n2)
	s.mean = (n1*s.mean + n2*o.mean) / (n1 + n2)
	s.N += o.N
	s.Total += o.Total
}

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.mean
}

// StdDev returns the population standard deviation, or 0 for fewer
// than two observations.
func (s *Summary) StdDev() float64 {
	if s.N < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.N))
}

// String renders the summary in a compact human-readable form.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g mean=%.3g max=%.3g total=%.3g", s.N, s.Min, s.Mean(), s.Max, s.Total)
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. It returns 0 for an
// empty slice and does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one point of a cumulative distribution: after including
// the first X fraction of items, Y fraction of the mass is covered.
type CDFPoint struct{ X, Y float64 }

// CumulativeShare computes the Figure 3 curve: items are sorted by
// weight in descending order, and the k-th point reports the fraction
// of items (x) against the fraction of total weight they cover (y).
// The returned curve starts at (0,0) and ends at (1,1) (for non-zero
// total weight).
func CumulativeShare(weights []float64) []CDFPoint {
	n := len(weights)
	if n == 0 {
		return []CDFPoint{{0, 0}}
	}
	sorted := make([]float64, n)
	copy(sorted, weights)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var total float64
	for _, w := range sorted {
		total += w
	}
	pts := make([]CDFPoint, 0, n+1)
	pts = append(pts, CDFPoint{0, 0})
	var cum float64
	for i, w := range sorted {
		cum += w
		y := 1.0
		if total > 0 {
			y = cum / total
		}
		pts = append(pts, CDFPoint{X: float64(i+1) / float64(n), Y: y})
	}
	return pts
}

// ShareAt interpolates a cumulative curve at fraction x, answering
// questions like "what fraction of episodes do 20% of patterns cover?".
func ShareAt(curve []CDFPoint, x float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	if x <= curve[0].X {
		return curve[0].Y
	}
	for i := 1; i < len(curve); i++ {
		if x <= curve[i].X {
			p, q := curve[i-1], curve[i]
			if q.X == p.X {
				return q.Y
			}
			frac := (x - p.X) / (q.X - p.X)
			return p.Y + frac*(q.Y-p.Y)
		}
	}
	return curve[len(curve)-1].Y
}
