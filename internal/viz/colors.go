package viz

import "lagalyzer/internal/trace"

// KindColor returns the fill color used for an interval kind in
// episode sketches. LagAlyzer "renders each interval type in a
// different color" (Section II-B).
func KindColor(k trace.Kind) string {
	switch k {
	case trace.KindDispatch:
		return "#9e9e9e" // gray: the episode frame
	case trace.KindListener:
		return "#4878cf" // blue: input handling
	case trace.KindPaint:
		return "#6acc65" // green: rendering
	case trace.KindNative:
		return "#ee854a" // orange: JNI calls
	case trace.KindAsync:
		return "#956cb4" // purple: background-posted events
	case trace.KindGC:
		return "#d65f5f" // red: stop-the-world collections
	default:
		return "#000000"
	}
}

// StateColor returns the color of a sample dot for a thread state
// ("each sample is represented by a point colored according to the
// thread state", Section II-B).
func StateColor(s trace.ThreadState) string {
	switch s {
	case trace.StateRunnable:
		return "#2e7d32" // green
	case trace.StateBlocked:
		return "#c62828" // red
	case trace.StateWaiting:
		return "#ef6c00" // orange
	case trace.StateSleeping:
		return "#1565c0" // blue
	default:
		return "#000000"
	}
}

// seriesColors is the categorical palette for line charts (Figure 3's
// 14 application curves).
var seriesColors = []string{
	"#4878cf", "#ee854a", "#6acc65", "#d65f5f", "#956cb4", "#8c613c",
	"#dc7ec0", "#797979", "#d5bb67", "#82c6e2", "#1b4f72", "#7b241c",
	"#145a32", "#6c3483",
}

// SeriesColor returns the i-th categorical series color.
func SeriesColor(i int) string { return seriesColors[i%len(seriesColors)] }
