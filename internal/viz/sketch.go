package viz

import (
	"fmt"

	"lagalyzer/internal/trace"
)

// SketchOptions tune episode-sketch rendering.
type SketchOptions struct {
	// Width is the drawing width in pixels; 0 means 960.
	Width float64
	// Title overrides the default "<app> episode #<n>" title.
	Title string
}

func (o SketchOptions) width() float64 {
	if o.Width > 0 {
		return o.Width
	}
	return 960
}

// Sketch renders an episode sketch (Section II-B, Figures 1 and 2):
// the episode's interval tree over a time axis, one row per nesting
// level, each interval colored by kind and labelled when wide enough,
// with the GUI thread's call-stack samples drawn as state-colored
// points along the top edge. Hovering an interval shows its symbol
// and duration; hovering a sample point shows the complete stack
// trace and thread state (as the paper's tooltip does).
//
// The session provides the samples; it may be nil, in which case only
// the interval tree is drawn.
func Sketch(s *trace.Session, e *trace.Episode, opt SketchOptions) string {
	const (
		rowH     = 26.0
		topPad   = 26.0 // title
		sampleH  = 22.0 // sample track
		axisH    = 34.0
		leftPad  = 14.0
		rightPad = 14.0
	)
	depth := e.Root.Depth()
	width := opt.width()
	height := topPad + sampleH + float64(depth)*rowH + axisH

	doc := newSVG(width, height)
	xs := linearScale{
		d0: float64(e.Start()), d1: float64(e.End()),
		r0: leftPad, r1: width - rightPad,
	}

	title := opt.Title
	if title == "" {
		app := "episode"
		if s != nil {
			app = s.App + " episode"
		}
		title = fmt.Sprintf("%s #%d — %v (starts at %.1f s)", app, e.Index, e.Dur(), e.Start().Seconds())
	}
	doc.text(leftPad, 17, 13, "start", "#222", title)

	// Sample track: one point per GUI-thread sample during the
	// episode, colored by state, tooltip with the full stack.
	trackY := topPad + sampleH/2
	if s != nil {
		for _, tick := range s.EpisodeTicks(e) {
			ts, ok := tick.Thread(e.Thread)
			if !ok {
				continue
			}
			tip := fmt.Sprintf("t=%v  state=%s\n%s", tick.Time, ts.State, ts.StackString())
			doc.circle(xs.at(float64(tick.Time)), trackY, 2.6, StateColor(ts.State), tip)
		}
	}

	// Interval tree: preorder walk, one row per depth.
	treeTop := topPad + sampleH
	e.Root.Walk(func(n *trace.Interval, d int) bool {
		x0 := xs.at(float64(n.Start))
		x1 := xs.at(float64(n.End))
		y := treeTop + float64(d)*rowH
		w := x1 - x0
		if w < 0.8 {
			w = 0.8
		}
		label := fmt.Sprintf("%s (%v)", n.Qualified(), n.Dur())
		doc.rect(x0, y+2, w, rowH-4, KindColor(n.Kind), "#555", label)
		if w > float64(len(label))*5.6 {
			doc.text(x0+4, y+rowH/2+4, 10, "start", "#111", label)
		}
		return true
	})

	// Time axis at the bottom, in session time.
	axisY := treeTop + float64(depth)*rowH + 12
	doc.line(leftPad, axisY, width-rightPad, axisY, "#333", 1)
	for _, tms := range niceTicks(e.Start().Ms(), e.End().Ms(), 8) {
		x := xs.at(tms * float64(trace.Millisecond))
		doc.line(x, axisY, x, axisY+4, "#333", 1)
		doc.text(x, axisY+15, 9.5, "middle", "#333", formatTick(tms)+" ms")
	}
	return doc.String()
}

// SketchText renders the plain-text sibling of an episode sketch: the
// interval outline plus a per-10ms sample-state strip, usable in a
// terminal.
func SketchText(s *trace.Session, e *trace.Episode) string {
	out := fmt.Sprintf("episode #%d  %v  [%v .. %v]\n", e.Index, e.Dur(), e.Start(), e.End())
	out += e.Root.Outline()
	if s == nil {
		return out
	}
	ticks := s.EpisodeTicks(e)
	if len(ticks) == 0 {
		return out
	}
	strip := make([]byte, 0, len(ticks))
	for _, tick := range ticks {
		ts, ok := tick.Thread(e.Thread)
		if !ok {
			strip = append(strip, ' ')
			continue
		}
		switch ts.State {
		case trace.StateRunnable:
			strip = append(strip, 'R')
		case trace.StateBlocked:
			strip = append(strip, 'B')
		case trace.StateWaiting:
			strip = append(strip, 'W')
		case trace.StateSleeping:
			strip = append(strip, 'S')
		}
	}
	out += "samples: " + string(strip) + "\n"
	return out
}
