package viz

import (
	"math"
	"strings"
	"testing"

	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

func ms(v float64) trace.Time { return trace.Time(trace.Ms(v)) }

// figure1Session recreates the paper's Figure 1 episode: a 1705 ms
// paint cascade with an 843 ms native DrawLine holding a 466 ms GC,
// and a sampling gap covering the collection.
func figure1Session() (*trace.Session, *trace.Episode) {
	root := trace.NewInterval(trace.KindDispatch, "", "", 0, trace.Ms(1705))
	jf := root.AddChild(trace.NewInterval(trace.KindPaint, "javax.swing.JFrame", "paint", 0, trace.Ms(1705)))
	rp := jf.AddChild(trace.NewInterval(trace.KindPaint, "javax.swing.JRootPane", "paint", ms(5), trace.Ms(1695)))
	lp := rp.AddChild(trace.NewInterval(trace.KindPaint, "javax.swing.JLayeredPane", "paint", ms(80), trace.Ms(1533)))
	tb := lp.AddChild(trace.NewInterval(trace.KindPaint, "javax.swing.JToolBar", "paint", ms(170), trace.Ms(1347)))
	nat := tb.AddChild(trace.NewInterval(trace.KindNative, "sun.java2d.loops.DrawLine", "DrawLine", ms(600), trace.Ms(843)))
	nat.AddChild(trace.NewGC(ms(800), trace.Ms(466), true))

	e := &trace.Episode{Index: 0, Thread: 1, Root: root}
	s := &trace.Session{
		App: "Figure1", GUIThread: 1, Start: 0, End: ms(2000),
		Threads:  []trace.ThreadInfo{{ID: 1, Name: "edt"}},
		Episodes: []*trace.Episode{e},
		GCs:      []*trace.Interval{trace.NewGC(ms(800), trace.Ms(466), true)},
	}
	for t := ms(5); t < s.End; t = t.Add(trace.Ms(10)) {
		// The sampler is stopped for the GC plus a margin (the paper's
		// observed gap is wider than the GC interval itself).
		if t >= ms(620) && t < ms(1370) {
			continue
		}
		s.Ticks = append(s.Ticks, trace.SampleTick{Time: t, Threads: []trace.ThreadSample{{
			Thread: 1, State: trace.StateRunnable,
			Stack: []trace.Frame{{Class: "javax.swing.JToolBar", Method: "paint"}},
		}}})
	}
	return s, e
}

func TestSketchContainsAllParts(t *testing.T) {
	s, e := figure1Session()
	svg := Sketch(s, e, SketchOptions{})
	for _, want := range []string{
		"<svg", "</svg>",
		KindColor(trace.KindGC), KindColor(trace.KindNative), KindColor(trace.KindPaint),
		"JToolBar.paint", "DrawLine",
		"<title>",   // hover tooltips
		"ms</text>", // time axis labels
		StateColor(trace.StateRunnable),
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("sketch missing %q", want)
		}
	}
	// Samples during the GC gap must not be drawn: count circles.
	circles := strings.Count(svg, "<circle")
	wantTicks := 0
	for _, tick := range s.EpisodeTicks(e) {
		_ = tick
		wantTicks++
	}
	if circles != wantTicks {
		t.Errorf("sketch has %d sample dots, want %d", circles, wantTicks)
	}
	if wantTicks >= 170 {
		t.Errorf("expected a sampling gap during GC; got %d ticks", wantTicks)
	}
}

func TestSketchWithoutSession(t *testing.T) {
	_, e := figure1Session()
	svg := Sketch(nil, e, SketchOptions{Title: "custom title"})
	if !strings.Contains(svg, "custom title") {
		t.Error("custom title not rendered")
	}
	if strings.Contains(svg, "<circle") {
		t.Error("sample dots rendered without a session")
	}
}

func TestSketchText(t *testing.T) {
	s, e := figure1Session()
	txt := SketchText(s, e)
	for _, want := range []string{"episode #0", "gc", "DrawLine", "samples: "} {
		if !strings.Contains(txt, want) {
			t.Errorf("text sketch missing %q:\n%s", want, txt)
		}
	}
	if !strings.Contains(txt, "R") {
		t.Error("no runnable markers in the sample strip")
	}
	if SketchText(nil, e) == "" {
		t.Error("text sketch without session should still render the outline")
	}
}

func TestRenderStackedBars(t *testing.T) {
	svg := RenderStackedBars(StackedBars{
		Title:      "Triggers",
		XLabel:     "Episodes [%]",
		Categories: []string{"Input", "Output", "Async", "Unspecified"},
		Rows: []BarRow{
			{Label: "AppA", Values: []float64{0.4, 0.5, 0.05, 0.05}},
			{Label: "AppB", Values: []float64{0.1, 0.9, 0, 0}},
		},
	})
	for _, want := range []string{"Triggers", "AppA", "AppB", "Input", "Unspecified", "Episodes [%]"} {
		if !strings.Contains(svg, want) {
			t.Errorf("stacked bars missing %q", want)
		}
	}
	// Zero-width segments are skipped: AppB has two.
	if got := strings.Count(svg, "AppB: "); got != 2 {
		t.Errorf("AppB rendered %d segments, want 2", got)
	}
}

func TestStackedBarsZoomedAxis(t *testing.T) {
	svg := RenderStackedBars(StackedBars{
		Title:      "Causes",
		Categories: []string{"Blocked"},
		Rows:       []BarRow{{Label: "X", Values: []float64{0.9}}},
		XMax:       0.6, // the Figure 8 zoom: segment clipped at 60%
	})
	if !strings.Contains(svg, "60%") {
		t.Error("zoomed axis should label 60%")
	}
	if strings.Contains(svg, "100%") {
		t.Error("zoomed axis should not reach 100%")
	}
}

func TestRenderBars(t *testing.T) {
	svg := RenderBars(Bars{
		Title:  "Concurrency",
		XLabel: "runnable threads",
		Rows:   []BarRow{{Label: "A", Values: []float64{1.3}}, {Label: "B", Values: []float64{0.4}}},
		Marker: 1.0,
	})
	for _, want := range []string{"Concurrency", "A: 1.30", "B: 0.40", "runnable threads"} {
		if !strings.Contains(svg, want) {
			t.Errorf("bars missing %q", want)
		}
	}
	empty := RenderBars(Bars{Title: "empty"})
	if !strings.Contains(empty, "<svg") {
		t.Error("empty bars should still be a valid document")
	}
}

func TestRenderCDF(t *testing.T) {
	svg := RenderCDF(CDFChart{
		Title:  "Fig 3",
		XLabel: "Patterns [%]",
		YLabel: "Episodes [%]",
		Series: []CDFSeries{
			{Label: "AppA", Points: []stats.CDFPoint{{X: 0, Y: 0}, {X: 0.2, Y: 0.8}, {X: 1, Y: 1}}},
			{Label: "AppB", Points: []stats.CDFPoint{{X: 0, Y: 0}, {X: 1, Y: 1}}},
		},
	})
	for _, want := range []string{"Fig 3", "AppA", "AppB", "polyline", "Patterns [%]"} {
		if !strings.Contains(svg, want) {
			t.Errorf("CDF chart missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestSVGEscaping(t *testing.T) {
	root := trace.NewInterval(trace.KindDispatch, "", "", 0, trace.Ms(100))
	root.AddChild(trace.NewInterval(trace.KindListener, "a.B<T>", `on"x"&y`, 0, trace.Ms(50)))
	e := &trace.Episode{Root: root, Thread: 1}
	svg := Sketch(nil, e, SketchOptions{})
	if strings.Contains(svg, "<T>") {
		t.Error("unescaped angle brackets in SVG output")
	}
	if !strings.Contains(svg, "&lt;T&gt;") {
		t.Error("escaped class name missing")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 5)
	if len(ticks) < 3 {
		t.Fatalf("too few ticks: %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 100+1e-9 {
		t.Errorf("ticks escape the domain: %v", ticks)
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 {
		t.Errorf("degenerate domain: %v", got)
	}
}

func TestLinearScale(t *testing.T) {
	s := linearScale{d0: 0, d1: 10, r0: 100, r1: 200}
	if got := s.at(5); math.Abs(got-150) > 1e-9 {
		t.Errorf("at(5) = %v", got)
	}
	deg := linearScale{d0: 3, d1: 3, r0: 7, r1: 9}
	if deg.at(3) != 7 {
		t.Error("degenerate scale should return r0")
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(100) != "100" {
		t.Errorf("formatTick(100) = %q", formatTick(100))
	}
	if formatTick(0.25) != "0.25" {
		t.Errorf("formatTick(0.25) = %q", formatTick(0.25))
	}
}

func TestKindAndStateColorsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range trace.Kinds() {
		c := KindColor(k)
		if seen[c] {
			t.Errorf("duplicate kind color %s", c)
		}
		seen[c] = true
	}
	seen = map[string]bool{}
	for _, st := range trace.ThreadStates() {
		c := StateColor(st)
		if seen[c] {
			t.Errorf("duplicate state color %s", c)
		}
		seen[c] = true
	}
	if KindColor(trace.Kind(99)) != "#000000" || StateColor(trace.ThreadState(99)) != "#000000" {
		t.Error("unknown enum values should map to black")
	}
}
