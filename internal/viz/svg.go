// Package viz renders LagAlyzer's visualizations: episode sketches
// (Figures 1 and 2 of the paper), stacked-bar characterization charts
// (Figures 4, 5, 6, 8), plain bar charts (Figure 7), and cumulative
// distribution line charts (Figure 3).
//
// Everything renders to self-contained SVG — the paper used MATLAB
// and a Swing GUI, neither of which exists here — plus plain-text
// fallbacks for terminals. Episode-sketch hover (full stack trace and
// thread state per sample, Section II-B) is implemented with native
// SVG <title> tooltips, so the output is interactive in any browser
// with no scripting.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// svgDoc is a minimal SVG document builder. It exists because the
// reproduction is stdlib-only; it covers exactly what the charts need
// (rects, lines, circles, polylines, text, groups, titles).
type svgDoc struct {
	w, h float64
	b    strings.Builder
}

func newSVG(w, h float64) *svgDoc {
	d := &svgDoc{w: w, h: h}
	fmt.Fprintf(&d.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" font-family="Helvetica,Arial,sans-serif">`,
		w, h, w, h)
	d.b.WriteByte('\n')
	return d
}

func (d *svgDoc) String() string { return d.b.String() + "</svg>\n" }

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// rect draws a rectangle; title, when non-empty, becomes a hover
// tooltip.
func (d *svgDoc) rect(x, y, w, h float64, fill, stroke, title string) {
	if title == "" {
		fmt.Fprintf(&d.b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="%s" stroke-width="0.5"/>`+"\n",
			x, y, w, h, fill, stroke)
		return
	}
	fmt.Fprintf(&d.b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="%s" stroke-width="0.5"><title>%s</title></rect>`+"\n",
		x, y, w, h, fill, stroke, esc(title))
}

func (d *svgDoc) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&d.b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (d *svgDoc) circle(cx, cy, r float64, fill, title string) {
	if title == "" {
		fmt.Fprintf(&d.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n", cx, cy, r, fill)
		return
	}
	fmt.Fprintf(&d.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"><title>%s</title></circle>`+"\n",
		cx, cy, r, fill, esc(title))
}

// text draws a label; anchor is "start", "middle", or "end".
func (d *svgDoc) text(x, y float64, size float64, anchor, fill, s string) {
	fmt.Fprintf(&d.b, `<text x="%.2f" y="%.2f" font-size="%.1f" text-anchor="%s" fill="%s">%s</text>`+"\n",
		x, y, size, anchor, fill, esc(s))
}

func (d *svgDoc) polyline(points [][2]float64, stroke string, width float64) {
	var sb strings.Builder
	for i, p := range points {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.2f,%.2f", p[0], p[1])
	}
	fmt.Fprintf(&d.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		sb.String(), stroke, width)
}

// linearScale maps a data domain onto a pixel range.
type linearScale struct {
	d0, d1 float64
	r0, r1 float64
}

func (s linearScale) at(v float64) float64 {
	if s.d1 == s.d0 {
		return s.r0
	}
	return s.r0 + (v-s.d0)/(s.d1-s.d0)*(s.r1-s.r0)
}

// niceTicks returns ~n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 {
		return []float64{lo}
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		step = m * mag
		if step >= rawStep {
			break
		}
	}
	var ticks []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}
