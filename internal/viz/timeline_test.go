package viz

import (
	"strings"
	"testing"

	"lagalyzer/internal/trace"
)

func timelineSession() *trace.Session {
	s := &trace.Session{
		App: "TL", ID: 1, GUIThread: 1, Start: 0, End: trace.Time(10 * trace.Second),
		FilterThreshold: trace.DefaultFilterThreshold,
		ShortCount:      500,
	}
	add := func(start trace.Time, dur trace.Dur, child *trace.Interval) {
		root := trace.NewInterval(trace.KindDispatch, "", "", start, dur)
		if child != nil {
			root.AddChild(child)
		}
		s.Episodes = append(s.Episodes, &trace.Episode{Index: len(s.Episodes), Thread: 1, Root: root})
	}
	add(trace.Time(trace.Second), trace.Ms(20),
		trace.NewInterval(trace.KindListener, "a.B", "on", trace.Time(trace.Second), trace.Ms(10)))
	add(trace.Time(3*trace.Second), trace.Ms(250),
		trace.NewInterval(trace.KindPaint, "p.P", "paint", trace.Time(3*trace.Second), trace.Ms(200)))
	add(trace.Time(6*trace.Second), 2*trace.Second, nil) // unspecified, ≥1s
	s.GCs = []*trace.Interval{
		trace.NewGC(trace.Time(2*trace.Second), trace.Ms(30), false),
		trace.NewGC(trace.Time(5*trace.Second), trace.Ms(300), true),
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func TestTimelineSVG(t *testing.T) {
	s := timelineSession()
	svg := Timeline(s, TimelineOptions{})
	for _, want := range []string{
		"<svg", "TL session 1", "3 episodes",
		"episode #0", "episode #1", "episode #2",
		"input", "output", "unspecified", // legend
		"major GC", "minor GC",
		"100ms", // threshold gridline label
		"s</text>",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
	// Episode bars carry trigger colors.
	if !strings.Contains(svg, triggerColor(0)) || !strings.Contains(svg, triggerColor(1)) {
		t.Error("trigger colors missing")
	}
}

func TestTimelineCustomWidth(t *testing.T) {
	svg := Timeline(timelineSession(), TimelineOptions{Width: 600})
	if !strings.Contains(svg, `width="600"`) {
		t.Error("custom width ignored")
	}
}

func TestTimelineText(t *testing.T) {
	s := timelineSession()
	txt := TimelineText(s, 50)
	lines := strings.Split(strings.TrimRight(txt, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline text has %d lines:\n%s", len(lines), txt)
	}
	if !strings.Contains(lines[0], "TL/1") {
		t.Errorf("header: %q", lines[0])
	}
	body := lines[1]
	if !strings.Contains(body, ".") {
		t.Error("no imperceptible marker")
	}
	if !strings.Contains(body, "#") {
		t.Error("no perceptible marker")
	}
	if !strings.Contains(body, "!") {
		t.Error("no >=1s marker")
	}
	if !strings.Contains(lines[2], "g") {
		t.Error("no GC marker")
	}

	empty := &trace.Session{App: "e", Start: 0, End: 0}
	if got := TimelineText(empty, 10); !strings.Contains(got, "empty") {
		t.Errorf("empty session: %q", got)
	}
	// Default column count.
	if got := TimelineText(s, 0); len(got) == 0 {
		t.Error("default columns failed")
	}
}
