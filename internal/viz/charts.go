package viz

import (
	"fmt"

	"lagalyzer/internal/stats"
)

// StackedBars describes a horizontal stacked-bar chart in the style of
// the paper's Figures 4, 5, 6, and 8: one row per benchmark, each row
// partitioned into colored category segments.
type StackedBars struct {
	Title      string
	XLabel     string
	Categories []string // legend entries, stacking order
	Colors     []string // one per category; nil uses SeriesColor
	Rows       []BarRow
	// XMax is the axis maximum; 0 means 1.0 (fractions). Figure 8
	// zooms to 0.6 to make the small parts visible.
	XMax float64
}

// BarRow is one benchmark's row: a label plus one value per category.
type BarRow struct {
	Label  string
	Values []float64
}

// RenderStackedBars renders the chart as SVG.
func RenderStackedBars(c StackedBars) string {
	const (
		rowH     = 20.0
		labelW   = 120.0
		topPad   = 46.0 // title + legend
		axisH    = 30.0
		rightPad = 16.0
		chartW   = 640.0
	)
	xmax := c.XMax
	if xmax <= 0 {
		xmax = 1
	}
	width := labelW + chartW + rightPad
	height := topPad + float64(len(c.Rows))*rowH + axisH
	doc := newSVG(width, height)
	doc.text(10, 16, 13, "start", "#222", c.Title)

	// Legend across the top.
	lx := 10.0
	for i, cat := range c.Categories {
		doc.rect(lx, 24, 10, 10, c.color(i), "#555", "")
		doc.text(lx+14, 33, 10, "start", "#222", cat)
		lx += 14 + float64(len(cat))*6 + 16
	}

	xs := linearScale{d0: 0, d1: xmax, r0: labelW, r1: labelW + chartW}
	for r, row := range c.Rows {
		y := topPad + float64(r)*rowH
		doc.text(labelW-6, y+rowH/2+4, 10.5, "end", "#222", row.Label)
		cum := 0.0
		for i, v := range row.Values {
			if v <= 0 {
				continue
			}
			x0, x1 := xs.at(cum), xs.at(cum+v)
			if x1 > xs.at(xmax) {
				x1 = xs.at(xmax)
			}
			tip := fmt.Sprintf("%s: %s %.1f%%", row.Label, c.cat(i), v*100)
			doc.rect(x0, y+3, x1-x0, rowH-6, c.color(i), "#444", tip)
			cum += v
		}
	}

	axisY := topPad + float64(len(c.Rows))*rowH + 8
	doc.line(labelW, axisY, labelW+chartW, axisY, "#333", 1)
	for _, t := range niceTicks(0, xmax, 6) {
		x := xs.at(t)
		doc.line(x, axisY, x, axisY+4, "#333", 1)
		doc.text(x, axisY+15, 9.5, "middle", "#333", formatTick(t*100)+"%")
	}
	if c.XLabel != "" {
		doc.text(labelW+chartW/2, axisY+27, 10.5, "middle", "#222", c.XLabel)
	}
	return doc.String()
}

func (c StackedBars) color(i int) string {
	if i < len(c.Colors) {
		return c.Colors[i]
	}
	return SeriesColor(i)
}

func (c StackedBars) cat(i int) string {
	if i < len(c.Categories) {
		return c.Categories[i]
	}
	return fmt.Sprintf("category %d", i)
}

// Bars describes a plain horizontal bar chart (Figure 7's runnable
// thread averages).
type Bars struct {
	Title  string
	XLabel string
	Rows   []BarRow // Values[0] is the bar length
	XMax   float64  // 0 means max over rows, padded
	// Marker draws a reference line at the given x (Figure 7 benefits
	// from a line at 1.0 runnable thread); 0 disables.
	Marker float64
}

// RenderBars renders the chart as SVG.
func RenderBars(c Bars) string {
	const (
		rowH     = 20.0
		labelW   = 120.0
		topPad   = 26.0
		axisH    = 30.0
		rightPad = 16.0
		chartW   = 640.0
	)
	xmax := c.XMax
	if xmax <= 0 {
		for _, r := range c.Rows {
			if len(r.Values) > 0 && r.Values[0] > xmax {
				xmax = r.Values[0]
			}
		}
		xmax *= 1.15
		if xmax == 0 {
			xmax = 1
		}
	}
	width := labelW + chartW + rightPad
	height := topPad + float64(len(c.Rows))*rowH + axisH
	doc := newSVG(width, height)
	doc.text(10, 16, 13, "start", "#222", c.Title)

	xs := linearScale{d0: 0, d1: xmax, r0: labelW, r1: labelW + chartW}
	for r, row := range c.Rows {
		y := topPad + float64(r)*rowH
		doc.text(labelW-6, y+rowH/2+4, 10.5, "end", "#222", row.Label)
		if len(row.Values) == 0 {
			continue
		}
		v := row.Values[0]
		tip := fmt.Sprintf("%s: %.2f", row.Label, v)
		doc.rect(labelW, y+3, xs.at(v)-labelW, rowH-6, "#4878cf", "#444", tip)
	}
	if c.Marker > 0 && c.Marker <= xmax {
		x := xs.at(c.Marker)
		doc.line(x, topPad-4, x, topPad+float64(len(c.Rows))*rowH+2, "#c62828", 1)
	}

	axisY := topPad + float64(len(c.Rows))*rowH + 8
	doc.line(labelW, axisY, labelW+chartW, axisY, "#333", 1)
	for _, t := range niceTicks(0, xmax, 7) {
		x := xs.at(t)
		doc.line(x, axisY, x, axisY+4, "#333", 1)
		doc.text(x, axisY+15, 9.5, "middle", "#333", formatTick(t))
	}
	if c.XLabel != "" {
		doc.text(labelW+chartW/2, axisY+27, 10.5, "middle", "#222", c.XLabel)
	}
	return doc.String()
}

// CDFSeries is one curve of a cumulative-distribution chart.
type CDFSeries struct {
	Label  string
	Points []stats.CDFPoint
}

// CDFChart describes a Figure 3-style chart: fraction of patterns on
// the x-axis, fraction of covered episodes on the y-axis, one curve
// per benchmark.
type CDFChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []CDFSeries
}

// RenderCDF renders the chart as SVG.
func RenderCDF(c CDFChart) string {
	const (
		leftPad            = 56.0
		topPad             = 28.0
		plotW, plotH       = 560.0, 360.0
		legendW, bottomPad = 170.0, 44.0
	)
	width := leftPad + plotW + legendW
	height := topPad + plotH + bottomPad
	doc := newSVG(width, height)
	doc.text(leftPad, 17, 13, "start", "#222", c.Title)

	xs := linearScale{d0: 0, d1: 1, r0: leftPad, r1: leftPad + plotW}
	ys := linearScale{d0: 0, d1: 1, r0: topPad + plotH, r1: topPad}

	// Frame and grid.
	for _, t := range niceTicks(0, 1, 5) {
		gx := xs.at(t)
		gy := ys.at(t)
		doc.line(gx, topPad, gx, topPad+plotH, "#ddd", 0.6)
		doc.line(leftPad, gy, leftPad+plotW, gy, "#ddd", 0.6)
		doc.text(gx, topPad+plotH+14, 9.5, "middle", "#333", formatTick(t*100))
		doc.text(leftPad-6, gy+3, 9.5, "end", "#333", formatTick(t*100))
	}
	doc.line(leftPad, topPad+plotH, leftPad+plotW, topPad+plotH, "#333", 1)
	doc.line(leftPad, topPad, leftPad, topPad+plotH, "#333", 1)
	doc.text(leftPad+plotW/2, topPad+plotH+32, 10.5, "middle", "#222", c.XLabel)
	doc.text(14, topPad+plotH/2, 10.5, "middle", "#222", c.YLabel)

	for i, s := range c.Series {
		pts := make([][2]float64, len(s.Points))
		for j, p := range s.Points {
			pts[j] = [2]float64{xs.at(p.X), ys.at(p.Y)}
		}
		doc.polyline(pts, SeriesColor(i), 1.4)
		// Legend.
		ly := topPad + 8 + float64(i)*15
		doc.line(leftPad+plotW+12, ly, leftPad+plotW+30, ly, SeriesColor(i), 2)
		doc.text(leftPad+plotW+35, ly+3.5, 9.5, "start", "#222", s.Label)
	}
	return doc.String()
}
