package viz

import (
	"fmt"
	"math"
	"strings"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/trace"
)

// TimelineOptions tune session-timeline rendering.
type TimelineOptions struct {
	// Width is the drawing width in pixels; 0 means 1200.
	Width float64
	// Threshold is the perceptibility threshold drawn as a reference
	// line; 0 means 100 ms.
	Threshold trace.Dur
}

func (o TimelineOptions) width() float64 {
	if o.Width > 0 {
		return o.Width
	}
	return 1200
}

func (o TimelineOptions) threshold() trace.Dur {
	if o.Threshold > 0 {
		return o.Threshold
	}
	return trace.DefaultPerceptibleThreshold
}

// Timeline renders a whole-session trace timeline in the spirit of
// LiLa Viewer (which the paper's episode sketches extend): every
// traced episode appears as a bar at its position on the session's
// time axis, with height proportional to log-duration and color by
// trigger class; the perceptibility threshold is a reference line,
// and stop-the-world collections are marked along the bottom. Hovering
// a bar names the episode, its duration, and its trigger.
func Timeline(s *trace.Session, opt TimelineOptions) string {
	const (
		topPad   = 44.0
		plotH    = 200.0
		gcLaneH  = 14.0
		axisH    = 34.0
		leftPad  = 52.0
		rightPad = 16.0
	)
	width := opt.width()
	height := topPad + plotH + gcLaneH + axisH
	doc := newSVG(width, height)

	title := fmt.Sprintf("%s session %d — %d episodes over %v (+%d below the %v filter)",
		s.App, s.ID, len(s.Episodes), s.E2E(), s.ShortCount, s.FilterThreshold)
	doc.text(leftPad, 17, 13, "start", "#222", title)

	// Legend.
	lx := leftPad
	for _, tr := range analysis.Triggers() {
		doc.rect(lx, 24, 10, 10, triggerColor(tr), "#555", "")
		doc.text(lx+14, 33, 10, "start", "#222", tr.String())
		lx += 14 + float64(len(tr.String()))*6 + 16
	}

	xs := linearScale{d0: float64(s.Start), d1: float64(s.End), r0: leftPad, r1: width - rightPad}

	// Log-duration vertical scale: the filter threshold maps to the
	// baseline, 10 s to the top.
	minLog := math.Log10(math.Max(s.FilterThreshold.Ms(), 1))
	maxLog := math.Log10(10000)
	yFor := func(d trace.Dur) float64 {
		frac := (math.Log10(math.Max(d.Ms(), 1)) - minLog) / (maxLog - minLog)
		if frac < 0.02 {
			frac = 0.02
		}
		if frac > 1 {
			frac = 1
		}
		return topPad + plotH - frac*plotH
	}

	// Duration gridlines.
	for _, ms := range []float64{10, 100, 1000} {
		y := yFor(trace.Ms(ms))
		color := "#ddd"
		if trace.Ms(ms) == opt.threshold() {
			color = "#c62828"
		}
		doc.line(leftPad, y, width-rightPad, y, color, 0.8)
		doc.text(leftPad-4, y+3, 9, "end", "#333", formatTick(ms)+"ms")
	}

	baseline := topPad + plotH
	for _, e := range s.Episodes {
		x0 := xs.at(float64(e.Start()))
		x1 := xs.at(float64(e.End()))
		if x1-x0 < 0.7 {
			x1 = x0 + 0.7
		}
		tr := analysis.TriggerOf(e, analysis.TriggerOptions{})
		y := yFor(e.Dur())
		tip := fmt.Sprintf("episode #%d at %v: %v, %s", e.Index, e.Start(), e.Dur(), tr)
		doc.rect(x0, y, x1-x0, baseline-y, triggerColor(tr), "", tip)
	}

	// GC lane.
	gcY := baseline + 3
	for _, gc := range s.GCs {
		x0 := xs.at(float64(gc.Start))
		x1 := xs.at(float64(gc.End))
		if x1-x0 < 0.7 {
			x1 = x0 + 0.7
		}
		kind := "minor"
		if gc.Major {
			kind = "major"
		}
		doc.rect(x0, gcY, x1-x0, gcLaneH-5, KindColor(trace.KindGC), "",
			fmt.Sprintf("%s GC at %v: %v", kind, gc.Start, gc.Dur()))
	}
	doc.text(leftPad-4, gcY+8, 9, "end", "#333", "GC")

	// Time axis in seconds.
	axisY := baseline + gcLaneH + 6
	doc.line(leftPad, axisY, width-rightPad, axisY, "#333", 1)
	for _, ts := range niceTicks(s.Start.Seconds(), s.End.Seconds(), 10) {
		x := xs.at(ts * float64(trace.Second))
		doc.line(x, axisY, x, axisY+4, "#333", 1)
		doc.text(x, axisY+15, 9.5, "middle", "#333", formatTick(ts)+"s")
	}
	return doc.String()
}

// triggerColor maps a trigger class to its timeline color.
func triggerColor(t analysis.Trigger) string {
	switch t {
	case analysis.TriggerInput:
		return "#4878cf"
	case analysis.TriggerOutput:
		return "#6acc65"
	case analysis.TriggerAsync:
		return "#956cb4"
	default:
		return "#9e9e9e"
	}
}

// TimelineText renders a terminal session timeline: the session is
// divided into fixed-width buckets, each showing the worst episode
// duration in that bucket on a log scale ('.' imperceptible, '#'
// perceptible, '!' ≥ 1 s), with a second row marking GC activity.
func TimelineText(s *trace.Session, columns int) string {
	if columns <= 0 {
		columns = 100
	}
	e2e := s.E2E()
	if e2e <= 0 {
		return "(empty session)\n"
	}
	bucket := trace.Dur(int64(e2e) / int64(columns))
	if bucket <= 0 {
		bucket = 1
	}
	worst := make([]trace.Dur, columns)
	for _, e := range s.Episodes {
		i := int(int64(e.Start().Sub(s.Start)) / int64(bucket))
		if i >= columns {
			i = columns - 1
		}
		if e.Dur() > worst[i] {
			worst[i] = e.Dur()
		}
	}
	gc := make([]bool, columns)
	for _, g := range s.GCs {
		i := int(int64(g.Start.Sub(s.Start)) / int64(bucket))
		if i >= columns {
			i = columns - 1
		}
		gc[i] = true
	}

	var eps, gcs strings.Builder
	for i := 0; i < columns; i++ {
		switch {
		case worst[i] == 0:
			eps.WriteByte(' ')
		case worst[i] >= trace.Second:
			eps.WriteByte('!')
		case worst[i] >= trace.DefaultPerceptibleThreshold:
			eps.WriteByte('#')
		default:
			eps.WriteByte('.')
		}
		if gc[i] {
			gcs.WriteByte('g')
		} else {
			gcs.WriteByte(' ')
		}
	}
	return fmt.Sprintf("%s/%d  %v  (. episode, # >=100ms, ! >=1s)\n[%s]\n[%s] gc\n",
		s.App, s.ID, e2e, eps.String(), gcs.String())
}
