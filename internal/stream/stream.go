// Package stream computes LagAlyzer's headline statistics in a single
// pass over a LiLa record stream, without materializing the in-memory
// session.
//
// The paper notes that "LagAlyzer is an offline tool that needs to
// load the complete session trace into memory", which forced the
// authors to pre-filter episodes below 3 ms and to analyze one session
// at a time (Section V). The streaming analyzer lifts that limitation
// for the aggregate analyses: overview counts, episode-duration
// statistics, trigger classification, per-kind exclusive time (GC and
// native fractions), GUI-thread cause shares, and runnable-thread
// concurrency are all computable online in O(stack depth) memory.
//
// Pattern mining and episode sketches inherently need the trees and
// are not offered here; use treebuild for those.
package stream

import (
	"fmt"
	"io"
	"time"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// Decode-throughput metrics, flushed once per analyzed trace (records
// are counted in a plain struct field on the hot path).
var (
	mRecords = obs.NewCounter("stream_records_total",
		"LiLa records consumed by the streaming analyzer")
	mBytes = obs.NewCounter("stream_bytes_total",
		"trace bytes decoded by the streaming analyzer")
)

// Stats is the result of one streaming pass.
type Stats struct {
	App       string
	SessionID int
	E2E       trace.Dur

	// Records counts every trace record consumed, and Bytes the
	// encoded input bytes behind them (Bytes is filled by AnalyzeStream,
	// which sees the raw reader; plain Analyze leaves it zero).
	// Elapsed is the wall clock the pass took. Together they give the
	// decode throughput (see RecordsPerSec and BytesPerSec).
	Records int
	Bytes   int64
	Elapsed time.Duration

	// ShortCount counts sub-filter episodes: the profiler's own count
	// plus any traced episodes below the filter threshold.
	ShortCount int
	// Episodes counts traced episodes; Perceptible those at or above
	// the threshold.
	Episodes    int
	Perceptible int
	// InEpisode is the total time spent handling traced episodes.
	InEpisode trace.Dur
	// Durations summarizes traced episode durations in milliseconds.
	Durations stats.Summary

	// Triggers tallies episode triggers over all traced episodes;
	// TriggersLong over the perceptible ones.
	Triggers     analysis.TriggerShares
	TriggersLong analysis.TriggerShares

	// KindTime accumulates exclusive in-episode time per interval
	// kind (the basis of Figure 6's GC and native fractions).
	KindTime [6]trace.Dur

	// Causes counts GUI-thread samples inside episodes by state;
	// CausesLong will equal Causes only when every episode is
	// perceptible, since perceptibility is unknown until an episode
	// ends, so the streaming analyzer reports causes over all
	// episodes only.
	Causes [4]int

	// RunnableSum and TickCount yield the Figure 7 concurrency
	// average over sampling ticks that fell inside episodes.
	RunnableSum int
	TickCount   int
}

// GCFrac returns exclusive GC time as a fraction of in-episode time.
func (st *Stats) GCFrac() float64 {
	if st.InEpisode == 0 {
		return 0
	}
	return float64(st.KindTime[trace.KindGC]) / float64(st.InEpisode)
}

// NativeFrac returns exclusive native time as a fraction of
// in-episode time.
func (st *Stats) NativeFrac() float64 {
	if st.InEpisode == 0 {
		return 0
	}
	return float64(st.KindTime[trace.KindNative]) / float64(st.InEpisode)
}

// Concurrency returns the average number of runnable threads per
// in-episode sampling tick.
func (st *Stats) Concurrency() float64 {
	if st.TickCount == 0 {
		return 0
	}
	return float64(st.RunnableSum) / float64(st.TickCount)
}

// RecordsPerSec returns the decode throughput in records per second
// of wall clock (0 when Elapsed was not measured).
func (st *Stats) RecordsPerSec() float64 {
	if st.Elapsed <= 0 {
		return 0
	}
	return float64(st.Records) / st.Elapsed.Seconds()
}

// BytesPerSec returns the decode throughput in bytes per second of
// wall clock (0 when Bytes or Elapsed was not measured).
func (st *Stats) BytesPerSec() float64 {
	if st.Elapsed <= 0 {
		return 0
	}
	return float64(st.Bytes) / st.Elapsed.Seconds()
}

// CauseFrac returns the fraction of in-episode GUI-thread samples in
// the given state.
func (st *Stats) CauseFrac(state trace.ThreadState) float64 {
	total := 0
	for _, n := range st.Causes {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(st.Causes[state]) / float64(total)
}

// episodeState tracks one thread's active episode.
type episodeState struct {
	active   bool
	start    trace.Time
	depth    int // open intervals including the dispatch
	kinds    []trace.Kind
	lastTime trace.Time

	trigger      analysis.Trigger
	decided      bool
	asyncPending int // >0 while inside the deciding async interval

	kindTime [6]trace.Dur
	causes   [4]int
}

// Analyzer consumes records incrementally; see Analyze for the
// one-call form.
type Analyzer struct {
	threshold trace.Dur
	filter    trace.Dur
	st        Stats

	threads map[trace.ThreadID]*episodeState

	// GC bracket state.
	inGC bool

	// Sampling-tick grouping.
	tickTime      trace.Time
	tickRunnable  int
	tickValid     bool
	tickInEpisode bool
}

// NewAnalyzer builds a streaming analyzer for one trace. threshold 0
// means the paper's 100 ms.
func NewAnalyzer(h lila.Header, threshold trace.Dur) *Analyzer {
	if threshold == 0 {
		threshold = trace.DefaultPerceptibleThreshold
	}
	return &Analyzer{
		threshold: threshold,
		filter:    h.FilterThreshold,
		st:        Stats{App: h.App, SessionID: h.SessionID},
		threads:   make(map[trace.ThreadID]*episodeState),
	}
}

func (a *Analyzer) thread(id trace.ThreadID) *episodeState {
	es := a.threads[id]
	if es == nil {
		es = &episodeState{}
		a.threads[id] = es
	}
	return es
}

// account attributes elapsed time on a thread's episode to the
// current context (GC when the world is stopped, else the innermost
// open interval's kind).
func (es *episodeState) account(now trace.Time, inGC bool) {
	if !es.active {
		return
	}
	d := now.Sub(es.lastTime)
	es.lastTime = now
	if d <= 0 {
		return
	}
	if inGC {
		es.kindTime[trace.KindGC] += d
		return
	}
	es.kindTime[es.kinds[len(es.kinds)-1]] += d
}

// Add consumes one record.
func (a *Analyzer) Add(rec *lila.Record) error {
	a.st.Records++
	switch rec.Type {
	case lila.RecThread:
		// Thread identity is irrelevant to the aggregates.

	case lila.RecCall:
		es := a.thread(rec.Thread)
		if !es.active && rec.Kind == trace.KindDispatch {
			*es = episodeState{
				active: true, start: rec.Time, lastTime: rec.Time,
				trigger: analysis.TriggerUnspecified,
			}
		}
		if !es.active {
			return nil // orphan top-level non-dispatch interval
		}
		es.account(rec.Time, a.inGC)
		es.depth++
		es.kinds = append(es.kinds, rec.Kind)
		switch {
		case es.asyncPending > 0:
			// Inside the deciding async interval only a paint can
			// change the class (the repaint-manager rule); listeners
			// and further asyncs do not.
			if rec.Kind == trace.KindPaint {
				es.trigger = analysis.TriggerOutput
				es.decided = true
				es.asyncPending = 0
			}
		case !es.decided:
			switch rec.Kind {
			case trace.KindListener:
				es.trigger, es.decided = analysis.TriggerInput, true
			case trace.KindPaint:
				es.trigger, es.decided = analysis.TriggerOutput, true
			case trace.KindAsync:
				// Tentatively async, pending the paint check.
				es.trigger = analysis.TriggerAsync
				es.asyncPending = es.depth
			}
		}

	case lila.RecReturn:
		es := a.thread(rec.Thread)
		if !es.active {
			return nil
		}
		if es.depth == 0 {
			return fmt.Errorf("stream: return without call at %v", rec.Time)
		}
		es.account(rec.Time, a.inGC)
		es.depth--
		es.kinds = es.kinds[:len(es.kinds)-1]
		if es.asyncPending > 0 && es.depth < es.asyncPending {
			// The deciding async interval closed without a paint.
			es.decided = true
			es.asyncPending = 0
		}
		if es.depth == 0 {
			a.finishEpisode(es, rec.Time)
		}

	case lila.RecGCStart:
		if a.inGC {
			return fmt.Errorf("stream: nested gcstart at %v", rec.Time)
		}
		for _, es := range a.threads {
			es.account(rec.Time, false)
		}
		a.inGC = true

	case lila.RecGCEnd:
		if !a.inGC {
			return fmt.Errorf("stream: gcend without gcstart at %v", rec.Time)
		}
		for _, es := range a.threads {
			es.account(rec.Time, true)
		}
		a.inGC = false

	case lila.RecSample:
		a.addSample(rec)

	case lila.RecEnd:
		a.flushTick()
		a.st.E2E = rec.Time.Sub(0)
		a.st.ShortCount += rec.Count

	default:
		return fmt.Errorf("stream: unknown record type %d", rec.Type)
	}
	return nil
}

func (a *Analyzer) addSample(rec *lila.Record) {
	// Group equal-time samples into ticks for the concurrency count.
	// Whether the tick falls inside an episode must be decided *now*:
	// the episode may end before the next record arrives.
	if !a.tickValid || rec.Time != a.tickTime {
		a.flushTick()
		a.tickValid = true
		a.tickTime = rec.Time
		a.tickRunnable = 0
		a.tickInEpisode = false
		for _, es := range a.threads {
			if es.active {
				a.tickInEpisode = true
				break
			}
		}
	}
	if rec.State == trace.StateRunnable {
		a.tickRunnable++
	}
	// Cause shares: samples of a thread currently handling an
	// episode.
	if es := a.threads[rec.Thread]; es != nil && es.active {
		es.causes[rec.State]++
	}
}

// flushTick finalizes the pending sampling tick: it counts toward
// concurrency if a thread was inside an episode when it fired.
func (a *Analyzer) flushTick() {
	if !a.tickValid {
		return
	}
	if a.tickInEpisode {
		a.st.RunnableSum += a.tickRunnable
		a.st.TickCount++
	}
	a.tickValid = false
}

func (a *Analyzer) finishEpisode(es *episodeState, end trace.Time) {
	dur := end.Sub(es.start)
	es.active = false
	if dur < a.filter {
		a.st.ShortCount++
		return
	}
	a.st.Episodes++
	a.st.InEpisode += dur
	a.st.Durations.Add(dur.Ms())
	a.st.Triggers.Counts[es.trigger]++
	a.st.Triggers.Total++
	perceptible := dur >= a.threshold
	if perceptible {
		a.st.Perceptible++
		a.st.TriggersLong.Counts[es.trigger]++
		a.st.TriggersLong.Total++
	}
	for k, d := range es.kindTime {
		a.st.KindTime[k] += d
	}
	for state, n := range es.causes {
		a.st.Causes[state] += n
	}
}

// Stats returns the accumulated statistics. Call after the end record.
func (a *Analyzer) Stats() *Stats {
	a.flushTick()
	st := a.st
	return &st
}

// Analyze consumes a whole trace from r and returns its statistics.
func Analyze(r lila.Reader, threshold trace.Dur) (*Stats, error) {
	start := time.Now()
	a := NewAnalyzer(r.Header(), threshold)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := a.Add(rec); err != nil {
			return nil, err
		}
	}
	st := a.Stats()
	st.Elapsed = time.Since(start)
	mRecords.Add(int64(st.Records))
	return st, nil
}

// AnalyzeStream is Analyze over a raw encoded trace: it sniffs the
// encoding, counts the input bytes, and fills the throughput fields
// (Bytes, Records, Elapsed) alongside the usual statistics.
func AnalyzeStream(rd io.Reader, threshold trace.Dur) (*Stats, error) {
	cr := obs.NewCountingReader(rd, nil)
	lr, err := lila.NewReader(cr)
	if err != nil {
		return nil, err
	}
	st, err := Analyze(lr, threshold)
	if err != nil {
		return nil, err
	}
	st.Bytes = cr.Bytes()
	mBytes.Add(st.Bytes)
	return st, nil
}

// AnalyzeLenient consumes r like Analyze but skips records the
// analyzer rejects (returns without calls, unbalanced GC brackets)
// instead of failing, returning the skip count alongside the
// statistics. Paired with a salvage-mode reader it is the degraded
// path for traces that cannot support a full session rebuild.
func AnalyzeLenient(r lila.Reader, threshold trace.Dur) (*Stats, int, error) {
	start := time.Now()
	a := NewAnalyzer(r.Header(), threshold)
	skipped := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, skipped, err
		}
		if err := a.Add(rec); err != nil {
			skipped++
		}
	}
	st := a.Stats()
	st.Elapsed = time.Since(start)
	mRecords.Add(int64(st.Records))
	return st, skipped, nil
}

// AnalyzeRecords is Analyze over an in-memory record slice.
func AnalyzeRecords(h lila.Header, recs []*lila.Record, threshold trace.Dur) (*Stats, error) {
	a := NewAnalyzer(h, threshold)
	for _, rec := range recs {
		if err := a.Add(rec); err != nil {
			return nil, err
		}
	}
	return a.Stats(), nil
}
