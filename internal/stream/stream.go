// Package stream computes LagAlyzer's headline statistics in a single
// pass over a LiLa record stream, without materializing the in-memory
// session.
//
// The paper notes that "LagAlyzer is an offline tool that needs to
// load the complete session trace into memory", which forced the
// authors to pre-filter episodes below 3 ms and to analyze one session
// at a time (Section V). The streaming analyzer lifts that limitation
// for the aggregate analyses: overview counts, episode-duration
// statistics, trigger classification, per-kind exclusive time (GC and
// native fractions), GUI-thread cause shares, and runnable-thread
// concurrency are all computable online in O(stack depth) memory.
//
// Pattern mining and episode sketches inherently need the trees and
// are not offered here; use treebuild for those.
package stream

import (
	"fmt"
	"io"
	"time"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// Decode-throughput metrics, flushed once per analyzed trace (records
// are counted in a plain struct field on the hot path).
var (
	mRecords = obs.NewCounter("stream_records_total",
		"LiLa records consumed by the streaming analyzer")
	mBytes = obs.NewCounter("stream_bytes_total",
		"trace bytes decoded by the streaming analyzer")
)

// Stats is the result of one streaming pass.
type Stats struct {
	App       string
	SessionID int
	E2E       trace.Dur

	// Records counts every trace record consumed, and Bytes the
	// encoded input bytes behind them (Bytes is filled by AnalyzeStream,
	// which sees the raw reader; plain Analyze leaves it zero).
	// Elapsed is the wall clock the pass took. Together they give the
	// decode throughput (see RecordsPerSec and BytesPerSec).
	Records int
	Bytes   int64
	Elapsed time.Duration

	// ShortCount counts sub-filter episodes: the profiler's own count
	// plus any traced episodes below the filter threshold.
	ShortCount int
	// Episodes counts traced episodes; Perceptible those at or above
	// the threshold.
	Episodes    int
	Perceptible int
	// InEpisode is the total time spent handling traced episodes.
	InEpisode trace.Dur
	// Durations summarizes traced episode durations in milliseconds.
	Durations stats.Summary

	// Triggers tallies episode triggers over all traced episodes;
	// TriggersLong over the perceptible ones.
	Triggers     analysis.TriggerShares
	TriggersLong analysis.TriggerShares

	// KindTime accumulates exclusive in-episode time per interval
	// kind (the basis of Figure 6's GC and native fractions).
	KindTime [6]trace.Dur

	// Causes counts GUI-thread samples inside episodes by state;
	// CausesLong will equal Causes only when every episode is
	// perceptible, since perceptibility is unknown until an episode
	// ends, so the streaming analyzer reports causes over all
	// episodes only.
	Causes [4]int

	// RunnableSum and TickCount yield the Figure 7 concurrency
	// average over sampling ticks that fell inside episodes.
	RunnableSum int
	TickCount   int
}

// GCFrac returns exclusive GC time as a fraction of in-episode time.
func (st *Stats) GCFrac() float64 {
	if st.InEpisode == 0 {
		return 0
	}
	return float64(st.KindTime[trace.KindGC]) / float64(st.InEpisode)
}

// NativeFrac returns exclusive native time as a fraction of
// in-episode time.
func (st *Stats) NativeFrac() float64 {
	if st.InEpisode == 0 {
		return 0
	}
	return float64(st.KindTime[trace.KindNative]) / float64(st.InEpisode)
}

// Concurrency returns the average number of runnable threads per
// in-episode sampling tick.
func (st *Stats) Concurrency() float64 {
	if st.TickCount == 0 {
		return 0
	}
	return float64(st.RunnableSum) / float64(st.TickCount)
}

// RecordsPerSec returns the decode throughput in records per second
// of wall clock (0 when Elapsed was not measured).
func (st *Stats) RecordsPerSec() float64 {
	if st.Elapsed <= 0 {
		return 0
	}
	return float64(st.Records) / st.Elapsed.Seconds()
}

// BytesPerSec returns the decode throughput in bytes per second of
// wall clock (0 when Bytes or Elapsed was not measured).
func (st *Stats) BytesPerSec() float64 {
	if st.Elapsed <= 0 {
		return 0
	}
	return float64(st.Bytes) / st.Elapsed.Seconds()
}

// CauseFrac returns the fraction of in-episode GUI-thread samples in
// the given state.
func (st *Stats) CauseFrac(state trace.ThreadState) float64 {
	total := 0
	for _, n := range st.Causes {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(st.Causes[state]) / float64(total)
}

// EpisodeResult is one finished traced episode's contribution, as
// delivered to an Observe hook. Its tick tallies follow the batch
// pipeline's per-episode semantics exactly (analysis.CauseAnalysis,
// analysis.Concurrency, analysis.LocationAnalysis and the fused engine
// all scan Session.EpisodeTicks, i.e. the half-open [Start, End) tick
// range), so summing EpisodeResults over any episode partition matches
// the engine's mergeable populations.
type EpisodeResult struct {
	Thread     trace.ThreadID
	Start, End trace.Time
	Trigger    analysis.Trigger

	// KindTime is the episode's exclusive per-kind time (GC bracket
	// override included), as in Stats.KindTime.
	KindTime [6]trace.Dur

	// Causes, Samples, AppSamples and LibSamples tally the episode
	// thread's in-episode samples: by state, in total, and — for
	// Java-leaf samples — by the app/library classification of the
	// leaf frame. Runnable and Ticks are the episode's concurrency
	// contribution over all threads.
	Causes                 [4]int
	Samples                int
	AppSamples, LibSamples int
	Runnable, Ticks        int

	// Root is the episode's interval tree when tree building is on
	// and the node budget held; nil otherwise. GC copy-nodes are not
	// materialized — pattern fingerprints exclude them anyway, so the
	// canonical form matches a treebuild-built episode's exactly.
	Root *trace.Interval
	// TreeDropped reports that tree building was on but this
	// episode's node budget was exceeded (degraded stats-only).
	TreeDropped bool
}

// Dur returns the episode's lag.
func (er *EpisodeResult) Dur() trace.Dur { return er.End.Sub(er.Start) }

// tickSample is one thread's sample within the pending tick, retained
// until the tick flushes so its contribution can be attributed to the
// episodes actually spanning the tick time.
type tickSample struct {
	thread  trace.ThreadID
	state   trace.ThreadState
	leaf    trace.Frame
	hasLeaf bool
}

// episodeState tracks one thread's active episode.
type episodeState struct {
	active   bool
	thread   trace.ThreadID
	start    trace.Time
	depth    int // open intervals including the dispatch
	kinds    []trace.Kind
	lastTime trace.Time

	trigger      analysis.Trigger
	decided      bool
	asyncPending int // >0 while inside the deciding async interval

	kindTime [6]trace.Dur
	causes   [4]int

	// Engine-equivalent tick tallies (see EpisodeResult).
	samples  int
	app, lib int
	runnable int
	ticks    int

	// Incremental interval tree (BuildTrees).
	root        *trace.Interval
	stack       []*trace.Interval
	nodes       int
	treeDropped bool
}

// Analyzer consumes records incrementally; see Analyze for the
// one-call form.
type Analyzer struct {
	threshold trace.Dur
	filter    trace.Dur
	st        Stats

	threads map[trace.ThreadID]*episodeState

	// GC bracket state.
	inGC bool

	// Sampling-tick grouping.
	tickTime      trace.Time
	tickRunnable  int
	tickValid     bool
	tickInEpisode bool
	tickSamples   []tickSample

	// Incremental-consumption extensions (Observe/BuildTrees).
	onEpisode func(*EpisodeResult)
	buildTree bool
	maxNodes  int
	treeNodes int
	isLibrary analysis.LibraryClassifier
	lastTime  trace.Time
}

// NewAnalyzer builds a streaming analyzer for one trace. threshold 0
// means the paper's 100 ms.
func NewAnalyzer(h lila.Header, threshold trace.Dur) *Analyzer {
	if threshold == 0 {
		threshold = trace.DefaultPerceptibleThreshold
	}
	return &Analyzer{
		threshold: threshold,
		filter:    h.FilterThreshold,
		st:        Stats{App: h.App, SessionID: h.SessionID},
		threads:   make(map[trace.ThreadID]*episodeState),
		isLibrary: analysis.DefaultLibraryClassifier,
	}
}

// Observe installs a hook called once per finished traced episode
// (sub-filter episodes are dropped, matching the batch builder). The
// passed EpisodeResult is only valid during the call.
func (a *Analyzer) Observe(fn func(*EpisodeResult)) { a.onEpisode = fn }

// BuildTrees makes the analyzer materialize each open episode's
// interval tree incrementally, delivered via EpisodeResult.Root. An
// episode exceeding maxNodes retained intervals (0 means 1<<16) has
// its tree dropped — stats keep flowing — and reports TreeDropped.
func (a *Analyzer) BuildTrees(maxNodes int) {
	if maxNodes <= 0 {
		maxNodes = 1 << 16
	}
	a.buildTree, a.maxNodes = true, maxNodes
}

// DropTrees stops tree building and frees every open episode's
// partial tree: the degraded stats-only mode entered under memory
// pressure. Aggregate statistics are unaffected.
func (a *Analyzer) DropTrees() {
	a.buildTree = false
	for _, es := range a.threads {
		if es.nodes > 0 || es.root != nil {
			a.treeNodes -= es.nodes
			es.root, es.stack, es.nodes = nil, nil, 0
			es.treeDropped = true
		}
	}
}

// TreeNodes returns the number of interval nodes currently retained
// by open episode trees — the basis of ingest memory estimates.
func (a *Analyzer) TreeNodes() int { return a.treeNodes }

// Now returns the time stamp of the last timed record consumed.
func (a *Analyzer) Now() trace.Time { return a.lastTime }

// MinOpenStart returns the earliest start time among episodes still
// open, and whether any episode is open. Everything before that point
// (or before Now when nothing is open) is final.
func (a *Analyzer) MinOpenStart() (trace.Time, bool) {
	var minStart trace.Time
	open := false
	for _, es := range a.threads {
		if es.active && (!open || es.start < minStart) {
			minStart, open = es.start, true
		}
	}
	return minStart, open
}

func (a *Analyzer) thread(id trace.ThreadID) *episodeState {
	es := a.threads[id]
	if es == nil {
		es = &episodeState{}
		a.threads[id] = es
	}
	return es
}

// account attributes elapsed time on a thread's episode to the
// current context (GC when the world is stopped, else the innermost
// open interval's kind).
func (es *episodeState) account(now trace.Time, inGC bool) {
	if !es.active {
		return
	}
	d := now.Sub(es.lastTime)
	es.lastTime = now
	if d <= 0 {
		return
	}
	if inGC {
		es.kindTime[trace.KindGC] += d
		return
	}
	es.kindTime[es.kinds[len(es.kinds)-1]] += d
}

// Add consumes one record.
func (a *Analyzer) Add(rec *lila.Record) error {
	a.st.Records++
	// A pending sampling tick is complete as soon as any record with a
	// different time stamp arrives (equal-time samples are contiguous
	// in a well-formed stream): flush it before this record can close
	// or open episodes, so the per-episode attribution sees exactly
	// the episodes whose [Start, End) range spans the tick.
	if rec.Type != lila.RecThread {
		if a.tickValid && rec.Time != a.tickTime {
			a.flushTick()
		}
		a.lastTime = rec.Time
	}
	switch rec.Type {
	case lila.RecThread:
		// Thread identity is irrelevant to the aggregates.

	case lila.RecCall:
		es := a.thread(rec.Thread)
		if !es.active && rec.Kind == trace.KindDispatch {
			*es = episodeState{
				active: true, thread: rec.Thread,
				start: rec.Time, lastTime: rec.Time,
				trigger: analysis.TriggerUnspecified,
			}
		}
		if !es.active {
			return nil // orphan top-level non-dispatch interval
		}
		es.account(rec.Time, a.inGC)
		es.depth++
		es.kinds = append(es.kinds, rec.Kind)
		if a.buildTree && !es.treeDropped {
			iv := &trace.Interval{
				Kind: rec.Kind, Class: rec.Class, Method: rec.Method,
				Start: rec.Time, End: -1,
			}
			if es.root == nil {
				es.root = iv
			} else {
				parent := es.stack[len(es.stack)-1]
				parent.Children = append(parent.Children, iv)
			}
			es.stack = append(es.stack, iv)
			es.nodes++
			a.treeNodes++
			if es.nodes > a.maxNodes {
				a.treeNodes -= es.nodes
				es.root, es.stack, es.nodes = nil, nil, 0
				es.treeDropped = true
			}
		}
		switch {
		case es.asyncPending > 0:
			// Inside the deciding async interval only a paint can
			// change the class (the repaint-manager rule); listeners
			// and further asyncs do not.
			if rec.Kind == trace.KindPaint {
				es.trigger = analysis.TriggerOutput
				es.decided = true
				es.asyncPending = 0
			}
		case !es.decided:
			switch rec.Kind {
			case trace.KindListener:
				es.trigger, es.decided = analysis.TriggerInput, true
			case trace.KindPaint:
				es.trigger, es.decided = analysis.TriggerOutput, true
			case trace.KindAsync:
				// Tentatively async, pending the paint check.
				es.trigger = analysis.TriggerAsync
				es.asyncPending = es.depth
			}
		}

	case lila.RecReturn:
		es := a.thread(rec.Thread)
		if !es.active {
			return nil
		}
		if es.depth == 0 {
			return fmt.Errorf("stream: return without call at %v", rec.Time)
		}
		es.account(rec.Time, a.inGC)
		es.depth--
		es.kinds = es.kinds[:len(es.kinds)-1]
		if len(es.stack) > 0 {
			iv := es.stack[len(es.stack)-1]
			iv.End = rec.Time
			es.stack = es.stack[:len(es.stack)-1]
		}
		if es.asyncPending > 0 && es.depth < es.asyncPending {
			// The deciding async interval closed without a paint.
			es.decided = true
			es.asyncPending = 0
		}
		if es.depth == 0 {
			a.finishEpisode(es, rec.Time)
		}

	case lila.RecGCStart:
		if a.inGC {
			return fmt.Errorf("stream: nested gcstart at %v", rec.Time)
		}
		for _, es := range a.threads {
			es.account(rec.Time, false)
		}
		a.inGC = true

	case lila.RecGCEnd:
		if !a.inGC {
			return fmt.Errorf("stream: gcend without gcstart at %v", rec.Time)
		}
		for _, es := range a.threads {
			es.account(rec.Time, true)
		}
		a.inGC = false

	case lila.RecSample:
		a.addSample(rec)

	case lila.RecEnd:
		a.flushTick()
		a.st.E2E = rec.Time.Sub(0)
		a.st.ShortCount += rec.Count

	default:
		return fmt.Errorf("stream: unknown record type %d", rec.Type)
	}
	return nil
}

func (a *Analyzer) addSample(rec *lila.Record) {
	// Group equal-time samples into ticks for the concurrency count.
	// Whether the tick falls inside an episode for the *global* count
	// must be decided now: the episode may end before the next record
	// arrives. Per-episode attribution instead waits for the flush,
	// which matches the batch pipeline's half-open [Start, End) scan.
	if !a.tickValid || rec.Time != a.tickTime {
		a.flushTick()
		a.tickValid = true
		a.tickTime = rec.Time
		a.tickRunnable = 0
		a.tickInEpisode = false
		for _, es := range a.threads {
			if es.active {
				a.tickInEpisode = true
				break
			}
		}
	}
	if rec.State == trace.StateRunnable {
		a.tickRunnable++
	}
	ts := tickSample{thread: rec.Thread, state: rec.State}
	if len(rec.Stack) > 0 {
		ts.leaf, ts.hasLeaf = rec.Stack[0], true
	}
	a.tickSamples = append(a.tickSamples, ts)
}

// flushTick finalizes the pending sampling tick: globally it counts
// toward concurrency if a thread was inside an episode when it fired,
// and per episode it is attributed to every episode still spanning
// the tick time — exactly the ticks a batch EpisodeTicks scan of the
// finished episode would visit.
func (a *Analyzer) flushTick() {
	if !a.tickValid {
		return
	}
	if a.tickInEpisode {
		a.st.RunnableSum += a.tickRunnable
		a.st.TickCount++
	}
	for _, es := range a.threads {
		if es.active {
			es.ticks++
			es.runnable += a.tickRunnable
		}
	}
	for _, ts := range a.tickSamples {
		es := a.threads[ts.thread]
		if es == nil || !es.active {
			continue
		}
		es.causes[ts.state]++
		es.samples++
		if ts.hasLeaf && !ts.leaf.Native {
			if a.isLibrary(ts.leaf) {
				es.lib++
			} else {
				es.app++
			}
		}
	}
	a.tickSamples = a.tickSamples[:0]
	a.tickValid = false
}

func (a *Analyzer) finishEpisode(es *episodeState, end trace.Time) {
	dur := end.Sub(es.start)
	es.active = false
	root, dropped := es.root, es.treeDropped
	a.treeNodes -= es.nodes
	es.root, es.stack, es.nodes, es.treeDropped = nil, nil, 0, false
	if dur < a.filter {
		a.st.ShortCount++
		return
	}
	a.st.Episodes++
	a.st.InEpisode += dur
	a.st.Durations.Add(dur.Ms())
	a.st.Triggers.Counts[es.trigger]++
	a.st.Triggers.Total++
	perceptible := dur >= a.threshold
	if perceptible {
		a.st.Perceptible++
		a.st.TriggersLong.Counts[es.trigger]++
		a.st.TriggersLong.Total++
	}
	for k, d := range es.kindTime {
		a.st.KindTime[k] += d
	}
	for state, n := range es.causes {
		a.st.Causes[state] += n
	}
	if a.onEpisode != nil {
		a.onEpisode(&EpisodeResult{
			Thread: es.thread, Start: es.start, End: end,
			Trigger:    es.trigger,
			KindTime:   es.kindTime,
			Causes:     es.causes,
			Samples:    es.samples,
			AppSamples: es.app, LibSamples: es.lib,
			Runnable: es.runnable, Ticks: es.ticks,
			Root: root, TreeDropped: dropped,
		})
	}
}

// Stats returns the accumulated statistics. Call after the end record.
func (a *Analyzer) Stats() *Stats {
	a.flushTick()
	st := a.st
	return &st
}

// Analyze consumes a whole trace from r and returns its statistics.
func Analyze(r lila.Reader, threshold trace.Dur) (*Stats, error) {
	start := time.Now()
	a := NewAnalyzer(r.Header(), threshold)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := a.Add(rec); err != nil {
			return nil, err
		}
	}
	st := a.Stats()
	st.Elapsed = time.Since(start)
	mRecords.Add(int64(st.Records))
	return st, nil
}

// AnalyzeStream is Analyze over a raw encoded trace: it sniffs the
// encoding, counts the input bytes, and fills the throughput fields
// (Bytes, Records, Elapsed) alongside the usual statistics.
func AnalyzeStream(rd io.Reader, threshold trace.Dur) (*Stats, error) {
	cr := obs.NewCountingReader(rd, nil)
	lr, err := lila.NewReader(cr)
	if err != nil {
		return nil, err
	}
	st, err := Analyze(lr, threshold)
	if err != nil {
		return nil, err
	}
	st.Bytes = cr.Bytes()
	mBytes.Add(st.Bytes)
	return st, nil
}

// AnalyzeLenient consumes r like Analyze but skips records the
// analyzer rejects (returns without calls, unbalanced GC brackets)
// instead of failing, returning the skip count alongside the
// statistics. Paired with a salvage-mode reader it is the degraded
// path for traces that cannot support a full session rebuild.
func AnalyzeLenient(r lila.Reader, threshold trace.Dur) (*Stats, int, error) {
	start := time.Now()
	a := NewAnalyzer(r.Header(), threshold)
	skipped := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, skipped, err
		}
		if err := a.Add(rec); err != nil {
			skipped++
		}
	}
	st := a.Stats()
	st.Elapsed = time.Since(start)
	mRecords.Add(int64(st.Records))
	return st, skipped, nil
}

// AnalyzeRecords is Analyze over an in-memory record slice.
func AnalyzeRecords(h lila.Header, recs []*lila.Record, threshold trace.Dur) (*Stats, error) {
	a := NewAnalyzer(h, threshold)
	for _, rec := range recs {
		if err := a.Add(rec); err != nil {
			return nil, err
		}
	}
	return a.Stats(), nil
}
