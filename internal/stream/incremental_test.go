package stream

import (
	"testing"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
)

// feedAll pushes records through an analyzer, failing the test on any
// record error (the crafted streams below are all well-formed).
func feedAll(t *testing.T, a *Analyzer, recs []*lila.Record) {
	t.Helper()
	for _, rec := range recs {
		if err := a.Add(rec); err != nil {
			t.Fatalf("add %+v: %v", rec, err)
		}
	}
}

// TestObserveDeliversEpisodes: the Observe hook fires once per kept
// episode, and summing the delivered tick tallies over a whole
// simulated session reproduces the analyzer's own aggregate stats —
// the mergeability contract the ingest windows depend on.
func TestObserveDeliversEpisodes(t *testing.T) {
	profile, err := apps.ByName("Jmol")
	if err != nil {
		t.Fatal(err)
	}
	recs, h, err := sim.Records(sim.Config{Profile: profile, Seed: 21, SessionSeconds: 30})
	if err != nil {
		t.Fatal(err)
	}

	a := NewAnalyzer(h, 0)
	var got []EpisodeResult
	a.Observe(func(er *EpisodeResult) { got = append(got, *er) })
	feedAll(t, a, recs)
	st := a.Stats()

	if len(got) != st.Episodes {
		t.Fatalf("observed %d episodes, stats count %d", len(got), st.Episodes)
	}
	var samples, ticks, runnable int
	var causes [4]int
	var gc, native trace.Dur
	for i := range got {
		er := &got[i]
		if er.End <= er.Start {
			t.Errorf("episode %d: non-positive span [%v, %v]", i, er.Start, er.End)
		}
		if er.Dur() != er.End.Sub(er.Start) {
			t.Errorf("episode %d: Dur() inconsistent", i)
		}
		samples += er.Samples
		ticks += er.Ticks
		runnable += er.Runnable
		for s, n := range er.Causes {
			causes[s] += n
		}
		gc += er.KindTime[trace.KindGC]
		native += er.KindTime[trace.KindNative]
	}
	if causes != st.Causes {
		t.Errorf("summed causes %v, stats %v", causes, st.Causes)
	}
	if ticks != st.TickCount {
		t.Errorf("summed ticks %d, stats %d", ticks, st.TickCount)
	}
	if runnable != st.RunnableSum {
		t.Errorf("summed runnable %d, stats %d", runnable, st.RunnableSum)
	}
	if gc != st.KindTime[trace.KindGC] || native != st.KindTime[trace.KindNative] {
		t.Errorf("summed kind time gc=%v native=%v, stats gc=%v native=%v",
			gc, native, st.KindTime[trace.KindGC], st.KindTime[trace.KindNative])
	}
}

// TestBuildTreesMaterializesRoots: with tree building on, each
// delivered episode carries an interval tree whose shape mirrors the
// record stream, and the open-node gauge returns to zero once every
// episode closes.
func TestBuildTreesMaterializesRoots(t *testing.T) {
	ms := func(v float64) trace.Time { return trace.Time(trace.Ms(v)) }
	h := lila.Header{App: "t", GUIThread: 1, FilterThreshold: trace.DefaultFilterThreshold}
	recs := []*lila.Record{
		{Type: lila.RecCall, Time: ms(0), Thread: 1, Kind: trace.KindDispatch, Class: "q.E", Method: "dispatch"},
		{Type: lila.RecCall, Time: ms(1), Thread: 1, Kind: trace.KindListener, Class: "l.L", Method: "on"},
		{Type: lila.RecCall, Time: ms(2), Thread: 1, Kind: trace.KindNative, Class: "n.N", Method: "c"},
		{Type: lila.RecReturn, Time: ms(10), Thread: 1},
		{Type: lila.RecReturn, Time: ms(30), Thread: 1},
		{Type: lila.RecReturn, Time: ms(50), Thread: 1},
		{Type: lila.RecEnd, Time: ms(100)},
	}

	a := NewAnalyzer(h, 0)
	a.BuildTrees(0)
	var roots []*trace.Interval
	a.Observe(func(er *EpisodeResult) {
		if er.TreeDropped {
			t.Error("tree dropped under an ample node budget")
		}
		roots = append(roots, er.Root)
	})
	feedAll(t, a, recs)

	if len(roots) != 1 || roots[0] == nil {
		t.Fatalf("got %d roots (nil-rooted?)", len(roots))
	}
	root := roots[0]
	if root.Kind != trace.KindDispatch || root.Start != ms(0) || root.End != ms(50) {
		t.Errorf("root = %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Method != "on" {
		t.Fatalf("root children = %+v", root.Children)
	}
	leaf := root.Children[0].Children
	if len(leaf) != 1 || leaf[0].Kind != trace.KindNative || leaf[0].End != ms(10) {
		t.Errorf("leaf = %+v", leaf)
	}
	if n := a.TreeNodes(); n != 0 {
		t.Errorf("TreeNodes after close = %d, want 0", n)
	}
}

// TestBuildTreesNodeCap: an episode that exceeds the node budget loses
// its tree (Root nil, TreeDropped set) while its statistics — and any
// well-behaved sibling episode's tree — survive.
func TestBuildTreesNodeCap(t *testing.T) {
	ms := func(v float64) trace.Time { return trace.Time(trace.Ms(v)) }
	h := lila.Header{App: "t", GUIThread: 1, FilterThreshold: trace.DefaultFilterThreshold}
	var recs []*lila.Record
	recs = append(recs, &lila.Record{Type: lila.RecCall, Time: ms(0), Thread: 1, Kind: trace.KindDispatch, Class: "q.E", Method: "d"})
	// 8 sequential children blow a 4-node budget.
	for i := 0; i < 8; i++ {
		at := ms(float64(1 + 2*i))
		recs = append(recs,
			&lila.Record{Type: lila.RecCall, Time: at, Thread: 1, Kind: trace.KindNative, Class: "n.N", Method: "c"},
			&lila.Record{Type: lila.RecReturn, Time: at + trace.Time(trace.Ms(1)), Thread: 1})
	}
	recs = append(recs,
		&lila.Record{Type: lila.RecReturn, Time: ms(40), Thread: 1},
		// A second, small episode on the same thread keeps its tree.
		&lila.Record{Type: lila.RecCall, Time: ms(50), Thread: 1, Kind: trace.KindDispatch, Class: "q.E", Method: "d"},
		&lila.Record{Type: lila.RecReturn, Time: ms(60), Thread: 1},
		&lila.Record{Type: lila.RecEnd, Time: ms(100)})

	a := NewAnalyzer(h, 0)
	a.BuildTrees(4)
	var results []EpisodeResult
	a.Observe(func(er *EpisodeResult) { results = append(results, *er) })
	feedAll(t, a, recs)
	st := a.Stats()

	if len(results) != 2 || st.Episodes != 2 {
		t.Fatalf("episodes: observed %d, stats %d, want 2", len(results), st.Episodes)
	}
	big, small := results[0], results[1]
	if !big.TreeDropped || big.Root != nil {
		t.Errorf("capped episode: dropped=%v root=%v, want dropped with nil root", big.TreeDropped, big.Root)
	}
	if big.Dur() != trace.Ms(40) {
		t.Errorf("capped episode still has stats: dur = %v, want 40ms", big.Dur())
	}
	if small.TreeDropped || small.Root == nil {
		t.Errorf("sibling episode lost its tree: dropped=%v root=%v", small.TreeDropped, small.Root)
	}
	if n := a.TreeNodes(); n != 0 {
		t.Errorf("TreeNodes after close = %d, want 0", n)
	}
}

// TestDropTreesMidStream: DropTrees during an open episode frees its
// partial tree immediately (the ingest memory-pressure path), marks it
// TreeDropped, and stops tree building for every later episode without
// disturbing aggregate statistics.
func TestDropTreesMidStream(t *testing.T) {
	ms := func(v float64) trace.Time { return trace.Time(trace.Ms(v)) }
	h := lila.Header{App: "t", GUIThread: 1, FilterThreshold: trace.DefaultFilterThreshold}

	a := NewAnalyzer(h, 0)
	a.BuildTrees(0)
	var results []EpisodeResult
	a.Observe(func(er *EpisodeResult) { results = append(results, *er) })

	feedAll(t, a, []*lila.Record{
		{Type: lila.RecCall, Time: ms(0), Thread: 1, Kind: trace.KindDispatch, Class: "q.E", Method: "d"},
		{Type: lila.RecCall, Time: ms(1), Thread: 1, Kind: trace.KindListener, Class: "l.L", Method: "on"},
	})
	if a.TreeNodes() == 0 {
		t.Fatal("no retained nodes before the drop — test premise broken")
	}
	a.DropTrees()
	if n := a.TreeNodes(); n != 0 {
		t.Errorf("TreeNodes after DropTrees = %d, want 0", n)
	}
	feedAll(t, a, []*lila.Record{
		{Type: lila.RecReturn, Time: ms(10), Thread: 1},
		{Type: lila.RecReturn, Time: ms(30), Thread: 1},
		{Type: lila.RecCall, Time: ms(40), Thread: 1, Kind: trace.KindDispatch, Class: "q.E", Method: "d"},
		{Type: lila.RecReturn, Time: ms(55), Thread: 1},
		{Type: lila.RecEnd, Time: ms(100)},
	})
	st := a.Stats()

	if len(results) != 2 || st.Episodes != 2 {
		t.Fatalf("episodes: observed %d, stats %d, want 2", len(results), st.Episodes)
	}
	if !results[0].TreeDropped || results[0].Root != nil {
		t.Errorf("open episode at drop time: dropped=%v root=%v", results[0].TreeDropped, results[0].Root)
	}
	if results[1].Root != nil {
		t.Error("episode after DropTrees still grew a tree")
	}
	if results[0].Dur() != trace.Ms(30) || results[1].Dur() != trace.Ms(15) {
		t.Errorf("episode durations %v, %v — stats disturbed by the drop", results[0].Dur(), results[1].Dur())
	}
}

// TestNowAndMinOpenStart: the window-flushing watermarks. Now tracks
// the last timed record; MinOpenStart tracks the earliest still-open
// episode and goes quiet when everything is closed.
func TestNowAndMinOpenStart(t *testing.T) {
	ms := func(v float64) trace.Time { return trace.Time(trace.Ms(v)) }
	h := lila.Header{App: "t", GUIThread: 1, FilterThreshold: trace.DefaultFilterThreshold}
	a := NewAnalyzer(h, 0)

	if _, open := a.MinOpenStart(); open {
		t.Error("open episode on a fresh analyzer")
	}
	feedAll(t, a, []*lila.Record{
		{Type: lila.RecThread, Thread: 1, Name: "EDT"},
		{Type: lila.RecCall, Time: ms(5), Thread: 1, Kind: trace.KindDispatch, Class: "q.E", Method: "d"},
		{Type: lila.RecSample, Time: ms(12), Thread: 1, State: trace.StateRunnable},
	})
	if now := a.Now(); now != ms(12) {
		t.Errorf("Now = %v, want 12ms (thread records must not advance it)", now)
	}
	start, open := a.MinOpenStart()
	if !open || start != ms(5) {
		t.Errorf("MinOpenStart = %v/%v, want 5ms/open", start, open)
	}
	feedAll(t, a, []*lila.Record{
		{Type: lila.RecReturn, Time: ms(20), Thread: 1},
		{Type: lila.RecEnd, Time: ms(90)},
	})
	if _, open := a.MinOpenStart(); open {
		t.Error("episode still open after return")
	}
	if now := a.Now(); now != ms(90) {
		t.Errorf("Now = %v, want 90ms", now)
	}
}
