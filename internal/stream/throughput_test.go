package stream

import (
	"strings"
	"testing"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/sim"
)

// encode serializes a simulated session and returns the encoded trace
// plus the records it contains.
func encode(t *testing.T, app string, format lila.Format) (string, []*lila.Record) {
	t.Helper()
	profile, err := apps.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	recs, h, err := sim.Records(sim.Config{Profile: profile, Seed: 11, SessionSeconds: 25})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w, err := lila.NewWriter(&sb, format, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sb.String(), recs
}

// TestThroughputAccounting checks the progress/throughput fields: the
// bytes counted must equal the encoded trace size and the records
// counted must equal the number of records actually in the trace, for
// both encodings.
func TestThroughputAccounting(t *testing.T) {
	for _, format := range []lila.Format{lila.FormatText, lila.FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			encoded, recs := encode(t, "CrosswordSage", format)

			recBefore := obs.NewCounter("stream_records_total", "").Value()
			byteBefore := obs.NewCounter("stream_bytes_total", "").Value()

			st, err := AnalyzeStream(strings.NewReader(encoded), 0)
			if err != nil {
				t.Fatal(err)
			}
			if st.Bytes != int64(len(encoded)) {
				t.Errorf("Bytes = %d, want %d (encoded trace size)", st.Bytes, len(encoded))
			}
			if st.Records != len(recs) {
				t.Errorf("Records = %d, want %d", st.Records, len(recs))
			}
			if st.Elapsed <= 0 {
				t.Error("Elapsed not measured")
			}
			if st.BytesPerSec() <= 0 || st.RecordsPerSec() <= 0 {
				t.Errorf("throughput not derivable: %v B/s, %v rec/s", st.BytesPerSec(), st.RecordsPerSec())
			}

			// The global decode counters advance by the same amounts.
			if got := obs.NewCounter("stream_records_total", "").Value() - recBefore; got != int64(len(recs)) {
				t.Errorf("stream_records_total advanced by %d, want %d", got, len(recs))
			}
			if got := obs.NewCounter("stream_bytes_total", "").Value() - byteBefore; got != int64(len(encoded)) {
				t.Errorf("stream_bytes_total advanced by %d, want %d", got, len(encoded))
			}
		})
	}
}

// TestAnalyzeRecordsCountsRecords: the in-memory path counts records
// too (bytes stay zero — there is no encoded input).
func TestAnalyzeRecordsCountsRecords(t *testing.T) {
	profile, err := apps.ByName("SwingSet")
	if err != nil {
		t.Fatal(err)
	}
	recs, h, err := sim.Records(sim.Config{Profile: profile, Seed: 2, SessionSeconds: 15})
	if err != nil {
		t.Fatal(err)
	}
	st, err := AnalyzeRecords(h, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != len(recs) {
		t.Errorf("Records = %d, want %d", st.Records, len(recs))
	}
	if st.Bytes != 0 {
		t.Errorf("Bytes = %d, want 0 for the in-memory path", st.Bytes)
	}
}
