package stream

import (
	"math"
	"strings"
	"testing"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/apps"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
)

// TestStreamingMatchesFullAnalysis is the package's core contract:
// on the same record stream, the single-pass analyzer must agree with
// treebuild + the full analyses.
func TestStreamingMatchesFullAnalysis(t *testing.T) {
	for _, app := range []string{"CrosswordSage", "Jmol", "Arabeske", "FindBugs"} {
		t.Run(app, func(t *testing.T) {
			profile, err := apps.ByName(app)
			if err != nil {
				t.Fatal(err)
			}
			recs, h, err := sim.Records(sim.Config{Profile: profile, Seed: 9, SessionSeconds: 60})
			if err != nil {
				t.Fatal(err)
			}

			st, err := AnalyzeRecords(h, recs, 0)
			if err != nil {
				t.Fatalf("stream: %v", err)
			}
			session, _, err := treebuild.BuildRecords(h, recs)
			if err != nil {
				t.Fatalf("treebuild: %v", err)
			}
			sessions := []*trace.Session{session}
			th := trace.DefaultPerceptibleThreshold

			if st.Episodes != len(session.Episodes) {
				t.Errorf("episodes: stream %d, full %d", st.Episodes, len(session.Episodes))
			}
			if st.ShortCount != session.ShortCount {
				t.Errorf("short: stream %d, full %d", st.ShortCount, session.ShortCount)
			}
			if st.Perceptible != len(session.PerceptibleEpisodes(th)) {
				t.Errorf("perceptible: stream %d, full %d", st.Perceptible, len(session.PerceptibleEpisodes(th)))
			}
			if st.InEpisode != session.InEpisode() {
				t.Errorf("in-episode: stream %v, full %v", st.InEpisode, session.InEpisode())
			}
			if st.E2E != session.E2E() {
				t.Errorf("E2E: stream %v, full %v", st.E2E, session.E2E())
			}

			trig := analysis.TriggerAnalysis(sessions, th, false, analysis.TriggerOptions{})
			if st.Triggers != trig {
				t.Errorf("triggers: stream %+v, full %+v", st.Triggers, trig)
			}
			trigLong := analysis.TriggerAnalysis(sessions, th, true, analysis.TriggerOptions{})
			if st.TriggersLong != trigLong {
				t.Errorf("perceptible triggers: stream %+v, full %+v", st.TriggersLong, trigLong)
			}

			loc := analysis.LocationAnalysis(sessions, th, false, nil)
			if math.Abs(st.GCFrac()-loc.GC) > 1e-9 {
				t.Errorf("GC frac: stream %v, full %v", st.GCFrac(), loc.GC)
			}
			if math.Abs(st.NativeFrac()-loc.Native) > 1e-9 {
				t.Errorf("native frac: stream %v, full %v", st.NativeFrac(), loc.Native)
			}

			causes := analysis.CauseAnalysis(sessions, th, false)
			for _, state := range trace.ThreadStates() {
				if got, want := st.CauseFrac(state), causes.Frac(state); math.Abs(got-want) > 1e-9 {
					t.Errorf("cause %v: stream %v, full %v", state, got, want)
				}
			}

			conc, ticks := analysis.Concurrency(sessions, th, false)
			if st.TickCount != ticks {
				t.Errorf("ticks: stream %d, full %d", st.TickCount, ticks)
			}
			if math.Abs(st.Concurrency()-conc) > 1e-9 {
				t.Errorf("concurrency: stream %v, full %v", st.Concurrency(), conc)
			}

			// Duration summary sanity.
			if st.Durations.N != st.Episodes {
				t.Errorf("duration summary n = %d", st.Durations.N)
			}
			if st.Durations.Total == 0 && st.Episodes > 0 {
				t.Error("duration summary empty")
			}
		})
	}
}

func TestAnalyzeFromReader(t *testing.T) {
	profile, _ := apps.ByName("SwingSet")
	recs, h, err := sim.Records(sim.Config{Profile: profile, Seed: 4, SessionSeconds: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Serialize and re-read through the binary codec.
	var sb strings.Builder
	w, err := lila.NewWriter(&sb, lila.FormatText, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := lila.NewReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Analyze(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.App != "SwingSet" || st.Episodes == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestStreamTriggerRules(t *testing.T) {
	ms := func(v float64) trace.Time { return trace.Time(trace.Ms(v)) }
	h := lila.Header{App: "t", GUIThread: 1, FilterThreshold: trace.DefaultFilterThreshold}
	episode := func(body ...*lila.Record) []*lila.Record {
		recs := []*lila.Record{
			{Type: lila.RecCall, Time: ms(0), Thread: 1, Kind: trace.KindDispatch},
		}
		recs = append(recs, body...)
		recs = append(recs,
			&lila.Record{Type: lila.RecReturn, Time: ms(50), Thread: 1},
			&lila.Record{Type: lila.RecEnd, Time: ms(100)})
		return recs
	}
	cases := []struct {
		name string
		recs []*lila.Record
		want analysis.Trigger
	}{
		{"async with paint is output", episode(
			&lila.Record{Type: lila.RecCall, Time: ms(1), Thread: 1, Kind: trace.KindAsync, Class: "q.E", Method: "d"},
			&lila.Record{Type: lila.RecCall, Time: ms(2), Thread: 1, Kind: trace.KindPaint, Class: "p.P", Method: "paint"},
			&lila.Record{Type: lila.RecReturn, Time: ms(10), Thread: 1},
			&lila.Record{Type: lila.RecReturn, Time: ms(20), Thread: 1},
		), analysis.TriggerOutput},
		{"async with listener stays async", episode(
			&lila.Record{Type: lila.RecCall, Time: ms(1), Thread: 1, Kind: trace.KindAsync, Class: "q.E", Method: "d"},
			&lila.Record{Type: lila.RecCall, Time: ms(2), Thread: 1, Kind: trace.KindListener, Class: "l.L", Method: "on"},
			&lila.Record{Type: lila.RecReturn, Time: ms(10), Thread: 1},
			&lila.Record{Type: lila.RecReturn, Time: ms(20), Thread: 1},
		), analysis.TriggerAsync},
		{"paint after closed async stays async", episode(
			&lila.Record{Type: lila.RecCall, Time: ms(1), Thread: 1, Kind: trace.KindAsync, Class: "q.E", Method: "d"},
			&lila.Record{Type: lila.RecReturn, Time: ms(10), Thread: 1},
			&lila.Record{Type: lila.RecCall, Time: ms(11), Thread: 1, Kind: trace.KindPaint, Class: "p.P", Method: "paint"},
			&lila.Record{Type: lila.RecReturn, Time: ms(20), Thread: 1},
		), analysis.TriggerAsync},
		{"native only is unspecified", episode(
			&lila.Record{Type: lila.RecCall, Time: ms(1), Thread: 1, Kind: trace.KindNative, Class: "n.N", Method: "c"},
			&lila.Record{Type: lila.RecReturn, Time: ms(10), Thread: 1},
		), analysis.TriggerUnspecified},
		{"listener wins over later paint", episode(
			&lila.Record{Type: lila.RecCall, Time: ms(1), Thread: 1, Kind: trace.KindListener, Class: "l.L", Method: "on"},
			&lila.Record{Type: lila.RecReturn, Time: ms(10), Thread: 1},
			&lila.Record{Type: lila.RecCall, Time: ms(11), Thread: 1, Kind: trace.KindPaint, Class: "p.P", Method: "paint"},
			&lila.Record{Type: lila.RecReturn, Time: ms(20), Thread: 1},
		), analysis.TriggerInput},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := AnalyzeRecords(h, tc.recs, 0)
			if err != nil {
				t.Fatal(err)
			}
			if st.Episodes != 1 {
				t.Fatalf("episodes = %d", st.Episodes)
			}
			if st.Triggers.Counts[tc.want] != 1 {
				t.Errorf("trigger counts = %v, want one %v", st.Triggers.Counts, tc.want)
			}
		})
	}
}

func TestStreamErrors(t *testing.T) {
	h := lila.Header{App: "t", GUIThread: 1}
	cases := []struct {
		name string
		recs []*lila.Record
	}{
		{"gcend without start", []*lila.Record{{Type: lila.RecGCEnd, Time: 5}}},
		{"nested gc", []*lila.Record{
			{Type: lila.RecGCStart, Time: 1},
			{Type: lila.RecGCStart, Time: 2},
		}},
		{"bad type", []*lila.Record{{Type: 99}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := AnalyzeRecords(h, tc.recs, 0); err == nil {
				t.Error("malformed stream accepted")
			}
		})
	}
	// Orphan returns on inactive threads are tolerated (they belong
	// to top-level non-dispatch intervals that never opened an
	// episode).
	if _, err := AnalyzeRecords(h, []*lila.Record{
		{Type: lila.RecCall, Time: 1, Thread: 2, Kind: trace.KindNative, Class: "n.N", Method: "m"},
		{Type: lila.RecReturn, Time: 2, Thread: 2},
		{Type: lila.RecEnd, Time: 10},
	}, 0); err != nil {
		t.Errorf("orphan interval rejected: %v", err)
	}
}

func TestStreamShortEpisodeFilter(t *testing.T) {
	ms := func(v float64) trace.Time { return trace.Time(trace.Ms(v)) }
	h := lila.Header{App: "t", GUIThread: 1, FilterThreshold: trace.DefaultFilterThreshold}
	recs := []*lila.Record{
		{Type: lila.RecCall, Time: ms(0), Thread: 1, Kind: trace.KindDispatch},
		{Type: lila.RecReturn, Time: ms(1), Thread: 1}, // 1 ms: filtered
		{Type: lila.RecCall, Time: ms(10), Thread: 1, Kind: trace.KindDispatch},
		{Type: lila.RecReturn, Time: ms(20), Thread: 1}, // kept
		{Type: lila.RecEnd, Time: ms(100), Count: 7},
	}
	st, err := AnalyzeRecords(h, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Episodes != 1 || st.ShortCount != 8 {
		t.Errorf("episodes=%d short=%d, want 1 and 8", st.Episodes, st.ShortCount)
	}
}

func TestStatsZeroValues(t *testing.T) {
	var st Stats
	if st.GCFrac() != 0 || st.NativeFrac() != 0 || st.Concurrency() != 0 || st.CauseFrac(trace.StateRunnable) != 0 {
		t.Error("zero stats should report zero fractions")
	}
}
