package diff

import (
	"strings"
	"testing"

	"lagalyzer/internal/patterns"
	"lagalyzer/internal/trace"
)

// build constructs a session from (class, durationsMs) behaviour specs
// and classifies it.
func build(spec map[string][]float64) *patterns.Set {
	var eps []*trace.Episode
	var start trace.Time
	// Deterministic iteration order for reproducible sessions.
	keys := make([]string, 0, len(spec))
	for k := range spec {
		keys = append(keys, k)
	}
	for _, k := range keys {
		for _, d := range spec[k] {
			root := trace.NewInterval(trace.KindDispatch, "", "", start, trace.Ms(d))
			root.AddChild(trace.NewInterval(trace.KindListener, k, "on", start, trace.Ms(d/2)))
			eps = append(eps, &trace.Episode{Index: len(eps), Thread: 1, Root: root})
			start = start.Add(trace.Ms(d) + trace.Second)
		}
	}
	s := &trace.Session{App: "d", GUIThread: 1, Start: 0, End: start.Add(trace.Second), Episodes: eps}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return patterns.Classify([]*trace.Session{s}, patterns.Options{})
}

func TestCompareVerdicts(t *testing.T) {
	oldSet := build(map[string][]float64{
		"app.Stable":    {10, 12, 11},
		"app.Regressor": {20, 22},
		"app.Improver":  {300, 320},
		"app.Gone":      {50},
	})
	newSet := build(map[string][]float64{
		"app.Stable":    {11, 10, 12},
		"app.Regressor": {150, 160}, // slowed past the threshold
		"app.Improver":  {40, 45},   // fixed
		"app.Fresh":     {30},
	})
	res, err := Compare(oldSet, newSet, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[Regressed] != 1 || res.Counts[Improved] != 1 ||
		res.Counts[Appeared] != 1 || res.Counts[Disappeared] != 1 || res.Counts[Unchanged] != 1 {
		t.Fatalf("counts = %v", res.Counts)
	}
	// Severity ordering: the regression leads.
	if res.Entries[0].Verdict != Regressed || !strings.Contains(res.Entries[0].Canon, "Regressor") {
		t.Errorf("first entry = %+v", res.Entries[0])
	}
	reg := res.Entries[0]
	if reg.DeltaPerceptible != 2 {
		t.Errorf("regression DeltaPerceptible = %d, want 2", reg.DeltaPerceptible)
	}
	if reg.DeltaAvg <= 0 {
		t.Errorf("regression DeltaAvg = %v", reg.DeltaAvg)
	}
	if res.OldPerceptible != 2 || res.NewPerceptible != 2 {
		t.Errorf("perceptible totals: %d -> %d", res.OldPerceptible, res.NewPerceptible)
	}

	out := res.Format(0)
	for _, want := range []string{"regressed", "appeared", "disappeared", "improved", "app.Fresh", "perceptible episodes: 2 -> 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "app.Stable") {
		t.Error("unchanged pattern should not be listed")
	}
}

func TestCompareTolerances(t *testing.T) {
	oldSet := build(map[string][]float64{"app.A": {100}})
	newSet := build(map[string][]float64{"app.A": {101}})
	res, err := Compare(oldSet, newSet, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries[0].Verdict != Unchanged {
		t.Errorf("1ms shift classified as %v", res.Entries[0].Verdict)
	}
	// Tight tolerances flip it.
	res, err = Compare(oldSet, newSet, Options{RelTolerance: 0.001, AbsTolerance: trace.Dur(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries[0].Verdict != Regressed {
		t.Errorf("tight tolerance verdict = %v", res.Entries[0].Verdict)
	}
}

func TestCompareRejectsMismatchedOptions(t *testing.T) {
	a := build(map[string][]float64{"app.A": {10}})
	var eps []*trace.Episode
	root := trace.NewInterval(trace.KindDispatch, "", "", 0, trace.Ms(10))
	root.AddChild(trace.NewInterval(trace.KindListener, "app.A", "on", 0, trace.Ms(5)))
	eps = append(eps, &trace.Episode{Index: 0, Thread: 1, Root: root})
	s := &trace.Session{App: "d", GUIThread: 1, Start: 0, End: trace.Time(trace.Second), Episodes: eps}
	b := patterns.Classify([]*trace.Session{s}, patterns.Options{KindOnly: true})
	if _, err := Compare(a, b, Options{}); err == nil {
		t.Error("mismatched classification options accepted")
	}
}

func TestCompareFormatLimit(t *testing.T) {
	oldSet := build(map[string][]float64{"app.A": {10}, "app.B": {10}, "app.C": {10}})
	newSet := build(map[string][]float64{"app.D": {10}, "app.E": {10}, "app.F": {10}})
	res, err := Compare(oldSet, newSet, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format(2)
	if !strings.Contains(out, "...") {
		t.Errorf("limited report should elide entries:\n%s", out)
	}
}

func TestNoChanges(t *testing.T) {
	a := build(map[string][]float64{"app.A": {10, 20}})
	b := build(map[string][]float64{"app.A": {11, 19}})
	res, err := Compare(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Format(0), "no pattern-level changes") {
		t.Error("quiet diff should say so")
	}
}

func TestVerdictString(t *testing.T) {
	names := map[Verdict]string{
		Unchanged: "unchanged", Improved: "improved", Regressed: "regressed",
		Appeared: "appeared", Disappeared: "disappeared",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
	if Verdict(9).String() != "verdict(9)" {
		t.Error("unknown verdict name")
	}
}
