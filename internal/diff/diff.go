// Package diff compares two pattern sets — typically the same
// application traced before and after a change — and reports where
// perceptible performance regressed or improved.
//
// LagAlyzer's purpose is to point developers at "patterns of bad
// performance" worth optimizing; the natural follow-up question after
// an optimization (or an upgrade) is what changed. Because patterns
// are structural fingerprints, they align across sessions of the same
// application: a pattern present in both runs can be compared by its
// lag statistics, and patterns appearing or disappearing usually mean
// behaviour changes (new features, removed code paths, or structural
// shifts caused by the change itself).
package diff

import (
	"fmt"
	"sort"
	"strings"

	"lagalyzer/internal/patterns"
	"lagalyzer/internal/trace"
)

// Verdict classifies one pattern's movement between two runs.
type Verdict int

const (
	// Unchanged: mean lag moved less than the tolerance.
	Unchanged Verdict = iota
	// Improved: mean lag dropped by more than the tolerance.
	Improved
	// Regressed: mean lag rose by more than the tolerance.
	Regressed
	// Appeared: the pattern exists only in the new run.
	Appeared
	// Disappeared: the pattern exists only in the old run.
	Disappeared
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Unchanged:
		return "unchanged"
	case Improved:
		return "improved"
	case Regressed:
		return "regressed"
	case Appeared:
		return "appeared"
	case Disappeared:
		return "disappeared"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Entry is one pattern's comparison.
type Entry struct {
	// Canon is the shared structural fingerprint.
	Canon string
	// Old and New are the pattern's two sides; one is nil for
	// Appeared/Disappeared entries.
	Old, New *patterns.Pattern
	// Verdict classifies the movement.
	Verdict Verdict
	// DeltaAvg is new minus old mean lag (0 when one side is
	// missing).
	DeltaAvg trace.Dur
	// DeltaPerceptible is the change in the number of perceptible
	// episodes (missing side counts as 0).
	DeltaPerceptible int
}

// Options tune the comparison.
type Options struct {
	// RelTolerance is the relative mean-lag change below which a
	// pattern counts as unchanged; 0 means 0.20 (±20 %).
	RelTolerance float64
	// AbsTolerance is the absolute mean-lag change below which a
	// pattern counts as unchanged regardless of the relative change;
	// 0 means 2 ms. It keeps micro-patterns from flapping.
	AbsTolerance trace.Dur
	// Threshold is the perceptibility threshold; 0 means 100 ms.
	Threshold trace.Dur
}

func (o Options) relTol() float64 {
	if o.RelTolerance > 0 {
		return o.RelTolerance
	}
	return 0.20
}

func (o Options) absTol() trace.Dur {
	if o.AbsTolerance > 0 {
		return o.AbsTolerance
	}
	return 2 * trace.Millisecond
}

func (o Options) threshold() trace.Dur {
	if o.Threshold > 0 {
		return o.Threshold
	}
	return trace.DefaultPerceptibleThreshold
}

// Result is a full comparison of two pattern sets.
type Result struct {
	// Entries holds every pattern of either side, ordered by severity:
	// regressions first (largest perceptible-lag growth leading),
	// then appearances, disappearances, improvements, and unchanged
	// patterns.
	Entries []Entry
	// Counts tallies entries per verdict.
	Counts map[Verdict]int
	// OldPerceptible and NewPerceptible are the total perceptible
	// episode counts of the two runs' classified episodes.
	OldPerceptible, NewPerceptible int
}

// Compare aligns two pattern sets by canonical fingerprint. Both sets
// should come from classifications with identical options, or the
// fingerprints will not align; Compare rejects mismatched options.
func Compare(oldSet, newSet *patterns.Set, opt Options) (*Result, error) {
	if oldSet.Options != newSet.Options {
		return nil, fmt.Errorf("diff: pattern sets classified with different options (%+v vs %+v)",
			oldSet.Options, newSet.Options)
	}
	th := opt.threshold()

	oldBy := make(map[string]*patterns.Pattern, len(oldSet.Patterns))
	for _, p := range oldSet.Patterns {
		oldBy[p.Canon] = p
	}
	res := &Result{Counts: make(map[Verdict]int)}
	seen := make(map[string]bool, len(newSet.Patterns))

	for _, np := range newSet.Patterns {
		seen[np.Canon] = true
		e := Entry{Canon: np.Canon, New: np}
		if op, ok := oldBy[np.Canon]; ok {
			e.Old = op
			e.DeltaAvg = np.AvgLag() - op.AvgLag()
			e.DeltaPerceptible = np.PerceptibleCount(th) - op.PerceptibleCount(th)
			switch {
			case absDur(e.DeltaAvg) <= opt.absTol(),
				op.AvgLag() > 0 && absDur(e.DeltaAvg) <= trace.Dur(float64(op.AvgLag())*opt.relTol()):
				e.Verdict = Unchanged
			case e.DeltaAvg > 0:
				e.Verdict = Regressed
			default:
				e.Verdict = Improved
			}
		} else {
			e.Verdict = Appeared
			e.DeltaPerceptible = np.PerceptibleCount(th)
		}
		res.Entries = append(res.Entries, e)
	}
	for _, op := range oldSet.Patterns {
		if seen[op.Canon] {
			continue
		}
		res.Entries = append(res.Entries, Entry{
			Canon: op.Canon, Old: op, Verdict: Disappeared,
			DeltaPerceptible: -op.PerceptibleCount(th),
		})
	}

	for _, p := range oldSet.Patterns {
		res.OldPerceptible += p.PerceptibleCount(th)
	}
	for _, p := range newSet.Patterns {
		res.NewPerceptible += p.PerceptibleCount(th)
	}
	for _, e := range res.Entries {
		res.Counts[e.Verdict]++
	}

	severity := map[Verdict]int{Regressed: 0, Appeared: 1, Disappeared: 2, Improved: 3, Unchanged: 4}
	sort.SliceStable(res.Entries, func(i, j int) bool {
		a, b := res.Entries[i], res.Entries[j]
		if severity[a.Verdict] != severity[b.Verdict] {
			return severity[a.Verdict] < severity[b.Verdict]
		}
		if a.DeltaPerceptible != b.DeltaPerceptible {
			return a.DeltaPerceptible > b.DeltaPerceptible
		}
		return absDur(a.DeltaAvg) > absDur(b.DeltaAvg)
	})
	return res, nil
}

func absDur(d trace.Dur) trace.Dur {
	if d < 0 {
		return -d
	}
	return d
}

// Format renders the comparison as a text report (up to limit entries;
// 0 means all non-unchanged entries plus a summary).
func (r *Result) Format(limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "patterns: %d regressed, %d appeared, %d disappeared, %d improved, %d unchanged\n",
		r.Counts[Regressed], r.Counts[Appeared], r.Counts[Disappeared], r.Counts[Improved], r.Counts[Unchanged])
	fmt.Fprintf(&b, "perceptible episodes: %d -> %d\n\n", r.OldPerceptible, r.NewPerceptible)

	shown := 0
	for _, e := range r.Entries {
		if e.Verdict == Unchanged {
			continue
		}
		if limit > 0 && shown >= limit {
			fmt.Fprintf(&b, "...\n")
			break
		}
		shown++
		canon := e.Canon
		if len(canon) > 60 {
			canon = canon[:57] + "..."
		}
		switch e.Verdict {
		case Appeared:
			fmt.Fprintf(&b, "%-11s ×%-5d avg %-9v %s\n", e.Verdict, e.New.Count(), e.New.AvgLag(), canon)
		case Disappeared:
			fmt.Fprintf(&b, "%-11s ×%-5d avg %-9v %s\n", e.Verdict, e.Old.Count(), e.Old.AvgLag(), canon)
		default:
			fmt.Fprintf(&b, "%-11s ×%-5d avg %v -> %v (Δ%+.1fms, perceptible %+d)  %s\n",
				e.Verdict, e.New.Count(), e.Old.AvgLag(), e.New.AvgLag(),
				e.DeltaAvg.Ms(), e.DeltaPerceptible, canon)
		}
	}
	if shown == 0 {
		b.WriteString("no pattern-level changes beyond tolerance\n")
	}
	return b.String()
}
