// Package faultinject produces deterministic, seeded input faults for
// robustness testing of the trace ingest pipeline.
//
// Real LiLa traces arrive from the field truncated (the profiled app
// or the profiler died), bit-flipped (flaky storage or transfer), and
// delivered through readers with awkward framing (short reads, network
// stalls). The salvage decoder and the graceful-degradation paths must
// survive all of that; this package manufactures the damage on demand
// so tests and the `make chaos` target can assert exactly what is
// recovered.
//
// Every scenario is a pure function of its inputs and seed: the same
// (data, seed) pair always yields the same corrupted bytes, so golden
// tests over salvaged traces stay reproducible.
package faultinject

import (
	"io"
	"time"
)

// rng is a splitmix64 generator — tiny, seedable, and stable across Go
// releases (unlike math/rand's unexported stream ordering guarantees,
// this sequence is pinned by the algorithm itself).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a deterministic value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Truncate returns the first n bytes of data (a copy). n past the end
// returns the whole input; negative n returns an empty slice.
func Truncate(data []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(data) {
		n = len(data)
	}
	out := make([]byte, n)
	copy(out, data)
	return out
}

// TruncateFrac truncates data to the given fraction of its length
// (0 ≤ frac ≤ 1).
func TruncateFrac(data []byte, frac float64) []byte {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return Truncate(data, int(float64(len(data))*frac))
}

// FlipBits returns a copy of data with n single-bit flips at
// deterministic, seed-derived positions within [lo, hi) (hi ≤ 0 means
// len(data)). Use lo to protect a header from damage when the test
// wants mid-stream corruption only.
func FlipBits(data []byte, seed uint64, n, lo, hi int) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if hi <= 0 || hi > len(out) {
		hi = len(out)
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return out
	}
	r := newRNG(seed)
	for i := 0; i < n; i++ {
		pos := lo + r.intn(hi-lo)
		out[pos] ^= 1 << r.intn(8)
	}
	return out
}

// CorruptRange overwrites [lo, hi) of a copy of data with seed-derived
// garbage — a burst error, as opposed to FlipBits' point errors.
func CorruptRange(data []byte, seed uint64, lo, hi int) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if hi > len(out) {
		hi = len(out)
	}
	if lo < 0 {
		lo = 0
	}
	r := newRNG(seed)
	for i := lo; i < hi; i++ {
		out[i] = byte(r.next())
	}
	return out
}

// NewTruncatingReader reads from r and reports io.ErrUnexpectedEOF
// after n bytes, simulating a connection or process that died
// mid-transfer.
func NewTruncatingReader(r io.Reader, n int64) io.Reader {
	return &truncatingReader{r: r, remaining: n}
}

type truncatingReader struct {
	r         io.Reader
	remaining int64
}

func (t *truncatingReader) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.r.Read(p)
	t.remaining -= int64(n)
	if err == io.EOF {
		return n, io.EOF
	}
	if t.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// NewShortReader reads from r but returns deterministically short
// reads (1..8 bytes at a time, seed-derived), exercising every
// resumption point in a decoder's buffering.
func NewShortReader(r io.Reader, seed uint64) io.Reader {
	return &shortReader{r: r, rng: newRNG(seed)}
}

type shortReader struct {
	r   io.Reader
	rng *rng
}

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return s.r.Read(p)
	}
	n := 1 + s.rng.intn(8)
	if n > len(p) {
		n = len(p)
	}
	return s.r.Read(p[:n])
}

// NewStallReader reads from r but sleeps for delay before every
// chunkth read (chunk ≤ 0 means every read) — a slow producer for
// deadline and cancellation tests. Keep delay tiny in tests.
func NewStallReader(r io.Reader, chunk int, delay time.Duration) io.Reader {
	if chunk <= 0 {
		chunk = 1
	}
	return &stallReader{r: r, chunk: chunk, delay: delay}
}

type stallReader struct {
	r     io.Reader
	chunk int
	calls int
	delay time.Duration
}

func (s *stallReader) Read(p []byte) (int, error) {
	s.calls++
	if s.calls%s.chunk == 0 {
		time.Sleep(s.delay)
	}
	return s.r.Read(p)
}
