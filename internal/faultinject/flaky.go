package faultinject

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FlakyTransport is the network half of the fault-injection layer: an
// http.RoundTripper that damages requests and responses on a
// deterministic plan, the way real distributed lagd deployments fail —
// connections refused by a dead worker, responses reset mid-body by a
// dropped TCP stream, stalls from an overloaded node, and truncated or
// bit-flipped partial-state payloads from a flaky proxy.
//
// Faults are chosen by a Plan: a pure function of the 1-based call
// number and the outgoing request, so a test's fault schedule is
// reproducible run to run regardless of goroutine interleaving. The
// provided plan constructors (HostPlan, FirstNPlan, PathPlan,
// SeededPlan) cover the common shapes; compose arbitrary schedules
// with a closure.

// Fault is one injected network failure mode.
type Fault int

const (
	// FaultNone lets the request through untouched.
	FaultNone Fault = iota
	// FaultRefuse fails the request before it is sent, as a refused
	// connection would (the worker process is gone).
	FaultRefuse
	// FaultReset delivers headers and roughly half the body, then
	// errors the stream — a TCP reset mid-transfer.
	FaultReset
	// FaultStall delays the request by the transport's Stall duration
	// before forwarding it (an overloaded or GC-pausing worker). The
	// request context still cancels the wait, so hedges and deadlines
	// observe the stall instead of being blocked by it.
	FaultStall
	// FaultTruncate delivers roughly half the body and then a clean
	// EOF — the payload looks complete to the stream but is short.
	FaultTruncate
	// FaultCorrupt delivers the full body with seed-derived bit flips —
	// wire damage that only a content checksum can catch.
	FaultCorrupt
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultRefuse:
		return "refuse"
	case FaultReset:
		return "reset"
	case FaultStall:
		return "stall"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// ErrRefused is the error a FaultRefuse round trip returns (wrapped in
// the *url.Error net/http clients surface).
var ErrRefused = errors.New("faultinject: connection refused")

// ErrReset is the mid-body error a FaultReset response stream returns.
var ErrReset = errors.New("faultinject: connection reset mid-body")

// FlakyTransport wraps an http.RoundTripper with plan-driven faults.
// Safe for concurrent use; the call counter is shared across
// goroutines, so plans keyed on the call number should tolerate
// concurrent interleaving (plans keyed on host or path do naturally).
type FlakyTransport struct {
	// Base performs the real round trips; nil uses
	// http.DefaultTransport.
	Base http.RoundTripper
	// Plan picks the fault for each call (1-based); nil injects
	// nothing. It damages the response (download) direction.
	Plan func(call int, req *http.Request) Fault
	// RequestPlan damages the request (upload) direction — the shape
	// hostile or unlucky streaming-ingest clients produce. The faults
	// map to: refuse (request never sent), stall (body pauses mid-
	// stream for Stall), truncate (clean EOF at half the body),
	// corrupt (seed-derived bit flips at absolute byte offsets, so the
	// damage is independent of chunking), reset (half the body, then a
	// stream error). nil injects nothing.
	RequestPlan func(call int, req *http.Request) Fault
	// RecordBodies retains every request body as actually delivered
	// upstream (after damage), retrievable via SentBodies — the
	// byte-exact pairing golden equivalence tests need.
	RecordBodies bool
	// Stall is the FaultStall delay (default 50ms).
	Stall time.Duration
	// Seed drives FaultCorrupt's bit-flip positions; each call mixes in
	// its call number, so repeated corruption of the same payload
	// damages different bytes.
	Seed uint64

	mu       sync.Mutex
	calls    int
	injected int
	sent     []SentBody
}

// SentBody is one recorded request-body delivery.
type SentBody struct {
	// Call is the transport-wide 1-based call number.
	Call int
	// Path is the request URL path.
	Path string
	// Fault is the request-direction fault applied.
	Fault Fault
	// Body is the payload as delivered (after damage).
	Body []byte
	// Reliable reports whether Body is byte-exact for what the server
	// received: true for none/stall/truncate/corrupt, false for
	// refuse (nothing sent) and reset (transport buffering may lose an
	// unflushed tail).
	Reliable bool
}

// SentBodies returns the recorded request deliveries in call order.
func (t *FlakyTransport) SentBodies() []SentBody {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SentBody, len(t.sent))
	copy(out, t.sent)
	return out
}

func (t *FlakyTransport) recordBody(sb SentBody) {
	if !t.RecordBodies {
		return
	}
	t.mu.Lock()
	t.sent = append(t.sent, sb)
	t.mu.Unlock()
}

// Calls returns how many round trips the transport has seen.
func (t *FlakyTransport) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

// Injected returns how many faults the transport has injected.
func (t *FlakyTransport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

func (t *FlakyTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *FlakyTransport) stall() time.Duration {
	if t.Stall > 0 {
		return t.Stall
	}
	return 50 * time.Millisecond
}

// RoundTrip implements http.RoundTripper with the planned fault
// applied to this call.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.calls++
	call := t.calls
	t.mu.Unlock()

	if t.RequestPlan != nil {
		var err error
		req, err = t.damageRequest(call, req)
		if err != nil {
			return nil, err
		}
	}

	fault := FaultNone
	if t.Plan != nil {
		fault = t.Plan(call, req)
	}
	if fault != FaultNone {
		t.mu.Lock()
		t.injected++
		t.mu.Unlock()
	}

	switch fault {
	case FaultRefuse:
		return nil, fmt.Errorf("%w (%s %s)", ErrRefused, req.Method, req.URL)
	case FaultStall:
		select {
		case <-time.After(t.stall()):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}

	resp, err := t.base().RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}

	switch fault {
	case FaultReset, FaultTruncate, FaultCorrupt:
		// Body faults buffer the real payload and re-serve a damaged
		// view; ContentLength is left as the server sent it, so a short
		// delivery looks exactly like a cut transfer.
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		switch fault {
		case FaultReset:
			resp.Body = io.NopCloser(&erroringReader{
				r: bytes.NewReader(data[:len(data)/2]), err: ErrReset})
		case FaultTruncate:
			resp.Body = io.NopCloser(bytes.NewReader(data[:len(data)/2]))
		case FaultCorrupt:
			resp.Body = io.NopCloser(bytes.NewReader(
				FlipBits(data, t.Seed+uint64(call), 16, 0, 0)))
		}
	}
	return resp, nil
}

// damageRequest applies the RequestPlan fault to one outgoing request,
// buffering the body so the damage is deterministic over absolute byte
// offsets regardless of how the client chunked its writes.
func (t *FlakyTransport) damageRequest(call int, req *http.Request) (*http.Request, error) {
	fault := t.RequestPlan(call, req)
	if fault != FaultNone {
		t.mu.Lock()
		t.injected++
		t.mu.Unlock()
	}
	if fault == FaultRefuse {
		t.recordBody(SentBody{Call: call, Path: req.URL.Path, Fault: fault})
		return nil, fmt.Errorf("%w (%s %s)", ErrRefused, req.Method, req.URL)
	}
	if req.Body == nil {
		return req, nil
	}
	data, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return nil, err
	}
	out := req.Clone(req.Context())
	out.GetBody = nil // damaged uploads must not be transparently retried
	sb := SentBody{Call: call, Path: req.URL.Path, Fault: fault, Reliable: true}
	switch fault {
	case FaultNone:
		out.Body = io.NopCloser(bytes.NewReader(data))
		out.ContentLength = int64(len(data))
		sb.Body = data
	case FaultStall:
		out.Body = io.NopCloser(&stallingBody{
			data: data, at: len(data) / 2, delay: t.stall(), ctx: req.Context()})
		out.ContentLength = int64(len(data))
		sb.Body = data
	case FaultTruncate:
		cut := data[:len(data)/2]
		out.Body = io.NopCloser(bytes.NewReader(cut))
		out.ContentLength = int64(len(cut))
		sb.Body = cut
	case FaultCorrupt:
		dam := FlipBits(data, t.Seed+uint64(call), 16, 0, 0)
		out.Body = io.NopCloser(bytes.NewReader(dam))
		out.ContentLength = int64(len(dam))
		sb.Body = dam
	case FaultReset:
		half := data[:len(data)/2]
		out.Body = io.NopCloser(&erroringReader{r: bytes.NewReader(half), err: ErrReset})
		// Promise the full length so the short delivery is an abort,
		// not a clean end.
		out.ContentLength = int64(len(data))
		sb.Body = half
		sb.Reliable = false
	}
	t.recordBody(sb)
	return out, nil
}

// stallingBody serves data but pauses once, mid-stream, for delay —
// the slow-loris shape. The request context cuts the pause short.
type stallingBody struct {
	data    []byte
	off     int
	at      int
	delay   time.Duration
	stalled bool
	ctx     context.Context
}

func (s *stallingBody) Read(p []byte) (int, error) {
	if s.off >= len(s.data) {
		return 0, io.EOF
	}
	if !s.stalled && s.off >= s.at {
		s.stalled = true
		select {
		case <-time.After(s.delay):
		case <-s.ctx.Done():
			return 0, s.ctx.Err()
		}
	}
	// Stop at the stall point so the pause lands between chunks.
	end := len(s.data)
	if !s.stalled && s.at > s.off && s.at < end {
		end = s.at
	}
	n := copy(p, s.data[s.off:end])
	s.off += n
	return n, nil
}

// erroringReader yields r's bytes, then err instead of EOF.
type erroringReader struct {
	r   io.Reader
	err error
}

func (e *erroringReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		err = e.err
	}
	return n, err
}

// HostPlan applies fault to every request whose URL host matches host.
func HostPlan(host string, fault Fault) func(int, *http.Request) Fault {
	return func(_ int, req *http.Request) Fault {
		if req.URL.Host == host {
			return fault
		}
		return FaultNone
	}
}

// FirstNPlan applies fault to the first n calls, then lets everything
// through — the "worker was sick for a moment" schedule.
func FirstNPlan(n int, fault Fault) func(int, *http.Request) Fault {
	return func(call int, _ *http.Request) Fault {
		if call <= n {
			return fault
		}
		return FaultNone
	}
}

// PathPlan applies fault to the first n requests whose URL path
// contains substr (n ≤ 0 means every matching request).
func PathPlan(substr string, n int, fault Fault) func(int, *http.Request) Fault {
	var mu sync.Mutex
	hits := 0
	return func(_ int, req *http.Request) Fault {
		if !strings.Contains(req.URL.Path, substr) {
			return FaultNone
		}
		mu.Lock()
		defer mu.Unlock()
		hits++
		if n > 0 && hits > n {
			return FaultNone
		}
		return fault
	}
}

// SeededPlan injects fault on a deterministic pseudo-random subset of
// calls: each call flips an independent seed-derived coin with
// probability num/den. Useful for soak-style chaos runs where the
// schedule should be arbitrary but reproducible.
func SeededPlan(seed uint64, num, den int, fault Fault) func(int, *http.Request) Fault {
	return func(call int, _ *http.Request) Fault {
		r := newRNG(seed + uint64(call))
		if r.intn(den) < num {
			return fault
		}
		return FaultNone
	}
}
