package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FlakyTransport is the network half of the fault-injection layer: an
// http.RoundTripper that damages requests and responses on a
// deterministic plan, the way real distributed lagd deployments fail —
// connections refused by a dead worker, responses reset mid-body by a
// dropped TCP stream, stalls from an overloaded node, and truncated or
// bit-flipped partial-state payloads from a flaky proxy.
//
// Faults are chosen by a Plan: a pure function of the 1-based call
// number and the outgoing request, so a test's fault schedule is
// reproducible run to run regardless of goroutine interleaving. The
// provided plan constructors (HostPlan, FirstNPlan, PathPlan,
// SeededPlan) cover the common shapes; compose arbitrary schedules
// with a closure.

// Fault is one injected network failure mode.
type Fault int

const (
	// FaultNone lets the request through untouched.
	FaultNone Fault = iota
	// FaultRefuse fails the request before it is sent, as a refused
	// connection would (the worker process is gone).
	FaultRefuse
	// FaultReset delivers headers and roughly half the body, then
	// errors the stream — a TCP reset mid-transfer.
	FaultReset
	// FaultStall delays the request by the transport's Stall duration
	// before forwarding it (an overloaded or GC-pausing worker). The
	// request context still cancels the wait, so hedges and deadlines
	// observe the stall instead of being blocked by it.
	FaultStall
	// FaultTruncate delivers roughly half the body and then a clean
	// EOF — the payload looks complete to the stream but is short.
	FaultTruncate
	// FaultCorrupt delivers the full body with seed-derived bit flips —
	// wire damage that only a content checksum can catch.
	FaultCorrupt
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultRefuse:
		return "refuse"
	case FaultReset:
		return "reset"
	case FaultStall:
		return "stall"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// ErrRefused is the error a FaultRefuse round trip returns (wrapped in
// the *url.Error net/http clients surface).
var ErrRefused = errors.New("faultinject: connection refused")

// ErrReset is the mid-body error a FaultReset response stream returns.
var ErrReset = errors.New("faultinject: connection reset mid-body")

// FlakyTransport wraps an http.RoundTripper with plan-driven faults.
// Safe for concurrent use; the call counter is shared across
// goroutines, so plans keyed on the call number should tolerate
// concurrent interleaving (plans keyed on host or path do naturally).
type FlakyTransport struct {
	// Base performs the real round trips; nil uses
	// http.DefaultTransport.
	Base http.RoundTripper
	// Plan picks the fault for each call (1-based); nil injects
	// nothing.
	Plan func(call int, req *http.Request) Fault
	// Stall is the FaultStall delay (default 50ms).
	Stall time.Duration
	// Seed drives FaultCorrupt's bit-flip positions; each call mixes in
	// its call number, so repeated corruption of the same payload
	// damages different bytes.
	Seed uint64

	mu       sync.Mutex
	calls    int
	injected int
}

// Calls returns how many round trips the transport has seen.
func (t *FlakyTransport) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

// Injected returns how many faults the transport has injected.
func (t *FlakyTransport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

func (t *FlakyTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *FlakyTransport) stall() time.Duration {
	if t.Stall > 0 {
		return t.Stall
	}
	return 50 * time.Millisecond
}

// RoundTrip implements http.RoundTripper with the planned fault
// applied to this call.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.calls++
	call := t.calls
	t.mu.Unlock()

	fault := FaultNone
	if t.Plan != nil {
		fault = t.Plan(call, req)
	}
	if fault != FaultNone {
		t.mu.Lock()
		t.injected++
		t.mu.Unlock()
	}

	switch fault {
	case FaultRefuse:
		return nil, fmt.Errorf("%w (%s %s)", ErrRefused, req.Method, req.URL)
	case FaultStall:
		select {
		case <-time.After(t.stall()):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}

	resp, err := t.base().RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}

	switch fault {
	case FaultReset, FaultTruncate, FaultCorrupt:
		// Body faults buffer the real payload and re-serve a damaged
		// view; ContentLength is left as the server sent it, so a short
		// delivery looks exactly like a cut transfer.
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		switch fault {
		case FaultReset:
			resp.Body = io.NopCloser(&erroringReader{
				r: bytes.NewReader(data[:len(data)/2]), err: ErrReset})
		case FaultTruncate:
			resp.Body = io.NopCloser(bytes.NewReader(data[:len(data)/2]))
		case FaultCorrupt:
			resp.Body = io.NopCloser(bytes.NewReader(
				FlipBits(data, t.Seed+uint64(call), 16, 0, 0)))
		}
	}
	return resp, nil
}

// erroringReader yields r's bytes, then err instead of EOF.
type erroringReader struct {
	r   io.Reader
	err error
}

func (e *erroringReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		err = e.err
	}
	return n, err
}

// HostPlan applies fault to every request whose URL host matches host.
func HostPlan(host string, fault Fault) func(int, *http.Request) Fault {
	return func(_ int, req *http.Request) Fault {
		if req.URL.Host == host {
			return fault
		}
		return FaultNone
	}
}

// FirstNPlan applies fault to the first n calls, then lets everything
// through — the "worker was sick for a moment" schedule.
func FirstNPlan(n int, fault Fault) func(int, *http.Request) Fault {
	return func(call int, _ *http.Request) Fault {
		if call <= n {
			return fault
		}
		return FaultNone
	}
}

// PathPlan applies fault to the first n requests whose URL path
// contains substr (n ≤ 0 means every matching request).
func PathPlan(substr string, n int, fault Fault) func(int, *http.Request) Fault {
	var mu sync.Mutex
	hits := 0
	return func(_ int, req *http.Request) Fault {
		if !strings.Contains(req.URL.Path, substr) {
			return FaultNone
		}
		mu.Lock()
		defer mu.Unlock()
		hits++
		if n > 0 && hits > n {
			return FaultNone
		}
		return fault
	}
}

// SeededPlan injects fault on a deterministic pseudo-random subset of
// calls: each call flips an independent seed-derived coin with
// probability num/den. Useful for soak-style chaos runs where the
// schedule should be arbitrary but reproducible.
func SeededPlan(seed uint64, num, den int, fault Fault) func(int, *http.Request) Fault {
	return func(call int, _ *http.Request) Fault {
		r := newRNG(seed + uint64(call))
		if r.intn(den) < num {
			return fault
		}
		return FaultNone
	}
}
