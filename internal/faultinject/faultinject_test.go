package faultinject

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func TestTruncate(t *testing.T) {
	data := []byte("0123456789")
	if got := Truncate(data, 4); string(got) != "0123" {
		t.Errorf("Truncate(4) = %q", got)
	}
	if got := Truncate(data, 99); string(got) != "0123456789" {
		t.Errorf("Truncate(99) = %q", got)
	}
	if got := Truncate(data, -1); len(got) != 0 {
		t.Errorf("Truncate(-1) = %q", got)
	}
	if got := TruncateFrac(data, 0.5); string(got) != "01234" {
		t.Errorf("TruncateFrac(0.5) = %q", got)
	}
	// Truncate copies: mutating the result must not touch the input.
	cp := Truncate(data, 10)
	cp[0] = 'X'
	if data[0] != '0' {
		t.Error("Truncate aliases its input")
	}
}

func TestFlipBitsDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte{0}, 256)
	a := FlipBits(data, 7, 10, 16, 0)
	b := FlipBits(data, 7, 10, 16, 0)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	c := FlipBits(data, 8, 10, 16, 0)
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical corruption")
	}
	// The protected prefix is untouched.
	if !bytes.Equal(a[:16], data[:16]) {
		t.Error("FlipBits damaged the protected prefix")
	}
	// Something actually changed past it.
	if bytes.Equal(a[16:], data[16:]) {
		t.Error("FlipBits flipped nothing")
	}
	// Degenerate range is a no-op.
	if got := FlipBits(data, 7, 10, 5, 5); !bytes.Equal(got, data) {
		t.Error("empty range mutated data")
	}
}

func TestCorruptRange(t *testing.T) {
	data := bytes.Repeat([]byte{'a'}, 64)
	got := CorruptRange(data, 3, 10, 20)
	if !bytes.Equal(got[:10], data[:10]) || !bytes.Equal(got[20:], data[20:]) {
		t.Error("corruption leaked outside the range")
	}
	if bytes.Equal(got[10:20], data[10:20]) {
		t.Error("range not corrupted")
	}
	again := CorruptRange(data, 3, 10, 20)
	if !bytes.Equal(got, again) {
		t.Error("CorruptRange not deterministic")
	}
}

func TestTruncatingReader(t *testing.T) {
	src := strings.Repeat("x", 100)
	r := NewTruncatingReader(strings.NewReader(src), 37)
	got, err := io.ReadAll(r)
	if err != io.ErrUnexpectedEOF {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
	if len(got) != 37 {
		t.Errorf("read %d bytes, want 37", len(got))
	}
	// A limit beyond the source just yields clean EOF.
	r = NewTruncatingReader(strings.NewReader("abc"), 10)
	got, err = io.ReadAll(r)
	if err != nil || string(got) != "abc" {
		t.Errorf("ReadAll = %q, %v", got, err)
	}
}

func TestShortReader(t *testing.T) {
	src := strings.Repeat("y", 500)
	r := NewShortReader(strings.NewReader(src), 42)
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n > 8 || n < 1 {
		t.Errorf("first read = %d bytes, want 1..8", n)
	}
	got, err := io.ReadAll(io.MultiReader(bytes.NewReader(buf[:n]), r))
	if err != nil || string(got) != src {
		t.Errorf("short reads lost data: %d bytes, err %v", len(got), err)
	}
}

func TestStallReader(t *testing.T) {
	r := NewStallReader(strings.NewReader("abcdef"), 1, time.Millisecond)
	start := time.Now()
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "abcdef" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("stall reader did not stall")
	}
}

func TestRNGStable(t *testing.T) {
	// Pin the splitmix64 stream: salvage golden tests depend on it.
	r := newRNG(1)
	want := []uint64{0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e}
	for i, w := range want {
		if got := r.next(); got != w {
			t.Fatalf("next()[%d] = %#x, want %#x", i, got, w)
		}
	}
}
