package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// flakyClient wires a FlakyTransport in front of a test server serving
// a fixed payload.
func flakyClient(t *testing.T, payload string, ft *FlakyTransport) (*http.Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	t.Cleanup(ts.Close)
	return &http.Client{Transport: ft}, ts
}

func TestFlakyTransportRefuse(t *testing.T) {
	ft := &FlakyTransport{Plan: FirstNPlan(1, FaultRefuse)}
	client, ts := flakyClient(t, "ok", ft)

	if _, err := client.Get(ts.URL); !errors.Is(err, ErrRefused) {
		t.Fatalf("first call err = %v, want ErrRefused", err)
	}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("second call should pass: %v", err)
	}
	resp.Body.Close()
	if ft.Calls() != 2 || ft.Injected() != 1 {
		t.Errorf("calls=%d injected=%d, want 2/1", ft.Calls(), ft.Injected())
	}
}

func TestFlakyTransportBodyFaults(t *testing.T) {
	payload := strings.Repeat("lagalyzer-partial-state-", 64)

	t.Run("reset", func(t *testing.T) {
		ft := &FlakyTransport{Plan: FirstNPlan(1, FaultReset)}
		client, ts := flakyClient(t, payload, ft)
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if !errors.Is(err, ErrReset) {
			t.Fatalf("read err = %v, want ErrReset", err)
		}
		if len(data) >= len(payload) {
			t.Errorf("reset delivered the whole body (%d bytes)", len(data))
		}
	})

	t.Run("truncate", func(t *testing.T) {
		ft := &FlakyTransport{Plan: FirstNPlan(1, FaultTruncate)}
		client, ts := flakyClient(t, payload, ft)
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if len(data) != len(payload)/2 {
			t.Errorf("truncate delivered %d bytes, want %d", len(data), len(payload)/2)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		ft := &FlakyTransport{Plan: FirstNPlan(1, FaultCorrupt), Seed: 99}
		client, ts := flakyClient(t, payload, ft)
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) == payload {
			t.Error("corrupt delivered an undamaged body")
		}
		if len(data) != len(payload) {
			t.Errorf("corrupt changed the length: %d, want %d", len(data), len(payload))
		}
	})
}

func TestFlakyTransportStallHonorsContext(t *testing.T) {
	ft := &FlakyTransport{Plan: FirstNPlan(1, FaultStall), Stall: 10 * time.Second}
	client, ts := flakyClient(t, "ok", ft)
	client.Timeout = 30 * time.Millisecond
	start := time.Now()
	_, err := client.Get(ts.URL)
	if err == nil {
		t.Fatal("stalled request succeeded under a 30ms client timeout")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall ignored cancellation: took %s", elapsed)
	}
}

func TestFlakyPlans(t *testing.T) {
	req := func(url string) *http.Request {
		r, err := http.NewRequest("GET", url, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	host := HostPlan("worker-2:80", FaultRefuse)
	if f := host(1, req("http://worker-2:80/jobs")); f != FaultRefuse {
		t.Errorf("HostPlan miss on matching host: %v", f)
	}
	if f := host(1, req("http://worker-1:80/jobs")); f != FaultNone {
		t.Errorf("HostPlan hit on other host: %v", f)
	}

	path := PathPlan("/state", 1, FaultCorrupt)
	if f := path(1, req("http://w/jobs/job-1/state")); f != FaultCorrupt {
		t.Errorf("PathPlan first matching call: %v", f)
	}
	if f := path(2, req("http://w/jobs/job-2/state")); f != FaultNone {
		t.Errorf("PathPlan second matching call should pass: %v", f)
	}

	// SeededPlan is a pure function of (seed, call): identical across
	// instances, different across seeds somewhere in a window.
	a := SeededPlan(7, 1, 4, FaultReset)
	b := SeededPlan(7, 1, 4, FaultReset)
	c := SeededPlan(8, 1, 4, FaultReset)
	same, diff := true, false
	for call := 1; call <= 64; call++ {
		fa, fb, fc := a(call, nil), b(call, nil), c(call, nil)
		if fa != fb {
			same = false
		}
		if fa != fc {
			diff = true
		}
	}
	if !same {
		t.Error("SeededPlan not deterministic for identical seeds")
	}
	if !diff {
		t.Error("SeededPlan identical across different seeds")
	}
}
