// Package apps defines the study's 14 application profiles (Table II
// of the paper) for the session simulator.
//
// Each profile is calibrated against the paper's published
// measurements: Table III's per-application session statistics (E2E
// time, in-episode fraction, episode counts below/above the trace
// filter and above the perceptibility threshold, pattern counts and
// structure), and the per-application findings called out in Section
// IV (trigger mixes of Figure 5, the location split of Figure 6, the
// concurrency of Figure 7, and the blocked/wait/sleep causes of
// Figure 8).
//
// Calibration recipe (documented here because the numbers in the
// profiles are otherwise opaque):
//
//   - think-time mean  = (1-InEps) * E2E / Traced
//   - mean episode dur = InEps * E2E / Traced
//   - episode-duration log-normals are solved from (mean, perceptible
//     fraction) via mean = median*exp(sigma²/2) and
//     P(X ≥ 100ms) = Phi((ln median - ln 100)/sigma); when no single
//     log-normal satisfies both (JMol, JFreeChart), a two-component
//     mixture is used;
//   - ShortPerSecond   = "<3ms" count / E2E.
//
// Absolute-number matching is not the goal (the substrate is a
// simulator); the study-level *shape* — which applications are worst,
// which causes dominate where — is.
package apps

import (
	"fmt"

	"lagalyzer/internal/sim"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// Catalog returns the 14 study profiles in Table II order.
func Catalog() []*sim.Profile {
	return []*sim.Profile{
		Arabeske(),
		ArgoUML(),
		CrosswordSage(),
		Euclide(),
		FindBugs(),
		FreeMind(),
		GanttProject(),
		JEdit(),
		JFreeChart(),
		JHotDraw(),
		Jmol(),
		Laoe(),
		NetBeans(),
		SwingSet(),
	}
}

// ByName returns the profile with the given (case-sensitive) name.
func ByName(name string) (*sim.Profile, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// Names returns the catalog's application names in order.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, p := range cat {
		names[i] = p.Name
	}
	return names
}

// dur builds the standard clamped log-normal episode-duration
// distribution: clamped below at just above the trace filter (the
// profiler would not deliver shorter episodes) and above at 20 s to
// keep draws physical.
func dur(medianMs, sigma float64) stats.Dist {
	return stats.Clamped{D: stats.LogNormal{Median: medianMs, Sigma: sigma}, Lo: 3.3, Hi: 20000}
}

// slowDur builds a duration distribution for rare, reliably
// perceptible behaviors (initialization, modal dialogs, System.gc()).
func slowDur(medianMs, sigma float64) stats.Dist {
	return stats.Clamped{D: stats.LogNormal{Median: medianMs, Sigma: sigma}, Lo: 110, Hi: 20000}
}

// defaultHeap is the baseline allocation/GC model: a collection every
// ~600 ms of episode work, minor pauses of 8-25 ms, an occasional
// major collection, and the safepoint ramp plus post-GC scheduling
// delay responsible for the Figure 1 sampling gap.
func defaultHeap() sim.HeapConfig {
	return sim.HeapConfig{
		CapacityMB:        24,
		AllocMBPerSec:     40,
		IdleAllocMBPerSec: 0.4,
		MinorPauseMs:      stats.Uniform{Lo: 8, Hi: 25},
		MajorEvery:        14,
		MajorPauseMs:      stats.Uniform{Lo: 60, Hi: 160},
		RampMs:            stats.Uniform{Lo: 0.2, Hi: 3},
		PostDelayMs:       stats.Uniform{Lo: 0.5, Hi: 8},
	}
}

// paintChain nests paint intervals class-by-class (outermost first),
// giving each level an equal share of `weight` and attaching `leaves`
// below the innermost level. It reproduces the recursive
// component-tree painting of Swing (Figure 2's GanttProject sketch).
func paintChain(weight float64, classes []string, leaves ...sim.Node) sim.Node {
	per := weight / float64(len(classes))
	node := sim.Node{
		Kind: trace.KindPaint, Class: classes[len(classes)-1], Method: "paint",
		Weight: per, Children: leaves,
	}
	for i := len(classes) - 2; i >= 0; i-- {
		children := []sim.Node{node}
		if i == 0 {
			// The outermost paint also repaints minor chrome that
			// only shows up in long episodes; see revealed.
			children = append(children, revealed("javax.swing.CellRendererPane"))
		}
		node = sim.Node{
			Kind: trace.KindPaint, Class: classes[i], Method: "paint",
			Weight: per, Children: children,
		}
	}
	return node
}

// swingPaintClasses is the standard frame-to-content paint cascade of
// a Swing window (Figure 1's JFrame → JRootPane → JLayeredPane chain).
func swingPaintClasses(content ...string) []string {
	return append([]string{
		"javax.swing.JFrame",
		"javax.swing.JRootPane",
		"javax.swing.JLayeredPane",
	}, content...)
}

// listener builds a listener node. Every listener carries a trailing
// revealed() paint (see revealed for why).
func listener(class, method string, weight float64, children ...sim.Node) sim.Node {
	children = append(children, revealed("javax.swing.CellRendererPane"))
	return sim.Node{Kind: trace.KindListener, Class: class, Method: method, Weight: weight, Children: children}
}

// paint builds a paint node.
func paint(class string, weight float64, children ...sim.Node) sim.Node {
	return sim.Node{Kind: trace.KindPaint, Class: class, Method: "paint", Weight: weight, Children: children}
}

// native builds a native (JNI) node.
func native(class, method string, weight float64) sim.Node {
	return sim.Node{Kind: trace.KindNative, Class: class, Method: method, Weight: weight}
}

// async builds an async (background-posted event) node.
func async(class string, weight float64, children ...sim.Node) sim.Node {
	return sim.Node{Kind: trace.KindAsync, Class: class, Method: "dispatch", Weight: weight, Children: children}
}

// pooledPaints builds a paint node whose class is drawn per instance
// from a pool and which repeats 0..max times. Pools × repeats are the
// main source of structural pattern diversity: fast episodes filter
// most instances out (the profiler drops sub-3ms intervals), while
// slow episodes retain many, landing in rare — often singleton —
// patterns. This reproduces Table III's pattern counts and Figure 4's
// perceptible-singleton "always" patterns.
func pooledPaints(pool []string, weight float64, max int, children ...sim.Node) sim.Node {
	return sim.Node{
		Kind: trace.KindPaint, ClassPool: pool, Method: "paint",
		Weight: weight, Repeat: stats.UniformInt{Lo: 0, Hi: max},
		Children: children,
	}
}

// revealed builds a tiny paint node (weight ≈ 0.03 of the episode)
// that only rises above the 3 ms trace filter in episodes around the
// perceptibility threshold and beyond. Real traces show the same
// effect — long episodes reveal minor activity (status lines, border
// repaints) that short episodes hide below the filter — and it is what
// keeps Figure 4's occurrence classes clean: the slow variants of a
// behaviour land in different (often "always") patterns than the fast
// ones, instead of smearing everything into "sometimes".
func revealed(class string) sim.Node {
	return sim.Node{Kind: trace.KindPaint, Class: class, Method: "paint", Weight: 0.032}
}

// optional marks a node as included with probability p.
func optional(n sim.Node, p float64) sim.Node {
	n.Prob = p
	return n
}

// repeated replicates a node between lo and hi times.
func repeated(n sim.Node, lo, hi int) sim.Node {
	n.Repeat = stats.UniformInt{Lo: lo, Hi: hi}
	return n
}
