package apps

import (
	"lagalyzer/internal/sim"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// Arabeske is the texture editor. Targets: E2E 461 s, In-Eps 25 %,
// 324k/6278/177 episodes, Long/min 95, 427 patterns (62 % singleton).
// Standouts (§IV-C, §IV-D): 57 % of perceptible episodes are
// *unspecified* — the program calls System.gc() during interactive
// episodes, producing empty episodes holding one long major
// collection — and GC accounts for ~60 % of perceptible lag.
// Concurrency slightly above 1 (texture-generation background thread).
func Arabeske() *sim.Profile {
	ui := []string{
		"org.arabeske.ui.TextureView", "org.arabeske.ui.PalettePanel",
		"org.arabeske.ui.PreviewPane", "org.arabeske.ui.SymmetryChooser",
		"org.arabeske.ui.LayerList", "org.arabeske.ui.RulerPane",
		"org.arabeske.ui.StatusBar",
	}
	tiles := []string{
		"org.arabeske.render.TileRenderer", "org.arabeske.render.EdgeRenderer",
		"org.arabeske.render.MotifRenderer", "org.arabeske.render.BorderRenderer",
		"org.arabeske.render.GridOverlay",
	}
	return &sim.Profile{
		Name: "Arabeske", Version: "2.0.1", Classes: 222,
		Description: "Arabeske texture editor",
		AppPackage:  "org.arabeske",

		SessionSeconds: 461,
		ThinkTimeMs:    stats.Exp{MeanV: 55},
		ShortPerSecond: 702,
		LibraryFrac:    0.5,

		UserBehaviors: []*sim.Behavior{
			{
				Name: "drag-draw", Weight: 40,
				DurMs: dur(5.2, 1.17),
				Nodes: []sim.Node{
					listener("org.arabeske.ui.ToolController", "mouseDragged", 0.5,
						pooledPaints(ui, 0.12, 3,
							optional(pooledPaints(tiles, 0.07, 2), 0.6)),
						optional(native("sun.java2d.loops.Blit", "Blit", 0.07), 0.3),
					),
				},
			},
			{
				Name: "palette-edit", Weight: 28,
				DurMs: dur(5.2, 1.17),
				Nodes: []sim.Node{
					listener("org.arabeske.ui.PaletteHandler", "actionPerformed", 0.55,
						pooledPaints(ui, 0.13, 3,
							optional(pooledPaints(tiles, 0.07, 1), 0.4)),
					),
				},
			},
			{
				Name: "repaint", Weight: 30,
				DurMs: dur(5.2, 1.35),
				Nodes: []sim.Node{
					paintChain(0.45, swingPaintClasses("org.arabeske.ui.TextureView"),
						pooledPaints(tiles, 0.11, 3),
						optional(native("sun.java2d.loops.DrawLine", "DrawLine", 0.08), 0.3)),
				},
			},
			{
				// The System.gc() behaviour: the tiny listener falls
				// below the trace filter, so the episode's only
				// visible content is the collection — unspecified
				// trigger, almost fully GC.
				Name: "system-gc", Weight: 1.4,
				DurMs: slowDur(160, 0.45),
				Nodes: []sim.Node{
					{Kind: trace.KindListener, Class: "org.arabeske.ui.CleanupAction", Method: "actionPerformed",
						Weight: 0.0001, ExplicitGC: true},
				},
			},
		},

		Heap: sim.HeapConfig{
			CapacityMB:        24,
			AllocMBPerSec:     45,
			IdleAllocMBPerSec: 0.4,
			MinorPauseMs:      stats.Uniform{Lo: 8, Hi: 25},
			MajorEvery:        0, // majors come from System.gc()
			MajorPauseMs:      stats.Uniform{Lo: 150, Hi: 550},
			RampMs:            stats.Uniform{Lo: 0.2, Hi: 3},
			PostDelayMs:       stats.Uniform{Lo: 0.5, Hi: 8},
		},
		Background: []*sim.BackgroundThread{
			{Name: "texture-generator", ActiveFrom: 30, ActiveTo: 340, Duty: 0.45, AllocMBPerSec: 2,
				Stack: []trace.Frame{
					{Class: "org.arabeske.render.Generator", Method: "generateTile"},
					{Class: "org.arabeske.render.Generator", Method: "run"},
					{Class: "java.lang.Thread", Method: "run"},
				}},
		},
	}
}

// ArgoUML is the UML CASE tool. Targets: E2E 630 s, In-Eps 35 %,
// 196k/9066/265 episodes, and the most patterns of the suite (1292,
// 66 % singleton — "these episodes belong to many different patterns,
// representing the complexity of the application", §IV-C). Standouts:
// 78 % of perceptible episodes are input (model updates with
// expensive checks); GC takes 26 % of perceptible and 16 % of all
// episode time — a generally high allocation rate (§IV-D).
func ArgoUML() *sim.Profile {
	figs := []string{
		"org.argouml.uml.diagram.ui.FigClass", "org.argouml.uml.diagram.ui.FigInterface",
		"org.argouml.uml.diagram.ui.FigEdgeAssociation", "org.argouml.uml.diagram.ui.FigPackage",
		"org.argouml.uml.diagram.ui.FigActor", "org.argouml.uml.diagram.ui.FigUseCase",
		"org.argouml.uml.diagram.ui.FigStateVertex", "org.argouml.uml.diagram.ui.FigTransition",
	}
	panels := []string{
		"org.argouml.ui.TabProps", "org.argouml.ui.TabDocumentation",
		"org.argouml.ui.TabStyle", "org.argouml.ui.TabSource",
		"org.argouml.ui.explorer.ExplorerTree", "org.argouml.ui.TabToDo",
	}
	return &sim.Profile{
		Name: "ArgoUML", Version: "0.28", Classes: 5349,
		Description: "UML CASE tool",
		AppPackage:  "org.argouml",

		SessionSeconds: 630,
		ThinkTimeMs:    stats.Exp{MeanV: 45},
		ShortPerSecond: 311,
		LibraryFrac:    0.5,

		UserBehaviors: []*sim.Behavior{
			{
				Name: "diagram-edit", Weight: 62,
				DurMs: dur(11.0, 1.0),
				Nodes: []sim.Node{
					listener("org.argouml.uml.diagram.DiagramMouseListener", "mouseClicked", 0.4,
						pooledPaints(figs, 0.08, 4,
							optional(pooledPaints(figs, 0.05, 1), 0.35)),
						optional(pooledPaints(panels, 0.07, 2), 0.6),
						optional(native("sun.java2d.pipe.SpanShapeRenderer", "renderPath", 0.05), 0.2),
					),
				},
			},
			{
				Name: "property-panel", Weight: 22,
				DurMs: dur(11.0, 1.0),
				Nodes: []sim.Node{
					listener("org.argouml.ui.PropPanel", "actionPerformed", 0.45,
						pooledPaints(panels, 0.1, 3),
					),
				},
			},
			{
				Name: "canvas-repaint", Weight: 12,
				DurMs: dur(11.0, 1.0),
				Nodes: []sim.Node{
					paintChain(0.4, swingPaintClasses("org.argouml.uml.diagram.DiagramCanvas"),
						pooledPaints(figs, 0.07, 3)),
				},
			},
			{
				Name: "explorer-update", Weight: 4,
				DurMs: dur(14, 0.95),
				Nodes: []sim.Node{
					async("org.argouml.ui.explorer.ExplorerUpdateEvent", 0.35,
						optional(pooledPaints(panels, 0.08, 1), 0.35)),
				},
			},
		},

		Heap: sim.HeapConfig{
			CapacityMB:        20,
			AllocMBPerSec:     110, // high allocation rate (§IV-D)
			IdleAllocMBPerSec: 1.2,
			MinorPauseMs:      stats.Uniform{Lo: 18, Hi: 42},
			MajorEvery:        25,
			MajorPauseMs:      stats.Uniform{Lo: 90, Hi: 220},
			RampMs:            stats.Uniform{Lo: 0.2, Hi: 3},
			PostDelayMs:       stats.Uniform{Lo: 0.5, Hi: 8},
		},
	}
}

// CrosswordSage is the crossword puzzle editor — the suite's smallest
// application. Targets: E2E 367 s, In-Eps 8 %, 110k/1173/36 episodes,
// 119 patterns with the suite's lowest singleton fraction (46 %).
func CrosswordSage() *sim.Profile {
	ui := []string{
		"crosswordsage.CrosswordGrid", "crosswordsage.CluePanel",
		"crosswordsage.WordList", "crosswordsage.GridSquare",
		"crosswordsage.ScoreBar",
	}
	return &sim.Profile{
		Name: "CrosswordSage", Version: "0.3.5", Classes: 34,
		Description: "Crossword puzzle editor",
		AppPackage:  "crosswordsage",

		SessionSeconds: 367,
		ThinkTimeMs:    stats.Exp{MeanV: 265},
		ShortPerSecond: 298,
		LibraryFrac:    0.55,

		UserBehaviors: []*sim.Behavior{
			{
				Name: "type-letter", Weight: 35,
				DurMs: dur(14.9, 0.87),
				Nodes: []sim.Node{
					listener("crosswordsage.CrosswordGrid", "keyTyped", 0.55,
						pooledPaints(ui, 0.15, 3)),
				},
			},
			{
				Name: "suggest-word", Weight: 20,
				DurMs: dur(14.9, 0.87),
				Nodes: []sim.Node{
					listener("crosswordsage.SolveMenu", "actionPerformed", 0.5,
						pooledPaints(ui, 0.15, 3)),
				},
			},
			{
				Name: "grid-repaint", Weight: 45,
				DurMs: dur(14.9, 1.03),
				Nodes: []sim.Node{
					paintChain(0.5, swingPaintClasses("crosswordsage.CrosswordGrid"),
						pooledPaints(ui[1:], 0.13, 2)),
				},
			},
		},

		Heap: gentleHeap(),
	}
}

// Euclide is the geometry construction kit. Targets: E2E 614 s,
// In-Eps 35 %, 110k/9676/96 episodes — a low perceptible rate — and
// the lowest singleton fraction after CrosswordSage (35 %). Standouts
// (§IV-D, §IV-E): 73 % of perceptible lag in the runtime library, and
// over 60 % of perceptible lag is voluntary sleep inside Apple's
// combo-box blink animation.
func Euclide() *sim.Profile {
	ui := []string{
		"org.euclide.ui.GeometryCanvas", "org.euclide.draw.FigureLayer",
		"org.euclide.ui.ToolPalette", "org.euclide.ui.CoordinatePane",
		"org.euclide.draw.PointFigure", "org.euclide.draw.SegmentFigure",
		"org.euclide.draw.CircleFigure",
	}
	comboBlink := []trace.Frame{
		{Class: "com.apple.laf.AquaComboBoxUI", Method: "blinkSelection"},
		{Class: "com.apple.laf.AquaComboBoxPopup", Method: "fireActionEvent"},
	}
	return &sim.Profile{
		Name: "Euclide", Version: "0.5.2", Classes: 398,
		Description: "Geometry construction kit",
		AppPackage:  "org.euclide",

		SessionSeconds: 614,
		ThinkTimeMs:    stats.Exp{MeanV: 41},
		ShortPerSecond: 178,
		LibraryFrac:    0.6,

		UserBehaviors: []*sim.Behavior{
			{
				Name: "construct", Weight: 35,
				DurMs: dur(14.5, 0.6),
				Nodes: []sim.Node{
					listener("org.euclide.ui.GeometryCanvas", "mousePressed", 0.5,
						pooledPaints(ui, 0.16, 2)),
				},
			},
			{
				Name: "toolbar", Weight: 24,
				DurMs: dur(14.5, 0.6),
				Nodes: []sim.Node{
					listener("org.euclide.ui.ToolPalette", "actionPerformed", 0.55,
						pooledPaints(ui, 0.17, 2)),
				},
			},
			{
				Name: "repaint", Weight: 40,
				DurMs: dur(14.5, 0.6),
				Nodes: []sim.Node{
					paintChain(0.45, swingPaintClasses("org.euclide.ui.GeometryCanvas"),
						pooledPaints(ui[1:], 0.15, 2)),
				},
			},
			{
				// The combo-box behaviour: Apple's toolkit blinks the
				// selection with Thread.sleep on the EDT (§IV-E).
				Name: "combobox-select", Weight: 0.85,
				DurMs: slowDur(330, 0.5),
				Nodes: []sim.Node{
					{
						Kind: trace.KindListener, Class: "javax.swing.JComboBox", Method: "actionPerformed",
						Weight: 0.9, States: sim.StateMix{Sleeping: 0.68},
						LibFrac: 0.78, ExtraFrames: comboBlink,
					},
				},
			},
		},

		Heap: gentleHeap(),
	}
}

// FindBugs is the bug browser. Targets: E2E 599 s, In-Eps 21 %,
// 39k/6336/120 episodes (the lowest short-episode rate). Standouts:
// the largest asynchronous share (42 % of perceptible episodes — a
// background thread periodically updates the progress bar, often with
// a GC in the middle, §IV-C) and concurrency above 1 (a project-load
// thread competing with the EDT for roughly three minutes, §IV-E).
func FindBugs() *sim.Profile {
	ui := []string{
		"edu.umd.cs.findbugs.gui2.BugTreePanel", "edu.umd.cs.findbugs.gui2.BugDetailsPanel",
		"edu.umd.cs.findbugs.gui2.SourceCodeDisplay", "edu.umd.cs.findbugs.gui2.SummaryPanel",
		"edu.umd.cs.findbugs.gui2.NavigationTree", "edu.umd.cs.findbugs.gui2.PriorityBadge",
	}
	progressStack := []trace.Frame{
		{Class: "javax.swing.plaf.basic.BasicProgressBarUI", Method: "paintIndeterminate"},
		{Class: "javax.swing.JProgressBar", Method: "setValue"},
	}
	return &sim.Profile{
		Name: "FindBugs", Version: "1.3.8", Classes: 3698,
		Description: "Bug browser",
		AppPackage:  "edu.umd.cs.findbugs",

		SessionSeconds: 599,
		ThinkTimeMs:    stats.Exp{MeanV: 85},
		ShortPerSecond: 65.5,
		LibraryFrac:    0.55,

		UserBehaviors: []*sim.Behavior{
			{
				Name: "browse-bugs", Weight: 50,
				DurMs: dur(11.7, 0.88),
				Nodes: []sim.Node{
					listener("edu.umd.cs.findbugs.gui2.MainFrame", "valueChanged", 0.5,
						pooledPaints(ui, 0.13, 2,
							optional(pooledPaints(ui, 0.06, 1), 0.35))),
				},
			},
			{
				Name: "filter", Weight: 20,
				DurMs: dur(11.7, 0.88),
				Nodes: []sim.Node{
					listener("edu.umd.cs.findbugs.gui2.FilterAction", "actionPerformed", 0.5,
						pooledPaints(ui, 0.13, 2)),
				},
			},
			{
				Name: "detail-repaint", Weight: 30,
				DurMs: dur(11.7, 1.02),
				Nodes: []sim.Node{
					paintChain(0.45, swingPaintClasses("edu.umd.cs.findbugs.gui2.BugDetailsPanel"),
						pooledPaints(ui, 0.12, 3)),
				},
			},
		},

		Timers: []*sim.Timer{
			{
				// Progress-bar updates posted by the analysis thread
				// while the project loads. The async interval holds
				// toolkit animation self time (no traced paint child,
				// so the episodes stay asynchronous in Figure 5) and
				// allocates enough that collections regularly land
				// inside (§IV-C).
				Behavior: &sim.Behavior{
					Name:  "progress-update",
					DurMs: dur(26, 1.05),
					Nodes: []sim.Node{
						{
							Kind: trace.KindAsync, Class: "edu.umd.cs.findbugs.gui2.ProgressUpdateEvent", Method: "dispatch",
							Weight: 0.9, LibFrac: 0.85, AllocFactor: 3, ExtraFrames: progressStack,
							Children: []sim.Node{{Kind: trace.KindListener, Class: "javax.swing.JProgressBar", Method: "fireStateChanged", Weight: 0.032}},
						},
					},
				},
				PeriodMs:   stats.Uniform{Lo: 300, Hi: 500},
				ActiveFrom: 20, ActiveTo: 200,
			},
		},

		Heap: sim.HeapConfig{
			CapacityMB:        24,
			AllocMBPerSec:     50,
			IdleAllocMBPerSec: 0.8,
			MinorPauseMs:      stats.Uniform{Lo: 10, Hi: 30},
			MajorEvery:        16,
			MajorPauseMs:      stats.Uniform{Lo: 70, Hi: 180},
			RampMs:            stats.Uniform{Lo: 0.2, Hi: 3},
			PostDelayMs:       stats.Uniform{Lo: 0.5, Hi: 8},
		},
		Background: []*sim.BackgroundThread{
			{Name: "project-loader", ActiveFrom: 20, ActiveTo: 200, Duty: 0.92, AllocMBPerSec: 14,
				Stack: []trace.Frame{
					{Class: "edu.umd.cs.findbugs.ba.ClassContext", Method: "analyze"},
					{Class: "edu.umd.cs.findbugs.FindBugsWorker", Method: "run"},
					{Class: "java.lang.Thread", Method: "run"},
				}},
		},
	}
}

// FreeMind is the mind-mapping editor. Targets: E2E 524 s, In-Eps
// 11 %, 325k/3462/26 episodes — only 26 perceptible episodes per
// session, so 92 % of its patterns are never slow (Figure 4's "never"
// extreme). Standout: 12 % of perceptible lag is monitor contention in
// the runtime library's display-configuration code (§IV-E).
func FreeMind() *sim.Profile {
	ui := []string{
		"freemind.view.MapView", "freemind.view.NodeView",
		"freemind.view.EdgeView", "freemind.view.CloudView",
		"freemind.view.RootNodeView", "freemind.view.ArrowLinkView",
	}
	displayConfig := []trace.Frame{
		{Class: "sun.awt.CGraphicsDevice", Method: "getDisplayMode"},
		{Class: "java.awt.GraphicsEnvironment", Method: "getDefaultScreenDevice"},
	}
	return &sim.Profile{
		Name: "FreeMind", Version: "0.8.1", Classes: 1909,
		Description: "Mind mapping editor",
		AppPackage:  "freemind",

		SessionSeconds: 524,
		ThinkTimeMs:    stats.Exp{MeanV: 135},
		ShortPerSecond: 620,
		LibraryFrac:    0.55,

		UserBehaviors: []*sim.Behavior{
			{
				Name: "fold-node", Weight: 32,
				DurMs: dur(11.7, 0.69),
				Nodes: []sim.Node{
					listener("freemind.controller.NodeMouseMotionListener", "mouseClicked", 0.5,
						pooledPaints(ui, 0.15, 3,
							optional(pooledPaints(ui, 0.07, 1), 0.3))),
				},
			},
			{
				Name: "edit-node", Weight: 28,
				DurMs: dur(11.7, 0.69),
				Nodes: []sim.Node{
					listener("freemind.modes.EditNodeAction", "actionPerformed", 0.55,
						pooledPaints(ui, 0.15, 3)),
				},
			},
			{
				Name: "map-repaint", Weight: 40,
				DurMs: dur(11.7, 0.85),
				Nodes: []sim.Node{
					paintChain(0.5, swingPaintClasses("freemind.view.MapView"),
						pooledPaints(ui[1:], 0.14, 3)),
				},
			},
			{
				// Rare display-configuration lookups that block on a
				// toolkit-internal monitor.
				Name: "display-config", Weight: 0.45,
				DurMs: slowDur(170, 0.4),
				Nodes: []sim.Node{
					{
						Kind: trace.KindListener, Class: "freemind.view.MapView", Method: "componentResized",
						Weight: 0.9, States: sim.StateMix{Blocked: 0.2},
						LibFrac: 0.9, ExtraFrames: displayConfig,
					},
				},
			},
		},

		Heap: gentleHeap(),
	}
}

// GanttProject is the Gantt chart editor — the suite's pathological
// case. Targets: E2E 523 s, In-Eps 47 %, 127k/2564/706 episodes,
// Long/min 168, and the richest trees (18 descendants, depth 12 —
// Figure 2 shows a paint request recursing through a deeply nested
// component tree). 57 % of its patterns are always slow, largely
// because structural diversity produces many perceptible singletons
// (§IV-B); One-Ep is the highest at 70 %.
func GanttProject() *sim.Profile {
	chartChain := []string{
		"net.sourceforge.ganttproject.GanttGraphicArea",
		"net.sourceforge.ganttproject.chart.ChartModelImpl",
		"net.sourceforge.ganttproject.chart.TimelineSheet",
		"net.sourceforge.ganttproject.chart.TaskRendererImpl",
		"net.sourceforge.ganttproject.chart.GridRenderer",
		"net.sourceforge.ganttproject.chart.DayGridRenderer",
		"net.sourceforge.ganttproject.chart.BarChartRenderer",
	}
	bars := []string{
		"net.sourceforge.ganttproject.chart.TaskBar",
		"net.sourceforge.ganttproject.chart.MilestoneBar",
		"net.sourceforge.ganttproject.chart.SummaryBar",
		"net.sourceforge.ganttproject.chart.DependencyArrow",
		"net.sourceforge.ganttproject.chart.ProgressBar",
	}
	taskBars := sim.Node{
		Kind: trace.KindPaint, ClassPool: bars, Method: "paint",
		Weight: 0.035, Repeat: stats.UniformInt{Lo: 1, Hi: 6},
		Children: []sim.Node{
			optional(native("sun.java2d.loops.FillRect", "FillRect", 0.012), 0.3),
		},
	}
	return &sim.Profile{
		Name: "GanttProject", Version: "2.0.9", Classes: 5288,
		Description: "Gantt chart editor",
		AppPackage:  "net.sourceforge.ganttproject",

		SessionSeconds: 523,
		ThinkTimeMs:    stats.Exp{MeanV: 108},
		ShortPerSecond: 243,
		LibraryFrac:    0.5,

		UserBehaviors: []*sim.Behavior{
			{
				// The signature deep repaint: the whole Swing cascade
				// down into the chart's renderer stack with variable
				// numbers of pooled bar paints.
				Name: "chart-repaint", Weight: 45,
				DurMs: dur(51.4, 1.12),
				Nodes: []sim.Node{
					paintChain(0.5,
						append(swingPaintClasses(), chartChain...),
						repeated(taskBars, 1, 4),
					),
				},
			},
			{
				Name: "scroll-chart", Weight: 35,
				DurMs: dur(51.4, 1.12),
				Nodes: []sim.Node{
					listener("net.sourceforge.ganttproject.ScrollingManager", "scrollObtained", 0.15,
						paintChain(0.45, append([]string{"javax.swing.JViewport"}, chartChain...),
							repeated(taskBars, 1, 6)),
					),
				},
			},
			{
				Name: "edit-task", Weight: 20,
				DurMs: dur(45, 1.0),
				Nodes: []sim.Node{
					listener("net.sourceforge.ganttproject.task.TaskPropertiesAction", "actionPerformed", 0.35,
						optional(paintChain(0.3, append([]string{"net.sourceforge.ganttproject.GanttTree2"}, chartChain[:4]...)), 0.7),
						pooledPaints(bars, 0.05, 3),
					),
				},
			},
		},

		Heap: defaultHeap(),
	}
}

// gentleHeap is defaultHeap with a quarter of the allocation pressure,
// for applications whose perceptible-episode budget is tiny (FreeMind,
// JEdit, Euclide, CrosswordSage, Laoe): frequent collections would
// otherwise push their borderline episodes over the threshold.
func gentleHeap() sim.HeapConfig {
	h := defaultHeap()
	h.AllocMBPerSec = 10
	h.IdleAllocMBPerSec = 0.2
	return h
}
