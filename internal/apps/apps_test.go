package apps

import (
	"strings"
	"testing"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
)

func TestCatalogMatchesTable2(t *testing.T) {
	cat := Catalog()
	if len(cat) != 14 {
		t.Fatalf("catalog has %d profiles, want 14", len(cat))
	}
	// Exact Table II contents: name, version, class count.
	want := []struct {
		name    string
		version string
		classes int
	}{
		{"Arabeske", "2.0.1", 222},
		{"ArgoUML", "0.28", 5349},
		{"CrosswordSage", "0.3.5", 34},
		{"Euclide", "0.5.2", 398},
		{"FindBugs", "1.3.8", 3698},
		{"FreeMind", "0.8.1", 1909},
		{"GanttProject", "2.0.9", 5288},
		{"JEdit", "4.3pre16", 1150},
		{"JFreeChart", "1.0.13", 1667},
		{"JHotDraw", "7.1", 1146},
		{"Jmol", "11.6.21", 1422},
		{"Laoe", "0.6.03", 688},
		{"NetBeans", "6.7", 45367},
		{"SwingSet", "2", 131},
	}
	for i, w := range want {
		p := cat[i]
		if p.Name != w.name || p.Version != w.version || p.Classes != w.classes {
			t.Errorf("catalog[%d] = %s/%s/%d, want %s/%s/%d",
				i, p.Name, p.Version, p.Classes, w.name, w.version, w.classes)
		}
		if p.Description == "" {
			t.Errorf("%s has no description", p.Name)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("Eclipse"); err == nil {
		t.Error("ByName accepted an app outside the study")
	}
}

// TestProfilesAreRunnable simulates a short session of every profile
// and validates the resulting sessions structurally.
func TestProfilesAreRunnable(t *testing.T) {
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			s, err := sim.Run(sim.Config{Profile: p, Seed: 1, SessionSeconds: 30})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("session invalid: %v", err)
			}
			if len(s.Episodes) == 0 {
				t.Fatal("no traced episodes in 30 s")
			}
			if len(s.Ticks) < 1000 {
				t.Errorf("only %d sampling ticks in 30 s", len(s.Ticks))
			}
			for _, e := range s.Episodes {
				if e.Dur() < s.FilterThreshold {
					t.Fatalf("episode %d below the trace filter (%v)", e.Index, e.Dur())
				}
			}
		})
	}
}

// TestProfileInvariants checks structural properties of every profile
// definition (weights, distributions, windows).
func TestProfileInvariants(t *testing.T) {
	for _, p := range Catalog() {
		if p.SessionSeconds <= 0 || p.ShortPerSecond <= 0 {
			t.Errorf("%s: non-positive session length or short rate", p.Name)
		}
		if p.LibraryFrac < 0 || p.LibraryFrac > 1 {
			t.Errorf("%s: LibraryFrac %v outside [0,1]", p.Name, p.LibraryFrac)
		}
		if p.AppPackage == "" {
			t.Errorf("%s: no app package", p.Name)
		}
		var checkNode func(app string, n sim.Node)
		checkNode = func(app string, n sim.Node) {
			if n.Kind == trace.KindGC || n.Kind == trace.KindDispatch {
				t.Errorf("%s: template node with kind %v", app, n.Kind)
			}
			if n.Weight < 0 {
				t.Errorf("%s: negative node weight", app)
			}
			if n.Prob < 0 || n.Prob > 1 {
				t.Errorf("%s: node probability %v outside [0,1]", app, n.Prob)
			}
			mix := n.States.Blocked + n.States.Waiting + n.States.Sleeping
			if mix < 0 || mix > 1 {
				t.Errorf("%s: state mix sums to %v", app, mix)
			}
			for _, c := range n.Children {
				checkNode(app, c)
			}
		}
		for _, b := range p.UserBehaviors {
			if b.Weight <= 0 {
				t.Errorf("%s/%s: non-positive behavior weight", p.Name, b.Name)
			}
			if b.DurMs == nil {
				t.Fatalf("%s/%s: nil duration", p.Name, b.Name)
			}
			for _, n := range b.Nodes {
				checkNode(p.Name+"/"+b.Name, n)
			}
		}
		for _, tm := range p.Timers {
			if tm.PeriodMs == nil || tm.Behavior == nil {
				t.Fatalf("%s: malformed timer", p.Name)
			}
			if tm.ActiveTo != 0 && tm.ActiveTo <= tm.ActiveFrom {
				t.Errorf("%s: timer window [%v,%v] empty", p.Name, tm.ActiveFrom, tm.ActiveTo)
			}
			if tm.ActiveTo > p.SessionSeconds {
				t.Errorf("%s: timer window ends at %vs beyond the %vs session", p.Name, tm.ActiveTo, p.SessionSeconds)
			}
		}
		for _, bg := range p.Background {
			if bg.Duty < 0 || bg.Duty > 1 {
				t.Errorf("%s/%s: duty %v outside [0,1]", p.Name, bg.Name, bg.Duty)
			}
		}
	}
}

// TestProfileStandoutKnobs spot-checks that the paper's standout
// behaviours are actually wired into the profile definitions.
func TestProfileStandoutKnobs(t *testing.T) {
	arabeske, _ := ByName("Arabeske")
	foundExplicitGC := false
	for _, b := range arabeske.UserBehaviors {
		for _, n := range b.Nodes {
			if n.ExplicitGC {
				foundExplicitGC = true
			}
		}
	}
	if !foundExplicitGC {
		t.Error("Arabeske should call System.gc() (§IV-C)")
	}

	euclide, _ := ByName("Euclide")
	foundSleep := false
	for _, b := range euclide.UserBehaviors {
		for _, n := range b.Nodes {
			if n.States.Sleeping > 0.5 {
				foundSleep = true
				for _, f := range n.ExtraFrames {
					if strings.HasPrefix(f.Class, "com.apple.") {
						goto appleOK
					}
				}
				t.Error("Euclide sleep should point at Apple's combo-box code (§IV-E)")
			appleOK:
			}
		}
	}
	if !foundSleep {
		t.Error("Euclide should sleep on the EDT (§IV-E)")
	}

	jmol, _ := ByName("Jmol")
	if len(jmol.Timers) == 0 {
		t.Fatal("Jmol should animate via timers (§IV-C)")
	}
	for _, tm := range jmol.Timers {
		// The 40 ms repaint cadence is explicit in the paper.
		if got := tm.PeriodMs.Mean(); got != 40 {
			t.Errorf("Jmol timer period %v ms, want 40", got)
		}
		root := tm.Behavior.Nodes[0]
		if root.Kind != trace.KindAsync {
			t.Error("Jmol animation must arrive through the event queue (async)")
		}
		foundPaint := false
		for _, c := range root.Children {
			if c.Kind == trace.KindPaint {
				foundPaint = true
			}
		}
		if !foundPaint {
			t.Error("Jmol async must contain a paint (repaint-manager reclassification)")
		}
	}

	findbugs, _ := ByName("FindBugs")
	if len(findbugs.Background) == 0 || len(findbugs.Timers) == 0 {
		t.Error("FindBugs needs a loader thread and progress timer (§IV-C/E)")
	}
	loader := findbugs.Background[0]
	if span := loader.ActiveTo - loader.ActiveFrom; span < 150 || span > 240 {
		t.Errorf("FindBugs loader active for %vs, want ≈3 minutes", span)
	}

	jhotdraw, _ := ByName("JHotDraw")
	if jhotdraw.LibraryFrac > 0.1 {
		t.Errorf("JHotDraw LibraryFrac %v; §IV-D reports 96%% application code", jhotdraw.LibraryFrac)
	}

	netbeans, _ := ByName("NetBeans")
	if len(netbeans.Background) == 0 {
		t.Error("NetBeans needs background scanning threads (§IV-E)")
	}
}

// TestShortRatesMatchTable3 checks ShortPerSecond ≈ "<3ms"/E2E for
// every application (the calibration identity documented in the
// package comment).
func TestShortRatesMatchTable3(t *testing.T) {
	table := map[string]struct{ short, e2e float64 }{
		"Arabeske": {323605, 461}, "ArgoUML": {196247, 630},
		"CrosswordSage": {109547, 367}, "Euclide": {109572, 614},
		"FindBugs": {39254, 599}, "FreeMind": {325135, 524},
		"GanttProject": {126940, 523}, "JEdit": {117615, 502},
		"JFreeChart": {77720, 250}, "JHotDraw": {246836, 421},
		"Jmol": {110929, 449}, "Laoe": {1241198, 460},
		"NetBeans": {305177, 398}, "SwingSet": {219569, 384},
	}
	for _, p := range Catalog() {
		row := table[p.Name]
		want := row.short / row.e2e
		if got := p.ShortPerSecond; got < want*0.95 || got > want*1.05 {
			t.Errorf("%s: ShortPerSecond = %v, want ≈%v", p.Name, got, want)
		}
	}
}

// TestTriggerMixPerApp simulates each profile briefly and checks the
// dominant trigger class matches the paper's per-application story.
func TestTriggerMixPerApp(t *testing.T) {
	wantDominant := map[string]analysis.Trigger{
		"ArgoUML": analysis.TriggerInput, // 78 % input perceptible
		"Jmol":    analysis.TriggerOutput,
	}
	for name, want := range wantDominant {
		p, _ := ByName(name)
		seconds := 60.0
		if name == "Jmol" {
			seconds = p.SessionSeconds // the animation windows matter
		}
		s, err := sim.Run(sim.Config{Profile: p, Seed: 2, SessionSeconds: seconds})
		if err != nil {
			t.Fatal(err)
		}
		ts := analysis.TriggerAnalysis([]*trace.Session{s}, trace.DefaultPerceptibleThreshold, true, analysis.TriggerOptions{})
		best, bestF := analysis.TriggerInput, -1.0
		for _, tr := range analysis.Triggers() {
			if f := ts.Frac(tr); f > bestF {
				best, bestF = tr, f
			}
		}
		if best != want {
			t.Errorf("%s: dominant perceptible trigger %v (%.0f%%), want %v", name, best, bestF*100, want)
		}
	}
}

func TestHelpers(t *testing.T) {
	chain := paintChain(0.6, []string{"a.A", "b.B", "c.C"})
	if chain.Class != "a.A" || chain.Kind != trace.KindPaint {
		t.Errorf("chain head = %+v", chain)
	}
	depth := 0
	n := &chain
	for {
		depth++
		var next *sim.Node
		for i := range n.Children {
			if n.Children[i].Class == "b.B" || n.Children[i].Class == "c.C" {
				next = &n.Children[i]
			}
		}
		if next == nil {
			break
		}
		n = next
	}
	if depth != 3 {
		t.Errorf("chain depth = %d, want 3", depth)
	}

	opt := optional(paint("x.X", 0.5), 0.25)
	if opt.Prob != 0.25 {
		t.Errorf("optional prob = %v", opt.Prob)
	}
	rep := repeated(paint("x.X", 0.5), 2, 5)
	if rep.Repeat == nil || rep.Repeat.MeanInt() != 3.5 {
		t.Errorf("repeated = %+v", rep.Repeat)
	}
	if got := native("n.N", "call", 0.1); got.Kind != trace.KindNative {
		t.Errorf("native kind = %v", got.Kind)
	}
	if got := async("a.A", 0.1); got.Kind != trace.KindAsync || got.Method != "dispatch" {
		t.Errorf("async = %+v", got)
	}
	if got := revealed("r.R"); got.Weight != 0.032 || got.Kind != trace.KindPaint {
		t.Errorf("revealed = %+v", got)
	}
	pp := pooledPaints([]string{"a.A", "b.B"}, 0.1, 3)
	if len(pp.ClassPool) != 2 || pp.Repeat.MeanInt() != 1.5 {
		t.Errorf("pooledPaints = %+v", pp)
	}
}
