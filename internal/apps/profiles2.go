package apps

import (
	"lagalyzer/internal/sim"
	"lagalyzer/internal/stats"
	"lagalyzer/internal/trace"
)

// JEdit is the programmer's text editor. Targets: E2E 502 s, In-Eps
// 9 %, 118k/2271/24 episodes — with FreeMind the least perceptible
// lag. Standout (§IV-E): over 25 % of perceptible lag is time waiting
// in Object.wait(), caused by event processing inside modal dialogs.
func JEdit() *sim.Profile {
	ui := []string{
		"org.gjt.sp.jedit.textarea.TextAreaPainter", "org.gjt.sp.jedit.textarea.Gutter",
		"org.gjt.sp.jedit.gui.StatusBar", "org.gjt.sp.jedit.gui.DockablePanel",
		"org.gjt.sp.jedit.textarea.StructureMatcher",
	}
	modalWait := []trace.Frame{
		{Class: "java.awt.Dialog", Method: "show"},
		{Class: "org.gjt.sp.jedit.gui.CompleteWord", Method: "processKeyEvent"},
	}
	return &sim.Profile{
		Name: "JEdit", Version: "4.3pre16", Classes: 1150,
		Description: "Programmer's text editor",
		AppPackage:  "org.gjt.sp.jedit",

		SessionSeconds: 502,
		ThinkTimeMs:    stats.Exp{MeanV: 201},
		ShortPerSecond: 234,
		LibraryFrac:    0.5,

		UserBehaviors: []*sim.Behavior{
			{
				Name: "keystroke", Weight: 50,
				DurMs: dur(14.0, 0.72),
				Nodes: []sim.Node{
					listener("org.gjt.sp.jedit.textarea.TextArea", "userInput", 0.55,
						pooledPaints(ui, 0.14, 3)),
				},
			},
			{
				Name: "buffer-switch", Weight: 22,
				DurMs: dur(14.0, 0.72),
				Nodes: []sim.Node{
					listener("org.gjt.sp.jedit.EditPane", "bufferChanged", 0.45,
						pooledPaints(ui, 0.1, 3)),
				},
			},
			{
				Name: "repaint", Weight: 27,
				DurMs: dur(14.0, 0.89),
				Nodes: []sim.Node{
					paintChain(0.5, swingPaintClasses("org.gjt.sp.jedit.textarea.TextAreaPainter"),
						pooledPaints(ui[1:], 0.13, 2)),
				},
			},
			{
				// Modal dialogs pump their own events; the EDT waits.
				Name: "modal-dialog", Weight: 0.45,
				DurMs: slowDur(300, 0.55),
				Nodes: []sim.Node{
					{
						Kind: trace.KindListener, Class: "org.gjt.sp.jedit.gui.DockableWindowManager", Method: "showDialog",
						Weight: 0.9, States: sim.StateMix{Waiting: 0.42},
						LibFrac: 0.6, ExtraFrames: modalWait,
					},
				},
			},
		},

		Heap: gentleHeap(),
	}
}

// JFreeChart (time-series demo) is the chart library. Targets: E2E
// 250 s (the shortest sessions — limited functionality), In-Eps 26 %,
// 78k/1658/175 episodes, Long/min 164. Standout (§IV-D): 24 % of
// perceptible lag in native code — many individually quick native
// rendering calls that add up.
func JFreeChart() *sim.Profile {
	renderDur := stats.Clamped{
		D: stats.NewMixture(
			[]float64{0.88, 0.12},
			[]stats.Dist{
				stats.LogNormal{Median: 15, Sigma: 0.7},
				stats.LogNormal{Median: 150, Sigma: 0.5},
			}),
		Lo: 3.3, Hi: 20000,
	}
	plots := []string{
		"org.jfree.chart.plot.XYPlot", "org.jfree.chart.axis.DateAxis",
		"org.jfree.chart.renderer.xy.XYLineAndShapeRenderer",
	}
	nativePool := sim.Node{
		Kind: trace.KindNative, Class: "sun.java2d.loops.DrawGlyphListAA", Method: "DrawGlyphListAA",
		Weight: 0.09, Repeat: stats.UniformInt{Lo: 1, Hi: 2},
	}
	return &sim.Profile{
		Name: "JFreeChart", Version: "1.0.13", Classes: 1667,
		Description: "Chart library (time data)",
		AppPackage:  "org.jfree.chart",

		SessionSeconds: 250,
		ThinkTimeMs:    stats.Exp{MeanV: 112},
		ShortPerSecond: 311,
		LibraryFrac:    0.55,

		UserBehaviors: []*sim.Behavior{
			{
				Name: "render-chart", Weight: 55,
				DurMs: renderDur,
				Nodes: []sim.Node{
					paintChain(0.3, swingPaintClasses("org.jfree.chart.ChartPanel"),
						pooledPaints(plots, 0.08, 2),
						nativePool,
						optional(native("sun.java2d.loops.DrawLine", "DrawLine", 0.08), 0.6),
					),
				},
			},
			{
				Name: "zoom-pan", Weight: 45,
				DurMs: renderDur,
				Nodes: []sim.Node{
					listener("org.jfree.chart.ChartPanel", "mouseDragged", 0.3,
						pooledPaints(plots, 0.09, 2),
						nativePool,
						optional(native("sun.java2d.loops.FillRect", "FillRect", 0.07), 0.5),
					),
				},
			},
		},

		Heap: defaultHeap(),
	}
}

// JHotDraw (drawing demo) is the vector graphics editor. Targets: E2E
// 421 s, In-Eps 41 %, 247k/5980/338 episodes, One-Ep 70 %. Standout
// (§IV-D): 96 % of perceptible lag in *application* code — drawing
// handles and outlines of complex bezier curves does not scale.
func JHotDraw() *sim.Profile {
	figures := []string{
		"org.jhotdraw.draw.BezierFigure", "org.jhotdraw.draw.RectangleFigure",
		"org.jhotdraw.draw.TextFigure", "org.jhotdraw.draw.LineConnectionFigure",
		"org.jhotdraw.draw.EllipseFigure", "org.jhotdraw.draw.GroupFigure",
	}
	handles := []string{
		"org.jhotdraw.draw.BezierControlPointHandle", "org.jhotdraw.draw.BezierNodeHandle",
		"org.jhotdraw.draw.ResizeHandleKit", "org.jhotdraw.draw.RotateHandle",
	}
	return &sim.Profile{
		Name: "JHotDraw", Version: "7.1", Classes: 1146,
		Description: "Vector graphics editor",
		AppPackage:  "org.jhotdraw",

		SessionSeconds: 421,
		ThinkTimeMs:    stats.Exp{MeanV: 41.5},
		ShortPerSecond: 586,
		LibraryFrac:    0.04, // §IV-D: 96 % application code

		UserBehaviors: []*sim.Behavior{
			{
				Name: "drag-bezier", Weight: 30,
				DurMs: dur(10.7, 1.31),
				Nodes: []sim.Node{
					listener("org.jhotdraw.draw.BezierTool", "mouseDragged", 0.45,
						pooledPaints(figures, 0.09, 3)),
				},
			},
			{
				Name: "handles", Weight: 25,
				DurMs: dur(10.7, 1.31),
				Nodes: []sim.Node{
					listener("org.jhotdraw.draw.SelectionTool", "mouseMoved", 0.5,
						pooledPaints(handles, 0.1, 3)),
				},
			},
			{
				Name: "view-repaint", Weight: 45,
				DurMs: dur(10.7, 1.46),
				Nodes: []sim.Node{
					paintChain(0.4, swingPaintClasses("org.jhotdraw.draw.DefaultDrawingView"),
						pooledPaints(figures, 0.08, 3),
						optional(native("sun.java2d.pipe.AAShapePipe", "renderPath", 0.05), 0.35)),
				},
			},
		},

		Heap: defaultHeap(),
	}
}

// Jmol is the chemical structure viewer — the worst perceptible
// performance of the suite (Long/min 180). Targets: E2E 449 s, In-Eps
// 46 %, 111k/3197/604 episodes. Standouts (§IV-C): 98 % of perceptible
// episodes are output; the timer-based molecule animation repaints
// roughly every 40 ms, saturating the EDT during animation phases, and
// those episodes arrive as repaint-manager "async containing paint"
// trees that Figure 5's classification folds into output.
func Jmol() *sim.Profile {
	shapes := []string{
		"org.jmol.shape.Balls", "org.jmol.shape.Sticks",
		"org.jmol.shape.Labels", "org.jmol.shape.Isosurface",
	}
	animationDur := stats.Clamped{
		D: stats.NewMixture(
			[]float64{0.66, 0.34},
			[]stats.Dist{
				stats.LogNormal{Median: 30, Sigma: 0.6},
				stats.LogNormal{Median: 118, Sigma: 0.42},
			}),
		Lo: 3.3, Hi: 20000,
	}
	renderTree := []sim.Node{
		async("javax.swing.Timer$DoPostEvent", 0.06,
			revealed("javax.swing.RepaintManager"),
			// A finer-grained reveal: frames beyond ~100 ms also show
			// the double-buffer flush as a separate interval.
			sim.Node{Kind: trace.KindPaint, Class: "java.awt.image.BufferStrategy", Method: "paint", Weight: 0.022},
			sim.Node{Kind: trace.KindPaint, Class: "org.jmol.viewer.DisplayPanel", Method: "paint",
				Weight: 0.2, Children: []sim.Node{
					{Kind: trace.KindPaint, Class: "org.jmol.g3d.Graphics3D", Method: "paint",
						Weight: 0.3, Children: []sim.Node{
							pooledPaints(shapes, 0.055, 2),
							optional(native("sun.awt.image.BufImgSurfaceData", "setRGB", 0.12), 0.6),
						}},
				}},
		),
	}
	return &sim.Profile{
		Name: "Jmol", Version: "11.6.21", Classes: 1422,
		Description: "Chemical structure viewer",
		AppPackage:  "org.jmol",

		SessionSeconds: 449,
		ThinkTimeMs:    stats.Exp{MeanV: 700},
		ShortPerSecond: 247,
		LibraryFrac:    0.45,

		UserBehaviors: []*sim.Behavior{
			{
				// Occasional direct manipulation between animations.
				Name: "rotate-molecule", Weight: 1,
				DurMs: dur(35, 0.8),
				Nodes: []sim.Node{
					listener("org.jmol.viewer.MouseManager", "mouseDragged", 0.3,
						paint("org.jmol.viewer.DisplayPanel", 0.3,
							pooledPaints(shapes, 0.08, 2))),
				},
			},
		},

		Timers: []*sim.Timer{
			{
				// The 3D animation: a Swing timer fires every ~40 ms;
				// rendering usually takes longer, so the EDT is
				// saturated and the frame rate drops (§IV-A).
				Behavior:   &sim.Behavior{Name: "animation-frame", DurMs: animationDur, Nodes: renderTree},
				PeriodMs:   stats.Const{V: 40},
				ActiveFrom: 45, ActiveTo: 145,
			},
			{
				Behavior:   &sim.Behavior{Name: "animation-frame-2", DurMs: animationDur, Nodes: renderTree},
				PeriodMs:   stats.Const{V: 40},
				ActiveFrom: 220, ActiveTo: 315,
			},
		},

		Heap: defaultHeap(),
	}
}

// Laoe is the audio sample editor. Targets: E2E 460 s, In-Eps 47 %,
// 1.24M/3174/61 episodes — by far the most sub-filter episodes (the
// waveform display refreshes constantly) and the lowest Long/min (18):
// busy but consistent. Episode durations are narrow (sigma 0.20).
func Laoe() *sim.Profile {
	ui := []string{
		"ch.laoe.ui.GClipLayerChooser", "ch.laoe.ui.GClipPanel",
		"ch.laoe.ui.GScrollSignal", "ch.laoe.ui.GToolbar",
	}
	return &sim.Profile{
		Name: "Laoe", Version: "0.6.03", Classes: 688,
		Description: "Audio sample editor",
		AppPackage:  "ch.laoe",

		SessionSeconds: 460,
		ThinkTimeMs:    stats.Exp{MeanV: 77},
		ShortPerSecond: 2698,
		LibraryFrac:    0.5,

		UserBehaviors: []*sim.Behavior{
			{
				Name: "waveform-paint", Weight: 50,
				DurMs: dur(66, 0.19),
				Nodes: []sim.Node{
					paintChain(0.45, swingPaintClasses("ch.laoe.ui.GClipLayerChooser"),
						pooledPaints(ui[1:], 0.08, 2),
						optional(native("sun.java2d.loops.DrawLine", "DrawLine", 0.08), 0.5)),
				},
			},
			{
				Name: "audio-operation", Weight: 50,
				DurMs: dur(66, 0.19),
				Nodes: []sim.Node{
					listener("ch.laoe.operation.AOperationUI", "actionPerformed", 0.4,
						optional(native("ch.laoe.audio.AudioConverter", "convert", 0.15), 0.55),
						pooledPaints(ui, 0.08, 2)),
				},
			},
		},

		Heap: gentleHeap(),
	}
}

// NetBeans (Java SE) is the IDE — the largest application at 45k
// classes. Targets: E2E 398 s, In-Eps 27 %, 305k/3120/149 episodes,
// 642 patterns (second only to ArgoUML — a framework produces
// enormous structural diversity, One-Ep 66 %). Concurrency above 1
// (§IV-E): background scanning threads compete with the EDT.
func NetBeans() *sim.Profile {
	editor := []string{
		"org.netbeans.editor.EditorUI", "org.netbeans.editor.DrawEngine",
		"org.netbeans.editor.GlyphGutter", "org.netbeans.editor.StatusBar",
		"org.netbeans.modules.editor.errorstripe.AnnotationView",
		"org.netbeans.editor.CodeFoldingSideBar",
	}
	windows := []string{
		"org.openide.explorer.view.TreeView", "org.netbeans.core.windows.view.ui.MultiSplitPane",
		"org.netbeans.core.output2.OutputPane", "org.openide.explorer.propertysheet.PropertySheet",
		"org.netbeans.modules.palette.ui.PalettePanel", "org.netbeans.swing.tabcontrol.TabbedContainer",
	}
	return &sim.Profile{
		Name: "NetBeans", Version: "6.7", Classes: 45367,
		Description: "Development environment",
		AppPackage:  "org.netbeans",

		SessionSeconds: 398,
		ThinkTimeMs:    stats.Exp{MeanV: 93},
		ShortPerSecond: 767,
		LibraryFrac:    0.5,

		UserBehaviors: []*sim.Behavior{
			{
				Name: "edit-source", Weight: 24,
				DurMs: dur(22.5, 0.75),
				Nodes: []sim.Node{
					listener("org.netbeans.editor.BaseKit$DefaultKeyTypedAction", "actionPerformed", 0.4,
						pooledPaints(editor, 0.08, 4,
							optional(pooledPaints(editor, 0.05, 1), 0.35)),
						optional(native("sun.font.StrikeCache", "getGlyphImage", 0.04), 0.25)),
				},
			},
			{
				Name: "navigate", Weight: 20,
				DurMs: dur(22.5, 0.75),
				Nodes: []sim.Node{
					listener("org.openide.explorer.view.TreeView", "mouseClicked", 0.4,
						pooledPaints(windows, 0.08, 4,
							optional(pooledPaints(windows, 0.05, 1), 0.35))),
				},
			},
			{
				Name: "code-completion", Weight: 15,
				DurMs: dur(30, 0.9),
				Nodes: []sim.Node{
					listener("org.netbeans.modules.editor.completion.CompletionImpl", "keyTyped", 0.45,
						pooledPaints(editor, 0.08, 2),
						optional(paint("org.netbeans.modules.editor.completion.CompletionScrollPane", 0.1), 0.6)),
				},
			},
			{
				Name: "window-repaint", Weight: 36,
				DurMs: dur(22.5, 0.90),
				Nodes: []sim.Node{
					paintChain(0.4, swingPaintClasses("org.netbeans.core.windows.view.ui.MainWindow"),
						pooledPaints(windows, 0.08, 3)),
				},
			},
			{
				Name: "status-update", Weight: 5,
				DurMs: dur(20, 0.9),
				Nodes: []sim.Node{
					async("org.openide.util.RequestProcessor$Task", 0.4,
						optional(pooledPaints(windows, 0.09, 1), 0.3)),
				},
			},
		},

		Heap: sim.HeapConfig{
			CapacityMB:        32,
			AllocMBPerSec:     60,
			IdleAllocMBPerSec: 1.5,
			MinorPauseMs:      stats.Uniform{Lo: 10, Hi: 28},
			MajorEvery:        18,
			MajorPauseMs:      stats.Uniform{Lo: 80, Hi: 200},
			RampMs:            stats.Uniform{Lo: 0.2, Hi: 3},
			PostDelayMs:       stats.Uniform{Lo: 0.5, Hi: 8},
		},
		Background: []*sim.BackgroundThread{
			{Name: "parsing-and-scanning", ActiveFrom: 5, ActiveTo: 120, Duty: 0.7, AllocMBPerSec: 8,
				Stack: []trace.Frame{
					{Class: "org.netbeans.modules.java.source.indexing.JavaCustomIndexer", Method: "index"},
					{Class: "org.openide.util.RequestProcessor$Processor", Method: "run"},
					{Class: "java.lang.Thread", Method: "run"},
				}},
			{Name: "module-system", Duty: 0.05, PeriodMs: 5000, AllocMBPerSec: 1,
				Stack: []trace.Frame{
					{Class: "org.netbeans.core.startup.ModuleSystem", Method: "refresh"},
					{Class: "java.lang.Thread", Method: "run"},
				}},
		},
	}
}

// SwingSet is Sun's Swing component demo. Targets: E2E 384 s, In-Eps
// 20 %, 220k/4310/70 episodes, 444 patterns. A widget playground:
// many distinct interaction patterns of moderate depth (Descs 9,
// Depth 6).
func SwingSet() *sim.Profile {
	widgets := []string{
		"javax.swing.JButton", "javax.swing.JSlider", "javax.swing.JTable",
		"javax.swing.JTree", "javax.swing.JComboBox", "javax.swing.JProgressBar",
		"javax.swing.JTabbedPane", "javax.swing.JToolTip",
	}
	renderers := []string{
		"javax.swing.table.DefaultTableCellRenderer", "javax.swing.tree.DefaultTreeCellRenderer",
		"javax.swing.plaf.metal.MetalButtonUI", "javax.swing.plaf.metal.MetalSliderUI",
	}
	return &sim.Profile{
		Name: "SwingSet", Version: "2", Classes: 131,
		Description: "Swing component demo",
		AppPackage:  "swingset",

		SessionSeconds: 384,
		ThinkTimeMs:    stats.Exp{MeanV: 71},
		ShortPerSecond: 572,
		LibraryFrac:    0.75, // a demo of library widgets runs library code

		UserBehaviors: []*sim.Behavior{
			{
				Name: "switch-tab", Weight: 25,
				DurMs: dur(9.95, 0.97),
				Nodes: []sim.Node{
					listener("javax.swing.JTabbedPane", "stateChanged", 0.35,
						paintChain(0.25, swingPaintClasses("swingset.DemoPanel"),
							pooledPaints(widgets, 0.06, 3))),
				},
			},
			{
				Name: "widget-click", Weight: 22,
				DurMs: dur(9.95, 0.97),
				Nodes: []sim.Node{
					listener("swingset.ButtonDemo", "actionPerformed", 0.5,
						pooledPaints(widgets, 0.1, 3,
							optional(pooledPaints(renderers, 0.05, 1), 0.3))),
				},
			},
			{
				Name: "slider-drag", Weight: 20,
				DurMs: dur(9.95, 0.97),
				Nodes: []sim.Node{
					listener("javax.swing.JSlider", "stateChanged", 0.5,
						pooledPaints(renderers, 0.1, 3)),
				},
			},
			{
				Name: "table-repaint", Weight: 38,
				DurMs: dur(9.95, 1.13),
				Nodes: []sim.Node{
					paintChain(0.35, swingPaintClasses("javax.swing.JTable"),
						pooledPaints(renderers, 0.07, 4)),
				},
			},
		},

		Heap: defaultHeap(),
	}
}
