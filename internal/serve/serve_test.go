package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lagalyzer/internal/report"
)

// waitState polls a job until it reaches want (or the test times out).
func waitState(t *testing.T, s *Server, id string, want JobState) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed (%s) while waiting for %s", id, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.Status(id)
	t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
	return Status{}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// okRunner completes instantly with an empty (but non-nil) result.
func okRunner(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
	return &report.StudyResult{Health: &report.StudyHealth{}}, nil
}

func TestJobLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Runner: okRunner})
	job, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, job.ID, StateDone)
	if st.Attempts != 1 || st.Error != "" {
		t.Errorf("status = %+v, want 1 clean attempt", st)
	}
	if _, ok := s.Result(job.ID); !ok {
		t.Error("done job has no result")
	}
	if jobs := s.Jobs(); len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Errorf("Jobs() = %+v", jobs)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Runner: okRunner})
	if _, err := s.Submit(JobSpec{Kind: "nonsense"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := s.Submit(JobSpec{Kind: "traces"}); err == nil {
		t.Error("traces job without dir accepted")
	}
	if _, err := s.Submit(JobSpec{Kind: "study", Apps: []string{"NoSuchApp"}}); err == nil {
		t.Error("study with unknown app accepted")
	}
}

// TestShedQueueFull: with one blocked worker and a depth-1 queue, a
// third submission must shed with ErrShed and count into
// serve_jobs_shed_total (the 429 path).
func TestShedQueueFull(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
			<-release
			return okRunner(ctx, spec)
		},
	})
	defer close(release)

	first, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, StateRunning)
	if _, err := s.Submit(JobSpec{Kind: "study"}); err != nil {
		t.Fatalf("queued submission rejected: %v", err)
	}

	shedBefore := mShed.Value()
	_, err = s.Submit(JobSpec{Kind: "study"})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("overflow submission: err = %v, want ErrShed", err)
	}
	if d := mShed.Value() - shedBefore; d != 1 {
		t.Errorf("serve_jobs_shed_total delta = %d, want 1", d)
	}
}

// TestShedMemoryBudget: a job whose estimated footprint exceeds the
// admitted-memory budget is refused before any work starts.
func TestShedMemoryBudget(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:      1,
		MemoryBudget: 1 << 20, // 1 MiB: far below any full-study estimate
		Runner:       okRunner,
	})
	shedBefore := mShed.Value()
	_, err := s.Submit(JobSpec{Kind: "study"}) // full catalog, default sessions
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if d := mShed.Value() - shedBefore; d != 1 {
		t.Errorf("serve_jobs_shed_total delta = %d, want 1", d)
	}
	// A small job still fits.
	if _, err := s.Submit(JobSpec{Kind: "study", Apps: []string{"CrosswordSage"}, Sessions: 1, Seconds: 5}); err != nil {
		t.Errorf("small job shed too: %v", err)
	}
}

// TestRetryTransientFailure: a runner that fails twice with a
// transient error then succeeds must be retried to completion, with
// serve_retries_total counting each re-run.
func TestRetryTransientFailure(t *testing.T) {
	attempts := 0
	s := newTestServer(t, Config{
		Workers:   1,
		RetryBase: time.Millisecond,
		Runner: func(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
			attempts++
			if attempts <= 2 {
				return nil, fmt.Errorf("flaky backend: %w", ErrTransient)
			}
			return okRunner(ctx, spec)
		},
	})
	retriesBefore := mRetries.Value()
	job, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, job.ID, StateDone)
	if st.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", st.Attempts)
	}
	if d := mRetries.Value() - retriesBefore; d != 2 {
		t.Errorf("serve_retries_total delta = %d, want 2", d)
	}
}

// TestPermanentFailureNotRetried: input-shaped errors fail immediately.
func TestPermanentFailureNotRetried(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:   1,
		RetryBase: time.Millisecond,
		Runner: func(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
			return nil, fmt.Errorf("opening trace: %w", fs.ErrNotExist)
		},
	})
	job, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, job.ID, StateFailed)
	if st.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry for permanent errors)", st.Attempts)
	}
}

// TestPanicIsolation: a panicking job neither kills the worker nor the
// server; it is converted to ErrWorkerPanic and retried.
func TestPanicIsolation(t *testing.T) {
	attempts := 0
	s := newTestServer(t, Config{
		Workers:   1,
		RetryBase: time.Millisecond,
		Runner: func(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
			attempts++
			if attempts == 1 {
				panic("corrupted shard")
			}
			return okRunner(ctx, spec)
		},
	})
	job, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, job.ID, StateDone)
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one panic, one success)", st.Attempts)
	}
	// The worker survived: the server still accepts and runs jobs.
	job2, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job2.ID, StateDone)
}

// TestJobDeadline: an attempt that outlives its per-job deadline fails
// with DeadlineExceeded and is not retried (deadlines are permanent).
func TestJobDeadline(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	job, err := s.Submit(JobSpec{Kind: "study", DeadlineMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, job.ID, StateFailed)
	if st.Attempts != 1 || !strings.Contains(st.Error, "deadline") {
		t.Errorf("status = %+v, want one attempt dead on deadline", st)
	}
}

// TestGracefulShutdownDrains is the ISSUE's drain test: the in-flight
// job completes, the queued job is checkpointed to pending.json, and a
// new server over the same state dir restores it.
func TestGracefulShutdownDrains(t *testing.T) {
	stateDir := t.TempDir()
	release := make(chan struct{})
	s, err := New(Config{
		Workers:  1,
		StateDir: stateDir,
		Runner: func(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
			if spec.Seed == 1 {
				<-release
			}
			return okRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	inflight, err := s.Submit(JobSpec{Kind: "study", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, inflight.ID, StateRunning)
	queued, err := s.Submit(JobSpec{Kind: "study", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var checkpointed int
	var shutErr error
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		checkpointed, shutErr = s.Shutdown(ctx)
	}()
	// Let the in-flight job finish mid-drain.
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-done
	if shutErr != nil {
		t.Fatal(shutErr)
	}

	if st, _ := s.Status(inflight.ID); st.State != StateDone {
		t.Errorf("in-flight job state = %s, want done (drained)", st.State)
	}
	if st, _ := s.Status(queued.ID); st.State != StateCheckpointed {
		t.Errorf("queued job state = %s, want checkpointed", st.State)
	}
	if checkpointed != 1 {
		t.Errorf("Shutdown checkpointed %d jobs, want 1", checkpointed)
	}

	// No new work after drain.
	if _, err := s.Submit(JobSpec{Kind: "study"}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-shutdown Submit err = %v, want ErrDraining", err)
	}

	// pending.json holds exactly the checkpointed spec…
	data, err := os.ReadFile(filepath.Join(stateDir, "pending.json"))
	if err != nil {
		t.Fatal(err)
	}
	var specs []JobSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Seed != 2 {
		t.Fatalf("pending specs = %+v, want the seed-2 job", specs)
	}

	// …and a successor server restores and finishes it.
	s2 := newTestServer(t, Config{Workers: 1, StateDir: stateDir, Runner: okRunner})
	jobs := s2.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("restored jobs = %d, want 1", len(jobs))
	}
	waitState(t, s2, jobs[0].ID, StateDone)
	if _, err := os.Stat(filepath.Join(stateDir, "pending.json")); !os.IsNotExist(err) {
		t.Error("pending.json not consumed on restore")
	}
}

// TestShutdownGraceCutsOffStuckJob: a job that never finishes is cut
// off when the grace period expires and checkpointed instead of
// blocking shutdown forever.
func TestShutdownGraceCutsOffStuckJob(t *testing.T) {
	stateDir := t.TempDir()
	s, err := New(Config{
		Workers:       1,
		ShutdownGrace: 30 * time.Millisecond,
		StateDir:      stateDir,
		Runner: func(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
			<-ctx.Done() // simulates a long study honoring cancellation
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateRunning)

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	checkpointed, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("shutdown took %s despite a 30ms grace", elapsed)
	}
	if checkpointed != 1 {
		t.Errorf("checkpointed = %d, want the cut-off job", checkpointed)
	}
	if st, _ := s.Status(job.ID); st.State != StateCheckpointed {
		t.Errorf("stuck job state = %s, want checkpointed", st.State)
	}
}

// TestHTTPAPI drives the full loop over the wire with the real
// pipeline: submit a tiny study, poll to done, fetch all three result
// formats, and verify shed returns 429 + Retry-After.
func TestHTTPAPI(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, StateDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"kind":"study","apps":["CrosswordSage"],"sessions":1,"seed":3,"seconds":20}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var accepted struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	waitState(t, s, accepted.ID, StateDone)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/jobs/" + accepted.ID); code != 200 || !strings.Contains(body, `"done"`) {
		t.Errorf("status endpoint: %d %q", code, body)
	}
	if code, body := get("/jobs/" + accepted.ID + "/result"); code != 200 || !strings.Contains(body, "CrosswordSage") {
		t.Errorf("text result: %d (len %d)", code, len(body))
	}
	if code, body := get("/jobs/" + accepted.ID + "/result?format=html"); code != 200 || !strings.Contains(body, "<html") {
		t.Errorf("html result: %d (len %d)", code, len(body))
	}
	if code, body := get("/jobs/" + accepted.ID + "/result?format=json"); code != 200 || !strings.Contains(body, `"rows"`) {
		t.Errorf("json result: %d %q", code, body)
	}
	if code, _ := get("/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("missing job status = %d, want 404", code)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"ok":true`) {
		t.Errorf("healthz: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "serve_jobs_accepted_total") {
		t.Errorf("metrics: %d (len %d)", code, len(body))
	}
}

// TestHTTPShed429: over-budget submissions answer 429 with Retry-After.
func TestHTTPShed429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MemoryBudget: 1 << 20, Runner: okRunner})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"study"}`)) // full catalog: over the 1 MiB budget
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	base := 10 * time.Millisecond
	if backoff(base, 0, "job-1") != backoff(base, 0, "job-1") {
		t.Error("backoff not deterministic for identical inputs")
	}
	if backoff(base, 0, "job-1") == backoff(base, 0, "job-2") &&
		backoff(base, 0, "job-3") == backoff(base, 0, "job-4") {
		t.Error("jitter never varies across job IDs")
	}
	for attempt := 0; attempt < 40; attempt++ {
		if d := backoff(base, attempt, "j"); d > 31*time.Second {
			t.Fatalf("backoff(%d) = %s, exceeds cap", attempt, d)
		}
	}
	prev := backoff(base, 0, "j")
	for attempt := 1; attempt < 5; attempt++ {
		d := backoff(base, attempt, "j")
		if d <= prev {
			t.Errorf("backoff not growing: attempt %d %s ≤ %s", attempt, d, prev)
		}
		prev = d
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), false},
		{fs.ErrNotExist, false},
		{fs.ErrPermission, false},
		{errors.New("mystery"), false},
		{ErrWorkerPanic, true},
		{fmt.Errorf("%w: boom", ErrWorkerPanic), true},
		{ErrTransient, true},
		{fmt.Errorf("io hiccup: %w", ErrTransient), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
