package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lagalyzer/internal/ingest"
	"lagalyzer/internal/report"
)

// getReadyz fetches /readyz and decodes the JSON body.
func getReadyz(t *testing.T, h http.Handler) (status int, ready bool, reasons []string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("/readyz body: %v", err)
	}
	return rec.Code, body.Ready, body.Reasons
}

// TestReadyzOK: a fresh server with capacity answers 200 ready, no
// reasons — the signal load balancers route on.
func TestReadyzOK(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Runner: okRunner})
	status, ready, reasons := getReadyz(t, s.Handler())
	if status != http.StatusOK || !ready || len(reasons) != 0 {
		t.Errorf("fresh server: status=%d ready=%v reasons=%v", status, ready, reasons)
	}
}

// TestReadyzQueueSaturated: with the one worker blocked and the
// depth-1 queue holding a job, the next submission would shed — so
// /readyz must already answer 503 queue-saturated, and recover once
// the queue drains.
func TestReadyzQueueSaturated(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
			<-release
			return okRunner(ctx, spec)
		},
	})
	h := s.Handler()

	first, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, StateRunning)
	second, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatalf("queued submission rejected: %v", err)
	}

	status, ready, reasons := getReadyz(t, h)
	if status != http.StatusServiceUnavailable || ready {
		t.Errorf("saturated queue: status=%d ready=%v", status, ready)
	}
	if len(reasons) != 1 || reasons[0] != "queue-saturated" {
		t.Errorf("saturated queue reasons = %v, want [queue-saturated]", reasons)
	}

	close(release)
	waitState(t, s, second.ID, StateDone)
	if status, ready, _ := getReadyz(t, h); status != http.StatusOK || !ready {
		t.Errorf("drained queue: status=%d ready=%v, want ready again", status, ready)
	}
}

// TestReadyzDrainingDeduped: a drain begun on a server with ingest
// mounted flips both the job side and the ingest side to draining;
// /readyz must list the reason once, not twice.
func TestReadyzDrainingDeduped(t *testing.T) {
	ing, err := ingest.New(ingest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Shutdown(context.Background())
	s := newTestServer(t, Config{Workers: 1, Runner: okRunner, Ingest: ing})
	h := s.Handler()

	s.BeginDrain()
	status, ready, reasons := getReadyz(t, h)
	if status != http.StatusServiceUnavailable || ready {
		t.Errorf("draining: status=%d ready=%v", status, ready)
	}
	if len(reasons) != 1 || reasons[0] != "draining" {
		t.Errorf("draining reasons = %v, want exactly one \"draining\"", reasons)
	}
}

// TestReadyzIngestSessionCap: an ingest surface at its session cap
// turns /readyz not-ready with the ingest reason, while the job queue
// is still fine — readiness covers both admission paths.
func TestReadyzIngestSessionCap(t *testing.T) {
	ing, err := ingest.New(ingest.Config{MaxSessions: 1, IdleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Shutdown(context.Background())
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Runner: okRunner, Ingest: ing})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Park one live upload to occupy the only session slot.
	pr, pw := io.Pipe()
	defer pw.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequest(http.MethodPost, hs.URL+"/ingest/Jmol/hold", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write([]byte("#lila text 1\n")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ing.Sessions() != 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	status, ready, reasons := getReadyz(t, s.Handler())
	if status != http.StatusServiceUnavailable || ready {
		t.Errorf("session cap: status=%d ready=%v", status, ready)
	}
	if len(reasons) != 1 || reasons[0] != "session-cap" {
		t.Errorf("session cap reasons = %v, want [session-cap]", reasons)
	}

	pw.Close()
	<-done
	if status, ready, _ := getReadyz(t, s.Handler()); status != http.StatusOK || !ready {
		t.Errorf("slot released: status=%d ready=%v, want ready again", status, ready)
	}
}
