package serve

import (
	"context"
	"errors"
	"io/fs"

	"lagalyzer/internal/treebuild"
)

// Error markers for retry classification.
var (
	// ErrWorkerPanic wraps a panic recovered inside a job attempt. It
	// is retryable: panics in this codebase have historically come from
	// data races and transient corruption, and the engine's chunk-level
	// containment means a retry runs from clean state.
	ErrWorkerPanic = errors.New("serve: worker panic")
	// ErrTransient marks an error as retryable by construction; wrap
	// with fmt.Errorf("...: %w", ErrTransient) in runners whose
	// failures are known to be momentary.
	ErrTransient = errors.New("serve: transient failure")
)

// Retryable classifies a job-attempt error for the retry loop,
// following the PR 3 health-ledger taxonomy: damage that is a
// deterministic function of the input (too-large sessions, missing or
// unreadable files, canceled or expired contexts) will fail the same
// way every time, so retrying only burns queue time. What remains —
// contained panics, explicitly transient markers, and errors
// advertising net.Error-style Temporary() — gets another attempt.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	// Permanent classes first: context outcomes are the job's deadline
	// or the server's shutdown; resource-guard and filesystem errors
	// are properties of the input.
	switch {
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, treebuild.ErrSessionTooLarge),
		errors.Is(err, fs.ErrNotExist),
		errors.Is(err, fs.ErrPermission):
		return false
	}
	if errors.Is(err, ErrWorkerPanic) || errors.Is(err, ErrTransient) {
		return true
	}
	var temp interface{ Temporary() bool }
	if errors.As(err, &temp) {
		return temp.Temporary()
	}
	return false
}
