package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/report"
	"lagalyzer/internal/sim"
)

// TestShardJobStudy runs a study-shaped shard through the real
// pipeline and checks the partial-state contract end to end: the
// /state endpoint serves a decodable checksum-framed payload holding
// exactly the app's session suite, and /result refuses the shard with
// a pointer to /state.
func TestShardJobStudy(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job, err := s.Submit(JobSpec{
		Kind: "shard", Apps: []string{"CrosswordSage"}, Sessions: 2, Seed: 7, Seconds: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateDone)

	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/state status = %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeShardState(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Suites) != 1 || st.Suites[0].App != "CrosswordSage" {
		t.Fatalf("shard suites = %+v, want one CrosswordSage suite", st.Suites)
	}
	if got := len(st.Suites[0].Sessions); got != 2 {
		t.Errorf("sessions = %d, want 2", got)
	}

	// The suite must be the same sessions a single-node run derives:
	// same seed, same session IDs.
	p, err := apps.ByName("CrosswordSage")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(sim.Config{Profile: p, SessionID: 0, Seed: 7, SessionSeconds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Suites[0].Sessions[0]; len(got.Episodes) != len(want.Episodes) {
		t.Errorf("shard session 0 has %d episodes, local sim has %d",
			len(got.Episodes), len(want.Episodes))
	}

	// A shard has no rendered result; callers are pointed at /state.
	rr, err := http.Get(ts.URL + "/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Errorf("/result on a shard = %s, want 409", rr.Status)
	}
	body, _ := io.ReadAll(rr.Body)
	if !strings.Contains(string(body), "/state") {
		t.Errorf("/result refusal %q does not point at /state", body)
	}
}

// shardCorpus writes a tiny two-app trace corpus and returns the dir
// and its sorted file list.
func shardCorpus(t *testing.T) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	write := func(name, app string, id int) {
		t.Helper()
		p, err := apps.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := sim.Run(sim.Config{Profile: p, SessionID: id, Seed: 5, SessionSeconds: 10})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := lila.WriteSession(&b, lila.FormatBinary, sess); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a0.lila", "CrosswordSage", 0)
	write("a1.lila", "CrosswordSage", 1)
	write("b0.lila", "JEdit", 0)
	paths, err := report.ListTraceFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	return dir, paths
}

// TestShardJobTraces: a traces-shaped shard loads exactly its file
// slice — no analysis — and returns the sessions grouped by app.
func TestShardJobTraces(t *testing.T) {
	dir, paths := shardCorpus(t)
	s := newTestServer(t, Config{Workers: 1})

	job, err := s.Submit(JobSpec{Kind: "shard", Dir: dir, Files: paths[:2]})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateDone)
	data, ok := s.ShardStateBytes(job.ID)
	if !ok {
		t.Fatal("done traces shard has no state")
	}
	st, err := DecodeShardState(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Suites) != 1 || st.Suites[0].App != "CrosswordSage" {
		t.Fatalf("suites = %+v, want one CrosswordSage suite", st.Suites)
	}
	if got := len(st.Suites[0].Sessions); got != 2 {
		t.Errorf("sessions = %d, want 2", got)
	}
}

// TestShardJobTracesAllBad: a shard whose every file fails to load is
// legitimate partial state — itemized file health, zero suites — not
// a failed job.
func TestShardJobTracesAllBad(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "junk.lila")
	if err := os.WriteFile(bad, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1})
	job, err := s.Submit(JobSpec{Kind: "shard", Dir: dir, Files: []string{bad}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateDone)
	data, _ := s.ShardStateBytes(job.ID)
	st, err := DecodeShardState(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Suites) != 0 {
		t.Errorf("suites = %d, want none", len(st.Suites))
	}
	if st.Health == nil || len(st.Health.Files) != 1 || st.Health.Files[0].Path != bad {
		t.Errorf("health = %+v, want the bad file itemized", st.Health)
	}
}

func TestShardValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Runner: okRunner})
	if _, err := s.Submit(JobSpec{Kind: "shard"}); err == nil {
		t.Error("shard with neither apps nor files accepted")
	}
	if _, err := s.Submit(JobSpec{Kind: "shard", Apps: []string{"CrosswordSage"}, Files: []string{"x"}}); err == nil {
		t.Error("shard with both apps and files accepted")
	}
	if _, err := s.Submit(JobSpec{Kind: "shard", Apps: []string{"NoSuchApp"}}); err == nil {
		t.Error("shard with unknown app accepted")
	}
}

// TestShardStateDamage: every way the framing can be damaged decodes
// to ErrBadShardState, never to a silently wrong state.
func TestShardStateDamage(t *testing.T) {
	st := &ShardState{Health: &report.StudyHealth{SessionsSkipped: 3}}
	data, err := EncodeShardState(st)
	if err != nil {
		t.Fatal(err)
	}
	if back, err := DecodeShardState(data); err != nil || back.Health.SessionsSkipped != 3 {
		t.Fatalf("clean round trip: %v, %+v", err, back)
	}
	damage := map[string][]byte{
		"short":        data[:10],
		"truncated":    data[:len(data)-4],
		"bad magic":    append([]byte("WRONGMAG"), data[8:]...),
		"payload flip": flipByte(data, len(data)-1),
		"sum flip":     flipByte(data, 12),
	}
	for name, d := range damage {
		if _, err := DecodeShardState(d); !errors.Is(err, ErrBadShardState) {
			t.Errorf("%s: err = %v, want ErrBadShardState", name, err)
		}
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x40
	return out
}

// TestHealthzDrainSequence is the satellite's drain test: /healthz
// answers 200 while serving and flips to 503 with a "draining" body
// the moment SIGTERM-style shutdown begins, while in-flight work
// finishes.
func TestHealthzDrainSequence(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
			<-release
			return okRunner(ctx, spec)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	getHealth := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := getHealth(); code != http.StatusOK || body["ok"] != true || body["draining"] != false {
		t.Fatalf("pre-drain healthz = %d %v, want 200 ok", code, body)
	}

	job, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateRunning)

	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	// The drain flag flips before the in-flight job is done.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	code, body := getHealth()
	if code != http.StatusServiceUnavailable {
		t.Errorf("mid-drain healthz status = %d, want 503", code)
	}
	if body["draining"] != true || body["ok"] != false {
		t.Errorf("mid-drain healthz body = %v, want draining", body)
	}

	close(release)
	<-done
	if st, _ := s.Status(job.ID); st.State != StateDone {
		t.Errorf("in-flight job = %s, want done (drain waits for it)", st.State)
	}
	// Still 503 after the drain completes: the process is going away.
	if code, _ := getHealth(); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain healthz status = %d, want 503", code)
	}
}

// TestBeginDrainBeforeShutdown: lagd flips the health signal with
// BeginDrain before closing its HTTP listener — /healthz must answer
// 503 and Submit must shed with ErrDraining from that moment, while
// the real Shutdown still drains normally afterwards.
func TestBeginDrainBeforeShutdown(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.BeginDrain()
	s.BeginDrain() // idempotent

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after BeginDrain = %d, want 503", resp.StatusCode)
	}
	if _, err := s.Submit(JobSpec{Kind: "study"}); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit after BeginDrain err = %v, want ErrDraining", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after BeginDrain: %v", err)
	}
	if _, err := s.Shutdown(ctx); err == nil {
		t.Error("second Shutdown succeeded, want already-shut-down error")
	}
}
