package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"lagalyzer/internal/obs"
	"lagalyzer/internal/report"
)

// Handler exposes the job API:
//
//	POST /jobs                    submit a JobSpec       → 202 {"id": ...}
//	GET  /jobs                    list jobs              → 200 [Status]
//	GET  /jobs/{id}               poll one job           → 200 Status
//	GET  /jobs/{id}/result        fetch the result       → 200 (text|html|json)
//	GET  /jobs/{id}/state         a shard job's partial state (checksum-framed)
//	GET  /jobs/{id}/selftrace     the job's own LiLa v2 trace (Config.SelfProfile)
//	GET  /healthz                 liveness: 200 while serving, 503 "draining"
//	                              once shutdown has begun
//	GET  /readyz                  readiness: 200 while the server would accept
//	                              work; 503 with JSON reasons (queue-saturated,
//	                              ingest-memory-budget, draining, ...) when not
//	GET  /metrics                 obs registry snapshot (text); ?format=prom or a
//	                              Prometheus Accept header switches to the
//	                              Prometheus text exposition format
//
// With Config.Ingest set, the live streaming surface mounts too:
//
//	POST /ingest/{app}/{session}  stream LiLa records (chunked); salvage-decoded,
//	                              budget-guarded, queryable mid-session (PUT works
//	                              too, for curl -T and PUT-only uploaders)
//	GET  /ingest/stats            committed per-window aggregates + live sessions
//
// Shed submissions answer 429 with a Retry-After hint; a draining
// server answers 503. When Config.Logger is set, every request is
// access-logged with method, path, status, and elapsed time.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/state", s.handleState)
	mux.HandleFunc("GET /jobs/{id}/selftrace", s.handleSelfTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", handleMetrics)
	if s.cfg.Ingest != nil {
		// PUT too: streaming uploaders (curl -T, most profiler agents)
		// default to PUT for "send this byte stream to this path".
		mux.HandleFunc("POST /ingest/{app}/{session}", s.cfg.Ingest.HandleIngest)
		mux.HandleFunc("PUT /ingest/{app}/{session}", s.cfg.Ingest.HandleIngest)
		mux.HandleFunc("GET /ingest/stats", s.cfg.Ingest.HandleStats)
	}
	return s.accessLog(mux)
}

// handleMetrics serves the process metrics: the obs text snapshot by
// default, the Prometheus exposition format on ?format=prom or when
// the Accept header asks for a versioned Prometheus/OpenMetrics
// payload (the header scrapers send).
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	accept := r.Header.Get("Accept")
	prom := format == "prom" ||
		(format == "" && (strings.Contains(accept, "version=0.0.4") ||
			strings.Contains(accept, "application/openmetrics-text")))
	switch {
	case prom:
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, obs.Default().FormatProm())
	case format == "" || format == "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, obs.Default().Snapshot().Format())
	default:
		http.Error(w, "unknown format "+format, http.StatusBadRequest)
	}
}

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// accessLog wraps the API with one structured log line per request.
func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.cfg.Logger.Info("http",
			"method", r.Method, "path", r.URL.Path, "status", rec.status,
			"bytes", rec.bytes, "remote", r.RemoteAddr,
			"elapsed", time.Since(start).Round(time.Microsecond).String())
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrShed):
		// Back-pressure to the client: try again once the queue has
		// drained a job or memory was released.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": job.ID})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if st.Kind == "shard" {
		// A shard's deliverable is its mergeable partial state, not a
		// rendered report (its result may hold bare suites with no
		// analysis rows).
		http.Error(w, fmt.Sprintf("job %s is a shard; fetch /jobs/%s/state", id, id),
			http.StatusConflict)
		return
	}
	res, ok := s.Result(id)
	if !ok {
		http.Error(w, fmt.Sprintf("job %s has no result yet (state %s)", id, st.State),
			http.StatusConflict)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report.FormatAll(res))
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, report.FormatHTML(res))
	case "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Status Status              `json:"status"`
			Rows   any                 `json:"rows"`
			Health *report.StudyHealth `json:"health,omitempty"`
		}{st, res.Rows, res.Health})
	default:
		http.Error(w, "unknown format "+format, http.StatusBadRequest)
	}
}

// handleState serves a finished shard job's checksum-framed partial
// state — the coordinator's merge input. The framing's SHA-256 lets
// the client detect any damage the network added.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	data, ok := s.ShardStateBytes(id)
	if !ok {
		http.Error(w, fmt.Sprintf("job %s has no partial state (state %s, kind %s)",
			id, st.State, st.Kind), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// handleSelfTrace serves a job's own execution as a LiLa v2 trace —
// ready to feed back through `lagalyzer report`.
func (s *Server) handleSelfTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	data, ok := s.SelfTrace(id)
	if !ok {
		http.Error(w, fmt.Sprintf("job %s has no self-trace (state %s; server must run with self-profiling on)", id, st.State),
			http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".lila"))
	w.Write(data)
}

// handleReadyz is the readiness probe, distinct from /healthz
// liveness: it answers whether the server would accept new work right
// now. A saturated job queue, an exhausted ingest memory budget, an
// ingest session cap, or a begun drain each turn it 503, with every
// applicable reason listed in the JSON body so operators see why
// traffic is being turned away rather than just that it is.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.Draining() {
		reasons = append(reasons, "draining")
	}
	if len(s.queue) >= cap(s.queue) {
		reasons = append(reasons, "queue-saturated")
	}
	if s.cfg.Ingest != nil {
		if ok, more := s.cfg.Ingest.Ready(); !ok {
			for _, reason := range more {
				if reason == "draining" && s.Draining() {
					continue // already listed
				}
				reasons = append(reasons, reason)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if len(reasons) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reasons": reasons})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"ready": true})
}

// handleHealthz is the liveness probe: 200 while serving, 503 with a
// "draining" body once SIGTERM drain begins — the endpoint itself
// keeps responding through the drain so liveness stays observable.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{
			"ok":       false,
			"draining": true,
		})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{
		"ok":       true,
		"draining": false,
	})
}
