package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"lagalyzer/internal/obs"
	"lagalyzer/internal/report"
)

// Handler exposes the job API:
//
//	POST /jobs                  submit a JobSpec       → 202 {"id": ...}
//	GET  /jobs                  list jobs              → 200 [Status]
//	GET  /jobs/{id}             poll one job           → 200 Status
//	GET  /jobs/{id}/result      fetch the result       → 200 (text|html|json)
//	GET  /healthz               liveness + drain state
//	GET  /metrics               obs registry snapshot (text)
//
// Shed submissions answer 429 with a Retry-After hint; a draining
// server answers 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, obs.Default().Snapshot().Format())
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrShed):
		// Back-pressure to the client: try again once the queue has
		// drained a job or memory was released.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": job.ID})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	res, ok := s.Result(id)
	if !ok {
		http.Error(w, fmt.Sprintf("job %s has no result yet (state %s)", id, st.State),
			http.StatusConflict)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, report.FormatAll(res))
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, report.FormatHTML(res))
	case "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Status Status              `json:"status"`
			Rows   any                 `json:"rows"`
			Health *report.StudyHealth `json:"health,omitempty"`
		}{st, res.Rows, res.Health})
	default:
		http.Error(w, "unknown format "+format, http.StatusBadRequest)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"ok":       true,
		"draining": s.Draining(),
	})
}
