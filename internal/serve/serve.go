// Package serve is the supervised analysis service behind cmd/lagd:
// a bounded job queue feeding panic-isolated workers that run profile
// studies and trace-directory analyses with per-job deadlines,
// retry-with-backoff for transient failures, admission control that
// sheds load before memory is committed, and a graceful shutdown that
// drains in-flight work and checkpoints the rest.
//
// The supervision model is per-job, not per-process: a job that
// panics, times out, or trips a resource guard fails (or retries)
// alone, and the server keeps serving. Combined with the
// report-layer's crash-safe study checkpoints, a restarted server
// resumes persisted jobs without repeating completed per-app work.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/ingest"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/obs/selftrace"
	"lagalyzer/internal/report"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
)

// Serve metrics (ISSUE 4): inflight is a gauge over running jobs; shed
// counts admissions refused by load control; retries counts re-runs of
// retryable failures. checkpoint_hits_total lives in the checkpoint
// package.
var (
	mInflight = obs.NewGauge("serve_jobs_inflight",
		"jobs currently executing on a worker")
	mShed = obs.NewCounter("serve_jobs_shed_total",
		"job submissions refused by admission control (queue full or memory budget)")
	mRetries = obs.NewCounter("serve_retries_total",
		"job attempts re-run after a retryable failure")
	mAccepted = obs.NewCounter("serve_jobs_accepted_total",
		"job submissions admitted to the queue")
	mPanics = obs.NewCounter("engine_panics_recovered_total",
		"worker panics contained and converted to attributed errors")
)

// JobState is a job's position in its lifecycle.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
	// StateCheckpointed marks a job the server accepted but persisted
	// for the next process instead of finishing (graceful shutdown).
	StateCheckpointed JobState = "checkpointed"
)

// JobSpec describes one unit of analysis work, as submitted over the
// HTTP API.
type JobSpec struct {
	// Kind selects the pipeline: "study" simulates and characterizes a
	// profile study; "traces" ingests and characterizes a directory of
	// recorded LiLa traces; "shard" runs one partition of a distributed
	// study (a subset of apps, or an explicit subset of trace files)
	// and keeps its mergeable partial state for GET /jobs/{id}/state.
	Kind string `json:"kind"`

	// Study parameters (Kind "study"; "shard" requires a non-empty
	// Apps for a study-shaped shard). Empty Apps means the full
	// catalog.
	Apps     []string `json:"apps,omitempty"`
	Sessions int      `json:"sessions,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	Seconds  float64  `json:"seconds,omitempty"`

	// Trace parameters (Kind "traces"). A traces-shaped "shard" instead
	// names its exact input files in Files (the coordinator owns the
	// directory walk and the partition).
	Dir     string   `json:"dir,omitempty"`
	Files   []string `json:"files,omitempty"`
	Salvage bool     `json:"salvage,omitempty"`

	// DeadlineMS bounds the job's execution (per attempt); 0 takes the
	// server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Job is one accepted unit of work. Fields other than Result are
// guarded by the server mutex; read them through Status.
type Job struct {
	ID       string
	Spec     JobSpec
	State    JobState
	Attempts int
	Err      string
	// Result holds the (possibly partial) study outcome once the job
	// ran; nil until then.
	Result *report.StudyResult

	estimate int64
	started  time.Time
	// selfTrace is the LiLa v2 encoding of the job's own pipeline
	// spans (Config.SelfProfile), served by GET /jobs/{id}/selftrace.
	selfTrace []byte
	// shardState is the checksum-framed partial state of a finished
	// "shard" job, served by GET /jobs/{id}/state.
	shardState []byte
}

// Status is the externally visible snapshot of a job.
type Status struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	State    JobState `json:"state"`
	Attempts int      `json:"attempts,omitempty"`
	Error    string   `json:"error,omitempty"`
	// Partial marks a done job whose study lost whole units of work
	// (the HTTP analogue of exit code 3).
	Partial bool `json:"partial,omitempty"`
}

// Runner executes one job attempt. Tests substitute fakes; production
// uses the server's built-in pipeline dispatch.
type Runner func(ctx context.Context, spec JobSpec) (*report.StudyResult, error)

// Config tunes the server. Zero fields take the documented defaults.
type Config struct {
	// Workers is the worker pool size (default 2).
	Workers int
	// QueueDepth bounds the pending-job queue (default 16); a full
	// queue sheds with 429.
	QueueDepth int
	// DefaultDeadline bounds each job attempt when the spec does not
	// (default 2 minutes).
	DefaultDeadline time.Duration
	// MaxRetries is the number of re-runs granted to retryable
	// failures (default 2; 3 attempts total).
	MaxRetries int
	// RetryBase scales the exponential backoff (default 100ms; tests
	// shrink it).
	RetryBase time.Duration
	// ShutdownGrace is how long Shutdown lets in-flight jobs finish
	// before canceling their contexts (default 5s). The deadline passed
	// to Shutdown caps the whole sequence.
	ShutdownGrace time.Duration
	// StateDir, when non-empty, persists shutdown-checkpointed jobs to
	// pending.json and roots the per-study checkpoint stores; a new
	// server over the same StateDir restores and re-queues them.
	StateDir string
	// MemoryBudget bounds the summed memory estimates of admitted,
	// unfinished jobs (default lila.DefaultLimits().MaxSessionBytes).
	MemoryBudget int64
	// Limits are the ingest resource guards for trace jobs; zero
	// fields take lila defaults.
	Limits lila.Limits
	// LoadJobs bounds per-job concurrent trace-file decoding
	// (0 = one per CPU, 1 = sequential). Total decode parallelism is
	// Workers × LoadJobs; cap it on small machines.
	LoadJobs int
	// SelfProfile records each job's pipeline spans and keeps them as
	// a LiLa v2 self-trace, downloadable via GET /jobs/{id}/selftrace
	// and — with StateDir — persisted under StateDir/selftrace beside
	// the checkpoint stores.
	SelfProfile bool
	// Logger receives structured job-lifecycle and HTTP access logs;
	// nil disables logging (tests, embedded use).
	Logger *slog.Logger
	// Runner overrides job execution (tests); nil runs the real
	// pipelines.
	Runner Runner
	// Ingest, when non-nil, mounts the live streaming ingestion
	// surface (POST /ingest/{app}/{session}, GET /ingest/stats) on the
	// handler and ties the ingest server's drain and shutdown to this
	// server's.
	Ingest *ingest.Server
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 2
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 16
}

func (c Config) defaultDeadline() time.Duration {
	if c.DefaultDeadline > 0 {
		return c.DefaultDeadline
	}
	return 2 * time.Minute
}

func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 2
}

func (c Config) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return 100 * time.Millisecond
}

func (c Config) shutdownGrace() time.Duration {
	if c.ShutdownGrace > 0 {
		return c.ShutdownGrace
	}
	return 5 * time.Second
}

func (c Config) memoryBudget() int64 {
	if c.MemoryBudget > 0 {
		return c.MemoryBudget
	}
	return lila.DefaultLimits().MaxSessionBytes
}

// Submission errors. ErrShed carries the 429 semantics (the client
// should back off and retry); ErrDraining the 503 (the server is going
// away).
var (
	ErrShed     = errors.New("serve: load shed, retry later")
	ErrDraining = errors.New("serve: draining, not accepting jobs")
)

// Server is the supervised job service.
type Server struct {
	cfg   Config
	queue chan *Job

	// runCtx cancels every job attempt; Shutdown cancels it when the
	// grace period expires.
	runCtx    context.Context
	cancelRun context.CancelFunc

	wg sync.WaitGroup

	mu       sync.Mutex
	draining bool
	shut     bool
	jobs     map[string]*Job
	order    []string
	nextID   int
	inflight int
	memInUse int64
	// pending collects jobs to persist at shutdown: still-queued ones
	// plus in-flight jobs cut off by the grace deadline.
	pending []*Job
	// idle is signalled whenever inflight drops to zero.
	idle chan struct{}
}

// discardHandler drops every record; it stands in for a nil
// Config.Logger so call sites never nil-check. (The stdlib gained an
// equivalent in go1.24; this stays compatible with the module's go
// directive.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// New starts a server: spawns the worker pool and, when cfg.StateDir
// holds a pending.json from a previous shutdown, restores and
// re-queues those jobs.
func New(cfg Config) (*Server, error) {
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *Job, cfg.queueDepth()),
		jobs:  map[string]*Job{},
		idle:  make(chan struct{}, 1),
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	if err := s.restorePending(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit admits a job or sheds it. The returned job is queued;
// progress is observed through Status.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	est := estimateMemory(spec, s.cfg)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	// Admission control, memory axis: refuse work whose estimated
	// footprint would push the admitted total past the budget. The
	// estimate is deliberately pessimistic — shedding is cheap,
	// thrashing is not.
	if s.memInUse+est > s.cfg.memoryBudget() {
		s.mu.Unlock()
		mShed.Inc()
		return nil, fmt.Errorf("%w (estimated %d bytes over budget)", ErrShed, est)
	}
	s.nextID++
	job := &Job{
		ID:       fmt.Sprintf("job-%d", s.nextID),
		Spec:     spec,
		State:    StateQueued,
		estimate: est,
	}
	// Admission control, queue axis: a full queue sheds instead of
	// blocking the submitter.
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		mShed.Inc()
		return nil, fmt.Errorf("%w (queue full)", ErrShed)
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.memInUse += est
	queued := len(s.queue)
	s.mu.Unlock()
	mAccepted.Inc()
	s.cfg.Logger.Info("job accepted",
		"job", job.ID, "kind", spec.Kind, "state", string(StateQueued), "queue", queued)
	return job, nil
}

// Status returns a job's snapshot.
func (s *Server) Status(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	return statusOf(job), true
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, statusOf(s.jobs[id]))
	}
	return out
}

// Result returns a finished job's study result (possibly partial).
func (s *Server) Result(id string) (*report.StudyResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok || job.Result == nil {
		return nil, false
	}
	return job.Result, true
}

func statusOf(job *Job) Status {
	st := Status{
		ID:       job.ID,
		Kind:     job.Spec.Kind,
		State:    job.State,
		Attempts: job.Attempts,
		Error:    job.Err,
	}
	if job.Result != nil {
		st.Partial = job.Result.Partial()
	}
	return st
}

// Draining reports whether drain has begun (BeginDrain or Shutdown).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// BeginDrain flips the drain signal ahead of Shutdown: /healthz
// answers 503 with a draining body and Submit sheds with ErrDraining,
// so load balancers and distributed-study coordinators stop routing
// here while the HTTP listener finishes its connection drain.
// Idempotent; Shutdown still performs the actual drain and must be
// called afterwards.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if s.cfg.Ingest != nil {
		// Live ingest sessions flush their partial aggregates and close
		// with drained=true, so the HTTP listener's connection drain is
		// not held open by endless streams.
		s.cfg.Ingest.BeginDrain()
	}
}

func validateSpec(spec JobSpec) error {
	switch spec.Kind {
	case "study":
		for _, name := range spec.Apps {
			if _, err := apps.ByName(name); err != nil {
				return fmt.Errorf("serve: %w", err)
			}
		}
		return nil
	case "traces":
		if spec.Dir == "" {
			return errors.New("serve: traces job needs dir")
		}
		return nil
	case "shard":
		// A shard is study-shaped (explicit apps) or traces-shaped
		// (explicit files) — exactly one, and never the implicit "whole
		// catalog"/"whole directory" forms: the coordinator owns the
		// partition, the worker must not guess it.
		if len(spec.Apps) > 0 && len(spec.Files) > 0 {
			return errors.New("serve: shard job takes apps or files, not both")
		}
		if len(spec.Apps) == 0 && len(spec.Files) == 0 {
			return errors.New("serve: shard job needs apps or files")
		}
		for _, name := range spec.Apps {
			if _, err := apps.ByName(name); err != nil {
				return fmt.Errorf("serve: %w", err)
			}
		}
		return nil
	}
	return fmt.Errorf("serve: unknown job kind %q", spec.Kind)
}

// estimateMemory predicts a job's peak footprint for admission
// control. Trace jobs sum their input file sizes (the session tree
// costs a small multiple of the wire size; the lila session budget
// caps any single file). Study jobs scale with simulated
// app-session-seconds using a coarse per-second constant measured from
// the simulator's output density.
func estimateMemory(spec JobSpec, cfg Config) int64 {
	switch spec.Kind {
	case "traces":
		var total int64
		filepath.WalkDir(spec.Dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil
			}
			if info, err := d.Info(); err == nil {
				total += info.Size()
			}
			return nil
		})
		return total
	case "shard":
		if len(spec.Files) > 0 {
			var total int64
			for _, path := range spec.Files {
				if info, err := os.Stat(path); err == nil {
					total += info.Size()
				}
			}
			return total
		}
		// Study-shaped shard: same per-session-second constant as a
		// study job, over the shard's explicit app list.
		shard := spec
		shard.Kind = "study"
		return estimateMemory(shard, cfg)
	case "study":
		nApps := len(spec.Apps)
		if nApps == 0 {
			nApps = len(apps.Catalog())
		}
		sessions := spec.Sessions
		if sessions == 0 {
			sessions = 4
		}
		seconds := spec.Seconds
		if seconds == 0 {
			seconds = 300 // profiles default to minutes-long sessions
		}
		const bytesPerSessionSecond = 64 << 10
		return int64(nApps) * int64(sessions) * int64(seconds*bytesPerSessionSecond)
	}
	return 0
}

// worker pulls jobs until the queue closes. A job received after
// draining began is parked for checkpointing rather than started —
// this closes the race between Shutdown collecting the queue and a
// worker picking up one last job.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.mu.Lock()
		if s.draining {
			job.State = StateCheckpointed
			s.pending = append(s.pending, job)
			s.mu.Unlock()
			continue
		}
		job.State = StateRunning
		job.started = time.Now()
		s.inflight++
		queued := len(s.queue)
		s.mu.Unlock()
		mInflight.Add(1)
		s.cfg.Logger.Info("job running",
			"job", job.ID, "kind", job.Spec.Kind, "state", string(StateRunning), "queue", queued)

		s.runJob(job)
	}
}

// runJob supervises one job: deadline per attempt, retry with
// exponential backoff and deterministic jitter for retryable errors,
// panic isolation, and checkpointing when shutdown cuts it off.
func (s *Server) runJob(job *Job) {
	defer func() {
		mInflight.Add(-1)
		s.mu.Lock()
		s.inflight--
		s.memInUse -= job.estimate
		if s.inflight == 0 {
			select {
			case s.idle <- struct{}{}:
			default:
			}
		}
		s.mu.Unlock()
	}()

	deadline := s.cfg.defaultDeadline()
	if job.Spec.DeadlineMS > 0 {
		deadline = time.Duration(job.Spec.DeadlineMS) * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		job.Attempts = attempt + 1
		s.mu.Unlock()

		err := s.runOnce(job, deadline)

		s.mu.Lock()
		queued := len(s.queue)
		if err == nil {
			job.State = StateDone
			job.Err = ""
			s.mu.Unlock()
			s.logLifecycle(job, StateDone, queued, nil)
			return
		}
		// Shutdown cut the attempt off: the job goes back into the
		// pending set so the next server instance finishes it (its
		// per-app study checkpoints survive on disk).
		if s.draining && s.runCtx.Err() != nil {
			job.State = StateCheckpointed
			job.Err = err.Error()
			s.pending = append(s.pending, job)
			s.mu.Unlock()
			s.logLifecycle(job, StateCheckpointed, queued, err)
			return
		}
		if !Retryable(err) || attempt >= s.cfg.maxRetries() {
			job.State = StateFailed
			job.Err = err.Error()
			s.mu.Unlock()
			s.logLifecycle(job, StateFailed, queued, err)
			return
		}
		job.Err = err.Error()
		s.mu.Unlock()
		mRetries.Inc()
		s.cfg.Logger.Warn("job retrying",
			"job", job.ID, "kind", job.Spec.Kind, "state", string(StateRunning),
			"queue", queued, "attempt", attempt+1, "err", err.Error(),
			"elapsed", time.Since(job.started).Round(time.Millisecond).String())
		select {
		case <-time.After(backoff(s.cfg.retryBase(), attempt, job.ID)):
		case <-s.runCtx.Done():
			// Keep looping: the next runOnce fails fast with the
			// cancellation, and the draining branch checkpoints the job.
		}
	}
}

// logLifecycle emits one structured line for a job's terminal states.
func (s *Server) logLifecycle(job *Job, state JobState, queued int, cause error) {
	args := []any{
		"job", job.ID, "kind", job.Spec.Kind, "state", string(state),
		"queue", queued, "attempts", job.Attempts,
		"elapsed", time.Since(job.started).Round(time.Millisecond).String(),
	}
	if cause != nil {
		args = append(args, "err", cause.Error())
		s.cfg.Logger.Warn("job finished", args...)
		return
	}
	s.cfg.Logger.Info("job finished", args...)
}

// runOnce executes a single attempt under the job deadline with panic
// containment: a panicking pipeline is converted to ErrWorkerPanic
// (retryable) instead of taking the worker down.
func (s *Server) runOnce(job *Job, deadline time.Duration) (err error) {
	ctx, cancel := context.WithTimeout(s.runCtx, deadline)
	defer cancel()
	// With self-profiling on, the attempt's pipeline spans are recorded
	// into a fresh trace (each attempt overwrites the last: the trace
	// that survives describes the run that produced the result). The
	// save defer is registered before the recover defer, so a panicking
	// attempt still flushes the spans it completed.
	if s.cfg.SelfProfile {
		tr := obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
		defer s.saveSelfTrace(job, tr)
	}
	defer func() {
		if r := recover(); r != nil {
			mPanics.Inc()
			err = fmt.Errorf("%w: %v", ErrWorkerPanic, r)
		}
	}()
	runner := s.cfg.Runner
	if runner == nil {
		runner = s.run
	}
	res, err := runner(ctx, job.Spec)
	var state []byte
	if job.Spec.Kind == "shard" && err == nil && res != nil {
		// Freeze the mergeable partial state now, while the attempt owns
		// the result: the coordinator fetches these exact bytes from
		// GET /jobs/{id}/state and verifies their checksum end to end.
		state, err = EncodeShardState(shardStateOf(res))
	}
	s.mu.Lock()
	if res != nil {
		job.Result = res
	}
	if state != nil {
		job.shardState = state
	}
	s.mu.Unlock()
	return err
}

// ShardStateBytes returns a finished shard job's checksum-framed
// partial state, if any.
func (s *Server) ShardStateBytes(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok || job.shardState == nil || job.State != StateDone {
		return nil, false
	}
	return job.shardState, true
}

// saveSelfTrace encodes a job attempt's span trace as LiLa v2, keeps
// the bytes on the job for the download endpoint, and — when the
// server persists state — writes StateDir/selftrace/<job>.lila beside
// the checkpoint stores. Failures are logged, never fatal: the job's
// result must not depend on its observability.
func (s *Server) saveSelfTrace(job *Job, tr *obs.Trace) {
	sid := 0
	fmt.Sscanf(job.ID, "job-%d", &sid)
	data, err := selftrace.Encode(tr, selftrace.Options{App: "lagd-" + job.Spec.Kind, SessionID: sid})
	if err != nil {
		s.cfg.Logger.Warn("self-trace encode failed", "job", job.ID, "err", err.Error())
		return
	}
	s.mu.Lock()
	job.selfTrace = data
	s.mu.Unlock()
	if s.cfg.StateDir == "" {
		return
	}
	path := filepath.Join(s.cfg.StateDir, "selftrace", job.ID+".lila")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err == nil {
		err = obs.WriteFileAtomic(path, data, 0o644)
	} else {
		err = fmt.Errorf("creating selftrace dir: %w", err)
	}
	if err != nil {
		s.cfg.Logger.Warn("self-trace write failed", "job", job.ID, "err", err.Error())
	}
}

// SelfTrace returns a job's LiLa v2 self-trace bytes, if the job ran
// with Config.SelfProfile and has completed at least one attempt.
func (s *Server) SelfTrace(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok || job.selfTrace == nil {
		return nil, false
	}
	return job.selfTrace, true
}

// run is the production Runner: dispatch on the spec kind into the
// report pipelines, threading the study checkpoint store through
// StateDir so a job interrupted by shutdown resumes its completed apps.
func (s *Server) run(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
	switch spec.Kind {
	case "study":
		var profiles []*sim.Profile
		for _, name := range spec.Apps {
			p, err := apps.ByName(name)
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
		cfg := report.StudyConfig{
			Apps:           profiles,
			SessionsPerApp: spec.Sessions,
			Seed:           spec.Seed,
			SessionSeconds: spec.Seconds,
		}
		if s.cfg.StateDir != "" {
			cfg.CheckpointDir = filepath.Join(s.cfg.StateDir, "checkpoint", cfg.Hash())
		}
		return report.RunStudyContext(ctx, cfg)
	case "traces":
		suites, health, err := report.LoadTraceDirContext(ctx, spec.Dir, report.LoadOptions{
			Salvage: spec.Salvage,
			Limits:  s.cfg.Limits,
			Jobs:    s.cfg.LoadJobs,
		})
		if err != nil {
			return nil, err
		}
		res := report.AnalyzeSuitesContext(ctx, suites, trace.DefaultPerceptibleThreshold, nil)
		res.Health.Merge(health)
		if cerr := ctx.Err(); cerr != nil {
			return res, cerr
		}
		if len(res.Apps) == 0 {
			return res, errors.New("serve: no app survived analysis")
		}
		return res, nil
	case "shard":
		return s.runShard(ctx, spec)
	}
	return nil, fmt.Errorf("serve: unknown job kind %q", spec.Kind)
}

// runShard executes one partition of a distributed study. A
// study-shaped shard (explicit apps) runs the normal study pipeline —
// simulation plus analysis, so a sick shard fails loudly here instead
// of poisoning the coordinator's merge — and reuses the worker's own
// checkpoint store under StateDir, which turns repeated dispatches of
// the same shard (coordinator retries, hedges won elsewhere) into
// cache hits. A traces-shaped shard (explicit files) only LOADS its
// files: the coordinator analyzes the merged per-app suites, because
// an app's sessions may span shards and per-shard analysis of a
// partial suite would diverge from the single-node result.
func (s *Server) runShard(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
	if len(spec.Apps) > 0 {
		var profiles []*sim.Profile
		for _, name := range spec.Apps {
			p, err := apps.ByName(name)
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
		cfg := report.StudyConfig{
			Apps:           profiles,
			SessionsPerApp: spec.Sessions,
			Seed:           spec.Seed,
			SessionSeconds: spec.Seconds,
		}
		if s.cfg.StateDir != "" {
			cfg.CheckpointDir = filepath.Join(s.cfg.StateDir, "checkpoint", cfg.Hash())
		}
		return report.RunStudyContext(ctx, cfg)
	}
	suites, health, err := report.LoadTraceDirContext(ctx, spec.Dir, report.LoadOptions{
		Paths:   spec.Files,
		Salvage: spec.Salvage,
		Limits:  s.cfg.Limits,
		Jobs:    s.cfg.LoadJobs,
	})
	if err != nil {
		if health == nil {
			return nil, err
		}
		// Every file in the shard failed to load. For a whole directory
		// that is fatal, but for one partition it is legitimate partial
		// state: the losses are itemized per file in the health ledger,
		// and the coordinator merges them exactly as a single-node scan
		// would have recorded them.
		return &report.StudyResult{Health: health}, nil
	}
	res := &report.StudyResult{Health: health}
	for _, suite := range suites {
		res.Apps = append(res.Apps, &report.AppResult{Suite: suite})
	}
	return res, nil
}

// Shutdown drains the server: stop admissions, collect still-queued
// jobs for checkpointing, let in-flight jobs finish within the grace
// period (bounded additionally by ctx), then cancel stragglers and
// checkpoint them too. It returns the number of jobs checkpointed for
// the next instance. The server is unusable afterwards.
func (s *Server) Shutdown(ctx context.Context) (int, error) {
	s.mu.Lock()
	if s.shut {
		s.mu.Unlock()
		return 0, errors.New("serve: already shut down")
	}
	s.shut = true
	s.draining = true
	// Close under the mutex: Submit holds it across its queue send, so
	// no submission can race the close and panic on a closed channel.
	close(s.queue)
	s.mu.Unlock()

	// Collect everything still queued. Workers that race us to the
	// channel see draining set and park their job in pending themselves.
	for job := range s.queue {
		s.mu.Lock()
		job.State = StateCheckpointed
		s.pending = append(s.pending, job)
		s.mu.Unlock()
	}

	// Phase 2: wait for in-flight jobs — up to the grace period, and
	// never past the caller's deadline.
	grace := time.NewTimer(s.cfg.shutdownGrace())
	defer grace.Stop()
	for {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-s.idle:
		case <-grace.C:
			s.cancelRun()
		case <-ctx.Done():
			s.cancelRun()
		}
		if s.runCtx.Err() != nil {
			// Canceled: wait for the workers to observe it and park
			// their jobs, which is prompt (engine probes every 64
			// episodes).
			s.wg.Wait()
			break
		}
	}
	s.cancelRun()
	s.wg.Wait()

	n, err := s.persistPending()
	if s.cfg.Ingest != nil {
		// Drain the streaming side too: flush every live session's
		// partials and rotate the journal into a fresh snapshot.
		if _, ierr := s.cfg.Ingest.Shutdown(ctx); ierr != nil && err == nil {
			err = fmt.Errorf("serve: ingest shutdown: %w", ierr)
		}
	}
	return n, err
}

// persistPending writes the checkpointed jobs' specs to
// StateDir/pending.json (atomic), so New can re-queue them.
func (s *Server) persistPending() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.Slice(s.pending, func(i, j int) bool { return s.pending[i].ID < s.pending[j].ID })
	n := len(s.pending)
	if n == 0 || s.cfg.StateDir == "" {
		return n, nil
	}
	specs := make([]JobSpec, 0, n)
	for _, job := range s.pending {
		specs = append(specs, job.Spec)
	}
	data, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		return n, err
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return n, err
	}
	return n, obs.WriteFileAtomic(filepath.Join(s.cfg.StateDir, "pending.json"), append(data, '\n'), 0o644)
}

// restorePending re-queues jobs persisted by a previous shutdown.
func (s *Server) restorePending() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	path := filepath.Join(s.cfg.StateDir, "pending.json")
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var specs []JobSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return fmt.Errorf("serve: corrupt pending.json: %w", err)
	}
	if err := os.Remove(path); err != nil {
		return err
	}
	for _, spec := range specs {
		if _, err := s.Submit(spec); err != nil {
			return fmt.Errorf("serve: re-queueing persisted job: %w", err)
		}
	}
	return nil
}

// backoff computes the delay before retry attempt+1: exponential in
// the attempt with a deterministic jitter derived from the job ID, so
// a thundering herd of same-shaped jobs still spreads out while tests
// stay reproducible.
func backoff(base time.Duration, attempt int, jobID string) time.Duration {
	d := base << uint(attempt)
	const maxBackoff = 30 * time.Second
	if d > maxBackoff {
		d = maxBackoff
	}
	h := fnv.New64a()
	h.Write([]byte(jobID))
	h.Write([]byte{byte(attempt)})
	jitter := time.Duration(h.Sum64() % uint64(base))
	return d + jitter
}
