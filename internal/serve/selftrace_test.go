package serve

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lagalyzer/internal/obs"
	"lagalyzer/internal/report"
	"lagalyzer/internal/treebuild"
)

// spanRunner records a small span tree on the job context, the way the
// real study runner does, so the self-trace has intervals to place.
func spanRunner(ctx context.Context, spec JobSpec) (*report.StudyResult, error) {
	ctx, end := obs.Span(ctx, "study")
	_, endSim := obs.Span(ctx, "simulate")
	time.Sleep(time.Millisecond)
	endSim()
	_, endEng := obs.Span(ctx, "engine")
	time.Sleep(time.Millisecond)
	endEng()
	end()
	return &report.StudyResult{Health: &report.StudyHealth{}}, nil
}

func TestSelfProfileCapturedAndServed(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{
		Workers:     1,
		Runner:      spanRunner,
		SelfProfile: true,
		StateDir:    dir,
	})
	job, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateDone)

	data, ok := s.SelfTrace(job.ID)
	if !ok || len(data) == 0 {
		t.Fatal("done job has no self-trace despite SelfProfile")
	}
	// The bytes must be a loadable LiLa v2 session with the job's spans
	// as episodes — the whole point is feeding it back to the analyzer.
	sess, err := treebuild.ReadSession(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("self-trace does not decode: %v", err)
	}
	if sess.App != "lagd-study" {
		t.Errorf("App = %q, want lagd-study", sess.App)
	}
	if len(sess.Episodes) == 0 {
		t.Error("self-trace has no episodes")
	}

	// Persisted beside the checkpoint state for post-mortem analysis.
	onDisk, err := os.ReadFile(filepath.Join(dir, "selftrace", job.ID+".lila"))
	if err != nil {
		t.Fatalf("persisted self-trace: %v", err)
	}
	if !bytes.Equal(onDisk, data) {
		t.Error("persisted self-trace differs from the served bytes")
	}

	// And over HTTP.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/selftrace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET selftrace = %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, data) {
		t.Error("HTTP self-trace differs from SelfTrace()")
	}
	if got := resp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Errorf("Content-Type = %q", got)
	}
}

func TestSelfTraceAbsentWithoutFlag(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Runner: spanRunner})
	job, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateDone)
	if _, ok := s.SelfTrace(job.ID); ok {
		t.Error("self-trace present without SelfProfile")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/selftrace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("GET selftrace without flag = %d, want 409", resp.StatusCode)
	}
}

func TestMetricsPromNegotiation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Runner: okRunner})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path, accept string) (int, string, string) {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	// Default stays the obs text snapshot.
	code, ct, body := get("/metrics", "")
	if code != 200 || strings.Contains(body, "# TYPE") {
		t.Errorf("default /metrics = %d, prom-formatted? body:\n%.200s", code, body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default Content-Type = %q", ct)
	}

	// ?format=prom switches to the exposition format.
	code, ct, body = get("/metrics?format=prom", "")
	if code != 200 || !strings.Contains(body, "# TYPE") {
		t.Errorf("prom /metrics = %d, body:\n%.200s", code, body)
	}
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("prom Content-Type = %q", ct)
	}

	// A Prometheus scraper's Accept header selects prom too.
	code, _, body = get("/metrics", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if code != 200 || !strings.Contains(body, "# TYPE") {
		t.Errorf("Accept-negotiated /metrics = %d, body:\n%.200s", code, body)
	}

	// Unknown formats are rejected.
	if code, _, _ = get("/metrics?format=xml", ""); code != http.StatusBadRequest {
		t.Errorf("format=xml = %d, want 400", code)
	}
}

func TestStructuredLogs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s := newTestServer(t, Config{Workers: 1, Runner: okRunner, Logger: logger})
	job, err := s.Submit(JobSpec{Kind: "study"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateDone)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	logs := buf.String()
	for _, want := range []string{
		`"msg":"job accepted"`,
		`"msg":"job running"`,
		`"msg":"job finished"`,
		`"job":"` + job.ID + `"`,
		`"state":"done"`,
		`"msg":"http"`,
		`"path":"/healthz"`,
		`"status":200`,
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("logs missing %s in:\n%s", want, logs)
		}
	}
}
