package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"

	"lagalyzer/internal/report"
	"lagalyzer/internal/trace"
)

// Shard partial state: the wire form a worker lagd returns for a
// "shard" job, consumed by the distributed coordinator
// (internal/dist). The payload is the mergeable part of a study — the
// session suites plus the shard's health ledger — NOT the derived
// analysis: the engine re-derives analysis deterministically at the
// coordinator, which is what makes a distributed merge byte-identical
// to a single-node run (the same argument that makes checkpoint
// resume byte-identical).
//
// Framing is paranoid by design, because this payload crosses a
// network that the fault-injection suite is allowed to damage:
//
//	8 bytes  magic "LAGSHRD1"
//	32 bytes SHA-256 of the gob payload
//	N bytes  gob(ShardState)
//
// Any truncation, reset, or bit flip — in the header, checksum, or
// payload — surfaces as ErrBadShardState, never as a silently wrong
// merge. The coordinator treats ErrBadShardState as retryable wire
// damage.

// shardStateMagic identifies (and versions) the shard-state framing.
const shardStateMagic = "LAGSHRD1"

// ErrBadShardState marks a shard-state payload that failed its framing
// or checksum validation: the bytes on the wire are not the bytes the
// worker produced.
var ErrBadShardState = errors.New("serve: shard state damaged in transit")

// ShardState is one worker's contribution to a distributed study.
type ShardState struct {
	// Suites are the session suites the shard produced (simulated apps
	// or loaded trace files), in the shard's deterministic order:
	// profile order for study shards, sorted-app order for trace
	// shards.
	Suites []*trace.Suite
	// Health itemizes everything the shard lost or worked around, in
	// the same per-file/per-app shape the single-node pipeline uses, so
	// the coordinator's merged ledger is indistinguishable from a local
	// run's.
	Health *report.StudyHealth
}

// EncodeShardState serializes st with checksum framing.
func EncodeShardState(st *ShardState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("serve: encoding shard state: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	out := make([]byte, 0, len(shardStateMagic)+len(sum)+buf.Len())
	out = append(out, shardStateMagic...)
	out = append(out, sum[:]...)
	out = append(out, buf.Bytes()...)
	return out, nil
}

// DecodeShardState parses and verifies a shard-state payload. Every
// failure mode — short header, wrong magic, checksum mismatch, gob
// damage — returns an error wrapping ErrBadShardState.
func DecodeShardState(data []byte) (*ShardState, error) {
	header := len(shardStateMagic) + sha256.Size
	if len(data) < header {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header",
			ErrBadShardState, len(data), header)
	}
	if string(data[:len(shardStateMagic)]) != shardStateMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadShardState, data[:len(shardStateMagic)])
	}
	payload := data[header:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[len(shardStateMagic):header]) {
		return nil, fmt.Errorf("%w: checksum mismatch over %d payload bytes",
			ErrBadShardState, len(payload))
	}
	var st ShardState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		// The checksum passed but gob still failed: the worker encoded
		// something this build cannot read (version skew), which is just
		// as unusable as wire damage.
		return nil, fmt.Errorf("%w: %v", ErrBadShardState, err)
	}
	return &st, nil
}

// shardStateOf extracts the mergeable partial state from a finished
// shard job's pipeline result.
func shardStateOf(res *report.StudyResult) *ShardState {
	st := &ShardState{Health: res.Health}
	for _, a := range res.Apps {
		st.Suites = append(st.Suites, a.Suite)
	}
	return st
}
