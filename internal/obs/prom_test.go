package obs

import (
	"strings"
	"testing"
	"time"
)

func TestFormatProm(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("episodes_total", "episodes analyzed").Add(42)
	reg.NewGauge("workers", "").Set(5)
	h := reg.NewHistogram("wait", "queue wait", []time.Duration{time.Millisecond, time.Second})
	h.Observe(100 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second)

	out := reg.FormatProm()
	for _, want := range []string{
		"# HELP episodes_total episodes analyzed\n# TYPE episodes_total counter\nepisodes_total 42\n",
		"# TYPE workers gauge\nworkers 5\n",
		"# HELP wait queue wait\n# TYPE wait histogram\n",
		`wait_bucket{le="0.001"} 1` + "\n",
		`wait_bucket{le="1"} 2` + "\n",
		`wait_bucket{le="+Inf"} 3` + "\n",
		"wait_sum 2.0051\n",
		"wait_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatProm missing %q in:\n%s", want, out)
		}
	}
	// A gauge without help text must not emit a HELP line.
	if strings.Contains(out, "# HELP workers") {
		t.Errorf("help line emitted for empty help:\n%s", out)
	}
	// Families must be sorted: counter < gauge ordering falls out of
	// name sort within each section; check deterministic re-render.
	if again := reg.FormatProm(); again != out {
		t.Error("FormatProm not deterministic")
	}
}

func TestPromHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("c", "line\nbreak and back\\slash").Inc()
	out := reg.FormatProm()
	if !strings.Contains(out, `# HELP c line\nbreak and back\\slash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lat", "", []time.Duration{
		10 * time.Millisecond, 100 * time.Millisecond, time.Second,
	})
	// 90 observations ≤10ms, 9 in (10ms,100ms], 1 in (100ms,1s].
	for i := 0; i < 90; i++ {
		h.Observe(5 * time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50 * time.Millisecond)
	}
	h.Observe(500 * time.Millisecond)

	hs := reg.Snapshot().Histograms["lat"]
	if got := time.Duration(hs.P50Ns); got <= 0 || got > 10*time.Millisecond {
		t.Errorf("p50 = %v, want in (0, 10ms]", got)
	}
	if got := time.Duration(hs.P95Ns); got <= 10*time.Millisecond || got > 100*time.Millisecond {
		t.Errorf("p95 = %v, want in (10ms, 100ms]", got)
	}
	if got := time.Duration(hs.P99Ns); got <= 10*time.Millisecond || got > 100*time.Millisecond {
		t.Errorf("p99 = %v, want in (10ms, 100ms]", got)
	}
	// Quantiles must be monotone in q.
	if hs.P50Ns > hs.P95Ns || hs.P95Ns > hs.P99Ns {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d", hs.P50Ns, hs.P95Ns, hs.P99Ns)
	}
	// BoundNs must mirror the configured finite bounds.
	if hs.Buckets[0].BoundNs != int64(10*time.Millisecond) {
		t.Errorf("bucket 0 BoundNs = %d", hs.Buckets[0].BoundNs)
	}
	if hs.Buckets[3].BoundNs != 0 || hs.Buckets[3].UpperBound != "+Inf" {
		t.Errorf("+Inf bucket = %+v", hs.Buckets[3])
	}
}

func TestHistogramQuantileInfBucketClamps(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("q", "", []time.Duration{time.Millisecond})
	h.Observe(time.Hour) // lands in +Inf
	hs := reg.Snapshot().Histograms["q"]
	// With every observation past the last finite bound, quantiles
	// clamp to that bound rather than inventing an infinite value.
	if got := time.Duration(hs.P99Ns); got != time.Millisecond {
		t.Errorf("p99 = %v, want clamp to 1ms", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	reg := NewRegistry()
	reg.NewHistogram("e", "", []time.Duration{time.Millisecond})
	hs := reg.Snapshot().Histograms["e"]
	if hs.P50Ns != 0 || hs.P95Ns != 0 || hs.P99Ns != 0 {
		t.Errorf("empty histogram quantiles = %d %d %d, want 0", hs.P50Ns, hs.P95Ns, hs.P99Ns)
	}
}

func TestFormatIncludesBucketsAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("wait", "", []time.Duration{time.Millisecond})
	h.Observe(500 * time.Microsecond)
	txt := reg.Snapshot().Format()
	for _, want := range []string{"p50=", "p95=", "p99=", "bucket le=1ms n=1", "bucket le=+Inf n=1"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Format missing %q in:\n%s", want, txt)
		}
	}
}
