package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// FormatProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): `# HELP`/`# TYPE` headers, one sample line
// per counter and gauge, and `_bucket`/`_sum`/`_count` series per
// histogram. Histogram observations are nanoseconds internally but are
// exposed in seconds — the Prometheus base unit for time — so `le`
// labels and `_sum` values are seconds as floats.
//
// Families are sorted by name, so output is deterministic for
// deterministic metric values.
func (r *Registry) FormatProm() string {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	histograms := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		histograms = append(histograms, h)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(histograms, func(i, j int) bool { return histograms[i].name < histograms[j].name })

	var b strings.Builder
	for _, c := range counters {
		promHeader(&b, c.name, c.help, "counter")
		fmt.Fprintf(&b, "%s %d\n", c.name, c.Value())
	}
	for _, g := range gauges {
		promHeader(&b, g.name, g.help, "gauge")
		fmt.Fprintf(&b, "%s %d\n", g.name, g.Value())
	}
	for _, h := range histograms {
		promHeader(&b, h.name, h.help, "histogram")
		cum := int64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = promSeconds(h.bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", h.name, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", h.name, promSeconds(h.Sum()))
		fmt.Fprintf(&b, "%s_count %d\n", h.name, h.Count())
	}
	return b.String()
}

// promHeader writes the `# HELP` (when non-empty) and `# TYPE` lines
// for one metric family. HELP text must escape backslash and newline
// per the exposition format.
func promHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		help = strings.ReplaceAll(help, `\`, `\\`)
		help = strings.ReplaceAll(help, "\n", `\n`)
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// promSeconds formats a duration as seconds the way Prometheus client
// libraries do: shortest decimal that round-trips.
func promSeconds(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Second), 'g', -1, 64)
}
