package obs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestRunMetaSchemaGolden pins the runmeta.json wire schema: the
// exact top-level key set and the JSON type of every value. External
// consumers (dashboards, the benchmark trajectory tooling) key on
// these names, so adding a field means extending this golden and
// removing or renaming one is a breaking change that must be
// deliberate.
func TestRunMetaSchemaGolden(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	_, end := Span(ctx, "study")
	end()

	reg := NewRegistry()
	reg.NewCounter("episodes", "total episodes").Add(7)
	reg.NewGauge("workers", "").Set(2)
	reg.NewHistogram("wait", "", []time.Duration{time.Millisecond}).Observe(time.Millisecond)

	m := NewRunMeta("lagreport")
	m.Flags["seed"] = "42"
	m.SelfTrace = "self.lila"
	m.Finish(tr, reg)

	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}

	// key → JSON type. "health" is omitted here (clean run) and pinned
	// as optional below.
	want := map[string]string{
		"tool":       "string",
		"started":    "string",
		"wall_clock": "string",
		"go_version": "string",
		"goos":       "string",
		"goarch":     "string",
		"gomaxprocs": "number",
		"num_cpu":    "number",
		"flags":      "object",
		"phases":     "array",
		"self_trace": "string",
		"metrics":    "object",
	}
	for key, typ := range want {
		raw, ok := top[key]
		if !ok {
			t.Errorf("runmeta.json missing key %q", key)
			continue
		}
		if got := jsonType(raw); got != typ {
			t.Errorf("runmeta.json key %q is %s, want %s", key, got, typ)
		}
	}
	for key := range top {
		if _, ok := want[key]; !ok && key != "health" {
			t.Errorf("runmeta.json has unpinned key %q — extend the schema golden deliberately", key)
		}
	}

	// The metrics snapshot's own shape: counters/gauges/histograms maps.
	var metrics map[string]json.RawMessage
	if err := json.Unmarshal(top["metrics"], &metrics); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		raw, ok := metrics[key]
		if !ok {
			t.Errorf("metrics missing %q", key)
			continue
		}
		if got := jsonType(raw); got != "object" {
			t.Errorf("metrics.%s is %s, want object", key, got)
		}
	}

	// Histogram snapshots carry buckets plus derived quantiles.
	var hists map[string]map[string]json.RawMessage
	if err := json.Unmarshal(metrics["histograms"], &hists); err != nil {
		t.Fatal(err)
	}
	h := hists["wait"]
	for key, typ := range map[string]string{
		"count": "number", "sum_ns": "number", "buckets": "array",
		"p50_ns": "number", "p95_ns": "number", "p99_ns": "number",
	} {
		raw, ok := h[key]
		if !ok {
			t.Errorf("histogram snapshot missing %q (have %v)", key, keysOf(h))
			continue
		}
		if got := jsonType(raw); got != typ {
			t.Errorf("histogram %s is %s, want %s", key, got, typ)
		}
	}
}

// jsonType names the JSON type of a raw value.
func jsonType(raw json.RawMessage) string {
	for _, c := range raw {
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			continue
		case c == '{':
			return "object"
		case c == '[':
			return "array"
		case c == '"':
			return "string"
		case c == 't' || c == 'f':
			return "bool"
		case c == 'n':
			return "null"
		default:
			return "number"
		}
	}
	return "empty"
}

func keysOf(m map[string]json.RawMessage) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
