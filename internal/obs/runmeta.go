package obs

import (
	"encoding/json"
	"runtime"
	"time"
)

// RunMeta is the reproducibility manifest written next to generated
// artifacts (lagreport -out writes it as runmeta.json): enough
// environment, configuration, and per-phase telemetry to interpret a
// BENCH_*.json trajectory or re-run the exact study later.
type RunMeta struct {
	Tool      string    `json:"tool"`
	Started   time.Time `json:"started"`
	WallClock string    `json:"wall_clock"`

	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	// Flags records the command's effective flag values.
	Flags map[string]string `json:"flags,omitempty"`

	// Phases is the deterministic span summary of the run (per-phase
	// wall clock, counts, and alloc deltas).
	Phases []SummaryRow `json:"phases,omitempty"`

	// Health is the study's degradation ledger (report.StudyHealth):
	// skipped files, salvaged records, failed apps. Omitted for clean
	// runs. Declared as any to keep obs free of report types.
	Health any `json:"health,omitempty"`

	// SelfTrace is the path of the LiLa v2 self-profile written for
	// this run (-self-profile), empty when self-profiling was off.
	SelfTrace string `json:"self_trace,omitempty"`

	// Metrics is the registry snapshot at the end of the run.
	Metrics Snapshot `json:"metrics"`
}

// NewRunMeta seeds a manifest with the environment facts; the caller
// fills Flags and calls Finish before writing.
func NewRunMeta(tool string) *RunMeta {
	return &RunMeta{
		Tool:       tool,
		Started:    time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Flags:      map[string]string{},
	}
}

// Finish stamps the elapsed wall clock and captures the trace summary
// and metrics snapshot. t may be nil (no phase rows); reg nil means
// the Default registry.
func (m *RunMeta) Finish(t *Trace, reg *Registry) {
	if reg == nil {
		reg = Default()
	}
	m.WallClock = time.Since(m.Started).Round(time.Millisecond).String()
	m.Phases = t.Summary()
	m.Metrics = reg.Snapshot()
}

// WriteFile serializes the manifest as indented JSON to path. The
// write is atomic (tmp+rename), so an interrupted run never leaves a
// truncated manifest behind.
func (m *RunMeta) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'), 0o644)
}
