package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// Profiler bundles the opt-in runtime profiling hooks every command
// exposes: CPU profile, heap profile, and execution trace. The zero
// value (no flags set) is inert.
type Profiler struct {
	CPUProfile string
	MemProfile string
	TracePath  string

	cpuFile   *os.File
	traceFile *os.File
}

// AddProfileFlags registers -cpuprofile, -memprofile, and -trace on
// fs and returns the Profiler they populate. Call Start after fs is
// parsed.
func AddProfileFlags(fs *flag.FlagSet) *Profiler {
	p := &Profiler{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&p.TracePath, "trace", "", "write a runtime execution trace to this file")
	return p
}

// Start begins whichever profiles were requested and returns the stop
// function that finalizes them (stops the CPU profile and execution
// trace, then writes the heap profile). The stop function must run
// before process exit; defer it from main.
func (p *Profiler) Start() (stop func(), err error) {
	if p.CPUProfile != "" {
		p.cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(p.cpuFile); err != nil {
			p.cpuFile.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
	}
	if p.TracePath != "" {
		p.traceFile, err = os.Create(p.TracePath)
		if err != nil {
			p.stopCPU()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := rtrace.Start(p.traceFile); err != nil {
			p.stopCPU()
			p.traceFile.Close()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}
	return p.stop, nil
}

func (p *Profiler) stopCPU() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

func (p *Profiler) stop() {
	p.stopCPU()
	if p.traceFile != nil {
		rtrace.Stop()
		p.traceFile.Close()
		p.traceFile = nil
	}
	if p.MemProfile != "" {
		f, err := os.Create(p.MemProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs: memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize the live heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "obs: memprofile:", err)
		}
	}
}
