package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// DebugServer serves live diagnostics during long runs:
//
//	/metrics        registry snapshot as JSON
//	/metrics.txt    registry snapshot as sorted text lines
//	/debug/pprof/*  the standard net/http/pprof handlers
//
// It binds synchronously (so address errors surface to the caller)
// and serves in a background goroutine until Close.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts a debug server on addr (e.g. "localhost:6060")
// exposing reg; nil reg means the Default registry.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		reg = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(debugSnapshot(reg))
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, reg.Snapshot().Format())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *DebugServer) Close() error { return s.srv.Close() }

// debugVars is the /metrics payload: the registry snapshot plus a few
// expvar-style process facts.
type debugVars struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Goroutines int     `json:"goroutines"`
	UptimeSec  float64 `json:"uptime_sec"`
	HeapAlloc  uint64  `json:"heap_alloc_bytes"`
	TotalAlloc uint64  `json:"total_alloc_bytes"`
	NumGC      uint32  `json:"num_gc"`

	Metrics Snapshot `json:"metrics"`
}

var processStart = time.Now()

func debugSnapshot(reg *Registry) debugVars {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return debugVars{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Goroutines: runtime.NumGoroutine(),
		UptimeSec:  time.Since(processStart).Seconds(),
		HeapAlloc:  ms.HeapAlloc,
		TotalAlloc: ms.TotalAlloc,
		NumGC:      ms.NumGC,
		Metrics:    reg.Snapshot(),
	}
}
