// Package obs is the pipeline's zero-dependency observability layer:
// a process-wide metrics registry (counters, gauges, fixed-bucket
// latency histograms), span-style phase tracing, opt-in CPU/heap/trace
// profiling hooks, and a debug HTTP endpoint serving pprof plus a
// metrics snapshot.
//
// LagAlyzer is itself a latency-observability tool, so its own
// pipeline must be observable at negligible cost: every hot-path
// metric update is a plain atomic add, and tracing is off unless a
// *Trace is installed in the context — the disabled paths perform no
// allocation (guarded by an AllocsPerRun test). Nothing in this
// package influences analysis results, so the engine's byte-identical
// sequential-vs-parallel guarantee is preserved with instrumentation
// enabled.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Add increments the counter by n. It is one atomic add; safe for
// concurrent use and cheap enough for per-chunk (not per-episode)
// flushing on hot paths.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket latency histogram. Observations are
// durations in nanoseconds; each Observe is a handful of atomic adds.
type Histogram struct {
	name   string
	help   string
	bounds []time.Duration // upper bounds, ascending; implicit +Inf last
	counts []atomic.Int64  // len(bounds)+1
	sum    atomic.Int64    // total nanoseconds observed
	n      atomic.Int64
}

// DefaultLatencyBuckets spans 1µs to ~10s in decade-and-a-half steps,
// wide enough for pool-queue waits and whole-phase timings alike.
var DefaultLatencyBuckets = []time.Duration{
	time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	time.Second, 10 * time.Second,
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry or the process-wide Default registry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry behind the package-level
// constructors and Snapshot.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// NewCounter registers (or returns the existing) counter under name.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// NewGauge registers (or returns the existing) gauge under name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// NewHistogram registers (or returns the existing) histogram under
// name. bounds nil means DefaultLatencyBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []time.Duration) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{name: name, help: help, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.histograms[name] = h
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, help string, bounds []time.Duration) *Histogram {
	return defaultRegistry.NewHistogram(name, help, bounds)
}

// HistogramSnapshot is one histogram's state in a Snapshot. P50Ns,
// P95Ns, and P99Ns are approximate quantiles interpolated from the
// bucket counts (see Quantile); they are derived fields, recomputed at
// snapshot time.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	SumNs   int64            `json:"sum_ns"`
	P50Ns   int64            `json:"p50_ns,omitempty"`
	P95Ns   int64            `json:"p95_ns,omitempty"`
	P99Ns   int64            `json:"p99_ns,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one histogram bucket: observations ≤ the upper
// bound (cumulative, Prometheus-style). The final bucket's bound is
// "+Inf" with BoundNs 0; every other bucket carries its numeric bound
// in nanoseconds alongside the display string.
type BucketSnapshot struct {
	UpperBound string `json:"le"`
	BoundNs    int64  `json:"bound_ns,omitempty"`
	Count      int64  `json:"count"`
}

// Quantile returns the approximate q-quantile (0 < q ≤ 1) of the
// observations, linearly interpolated inside the bucket the quantile
// falls into — the standard Prometheus histogram_quantile estimate.
// Observations in the +Inf bucket clamp to the last finite bound. A
// histogram with no observations returns 0.
func (h HistogramSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	lower := int64(0) // lower bound of the current bucket
	prevCum := int64(0)
	for _, b := range h.Buckets {
		if float64(b.Count) >= rank {
			if b.BoundNs == 0 && b.UpperBound == "+Inf" {
				return time.Duration(lower)
			}
			inBucket := b.Count - prevCum
			if inBucket <= 0 {
				return time.Duration(b.BoundNs)
			}
			frac := (rank - float64(prevCum)) / float64(inBucket)
			return time.Duration(float64(lower) + frac*float64(b.BoundNs-lower))
		}
		prevCum = b.Count
		if b.BoundNs > 0 {
			lower = b.BoundNs
		}
	}
	return time.Duration(lower)
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON.
// Map iteration order is irrelevant: encoding/json sorts map keys, so
// serialized snapshots are deterministic for deterministic values.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.Count(), SumNs: int64(h.Sum())}
		cum := int64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			bound, boundNs := "+Inf", int64(0)
			if i < len(h.bounds) {
				bound, boundNs = h.bounds[i].String(), int64(h.bounds[i])
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: bound, BoundNs: boundNs, Count: cum})
		}
		hs.P50Ns = int64(hs.Quantile(0.50))
		hs.P95Ns = int64(hs.Quantile(0.95))
		hs.P99Ns = int64(hs.Quantile(0.99))
		s.Histograms[name] = hs
	}
	return s
}

// Format renders the snapshot as sorted "name value" lines, one metric
// per line — the deterministic text twin of the JSON form.
func (s Snapshot) Format() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %d\n", name, s.Gauges[name])
	}
	hn := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hn = append(hn, name)
	}
	sort.Strings(hn)
	for _, name := range hn {
		h := s.Histograms[name]
		mean := time.Duration(0)
		if h.Count > 0 {
			mean = time.Duration(h.SumNs / h.Count)
		}
		fmt.Fprintf(&b, "histogram %s count=%d sum=%v mean=%v p50=%v p95=%v p99=%v\n",
			name, h.Count, time.Duration(h.SumNs), mean,
			time.Duration(h.P50Ns), time.Duration(h.P95Ns), time.Duration(h.P99Ns))
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "histogram %s bucket le=%s n=%d\n", name, bk.UpperBound, bk.Count)
		}
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
