package obs

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace collects spans for one pipeline run. A nil *Trace — or a
// context without one — disables tracing: Span returns its context
// unchanged and a shared no-op end function, allocating nothing.
//
// Tracing never feeds back into analysis: spans only record wall-clock
// and allocation observations, so results stay byte-identical with
// tracing on or off, sequential or parallel.
type Trace struct {
	mu    sync.Mutex
	spans []*spanData
	start time.Time
}

// NewTrace returns an empty trace whose epoch is now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

type spanData struct {
	path   string    // slash-joined ancestry, e.g. "study/app/engine/classify"
	parent *spanData // enclosing span, nil for roots (drives Export lineage)
	worker int       // -1 when unattributed
	depth  int
	start  time.Time
	dur    time.Duration

	measured    bool   // alloc delta captured (phase-level spans only)
	allocBytes  uint64 // TotalAlloc delta
	allocObjs   uint64 // Mallocs delta
	startAllocs runtime.MemStats
}

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
	workerKey
)

// WithTrace installs t into the context; subsequent Span calls under
// this context record into it. A nil t leaves the context unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's trace, or nil when tracing is off.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// WithWorker tags the context with a worker index for span
// attribution. When tracing is off it returns ctx unchanged, so
// per-worker setup costs nothing in the disabled path.
func WithWorker(ctx context.Context, w int) context.Context {
	if TraceFrom(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, workerKey, w)
}

// noopEnd is the shared end function of disabled spans.
var noopEnd = func() {}

// Span opens a span named name under the context's current span and
// returns the child context plus the function that ends the span.
// With no trace installed it is a no-op: the context comes back
// unchanged and the end function is shared — zero allocations.
func Span(ctx context.Context, name string) (context.Context, func()) {
	return span(ctx, name, false)
}

// PhaseSpan is Span plus an allocation delta: it reads runtime memory
// statistics at start and end and records the bytes and objects
// allocated in between. ReadMemStats is far too expensive for
// per-chunk spans; reserve PhaseSpan for pipeline phases (a handful
// per run).
func PhaseSpan(ctx context.Context, name string) (context.Context, func()) {
	return span(ctx, name, true)
}

func span(ctx context.Context, name string, measure bool) (context.Context, func()) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, noopEnd
	}
	d := &spanData{path: name, worker: -1, start: time.Now()}
	if parent, ok := ctx.Value(spanKey).(*spanData); ok {
		d.path = parent.path + "/" + name
		d.depth = parent.depth + 1
		d.parent = parent
	}
	if w, ok := ctx.Value(workerKey).(int); ok {
		d.worker = w
	}
	if measure {
		d.measured = true
		runtime.ReadMemStats(&d.startAllocs)
	}
	return context.WithValue(ctx, spanKey, d), func() {
		d.dur = time.Since(d.start)
		if d.measured {
			var end runtime.MemStats
			runtime.ReadMemStats(&end)
			d.allocBytes = end.TotalAlloc - d.startAllocs.TotalAlloc
			d.allocObjs = end.Mallocs - d.startAllocs.Mallocs
		}
		t.mu.Lock()
		t.spans = append(t.spans, d)
		t.mu.Unlock()
	}
}

// SpanExport is one finished span in the raw per-span export used by
// the self-trace bridge (package obs/selftrace). Unlike SummaryRow it
// is not aggregated: every recorded span becomes one entry, carrying
// its lineage so a consumer can rebuild the span forest.
type SpanExport struct {
	// ID is the span's index in the export slice.
	ID int
	// Parent is the index of the enclosing span, or -1 for a root span
	// (including spans whose parent had not finished at export time).
	Parent int
	// Name is the last path segment; Path the slash-joined ancestry.
	Name, Path string
	// Worker is the pool worker the span was attributed to, or -1.
	Worker int
	// Start is the span's offset from the trace epoch; Dur its length.
	Start, Dur time.Duration
	// Measured marks PhaseSpan spans; AllocBytes and AllocObjs are
	// their allocation deltas.
	Measured              bool
	AllocBytes, AllocObjs uint64
}

// Export snapshots every finished span with its lineage, in recording
// (completion) order. Because a parent's end function runs after its
// children's, a finished span's finished ancestors always appear in
// the export; a still-open ancestor degrades the span to a root.
func (t *Trace) Export() []SpanExport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*spanData, len(t.spans))
	copy(spans, t.spans)
	epoch := t.start
	t.mu.Unlock()

	index := make(map[*spanData]int, len(spans))
	for i, d := range spans {
		index[d] = i
	}
	out := make([]SpanExport, len(spans))
	for i, d := range spans {
		name := d.path
		if j := strings.LastIndexByte(name, '/'); j >= 0 {
			name = name[j+1:]
		}
		parent := -1
		if d.parent != nil {
			if pi, ok := index[d.parent]; ok {
				parent = pi
			}
		}
		out[i] = SpanExport{
			ID:         i,
			Parent:     parent,
			Name:       name,
			Path:       d.path,
			Worker:     d.worker,
			Start:      d.start.Sub(epoch),
			Dur:        d.dur,
			Measured:   d.measured,
			AllocBytes: d.allocBytes,
			AllocObjs:  d.allocObjs,
		}
	}
	return out
}

// SummaryRow aggregates every finished span sharing a path and worker.
type SummaryRow struct {
	// Path is the slash-joined span ancestry, e.g.
	// "study/app/engine/classify".
	Path string `json:"path"`
	// Worker is the worker index the spans were attributed to, or -1.
	Worker int `json:"worker,omitempty"`
	// Count is the number of spans aggregated into the row.
	Count int `json:"count"`
	// TotalNs, MinNs, and MaxNs summarize span durations.
	TotalNs int64 `json:"total_ns"`
	MinNs   int64 `json:"min_ns"`
	MaxNs   int64 `json:"max_ns"`
	// AllocBytes and AllocObjs sum the allocation deltas of measured
	// (PhaseSpan) spans; zero for plain spans.
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	AllocObjs  uint64 `json:"alloc_objs,omitempty"`
}

// Total returns the row's summed duration.
func (r SummaryRow) Total() time.Duration { return time.Duration(r.TotalNs) }

// Summary aggregates finished spans into rows sorted by path, then
// worker. The ordering — and with it the flat text and JSON forms —
// is deterministic regardless of which goroutine recorded which span.
func (t *Trace) Summary() []SummaryRow {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*spanData, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	type key struct {
		path   string
		worker int
	}
	rows := make(map[key]*SummaryRow)
	for _, d := range spans {
		k := key{d.path, d.worker}
		r, ok := rows[k]
		if !ok {
			r = &SummaryRow{Path: d.path, Worker: d.worker, MinNs: int64(d.dur)}
			rows[k] = r
		}
		ns := int64(d.dur)
		r.Count++
		r.TotalNs += ns
		if ns < r.MinNs {
			r.MinNs = ns
		}
		if ns > r.MaxNs {
			r.MaxNs = ns
		}
		r.AllocBytes += d.allocBytes
		r.AllocObjs += d.allocObjs
	}
	out := make([]SummaryRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// Format renders the summary as an indented flat text tree: one line
// per (path, worker) row, indented by span depth, with count, total,
// min/max, and alloc deltas where measured.
func (t *Trace) Format() string {
	rows := t.Summary()
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	for _, r := range rows {
		depth := strings.Count(r.Path, "/")
		name := r.Path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		fmt.Fprintf(&b, "%s%-*s", strings.Repeat("  ", depth), 24-2*depth, name)
		fmt.Fprintf(&b, " n=%-5d total=%-12v", r.Count, time.Duration(r.TotalNs).Round(time.Microsecond))
		if r.Count > 1 {
			fmt.Fprintf(&b, " min=%-10v max=%-10v",
				time.Duration(r.MinNs).Round(time.Microsecond),
				time.Duration(r.MaxNs).Round(time.Microsecond))
		}
		if r.Worker >= 0 {
			fmt.Fprintf(&b, " worker=%d", r.Worker)
		}
		if r.AllocBytes > 0 {
			fmt.Fprintf(&b, " allocs=%dB/%d objs", r.AllocBytes, r.AllocObjs)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
