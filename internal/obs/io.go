package obs

import (
	"io"
	"sync/atomic"
)

// CountingReader wraps an io.Reader and counts the bytes delivered,
// optionally mirroring them into a registry counter. It is how the
// decode paths report throughput without the lila readers knowing
// about metrics.
type CountingReader struct {
	r io.Reader
	n atomic.Int64
	c *Counter // optional mirror
}

// NewCountingReader wraps r. counter may be nil.
func NewCountingReader(r io.Reader, counter *Counter) *CountingReader {
	return &CountingReader{r: r, c: counter}
}

// Read implements io.Reader.
func (cr *CountingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.n.Add(int64(n))
		if cr.c != nil {
			cr.c.Add(int64(n))
		}
	}
	return n, err
}

// Bytes returns the number of bytes read so far.
func (cr *CountingReader) Bytes() int64 { return cr.n.Load() }
