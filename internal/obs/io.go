package obs

import (
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// CountingReader wraps an io.Reader and counts the bytes delivered,
// optionally mirroring them into a registry counter. It is how the
// decode paths report throughput without the lila readers knowing
// about metrics.
type CountingReader struct {
	r  io.Reader
	n  atomic.Int64
	c  *Counter  // optional mirror
	fn func(int) // optional per-read hook
}

// NewCountingReader wraps r. counter may be nil.
func NewCountingReader(r io.Reader, counter *Counter) *CountingReader {
	return &CountingReader{r: r, c: counter}
}

// OnRead installs fn, called with the byte count after every
// successful read. Streaming servers use it to extend per-connection
// read deadlines and refresh idle stamps as bytes arrive. Install
// before the first Read; the hook runs on the reading goroutine.
func (cr *CountingReader) OnRead(fn func(int)) { cr.fn = fn }

// Read implements io.Reader.
func (cr *CountingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.n.Add(int64(n))
		if cr.c != nil {
			cr.c.Add(int64(n))
		}
		if cr.fn != nil {
			cr.fn(n)
		}
	}
	return n, err
}

// Bytes returns the number of bytes read so far.
func (cr *CountingReader) Bytes() int64 { return cr.n.Load() }

// WriteFileAtomic writes data to path via a temporary file in the same
// directory followed by a rename, so a reader (or a crash — including
// SIGKILL) never observes a truncated or partially written file: the
// old content, if any, stays intact until the new content is durably
// on disk. Every artifact the pipeline emits (runmeta.json, reports,
// figures, checkpoints, benchmark trajectories) goes through this.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	// Flush file content before the rename publishes it; otherwise a
	// power loss could leave a correctly named but empty file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), perm); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
